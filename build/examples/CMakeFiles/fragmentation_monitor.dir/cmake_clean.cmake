file(REMOVE_RECURSE
  "CMakeFiles/fragmentation_monitor.dir/fragmentation_monitor.cpp.o"
  "CMakeFiles/fragmentation_monitor.dir/fragmentation_monitor.cpp.o.d"
  "fragmentation_monitor"
  "fragmentation_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fragmentation_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
