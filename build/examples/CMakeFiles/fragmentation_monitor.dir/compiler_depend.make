# Empty compiler generated dependencies file for fragmentation_monitor.
# This may be replaced when dependencies are built.
