# Empty dependencies file for elastic_scaling_demo.
# This may be replaced when dependencies are built.
