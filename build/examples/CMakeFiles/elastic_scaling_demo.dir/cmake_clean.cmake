file(REMOVE_RECURSE
  "CMakeFiles/elastic_scaling_demo.dir/elastic_scaling_demo.cpp.o"
  "CMakeFiles/elastic_scaling_demo.dir/elastic_scaling_demo.cpp.o.d"
  "elastic_scaling_demo"
  "elastic_scaling_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_scaling_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
