# Empty dependencies file for predictor_demo.
# This may be replaced when dependencies are built.
