# Empty dependencies file for gandiva_test.
# This may be replaced when dependencies are built.
