file(REMOVE_RECURSE
  "CMakeFiles/gandiva_test.dir/gandiva_test.cpp.o"
  "CMakeFiles/gandiva_test.dir/gandiva_test.cpp.o.d"
  "gandiva_test"
  "gandiva_test.pdb"
  "gandiva_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gandiva_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
