
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/common_test.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ones_core.dir/DependInfo.cmake"
  "/root/repo/build/src/drl/CMakeFiles/ones_drl.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ones_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/ones_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/elastic/CMakeFiles/ones_elastic.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ones_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ones_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ones_model.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ones_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ones_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ones_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ones_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
