# Empty compiler generated dependencies file for simulation_edge_test.
# This may be replaced when dependencies are built.
