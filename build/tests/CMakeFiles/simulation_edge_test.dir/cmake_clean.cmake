file(REMOVE_RECURSE
  "CMakeFiles/simulation_edge_test.dir/simulation_edge_test.cpp.o"
  "CMakeFiles/simulation_edge_test.dir/simulation_edge_test.cpp.o.d"
  "simulation_edge_test"
  "simulation_edge_test.pdb"
  "simulation_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulation_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
