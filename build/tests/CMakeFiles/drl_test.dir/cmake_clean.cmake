file(REMOVE_RECURSE
  "CMakeFiles/drl_test.dir/drl_test.cpp.o"
  "CMakeFiles/drl_test.dir/drl_test.cpp.o.d"
  "drl_test"
  "drl_test.pdb"
  "drl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
