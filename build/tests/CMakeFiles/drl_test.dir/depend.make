# Empty dependencies file for drl_test.
# This may be replaced when dependencies are built.
