# Empty dependencies file for ones_test.
# This may be replaced when dependencies are built.
