file(REMOVE_RECURSE
  "CMakeFiles/ones_test.dir/ones_test.cpp.o"
  "CMakeFiles/ones_test.dir/ones_test.cpp.o.d"
  "ones_test"
  "ones_test.pdb"
  "ones_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ones_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
