# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/elastic_test[1]_include.cmake")
include("/root/repo/build/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/predict_test[1]_include.cmake")
include("/root/repo/build/tests/evolution_test[1]_include.cmake")
include("/root/repo/build/tests/ones_test[1]_include.cmake")
include("/root/repo/build/tests/drl_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/gandiva_test[1]_include.cmake")
include("/root/repo/build/tests/annealing_test[1]_include.cmake")
include("/root/repo/build/tests/model_property_test[1]_include.cmake")
include("/root/repo/build/tests/stats_property_test[1]_include.cmake")
include("/root/repo/build/tests/bootstrap_test[1]_include.cmake")
include("/root/repo/build/tests/simulation_edge_test[1]_include.cmake")
