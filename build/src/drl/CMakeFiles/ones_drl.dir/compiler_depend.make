# Empty compiler generated dependencies file for ones_drl.
# This may be replaced when dependencies are built.
