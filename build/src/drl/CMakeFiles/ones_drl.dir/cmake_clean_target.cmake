file(REMOVE_RECURSE
  "libones_drl.a"
)
