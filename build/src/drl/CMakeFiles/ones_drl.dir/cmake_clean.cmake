file(REMOVE_RECURSE
  "CMakeFiles/ones_drl.dir/drl_scheduler.cpp.o"
  "CMakeFiles/ones_drl.dir/drl_scheduler.cpp.o.d"
  "CMakeFiles/ones_drl.dir/mlp.cpp.o"
  "CMakeFiles/ones_drl.dir/mlp.cpp.o.d"
  "libones_drl.a"
  "libones_drl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ones_drl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
