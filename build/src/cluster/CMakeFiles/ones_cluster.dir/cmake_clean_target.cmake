file(REMOVE_RECURSE
  "libones_cluster.a"
)
