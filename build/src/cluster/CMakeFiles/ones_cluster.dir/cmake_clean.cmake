file(REMOVE_RECURSE
  "CMakeFiles/ones_cluster.dir/assignment.cpp.o"
  "CMakeFiles/ones_cluster.dir/assignment.cpp.o.d"
  "CMakeFiles/ones_cluster.dir/fragmentation.cpp.o"
  "CMakeFiles/ones_cluster.dir/fragmentation.cpp.o.d"
  "CMakeFiles/ones_cluster.dir/topology.cpp.o"
  "CMakeFiles/ones_cluster.dir/topology.cpp.o.d"
  "libones_cluster.a"
  "libones_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ones_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
