# Empty compiler generated dependencies file for ones_cluster.
# This may be replaced when dependencies are built.
