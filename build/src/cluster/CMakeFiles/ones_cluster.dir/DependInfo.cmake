
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/assignment.cpp" "src/cluster/CMakeFiles/ones_cluster.dir/assignment.cpp.o" "gcc" "src/cluster/CMakeFiles/ones_cluster.dir/assignment.cpp.o.d"
  "/root/repo/src/cluster/fragmentation.cpp" "src/cluster/CMakeFiles/ones_cluster.dir/fragmentation.cpp.o" "gcc" "src/cluster/CMakeFiles/ones_cluster.dir/fragmentation.cpp.o.d"
  "/root/repo/src/cluster/topology.cpp" "src/cluster/CMakeFiles/ones_cluster.dir/topology.cpp.o" "gcc" "src/cluster/CMakeFiles/ones_cluster.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ones_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
