# Empty dependencies file for ones_telemetry.
# This may be replaced when dependencies are built.
