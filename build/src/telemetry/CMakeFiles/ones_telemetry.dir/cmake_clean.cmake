file(REMOVE_RECURSE
  "CMakeFiles/ones_telemetry.dir/metrics.cpp.o"
  "CMakeFiles/ones_telemetry.dir/metrics.cpp.o.d"
  "CMakeFiles/ones_telemetry.dir/report.cpp.o"
  "CMakeFiles/ones_telemetry.dir/report.cpp.o.d"
  "libones_telemetry.a"
  "libones_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ones_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
