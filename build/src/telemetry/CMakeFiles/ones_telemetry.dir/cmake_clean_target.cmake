file(REMOVE_RECURSE
  "libones_telemetry.a"
)
