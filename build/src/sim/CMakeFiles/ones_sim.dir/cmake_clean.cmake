file(REMOVE_RECURSE
  "CMakeFiles/ones_sim.dir/engine.cpp.o"
  "CMakeFiles/ones_sim.dir/engine.cpp.o.d"
  "libones_sim.a"
  "libones_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ones_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
