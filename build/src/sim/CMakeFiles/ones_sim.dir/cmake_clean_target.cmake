file(REMOVE_RECURSE
  "libones_sim.a"
)
