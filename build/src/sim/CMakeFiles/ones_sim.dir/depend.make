# Empty dependencies file for ones_sim.
# This may be replaced when dependencies are built.
