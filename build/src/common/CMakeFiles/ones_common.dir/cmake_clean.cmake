file(REMOVE_RECURSE
  "CMakeFiles/ones_common.dir/log.cpp.o"
  "CMakeFiles/ones_common.dir/log.cpp.o.d"
  "CMakeFiles/ones_common.dir/rng.cpp.o"
  "CMakeFiles/ones_common.dir/rng.cpp.o.d"
  "libones_common.a"
  "libones_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ones_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
