# Empty dependencies file for ones_common.
# This may be replaced when dependencies are built.
