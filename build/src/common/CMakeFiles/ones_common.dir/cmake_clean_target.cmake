file(REMOVE_RECURSE
  "libones_common.a"
)
