
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/fifo.cpp" "src/sched/CMakeFiles/ones_sched.dir/fifo.cpp.o" "gcc" "src/sched/CMakeFiles/ones_sched.dir/fifo.cpp.o.d"
  "/root/repo/src/sched/gandiva.cpp" "src/sched/CMakeFiles/ones_sched.dir/gandiva.cpp.o" "gcc" "src/sched/CMakeFiles/ones_sched.dir/gandiva.cpp.o.d"
  "/root/repo/src/sched/optimus.cpp" "src/sched/CMakeFiles/ones_sched.dir/optimus.cpp.o" "gcc" "src/sched/CMakeFiles/ones_sched.dir/optimus.cpp.o.d"
  "/root/repo/src/sched/oracle.cpp" "src/sched/CMakeFiles/ones_sched.dir/oracle.cpp.o" "gcc" "src/sched/CMakeFiles/ones_sched.dir/oracle.cpp.o.d"
  "/root/repo/src/sched/placement.cpp" "src/sched/CMakeFiles/ones_sched.dir/placement.cpp.o" "gcc" "src/sched/CMakeFiles/ones_sched.dir/placement.cpp.o.d"
  "/root/repo/src/sched/simulation.cpp" "src/sched/CMakeFiles/ones_sched.dir/simulation.cpp.o" "gcc" "src/sched/CMakeFiles/ones_sched.dir/simulation.cpp.o.d"
  "/root/repo/src/sched/srtf.cpp" "src/sched/CMakeFiles/ones_sched.dir/srtf.cpp.o" "gcc" "src/sched/CMakeFiles/ones_sched.dir/srtf.cpp.o.d"
  "/root/repo/src/sched/tiresias.cpp" "src/sched/CMakeFiles/ones_sched.dir/tiresias.cpp.o" "gcc" "src/sched/CMakeFiles/ones_sched.dir/tiresias.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ones_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ones_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ones_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ones_model.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ones_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/elastic/CMakeFiles/ones_elastic.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ones_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ones_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
