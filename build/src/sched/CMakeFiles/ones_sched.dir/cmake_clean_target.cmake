file(REMOVE_RECURSE
  "libones_sched.a"
)
