file(REMOVE_RECURSE
  "CMakeFiles/ones_sched.dir/fifo.cpp.o"
  "CMakeFiles/ones_sched.dir/fifo.cpp.o.d"
  "CMakeFiles/ones_sched.dir/gandiva.cpp.o"
  "CMakeFiles/ones_sched.dir/gandiva.cpp.o.d"
  "CMakeFiles/ones_sched.dir/optimus.cpp.o"
  "CMakeFiles/ones_sched.dir/optimus.cpp.o.d"
  "CMakeFiles/ones_sched.dir/oracle.cpp.o"
  "CMakeFiles/ones_sched.dir/oracle.cpp.o.d"
  "CMakeFiles/ones_sched.dir/placement.cpp.o"
  "CMakeFiles/ones_sched.dir/placement.cpp.o.d"
  "CMakeFiles/ones_sched.dir/simulation.cpp.o"
  "CMakeFiles/ones_sched.dir/simulation.cpp.o.d"
  "CMakeFiles/ones_sched.dir/srtf.cpp.o"
  "CMakeFiles/ones_sched.dir/srtf.cpp.o.d"
  "CMakeFiles/ones_sched.dir/tiresias.cpp.o"
  "CMakeFiles/ones_sched.dir/tiresias.cpp.o.d"
  "libones_sched.a"
  "libones_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ones_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
