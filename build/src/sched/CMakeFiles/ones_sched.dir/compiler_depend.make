# Empty compiler generated dependencies file for ones_sched.
# This may be replaced when dependencies are built.
