file(REMOVE_RECURSE
  "libones_core.a"
)
