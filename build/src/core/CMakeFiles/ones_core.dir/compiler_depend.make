# Empty compiler generated dependencies file for ones_core.
# This may be replaced when dependencies are built.
