file(REMOVE_RECURSE
  "CMakeFiles/ones_core.dir/annealing.cpp.o"
  "CMakeFiles/ones_core.dir/annealing.cpp.o.d"
  "CMakeFiles/ones_core.dir/batch_policy.cpp.o"
  "CMakeFiles/ones_core.dir/batch_policy.cpp.o.d"
  "CMakeFiles/ones_core.dir/evolution.cpp.o"
  "CMakeFiles/ones_core.dir/evolution.cpp.o.d"
  "CMakeFiles/ones_core.dir/ones_scheduler.cpp.o"
  "CMakeFiles/ones_core.dir/ones_scheduler.cpp.o.d"
  "libones_core.a"
  "libones_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ones_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
