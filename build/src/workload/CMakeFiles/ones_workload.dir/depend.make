# Empty dependencies file for ones_workload.
# This may be replaced when dependencies are built.
