file(REMOVE_RECURSE
  "CMakeFiles/ones_workload.dir/trace.cpp.o"
  "CMakeFiles/ones_workload.dir/trace.cpp.o.d"
  "CMakeFiles/ones_workload.dir/trace_io.cpp.o"
  "CMakeFiles/ones_workload.dir/trace_io.cpp.o.d"
  "libones_workload.a"
  "libones_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ones_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
