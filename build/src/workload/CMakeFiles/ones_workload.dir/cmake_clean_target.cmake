file(REMOVE_RECURSE
  "libones_workload.a"
)
