file(REMOVE_RECURSE
  "libones_model.a"
)
