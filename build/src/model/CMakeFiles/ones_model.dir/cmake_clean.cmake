file(REMOVE_RECURSE
  "CMakeFiles/ones_model.dir/convergence.cpp.o"
  "CMakeFiles/ones_model.dir/convergence.cpp.o.d"
  "CMakeFiles/ones_model.dir/task.cpp.o"
  "CMakeFiles/ones_model.dir/task.cpp.o.d"
  "CMakeFiles/ones_model.dir/throughput.cpp.o"
  "CMakeFiles/ones_model.dir/throughput.cpp.o.d"
  "libones_model.a"
  "libones_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ones_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
