# Empty compiler generated dependencies file for ones_model.
# This may be replaced when dependencies are built.
