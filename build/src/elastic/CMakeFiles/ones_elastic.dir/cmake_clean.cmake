file(REMOVE_RECURSE
  "CMakeFiles/ones_elastic.dir/cost_model.cpp.o"
  "CMakeFiles/ones_elastic.dir/cost_model.cpp.o.d"
  "CMakeFiles/ones_elastic.dir/protocol.cpp.o"
  "CMakeFiles/ones_elastic.dir/protocol.cpp.o.d"
  "libones_elastic.a"
  "libones_elastic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ones_elastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
