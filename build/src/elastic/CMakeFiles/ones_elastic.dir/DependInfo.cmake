
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elastic/cost_model.cpp" "src/elastic/CMakeFiles/ones_elastic.dir/cost_model.cpp.o" "gcc" "src/elastic/CMakeFiles/ones_elastic.dir/cost_model.cpp.o.d"
  "/root/repo/src/elastic/protocol.cpp" "src/elastic/CMakeFiles/ones_elastic.dir/protocol.cpp.o" "gcc" "src/elastic/CMakeFiles/ones_elastic.dir/protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ones_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ones_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ones_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ones_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
