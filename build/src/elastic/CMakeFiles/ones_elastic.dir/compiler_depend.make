# Empty compiler generated dependencies file for ones_elastic.
# This may be replaced when dependencies are built.
