file(REMOVE_RECURSE
  "libones_elastic.a"
)
