file(REMOVE_RECURSE
  "libones_stats.a"
)
