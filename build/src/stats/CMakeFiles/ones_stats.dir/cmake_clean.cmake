file(REMOVE_RECURSE
  "CMakeFiles/ones_stats.dir/beta.cpp.o"
  "CMakeFiles/ones_stats.dir/beta.cpp.o.d"
  "CMakeFiles/ones_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/ones_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/ones_stats.dir/descriptive.cpp.o"
  "CMakeFiles/ones_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/ones_stats.dir/solve.cpp.o"
  "CMakeFiles/ones_stats.dir/solve.cpp.o.d"
  "CMakeFiles/ones_stats.dir/wilcoxon.cpp.o"
  "CMakeFiles/ones_stats.dir/wilcoxon.cpp.o.d"
  "libones_stats.a"
  "libones_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ones_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
