# Empty dependencies file for ones_stats.
# This may be replaced when dependencies are built.
