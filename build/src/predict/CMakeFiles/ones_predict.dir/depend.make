# Empty dependencies file for ones_predict.
# This may be replaced when dependencies are built.
