file(REMOVE_RECURSE
  "libones_predict.a"
)
