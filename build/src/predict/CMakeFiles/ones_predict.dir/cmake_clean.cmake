file(REMOVE_RECURSE
  "CMakeFiles/ones_predict.dir/progress_predictor.cpp.o"
  "CMakeFiles/ones_predict.dir/progress_predictor.cpp.o.d"
  "libones_predict.a"
  "libones_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ones_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
