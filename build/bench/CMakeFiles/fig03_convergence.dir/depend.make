# Empty dependencies file for fig03_convergence.
# This may be replaced when dependencies are built.
