file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_evolution.dir/sensitivity_evolution.cpp.o"
  "CMakeFiles/sensitivity_evolution.dir/sensitivity_evolution.cpp.o.d"
  "sensitivity_evolution"
  "sensitivity_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
