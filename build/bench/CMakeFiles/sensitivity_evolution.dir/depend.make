# Empty dependencies file for sensitivity_evolution.
# This may be replaced when dependencies are built.
