# Empty dependencies file for fig13_abrupt_scaling.
# This may be replaced when dependencies are built.
