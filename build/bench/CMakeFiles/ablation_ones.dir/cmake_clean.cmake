file(REMOVE_RECURSE
  "CMakeFiles/ablation_ones.dir/ablation_ones.cpp.o"
  "CMakeFiles/ablation_ones.dir/ablation_ones.cpp.o.d"
  "ablation_ones"
  "ablation_ones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
