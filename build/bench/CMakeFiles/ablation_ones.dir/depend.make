# Empty dependencies file for ablation_ones.
# This may be replaced when dependencies are built.
