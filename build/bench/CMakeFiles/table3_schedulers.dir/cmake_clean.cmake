file(REMOVE_RECURSE
  "CMakeFiles/table3_schedulers.dir/table3_schedulers.cpp.o"
  "CMakeFiles/table3_schedulers.dir/table3_schedulers.cpp.o.d"
  "table3_schedulers"
  "table3_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
