# Empty compiler generated dependencies file for table3_schedulers.
# This may be replaced when dependencies are built.
