# Empty compiler generated dependencies file for fig14_gradual_scaling.
# This may be replaced when dependencies are built.
