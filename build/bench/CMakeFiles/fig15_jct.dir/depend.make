# Empty dependencies file for fig15_jct.
# This may be replaced when dependencies are built.
