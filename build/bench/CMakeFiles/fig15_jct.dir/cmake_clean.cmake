file(REMOVE_RECURSE
  "CMakeFiles/fig15_jct.dir/fig15_jct.cpp.o"
  "CMakeFiles/fig15_jct.dir/fig15_jct.cpp.o.d"
  "fig15_jct"
  "fig15_jct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_jct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
