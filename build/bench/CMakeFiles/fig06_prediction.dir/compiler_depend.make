# Empty compiler generated dependencies file for fig06_prediction.
# This may be replaced when dependencies are built.
