file(REMOVE_RECURSE
  "CMakeFiles/fig06_prediction.dir/fig06_prediction.cpp.o"
  "CMakeFiles/fig06_prediction.dir/fig06_prediction.cpp.o.d"
  "fig06_prediction"
  "fig06_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
