# Empty compiler generated dependencies file for prediction_quality.
# This may be replaced when dependencies are built.
