file(REMOVE_RECURSE
  "CMakeFiles/prediction_quality.dir/prediction_quality.cpp.o"
  "CMakeFiles/prediction_quality.dir/prediction_quality.cpp.o.d"
  "prediction_quality"
  "prediction_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prediction_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
