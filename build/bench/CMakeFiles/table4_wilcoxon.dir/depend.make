# Empty dependencies file for table4_wilcoxon.
# This may be replaced when dependencies are built.
