file(REMOVE_RECURSE
  "CMakeFiles/table4_wilcoxon.dir/table4_wilcoxon.cpp.o"
  "CMakeFiles/table4_wilcoxon.dir/table4_wilcoxon.cpp.o.d"
  "table4_wilcoxon"
  "table4_wilcoxon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_wilcoxon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
