# Empty compiler generated dependencies file for micro_evolution.
# This may be replaced when dependencies are built.
