file(REMOVE_RECURSE
  "CMakeFiles/micro_evolution.dir/micro_evolution.cpp.o"
  "CMakeFiles/micro_evolution.dir/micro_evolution.cpp.o.d"
  "micro_evolution"
  "micro_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
