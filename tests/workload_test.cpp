// Unit tests for src/workload: the Table 2 catalog and trace generation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "common/math_util.hpp"
#include "model/task.hpp"
#include "workload/trace.hpp"

namespace ones::workload {
namespace {

TEST(Table2, HasExactlyFiftyVariants) {
  EXPECT_EQ(table2_variants().size(), 50u);
}

TEST(Table2, VariantCountsPerModelMatchThePaper) {
  // 4 ImageNet models x 6 sizes + 3 CIFAR models x 5 sizes + BERT x 11.
  std::map<std::string, int> counts;
  for (const auto& v : table2_variants()) counts[v.model_name]++;
  EXPECT_EQ(counts["AlexNet"], 6);
  EXPECT_EQ(counts["ResNet50"], 6);
  EXPECT_EQ(counts["VGG16"], 6);
  EXPECT_EQ(counts["InceptionV3"], 6);
  EXPECT_EQ(counts["ResNet18"], 5);
  EXPECT_EQ(counts["VGG16-CIFAR"], 5);
  EXPECT_EQ(counts["GoogleNet"], 5);
  EXPECT_EQ(counts["BERT"], 11);
}

TEST(Table2, DatasetSizesMatchThePaper) {
  std::set<std::int64_t> imagenet_sizes, cifar_sizes, bert_sizes;
  for (const auto& v : table2_variants()) {
    if (v.dataset.rfind("ImageNet", 0) == 0) imagenet_sizes.insert(v.dataset_size);
    if (v.dataset.rfind("CIFAR10", 0) == 0) cifar_sizes.insert(v.dataset_size);
    if (v.model_name == "BERT") bert_sizes.insert(v.dataset_size);
  }
  EXPECT_EQ(imagenet_sizes,
            (std::set<std::int64_t>{10000, 12000, 14000, 16000, 18000, 20000}));
  EXPECT_EQ(cifar_sizes, (std::set<std::int64_t>{20000, 25000, 30000, 35000, 40000}));
  EXPECT_TRUE(bert_sizes.count(3600));  // MRPC
  EXPECT_TRUE(bert_sizes.count(5000));  // CoLA min
  EXPECT_TRUE(bert_sizes.count(20000)); // SST-2 max
}

TEST(Table2, EveryVariantHasAKnownProfile) {
  for (const auto& v : table2_variants()) {
    EXPECT_NO_THROW(model::profile_by_name(v.model_name)) << v.model_name;
    EXPECT_GT(v.dataset_size, 0) << v.dataset;
    EXPECT_GT(v.num_classes, 1) << v.dataset;
  }
}

TEST(Trace, DeterministicForSameSeed) {
  TraceConfig c;
  c.num_jobs = 30;
  c.seed = 123;
  const auto a = generate_trace(c);
  const auto b = generate_trace(c);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].variant.model_name, b[i].variant.model_name);
    EXPECT_DOUBLE_EQ(a[i].arrival_time_s, b[i].arrival_time_s);
    EXPECT_EQ(a[i].requested_gpus, b[i].requested_gpus);
    EXPECT_EQ(a[i].requested_batch, b[i].requested_batch);
    EXPECT_EQ(a[i].dynamics_seed, b[i].dynamics_seed);
  }
}

TEST(Trace, DifferentSeedsDiffer) {
  TraceConfig c;
  c.num_jobs = 30;
  c.seed = 1;
  const auto a = generate_trace(c);
  c.seed = 2;
  const auto b = generate_trace(c);
  int differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].variant.dataset != b[i].variant.dataset) ++differing;
  }
  EXPECT_GT(differing, 5);
}

TEST(Trace, ArrivalsAreSortedAndStartAtZero) {
  TraceConfig c;
  c.num_jobs = 50;
  const auto trace = generate_trace(c);
  EXPECT_DOUBLE_EQ(trace.front().arrival_time_s, 0.0);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival_time_s, trace[i - 1].arrival_time_s);
  }
}

TEST(Trace, PoissonMeanInterarrivalApproximatesConfig) {
  TraceConfig c;
  c.num_jobs = 4000;
  c.mean_interarrival_s = 30.0;
  c.seed = 9;
  const auto trace = generate_trace(c);
  const double span = trace.back().arrival_time_s;
  EXPECT_NEAR(span / (c.num_jobs - 1), 30.0, 2.0);
}

TEST(Trace, UniformArrivalsWhenPoissonDisabled) {
  TraceConfig c;
  c.num_jobs = 5;
  c.mean_interarrival_s = 10.0;
  c.poisson_arrivals = false;
  const auto trace = generate_trace(c);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(trace[i].arrival_time_s, 10.0 * static_cast<double>(i));
  }
}

TEST(Trace, IdsAreSequential) {
  TraceConfig c;
  c.num_jobs = 10;
  const auto trace = generate_trace(c);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].id, static_cast<JobId>(i));
  }
}

TEST(Trace, RequestedConfigurationsAreFeasible) {
  TraceConfig c;
  c.num_jobs = 200;
  const auto trace = generate_trace(c);
  for (const auto& spec : trace) {
    const auto& p = model::profile_by_name(spec.variant.model_name);
    EXPECT_TRUE(spec.requested_gpus == 1 || spec.requested_gpus == 2 ||
                spec.requested_gpus == 4);
    // The requested local batch must fit GPU memory.
    EXPECT_LE(ceil_div(spec.requested_batch, spec.requested_gpus), p.max_local_batch);
    EXPECT_GE(spec.requested_batch, spec.requested_gpus);
  }
}

TEST(Trace, DrawsFromManyVariants) {
  TraceConfig c;
  c.num_jobs = 300;
  const auto trace = generate_trace(c);
  std::set<std::string> variants;
  for (const auto& spec : trace) {
    variants.insert(spec.variant.model_name + "/" + spec.variant.dataset);
  }
  EXPECT_GT(variants.size(), 40u);  // most of the 50 variants appear
}

// The hyperscale extensions are RNG-gated: a config with the new fields left
// at their defaults must reproduce the pre-extension trace byte-for-byte.
TEST(Trace, HyperscaleDefaultsPreserveRngStream) {
  TraceConfig base;
  base.num_jobs = 100;
  base.seed = 77;
  base.abnormal_fraction = 0.1;
  const auto a = generate_trace(base);

  TraceConfig explicit_defaults = base;
  explicit_defaults.max_requested_gpus = 4;   // already the default
  explicit_defaults.diurnal_amplitude = 0.0;  // already the default
  const auto b = generate_trace(explicit_defaults);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_time_s, b[i].arrival_time_s) << i;
    EXPECT_EQ(a[i].variant.dataset, b[i].variant.dataset) << i;
    EXPECT_EQ(a[i].requested_gpus, b[i].requested_gpus) << i;
    EXPECT_EQ(a[i].requested_batch, b[i].requested_batch) << i;
    EXPECT_DOUBLE_EQ(a[i].kill_after_s, b[i].kill_after_s) << i;
  }
}

TEST(Trace, EightGpuClassAppearsOnlyInHyperscaleMix) {
  TraceConfig c;
  c.num_jobs = 400;
  c.seed = 5;
  c.max_requested_gpus = 8;
  const auto trace = generate_trace(c);
  int eights = 0;
  for (const auto& spec : trace) {
    EXPECT_TRUE(spec.requested_gpus == 1 || spec.requested_gpus == 2 ||
                spec.requested_gpus == 4 || spec.requested_gpus == 8);
    const auto& p = model::profile_by_name(spec.variant.model_name);
    EXPECT_LE(ceil_div(spec.requested_batch, spec.requested_gpus), p.max_local_batch);
    if (spec.requested_gpus == 8) ++eights;
  }
  // Weight 0.1 of 400 jobs: expect a healthy number of 8-GPU gangs.
  EXPECT_GT(eights, 10);
  EXPECT_LT(eights, 100);
}

TEST(Trace, DiurnalModulationKeepsArrivalsMonotone) {
  TraceConfig c;
  c.num_jobs = 2000;
  c.seed = 13;
  c.mean_interarrival_s = 120.0;
  c.diurnal_amplitude = 0.6;
  const auto trace = generate_trace(c);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].arrival_time_s, trace[i - 1].arrival_time_s);
  }
  // The long-run mean rate is only modulated, not shifted: the span should
  // stay within a factor ~2 of the homogeneous expectation.
  const double span = trace.back().arrival_time_s;
  const double expect_span = c.mean_interarrival_s * (c.num_jobs - 1);
  EXPECT_GT(span, 0.4 * expect_span);
  EXPECT_LT(span, 2.5 * expect_span);
}

TEST(Trace, DiurnalRateActuallyVariesByTimeOfDay) {
  TraceConfig c;
  c.num_jobs = 5000;
  c.seed = 21;
  c.mean_interarrival_s = 60.0;
  c.diurnal_amplitude = 0.8;
  const auto trace = generate_trace(c);
  // Bucket arrivals by half-day phase: the "fast" half-period (sin > 0)
  // should receive clearly more jobs than the "slow" one.
  int fast = 0, slow = 0;
  for (const auto& spec : trace) {
    const double phase = std::fmod(spec.arrival_time_s, 86400.0);
    (phase < 43200.0 ? fast : slow)++;
  }
  EXPECT_GT(fast, slow + slow / 2);
}

TEST(Trace, RejectsInvalidHyperscaleConfig) {
  TraceConfig c;
  c.num_jobs = 4;
  c.max_requested_gpus = 16;
  EXPECT_THROW(generate_trace(c), std::logic_error);
  c.max_requested_gpus = 4;
  c.diurnal_amplitude = 1.0;
  EXPECT_THROW(generate_trace(c), std::logic_error);
}

TEST(Trace, FormatTable2MentionsEveryModel) {
  const auto s = format_table2();
  for (const char* name : {"AlexNet", "ResNet50", "VGG16", "InceptionV3", "ResNet18",
                           "GoogleNet", "BERT"}) {
    EXPECT_NE(s.find(name), std::string::npos) << name;
  }
  EXPECT_NE(s.find("50"), std::string::npos);
}

}  // namespace
}  // namespace ones::workload
