// Edge-case tests for the simulation driver: same-instant event ordering,
// burst arrivals, minimal clusters, heavyweight-model traces, no-op
// assignments, disabled epoch logs and oracle noise.
#include <gtest/gtest.h>

#include "core/ones_scheduler.hpp"
#include "sched/fifo.hpp"
#include "sched/simulation.hpp"
#include "sched/tiresias.hpp"
#include "telemetry/metrics.hpp"
#include "workload/trace.hpp"

namespace ones::sched {
namespace {

workload::JobSpec make_spec(JobId id, const char* model, std::int64_t dataset,
                            double arrival, int gpus = 1) {
  workload::JobSpec s;
  s.id = id;
  s.variant = {model, "edge", dataset, 10};
  s.arrival_time_s = arrival;
  s.requested_gpus = gpus;
  const auto& p = model::profile_by_name(model);
  s.requested_batch = std::min(p.b_ref, p.max_local_batch) * gpus;
  s.dynamics_seed = static_cast<std::uint64_t>(id) + 1;
  return s;
}

SimulationConfig config_with(int nodes, int gpus_per_node = 4) {
  SimulationConfig c;
  c.topology.num_nodes = nodes;
  c.topology.gpus_per_node = gpus_per_node;
  return c;
}

TEST(SimEdge, SingleGpuClusterSerializesEverything) {
  std::vector<workload::JobSpec> trace = {
      make_spec(0, "ResNet18", 20000, 0.0),
      make_spec(1, "GoogleNet", 20000, 1.0),
      make_spec(2, "VGG16-CIFAR", 20000, 2.0),
  };
  FifoScheduler fifo;
  ClusterSimulation sim(config_with(1, 1), trace, fifo);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  // One GPU: completions are strictly ordered and never overlap.
  const auto& m = sim.metrics();
  EXPECT_LT(m.job(0).completion_s, m.job(1).completion_s);
  EXPECT_LT(m.job(1).completion_s, m.job(2).completion_s);
  // Utilization near 1 while draining a serialized backlog.
  EXPECT_GT(m.avg_utilization(1, m.makespan()), 0.9);
}

TEST(SimEdge, BurstArrivalsAtTimeZero) {
  std::vector<workload::JobSpec> trace;
  for (JobId j = 0; j < 12; ++j) {
    trace.push_back(make_spec(j, "ResNet18", 20000, 0.0));
  }
  core::OnesScheduler s;
  ClusterSimulation sim(config_with(2), trace, s);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
}

TEST(SimEdge, ArrivalAndCompletionOrderingIsDeterministic) {
  // Two identical runs with simultaneous events must agree exactly.
  std::vector<workload::JobSpec> trace;
  for (JobId j = 0; j < 8; ++j) {
    trace.push_back(make_spec(j, "GoogleNet", 25000, static_cast<double>(j / 2) * 10.0));
  }
  auto run = [&] {
    TiresiasScheduler s;
    ClusterSimulation sim(config_with(2), trace, s);
    sim.run();
    return sim.metrics().jcts();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(SimEdge, HeavyModelOnlyTrace) {
  // BERT everywhere: large all-reduce payloads, small reference batches.
  std::vector<workload::JobSpec> trace;
  for (JobId j = 0; j < 6; ++j) {
    trace.push_back(make_spec(j, "BERT", 5000, 15.0 * static_cast<double>(j), 2));
  }
  core::OnesScheduler s;
  ClusterSimulation sim(config_with(2), trace, s);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
}

// Returns the current assignment unchanged on every event: the driver must
// treat it as a no-op (no costs charged, jobs keep running).
class EchoScheduler : public Scheduler {
 public:
  std::string name() const override { return "Echo"; }
  std::optional<cluster::Assignment> on_event(const ClusterState& state,
                                              const SchedulerEvent& event) override {
    if (event.kind == EventKind::JobArrival && state.current->idle_count() > 0) {
      cluster::Assignment a = *state.current;
      const auto* job = state.job(event.job);
      a.place(a.idle_gpus().front(), event.job,
              std::min(job->spec.requested_batch, job->profile->max_local_batch));
      return a;
    }
    return *state.current;  // pure echo: must not disturb anything
  }
};

TEST(SimEdge, EchoAssignmentsAreFreeNoOps) {
  std::vector<workload::JobSpec> trace = {make_spec(0, "ResNet18", 20000, 0.0)};
  double echo_jct, fifo_jct;
  {
    EchoScheduler s;
    ClusterSimulation sim(config_with(1), trace, s);
    sim.run();
    ASSERT_TRUE(sim.all_completed());
    echo_jct = sim.metrics().job(0).jct();
  }
  {
    FifoScheduler s;
    ClusterSimulation sim(config_with(1), trace, s);
    sim.run();
    fifo_jct = sim.metrics().job(0).jct();
  }
  // Echoing the schedule on every epoch must not add any re-config cost.
  EXPECT_DOUBLE_EQ(echo_jct, fifo_jct);
}

TEST(SimEdge, DisabledEpochLogsStillCompleteAndCount) {
  auto cfg = config_with(2);
  cfg.record_epoch_logs = false;
  std::vector<workload::JobSpec> trace = {make_spec(0, "ResNet18", 20000, 0.0),
                                          make_spec(1, "GoogleNet", 20000, 5.0)};
  FifoScheduler s;
  ClusterSimulation sim(cfg, trace, s);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  EXPECT_TRUE(sim.job_view(0).epoch_log.empty());
  EXPECT_GT(sim.job_view(0).epochs_completed, 10);
}

TEST(SimEdge, OracleNoiseDoesNotBreakSchedulers) {
  auto cfg = config_with(2);
  cfg.oracle.noise_sigma = 0.25;  // heavy profiling error
  workload::TraceConfig tc;
  tc.num_jobs = 10;
  tc.mean_interarrival_s = 10.0;
  tc.seed = 51;
  core::OnesScheduler s;
  ClusterSimulation sim(cfg, workload::generate_trace(tc), s);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
}

TEST(SimEdge, TinyDatasetManyEpochs) {
  // MRPC-sized dataset: epochs are seconds long; event churn is high.
  std::vector<workload::JobSpec> trace = {make_spec(0, "BERT", 3600, 0.0)};
  core::OnesScheduler s;
  ClusterSimulation sim(config_with(1), trace, s);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  EXPECT_GE(sim.job_view(0).epochs_completed, 13);  // 4 + 10 - 1
}

TEST(SimEdge, LateArrivalAfterClusterDrains) {
  std::vector<workload::JobSpec> trace = {make_spec(0, "ResNet18", 20000, 0.0),
                                          make_spec(1, "ResNet18", 20000, 5000.0)};
  core::OnesScheduler s;
  ClusterSimulation sim(config_with(1), trace, s);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  // The late job starts essentially immediately on the empty cluster.
  const auto& m = sim.metrics().job(1);
  EXPECT_LT(m.first_start_s - m.arrival_s, 1.0);
}

}  // namespace
}  // namespace ones::sched
