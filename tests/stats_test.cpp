// Unit tests for src/stats: Beta distribution, digamma, linear solver,
// ridge regression, Wilcoxon tests, descriptive statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "stats/beta.hpp"
#include "stats/descriptive.hpp"
#include "stats/solve.hpp"
#include "stats/wilcoxon.hpp"

namespace ones::stats {
namespace {

TEST(BetaFn, MatchesKnownValues) {
  // B(1,1) = 1; B(2,3) = 1/12; B(0.5,0.5) = pi.
  EXPECT_NEAR(std::exp(log_beta_fn(1.0, 1.0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_beta_fn(2.0, 3.0)), 1.0 / 12.0, 1e-12);
  EXPECT_NEAR(std::exp(log_beta_fn(0.5, 0.5)), M_PI, 1e-10);
}

TEST(Digamma, MatchesKnownValues) {
  // psi(1) = -gamma (Euler-Mascheroni); psi(0.5) = -gamma - 2 ln 2.
  constexpr double kEuler = 0.5772156649015328606;
  EXPECT_NEAR(digamma(1.0), -kEuler, 1e-10);
  EXPECT_NEAR(digamma(0.5), -kEuler - 2.0 * std::log(2.0), 1e-10);
  // Recurrence: psi(x+1) = psi(x) + 1/x.
  EXPECT_NEAR(digamma(4.7), digamma(3.7) + 1.0 / 3.7, 1e-10);
}

TEST(IncompleteBeta, BoundaryValues) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, UniformCaseIsIdentity) {
  // Be(1,1) is uniform: I_x(1,1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(IncompleteBeta, SymmetryIdentity) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(incomplete_beta(2.5, 4.0, 0.3),
              1.0 - incomplete_beta(4.0, 2.5, 0.7), 1e-10);
}

TEST(BetaDistribution, MomentsMatchClosedForm) {
  BetaDistribution d(3.0, 7.0);
  EXPECT_NEAR(d.mean(), 0.3, 1e-12);
  EXPECT_NEAR(d.variance(), 3.0 * 7.0 / (100.0 * 11.0), 1e-12);
  EXPECT_NEAR(d.mode(), 2.0 / 8.0, 1e-12);
}

TEST(BetaDistribution, PdfIntegratesToOne) {
  BetaDistribution d(2.5, 5.0);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = (i + 0.5) / n;
    sum += d.pdf(x) / n;
  }
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(BetaDistribution, CdfQuantileRoundTrip) {
  BetaDistribution d(4.0, 2.0);
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-8);
  }
}

TEST(BetaDistribution, CredibleIntervalCoverage) {
  BetaDistribution d(5.0, 5.0);
  const auto [lo, hi] = d.credible_interval(0.9);
  EXPECT_NEAR(d.cdf(hi) - d.cdf(lo), 0.9, 1e-6);
  EXPECT_LT(lo, d.mean());
  EXPECT_GT(hi, d.mean());
}

TEST(BetaDistribution, SampleMomentsMatch) {
  BetaDistribution d(2.0, 8.0);
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(d.sample(rng));
  EXPECT_NEAR(stats.mean(), d.mean(), 0.005);
  EXPECT_NEAR(stats.variance(), d.variance(), 0.002);
}

TEST(BetaDistribution, RejectsInvalidParameters) {
  EXPECT_THROW(BetaDistribution(0.0, 1.0), std::logic_error);
  EXPECT_THROW(BetaDistribution(1.0, -2.0), std::logic_error);
}

TEST(Matrix, MultiplyIdentity) {
  Matrix a(2, 3);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(0, 2) = 3;
  a.at(1, 0) = 4;
  a.at(1, 1) = 5;
  a.at(1, 2) = 6;
  const Matrix i3 = Matrix::identity(3);
  const Matrix prod = a * i3;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(prod.at(r, c), a.at(r, c));
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a(2, 3);
  a.at(0, 2) = 5.0;
  a.at(1, 0) = -1.0;
  const Matrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1), -1.0);
}

TEST(SolveLinear, SolvesKnownSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3].
  Matrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  const auto x = solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, NeedsPivoting) {
  // Zero on the diagonal requires a row swap.
  Matrix a(2, 2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 0;
  const auto x = solve_linear(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, ThrowsOnSingular) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  EXPECT_THROW(solve_linear(a, {1.0, 2.0}), std::logic_error);
}

TEST(RidgeRegression, RecoversExactLinearModel) {
  // y = 3 x1 - 2 x2 + 1 with no noise and lambda = 0.
  Rng rng(5);
  const std::size_t n = 50;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x1 = rng.uniform(-1, 1), x2 = rng.uniform(-1, 1);
    x.at(i, 0) = x1;
    x.at(i, 1) = x2;
    x.at(i, 2) = 1.0;
    y[i] = 3.0 * x1 - 2.0 * x2 + 1.0;
  }
  const auto w = ridge_regression(x, y, 0.0);
  EXPECT_NEAR(w[0], 3.0, 1e-9);
  EXPECT_NEAR(w[1], -2.0, 1e-9);
  EXPECT_NEAR(w[2], 1.0, 1e-9);
}

TEST(RidgeRegression, LambdaShrinksWeights) {
  Rng rng(6);
  const std::size_t n = 40;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x1 = rng.uniform(-1, 1);
    x.at(i, 0) = x1;
    x.at(i, 1) = 1.0;
    y[i] = 5.0 * x1;
  }
  const auto w0 = ridge_regression(x, y, 0.0);
  const auto w1 = ridge_regression(x, y, 100.0);
  EXPECT_LT(std::fabs(w1[0]), std::fabs(w0[0]));
}

TEST(Wilcoxon, SignedRankDetectsConsistentShift) {
  Rng rng(7);
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    const double base = rng.uniform(10, 100);
    x.push_back(base);            // "ONES": consistently smaller
    y.push_back(base * 1.5 + 1);  // baseline
  }
  const auto res = wilcoxon_signed_rank(x, y);
  EXPECT_LT(res.p_two_sided, 1e-6);
  EXPECT_LT(res.p_less, 1e-6);      // x < y strongly supported
  EXPECT_GT(res.p_greater, 0.999);  // the paper's "one-sided negative" view
}

TEST(Wilcoxon, SignedRankNoDifference) {
  Rng rng(8);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(rng.normal(50, 5));
    y.push_back(rng.normal(50, 5));
  }
  const auto res = wilcoxon_signed_rank(x, y);
  EXPECT_GT(res.p_two_sided, 0.05);
}

TEST(Wilcoxon, SignedRankDropsZeroDifferences) {
  const std::vector<double> x = {1, 2, 3, 4, 10};
  const std::vector<double> y = {1, 2, 3, 4, 5};
  const auto res = wilcoxon_signed_rank(x, y);
  EXPECT_EQ(res.n_effective, 1u);
}

TEST(Wilcoxon, SignedRankRequiresPairs) {
  EXPECT_THROW(wilcoxon_signed_rank({1.0, 2.0}, {1.0}), std::logic_error);
}

TEST(Wilcoxon, RankSumDetectsShift) {
  Rng rng(9);
  std::vector<double> x, y;
  for (int i = 0; i < 80; ++i) x.push_back(rng.normal(10, 2));
  for (int i = 0; i < 90; ++i) y.push_back(rng.normal(14, 2));
  const auto res = wilcoxon_rank_sum(x, y);
  EXPECT_LT(res.p_two_sided, 1e-6);
  EXPECT_LT(res.p_less, 1e-6);
}

TEST(Wilcoxon, RankSumSymmetric) {
  Rng rng(10);
  std::vector<double> x, y;
  for (int i = 0; i < 60; ++i) x.push_back(rng.normal(0, 1));
  for (int i = 0; i < 60; ++i) y.push_back(rng.normal(0, 1));
  const auto ab = wilcoxon_rank_sum(x, y);
  const auto ba = wilcoxon_rank_sum(y, x);
  EXPECT_NEAR(ab.p_two_sided, ba.p_two_sided, 1e-9);
  EXPECT_NEAR(ab.p_less, ba.p_greater, 1e-9);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(Descriptive, BoxStatsQuartiles) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(static_cast<double>(i));
  const auto b = box_stats(v);
  EXPECT_DOUBLE_EQ(b.median, 51.0);
  EXPECT_DOUBLE_EQ(b.q1, 26.0);
  EXPECT_DOUBLE_EQ(b.q3, 76.0);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.max, 101.0);
  EXPECT_TRUE(b.outliers.empty());
}

TEST(Descriptive, BoxStatsFlagsOutliers) {
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 500};
  const auto b = box_stats(v);
  ASSERT_EQ(b.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(b.outliers[0], 500.0);
  EXPECT_LE(b.whisker_hi, 10.0);
}

TEST(Descriptive, EcdfMonotoneAndBounded) {
  const auto e = ecdf({5.0, 1.0, 3.0, 3.0, 9.0});
  EXPECT_TRUE(std::is_sorted(e.x.begin(), e.x.end()));
  EXPECT_TRUE(std::is_sorted(e.f.begin(), e.f.end()));
  EXPECT_DOUBLE_EQ(e.f.back(), 1.0);
  EXPECT_DOUBLE_EQ(e.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(e.at(3.0), 0.6);  // 3 of 5 samples <= 3
  EXPECT_DOUBLE_EQ(e.at(100.0), 1.0);
}

TEST(Descriptive, FormatBoxMentionsCounts) {
  const auto b = box_stats({1.0, 2.0, 3.0});
  const auto s = format_box(b);
  EXPECT_NE(s.find("n=3"), std::string::npos);
}

}  // namespace
}  // namespace ones::stats
