// Unit tests for src/telemetry: JCT decomposition into execution and
// queuing time, utilization integral, summaries.
#include <gtest/gtest.h>

#include "telemetry/metrics.hpp"

namespace ones::telemetry {
namespace {

TEST(Metrics, JctDecomposition) {
  MetricsCollector m;
  m.on_submit(1, 10.0);
  m.on_run_start(1, 15.0);   // queued 5 s
  m.on_run_end(1, 40.0, true);  // ran 25 s, preempted
  m.on_run_start(1, 50.0);   // queued 10 s more
  m.on_run_end(1, 70.0, false);
  m.on_complete(1, 70.0);

  const auto& j = m.job(1);
  EXPECT_TRUE(j.completed());
  EXPECT_DOUBLE_EQ(j.jct(), 60.0);
  EXPECT_DOUBLE_EQ(j.exec_time_s, 45.0);
  EXPECT_DOUBLE_EQ(j.queue_time(), 15.0);
  EXPECT_EQ(j.preemptions, 1);
  EXPECT_DOUBLE_EQ(j.first_start_s, 15.0);
}

TEST(Metrics, VectorsOnlyIncludeCompleted) {
  MetricsCollector m;
  m.on_submit(1, 0.0);
  m.on_submit(2, 0.0);
  m.on_run_start(1, 0.0);
  m.on_run_end(1, 10.0, false);
  m.on_complete(1, 10.0);
  EXPECT_EQ(m.submitted(), 2u);
  EXPECT_EQ(m.completed(), 1u);
  EXPECT_EQ(m.jcts().size(), 1u);
  EXPECT_EQ(m.exec_times().size(), 1u);
  EXPECT_EQ(m.queue_times().size(), 1u);
  EXPECT_EQ(m.jct_by_job().count(1), 1u);
  EXPECT_EQ(m.jct_by_job().count(2), 0u);
}

TEST(Metrics, RejectsProtocolViolations) {
  MetricsCollector m;
  EXPECT_THROW(m.on_run_start(9, 0.0), std::logic_error);  // unknown job
  m.on_submit(1, 0.0);
  EXPECT_THROW(m.on_run_end(1, 1.0, false), std::logic_error);  // not running
  m.on_run_start(1, 1.0);
  EXPECT_THROW(m.on_run_start(1, 2.0), std::logic_error);  // already running
  EXPECT_THROW(m.on_complete(1, 3.0), std::logic_error);   // still running
  m.on_run_end(1, 3.0, false);
  m.on_complete(1, 3.0);
  EXPECT_THROW(m.on_complete(1, 4.0), std::logic_error);  // completed twice
  EXPECT_THROW(m.on_submit(1, 5.0), std::logic_error);    // submitted twice
}

TEST(Metrics, UtilizationIntegral) {
  MetricsCollector m;
  m.on_busy_gpus(4, 0.0);   // 4 busy on [0, 10)
  m.on_busy_gpus(8, 10.0);  // 8 busy on [10, 20)
  m.on_busy_gpus(0, 20.0);  // idle afterwards
  // Over [0, 20] with 8 GPUs: (4*10 + 8*10) / (8*20) = 0.75.
  EXPECT_NEAR(m.avg_utilization(8, 20.0), 0.75, 1e-12);
  // Over [0, 40]: the idle tail halves it.
  EXPECT_NEAR(m.avg_utilization(8, 40.0), 0.375, 1e-12);
}

TEST(Metrics, UtilizationCountsOpenSegment) {
  MetricsCollector m;
  m.on_busy_gpus(2, 0.0);
  // No further change: the busy level extends to the horizon.
  EXPECT_NEAR(m.avg_utilization(4, 10.0), 0.5, 1e-12);
}

TEST(Metrics, MakespanTracksLastCompletion) {
  MetricsCollector m;
  m.on_submit(1, 0.0);
  m.on_submit(2, 0.0);
  for (JobId j : {JobId{1}, JobId{2}}) {
    m.on_run_start(j, 1.0);
  }
  m.on_run_end(1, 50.0, false);
  m.on_complete(1, 50.0);
  m.on_run_end(2, 30.0, false);
  m.on_complete(2, 30.0);
  EXPECT_DOUBLE_EQ(m.makespan(), 50.0);
}

TEST(Summary, AggregatesAndFormats) {
  MetricsCollector m;
  for (int i = 0; i < 4; ++i) {
    m.on_submit(i, 0.0);
    m.on_run_start(i, 10.0 * i);
    m.on_run_end(i, 10.0 * i + 100.0, false);
    m.on_complete(i, 10.0 * i + 100.0);
  }
  m.on_busy_gpus(4, 0.0);
  const auto s = summarize("TEST", m, 4);
  EXPECT_EQ(s.jobs, 4u);
  EXPECT_DOUBLE_EQ(s.avg_exec, 100.0);
  EXPECT_DOUBLE_EQ(s.avg_queue, 15.0);  // queues 0, 10, 20, 30
  EXPECT_DOUBLE_EQ(s.avg_jct, 115.0);
  EXPECT_DOUBLE_EQ(s.makespan, 130.0);

  const auto header = format_summary_header();
  const auto row = format_summary_row(s);
  EXPECT_NE(header.find("avgJCT"), std::string::npos);
  EXPECT_NE(row.find("TEST"), std::string::npos);
}

TEST(Summary, EmptyCollectorYieldsZeros) {
  MetricsCollector m;
  const auto s = summarize("EMPTY", m, 4);
  EXPECT_EQ(s.jobs, 0u);
  EXPECT_DOUBLE_EQ(s.avg_jct, 0.0);
}

}  // namespace
}  // namespace ones::telemetry
