// Unit tests for src/cluster: topology, assignments (Eq. 1/2 mapping),
// invariants (Eq. 4 style), and schedule diffing.
#include <gtest/gtest.h>

#include "cluster/assignment.hpp"
#include "cluster/topology.hpp"

namespace ones::cluster {
namespace {

TopologyConfig small_config() {
  TopologyConfig c;
  c.num_nodes = 4;
  c.gpus_per_node = 4;
  return c;
}

TEST(Topology, Counts) {
  Topology t(small_config());
  EXPECT_EQ(t.total_gpus(), 16);
  EXPECT_EQ(t.num_nodes(), 4);
  EXPECT_EQ(t.gpus_per_node(), 4);
}

TEST(Topology, NodeOfMapsDensely) {
  Topology t(small_config());
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(3), 0);
  EXPECT_EQ(t.node_of(4), 1);
  EXPECT_EQ(t.node_of(15), 3);
  EXPECT_THROW(t.node_of(16), std::logic_error);
  EXPECT_THROW(t.node_of(-1), std::logic_error);
}

TEST(Topology, GpusOfNode) {
  Topology t(small_config());
  EXPECT_EQ(t.gpus_of(2), (std::vector<GpuId>{8, 9, 10, 11}));
}

TEST(Topology, NodesSpanned) {
  Topology t(small_config());
  EXPECT_EQ(t.nodes_spanned({0, 1, 2}), 1);
  EXPECT_EQ(t.nodes_spanned({0, 4}), 2);
  EXPECT_EQ(t.nodes_spanned({0, 5, 10, 15}), 4);
}

TEST(Topology, LinkProfileSelectsSlowestSegment) {
  Topology t(small_config());
  const auto intra = t.link_profile({0, 1});
  const auto inter = t.link_profile({0, 4});
  EXPECT_GT(intra.bandwidth_Bps, inter.bandwidth_Bps);
  EXPECT_LT(intra.latency_s, inter.latency_s);
  EXPECT_DOUBLE_EQ(intra.bandwidth_Bps, small_config().intra_node_bw_Bps);
  EXPECT_DOUBLE_EQ(inter.bandwidth_Bps, small_config().inter_node_bw_Bps);
}

TEST(Assignment, StartsEmpty) {
  Assignment a(8);
  EXPECT_EQ(a.num_gpus(), 8);
  EXPECT_EQ(a.idle_count(), 8);
  EXPECT_TRUE(a.running_jobs().empty());
}

TEST(Assignment, PlaceAndDerivedViews) {
  Assignment a(8);
  a.place(0, 1, 64);
  a.place(1, 1, 64);
  a.place(5, 2, 32);
  // Eq. 2: B_j = sum of local batches, c_j = worker count.
  EXPECT_EQ(a.global_batch(1), 128);
  EXPECT_EQ(a.gpu_count(1), 2);
  EXPECT_EQ(a.global_batch(2), 32);
  EXPECT_EQ(a.gpu_count(2), 1);
  EXPECT_EQ(a.gpus_of(1), (std::vector<GpuId>{0, 1}));
  EXPECT_EQ(a.running_jobs(), (std::vector<JobId>{1, 2}));
  EXPECT_EQ(a.idle_count(), 5);
}

TEST(Assignment, UnplacedJobHasZeroBatchAndGpus) {
  Assignment a(4);
  EXPECT_EQ(a.global_batch(42), 0);
  EXPECT_EQ(a.gpu_count(42), 0);
}

TEST(Assignment, PlaceOverwrites) {
  Assignment a(4);
  a.place(0, 1, 64);
  a.place(0, 2, 32);  // preempt job 1 on this GPU
  EXPECT_EQ(a.slot(0).job, 2);
  EXPECT_EQ(a.gpu_count(1), 0);
}

TEST(Assignment, ClearAndEvict) {
  Assignment a(4);
  a.place(0, 1, 64);
  a.place(1, 1, 64);
  a.place(2, 2, 32);
  a.clear(0);
  EXPECT_EQ(a.gpu_count(1), 1);
  EXPECT_EQ(a.evict(1), 1);
  EXPECT_EQ(a.gpu_count(1), 0);
  EXPECT_EQ(a.evict(1), 0);  // idempotent
  EXPECT_EQ(a.gpu_count(2), 1);
}

TEST(Assignment, SetLocalBatch) {
  Assignment a(2);
  a.place(0, 1, 64);
  a.set_local_batch(0, 128);
  EXPECT_EQ(a.global_batch(1), 128);
  EXPECT_THROW(a.set_local_batch(1, 32), std::logic_error);  // idle GPU
}

TEST(Assignment, RejectsInvalidPlacement) {
  Assignment a(2);
  EXPECT_THROW(a.place(0, kInvalidJob, 16), std::logic_error);
  EXPECT_THROW(a.place(0, 1, 0), std::logic_error);   // empty worker
  EXPECT_THROW(a.place(5, 1, 16), std::logic_error);  // out of range
}

TEST(Assignment, RunningJobsFirstOccurrenceOrder) {
  Assignment a(6);
  a.place(0, 7, 8);
  a.place(1, 3, 8);
  a.place(2, 7, 8);
  a.place(3, 5, 8);
  EXPECT_EQ(a.running_jobs(), (std::vector<JobId>{7, 3, 5}));
}

TEST(Assignment, EqualityAndToString) {
  Assignment a(3), b(3);
  a.place(0, 1, 16);
  b.place(0, 1, 16);
  EXPECT_EQ(a, b);
  b.place(2, 2, 8);
  EXPECT_NE(a, b);
  EXPECT_EQ(b.to_string(), "[1:16 - 2:8]");
}

TEST(Assignment, CheckInvariantsPasses) {
  Assignment a(4);
  a.place(0, 1, 16);
  EXPECT_NO_THROW(a.check_invariants());
}

TEST(AssignmentDiff, ClassifiesChanges) {
  Assignment prev(6), next(6);
  prev.place(0, 1, 16);  // job 1: unchanged
  next.place(0, 1, 16);
  prev.place(1, 2, 16);  // job 2: stopped
  next.place(2, 3, 16);  // job 3: started
  prev.place(3, 4, 16);  // job 4: moved GPU (reconfigured)
  next.place(4, 4, 16);
  prev.place(5, 5, 16);  // job 5: batch changed (reconfigured)
  next.place(5, 5, 32);

  const auto d = diff(prev, next);
  EXPECT_EQ(d.unchanged, (std::vector<JobId>{1}));
  EXPECT_EQ(d.stopped, (std::vector<JobId>{2}));
  EXPECT_EQ(d.started, (std::vector<JobId>{3}));
  ASSERT_EQ(d.reconfigured.size(), 2u);
  EXPECT_TRUE((d.reconfigured == std::vector<JobId>{4, 5}) ||
              (d.reconfigured == std::vector<JobId>{5, 4}));
}

TEST(AssignmentDiff, GrowingWorkerSetIsReconfigured) {
  Assignment prev(4), next(4);
  prev.place(0, 1, 32);
  next.place(0, 1, 16);
  next.place(1, 1, 16);
  const auto d = diff(prev, next);
  EXPECT_EQ(d.reconfigured, (std::vector<JobId>{1}));
  EXPECT_TRUE(d.started.empty());
  EXPECT_TRUE(d.stopped.empty());
}

TEST(AssignmentDiff, RequiresSameClusterSize) {
  Assignment a(2), b(3);
  EXPECT_THROW(diff(a, b), std::logic_error);
}

}  // namespace
}  // namespace ones::cluster
