// Unit tests for src/model: the task catalog, the throughput model (incl.
// the Fig 2 shape) and the convergence dynamics (incl. Fig 3 / Fig 13 / 14
// shapes and the §4.1 termination rule).
#include <gtest/gtest.h>

#include <cmath>

#include "model/convergence.hpp"
#include "model/task.hpp"
#include "model/throughput.hpp"

namespace ones::model {
namespace {

cluster::LinkProfile nvlink() { return {130.0e9, 5e-6}; }
cluster::LinkProfile infiniband() { return {12.0e9, 2.5e-5}; }

TEST(TaskCatalog, ContainsAllTable2Models) {
  for (const char* name : {"AlexNet", "ResNet50", "VGG16", "InceptionV3", "ResNet18",
                           "VGG16-CIFAR", "GoogleNet", "BERT", "ResNet50-CIFAR"}) {
    EXPECT_NO_THROW(profile_by_name(name)) << name;
  }
  EXPECT_THROW(profile_by_name("GPT-7"), std::logic_error);
}

TEST(TaskCatalog, ProfilesAreSane) {
  for (const auto& p : builtin_profiles()) {
    EXPECT_GT(p.params_bytes, 0.0) << p.name;
    EXPECT_GT(p.t_sample_s, 0.0) << p.name;
    EXPECT_GE(p.max_local_batch, p.min_util_batch) << p.name;
    EXPECT_GT(p.b_crit, 0.0) << p.name;
    EXPECT_LT(p.target_accuracy, p.accuracy_ceiling) << p.name;
    EXPECT_GT(p.init_loss, p.final_loss) << p.name;
    // The reference batch must fit on one GPU or on a small worker group.
    EXPECT_LE(p.b_ref, 4 * p.max_local_batch) << p.name;
  }
}

TEST(Throughput, EvenSplitDistributesRemainder) {
  EXPECT_EQ(even_split(10, 3), (std::vector<int>{4, 3, 3}));
  EXPECT_EQ(even_split(8, 4), (std::vector<int>{2, 2, 2, 2}));
  EXPECT_THROW(even_split(2, 3), std::logic_error);  // a worker with no sample
}

TEST(Throughput, SingleWorkerHasNoCommCost) {
  const auto& p = profile_by_name("ResNet18");
  const double t1 = step_time_even_s(p, 256, 1, nvlink());
  const double expected = p.t_step_fixed_s + 256 * p.t_sample_s;
  EXPECT_NEAR(t1, expected, 1e-12);
}

TEST(Throughput, CommCostGrowsWithWorkersAndShrinksWithBandwidth) {
  const auto& p = profile_by_name("ResNet50");
  const double t2 = step_time_even_s(p, 512, 2, nvlink());
  const double t2_ib = step_time_even_s(p, 512, 2, infiniband());
  EXPECT_GT(t2_ib, t2);  // slower fabric, slower step
}

TEST(Throughput, LaunchBoundFloor) {
  const auto& p = profile_by_name("ResNet18");  // min_util_batch = 128
  // Local batches 32 and 128 cost the same compute (floor), so the 4-worker
  // and 16-worker step times differ only in comm.
  const double t_small = step_time_even_s(p, 128, 4, nvlink());
  const double t_floor = step_time_even_s(p, 512, 4, nvlink());
  EXPECT_NEAR(t_small, t_floor, 1e-12);
}

// The paper's Figure 2: with a FIXED global batch, throughput stops scaling
// past ~2 workers and drops across nodes; with an ELASTIC batch (B grows
// with the workers), throughput keeps increasing.
TEST(Throughput, Fig2FixedBatchStopsScaling) {
  const auto& p = profile_by_name("ResNet50-CIFAR");
  const double x1 = throughput_even_sps(p, 256, 1, nvlink());
  const double x2 = throughput_even_sps(p, 256, 2, nvlink());
  const double x4 = throughput_even_sps(p, 256, 4, nvlink());
  const double x8 = throughput_even_sps(p, 256, 8, infiniband());
  EXPECT_GT(x2, x1);               // 1 -> 2 still helps
  EXPECT_LT(x4 / x2, 1.10);        // past 2: flat (within 10%)
  EXPECT_LT(x8, x2);               // across nodes: drops
}

TEST(Throughput, Fig2ElasticBatchKeepsScaling) {
  const auto& p = profile_by_name("ResNet50-CIFAR");
  const double x1 = throughput_even_sps(p, 256, 1, nvlink());
  const double x2 = throughput_even_sps(p, 512, 2, nvlink());
  const double x4 = throughput_even_sps(p, 1024, 4, nvlink());
  const double x8 = throughput_even_sps(p, 2048, 8, infiniband());
  EXPECT_GT(x2, 1.5 * x1);
  EXPECT_GT(x4, 1.5 * x2);
  EXPECT_GT(x8, 1.2 * x4);
}

TEST(Throughput, RejectsEmptyAndZeroBatches) {
  const auto& p = profile_by_name("ResNet18");
  EXPECT_THROW(step_time_s(p, {}, nvlink()), std::logic_error);
  EXPECT_THROW(step_time_s(p, {0}, nvlink()), std::logic_error);
}

ConvergenceConfig quiet_config() {
  ConvergenceConfig c;
  c.accuracy_noise = 0.0;  // deterministic for unit tests
  return c;
}

TEST(Convergence, EfficiencyIsOneAtReferenceBatch) {
  const auto& p = profile_by_name("ResNet18");
  TrainDynamics d(p, 20000, quiet_config(), 1);
  EXPECT_NEAR(d.efficiency(p.b_ref), 1.0, 1e-12);
}

TEST(Convergence, EfficiencyDecaysAboveCriticalBatch) {
  const auto& p = profile_by_name("ResNet18");  // b_crit = 512
  TrainDynamics d(p, 20000, quiet_config(), 1);
  EXPECT_GT(d.efficiency(128), d.efficiency(512));
  EXPECT_GT(d.efficiency(512), d.efficiency(2048));
  // Gradient-noise-scale law: N(B) ~ 1 + B/B_crit.
  const double ratio = d.efficiency(256) / d.efficiency(2048);
  EXPECT_NEAR(ratio, (1.0 + 2048.0 / 512.0) / (1.0 + 256.0 / 512.0), 1e-9);
}

TEST(Convergence, NoLrScalingAblationIsWorse) {
  const auto& p = profile_by_name("ResNet18");
  ConvergenceConfig with = quiet_config();
  ConvergenceConfig without = quiet_config();
  without.lr_linear_scaling = false;
  TrainDynamics d_with(p, 20000, with, 1);
  TrainDynamics d_without(p, 20000, without, 1);
  EXPECT_LT(d_without.efficiency(1024), d_with.efficiency(1024));
  EXPECT_NEAR(d_without.efficiency(p.b_ref), d_with.efficiency(p.b_ref), 1e-12);
}

TEST(Convergence, ReachesTargetAtReferenceEpochCount) {
  const auto& p = profile_by_name("ResNet18");
  TrainDynamics d(p, 20000, quiet_config(), 1);
  const int ref_epochs = static_cast<int>(p.epochs_to_target_ref);
  for (int e = 0; e < ref_epochs - 1; ++e) d.advance(p.b_ref, 20000);
  EXPECT_LT(d.current_accuracy(), p.target_accuracy);
  d.advance(p.b_ref, 20000);
  EXPECT_GE(d.current_accuracy(), p.target_accuracy - 1e-9);
}

TEST(Convergence, TerminationNeedsTenConsecutiveEpochs) {
  const auto& p = profile_by_name("ResNet18");
  TrainDynamics d(p, 20000, quiet_config(), 1);
  int epochs = 0;
  while (!d.converged()) {
    d.advance(p.b_ref, 20000);
    ++epochs;
    ASSERT_LT(epochs, 100);
  }
  // The epoch that first reaches the target counts as the first of the 10
  // consecutive epochs, so: epochs_to_target + patience - 1.
  EXPECT_EQ(epochs, static_cast<int>(p.epochs_to_target_ref) + 10 - 1);
}

// Figure 3: fixed local batch 256 with more GPUs => larger global batch =>
// fewer epochs' worth of progress per epoch => visibly slower convergence
// beyond 2 workers.
TEST(Convergence, Fig3MoreGpusFixedLocalBatchConvergesSlower) {
  const auto& p = profile_by_name("ResNet50-CIFAR");
  auto epochs_to_converge = [&](int gpus) {
    TrainDynamics d(p, 20000, quiet_config(), 1);
    int epochs = 0;
    while (!d.converged() && epochs < 500) {
      d.advance(256 * gpus, 20000);
      ++epochs;
    }
    return epochs;
  };
  const int e1 = epochs_to_converge(1);
  const int e2 = epochs_to_converge(2);
  const int e4 = epochs_to_converge(4);
  const int e8 = epochs_to_converge(8);
  EXPECT_LE(e1, e2);
  EXPECT_LT(e2, e4);
  EXPECT_LT(e4, e8);
  EXPECT_GT(e8, e1 + 10);  // clearly slower, not a rounding artifact
}

// Figure 13: an abrupt 256 -> 4096 rescale spikes the training loss and
// depresses accuracy; recovery takes several epochs.
TEST(Convergence, Fig13AbruptScalingSpikesLoss) {
  const auto& p = profile_by_name("ResNet50-CIFAR");
  TrainDynamics d(p, 20000, quiet_config(), 1);
  for (int e = 0; e < 10; ++e) d.advance(256, 20000);
  const double loss_before = d.current_loss();
  d.on_batch_resize(256, 4096);
  EXPECT_GT(d.disturbance(), 0.0);
  const double loss_after = d.current_loss();
  EXPECT_GT(loss_after, loss_before + 0.5);
  // Recovery: disturbance decays as epochs pass.
  for (int e = 0; e < 6; ++e) d.advance(4096, 20000);
  EXPECT_LT(d.disturbance(), 0.1);
}

// Figure 14: gradual growth (one doubling at a time) never spikes.
TEST(Convergence, Fig14GradualScalingIsSmooth) {
  const auto& p = profile_by_name("ResNet50-CIFAR");
  TrainDynamics d(p, 20000, quiet_config(), 1);
  int batch = 256;
  for (int step = 0; step < 4; ++step) {
    d.advance(batch, 20000);
    d.on_batch_resize(batch, batch * 2);
    batch *= 2;
    EXPECT_DOUBLE_EQ(d.disturbance(), 0.0) << "doubling must not disturb";
  }
}

TEST(Convergence, ShrinkingBatchIsBenign) {
  const auto& p = profile_by_name("ResNet18");
  TrainDynamics d(p, 20000, quiet_config(), 1);
  d.on_batch_resize(2048, 256);
  EXPECT_DOUBLE_EQ(d.disturbance(), 0.0);
}

TEST(Convergence, DisturbanceSlowsProgress) {
  const auto& p = profile_by_name("ResNet18");
  TrainDynamics a(p, 20000, quiet_config(), 1);
  TrainDynamics b(p, 20000, quiet_config(), 1);
  b.on_batch_resize(256, 4096);  // inject a spike into b only
  a.advance(256, 20000);
  b.advance(256, 20000);
  EXPECT_GT(a.progress(), b.progress());
}

TEST(Convergence, OracleRemainingSamplesDecreasesAndHitsZero) {
  const auto& p = profile_by_name("ResNet18");
  TrainDynamics d(p, 20000, quiet_config(), 1);
  const double r0 = d.oracle_remaining_samples(p.b_ref);
  d.advance(p.b_ref, 20000);
  const double r1 = d.oracle_remaining_samples(p.b_ref);
  EXPECT_LT(r1, r0);
  while (!d.converged()) d.advance(p.b_ref, 20000);
  EXPECT_DOUBLE_EQ(d.oracle_remaining_samples(p.b_ref), 0.0);
}

TEST(Convergence, PartialEpochAdvancesAreConsistent) {
  const auto& p = profile_by_name("ResNet18");
  TrainDynamics whole(p, 20000, quiet_config(), 1);
  TrainDynamics parts(p, 20000, quiet_config(), 1);
  whole.advance(256, 20000);
  for (int i = 0; i < 4; ++i) parts.advance(256, 5000);
  EXPECT_NEAR(whole.progress(), parts.progress(), 1e-9);
  EXPECT_NEAR(whole.samples_processed(), parts.samples_processed(), 1e-9);
}

TEST(Convergence, AccuracyNoiseIsSeedDeterministic) {
  const auto& p = profile_by_name("ResNet18");
  ConvergenceConfig c;  // default noise
  TrainDynamics a(p, 20000, c, 42), b(p, 20000, c, 42);
  for (int e = 0; e < 5; ++e) {
    const auto ra = a.advance(256, 20000);
    const auto rb = b.advance(256, 20000);
    EXPECT_DOUBLE_EQ(ra.val_accuracy, rb.val_accuracy);
  }
}

}  // namespace
}  // namespace ones::model
