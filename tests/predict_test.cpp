// Unit tests for the online progress predictor (§3.2.1): feature
// extraction, reservoir-bounded training set, Beta-regression fitting and
// prediction quality on synthetic completed jobs.
#include <gtest/gtest.h>

#include <cmath>

#include "predict/progress_predictor.hpp"

namespace ones::predict {
namespace {

// Build a synthetic completed job whose total epoch count is a simple
// function of its dataset size, so the regression has signal to learn.
sched::JobView synthetic_completed_job(JobId id, std::int64_t dataset, int total_epochs) {
  sched::JobView v;
  v.spec.id = id;
  v.spec.variant = {"ResNet18", "synthetic", dataset, 10};
  v.profile = &model::profile_by_name("ResNet18");
  v.status = sched::JobStatus::Completed;
  v.init_loss = v.profile->init_loss;
  for (int e = 1; e <= total_epochs; ++e) {
    const double frac = static_cast<double>(e) / total_epochs;
    sched::EpochLogEntry entry;
    entry.time_s = 10.0 * e;
    entry.samples_processed = static_cast<double>(dataset) * e;
    entry.train_loss = v.profile->final_loss +
                       (v.profile->init_loss - v.profile->final_loss) * std::exp(-3.0 * frac);
    entry.val_accuracy = 0.95 * (1.0 - std::exp(-2.5 * frac));
    entry.global_batch = 256;
    v.epoch_log.push_back(entry);
  }
  v.epochs_completed = total_epochs;
  v.samples_processed = v.epoch_log.back().samples_processed;
  v.train_loss = v.epoch_log.back().train_loss;
  v.val_accuracy = v.epoch_log.back().val_accuracy;
  return v;
}

sched::JobView in_flight_view(std::int64_t dataset, int epochs_done, int total_epochs) {
  auto v = synthetic_completed_job(0, dataset, total_epochs);
  v.status = sched::JobStatus::Running;
  v.epoch_log.resize(static_cast<std::size_t>(epochs_done));
  v.epochs_completed = epochs_done;
  v.samples_processed = static_cast<double>(dataset) * epochs_done;
  v.train_loss = v.epoch_log.empty() ? v.init_loss : v.epoch_log.back().train_loss;
  v.val_accuracy = v.epoch_log.empty() ? 0.0 : v.epoch_log.back().val_accuracy;
  return v;
}

TEST(Features, DimensionAndContent) {
  const auto v = in_flight_view(20000, 5, 25);
  const auto x = ProgressPredictor::features_of(v);
  ASSERT_EQ(x.size(), ProgressPredictor::kFeatureDim);
  EXPECT_DOUBLE_EQ(x[0], 2.0);  // ||D|| in 10k units
  EXPECT_DOUBLE_EQ(x[2], 5.0);  // epochs processed
  EXPECT_DOUBLE_EQ(x.back(), 1.0);  // bias
  EXPECT_GT(x[3], 0.0);  // loss improved
  EXPECT_GT(x[4], 0.0);  // accuracy observed
}

TEST(Features, FreshJobHasNeutralDynamicFeatures) {
  auto v = in_flight_view(20000, 0, 25);
  v.samples_processed = 0.0;
  const auto x = ProgressPredictor::features_of(v);
  EXPECT_DOUBLE_EQ(x[2], 0.0);
  EXPECT_DOUBLE_EQ(x[3], 0.0);
  EXPECT_DOUBLE_EQ(x[4], 0.0);
}

TEST(Predictor, UntrainedUsesPrior) {
  ProgressPredictor p;
  EXPECT_FALSE(p.trained());
  const auto v = in_flight_view(20000, 5, 25);
  const auto dist = p.predict(v);
  EXPECT_DOUBLE_EQ(dist.alpha(), 5.0);
  EXPECT_GE(dist.beta(), 1.0);
  EXPECT_GT(dist.mean(), 0.0);
  EXPECT_LT(dist.mean(), 1.0);
}

TEST(Predictor, AlphaThresholdedAtOne) {
  ProgressPredictor p;
  auto v = in_flight_view(20000, 0, 25);
  v.samples_processed = 100.0;  // far less than one epoch
  const auto dist = p.predict(v);
  EXPECT_DOUBLE_EQ(dist.alpha(), 1.0);  // the paper's >= 1 threshold
}

TEST(Predictor, TrainsAfterCompletions) {
  PredictorConfig cfg;
  ProgressPredictor p(cfg);
  for (JobId j = 0; j < 6; ++j) {
    p.observe_completed_job(synthetic_completed_job(j, 20000 + 1000 * j, 25));
  }
  EXPECT_TRUE(p.trained());
  EXPECT_GT(p.training_points(), 30u);
}

TEST(Predictor, ReservoirIsBounded) {
  PredictorConfig cfg;
  cfg.max_training_points = 64;
  ProgressPredictor p(cfg);
  for (JobId j = 0; j < 30; ++j) {
    p.observe_completed_job(synthetic_completed_job(j, 20000, 25));
  }
  EXPECT_LE(p.training_points(), 64u);
}

TEST(Predictor, PredictionTracksTrueProgress) {
  // Train on jobs with a fixed total epoch count, then check that predicted
  // mean progress grows with epochs done and is roughly calibrated.
  ProgressPredictor p;
  for (JobId j = 0; j < 12; ++j) {
    p.observe_completed_job(synthetic_completed_job(j, 20000, 25));
  }
  ASSERT_TRUE(p.trained());

  double last_mean = 0.0;
  for (int done : {5, 10, 15, 20}) {
    const auto dist = p.predict(in_flight_view(20000, done, 25));
    const double mean = dist.mean();
    EXPECT_GT(mean, last_mean) << "predicted progress must grow";
    const double true_progress = static_cast<double>(done) / 25.0;
    EXPECT_NEAR(mean, true_progress, 0.2) << "at " << done << " epochs";
    last_mean = mean;
  }
}

TEST(Predictor, RemainingWorkloadFollowsEq7) {
  ProgressPredictor p;
  for (JobId j = 0; j < 10; ++j) {
    p.observe_completed_job(synthetic_completed_job(j, 20000, 25));
  }
  const auto v = in_flight_view(20000, 10, 25);
  const auto dist = p.predict(v);
  const double expected = v.samples_processed * (1.0 / dist.mean() - 1.0);
  EXPECT_NEAR(p.expected_remaining_samples(v), expected, expected * 0.01 + 1.0);
}

TEST(Predictor, RemainingWorkloadShrinksNearCompletion) {
  ProgressPredictor p;
  for (JobId j = 0; j < 10; ++j) {
    p.observe_completed_job(synthetic_completed_job(j, 20000, 25));
  }
  const double early = p.expected_remaining_samples(in_flight_view(20000, 3, 25));
  const double late = p.expected_remaining_samples(in_flight_view(20000, 22, 25));
  EXPECT_LT(late, early);
}

TEST(Predictor, BetaAlwaysAtLeastOne) {
  // Even with weights that would predict negative epochs remaining, the
  // paper's threshold keeps the distribution unimodal.
  ProgressPredictor p;
  for (JobId j = 0; j < 10; ++j) {
    p.observe_completed_job(synthetic_completed_job(j, 20000, 12));
  }
  const auto dist = p.predict(in_flight_view(20000, 40, 12));  // way past total
  EXPECT_GE(dist.beta(), 1.0);
}

TEST(Predictor, DistinguishesDatasetSizes) {
  // Jobs with bigger datasets were trained for more epochs; prediction for a
  // small-dataset job should see higher progress at the same epoch count.
  ProgressPredictor p;
  for (JobId j = 0; j < 8; ++j) {
    p.observe_completed_job(synthetic_completed_job(2 * j, 8000, 12));
    p.observe_completed_job(synthetic_completed_job(2 * j + 1, 40000, 30));
  }
  const auto small = p.predict(in_flight_view(8000, 6, 12));
  const auto large = p.predict(in_flight_view(40000, 6, 30));
  EXPECT_GT(small.mean(), large.mean());
}

TEST(Predictor, IgnoresJobsWithoutLogs) {
  ProgressPredictor p;
  sched::JobView v;
  v.spec.id = 1;
  v.spec.variant = {"ResNet18", "x", 1000, 10};
  v.profile = &model::profile_by_name("ResNet18");
  v.status = sched::JobStatus::Completed;
  EXPECT_NO_THROW(p.observe_completed_job(v));
  EXPECT_EQ(p.training_points(), 0u);
}

TEST(Predictor, RequiresCompletedStatus) {
  ProgressPredictor p;
  auto v = in_flight_view(20000, 5, 25);
  EXPECT_THROW(p.observe_completed_job(v), std::logic_error);
}

}  // namespace
}  // namespace ones::predict
