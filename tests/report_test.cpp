// Unit tests for telemetry exporters (CSV / JSON) and the cluster
// fragmentation / locality analytics.
#include <gtest/gtest.h>

#include <sstream>

#include "cluster/fragmentation.hpp"
#include "telemetry/report.hpp"

namespace ones {
namespace {

telemetry::MetricsCollector sample_metrics() {
  telemetry::MetricsCollector m;
  m.on_submit(0, 0.0);
  m.on_run_start(0, 5.0);
  m.on_run_end(0, 105.0, false);
  m.on_complete(0, 105.0);
  m.on_submit(1, 10.0);
  m.on_run_start(1, 20.0);
  m.on_run_end(1, 50.0, false);
  m.on_abort(1, 50.0);  // killed
  m.on_submit(2, 15.0);  // never finished
  return m;
}

TEST(ReportCsv, JobsCsvHasHeaderAndFinishedRows) {
  std::ostringstream os;
  telemetry::write_jobs_csv(os, sample_metrics());
  const std::string csv = os.str();
  EXPECT_NE(csv.find("job_id,arrival_s"), std::string::npos);
  // Job 0 (normal) and job 1 (aborted) appear; job 2 (unfinished) does not.
  EXPECT_NE(csv.find("0,0,105,105,100,5,0,0"), std::string::npos);
  EXPECT_NE(csv.find("1,10,50,40,30,10,0,1"), std::string::npos);
  EXPECT_EQ(csv.find("\n2,"), std::string::npos);
  // Exactly header + 2 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(ReportCsv, AbortedJobsMeasureUpToTheAbort) {
  // An aborted job gets a CSV row (aborted=1) with jct/exec/queue measured
  // through the abort time — but the Summary aggregates must exclude it
  // (report.hpp documents this split; the CSV is where abort numbers live).
  telemetry::MetricsCollector m;
  m.on_submit(5, 0.0);
  m.on_run_start(5, 2.0);
  m.on_run_end(5, 8.0, true);  // preempted once
  m.on_run_start(5, 10.0);
  m.on_run_end(5, 14.0, false);
  m.on_abort(5, 14.0);  // killed right after its second run interval

  std::ostringstream os;
  telemetry::write_jobs_csv(os, m);
  // arrival 0, completion 14, jct 14, exec 6+4=10, queue 4, 1 preemption.
  EXPECT_NE(os.str().find("5,0,14,14,10,4,1,1"), std::string::npos);
  EXPECT_TRUE(m.jcts().empty());  // aborted jobs never enter the aggregates
  EXPECT_EQ(m.aborted(), 1u);
}

TEST(ReportCsv, UnfinishedJobsEmitNoRows) {
  // Jobs cut off by the simulation horizon — never started, or started but
  // never terminal — must not appear: their partial times would be horizon
  // artifacts, not outcomes (see the write_jobs_csv contract in report.hpp).
  telemetry::MetricsCollector m;
  m.on_submit(1, 0.0);   // never scheduled at all
  m.on_submit(2, 5.0);   // ran for a while, preempted, then the run ended
  m.on_run_start(2, 6.0);
  m.on_run_end(2, 9.0, true);

  std::ostringstream os;
  telemetry::write_jobs_csv(os, m);
  const std::string csv = os.str();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);  // header only
  EXPECT_EQ(m.submitted(), 2u);  // submitted-vs-rows gap flags the truncation
}

TEST(ReportCsv, EcdfCsvIsSortedAndEndsAtOne) {
  std::ostringstream os;
  telemetry::write_ecdf_csv(os, {3.0, 1.0, 2.0}, "jct_s");
  const std::string csv = os.str();
  EXPECT_NE(csv.find("jct_s,cum_fraction"), std::string::npos);
  EXPECT_NE(csv.find("1,0.333333"), std::string::npos);
  EXPECT_NE(csv.find("3,1\n"), std::string::npos);
}

TEST(ReportJson, SummaryRoundTripKeys) {
  telemetry::Summary s;
  s.scheduler = "ONES";
  s.jobs = 3;
  s.avg_jct = 123.5;
  const auto json = telemetry::summary_to_json(s);
  EXPECT_NE(json.find("\"scheduler\":\"ONES\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":3"), std::string::npos);
  EXPECT_NE(json.find("\"avg_jct_s\":123.5"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ReportJson, SummariesArray) {
  telemetry::Summary a, b;
  a.scheduler = "A";
  b.scheduler = "B";
  const auto json = telemetry::summaries_to_json({a, b});
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"A\""), std::string::npos);
  EXPECT_NE(json.find("\"B\""), std::string::npos);
  EXPECT_NE(json.find("},{"), std::string::npos);
}

cluster::Topology topo4x4() {
  cluster::TopologyConfig c;
  c.num_nodes = 4;
  c.gpus_per_node = 4;
  return cluster::Topology(c);
}

TEST(Fragmentation, EmptyClusterIsOneBigBlock) {
  const auto topo = topo4x4();
  cluster::Assignment a(topo.total_gpus());
  const auto f = cluster::fragmentation_stats(a, topo);
  EXPECT_EQ(f.idle_gpus, 16);
  EXPECT_EQ(f.largest_colocated_block, 4);
  EXPECT_EQ(f.nodes_with_idle, 4);
  EXPECT_DOUBLE_EQ(f.scatter_index, 0.0);  // cannot be less scattered
}

TEST(Fragmentation, ScatteredHolesScoreHigh) {
  const auto topo = topo4x4();
  cluster::Assignment a(topo.total_gpus());
  // Fill everything except one GPU per node: 4 idle GPUs on 4 nodes (the
  // worst case for a 4-GPU gang).
  for (int g = 0; g < 16; ++g) {
    if (g % 4 != 0) a.place(g, 1, 8);
  }
  const auto f = cluster::fragmentation_stats(a, topo);
  EXPECT_EQ(f.idle_gpus, 4);
  EXPECT_EQ(f.largest_colocated_block, 1);
  EXPECT_EQ(f.nodes_with_idle, 4);
  EXPECT_DOUBLE_EQ(f.scatter_index, 1.0);
  EXPECT_FALSE(cluster::can_place_colocated(a, topo, 2));
  EXPECT_TRUE(cluster::can_place_colocated(a, topo, 1));
}

TEST(Fragmentation, PackedHolesScoreLow) {
  const auto topo = topo4x4();
  cluster::Assignment a(topo.total_gpus());
  // Fill nodes 1..3 entirely: the 4 idle GPUs share node 0.
  for (int g = 4; g < 16; ++g) a.place(g, 1, 8);
  const auto f = cluster::fragmentation_stats(a, topo);
  EXPECT_EQ(f.idle_gpus, 4);
  EXPECT_EQ(f.largest_colocated_block, 4);
  EXPECT_DOUBLE_EQ(f.scatter_index, 0.0);
  EXPECT_TRUE(cluster::can_place_colocated(a, topo, 4));
}

TEST(Fragmentation, FullClusterHasNoIdle) {
  const auto topo = topo4x4();
  cluster::Assignment a(topo.total_gpus());
  for (int g = 0; g < 16; ++g) a.place(g, 1, 8);
  const auto f = cluster::fragmentation_stats(a, topo);
  EXPECT_EQ(f.idle_gpus, 0);
  EXPECT_EQ(f.largest_colocated_block, 0);
  EXPECT_DOUBLE_EQ(f.scatter_index, 0.0);
}

TEST(Locality, CountsColocationAndSpan) {
  const auto topo = topo4x4();
  cluster::Assignment a(topo.total_gpus());
  a.place(0, 1, 8);  // job 1: colocated pair on node 0
  a.place(1, 1, 8);
  a.place(4, 2, 8);  // job 2: spans nodes 1 and 2
  a.place(8, 2, 8);
  a.place(12, 3, 8);  // job 3: single GPU (not counted)
  const auto loc = cluster::locality_stats(a, topo);
  EXPECT_EQ(loc.jobs, 2);
  EXPECT_EQ(loc.colocated_jobs, 1);
  EXPECT_DOUBLE_EQ(loc.avg_nodes_spanned, 1.5);
}

TEST(Locality, EmptyAssignment) {
  const auto topo = topo4x4();
  cluster::Assignment a(topo.total_gpus());
  const auto loc = cluster::locality_stats(a, topo);
  EXPECT_EQ(loc.jobs, 0);
  EXPECT_DOUBLE_EQ(loc.avg_nodes_spanned, 0.0);
}

}  // namespace
}  // namespace ones
