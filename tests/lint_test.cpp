// Tests for tools/ones_lint — the determinism linter (DESIGN.md §11).
//
// Each rule is exercised against positive/negative fixture files under
// tests/lint_fixtures/ (compiled never, linted only), plus in-memory
// lint_file() cases for the text-handling corners: literals, comments,
// raw strings, alias-typed iteration, and the annotation grammar.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace lint = ones::lint;

namespace {

const std::string kFixtures = ONES_LINT_FIXTURES_DIR;

std::vector<lint::Finding> lint_fixture(const std::string& rel,
                                        lint::Options options = lint::default_options()) {
  return lint::lint_tree({kFixtures + "/" + rel}, options);
}

std::size_t count_rule(const std::vector<lint::Finding>& fs, const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const lint::Finding& f) { return f.rule == rule; }));
}

TEST(LintR1, FlagsWallClockAndAmbientRandomness) {
  const auto fs = lint_fixture("src/sched/r1_violation.cpp");
  EXPECT_EQ(fs.size(), 4u);
  EXPECT_EQ(count_rule(fs, "R1"), 4u);
}

TEST(LintR1, AnnotationLineAndRegionFormsSuppress) {
  EXPECT_TRUE(lint_fixture("src/sched/r1_annotated.cpp").empty());
}

TEST(LintR1, EmptyReasonDoesNotSuppress) {
  const auto fs = lint_fixture("src/sched/r1_empty_reason.cpp");
  EXPECT_EQ(count_rule(fs, "R1"), 1u);
}

TEST(LintR1, DefaultAllowlistExemptsProgressReporter) {
  EXPECT_TRUE(lint_fixture("allow/src/exp/progress.cpp").empty());

  lint::Options bare = lint::default_options();
  bare.wall_clock_allowlist.clear();
  const auto fs = lint_fixture("allow/src/exp/progress.cpp", bare);
  EXPECT_EQ(count_rule(fs, "R1"), 2u);
}

TEST(LintR2, UnannotatedDeclarationsInDecisionPathFlagged) {
  const auto fs = lint_fixture("src/core/r2_decl_violation.hpp");
  EXPECT_EQ(count_rule(fs, "R2"), 2u);
}

TEST(LintR2, AnnotatedDeclarationsPass) {
  EXPECT_TRUE(lint_fixture("src/core/r2_decl_annotated.hpp").empty());
}

TEST(LintR2, IterationOverUnorderedFlagged) {
  const auto fs = lint_fixture("src/sched/r2_iter_violation.cpp");
  EXPECT_EQ(count_rule(fs, "R2"), 2u);  // one range-for, one .begin() loop
  for (const auto& f : fs) {
    EXPECT_NE(f.message.find("iteration"), std::string::npos) << f.message;
  }
}

TEST(LintR2, IterationAnnotationSuppresses) {
  EXPECT_TRUE(lint_fixture("src/sched/r2_iter_annotated.cpp").empty());
}

TEST(LintR2, NonDecisionPathModulesAreOutOfScope) {
  EXPECT_TRUE(lint_fixture("src/telemetry/r2_not_decision_path.cpp").empty());
}

TEST(LintR3, AssertFlaggedButStaticAssertIsNot) {
  const auto fs = lint_fixture("src/model/r3_assert.cpp");
  ASSERT_EQ(count_rule(fs, "R3"), 1u);
  EXPECT_EQ(fs[0].rule, "R3");
}

TEST(LintR4, RelativeAndBareIncludesFlagged) {
  const auto fs = lint_fixture("src/model/r4_includes.cpp");
  EXPECT_EQ(count_rule(fs, "R4"), 2u);  // "../" form and bare form; one annotated away
}

TEST(LintScope, OutsideSrcSkipsR3R4) {
  EXPECT_TRUE(lint_fixture("bench/outside_src.cpp").empty());
}

TEST(LintAnnotations, TypoedTagAndUnclosedRegionAreFindings) {
  const auto fs = lint_fixture("src/sim/ann_errors.cpp");
  EXPECT_EQ(count_rule(fs, "ANN"), 2u);
}

TEST(LintClean, FullyCleanFileHasNoFindings) {
  EXPECT_TRUE(lint_fixture("src/cluster/clean.cpp").empty());
}

TEST(LintTree, WholeFixtureTreeFindingsAreSortedAndDeterministic) {
  const auto a = lint::lint_tree({kFixtures}, lint::default_options());
  const auto b = lint::lint_tree({kFixtures}, lint::default_options());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(),
                             [](const lint::Finding& x, const lint::Finding& y) {
                               return x.file < y.file;
                             }));
}

TEST(LintTree, UnreadableRootThrows) {
  EXPECT_THROW(lint::lint_tree({kFixtures + "/no_such_dir"}, lint::default_options()),
               std::runtime_error);
}

// ---- in-memory corners -----------------------------------------------------

TEST(LintText, PatternsInsideStringsAndCommentsDoNotFire) {
  const std::string src =
      "// std::chrono::steady_clock::now() in a comment\n"
      "/* rand() in a block comment */\n"
      "const char* s = \"std::random_device\";\n"
      "const char* r = R\"(std::chrono inside raw string)\";\n";
  EXPECT_TRUE(lint::lint_file("src/sched/x.cpp", src, lint::default_options()).empty());
}

TEST(LintText, AliasTypedIterationIsCaughtInSameFile) {
  const std::string src =
      "#include <unordered_map>\n"
      "// ones-lint: unordered-ok(alias under test)\n"
      "using RhoMap = std::unordered_map<int, double>;\n"
      "double f() {\n"
      "  RhoMap rho;\n"
      "  double s = 0;\n"
      "  for (const auto& [k, v] : rho) s += v;\n"
      "  return s;\n"
      "}\n";
  const auto fs = lint::lint_file("src/core/x.cpp", src, lint::default_options());
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "R2");
  EXPECT_EQ(fs[0].line, 7);
}

TEST(LintText, RuleTogglesDisableChecks) {
  lint::Options only_r3 = lint::default_options();
  only_r3.r1 = only_r3.r2 = only_r3.r4 = false;
  const std::string src = "#include <chrono>\nauto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint::lint_file("src/sim/x.cpp", src, only_r3).empty());
}

TEST(LintText, FormatIsCompilerStyle) {
  lint::Finding f{"src/a.cpp", 12, "R1", "boom"};
  EXPECT_EQ(lint::format(f), "src/a.cpp:12: [R1] boom");
}

}  // namespace
