// TraceReplayer coverage: every scheduler's full run must produce a
// structurally legal trace (GPU exclusivity, capacity, lifecycle, batch
// continuity, pause bracketing — DESIGN.md §8), including runs with injected
// job failures; and each invariant must actually fire on a violating stream.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/ones_scheduler.hpp"
#include "sched/fifo.hpp"
#include "sched/gandiva.hpp"
#include "sched/optimus.hpp"
#include "sched/simulation.hpp"
#include "sched/srtf.hpp"
#include "sched/tiresias.hpp"
#include "trace/replay.hpp"
#include "trace/sink.hpp"
#include "workload/trace.hpp"

namespace ones::trace {
namespace {

struct NamedFactory {
  const char* name;
  std::function<std::unique_ptr<sched::Scheduler>()> make;
};

std::vector<NamedFactory> all_schedulers() {
  return {
      {"FIFO", [] { return std::make_unique<sched::FifoScheduler>(); }},
      {"SRTF", [] { return std::make_unique<sched::SrtfOracleScheduler>(); }},
      {"Tiresias", [] { return std::make_unique<sched::TiresiasScheduler>(); }},
      {"Optimus", [] { return std::make_unique<sched::OptimusScheduler>(); }},
      {"Gandiva", [] { return std::make_unique<sched::GandivaScheduler>(); }},
      {"ONES", [] { return std::make_unique<core::OnesScheduler>(); }},
  };
}

sched::SimulationConfig small_config() {
  sched::SimulationConfig c;
  c.topology.num_nodes = 2;
  return c;
}

workload::TraceConfig shared_trace(int jobs, double interarrival,
                                   std::uint64_t seed) {
  workload::TraceConfig t;
  t.num_jobs = jobs;
  t.mean_interarrival_s = interarrival;
  t.seed = seed;
  return t;
}

std::vector<TraceRecord> run_traced(sched::Scheduler& scheduler,
                                    const workload::TraceConfig& tc) {
  RecordBufferSink buffer;
  auto config = small_config();
  config.trace_sink = &buffer;
  const auto trace = workload::generate_trace(tc);
  sched::ClusterSimulation sim(config, trace, scheduler);
  sim.run();
  EXPECT_TRUE(sim.all_completed()) << scheduler.name();
  return buffer.records();
}

TEST(TraceInvariants, EverySchedulerProducesALegalTrace) {
  // The integration-test workload (tests/integration_test.cpp).
  const auto tc = shared_trace(16, 12.0, 5);
  for (const auto& nf : all_schedulers()) {
    const auto scheduler = nf.make();
    const auto records = run_traced(*scheduler, tc);
    const ReplayReport report = TraceReplayer{}.check(records);
    EXPECT_TRUE(report.ok()) << nf.name << ":\n" << report.to_string();
    EXPECT_EQ(report.jobs, 16u) << nf.name;
    EXPECT_GT(report.records, 0u) << nf.name;
  }
}

TEST(TraceInvariants, FailureInjectionTracesStayLegal) {
  // The failure-injection scenario (tests/failure_test.cpp): 40% of jobs end
  // abnormally mid-run. Aborts must still release GPUs and close brackets.
  workload::TraceConfig tc = shared_trace(20, 12.0, 3);
  tc.abnormal_fraction = 0.4;
  tc.abnormal_mean_lifetime_s = 120.0;
  for (const auto& nf : all_schedulers()) {
    const auto scheduler = nf.make();
    const auto records = run_traced(*scheduler, tc);
    const ReplayReport report = TraceReplayer{}.check(records);
    EXPECT_TRUE(report.ok()) << nf.name << ":\n" << report.to_string();
    std::size_t aborted = 0;
    for (const auto& r : records) {
      if (r.kind == RecordKind::JobCompleted && r.aborted) ++aborted;
    }
    EXPECT_GT(aborted, 0u) << nf.name;
  }
}

// --- Negative coverage: each invariant fires on a violating stream. -------

/// Minimal legal single-job stream; the negative tests each break one thing.
std::vector<TraceRecord> legal_stream() {
  std::vector<TraceRecord> rs;
  const auto add = [&rs](TraceRecord r) {
    r.seq = rs.size();
    rs.push_back(std::move(r));
  };
  add({.kind = RecordKind::RunBegin, .gpus = 4, .global_batch = 1, .detail = "TEST"});
  add({.kind = RecordKind::JobSubmitted, .t = 1.0, .job = 0, .detail = "BERT"});
  add({.kind = RecordKind::JobAdmitted, .t = 1.0, .job = 0, .detail = ""});
  add({.kind = RecordKind::JobPlaced,
       .t = 1.0,
       .job = 0,
       .gpus = 2,
       .global_batch = 32,
       .detail = "0,1"});
  add({.kind = RecordKind::ElasticPaused,
       .t = 5.0,
       .job = 0,
       .cost_s = 2.0,
       .detail = "elastic"});
  add({.kind = RecordKind::BatchResized,
       .t = 5.0,
       .job = 0,
       .global_batch = 64,
       .old_batch = 32,
       .detail = ""});
  add({.kind = RecordKind::JobReconfigured,
       .t = 5.0,
       .job = 0,
       .gpus = 4,
       .global_batch = 64,
       .old_gpus = 2,
       .old_batch = 32,
       .cost_s = 2.0,
       .detail = "0,1,2,3"});
  add({.kind = RecordKind::ElasticResumed, .t = 7.0, .job = 0, .detail = ""});
  add({.kind = RecordKind::JobCompleted, .t = 9.0, .job = 0, .detail = ""});
  add({.kind = RecordKind::RunEnd, .t = 9.0, .count = 1, .detail = ""});
  return rs;
}

bool any_issue_contains(const ReplayReport& report, const std::string& needle) {
  for (const auto& issue : report.issues) {
    if (issue.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(TraceInvariantsNegative, BaselineStreamIsLegal) {
  const ReplayReport report = TraceReplayer{}.check(legal_stream());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(TraceInvariantsNegative, MissingRunBegin) {
  auto rs = legal_stream();
  rs.erase(rs.begin());
  const ReplayReport report = TraceReplayer{}.check(rs);
  EXPECT_TRUE(any_issue_contains(report, "run_begin")) << report.to_string();
}

TEST(TraceInvariantsNegative, TimestampRegression) {
  auto rs = legal_stream();
  rs[4].t = 0.5;  // pause before the placement's t=1.0
  const ReplayReport report = TraceReplayer{}.check(rs);
  EXPECT_TRUE(any_issue_contains(report, "precedes")) << report.to_string();
}

TEST(TraceInvariantsNegative, EngineSeqRegression) {
  auto rs = legal_stream();
  rs[4].seq = 0;
  const ReplayReport report = TraceReplayer{}.check(rs);
  EXPECT_TRUE(any_issue_contains(report, "seq")) << report.to_string();
}

TEST(TraceInvariantsNegative, DoubleAllocationAcrossJobs) {
  auto rs = legal_stream();
  // A second job claims GPU 1 while job 0 holds it.
  const double t = 2.0;
  std::vector<TraceRecord> extra;
  extra.push_back({.kind = RecordKind::JobSubmitted, .t = t, .job = 1, .detail = "VGG16"});
  extra.push_back({.kind = RecordKind::JobAdmitted, .t = t, .job = 1, .detail = ""});
  extra.push_back({.kind = RecordKind::JobPlaced,
                   .t = t,
                   .job = 1,
                   .gpus = 2,
                   .global_batch = 16,
                   .detail = "1,2"});
  for (auto& r : extra) r.seq = 4;
  rs.insert(rs.begin() + 4, extra.begin(), extra.end());
  const ReplayReport report = TraceReplayer{}.check(rs);
  EXPECT_TRUE(any_issue_contains(report, "double-allocated")) << report.to_string();
}

TEST(TraceInvariantsNegative, PlacementExceedsCapacity) {
  auto rs = legal_stream();
  rs[3].gpus = 6;
  rs[3].global_batch = 64;
  rs[3].detail = "0,1,2,3,4,5";  // cluster has 4 GPUs
  const ReplayReport report = TraceReplayer{}.check(rs);
  EXPECT_TRUE(any_issue_contains(report, "out of range")) << report.to_string();
}

TEST(TraceInvariantsNegative, PlacedWithoutAdmission) {
  auto rs = legal_stream();
  rs.erase(rs.begin() + 2);  // drop job_admitted
  const ReplayReport report = TraceReplayer{}.check(rs);
  EXPECT_TRUE(any_issue_contains(report, "admitted")) << report.to_string();
}

TEST(TraceInvariantsNegative, ReconfigureWithoutPause) {
  auto rs = legal_stream();
  rs.erase(rs.begin() + 4);  // drop elastic_paused
  const ReplayReport report = TraceReplayer{}.check(rs);
  EXPECT_TRUE(any_issue_contains(report, "elastic_paused")) << report.to_string();
}

TEST(TraceInvariantsNegative, UnannouncedBatchChange) {
  auto rs = legal_stream();
  rs.erase(rs.begin() + 5);  // drop batch_resized; reconfigure still changes B
  const ReplayReport report = TraceReplayer{}.check(rs);
  EXPECT_TRUE(any_issue_contains(report, "batch")) << report.to_string();
}

TEST(TraceInvariantsNegative, UnclosedPauseBracket) {
  auto rs = legal_stream();
  rs.erase(rs.begin() + 7);  // drop elastic_resumed
  rs.erase(rs.begin() + 7);  // drop job_completed: bracket now never closes
  rs.back().count = 0;
  const ReplayReport report = TraceReplayer{}.check(rs);
  EXPECT_TRUE(any_issue_contains(report, "pause")) << report.to_string();
}

TEST(TraceInvariantsNegative, EpochInsidePause) {
  auto rs = legal_stream();
  const TraceRecord epoch{.kind = RecordKind::SimEvent,
                          .t = 6.0,
                          .job = 0,
                          .seq = 7,
                          .detail = "epoch"};
  rs.insert(rs.begin() + 7, epoch);
  const ReplayReport report = TraceReplayer{}.check(rs);
  EXPECT_TRUE(any_issue_contains(report, "epoch inside")) << report.to_string();
}

TEST(TraceInvariantsNegative, RunEndCountMismatch) {
  auto rs = legal_stream();
  rs.back().count = 2;
  const ReplayReport report = TraceReplayer{}.check(rs);
  EXPECT_TRUE(any_issue_contains(report, "finished jobs")) << report.to_string();
}

TEST(TraceInvariantsNegative, StrandedJobsAreLegalButCounted) {
  // A run that hits max_sim_time leaves jobs running; the trace is
  // structurally legal (the driver warns separately) as long as run_end's
  // count reflects reality.
  auto rs = legal_stream();
  rs.erase(rs.begin() + 8);  // job 0 never completes
  rs.back().count = 0;
  const ReplayReport honest = TraceReplayer{}.check(rs);
  EXPECT_TRUE(honest.ok()) << honest.to_string();
  rs.back().count = 1;  // ...but lying about it is caught
  const ReplayReport lying = TraceReplayer{}.check(rs);
  EXPECT_TRUE(any_issue_contains(lying, "finished jobs")) << lying.to_string();
}

TEST(TraceInvariantsNegative, CorruptJsonlLineIsReportedNotThrown) {
  std::string text;
  for (const auto& r : legal_stream()) text += to_jsonl_line(r) + "\n";
  text += "{\"kind\":\"job_placed\",garbage\n";
  const ReplayReport report = TraceReplayer{}.check_jsonl(text);
  EXPECT_TRUE(any_issue_contains(report, "unparseable")) << report.to_string();
}

}  // namespace
}  // namespace ones::trace
