// Tests for the Gandiva-style time-slicing baseline.
#include <gtest/gtest.h>

#include "common/math_util.hpp"
#include "sched/fifo.hpp"
#include "sched/gandiva.hpp"
#include "sched/simulation.hpp"
#include "telemetry/metrics.hpp"
#include "workload/trace.hpp"

namespace ones::sched {
namespace {

SimulationConfig small_config() {
  SimulationConfig c;
  c.topology.num_nodes = 2;
  return c;
}

workload::TraceConfig trace_config(int jobs, double interarrival, std::uint64_t seed = 13) {
  workload::TraceConfig t;
  t.num_jobs = jobs;
  t.mean_interarrival_s = interarrival;
  t.seed = seed;
  return t;
}

TEST(Gandiva, Properties) {
  GandivaScheduler g;
  EXPECT_EQ(g.name(), "Gandiva");
  EXPECT_EQ(g.mechanism(), ScalingMechanism::Elastic);  // cheap suspend-resume
  EXPECT_GT(g.period_s(), 0.0);                          // time-slicing quantum
}

TEST(Gandiva, CompletesAllJobs) {
  GandivaScheduler g;
  ClusterSimulation sim(small_config(), workload::generate_trace(trace_config(12, 15)),
                        g);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
}

TEST(Gandiva, TimeSlicesUnderOversubscription) {
  // With far more jobs than GPUs, rotation must preempt long runners so
  // everyone gets service (at least one job should be preempted).
  GandivaConfig cfg;
  cfg.quantum_s = 30.0;
  GandivaScheduler g(cfg);
  auto tc = trace_config(20, 3.0);
  const auto trace = workload::generate_trace(tc);
  ClusterSimulation sim(small_config(), trace, g);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  int preemptions = 0;
  for (const auto& spec : trace) preemptions += sim.metrics().job(spec.id).preemptions;
  EXPECT_GT(preemptions, 0);
}

TEST(Gandiva, SharesServiceMoreFairlyThanFifo) {
  // Time slicing should cut the p90 queuing time versus strict FIFO on a
  // contended trace (long jobs cannot hog the cluster for a whole run).
  auto tc = trace_config(24, 4.0, 17);
  const auto trace = workload::generate_trace(tc);
  double fifo_p90_queue, gandiva_p90_queue;
  {
    FifoScheduler s;
    ClusterSimulation sim(small_config(), trace, s);
    sim.run();
    auto q = sim.metrics().queue_times();
    fifo_p90_queue = ones::quantile(q, 0.9);
  }
  {
    GandivaConfig cfg;
    cfg.quantum_s = 45.0;
    GandivaScheduler s(cfg);
    ClusterSimulation sim(small_config(), trace, s);
    sim.run();
    auto q = sim.metrics().queue_times();
    gandiva_p90_queue = ones::quantile(q, 0.9);
  }
  EXPECT_LT(gandiva_p90_queue, fifo_p90_queue * 1.5);
}

TEST(Gandiva, KeepsFixedJobSizes) {
  GandivaScheduler g;
  const auto trace = workload::generate_trace(trace_config(10, 10, 19));
  ClusterSimulation sim(small_config(), trace, g);
  sim.run();
  for (const auto& spec : trace) {
    const auto& v = sim.job_view(spec.id);
    for (const auto& e : v.epoch_log) {
      EXPECT_EQ(e.global_batch, spec.requested_batch) << spec.id;
    }
  }
}

}  // namespace
}  // namespace ones::sched
