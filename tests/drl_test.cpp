// Unit tests for the DRL baseline: MLP forward/backward correctness
// (numerical gradient check), action enumeration, and REINFORCE training.
#include <gtest/gtest.h>

#include <cmath>

#include "drl/drl_scheduler.hpp"
#include "drl/mlp.hpp"
#include "sched/simulation.hpp"
#include "workload/trace.hpp"

namespace ones::drl {
namespace {

TEST(Mlp, ShapesAndParameterCount) {
  Mlp net({4, 8, 1}, 1);
  EXPECT_EQ(net.input_dim(), 4);
  EXPECT_EQ(net.output_dim(), 1);
  // (4*8 + 8) + (8*1 + 1) = 49.
  EXPECT_EQ(net.parameter_count(), 49u);
}

TEST(Mlp, ForwardIsDeterministic) {
  Mlp net({3, 5, 1}, 7);
  const std::vector<double> x = {0.1, -0.2, 0.3};
  EXPECT_DOUBLE_EQ(net.forward(x)[0], net.forward(x)[0]);
}

TEST(Mlp, DifferentSeedsGiveDifferentNets) {
  Mlp a({3, 5, 1}, 1), b({3, 5, 1}, 2);
  const std::vector<double> x = {0.5, 0.5, 0.5};
  EXPECT_NE(a.forward(x)[0], b.forward(x)[0]);
}

TEST(Mlp, GradientAscentIncreasesOutput) {
  Mlp net({3, 6, 1}, 11);
  const std::vector<double> x = {0.2, -0.4, 0.9};
  const double before = net.forward(x)[0];
  for (int i = 0; i < 20; ++i) {
    net.accumulate_gradient(x, {1.0}, 1.0);
    net.apply_gradient(0.05);
  }
  EXPECT_GT(net.forward(x)[0], before);
}

TEST(Mlp, GradientMatchesFiniteDifferencesThroughInput) {
  // Verify d(output)/d(params) indirectly: ascent along the accumulated
  // gradient must increase the output by ~ lr * ||grad||^2 for small lr.
  Mlp net({4, 6, 6, 1}, 3);
  const std::vector<double> x = {0.3, -0.1, 0.7, 0.5};
  const double y0 = net.forward(x)[0];
  net.accumulate_gradient(x, {1.0}, 1.0);
  const double gnorm = net.gradient_norm();
  ASSERT_GT(gnorm, 0.0);
  const double lr = 1e-5;
  net.apply_gradient(lr);
  const double y1 = net.forward(x)[0];
  EXPECT_NEAR(y1 - y0, lr * gnorm * gnorm, lr * gnorm * gnorm * 0.05 + 1e-12);
}

TEST(Mlp, ZeroGradientClears) {
  Mlp net({2, 3, 1}, 5);
  net.accumulate_gradient({1.0, 1.0}, {1.0}, 1.0);
  EXPECT_GT(net.gradient_norm(), 0.0);
  net.zero_gradient();
  EXPECT_DOUBLE_EQ(net.gradient_norm(), 0.0);
}

TEST(Mlp, ApplyGradientClearsBuffer) {
  Mlp net({2, 3, 1}, 5);
  net.accumulate_gradient({1.0, 1.0}, {1.0}, 1.0);
  net.apply_gradient(0.01);
  EXPECT_DOUBLE_EQ(net.gradient_norm(), 0.0);
}

TEST(Mlp, RejectsWrongInputSize) {
  Mlp net({3, 4, 1}, 1);
  EXPECT_THROW(net.forward({1.0, 2.0}), std::logic_error);
}

sched::SimulationConfig sim_config() {
  sched::SimulationConfig c;
  c.topology.num_nodes = 2;
  return c;
}

workload::TraceConfig trace_config(int jobs, double interarrival) {
  workload::TraceConfig t;
  t.num_jobs = jobs;
  t.mean_interarrival_s = interarrival;
  t.seed = 77;
  return t;
}

TEST(DrlScheduler, UntrainedPolicyStillCompletesTrace) {
  DrlScheduler s;  // untrained: random-ish argmax policy
  sched::ClusterSimulation sim(sim_config(), workload::generate_trace(trace_config(10, 20)),
                               s);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
}

TEST(DrlScheduler, NeverPreempts) {
  DrlScheduler s;
  const auto trace = workload::generate_trace(trace_config(14, 8));
  sched::ClusterSimulation sim(sim_config(), trace, s);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  for (const auto& spec : trace) {
    EXPECT_EQ(sim.metrics().job(spec.id).preemptions, 0) << spec.id;
  }
}

TEST(DrlScheduler, TrainingIsIdempotentAndRecordsCurve) {
  DrlConfig cfg;
  cfg.train_episodes = 4;
  cfg.train_jobs = 8;
  DrlScheduler s(cfg);
  s.train();
  EXPECT_TRUE(s.trained());
  EXPECT_EQ(s.training_curve().size(), 4u);
  s.train();  // no-op
  EXPECT_EQ(s.training_curve().size(), 4u);
}

TEST(DrlScheduler, TrainingImprovesOverRandomPolicy) {
  // Average JCT with a trained policy should not be worse than the
  // untrained one on a held-out trace (weak but meaningful smoke check).
  const auto trace = workload::generate_trace(trace_config(16, 10));
  double untrained_jct, trained_jct;
  {
    DrlScheduler s;
    sched::ClusterSimulation sim(sim_config(), trace, s);
    sim.run();
    untrained_jct = telemetry::summarize("d", sim.metrics(), 8).avg_jct;
  }
  {
    DrlConfig cfg;
    cfg.train_episodes = 20;
    cfg.train_jobs = 12;
    cfg.train_nodes = 2;
    DrlScheduler s(cfg);
    s.train();
    sched::ClusterSimulation sim(sim_config(), trace, s);
    sim.run();
    trained_jct = telemetry::summarize("d", sim.metrics(), 8).avg_jct;
  }
  EXPECT_LT(trained_jct, untrained_jct * 1.25);
}

TEST(DrlScheduler, FeatureVectorHasDocumentedDimension) {
  EXPECT_EQ(DrlScheduler::kFeatureDim, 8u);
}

}  // namespace
}  // namespace ones::drl
