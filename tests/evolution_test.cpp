// Unit tests for the ONES core: batch-limit policies (§3.3.2) and the
// evolutionary operators / SRUF scoring (§3.2).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/batch_policy.hpp"
#include "core/evolution.hpp"
#include "sched/oracle.hpp"

namespace ones::core {
namespace {

// Builds a fake ClusterState with controllable jobs, for exercising the
// evolution operators without a full simulation.
class Fixture {
 public:
  static cluster::Topology make_topo(int nodes) {
    cluster::TopologyConfig c;
    c.num_nodes = nodes;
    c.gpus_per_node = 4;
    return cluster::Topology(c);
  }

  explicit Fixture(int nodes = 2)
      : topo_(make_topo(nodes)), current_(topo_.total_gpus()), oracle_(topo_) {}

  sched::JobView& add_job(JobId id, const char* model, std::int64_t dataset,
                          sched::JobStatus status, int epochs_done = 0,
                          double exec_time = 0.0) {
    auto v = std::make_unique<sched::JobView>();
    v->spec.id = id;
    v->spec.variant = {model, "t", dataset, 10};
    v->spec.requested_gpus = 1;
    v->profile = &model::profile_by_name(model);
    v->spec.requested_batch = std::min(v->profile->b_ref, v->profile->max_local_batch);
    v->init_loss = v->profile->init_loss;
    v->status = status;
    v->epochs_completed = epochs_done;
    v->exec_time_s = exec_time;
    v->samples_processed = static_cast<double>(dataset) * epochs_done;
    v->train_loss = v->profile->init_loss * 0.5;
    v->val_accuracy = 0.5;
    views_.push_back(std::move(v));
    limits_.on_job_arrival(*views_.back(), 0.0);
    return *views_.back();
  }

  /// Mark a job as running in the live assignment.
  void run_on(JobId id, std::vector<GpuId> gpus, int batch) {
    auto& v = view(id);
    const int local = batch / static_cast<int>(gpus.size());
    for (GpuId g : gpus) current_.place(g, id, local);
    v.status = sched::JobStatus::Running;
    v.gpus = static_cast<int>(gpus.size());
    v.global_batch = batch;
  }

  sched::JobView& view(JobId id) {
    for (auto& v : views_) {
      if (v->spec.id == id) return *v;
    }
    throw std::logic_error("no such job in fixture");
  }

  EvolutionContext context(const predict::ProgressPredictor* predictor = nullptr) {
    state_.now = 100.0;
    state_.topology = &topo_;
    state_.current = &current_;
    state_.oracle = &oracle_;
    state_.jobs.clear();
    for (auto& v : views_) state_.jobs.push_back(v.get());
    return make_context(state_, predictor, &limits_);
  }

  cluster::Topology topo_;
  cluster::Assignment current_;
  sched::ThroughputOracle oracle_;
  sched::ClusterState state_;
  BatchLimitManager limits_;
  std::vector<std::unique_ptr<sched::JobView>> views_;
};

// ---------------- Batch limit policies ----------------

TEST(BatchPolicy, StartLimitFitsOneGpu) {
  Fixture f;
  auto& v = f.add_job(1, "ResNet18", 20000, sched::JobStatus::Waiting);
  EXPECT_EQ(f.limits_.limit(v), std::min(v.profile->b_ref, v.profile->max_local_batch));
  EXPECT_FALSE(f.limits_.warmed_up(v));
}

TEST(BatchPolicy, WarmupAfterOneEpoch) {
  Fixture f;
  auto& v = f.add_job(1, "ResNet18", 20000, sched::JobStatus::Running, 1);
  EXPECT_TRUE(f.limits_.warmed_up(v));
}

TEST(BatchPolicy, ScaleUpDoublesForYoungJobs) {
  BatchPolicyConfig cfg;
  cfg.sigma = 1e-6;  // effectively no convoy penalty
  BatchLimitManager limits(cfg);
  Fixture f;
  auto& v = f.add_job(1, "ResNet18", 20000, sched::JobStatus::Running, 1, 10.0);
  limits.on_job_arrival(v, 0.0);
  const int r0 = limits.limit(v);
  limits.on_epoch_complete(v);
  EXPECT_EQ(limits.limit(v), 2 * r0);
}

TEST(BatchPolicy, ScaleUpIsCappedAtCriticalMultiple) {
  BatchPolicyConfig cfg;
  cfg.sigma = 1e-6;
  cfg.r_cap_multiple = 2.0;
  BatchLimitManager limits(cfg);
  Fixture f;
  auto& v = f.add_job(1, "ResNet18", 20000, sched::JobStatus::Running, 1, 1.0);
  limits.on_job_arrival(v, 0.0);
  for (int e = 0; e < 10; ++e) limits.on_epoch_complete(v);
  EXPECT_LE(limits.limit(v), static_cast<int>(2.0 * v.profile->b_crit));
}

TEST(BatchPolicy, ConvoyPenaltyShrinksLongJobs) {
  BatchPolicyConfig cfg;
  cfg.sigma = 0.1;  // 1/sigma = 10 s
  BatchLimitManager limits(cfg);
  Fixture f;
  auto& v = f.add_job(1, "ResNet18", 20000, sched::JobStatus::Running, 1, 0.0);
  limits.on_job_arrival(v, 0.0);
  for (int e = 0; e < 6; ++e) limits.on_epoch_complete(v);  // grow young
  const int grown = limits.limit(v);
  v.exec_time_s = 200.0;  // sigma*T = 20 -> strong shrink
  for (int e = 0; e < 8; ++e) limits.on_epoch_complete(v);
  EXPECT_LT(limits.limit(v), grown);
  // But never below the reference configuration.
  EXPECT_GE(limits.limit(v), std::min(v.profile->b_ref, v.profile->max_local_batch));
}

TEST(BatchPolicy, ResumeHalvesWhenLeftWaiting) {
  BatchPolicyConfig cfg;
  cfg.sigma = 1e-6;
  cfg.min_limit_divisor = 4;  // let halving actually bite in this test
  BatchLimitManager limits(cfg);
  Fixture f;
  auto& v = f.add_job(1, "ResNet18", 20000, sched::JobStatus::Waiting, 2, 5.0);
  limits.on_job_arrival(v, 0.0);
  for (int e = 0; e < 3; ++e) limits.on_epoch_complete(v);
  const int before = limits.limit(v);
  limits.on_left_waiting(v);
  EXPECT_EQ(limits.limit(v), std::max(before / 2, v.profile->b_ref / 4));
}

TEST(BatchPolicy, PreemptionCapsResumeAtLastBatch) {
  BatchPolicyConfig cfg;
  cfg.sigma = 1e-6;
  BatchLimitManager limits(cfg);
  Fixture f;
  auto& v = f.add_job(1, "ResNet18", 20000, sched::JobStatus::Running, 3, 5.0);
  limits.on_job_arrival(v, 0.0);
  for (int e = 0; e < 4; ++e) limits.on_epoch_complete(v);
  EXPECT_GT(limits.limit(v), 512);
  limits.on_preempted(v, 512);
  EXPECT_EQ(limits.limit(v), 512);
}

TEST(BatchPolicy, ArrivalRateEstimate) {
  BatchLimitManager limits;
  Fixture f;
  for (int i = 0; i < 5; ++i) {
    auto& v = f.add_job(i, "ResNet18", 20000, sched::JobStatus::Waiting);
    limits.on_job_arrival(v, 10.0 * i);
  }
  EXPECT_NEAR(limits.arrival_rate(), 0.1, 1e-9);
}

// ---------------- Evolution operators ----------------

TEST(Evolution, RefreshFillsIdleClusterWithJobs) {
  Fixture f;
  f.add_job(1, "ResNet18", 20000, sched::JobStatus::Waiting, /*epochs_done=*/1);
  f.add_job(2, "GoogleNet", 25000, sched::JobStatus::Waiting, /*epochs_done=*/1);
  auto ctx = f.context();
  Evolution evo(EvolutionConfig{});
  cluster::Assignment cand(f.topo_.total_gpus());
  evo.refresh(cand, ctx);
  // Both jobs admitted and spread over two workers each; the remaining GPUs
  // legitimately stay idle: these small-batch jobs are launch-bound, so a
  // third worker would add communication without any speedup.
  EXPECT_EQ(cand.gpu_count(1), 2);
  EXPECT_EQ(cand.gpu_count(2), 2);
  EXPECT_EQ(cand.idle_count(), f.topo_.total_gpus() - 4);
}

TEST(Evolution, RefreshEvictsCompletedJobs) {
  Fixture f;
  f.add_job(1, "ResNet18", 20000, sched::JobStatus::Completed, 20);
  f.add_job(2, "GoogleNet", 25000, sched::JobStatus::Waiting, 1);
  auto ctx = f.context();
  Evolution evo(EvolutionConfig{});
  cluster::Assignment cand(f.topo_.total_gpus());
  for (int g = 0; g < 4; ++g) cand.place(g, 1, 64);  // stale placement
  evo.refresh(cand, ctx);
  EXPECT_EQ(cand.gpu_count(1), 0);
}

TEST(Evolution, RefreshScalesDownBeyondLimit) {
  Fixture f;
  auto& v = f.add_job(1, "ResNet18", 20000, sched::JobStatus::Running, 1);
  (void)v;
  auto ctx = f.context();
  Evolution evo(EvolutionConfig{});
  cluster::Assignment cand(f.topo_.total_gpus());
  // Way beyond the Start-policy limit (256): 8 workers x 512.
  for (int g = 0; g < 8; ++g) cand.place(g, 1, 512);
  evo.refresh(cand, ctx);
  const int r = evo.effective_limit(f.view(1), ctx);
  EXPECT_LE(cand.global_batch(1), r);
}

TEST(Evolution, NewJobsGetPreferentialAllocation) {
  Fixture f;
  // Cluster fully occupied by an old job; a brand-new job arrives.
  auto& old_job = f.add_job(1, "ResNet18", 20000, sched::JobStatus::Running, 5, 500.0);
  (void)old_job;
  f.add_job(2, "GoogleNet", 25000, sched::JobStatus::Waiting, 0, 0.0);
  f.view(2).samples_processed = 0.0;
  auto ctx = f.context();
  Evolution evo(EvolutionConfig{});
  cluster::Assignment cand(f.topo_.total_gpus());
  for (int g = 0; g < f.topo_.total_gpus(); ++g) cand.place(g, 1, 64);
  evo.refresh(cand, ctx);
  EXPECT_GE(cand.gpu_count(2), 1) << "fresh job must be admitted (anti-starvation)";
}

TEST(Evolution, WarmupJobsLimitedToOneGpu) {
  Fixture f;
  f.add_job(1, "ResNet18", 20000, sched::JobStatus::Waiting, 0);  // not warm
  auto ctx = f.context();
  Evolution evo(EvolutionConfig{});
  cluster::Assignment cand(f.topo_.total_gpus());
  evo.refresh(cand, ctx);
  EXPECT_EQ(cand.gpu_count(1), 1);
}

TEST(Evolution, CrossoverPreservesSlotSources) {
  Fixture f;
  f.add_job(1, "ResNet18", 20000, sched::JobStatus::Running, 2);
  f.add_job(2, "GoogleNet", 25000, sched::JobStatus::Running, 2);
  Evolution evo(EvolutionConfig{});
  cluster::Assignment a(8), b(8);
  for (int g = 0; g < 8; ++g) a.place(g, 1, 32);
  for (int g = 0; g < 8; ++g) b.place(g, 2, 16);
  auto [c1, c2] = evo.crossover(a, b);
  for (int g = 0; g < 8; ++g) {
    const auto s1 = c1.slot(g), s2 = c2.slot(g);
    // Each GPU's genes come one from each parent.
    EXPECT_TRUE((s1.job == 1 && s2.job == 2) || (s1.job == 2 && s2.job == 1));
  }
}

TEST(Evolution, MutationPreemptsSomeJobsAndRefills) {
  Fixture f;
  for (JobId j = 1; j <= 4; ++j) {
    f.add_job(j, "ResNet18", 20000, sched::JobStatus::Running, 2);
  }
  auto ctx = f.context();
  EvolutionConfig cfg;
  cfg.mutation_rate = 1.0;  // preempt everything
  Evolution evo(cfg);
  cluster::Assignment cand(f.topo_.total_gpus());
  for (int g = 0; g < 8; ++g) cand.place(g, 1 + g % 4, 64);
  const auto before = cand;
  evo.mutate(cand, ctx);
  EXPECT_EQ(cand.idle_count(), 0);  // refilled
  EXPECT_NE(cand, before);
}

TEST(Evolution, ReorderPacksWorkersContiguously) {
  cluster::Assignment scattered(8);
  scattered.place(0, 1, 32);
  scattered.place(3, 2, 16);
  scattered.place(5, 1, 32);
  scattered.place(7, 2, 16);
  const auto packed = Evolution::reorder(scattered);
  EXPECT_EQ(packed.gpus_of(1), (std::vector<GpuId>{0, 1}));
  EXPECT_EQ(packed.gpus_of(2), (std::vector<GpuId>{2, 3}));
  EXPECT_EQ(packed.global_batch(1), 64);
  EXPECT_EQ(packed.global_batch(2), 32);
}

TEST(Evolution, ReorderImprovesLocalityScore) {
  Fixture f;
  auto& v = f.add_job(1, "VGG16", 10000, sched::JobStatus::Running, 3);
  v.samples_processed = 30000.0;
  auto ctx = f.context();
  Evolution evo(EvolutionConfig{});
  cluster::Assignment spread(f.topo_.total_gpus());
  spread.place(0, 1, 64);
  spread.place(4, 1, 64);  // crosses nodes
  const auto packed = Evolution::reorder(spread);
  RhoMap rho{{1, 0.5}};
  EXPECT_LT(evo.score(packed, ctx, rho), evo.score(spread, ctx, rho));
}

TEST(Evolution, RepairEnforcesMemoryAndEvenSplit) {
  Fixture f;
  f.add_job(1, "VGG16", 10000, sched::JobStatus::Running, 3);
  auto ctx = f.context();
  Evolution evo(EvolutionConfig{});
  cluster::Assignment cand(f.topo_.total_gpus());
  cand.place(0, 1, 100);
  cand.place(1, 1, 1);  // lopsided child from crossover
  evo.repair(cand, ctx);
  const auto gpus = cand.gpus_of(1);
  ASSERT_FALSE(gpus.empty());
  int lo = 1 << 30, hi = 0;
  for (GpuId g : gpus) {
    lo = std::min(lo, cand.slot(g).local_batch);
    hi = std::max(hi, cand.slot(g).local_batch);
    EXPECT_LE(cand.slot(g).local_batch, f.view(1).profile->max_local_batch);
  }
  EXPECT_LE(hi - lo, 1);  // even split
}

TEST(Evolution, EffectiveLimitCapsOneDoublingPerReconfig) {
  Fixture f;
  auto& v = f.add_job(1, "ResNet18", 20000, sched::JobStatus::Running, 6, 1.0);
  f.run_on(1, {0}, 256);
  // Pump the policy limit far above the live batch.
  for (int e = 0; e < 5; ++e) f.limits_.on_epoch_complete(v);
  auto ctx = f.context();
  Evolution evo(EvolutionConfig{});
  EXPECT_GT(f.limits_.limit(v), 512);
  EXPECT_EQ(evo.effective_limit(v, ctx), 512);  // 2x live batch
}

TEST(Evolution, ScoreIsSrufUtilization) {
  Fixture f;
  auto& v = f.add_job(1, "ResNet18", 20000, sched::JobStatus::Running, 2);
  v.samples_processed = 40000.0;
  auto ctx = f.context();
  Evolution evo(EvolutionConfig{});
  cluster::Assignment cand(f.topo_.total_gpus());
  cand.place(0, 1, 256);
  RhoMap rho{{1, 0.5}};
  // Eq. 8: Y_proc * c / X * (1/rho - 1); plus switch surcharge because the
  // live assignment (empty) differs... job 1 is Running in view but absent
  // from live, so no switch penalty applies (it is charged as a resume).
  const double x = f.oracle_.estimate_placed_sps(v, cand);
  const double expected = 40000.0 * 1.0 / x * (1.0 / 0.5 - 1.0);
  EXPECT_NEAR(evo.score(cand, ctx, rho), expected + 600.0 /*preempt: live had none*/,
              expected + 600.0);
  EXPECT_GT(evo.score(cand, ctx, rho), 0.0);
}

TEST(Evolution, ScorePrefersShorterRemaining) {
  Fixture f;
  auto& a = f.add_job(1, "ResNet18", 20000, sched::JobStatus::Waiting, 2);
  auto& b = f.add_job(2, "ResNet18", 20000, sched::JobStatus::Waiting, 2);
  a.samples_processed = 20000.0;
  b.samples_processed = 20000.0;
  auto ctx = f.context();
  Evolution evo(EvolutionConfig{});
  cluster::Assignment run_a(f.topo_.total_gpus()), run_b(f.topo_.total_gpus());
  run_a.place(0, 1, 256);
  run_b.place(0, 2, 256);
  // Job 1 is nearly done (rho -> 1), job 2 barely started (rho small).
  RhoMap rho{{1, 0.9}, {2, 0.1}};
  EXPECT_LT(evo.score(run_a, ctx, rho), evo.score(run_b, ctx, rho));
}

TEST(Evolution, StepSelectsPopulationOfConfiguredSize) {
  Fixture f;
  for (JobId j = 1; j <= 3; ++j) f.add_job(j, "ResNet18", 20000, sched::JobStatus::Waiting, 1);
  auto ctx = f.context();
  EvolutionConfig cfg;
  cfg.population_size = 10;
  Evolution evo(cfg);
  evo.step(ctx);
  EXPECT_EQ(evo.population().size(), 10u);
  for (const auto& cand : evo.population()) {
    EXPECT_NO_THROW(cand.check_invariants());
    EXPECT_EQ(cand.idle_count(), 0);  // Eq. 4: saturate the cluster
  }
}

TEST(Evolution, StepImprovesOrMaintainsBestScore) {
  Fixture f;
  for (JobId j = 1; j <= 6; ++j) {
    auto& v = f.add_job(j, "ResNet18", 20000 + 1000 * j, sched::JobStatus::Waiting, 2);
    v.samples_processed = 10000.0 * static_cast<double>(j);
  }
  auto ctx = f.context();
  EvolutionConfig cfg;
  cfg.population_size = 8;
  Evolution evo(cfg);
  evo.ensure_population(ctx);
  const RhoMap rho = evo.mean_rho(ctx);
  double best0 = 1e300;
  for (const auto& cand : evo.population()) best0 = std::min(best0, evo.score(cand, ctx, rho));
  for (int i = 0; i < 5; ++i) evo.step(ctx);
  double best5 = 1e300;
  for (const auto& cand : evo.population()) best5 = std::min(best5, evo.score(cand, ctx, rho));
  EXPECT_LE(best5, best0 * 1.05);
}

TEST(Evolution, BestIsFeasibleAndSaturating) {
  Fixture f;
  for (JobId j = 1; j <= 4; ++j) f.add_job(j, "GoogleNet", 25000, sched::JobStatus::Waiting, 1);
  auto ctx = f.context();
  Evolution evo(EvolutionConfig{});
  for (int i = 0; i < 3; ++i) evo.step(ctx);
  const auto best = evo.best(ctx);
  EXPECT_NO_THROW(best.check_invariants());
  EXPECT_EQ(best.idle_count(), 0);
  for (JobId j : best.running_jobs()) {
    EXPECT_LE(best.global_batch(j), evo.effective_limit(f.view(j), ctx));
  }
}

TEST(Evolution, SampleRhoWithoutPredictorIsHalf) {
  Fixture f;
  f.add_job(1, "ResNet18", 20000, sched::JobStatus::Waiting, 1);
  auto ctx = f.context(nullptr);
  Evolution evo(EvolutionConfig{});
  const auto rho = evo.sample_rho(ctx);
  EXPECT_DOUBLE_EQ(rho.at(1), 0.5);
}

TEST(Evolution, SampleRhoWithPredictorVariesMeanRhoDoesNot) {
  Fixture f;
  auto& v = f.add_job(1, "ResNet18", 20000, sched::JobStatus::Running, 5);
  v.samples_processed = 100000.0;
  predict::ProgressPredictor predictor;
  auto ctx = f.context(&predictor);
  Evolution evo(EvolutionConfig{});
  const auto s1 = evo.sample_rho(ctx);
  const auto s2 = evo.sample_rho(ctx);
  EXPECT_NE(s1.at(1), s2.at(1));  // stochastic draws
  const auto m1 = evo.mean_rho(ctx);
  const auto m2 = evo.mean_rho(ctx);
  EXPECT_DOUBLE_EQ(m1.at(1), m2.at(1));  // deterministic mean
}

}  // namespace
}  // namespace ones::core
