// Tests for the parallel experiment orchestrator (src/exp): thread-count
// determinism, cache hit/miss behavior, JSON round-trips, cache-key
// sensitivity and grid preconditions.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "exp/cache.hpp"
#include "exp/cli.hpp"
#include "common/json.hpp"
#include "exp/orchestrator.hpp"
#include "sched/fifo.hpp"
#include "sched/tiresias.hpp"
#include "telemetry/registry.hpp"
#include "trace/replay.hpp"

namespace ones::exp {
namespace {

namespace fs = std::filesystem;

sched::SimulationConfig tiny_sim() {
  sched::SimulationConfig c;
  c.topology.num_nodes = 2;
  c.topology.gpus_per_node = 4;
  return c;
}

workload::TraceConfig tiny_trace(std::uint64_t seed = 11) {
  workload::TraceConfig t;
  t.num_jobs = 8;
  t.mean_interarrival_s = 20.0;
  t.seed = seed;
  return t;
}

RunSpec tiny_spec(std::uint64_t seed = 11) {
  RunSpec spec;
  spec.scheduler = "FIFO";
  spec.sim = tiny_sim();
  spec.trace = tiny_trace(seed);
  spec.factory = [] { return std::make_unique<sched::FifoScheduler>(); };
  return spec;
}

std::vector<RunSpec> tiny_grid() {
  std::vector<RunSpec> specs;
  for (std::uint64_t seed : {11ULL, 12ULL}) {
    specs.push_back(tiny_spec(seed));
    RunSpec tiresias = tiny_spec(seed);
    tiresias.scheduler = "Tiresias";
    tiresias.factory = [] { return std::make_unique<sched::TiresiasScheduler>(); };
    specs.push_back(std::move(tiresias));
  }
  return specs;
}

GridOptions quiet_options(int threads, bool use_cache = false,
                          const std::string& cache_dir = ".ones-cache") {
  GridOptions opt;
  opt.threads = threads;
  opt.use_cache = use_cache;
  opt.cache_dir = cache_dir;
  opt.progress = false;
  return opt;
}

/// Bit-identical comparison of two results (no tolerance on purpose: the
/// orchestrator promises byte-identical output for any thread count).
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.summary.scheduler, b.summary.scheduler);
  EXPECT_EQ(a.summary.jobs, b.summary.jobs);
  EXPECT_EQ(a.summary.avg_jct, b.summary.avg_jct);
  EXPECT_EQ(a.summary.avg_exec, b.summary.avg_exec);
  EXPECT_EQ(a.summary.avg_queue, b.summary.avg_queue);
  EXPECT_EQ(a.summary.p50_jct, b.summary.p50_jct);
  EXPECT_EQ(a.summary.p90_jct, b.summary.p90_jct);
  EXPECT_EQ(a.summary.max_jct, b.summary.max_jct);
  EXPECT_EQ(a.summary.makespan, b.summary.makespan);
  EXPECT_EQ(a.summary.utilization, b.summary.utilization);
  EXPECT_EQ(a.summary.cluster_joules, b.summary.cluster_joules);
  EXPECT_EQ(a.summary.overhead_joules, b.summary.overhead_joules);
  EXPECT_EQ(a.jcts, b.jcts);
  EXPECT_EQ(a.exec_times, b.exec_times);
  EXPECT_EQ(a.queue_times, b.queue_times);
  EXPECT_EQ(a.jct_by_job, b.jct_by_job);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.deployments, b.deployments);
}

class TempCacheDir {
 public:
  explicit TempCacheDir(const char* name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
  }
  ~TempCacheDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(ExpOrchestrator, ParallelGridBitIdenticalToSerial) {
  const auto specs = tiny_grid();
  const auto serial = run_grid(specs, quiet_options(1));
  const auto parallel = run_grid(specs, quiet_options(4));
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i]);
  }
  // Results land in spec order: factory-major grid layout.
  EXPECT_EQ(parallel[0].summary.scheduler, "FIFO");
  EXPECT_EQ(parallel[1].summary.scheduler, "Tiresias");
}

TEST(ExpOrchestrator, SecondRunHitsCacheAndChangedSpecMisses) {
  TempCacheDir dir("ones_exp_cache_test");
  const auto specs = tiny_grid();
  const auto cold = run_grid(specs, quiet_options(2, true, dir.path()));
  for (const auto& r : cold) EXPECT_FALSE(r.from_cache);

  const auto warm = run_grid(specs, quiet_options(2, true, dir.path()));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(warm[i].from_cache);
    expect_identical(cold[i], warm[i]);
  }

  // A changed seed (or any config change) must miss.
  auto changed = specs;
  changed[0].trace.seed += 100;
  const auto rerun = run_grid(changed, quiet_options(2, true, dir.path()));
  EXPECT_FALSE(rerun[0].from_cache);
  for (std::size_t i = 1; i < changed.size(); ++i) EXPECT_TRUE(rerun[i].from_cache);
}

TEST(ExpOrchestrator, NoCacheOptionBypassesWarmCache) {
  TempCacheDir dir("ones_exp_nocache_test");
  const std::vector<RunSpec> specs = {tiny_spec()};
  run_grid(specs, quiet_options(1, true, dir.path()));
  const auto rerun = run_grid(specs, quiet_options(1, false, dir.path()));
  EXPECT_FALSE(rerun[0].from_cache);
}

TEST(ExpOrchestrator, MalformedGridsThrow) {
  EXPECT_THROW(run_grid({}, quiet_options(1)), std::logic_error);

  const std::vector<RunSpec> specs = {tiny_spec()};
  EXPECT_THROW(run_grid(specs, quiet_options(0)), std::logic_error);
  EXPECT_THROW(run_grid(specs, quiet_options(-3)), std::logic_error);

  std::vector<RunSpec> no_factory = {tiny_spec()};
  no_factory[0].factory = nullptr;
  EXPECT_THROW(run_grid(no_factory, quiet_options(1)), std::logic_error);

  std::vector<RunSpec> no_name = {tiny_spec()};
  no_name[0].scheduler.clear();
  EXPECT_THROW(run_grid(no_name, quiet_options(1)), std::logic_error);
}

TEST(ExpOrchestrator, WorkerExceptionPropagatesToCaller) {
  std::vector<RunSpec> specs = {tiny_spec()};
  specs[0].factory = []() -> std::unique_ptr<sched::Scheduler> {
    throw std::runtime_error("factory exploded");
  };
  EXPECT_THROW(run_grid(specs, quiet_options(2)), std::runtime_error);
}

TEST(ExpOrchestrator, PoolRunsConcatenatesAndAverages) {
  RunResult a;
  a.summary.scheduler = "X";
  a.jcts = {1.0, 3.0};
  a.exec_times = {0.5, 1.5};
  a.queue_times = {0.5, 1.5};
  a.summary.makespan = 10.0;
  a.summary.utilization = 0.5;
  a.completed = 2;
  RunResult b = a;
  b.jcts = {5.0, 7.0};
  b.summary.makespan = 20.0;
  b.summary.utilization = 0.7;

  const auto pooled = pool_runs({a, b});
  EXPECT_EQ(pooled.summary.scheduler, "X");
  EXPECT_EQ(pooled.jcts, (std::vector<double>{1.0, 3.0, 5.0, 7.0}));
  EXPECT_EQ(pooled.summary.jobs, 4u);
  EXPECT_DOUBLE_EQ(pooled.summary.avg_jct, 4.0);
  EXPECT_DOUBLE_EQ(pooled.summary.p50_jct, 4.0);
  EXPECT_DOUBLE_EQ(pooled.summary.max_jct, 7.0);
  EXPECT_DOUBLE_EQ(pooled.summary.makespan, 15.0);
  EXPECT_DOUBLE_EQ(pooled.summary.utilization, 0.6);
  EXPECT_EQ(pooled.completed, 4u);

  // Single-run pooling is the identity (keeps jct_by_job for paired tests).
  a.jct_by_job[3] = 1.5;
  const auto single = pool_runs({a});
  EXPECT_EQ(single.jct_by_job, a.jct_by_job);

  EXPECT_THROW(pool_runs({}), std::logic_error);
}

TEST(ExpCache, RoundTripAndCounters) {
  TempCacheDir dir("ones_exp_cachecls_test");
  ResultCache cache(dir.path());
  const auto spec = tiny_spec();

  EXPECT_FALSE(cache.load(spec).has_value());
  EXPECT_EQ(cache.misses(), 1u);

  const auto result = execute_run(spec);
  cache.store(spec, result);
  EXPECT_EQ(cache.stores(), 1u);

  const auto loaded = cache.load(spec);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->from_cache);
  EXPECT_EQ(cache.hits(), 1u);
  expect_identical(result, *loaded);
}

TEST(ExpCache, CorruptEntryIsAMiss) {
  TempCacheDir dir("ones_exp_corrupt_test");
  ResultCache cache(dir.path());
  const auto spec = tiny_spec();
  fs::create_directories(dir.path());
  std::ofstream(fs::path(dir.path()) / (cache_key(spec) + ".json")) << "{not json";
  EXPECT_FALSE(cache.load(spec).has_value());
}

TEST(ExpCache, DisabledCacheNeverTouchesDisk) {
  TempCacheDir dir("ones_exp_disabled_test");
  ResultCache cache(dir.path(), /*enabled=*/false);
  const auto spec = tiny_spec();
  RunResult r;
  cache.store(spec, r);
  EXPECT_FALSE(cache.load(spec).has_value());
  EXPECT_FALSE(fs::exists(dir.path()));
}

TEST(ExpRunSpec, CacheKeyIsSensitiveToEveryKnob) {
  const auto base = tiny_spec();
  const std::string key = cache_key(base);
  EXPECT_EQ(key, cache_key(tiny_spec()));  // deterministic

  auto seed = base;
  seed.trace.seed += 1;
  EXPECT_NE(cache_key(seed), key);

  auto nodes = base;
  nodes.sim.topology.num_nodes += 1;
  EXPECT_NE(cache_key(nodes), key);

  auto variant = base;
  variant.variant = "no-predictor";
  EXPECT_NE(cache_key(variant), key);

  auto knob = base;
  knob.sim.convergence.lr_linear_scaling = false;
  EXPECT_NE(cache_key(knob), key);

  auto trace = base;
  trace.trace.mean_interarrival_s *= 2.0;
  EXPECT_NE(cache_key(trace), key);

  // Fault injection (DESIGN.md §13) is simulation input (schema v4): every
  // knob, including the recovery policy, must move the key.
  auto fault = base;
  fault.sim.fault.gpu_mtbf_s = 15000.0;
  EXPECT_NE(cache_key(fault), key);
  auto fault_seed = base;
  fault_seed.sim.fault.seed += 1;
  EXPECT_NE(cache_key(fault_seed), key);
  auto ckpt = base;
  ckpt.sim.fault.checkpoint_interval_s *= 2.0;
  EXPECT_NE(cache_key(ckpt), key);

  // Keys are filesystem-safe and embed the scheduler for debuggability.
  EXPECT_EQ(key.find("fifo-"), 0u);
  EXPECT_EQ(key.find('/'), std::string::npos);
}

TEST(ExpRunSpec, CanonicalSerializationEmbedsSchemaVersion) {
  const std::string text = canonical_serialize(tiny_spec());
  EXPECT_NE(text.find("schema=" + std::to_string(kCacheSchemaVersion)),
            std::string::npos);
  EXPECT_NE(text.find("trace.seed=11"), std::string::npos);
}

TEST(ExpRunSpec, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(ExpJson, ResultRoundTripsExactly) {
  RunResult r;
  r.summary.scheduler = "ONES \"quoted\"\n";
  r.summary.jobs = 3;
  r.summary.avg_jct = 123.456789012345678;
  r.summary.utilization = 1.0 / 3.0;
  r.jcts = {1.0000000000000002, 2.5, 1e-17};
  r.exec_times = {0.1};
  r.queue_times = {};
  r.jct_by_job = {{0, 1.25}, {7, 3.75}};
  r.completed = 3;
  r.events_fired = 123456789;
  r.deployments = 42;

  const auto back = result_from_json(result_to_json(r));
  expect_identical(r, back);
  EXPECT_FALSE(back.from_cache);  // from_cache is not serialized
}

TEST(ExpJson, RejectsMalformedAndWrongSchema) {
  EXPECT_THROW(result_from_json("{"), std::runtime_error);
  EXPECT_THROW(result_from_json("[]"), std::runtime_error);
  EXPECT_THROW(result_from_json("{\"schema\":999}"), std::runtime_error);
  RunResult r;
  const auto json = result_to_json(r);
  EXPECT_THROW(result_from_json(json + "trailing"), std::runtime_error);
}

TEST(ExpCli, DefaultThreadsIsPositive) { EXPECT_GE(default_threads(), 1); }

TEST(ExpCliDeathTest, UnwritableOutputDirFailsFast) {
  // validate_output_dir guards every output-dir flag (--trace-dir,
  // --metrics-dir, --prof-dir): a path that cannot be a writable directory
  // must abort the bench before any run executes.
  EXPECT_EXIT(validate_output_dir("/proc/not-a-writable-dir", "--prof-dir", "test"),
              testing::ExitedWithCode(2), "--prof-dir");
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ExpTracing, TraceBytesIdenticalForAnyThreadCount) {
  const auto specs = tiny_grid();
  TempCacheDir dir_serial("ones_exp_trace_serial");
  TempCacheDir dir_parallel("ones_exp_trace_parallel");

  auto serial_opt = quiet_options(1);
  serial_opt.trace_dir = dir_serial.path();
  auto parallel_opt = quiet_options(4);
  parallel_opt.trace_dir = dir_parallel.path();
  run_grid(specs, serial_opt);
  run_grid(specs, parallel_opt);

  const trace::TraceReplayer replayer;
  for (const auto& spec : specs) {
    const std::string stem = cache_key(spec);
    const std::string serial_bytes =
        read_file(fs::path(dir_serial.path()) / (stem + ".jsonl"));
    const std::string parallel_bytes =
        read_file(fs::path(dir_parallel.path()) / (stem + ".jsonl"));
    ASSERT_FALSE(serial_bytes.empty()) << stem;
    EXPECT_EQ(serial_bytes, parallel_bytes) << stem;
    EXPECT_EQ(read_file(fs::path(dir_serial.path()) / (stem + ".trace.json")),
              read_file(fs::path(dir_parallel.path()) / (stem + ".trace.json")))
        << stem;
    // Every emitted trace is structurally legal.
    const auto report = replayer.check_jsonl(serial_bytes);
    EXPECT_TRUE(report.ok()) << stem << ":\n" << report.to_string();
  }
  // No stray files: one .jsonl + one .trace.json per spec, no leftover tmps.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir_serial.path())) {
    ++files;
    EXPECT_TRUE(e.path().extension() == ".jsonl" ||
                e.path().extension() == ".json")
        << e.path();
  }
  EXPECT_EQ(files, 2 * specs.size());
}

TEST(ExpTracing, CacheServedRunsEmitNoTrace) {
  TempCacheDir cache_dir("ones_exp_trace_cache");
  TempCacheDir trace_dir("ones_exp_trace_cached_out");
  const std::vector<RunSpec> specs = {tiny_spec()};

  // Cold pass populates the cache (no tracing requested).
  run_grid(specs, quiet_options(1, true, cache_dir.path()));

  // Warm pass asks for traces, but every run is cache-served: a trace of a
  // run that never re-executed would be a lie, so nothing may be written.
  auto opt = quiet_options(1, true, cache_dir.path());
  opt.trace_dir = trace_dir.path();
  const auto warm = run_grid(specs, opt);
  ASSERT_TRUE(warm[0].from_cache);
  EXPECT_TRUE(!fs::exists(trace_dir.path()) || fs::is_empty(trace_dir.path()));

  // Bypassing the cache re-executes and traces again.
  auto no_cache = quiet_options(1, false, cache_dir.path());
  no_cache.trace_dir = trace_dir.path();
  run_grid(specs, no_cache);
  EXPECT_TRUE(
      fs::exists(fs::path(trace_dir.path()) / (cache_key(specs[0]) + ".jsonl")));
}

TEST(ExpTracing, TracingDoesNotChangeResults) {
  TempCacheDir trace_dir("ones_exp_trace_results");
  const auto specs = tiny_grid();
  const auto plain = run_grid(specs, quiet_options(2));
  auto opt = quiet_options(2);
  opt.trace_dir = trace_dir.path();
  const auto traced = run_grid(specs, opt);
  ASSERT_EQ(plain.size(), traced.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    expect_identical(plain[i], traced[i]);
  }
}

// The metrics registry follows the tracing contract (DESIGN.md §9): it may
// observe a run, never steer it. The next three tests mirror the ExpTracing
// suite above, instrument for instrument.
TEST(ExpMetrics, MetricsDoNotChangeResults) {
  TempCacheDir metrics_dir("ones_exp_metrics_results");
  const auto specs = tiny_grid();
  const auto plain = run_grid(specs, quiet_options(2));
  auto opt = quiet_options(2);
  opt.metrics_dir = metrics_dir.path();
  const auto instrumented = run_grid(specs, opt);
  ASSERT_EQ(plain.size(), instrumented.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    expect_identical(plain[i], instrumented[i]);
  }
  // Each executed run exported its three files.
  for (const auto& spec : specs) {
    const fs::path base = fs::path(metrics_dir.path()) / cache_key(spec);
    EXPECT_TRUE(fs::exists(base.string() + ".timeline.csv")) << base;
    EXPECT_TRUE(fs::exists(base.string() + ".prom")) << base;
    EXPECT_TRUE(fs::exists(base.string() + ".metrics.json")) << base;
  }
}

TEST(ExpMetrics, MetricsBytesIdenticalForAnyThreadCount) {
  const auto specs = tiny_grid();
  TempCacheDir dir_serial("ones_exp_metrics_serial");
  TempCacheDir dir_parallel("ones_exp_metrics_parallel");

  auto serial_opt = quiet_options(1);
  serial_opt.metrics_dir = dir_serial.path();
  auto parallel_opt = quiet_options(4);
  parallel_opt.metrics_dir = dir_parallel.path();
  run_grid(specs, serial_opt);
  run_grid(specs, parallel_opt);

  for (const auto& spec : specs) {
    const std::string stem = cache_key(spec);
    for (const char* ext : {".timeline.csv", ".prom", ".metrics.json"}) {
      const std::string serial_bytes =
          read_file(fs::path(dir_serial.path()) / (stem + ext));
      ASSERT_FALSE(serial_bytes.empty()) << stem << ext;
      EXPECT_EQ(serial_bytes, read_file(fs::path(dir_parallel.path()) / (stem + ext)))
          << stem << ext;
    }
  }
  // No stray files: three exports per spec, no leftover tmps.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir_serial.path())) {
    ++files;
    EXPECT_TRUE(e.path().extension() == ".csv" || e.path().extension() == ".prom" ||
                e.path().extension() == ".json")
        << e.path();
  }
  EXPECT_EQ(files, 3 * specs.size());
}

TEST(ExpMetrics, CacheServedRunsEmitNoMetrics) {
  TempCacheDir cache_dir("ones_exp_metrics_cache");
  TempCacheDir metrics_dir("ones_exp_metrics_cached_out");
  const std::vector<RunSpec> specs = {tiny_spec()};

  run_grid(specs, quiet_options(1, true, cache_dir.path()));

  // Warm pass: every run is cache-served, so no registry ever exists and no
  // file may appear (metrics of a run that never re-executed would be a lie).
  auto opt = quiet_options(1, true, cache_dir.path());
  opt.metrics_dir = metrics_dir.path();
  const auto warm = run_grid(specs, opt);
  ASSERT_TRUE(warm[0].from_cache);
  EXPECT_TRUE(!fs::exists(metrics_dir.path()) || fs::is_empty(metrics_dir.path()));

  auto no_cache = quiet_options(1, false, cache_dir.path());
  no_cache.metrics_dir = metrics_dir.path();
  run_grid(specs, no_cache);
  EXPECT_TRUE(fs::exists(fs::path(metrics_dir.path()) /
                         (cache_key(specs[0]) + ".metrics.json")));
}

// The host-time profiler is the third instrument under the same contract
// (DESIGN.md §14): attaching it may observe a run, never steer it.
TEST(ExpProfiling, ProfilingDoesNotChangeResults) {
  TempCacheDir prof_dir("ones_exp_prof_results");
  const auto specs = tiny_grid();
  const auto plain = run_grid(specs, quiet_options(2));
  auto opt = quiet_options(2);
  opt.prof_dir = prof_dir.path();
  const auto profiled = run_grid(specs, opt);
  ASSERT_EQ(plain.size(), profiled.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    expect_identical(plain[i], profiled[i]);
  }
  // Each executed run exported its span profile, and it parses.
  for (const auto& spec : specs) {
    const fs::path path =
        fs::path(prof_dir.path()) / (cache_key(spec) + ".prof.json");
    ASSERT_TRUE(fs::exists(path)) << path;
    const JsonValue doc = parse_json(read_file(path));
    const JsonValue* spans = doc.find("spans");
    ASSERT_NE(spans, nullptr) << path;
    EXPECT_FALSE(spans->array.empty()) << path;
  }
}

TEST(ExpProfiling, SpanPathsAndCountsIdenticalForAnyThreadCount) {
  const auto specs = tiny_grid();
  prof::ProfileRollup serial_rollup, parallel_rollup;
  auto serial_opt = quiet_options(1);
  serial_opt.prof = &serial_rollup;
  auto parallel_opt = quiet_options(4);
  parallel_opt.prof = &parallel_rollup;
  run_grid(specs, serial_opt);
  run_grid(specs, parallel_opt);

  // Path-keyed aggregation makes the merge order-independent: the span set
  // and every count are bit-identical across thread counts; only the
  // nanosecond magnitudes are host noise.
  const auto serial = serial_rollup.stats();
  const auto parallel = parallel_rollup.stats();
  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].path, parallel[i].path);
    EXPECT_EQ(serial[i].count, parallel[i].count) << serial[i].path;
  }
}

TEST(ExpProfiling, CacheServedRunsEmitNoProfiles) {
  TempCacheDir cache_dir("ones_exp_prof_cache");
  TempCacheDir prof_dir("ones_exp_prof_cached_out");
  const std::vector<RunSpec> specs = {tiny_spec()};

  run_grid(specs, quiet_options(1, true, cache_dir.path()));

  // Warm pass: every run is cache-served; a profile of a run that never
  // re-executed would be a lie, so nothing may appear.
  auto opt = quiet_options(1, true, cache_dir.path());
  opt.prof_dir = prof_dir.path();
  const auto warm = run_grid(specs, opt);
  ASSERT_TRUE(warm[0].from_cache);
  EXPECT_TRUE(!fs::exists(prof_dir.path()) || fs::is_empty(prof_dir.path()));

  auto no_cache = quiet_options(1, false, cache_dir.path());
  no_cache.prof_dir = prof_dir.path();
  run_grid(specs, no_cache);
  EXPECT_TRUE(fs::exists(fs::path(prof_dir.path()) /
                         (cache_key(specs[0]) + ".prof.json")));
}

TEST(ExpMetrics, GridPublishesCacheStatsIntoRegistry) {
  TempCacheDir cache_dir("ones_exp_metrics_stats");
  const auto specs = tiny_grid();

  telemetry::MetricsRegistry cold_registry;
  auto cold_opt = quiet_options(2, true, cache_dir.path());
  cold_opt.registry = &cold_registry;
  run_grid(specs, cold_opt);
  EXPECT_DOUBLE_EQ(cold_registry.counter_value("exp_cache_hits_total"), 0.0);
  EXPECT_DOUBLE_EQ(cold_registry.counter_value("exp_cache_misses_total"),
                   static_cast<double>(specs.size()));
  EXPECT_DOUBLE_EQ(cold_registry.counter_value("exp_cache_stores_total"),
                   static_cast<double>(specs.size()));
  EXPECT_DOUBLE_EQ(cold_registry.counter_value("exp_runs_executed_total"),
                   static_cast<double>(specs.size()));

  telemetry::MetricsRegistry warm_registry;
  auto warm_opt = quiet_options(2, true, cache_dir.path());
  warm_opt.registry = &warm_registry;
  run_grid(specs, warm_opt);
  EXPECT_DOUBLE_EQ(warm_registry.counter_value("exp_cache_hits_total"),
                   static_cast<double>(specs.size()));
  EXPECT_DOUBLE_EQ(warm_registry.counter_value("exp_cache_misses_total"), 0.0);
  EXPECT_DOUBLE_EQ(warm_registry.counter_value("exp_runs_executed_total"), 0.0);
}

TEST(ExpCache, DemotedCorruptEntryIsCounted) {
  TempCacheDir dir("ones_exp_demote_test");
  ResultCache cache(dir.path());
  const auto spec = tiny_spec();
  fs::create_directories(dir.path());
  std::ofstream(fs::path(dir.path()) / (cache_key(spec) + ".json")) << "{not json";
  EXPECT_FALSE(cache.load(spec).has_value());
  EXPECT_EQ(cache.demotions(), 1u);  // corrupt entry demoted to a miss...
  EXPECT_EQ(cache.misses(), 1u);     // ...and counted as one
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(ExpOrchestrator, VariantAliasingIsRejected) {
  // Two specs, identical declarative config (same cache key), but factories
  // of different types — the classic "ablation config not reflected in
  // RunSpec::variant" bug. The grid must refuse to run.
  std::vector<RunSpec> specs = {tiny_spec(), tiny_spec()};
  specs[1].factory = [] {
    auto s = std::make_unique<sched::FifoScheduler>();
    return std::unique_ptr<sched::Scheduler>(std::move(s));
  };
  EXPECT_THROW(run_grid(specs, quiet_options(1)), std::logic_error);

  // Setting `variant` on one of them separates the cache keys and unblocks.
  specs[1].variant = "alt";
  const auto results = run_grid(specs, quiet_options(1));
  EXPECT_EQ(results.size(), 2u);
  expect_identical(results[0], results[1]);  // same underlying simulation

  // Exact duplicates (same factory type) are benign and allowed.
  const std::vector<RunSpec> dupes = {tiny_spec(), tiny_spec()};
  const auto dupe_results = run_grid(dupes, quiet_options(2));
  expect_identical(dupe_results[0], dupe_results[1]);
}

}  // namespace
}  // namespace ones::exp
