// Parameterized property sweeps over the statistics layer: the Beta
// distribution identities (cdf/quantile inverse pair, sample moments,
// interval coverage) must hold across the whole (alpha, beta) parameter
// grid the predictor can produce, and the Wilcoxon tests must behave
// sensibly across effect sizes.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "stats/beta.hpp"
#include "stats/wilcoxon.hpp"

namespace ones::stats {
namespace {

struct BetaParam {
  double alpha;
  double beta;
};

std::string beta_name(const testing::TestParamInfo<BetaParam>& info) {
  auto fmt = [](double x) {
    std::string s = std::to_string(x);
    for (auto& ch : s) {
      if (ch == '.') ch = 'p';
    }
    return s.substr(0, s.find('p') + 2);
  };
  return "a" + fmt(info.param.alpha) + "_b" + fmt(info.param.beta);
}

class BetaGrid : public testing::TestWithParam<BetaParam> {};

TEST_P(BetaGrid, QuantileInvertsCdf) {
  BetaDistribution d(GetParam().alpha, GetParam().beta);
  for (double p : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const double x = d.quantile(p);
    EXPECT_NEAR(d.cdf(x), p, 1e-7);
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST_P(BetaGrid, CdfIsMonotone) {
  BetaDistribution d(GetParam().alpha, GetParam().beta);
  double prev = -1.0;
  for (int i = 1; i < 20; ++i) {
    const double c = d.cdf(i / 20.0);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST_P(BetaGrid, SampleMomentsMatchClosedForm) {
  BetaDistribution d(GetParam().alpha, GetParam().beta);
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 30000; ++i) stats.add(d.sample(rng));
  EXPECT_NEAR(stats.mean(), d.mean(), 6.0 * std::sqrt(d.variance() / 30000.0) + 1e-4);
  EXPECT_NEAR(stats.variance(), d.variance(), d.variance() * 0.1 + 1e-5);
}

TEST_P(BetaGrid, CredibleIntervalEmpiricalCoverage) {
  BetaDistribution d(GetParam().alpha, GetParam().beta);
  const auto [lo, hi] = d.credible_interval(0.9);
  Rng rng(11);
  int inside = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    if (x >= lo && x <= hi) ++inside;
  }
  EXPECT_NEAR(static_cast<double>(inside) / n, 0.9, 0.015);
}

TEST_P(BetaGrid, ModeWithinSupportAndUnimodalRegime) {
  const auto param = GetParam();
  BetaDistribution d(param.alpha, param.beta);
  const double m = d.mode();
  EXPECT_GE(m, 0.0);
  EXPECT_LE(m, 1.0);
  if (param.alpha > 1.0 && param.beta > 1.0) {
    // Unimodal: the density at the mode beats nearby points.
    EXPECT_GE(d.pdf(m), d.pdf(std::min(m + 0.05, 0.999)) - 1e-12);
    EXPECT_GE(d.pdf(m), d.pdf(std::max(m - 0.05, 0.001)) - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BetaGrid,
    testing::Values(BetaParam{1.0, 1.0}, BetaParam{1.0, 30.0}, BetaParam{2.0, 8.0},
                    BetaParam{5.0, 5.0}, BetaParam{10.0, 2.0}, BetaParam{20.0, 20.0},
                    BetaParam{1.5, 12.5}, BetaParam{40.0, 3.0}),
    beta_name);

class WilcoxonEffect : public testing::TestWithParam<double> {};

TEST_P(WilcoxonEffect, PowerGrowsWithEffectSize) {
  const double shift = GetParam();
  Rng rng(static_cast<std::uint64_t>(shift * 1000) + 3);
  std::vector<double> x, y;
  for (int i = 0; i < 120; ++i) {
    const double base = rng.uniform(50, 150);
    x.push_back(base);
    y.push_back(base + shift + rng.normal(0.0, 5.0));
  }
  const auto res = wilcoxon_signed_rank(x, y);
  if (shift >= 5.0) {
    EXPECT_LT(res.p_two_sided, 0.01) << "shift " << shift;
    EXPECT_LT(res.p_less, 0.01);
  }
  if (shift == 0.0) {
    EXPECT_GT(res.p_two_sided, 0.01);
  }
  // p_less + p_greater ~ 1 + point mass; both in [0, 1].
  EXPECT_GE(res.p_less, 0.0);
  EXPECT_LE(res.p_less, 1.0);
  EXPECT_GE(res.p_greater, 0.0);
  EXPECT_LE(res.p_greater, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Shifts, WilcoxonEffect, testing::Values(0.0, 5.0, 15.0, 40.0),
                         [](const testing::TestParamInfo<double>& shift_info) {
                           return "shift" + std::to_string(static_cast<int>(shift_info.param));
                         });

}  // namespace
}  // namespace ones::stats
