// Unit tests for src/sched: throughput oracle, placement helper, the
// simulation driver contract, and the FIFO / SRTF / Tiresias / Optimus
// baselines.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/ones_scheduler.hpp"
#include "drl/drl_scheduler.hpp"
#include "sched/fifo.hpp"
#include "sched/optimus.hpp"
#include "sched/oracle.hpp"
#include "sched/placement.hpp"
#include "sched/simulation.hpp"
#include "sched/srtf.hpp"
#include "sched/tiresias.hpp"
#include "workload/trace.hpp"

namespace ones::sched {
namespace {

cluster::Topology small_topology() {
  cluster::TopologyConfig c;
  c.num_nodes = 2;
  c.gpus_per_node = 4;
  return cluster::Topology(c);
}

JobView make_view(JobId id, const char* model, std::int64_t dataset) {
  JobView v;
  v.spec.id = id;
  v.spec.variant = {model, "test", dataset, 10};
  v.spec.requested_gpus = 2;
  v.profile = &model::profile_by_name(model);
  v.spec.requested_batch = std::min(v.profile->b_ref, v.profile->max_local_batch) * 2;
  v.init_loss = v.profile->init_loss;
  return v;
}

TEST(Oracle, ColocatedBeatsCrossNodeForCommHeavyJobs) {
  const auto topo = small_topology();
  ThroughputOracle oracle(topo);
  const auto v = make_view(1, "VGG16", 10000);  // 552 MB all-reduce
  const double x_intra = oracle.estimate_sps(v, 4, 512, true);
  const double x_inter = oracle.estimate_sps(v, 4, 512, false);
  EXPECT_GT(x_intra, x_inter);
}

TEST(Oracle, PlacedEstimateUsesActualLink) {
  const auto topo = small_topology();
  ThroughputOracle oracle(topo);
  const auto v = make_view(1, "VGG16", 10000);
  cluster::Assignment colocated(topo.total_gpus()), spread(topo.total_gpus());
  colocated.place(0, 1, 128);
  colocated.place(1, 1, 128);
  spread.place(0, 1, 128);
  spread.place(4, 1, 128);  // second node
  EXPECT_GT(oracle.estimate_placed_sps(v, colocated),
            oracle.estimate_placed_sps(v, spread));
}

TEST(Oracle, NoiseIsDeterministicPerConfiguration) {
  const auto topo = small_topology();
  OracleConfig c;
  c.noise_sigma = 0.2;
  ThroughputOracle oracle(topo, c);
  const auto v = make_view(1, "ResNet18", 20000);
  EXPECT_DOUBLE_EQ(oracle.estimate_sps(v, 2, 512, true),
                   oracle.estimate_sps(v, 2, 512, true));
  EXPECT_NE(oracle.estimate_sps(v, 2, 512, true), oracle.estimate_sps(v, 4, 512, true));
}

TEST(Oracle, CanColocateMatchesNodeSize) {
  const auto topo = small_topology();
  ThroughputOracle oracle(topo);
  EXPECT_TRUE(oracle.can_colocate(4));
  EXPECT_FALSE(oracle.can_colocate(5));
}

TEST(Placement, PrefersSingleNodeBestFit) {
  const auto topo = small_topology();
  cluster::Assignment a(topo.total_gpus());
  // Node 0 has 2 free (GPUs 2,3), node 1 has 4 free.
  a.place(0, 9, 8);
  a.place(1, 9, 8);
  const auto two = pick_idle_gpus(a, topo, 2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(topo.node_of(two[0]), 0);  // best fit: the tighter node
  EXPECT_EQ(topo.node_of(two[1]), 0);
}

TEST(Placement, SpillsAcrossNodesWhenNeeded) {
  const auto topo = small_topology();
  cluster::Assignment a(topo.total_gpus());
  a.place(0, 9, 8);  // 3 free on node 0, 4 free on node 1
  const auto six = pick_idle_gpus(a, topo, 6);
  ASSERT_EQ(six.size(), 6u);
}

TEST(Placement, ReturnsEmptyWhenInsufficient) {
  const auto topo = small_topology();
  cluster::Assignment a(topo.total_gpus());
  for (int g = 0; g < 7; ++g) a.place(g, 9, 8);
  EXPECT_TRUE(pick_idle_gpus(a, topo, 2).empty());
}

SimulationConfig small_sim_config() {
  SimulationConfig c;
  c.topology.num_nodes = 2;  // 8 GPUs
  return c;
}

workload::TraceConfig small_trace_config(int jobs, std::uint64_t seed = 11) {
  workload::TraceConfig t;
  t.num_jobs = jobs;
  t.mean_interarrival_s = 20.0;
  t.seed = seed;
  return t;
}

TEST(Simulation, FifoCompletesAllJobs) {
  FifoScheduler fifo;
  ClusterSimulation sim(small_sim_config(), workload::generate_trace(small_trace_config(10)),
                        fifo);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  EXPECT_EQ(sim.metrics().completed(), 10u);
  // Cluster drained at the end.
  EXPECT_EQ(sim.current_assignment().idle_count(), sim.topology().total_gpus());
}

TEST(Simulation, DeterministicAcrossRuns) {
  const auto trace = workload::generate_trace(small_trace_config(8));
  double jct_a, jct_b;
  {
    FifoScheduler fifo;
    ClusterSimulation sim(small_sim_config(), trace, fifo);
    sim.run();
    jct_a = summarize("f", sim.metrics(), 8).avg_jct;
  }
  {
    FifoScheduler fifo;
    ClusterSimulation sim(small_sim_config(), trace, fifo);
    sim.run();
    jct_b = summarize("f", sim.metrics(), 8).avg_jct;
  }
  EXPECT_DOUBLE_EQ(jct_a, jct_b);
}

TEST(Simulation, EpochLogsAreMonotone) {
  FifoScheduler fifo;
  const auto trace = workload::generate_trace(small_trace_config(5));
  ClusterSimulation sim(small_sim_config(), trace, fifo);
  sim.run();
  for (const auto& spec : trace) {
    const auto& v = sim.job_view(spec.id);
    EXPECT_EQ(v.status, JobStatus::Completed);
    ASSERT_GE(v.epoch_log.size(), 10u);  // at least the patience tail
    for (std::size_t i = 1; i < v.epoch_log.size(); ++i) {
      EXPECT_GE(v.epoch_log[i].time_s, v.epoch_log[i - 1].time_s);
      EXPECT_GT(v.epoch_log[i].samples_processed, v.epoch_log[i - 1].samples_processed);
    }
    EXPECT_EQ(static_cast<int>(v.epoch_log.size()), v.epochs_completed);
  }
}

TEST(Simulation, JctDecomposesIntoExecAndQueue) {
  FifoScheduler fifo;
  const auto trace = workload::generate_trace(small_trace_config(6));
  ClusterSimulation sim(small_sim_config(), trace, fifo);
  sim.run();
  for (const auto& spec : trace) {
    const auto& j = sim.metrics().job(spec.id);
    EXPECT_NEAR(j.jct(), j.exec_time_s + j.queue_time(), 1e-9);
    EXPECT_GE(j.queue_time(), -1e-9);
    EXPECT_GT(j.exec_time_s, 0.0);
  }
}

// A scheduler that returns an assignment referencing a job that does not
// exist must be rejected by the driver's validation.
class RogueScheduler : public Scheduler {
 public:
  std::string name() const override { return "Rogue"; }
  std::optional<cluster::Assignment> on_event(const ClusterState& state,
                                              const SchedulerEvent&) override {
    cluster::Assignment a(state.topology->total_gpus());
    a.place(0, 424242, 32);
    return a;
  }
};

TEST(Simulation, RejectsAssignmentsForUnknownJobs) {
  RogueScheduler rogue;
  ClusterSimulation sim(small_sim_config(), workload::generate_trace(small_trace_config(3)),
                        rogue);
  EXPECT_THROW(sim.run(), std::logic_error);
}

// A scheduler that exceeds a job's GPU memory limit must also be rejected.
class OversizedBatchScheduler : public Scheduler {
 public:
  std::string name() const override { return "Oversized"; }
  std::optional<cluster::Assignment> on_event(const ClusterState& state,
                                              const SchedulerEvent& event) override {
    if (event.kind != EventKind::JobArrival) return std::nullopt;
    cluster::Assignment a = *state.current;
    const auto* job = state.job(event.job);
    a.place(0, event.job, job->profile->max_local_batch * 2);
    return a;
  }
};

TEST(Simulation, RejectsOversizedLocalBatches) {
  OversizedBatchScheduler bad;
  ClusterSimulation sim(small_sim_config(), workload::generate_trace(small_trace_config(3)),
                        bad);
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulation, OracleHookReportsDecreasingRemaining) {
  // Exposed ground-truth hook must shrink as jobs progress.
  class Probe : public Scheduler {
   public:
    std::vector<double> samples;
    std::string name() const override { return "Probe"; }
    std::optional<cluster::Assignment> on_event(const ClusterState& state,
                                                const SchedulerEvent& event) override {
      if (event.kind == EventKind::JobArrival && state.current->idle_count() > 0) {
        cluster::Assignment a = *state.current;
        const auto* job = state.job(event.job);
        a.place(a.idle_gpus().front(), event.job,
                std::min(job->spec.requested_batch, job->profile->max_local_batch));
        return a;
      }
      if (event.kind == EventKind::EpochComplete) {
        samples.push_back(state.true_remaining_samples(event.job, 256));
      }
      return std::nullopt;
    }
  };
  Probe probe;
  auto tc = small_trace_config(1);
  ClusterSimulation sim(small_sim_config(), workload::generate_trace(tc), probe);
  sim.run();
  ASSERT_GE(probe.samples.size(), 5u);
  EXPECT_LT(probe.samples.back(), probe.samples.front());
}

TEST(Tiresias, QueueIndexFollowsAttainedService) {
  TiresiasConfig cfg;
  cfg.queue_thresholds = {100.0, 1000.0};
  TiresiasScheduler t(cfg);
  auto v = make_view(1, "ResNet18", 20000);
  v.spec.requested_gpus = 2;
  v.exec_time_s = 10.0;  // service 20
  EXPECT_EQ(t.queue_of(v), 0);
  v.exec_time_s = 200.0;  // service 400
  EXPECT_EQ(t.queue_of(v), 1);
  v.exec_time_s = 2000.0;  // service 4000
  EXPECT_EQ(t.queue_of(v), 2);
}

TEST(Tiresias, CompletesTraceAndPreempts) {
  TiresiasScheduler t;
  auto tc = small_trace_config(12);
  tc.mean_interarrival_s = 5.0;  // force contention so LAS must preempt
  ClusterSimulation sim(small_sim_config(), workload::generate_trace(tc), t);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
}

TEST(Optimus, PredictsFromPriorWithoutHistory) {
  OptimusScheduler o;
  const auto v = make_view(1, "ResNet18", 20000);
  const double rem = o.predict_remaining_epochs(v);
  EXPECT_GT(rem, 10.0);  // prior total + patience tail
}

TEST(Optimus, FitConvergesTowardTruth) {
  OptimusScheduler o;
  auto v = make_view(1, "ResNet18", 20000);
  // Fabricate an accuracy curve approaching the ceiling; remaining epochs
  // should fall as observed epochs accumulate.
  const auto& p = *v.profile;
  for (int e = 1; e <= 10; ++e) {
    const double frac = static_cast<double>(e) / p.epochs_to_target_ref;
    const double acc = p.accuracy_ceiling * (1.0 - std::exp(-2.5 * frac));
    v.epoch_log.push_back({e * 10.0, e * 20000.0, 1.0, acc, 256});
  }
  v.epochs_completed = 10;
  const double rem10 = o.predict_remaining_epochs(v);
  v.epoch_log.push_back({110.0, 11 * 20000.0, 1.0, 0.9, 256});
  v.epochs_completed = 11;
  const double rem11 = o.predict_remaining_epochs(v);
  EXPECT_LT(rem11, rem10 + 1.0);
  EXPECT_GT(rem10, 0.0);
}

TEST(Optimus, IsPeriodicAndCompletesTrace) {
  OptimusScheduler o;
  EXPECT_GT(o.period_s(), 0.0);
  ClusterSimulation sim(small_sim_config(), workload::generate_trace(small_trace_config(8)),
                        o);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  // Round-based: first jobs cannot start before the first timer tick.
  double min_queue = 1e18;
  for (double q : sim.metrics().queue_times()) min_queue = std::min(min_queue, q);
  EXPECT_GT(min_queue, 0.0);
}

TEST(Srtf, OracleBaselineCompletesAndBeatsFifoOnContendedTrace) {
  auto tc = small_trace_config(16);
  tc.mean_interarrival_s = 4.0;
  const auto trace = workload::generate_trace(tc);
  double fifo_jct, srtf_jct;
  {
    FifoScheduler s;
    ClusterSimulation sim(small_sim_config(), trace, s);
    sim.run();
    EXPECT_TRUE(sim.all_completed());
    fifo_jct = summarize("f", sim.metrics(), 8).avg_jct;
  }
  {
    SrtfOracleScheduler s;
    ClusterSimulation sim(small_sim_config(), trace, s);
    sim.run();
    EXPECT_TRUE(sim.all_completed());
    srtf_jct = summarize("s", sim.metrics(), 8).avg_jct;
  }
  EXPECT_LT(srtf_jct, fifo_jct * 1.15);  // SRPT should not lose badly
}

TEST(Simulation, BackfillFifoNeverWorseOnUtilization) {
  auto tc = small_trace_config(14);
  tc.mean_interarrival_s = 6.0;
  const auto trace = workload::generate_trace(tc);
  double strict_makespan, backfill_makespan;
  {
    FifoScheduler s(false);
    ClusterSimulation sim(small_sim_config(), trace, s);
    sim.run();
    strict_makespan = sim.metrics().makespan();
  }
  {
    FifoScheduler s(true);
    ClusterSimulation sim(small_sim_config(), trace, s);
    sim.run();
    backfill_makespan = sim.metrics().makespan();
  }
  EXPECT_LE(backfill_makespan, strict_makespan * 1.05);
}

// Incremental-vs-rescan audit (DESIGN.md §12): with audit_incremental set,
// the driver recomputes every incremental index (Assignment's idle/per-job
// stats, the active/id job indexes) from first principles after every
// scheduler notification and throws on divergence. Exercising all six
// policies covers every mutation pattern — FIFO's monotone placement,
// SRTF/Tiresias preemption churn, Optimus's periodic timer reshuffles,
// DRL's action decoding, and ONES's evolutionary full-schedule swaps.
// The audit must also never change results.
TEST(Simulation, IncrementalIndexesSurviveAuditAcrossAllSchedulers) {
  struct Policy {
    std::string name;
    std::function<std::unique_ptr<Scheduler>()> make;
  };
  const std::vector<Policy> policies = {
      {"ONES", [] { return std::make_unique<core::OnesScheduler>(); }},
      {"DRL", [] { return std::make_unique<drl::DrlScheduler>(); }},
      {"Tiresias", [] { return std::make_unique<TiresiasScheduler>(); }},
      {"Optimus", [] { return std::make_unique<OptimusScheduler>(); }},
      {"FIFO-BF", [] { return std::make_unique<FifoScheduler>(true); }},
      {"SRTF", [] { return std::make_unique<SrtfOracleScheduler>(); }},
  };
  // Contended trace (more requested GPUs than the cluster holds at once) so
  // every policy actually preempts / reshuffles instead of placing once.
  const auto trace = workload::generate_trace(small_trace_config(12, 23));
  for (const Policy& p : policies) {
    SCOPED_TRACE(p.name);
    telemetry::Summary plain, audited;
    {
      auto sched = p.make();
      ClusterSimulation sim(small_sim_config(), trace, *sched);
      sim.run();
      plain = sim.summary(p.name);
    }
    {
      auto sched = p.make();
      auto config = small_sim_config();
      config.audit_incremental = true;
      ClusterSimulation sim(config, trace, *sched);
      sim.run();
      audited = sim.summary(p.name);
    }
    EXPECT_DOUBLE_EQ(plain.avg_jct, audited.avg_jct);
    EXPECT_DOUBLE_EQ(plain.makespan, audited.makespan);
    EXPECT_DOUBLE_EQ(plain.utilization, audited.utilization);
    EXPECT_DOUBLE_EQ(plain.cluster_joules, audited.cluster_joules);
  }
}

// The audit must catch real divergence: corrupting an index is not directly
// reachable through the public API (that is the point), so instead verify
// the Assignment-level audit entry point accepts a freshly-mutated schedule
// after every kind of mutation.
TEST(Assignment, AuditAcceptsEveryMutationPattern) {
  cluster::Assignment a(8);
  a.audit_indexes();
  a.place(3, 7, 32);
  a.place(4, 7, 32);
  a.place(0, 2, 16);
  a.audit_indexes();
  a.place(3, 2, 8);  // steal an occupied GPU for another job
  a.audit_indexes();
  a.set_local_batch(4, 64);
  a.audit_indexes();
  a.clear(0);
  a.audit_indexes();
  EXPECT_EQ(a.evict(7), 1);  // GPU 3 was stolen above; only GPU 4 remains
  a.audit_indexes();
  EXPECT_EQ(a.idle_count(), 7);
  EXPECT_EQ(a.gpu_count(2), 1);
  EXPECT_EQ(a.global_batch(2), 8);
}

}  // namespace
}  // namespace ones::sched
