// Tests for the src/energy subsystem (DESIGN.md §10): PowerModel purity and
// bounds, EnergyMeter conservation invariants (cluster == sum of jobs +
// overhead == sum of nodes), the meter's agreement with the exported
// `cluster_watts` timeline (joules are the exact integral of the published
// step function), the §9 observability contract (instrumented == plain), and
// the λ=0 guarantee that the power model is purely observational.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/ones_scheduler.hpp"
#include "energy/meter.hpp"
#include "energy/power_model.hpp"
#include "model/task.hpp"
#include "sched/fifo.hpp"
#include "sched/powercap.hpp"
#include "sched/simulation.hpp"
#include "telemetry/registry.hpp"
#include "workload/trace.hpp"

namespace ones::energy {
namespace {

sched::SimulationConfig sim_config(int nodes = 2) {
  sched::SimulationConfig c;
  c.topology.num_nodes = nodes;
  return c;
}

workload::TraceConfig trace_config(int jobs, double interarrival,
                                   std::uint64_t seed = 33) {
  workload::TraceConfig t;
  t.num_jobs = jobs;
  t.mean_interarrival_s = interarrival;
  t.seed = seed;
  return t;
}

model::TaskProfile test_profile() {
  model::TaskProfile p = model::builtin_profiles().front();
  return p;
}

cluster::LinkProfile fast_link() { return {130.0e9, 5e-6}; }

TEST(PowerModel, RejectsMalformedConfig) {
  PowerConfig bad;
  bad.gpu_busy_w = 10.0;  // below idle
  EXPECT_THROW(PowerModel{bad}, std::logic_error);
  bad = PowerConfig{};
  bad.comm_power_fraction = 1.5;
  EXPECT_THROW(PowerModel{bad}, std::logic_error);
  bad = PowerConfig{};
  bad.node_base_w = -1.0;
  EXPECT_THROW(PowerModel{bad}, std::logic_error);
}

TEST(PowerModel, WorkerWattsStayWithinIdleBusyRange) {
  const PowerModel pm{PowerConfig{}};
  const auto profile = test_profile();
  for (int b : {1, 8, 64, profile.max_local_batch}) {
    const std::vector<int> batches(4, b);
    for (std::size_t i = 0; i < batches.size(); ++i) {
      const double w = pm.worker_watts(profile, batches, i, fast_link());
      EXPECT_GE(w, pm.config().gpu_idle_w);
      EXPECT_LE(w, pm.config().gpu_busy_w);
    }
  }
}

TEST(PowerModel, LargerBatchDrawsMoreOnACommBoundWorker) {
  // On a slow link the step is comm-bound, so a bigger local batch raises
  // the compute fraction u and with it the draw.
  const PowerModel pm{PowerConfig{}};
  const auto profile = test_profile();
  const cluster::LinkProfile slow{1.0e9, 2.5e-5};
  const double w_small =
      pm.worker_watts(profile, std::vector<int>(4, 4), 0, slow);
  const double w_large =
      pm.worker_watts(profile, std::vector<int>(4, profile.max_local_batch), 0, slow);
  EXPECT_LT(w_small, w_large);
}

TEST(PowerModel, JobWattsIsSumOfWorkerWatts) {
  const PowerModel pm{PowerConfig{}};
  const auto profile = test_profile();
  const std::vector<int> batches{16, 16, 32, 8};
  double sum = 0.0;
  for (std::size_t i = 0; i < batches.size(); ++i) {
    sum += pm.worker_watts(profile, batches, i, fast_link());
  }
  EXPECT_DOUBLE_EQ(pm.job_watts(profile, batches, fast_link()), sum);
}

TEST(PowerModel, EvenSplitMatchesExplicitBatches) {
  const PowerModel pm{PowerConfig{}};
  const auto profile = test_profile();
  // 64 over 4 workers -> {16, 16, 16, 16}.
  EXPECT_DOUBLE_EQ(pm.job_watts_even(profile, 64, 4, fast_link()),
                   pm.job_watts(profile, std::vector<int>(4, 16), fast_link()));
}

/// Integrate a right-continuous step function given as (t, value) change
/// points (t non-decreasing) from t=0 to `until`.
double integrate_step_function(const std::vector<std::pair<double, double>>& points,
                               double until) {
  double joules = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double t0 = points[i].first;
    const double t1 = i + 1 < points.size() ? points[i + 1].first : until;
    joules += points[i].second * (t1 - t0);
  }
  return joules;
}

TEST(EnergyMeter, ClusterJoulesEqualIntegralOfPublishedWattsTimeline) {
  core::OnesScheduler ones_sched;
  telemetry::MetricsRegistry registry;
  auto config = sim_config();
  config.metrics = &registry;
  sched::ClusterSimulation sim(config, workload::generate_trace(trace_config(10, 15)),
                               ones_sched);
  sim.run();
  ASSERT_TRUE(sim.all_completed());

  const auto id = registry.timeline().series("cluster_watts");
  std::vector<std::pair<double, double>> watts;
  for (const auto& p : registry.timeline().points()) {
    if (p.series == id) watts.emplace_back(p.t, p.value);
  }
  ASSERT_FALSE(watts.empty());
  EXPECT_EQ(watts.front().first, 0.0);  // metering starts at t=0

  const double integral =
      integrate_step_function(watts, sim.energy().metered_until());
  const double measured = sim.energy().cluster_joules();
  EXPECT_GT(measured, 0.0);
  // Same mathematical integral, different floating-point grouping (the meter
  // accumulates every assignment interval; the timeline collapses unchanged
  // values), hence a relative tolerance instead of exact equality.
  EXPECT_NEAR(integral, measured, 1e-9 * measured);
}

TEST(EnergyMeter, JobPlusOverheadAndNodeDecompositionsBothSumToCluster) {
  core::OnesScheduler ones_sched;
  sched::ClusterSimulation sim(sim_config(), workload::generate_trace(trace_config(12, 12)),
                               ones_sched);
  sim.run();
  ASSERT_TRUE(sim.all_completed());
  const EnergyMeter& meter = sim.energy();

  double by_job = meter.overhead_joules();
  for (const auto& [job, joules] : meter.joules_by_job()) {
    EXPECT_GT(joules, 0.0) << "job " << job;
    EXPECT_DOUBLE_EQ(meter.job_joules(job), joules);
    by_job += joules;
  }
  double by_node = 0.0;
  for (const double joules : meter.joules_by_node()) by_node += joules;

  const double cluster = meter.cluster_joules();
  EXPECT_GT(cluster, 0.0);
  EXPECT_GT(meter.overhead_joules(), 0.0);  // node base power alone ensures this
  EXPECT_NEAR(by_job, cluster, 1e-9 * cluster);
  EXPECT_NEAR(by_node, cluster, 1e-9 * cluster);
  // Jobs that never existed are billed nothing.
  EXPECT_DOUBLE_EQ(meter.job_joules(JobId{999999}), 0.0);
}

TEST(EnergyMeter, AttachingARegistryDoesNotChangeJoules) {
  const auto trace = workload::generate_trace(trace_config(10, 15));

  sched::FifoScheduler plain_sched;
  sched::ClusterSimulation plain(sim_config(), trace, plain_sched);
  plain.run();

  telemetry::MetricsRegistry registry;
  auto config = sim_config();
  config.metrics = &registry;
  sched::FifoScheduler instrumented_sched;
  sched::ClusterSimulation instrumented(config, trace, instrumented_sched);
  instrumented.run();

  // Bit-identical: instrumentation must never perturb the integral.
  EXPECT_EQ(plain.energy().cluster_joules(), instrumented.energy().cluster_joules());
  EXPECT_EQ(plain.energy().overhead_joules(),
            instrumented.energy().overhead_joules());
  EXPECT_EQ(plain.energy().joules_by_job(), instrumented.energy().joules_by_job());

  // The registry's monotone counters agree with the meter's totals (same
  // deltas accumulated in the same order -> exactly equal).
  EXPECT_DOUBLE_EQ(registry.counter_value("energy_cluster_joules_total"),
                   instrumented.energy().cluster_joules());
  EXPECT_DOUBLE_EQ(registry.counter_value("energy_overhead_joules_total"),
                   instrumented.energy().overhead_joules());
}

TEST(EnergyMeter, LambdaZeroDecisionsAreIndependentOfPowerConstants) {
  // With lambda_energy = 0 the power model is purely observational: changing
  // the electrical constants rescales joules but must not move a single
  // scheduling decision (the golden-trace digest in trace_test.cpp pins the
  // same guarantee for the default constants).
  const auto trace = workload::generate_trace(trace_config(10, 12));

  core::OnesScheduler sched_a;
  sched::ClusterSimulation sim_a(sim_config(), trace, sched_a);
  sim_a.run();

  auto config = sim_config();
  config.power.gpu_idle_w = 10.0;
  config.power.gpu_busy_w = 700.0;
  config.power.node_base_w = 50.0;
  config.power.comm_power_fraction = 0.9;
  core::OnesScheduler sched_b;
  sched::ClusterSimulation sim_b(config, trace, sched_b);
  sim_b.run();

  EXPECT_EQ(sim_a.metrics().jct_by_job(), sim_b.metrics().jct_by_job());
  EXPECT_EQ(sim_a.metrics().makespan(), sim_b.metrics().makespan());
  EXPECT_NE(sim_a.energy().cluster_joules(), sim_b.energy().cluster_joules());
}

TEST(EnergyMeter, LambdaBlendChangesOnesDecisions) {
  // Sanity check that the fitness blend is actually wired through: a large
  // lambda_energy must be able to move at least one decision on a trace
  // where candidates differ in predicted draw.
  const auto trace = workload::generate_trace(trace_config(16, 8));

  core::OnesScheduler plain;
  sched::ClusterSimulation sim_plain(sim_config(), trace, plain);
  sim_plain.run();

  core::OnesConfig cfg;
  cfg.evolution.lambda_energy = 8.0;
  core::OnesScheduler blended(cfg);
  sched::ClusterSimulation sim_blended(sim_config(), trace, blended);
  sim_blended.run();

  EXPECT_TRUE(sim_plain.all_completed());
  EXPECT_TRUE(sim_blended.all_completed());
  EXPECT_NE(sim_plain.metrics().jct_by_job(), sim_blended.metrics().jct_by_job());
}

TEST(PowerCapScheduler, CompletesAllJobsUnderTheCap) {
  sched::PowerCapScheduler capped;
  telemetry::MetricsRegistry registry;
  auto config = sim_config();
  config.metrics = &registry;
  sched::ClusterSimulation sim(config, workload::generate_trace(trace_config(12, 10)),
                               capped);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  EXPECT_EQ(capped.name(), "PowerCap");
  EXPECT_GT(sim.energy().cluster_joules(), 0.0);
}

}  // namespace
}  // namespace ones::energy
