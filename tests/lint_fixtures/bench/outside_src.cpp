// Fixture: R3/R4 scope — this file is NOT under src/, so bare includes and
// assert() are out of scope for those rules (R1 still applies everywhere,
// hence no wall-clock here). Expected: clean.
#include <cassert>

namespace fixture {

int checked(int v) {
  assert(v >= 0);
  return v;
}

}  // namespace fixture
