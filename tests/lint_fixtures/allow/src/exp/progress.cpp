// Fixture: R1 allowlist — this path ends in src/exp/progress.cpp, which is
// on the default wall-clock allowlist (progress/ETA reporter). Expected:
// clean under default options, one R1 with --no-default-allow.
#include <chrono>

namespace fixture {

double progress_eta() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace fixture
