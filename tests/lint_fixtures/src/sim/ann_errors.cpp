// Fixture: ANN positives — a typo'd tag and a region never closed must be
// findings themselves (a typo must not silently disable a rule). Expected:
// two ANN findings.

namespace fixture {

// ones-lint: wall-clok-ok(typo in the tag)
// ones-lint-begin: wall-clock-ok(this region is never closed)
inline int f() { return 1; }

}  // namespace fixture
