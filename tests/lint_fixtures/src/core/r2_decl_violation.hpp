// Fixture: R2 positive — unordered containers declared in a decision-path
// module (core) without the unordered-ok annotation. Expected: two R2.
#pragma once
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct State {
  std::unordered_map<int, double> weights;
  std::unordered_set<int> members;
};

}  // namespace fixture
