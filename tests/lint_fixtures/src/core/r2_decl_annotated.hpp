// Fixture: R2 negative — the same declarations, each annotated with a
// reason. Expected: clean.
#pragma once
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct State {
  // ones-lint: unordered-ok(keyed lookup only, never iterated)
  std::unordered_map<int, double> weights;
  // ones-lint: unordered-ok(membership probe only, never iterated)
  std::unordered_set<int> members;
};

}  // namespace fixture
