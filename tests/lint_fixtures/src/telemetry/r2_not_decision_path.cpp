// Fixture: R2 scope — telemetry is NOT a decision-path module, so unordered
// declarations and iteration are allowed without annotations (results-path
// determinism is covered by the exporters sorting their output). Expected:
// clean.
#include <unordered_map>

namespace fixture {

double export_sum() {
  std::unordered_map<int, double> samples;
  samples[7] = 1.0;
  double sum = 0.0;
  for (const auto& [id, v] : samples) sum += v;
  return sum;
}

}  // namespace fixture
