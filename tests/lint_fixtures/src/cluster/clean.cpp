// Fixture: fully clean file — module-form include, ONES_EXPECT instead of
// assert, ordered containers, sim-time only. Expected: clean.
#include "common/expect.hpp"

#include <map>
#include <vector>

namespace fixture {

inline double sum_sorted(const std::map<int, double>& m) {
  ONES_EXPECT(!m.empty());
  double sum = 0.0;
  for (const auto& [k, v] : m) sum += v;
  return sum;
}

}  // namespace fixture
