// Fixture: R3 positive — assert() in library code under src/. Expected:
// one R3 (static_assert and ASSERT_-style macros must not match).
#include <cassert>

namespace fixture {

static_assert(sizeof(int) >= 4, "not an R3 finding");

int checked(int v) {
  assert(v >= 0);
  return v;
}

}  // namespace fixture
