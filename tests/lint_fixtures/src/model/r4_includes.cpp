// Fixture: R4 positive — include hygiene under src/: a "../" relative
// include and a bare file-name include. Expected: two R4. The angle-bracket
// and module-form includes are fine.
// ones-lint: include-ok(fixture: the next include is the violation under test)
#include "../common/expect.hpp"  // annotated: suppressed
#include "../model/task.hpp"     // R4: relative include
#include "task.hpp"              // R4: bare include
#include "model/task.hpp"        // clean: module/file.hpp form
#include <vector>                // clean: system include

namespace fixture {}
