// Fixture: R2 positive — iterating an unordered container in a
// decision-path module (sched): once by range-for, once through .begin().
// The declarations themselves are annotated, so the expected findings are
// exactly the two iteration sites.
#include <unordered_map>

namespace fixture {

double decide() {
  // ones-lint: unordered-ok(fixture: exercising the iteration rule, not this one)
  std::unordered_map<int, double> scores;
  scores[1] = 0.5;
  double sum = 0.0;
  for (const auto& [id, s] : scores) sum += s;
  for (auto it = scores.begin(); it != scores.end(); ++it) sum += it->second;
  return sum;
}

}  // namespace fixture
