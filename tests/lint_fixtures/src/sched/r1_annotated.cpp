// Fixture: R1 negative — the same wall-clock calls, each carrying the
// annotation escape hatch (single-line and region form). Expected: clean.
#include <chrono>

namespace fixture {

double eta() {
  // ones-lint: wall-clock-ok(cosmetic stderr ETA only)
  const auto t0 = std::chrono::steady_clock::now();
  // ones-lint-begin: wall-clock-ok(still the same cosmetic ETA block)
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
  // ones-lint-end: wall-clock-ok
}

}  // namespace fixture
