// Fixture: R2 negative — iteration over an unordered container that is
// provably order-insensitive, carrying the escape-hatch annotation.
// Expected: clean.
#include <unordered_map>

namespace fixture {

double total() {
  // ones-lint: unordered-ok(fixture: summing only)
  std::unordered_map<int, double> scores;
  scores[1] = 0.5;
  double sum = 0.0;
  // ones-lint: unordered-iteration-ok(commutative sum, order cannot leak)
  for (const auto& [id, s] : scores) sum += s;
  return sum;
}

}  // namespace fixture
