// Fixture: R1 positive — an annotation with an empty reason must NOT
// suppress the finding. Expected: one R1.
#include <chrono>

namespace fixture {

double bad() {
  // ones-lint: wall-clock-ok()
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
