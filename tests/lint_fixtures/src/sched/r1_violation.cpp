// Fixture: R1 positive — wall-clock and ambient randomness without any
// annotation. Expected findings: one R1 per offending line (4 total).
#include <chrono>
#include <cstdlib>
#include <random>

namespace fixture {

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int ambient_random() {
  std::random_device rd;
  return static_cast<int>(rd()) + rand();
}

}  // namespace fixture
