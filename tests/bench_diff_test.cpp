// tools/bench_diff classification tests: deterministic metric drift is a
// regression, host-time growth warns (unless escalated), profile spans are
// warn-only, and malformed reports are rejected.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/json.hpp"
#include "diff.hpp"

using namespace ones;
using bench_diff::ReportDiff;
using bench_diff::Severity;
using bench_diff::Thresholds;

namespace {

/// A minimal schema-1 report with one deterministic metric, host wall time,
/// one host metric and one profile span.
std::string report(double avg_jct, double wall_s, double real_ns, double span_ns) {
  return "{\"schema\":1,\"bench\":\"unit\",\"threads\":2,\"seeds\":1,"
         "\"metrics\":{\"avg_jct.ONES\":" + json_double(avg_jct) + "},"
         "\"host\":{\"wall_seconds\":" + json_double(wall_s) +
         ",\"peak_rss_mib\":100.0,\"metrics\":{\"real_ns.Pop\":" +
         json_double(real_ns) + "}},"
         "\"profile\":[{\"path\":\"decision\",\"count\":4,\"total_ns\":" +
         json_double(span_ns) + ",\"self_ns\":1}]}";
}

ReportDiff diff(const std::string& old_json, const std::string& new_json,
                const Thresholds& t = Thresholds{}) {
  return bench_diff::diff_reports(parse_json(old_json), parse_json(new_json), t);
}

TEST(BenchDiff, IdenticalReportsAreClean) {
  const std::string r = report(100.0, 10.0, 50.0, 1000.0);
  const ReportDiff d = diff(r, r);
  EXPECT_EQ(d.regressions, 0);
  EXPECT_EQ(d.warnings, 0);
  EXPECT_TRUE(d.deltas.empty());
  EXPECT_EQ(d.bench, "unit");
}

TEST(BenchDiff, MetricDriftIsARegression) {
  // An injected 1% metric regression must be flagged (acceptance criterion:
  // nonzero exit in the CLI, counted as a regression here).
  const ReportDiff d = diff(report(100.0, 10.0, 50.0, 1000.0),
                            report(101.0, 10.0, 50.0, 1000.0));
  ASSERT_EQ(d.regressions, 1);
  EXPECT_EQ(d.deltas[0].key, "metrics/avg_jct.ONES");
  EXPECT_EQ(d.deltas[0].severity, Severity::Regression);
  // Determinism cuts both ways: an "improved" metric is still drift.
  EXPECT_EQ(diff(report(101.0, 10.0, 50.0, 1000.0),
                 report(100.0, 10.0, 50.0, 1000.0))
                .regressions,
            1);
}

TEST(BenchDiff, MissingMetricIsARegressionNewMetricIsInfo) {
  const std::string base = report(100.0, 10.0, 50.0, 1000.0);
  std::string extra = base;
  const std::string needle = "\"metrics\":{";
  extra.replace(extra.find(needle), needle.size(),
                "\"metrics\":{\"p90_jct.ONES\":7.0,");
  // Metric present only in old: regression.
  const ReportDiff gone = diff(extra, base);
  EXPECT_EQ(gone.regressions, 1);
  EXPECT_EQ(gone.deltas[0].note, "only in old");
  // Metric present only in new: informational.
  const ReportDiff added = diff(base, extra);
  EXPECT_EQ(added.regressions, 0);
  EXPECT_EQ(added.warnings, 0);
  ASSERT_EQ(added.deltas.size(), 1u);
  EXPECT_EQ(added.deltas[0].severity, Severity::Info);
  EXPECT_EQ(added.deltas[0].note, "only in new");
}

TEST(BenchDiff, HostGrowthWarnsOnly) {
  // Wall time doubles, a host metric grows 10x, a profile span grows 2x:
  // all warn, none fail, exit stays clean by default.
  const ReportDiff d = diff(report(100.0, 10.0, 50.0, 1000.0),
                            report(100.0, 20.0, 500.0, 2000.0));
  EXPECT_EQ(d.regressions, 0);
  EXPECT_EQ(d.warnings, 3);
  for (const auto& delta : d.deltas) EXPECT_EQ(delta.severity, Severity::Warning);
}

TEST(BenchDiff, HostImprovementIsNeverFlagged) {
  const ReportDiff d = diff(report(100.0, 20.0, 500.0, 2000.0),
                            report(100.0, 10.0, 50.0, 1000.0));
  EXPECT_EQ(d.regressions, 0);
  EXPECT_EQ(d.warnings, 0);
}

TEST(BenchDiff, HostGrowthWithinToleranceIsClean) {
  Thresholds t;
  t.host_rel_tol = 0.25;
  // +20% wall time sits inside the default 25% band.
  const ReportDiff d = diff(report(100.0, 10.0, 50.0, 1000.0),
                            report(100.0, 12.0, 50.0, 1000.0), t);
  EXPECT_EQ(d.warnings, 0);
}

TEST(BenchDiff, FailOnHostEscalatesToRegression) {
  Thresholds t;
  t.fail_on_host = true;
  const ReportDiff d = diff(report(100.0, 10.0, 50.0, 1000.0),
                            report(100.0, 20.0, 50.0, 1000.0), t);
  EXPECT_EQ(d.regressions, 1);
  EXPECT_EQ(d.warnings, 0);
}

TEST(BenchDiff, MetricToleranceIsConfigurable) {
  Thresholds t;
  t.metric_rel_tol = 0.05;
  EXPECT_EQ(diff(report(100.0, 10.0, 50.0, 1000.0),
                 report(101.0, 10.0, 50.0, 1000.0), t)
                .regressions,
            0);
  EXPECT_EQ(diff(report(100.0, 10.0, 50.0, 1000.0),
                 report(110.0, 10.0, 50.0, 1000.0), t)
                .regressions,
            1);
}

TEST(BenchDiff, RejectsMalformedReports) {
  const std::string good = report(100.0, 10.0, 50.0, 1000.0);
  EXPECT_THROW((void)diff("{\"schema\":2,\"bench\":\"unit\",\"metrics\":{}}", good),
               std::runtime_error);
  EXPECT_THROW((void)diff("{\"bench\":\"unit\",\"metrics\":{}}", good),
               std::runtime_error);
  EXPECT_THROW((void)diff(good, "{\"schema\":1,\"bench\":\"unit\"}"),
               std::runtime_error);
  // Comparing two different benches is a usage error, not a regression.
  std::string other = good;
  other.replace(other.find("\"unit\""), 6, "\"misc\"");
  EXPECT_THROW((void)diff(good, other), std::runtime_error);
}

TEST(BenchDiff, FormatMentionsEveryFlaggedDelta) {
  const ReportDiff d = diff(report(100.0, 10.0, 50.0, 1000.0),
                            report(105.0, 30.0, 50.0, 1000.0));
  const std::string text = bench_diff::format_diff(d);
  EXPECT_NE(text.find("REGRESSION metrics/avg_jct.ONES"), std::string::npos) << text;
  EXPECT_NE(text.find("WARN host/wall_seconds"), std::string::npos) << text;
}

}  // namespace
