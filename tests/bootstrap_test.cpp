// Unit tests for the bootstrap confidence intervals.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stats/bootstrap.hpp"

namespace ones::stats {
namespace {

TEST(Bootstrap, MeanCiCoversTrueMean) {
  Rng rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 400; ++i) sample.push_back(rng.normal(100.0, 15.0));
  const auto ci = bootstrap_mean_ci(sample);
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
  EXPECT_LT(ci.lo, 100.0 + 3.0);
  EXPECT_GT(ci.hi, 100.0 - 3.0);
  // Width roughly 2 * 1.96 * sigma / sqrt(n) ~ 2.9.
  EXPECT_NEAR(ci.hi - ci.lo, 2.9, 1.0);
}

TEST(Bootstrap, DeterministicForSameSeed) {
  std::vector<double> sample = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto a = bootstrap_mean_ci(sample, 500, 0.95, 42);
  const auto b = bootstrap_mean_ci(sample, 500, 0.95, 42);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, PairedDiffDetectsShift) {
  Rng rng(7);
  std::vector<double> x, y;
  for (int i = 0; i < 300; ++i) {
    const double base = rng.uniform(50, 200);
    x.push_back(base);
    y.push_back(base + 20.0 + rng.normal(0.0, 5.0));
  }
  const auto ci = bootstrap_paired_mean_diff_ci(x, y);
  EXPECT_NEAR(ci.point, -20.0, 1.5);
  EXPECT_LT(ci.hi, 0.0);  // significantly negative
}

TEST(Bootstrap, RelativeReductionMatchesPointEstimate) {
  Rng rng(9);
  std::vector<double> x, y;
  for (int i = 0; i < 300; ++i) {
    const double base = rng.uniform(100, 300);
    y.push_back(base);
    x.push_back(base * 0.7);  // 30% reduction
  }
  const auto ci = bootstrap_relative_reduction_ci(x, y);
  EXPECT_NEAR(ci.point, 0.30, 1e-9);
  EXPECT_GT(ci.lo, 0.25);
  EXPECT_LT(ci.hi, 0.35);
}

TEST(Bootstrap, NoEffectIntervalStraddlesZero) {
  Rng rng(11);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(rng.normal(100, 10));
    y.push_back(rng.normal(100, 10));
  }
  const auto ci = bootstrap_paired_mean_diff_ci(x, y);
  EXPECT_LT(ci.lo, 0.5);
  EXPECT_GT(ci.hi, -0.5);
}

TEST(Bootstrap, RejectsDegenerateInput) {
  EXPECT_THROW(bootstrap_mean_ci({}), std::logic_error);
  EXPECT_THROW(bootstrap_paired_mean_diff_ci({1.0}, {1.0, 2.0}), std::logic_error);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 0), std::logic_error);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 100, 1.5), std::logic_error);
}

}  // namespace
}  // namespace ones::stats
