// Differential property harness: the production calendar-queue SimEngine vs
// the reference priority-queue engine (tests/reference_engine.hpp).
//
// Both engines are driven in lock-step through the same deterministic op
// script (seeded randomized schedule_at / schedule_after / cancel /
// run_until / step interleavings, adversarial same-timestamp bursts,
// bucket-boundary and far-future times, schedule-and-cancel from within
// callbacks). After every op the harness asserts byte-identical fire order
// (tag sequence), now() trajectories, cancel() return values and pending()
// counts. Any divergence is a semantics bug in the calendar queue — the
// reference engine is the spec.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "reference_engine.hpp"
#include "sim/engine.hpp"

namespace ones::sim {
namespace {

// Drives one engine and records everything observable about it. Callbacks
// behave deterministically as a function of their tag: some schedule a
// child, some cancel an earlier event, some cancel themselves — so the two
// harnesses stay mirrored exactly as long as their fire orders match (which
// is what the test asserts after every op).
template <typename EngineT>
class Harness {
 public:
  EngineT engine;
  std::vector<EventId> id_of_tag;
  std::vector<std::pair<double, int>> fire_log;  // (now() at fire, tag)
  std::vector<int> cancel_log;                   // in-callback cancel results
  int next_tag = 0;

  int schedule_abs(double when) {
    const int tag = next_tag++;
    id_of_tag.push_back(engine.schedule_at(when, callback(tag)));
    return tag;
  }

  int schedule_rel(double delay) {
    const int tag = next_tag++;
    id_of_tag.push_back(engine.schedule_after(delay, callback(tag)));
    return tag;
  }

  bool cancel_tag(int tag) { return engine.cancel(id_of_tag[static_cast<std::size_t>(tag)]); }

 private:
  std::function<void()> callback(int tag) {
    return [this, tag] {
      fire_log.emplace_back(engine.now(), tag);
      if (tag % 7 == 3 && tag / 2 < tag) {
        // Cancel-from-within-a-callback targeting an unrelated event.
        cancel_log.push_back(cancel_tag(tag / 2) ? 1 : 0);
      }
      if (tag % 11 == 5) {
        // Self-cancel while firing: must be a deterministic no-op -> false.
        cancel_log.push_back(cancel_tag(tag) ? 1 : 0);
      }
      if (tag % 5 == 0 && tag < 4000000) {
        // Events scheduling more events, including exact-now ties.
        const double delay = (tag % 3 == 0) ? 0.0 : 0.25 * static_cast<double>(tag % 16);
        schedule_rel(delay);
      }
    };
  }
};

class LockStep {
 public:
  Harness<SimEngine> dut;
  Harness<testing::ReferenceEngine> ref;

  void check(const char* where) {
    ASSERT_EQ(dut.engine.now(), ref.engine.now()) << where;
    ASSERT_EQ(dut.engine.pending(), ref.engine.pending()) << where;
    ASSERT_EQ(dut.engine.fired(), ref.engine.fired()) << where;
    ASSERT_EQ(dut.next_tag, ref.next_tag) << where;
    ASSERT_EQ(dut.fire_log, ref.fire_log) << where;
    ASSERT_EQ(dut.cancel_log, ref.cancel_log) << where;
  }

  void schedule_abs(double when) {
    dut.schedule_abs(when);
    ref.schedule_abs(when);
  }

  void schedule_rel(double delay) {
    dut.schedule_rel(delay);
    ref.schedule_rel(delay);
  }

  void cancel(int tag) {
    ASSERT_EQ(dut.cancel_tag(tag), ref.cancel_tag(tag)) << "cancel tag " << tag;
  }

  void run_until(double limit) {
    dut.engine.run_until(limit);
    ref.engine.run_until(limit);
  }

  void step() { ASSERT_EQ(dut.engine.step(), ref.engine.step()); }

  void drain() {
    dut.engine.run();
    ref.engine.run();
  }
};

// One randomized differential episode; the fuzz tests below sweep seeds.
void run_episode(std::uint64_t seed, int ops) {
  LockStep ls;
  Rng rng(seed);
  for (int op = 0; op < ops; ++op) {
    const auto kind = rng.uniform_int(0, 9);
    const double now = ls.dut.engine.now();
    switch (kind) {
      case 0:  // plain near-future absolute time
        ls.schedule_abs(now + rng.uniform(0.0, 100.0));
        break;
      case 1: {  // adversarial same-timestamp burst
        const double when = now + rng.uniform(0.0, 50.0);
        const auto burst = rng.uniform_int(2, 12);
        for (std::int64_t i = 0; i < burst; ++i) ls.schedule_abs(when);
        break;
      }
      case 2:  // bucket-boundary-ish times: exact integers and power-of-two steps
        ls.schedule_abs(now + static_cast<double>(rng.uniform_int(0, 64)) *
                                  (rng.bernoulli(0.5) ? 1.0 : 0.0078125));
        break;
      case 3:  // far-future outlier (forces ring wrap + global-min fallback)
        ls.schedule_abs(now + rng.uniform(1e6, 1e12));
        break;
      case 4:  // relative scheduling, including zero delay
        ls.schedule_rel(rng.bernoulli(0.25) ? 0.0 : rng.uniform(0.0, 200.0));
        break;
      case 5:  // cancel a random tag (may be pending, fired, or already cancelled)
        if (ls.dut.next_tag > 0) {
          ls.cancel(static_cast<int>(rng.uniform_int(0, ls.dut.next_tag - 1)));
        }
        break;
      case 6:  // double-cancel the same tag back to back
        if (ls.dut.next_tag > 0) {
          const int tag = static_cast<int>(rng.uniform_int(0, ls.dut.next_tag - 1));
          ls.cancel(tag);
          ls.cancel(tag);
        }
        break;
      case 7:  // bounded advance; events exactly at the limit must fire
        ls.run_until(now + rng.uniform(0.0, 150.0));
        break;
      case 8: {  // single-step a few times
        const auto steps = rng.uniform_int(1, 5);
        for (std::int64_t i = 0; i < steps; ++i) ls.step();
        break;
      }
      default:  // long jump, occasionally past the far-future outliers
        ls.run_until(now + (rng.bernoulli(0.1) ? 1e13 : 1e5));
        break;
    }
    ls.check("after op");
    if (::testing::Test::HasFatalFailure()) return;
  }
  ls.drain();
  ls.check("after drain");
}

TEST(EngineEquivalence, RandomizedLockStepSweep) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    run_episode(seed, 300);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(EngineEquivalence, LongEpisodeExercisesResizeBothWays) {
  // Enough volume to grow the calendar several times, then drain it to
  // trigger shrinks; op mix identical to the sweep.
  run_episode(/*seed=*/424242, /*ops=*/3000);
}

TEST(EngineEquivalence, SameInstantBurstsPreserveFifoOrder) {
  LockStep ls;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 40; ++i) ls.schedule_abs(static_cast<double>(round));
  }
  ls.drain();
  ls.check("after drain");
}

TEST(EngineEquivalence, ZeroDelayChainsAtCurrentInstant) {
  LockStep ls;
  // Tags divisible by 15 schedule a zero-delay child from inside their own
  // callback; both engines must interleave those identically.
  for (int i = 0; i < 120; ++i) ls.schedule_rel(0.0);
  ls.drain();
  ls.check("after drain");
}

// ---- EventId cancel-edge regressions (the latent hazard this PR fixes:
// stale handles must stay dead even after their arena slot is reused). ----

TEST(EngineCancelEdges, CancelFromWithinOwnCallbackReturnsFalse) {
  SimEngine engine;
  EventId self = 0;
  bool result = true;
  self = engine.schedule_at(1.0, [&] { result = engine.cancel(self); });
  engine.run();
  EXPECT_FALSE(result);
  EXPECT_EQ(engine.fired(), 1u);
  // And it stays dead afterwards.
  EXPECT_FALSE(engine.cancel(self));
}

TEST(EngineCancelEdges, StaleIdDoesNotCancelSlotReuser) {
  SimEngine engine;
  int fired_a = 0, fired_b = 0;
  const EventId a = engine.schedule_at(1.0, [&] { ++fired_a; });
  engine.run();
  ASSERT_EQ(fired_a, 1);
  // B is free to reuse A's internal storage; A's handle must not reach it.
  const EventId b = engine.schedule_at(2.0, [&] { ++fired_b; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(engine.cancel(a));
  engine.run();
  EXPECT_EQ(fired_b, 1);
}

TEST(EngineCancelEdges, StaleIdAfterCancelDoesNotCancelSlotReuser) {
  SimEngine engine;
  int fired_b = 0;
  const EventId a = engine.schedule_at(1.0, [] {});
  EXPECT_TRUE(engine.cancel(a));
  const EventId b = engine.schedule_at(1.0, [&] { ++fired_b; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(engine.cancel(a));  // stale handle, slot likely reused by B
  engine.run();
  EXPECT_EQ(fired_b, 1);
}

TEST(EngineCancelEdges, CancelFromWithinCallbackPreventsPendingEvent) {
  SimEngine engine;
  int fired_victim = 0;
  const EventId victim = engine.schedule_at(2.0, [&] { ++fired_victim; });
  bool cancel_result = false;
  engine.schedule_at(1.0, [&] { cancel_result = engine.cancel(victim); });
  engine.run();
  EXPECT_TRUE(cancel_result);
  EXPECT_EQ(fired_victim, 0);
  EXPECT_EQ(engine.fired(), 1u);
}

TEST(EngineCancelEdges, CancelSiblingAtSameInstantFromCallback) {
  SimEngine engine;
  int fired_sibling = 0;
  EventId sibling = 0;
  bool cancel_result = false;
  engine.schedule_at(1.0, [&] { cancel_result = engine.cancel(sibling); });
  sibling = engine.schedule_at(1.0, [&] { ++fired_sibling; });
  engine.run();
  // The sibling was scheduled later, so the canceller fires first (FIFO) and
  // must be able to kill it even though both share the timestamp.
  EXPECT_TRUE(cancel_result);
  EXPECT_EQ(fired_sibling, 0);
}

TEST(EngineCancelEdges, HandlesStayUniqueAcrossHeavySlotReuse) {
  SimEngine engine;
  std::vector<EventId> seen;
  for (int i = 0; i < 2000; ++i) {
    const EventId id = engine.schedule_after(0.0, [] {});
    seen.push_back(id);
    if (i % 2 == 0) {
      engine.cancel(id);
    } else {
      engine.run();
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
      << "EventIds recycled while stale handles may still be held";
}

}  // namespace
}  // namespace ones::sim
