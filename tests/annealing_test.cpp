// Tests for the simulated-annealing scheduler and the trace CSV I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "core/annealing.hpp"
#include "sched/fifo.hpp"
#include "sched/simulation.hpp"
#include "telemetry/metrics.hpp"
#include "workload/trace.hpp"
#include "workload/trace_io.hpp"

namespace ones {
namespace {

sched::SimulationConfig small_config() {
  sched::SimulationConfig c;
  c.topology.num_nodes = 2;
  return c;
}

workload::TraceConfig trace_config(int jobs, double interarrival, std::uint64_t seed = 23) {
  workload::TraceConfig t;
  t.num_jobs = jobs;
  t.mean_interarrival_s = interarrival;
  t.seed = seed;
  return t;
}

TEST(Annealing, Properties) {
  core::AnnealingScheduler s;
  EXPECT_EQ(s.name(), "ONES-SA");
  EXPECT_EQ(s.mechanism(), sched::ScalingMechanism::Elastic);
  EXPECT_DOUBLE_EQ(s.period_s(), 0.0);
}

TEST(Annealing, CompletesAllJobs) {
  core::AnnealingScheduler s;
  sched::ClusterSimulation sim(small_config(), workload::generate_trace(trace_config(12, 15)),
                               s);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  EXPECT_GT(s.proposals(), 0u);
  EXPECT_GT(s.accepted(), 0u);
}

TEST(Annealing, TemperatureCoolsMonotonically) {
  core::AnnealingScheduler s;
  const double t0 = s.temperature();
  sched::ClusterSimulation sim(small_config(), workload::generate_trace(trace_config(8, 15)),
                               s);
  sim.run();
  EXPECT_LT(s.temperature(), t0);
  core::AnnealingConfig cfg;
  EXPECT_GE(s.temperature(), cfg.min_temperature);
}

TEST(Annealing, RespectsBatchLimitsViaSharedMachinery) {
  core::AnnealingScheduler s;
  const auto trace = workload::generate_trace(trace_config(10, 10, 29));
  sched::ClusterSimulation sim(small_config(), trace, s);
  sim.run();  // driver validation would throw on any violation
  EXPECT_TRUE(sim.all_completed());
  for (const auto& spec : trace) {
    const auto& v = sim.job_view(spec.id);
    for (std::size_t i = 1; i < v.epoch_log.size(); ++i) {
      const int prev = v.epoch_log[i - 1].global_batch;
      if (prev > 0) {
        EXPECT_LE(v.epoch_log[i].global_batch, 4 * prev);
      }
    }
  }
}

TEST(Annealing, ComparableToEvolutionOnEasyTrace) {
  // On a lightly loaded trace both searches should land in the same
  // ballpark (within 2x); the interesting gaps appear under contention
  // (see bench/search_strategies).
  const auto trace = workload::generate_trace(trace_config(10, 40, 31));
  double sa_jct;
  {
    core::AnnealingScheduler s;
    sched::ClusterSimulation sim(small_config(), trace, s);
    sim.run();
    sa_jct = telemetry::summarize("sa", sim.metrics(), 8).avg_jct;
  }
  EXPECT_GT(sa_jct, 0.0);
  EXPECT_LT(sa_jct, 4000.0);
}

TEST(TraceIo, RoundTripsExactly) {
  auto tc = trace_config(20, 10);
  tc.abnormal_fraction = 0.3;
  const auto trace = workload::generate_trace(tc);
  std::stringstream ss;
  workload::write_trace_csv(ss, trace);
  const auto loaded = workload::read_trace_csv(ss);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded[i].id, trace[i].id);
    EXPECT_EQ(loaded[i].variant.model_name, trace[i].variant.model_name);
    EXPECT_EQ(loaded[i].variant.dataset, trace[i].variant.dataset);
    EXPECT_EQ(loaded[i].variant.dataset_size, trace[i].variant.dataset_size);
    EXPECT_EQ(loaded[i].variant.num_classes, trace[i].variant.num_classes);
    EXPECT_DOUBLE_EQ(loaded[i].arrival_time_s, trace[i].arrival_time_s);
    EXPECT_EQ(loaded[i].requested_gpus, trace[i].requested_gpus);
    EXPECT_EQ(loaded[i].requested_batch, trace[i].requested_batch);
    EXPECT_EQ(loaded[i].dynamics_seed, trace[i].dynamics_seed);
    EXPECT_DOUBLE_EQ(loaded[i].kill_after_s, trace[i].kill_after_s);
  }
}

TEST(TraceIo, RejectsBadHeader) {
  std::stringstream ss("id,model\n1,ResNet18\n");
  EXPECT_THROW(workload::read_trace_csv(ss), std::logic_error);
}

TEST(TraceIo, RejectsWrongColumnCount) {
  std::stringstream ss;
  workload::write_trace_csv(ss, {});
  ss.seekp(0, std::ios::end);
  ss << "1,ResNet18,CIFAR10-20k,20000\n";
  EXPECT_THROW(workload::read_trace_csv(ss), std::logic_error);
}

TEST(TraceIo, RejectsUnknownModel) {
  std::stringstream ss;
  ss << "id,model,dataset,dataset_size,num_classes,arrival_s,requested_gpus,"
        "requested_batch,dynamics_seed,kill_after_s\n";
  ss << "0,GPT-99,X-1k,1000,2,0,1,32,7,0\n";
  EXPECT_THROW(workload::read_trace_csv(ss), std::logic_error);
}

TEST(TraceIo, RejectsNonNumericField) {
  std::stringstream ss;
  ss << "id,model,dataset,dataset_size,num_classes,arrival_s,requested_gpus,"
        "requested_batch,dynamics_seed,kill_after_s\n";
  ss << "zero,ResNet18,CIFAR10-20k,20000,10,0,1,256,7,0\n";
  EXPECT_THROW(workload::read_trace_csv(ss), std::logic_error);
}

TEST(TraceIo, SaveAndLoadFile) {
  const auto trace = workload::generate_trace(trace_config(5, 10));
  const std::string path = "/tmp/ones_trace_io_test.csv";
  workload::save_trace(path, trace);
  const auto loaded = workload::load_trace(path);
  EXPECT_EQ(loaded.size(), trace.size());
  EXPECT_THROW(workload::load_trace("/nonexistent/dir/x.csv"), std::logic_error);
}

TEST(TraceIo, LoadedTraceRunsIdenticallyToOriginal) {
  const auto trace = workload::generate_trace(trace_config(8, 15, 37));
  std::stringstream ss;
  workload::write_trace_csv(ss, trace);
  const auto loaded = workload::read_trace_csv(ss);

  auto run = [&](const std::vector<workload::JobSpec>& t) {
    sched::FifoScheduler f;
    sched::ClusterSimulation sim(small_config(), t, f);
    sim.run();
    return telemetry::summarize("f", sim.metrics(), 8).avg_jct;
  };
  EXPECT_DOUBLE_EQ(run(trace), run(loaded));
}

}  // namespace
}  // namespace ones
