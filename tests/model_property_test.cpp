// Parameterized property sweeps over the performance/convergence substrate:
// for EVERY task profile in the catalog, the throughput model and the
// training dynamics must satisfy the structural properties the schedulers
// rely on. A violation for any single model silently distorts scheduling
// comparisons, so these are swept exhaustively.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "model/convergence.hpp"
#include "model/task.hpp"
#include "model/throughput.hpp"

namespace ones::model {
namespace {

cluster::LinkProfile nvlink() { return {130.0e9, 5e-6}; }
cluster::LinkProfile infiniband() { return {12.0e9, 2.5e-5}; }

class PerProfile : public testing::TestWithParam<std::string> {
 protected:
  const TaskProfile& profile() const { return profile_by_name(GetParam()); }
  int base_batch() const {
    return std::min(profile().b_ref, profile().max_local_batch);
  }
};

std::string profile_name(const testing::TestParamInfo<std::string>& info) {
  std::string s = info.param;
  for (auto& ch : s) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return s;
}

// ---- throughput model properties ----

TEST_P(PerProfile, StepTimeIsMonotoneInBatch) {
  const auto& p = profile();
  double prev = 0.0;
  for (int b = 1; b <= p.max_local_batch; b *= 2) {
    const double t = step_time_even_s(p, b, 1, nvlink());
    EXPECT_GE(t, prev) << "batch " << b;
    prev = t;
  }
}

TEST_P(PerProfile, ThroughputNeverNegativeAndBounded) {
  const auto& p = profile();
  // Physical upper bound: one sample cannot take less than t_sample_s.
  const double x_max = 1.0 / p.t_sample_s;
  for (int workers : {1, 2, 4, 8, 16}) {
    const int batch = base_batch() * workers;
    const double x = throughput_even_sps(p, batch, workers,
                                         workers <= 4 ? nvlink() : infiniband());
    EXPECT_GT(x, 0.0);
    EXPECT_LE(x, x_max * workers * 1.0001)
        << p.name << " at " << workers << " workers";
  }
}

TEST_P(PerProfile, SlowerLinkNeverSpeedsUpAStep) {
  const auto& p = profile();
  for (int workers : {2, 4, 8}) {
    const int batch = std::max(base_batch(), workers);
    const double fast = step_time_even_s(p, batch, workers, nvlink());
    const double slow = step_time_even_s(p, batch, workers, infiniband());
    EXPECT_LE(fast, slow + 1e-12) << p.name << " @ " << workers;
  }
}

TEST_P(PerProfile, ElasticScalingBeatsFixedAtEightWorkers) {
  // The core Fig 2 relation must hold for every model: at 8 workers, the
  // elastic batch (B = base * 8) yields strictly more throughput than the
  // fixed single-GPU batch split 8 ways.
  const auto& p = profile();
  const int base = base_batch();
  if (base < 8) GTEST_SKIP() << "base batch too small to split 8 ways";
  const double fixed = throughput_even_sps(p, base, 8, infiniband());
  const double elastic = throughput_even_sps(p, base * 8, 8, infiniband());
  EXPECT_GT(elastic, fixed) << p.name;
}

TEST_P(PerProfile, StragglerGatesTheStep) {
  // A lopsided split can never be faster than the even split of the same
  // total batch.
  const auto& p = profile();
  const int b = std::min(2 * base_batch(), 2 * p.max_local_batch);
  if (b / 2 + b / 4 < 1 || b / 2 > p.max_local_batch) GTEST_SKIP();
  const double even = step_time_s(p, {b / 2, b / 2}, nvlink());
  const double skewed = step_time_s(p, {b / 2 + b / 4, b / 2 - b / 4}, nvlink());
  EXPECT_LE(even, skewed + 1e-12) << p.name;
}

// ---- convergence dynamics properties ----

TEST_P(PerProfile, ConvergesAtReferenceBatchWithinBudget) {
  const auto& p = profile();
  ConvergenceConfig cfg;
  cfg.accuracy_noise = 0.0;
  TrainDynamics d(p, 20000, cfg, 1);
  int epochs = 0;
  while (!d.converged() && epochs < 1000) {
    d.advance(p.b_ref, 20000);
    ++epochs;
  }
  EXPECT_TRUE(d.converged()) << p.name;
  EXPECT_EQ(epochs, static_cast<int>(p.epochs_to_target_ref) + cfg.patience_epochs - 1)
      << p.name;
}

TEST_P(PerProfile, EfficiencyIsMonotoneDecreasingInBatch) {
  const auto& p = profile();
  ConvergenceConfig cfg;
  TrainDynamics d(p, 20000, cfg, 1);
  double prev = 2.0;
  for (int b = 32; b <= 8192; b *= 2) {
    const double e = d.efficiency(b);
    EXPECT_LT(e, prev) << p.name << " at B=" << b;
    EXPECT_GT(e, 0.0);
    prev = e;
  }
}

TEST_P(PerProfile, AccuracyIsMonotoneInProgressWithoutDisturbance) {
  const auto& p = profile();
  ConvergenceConfig cfg;
  cfg.accuracy_noise = 0.0;
  cfg.patience_epochs = 1000;
  TrainDynamics d(p, 20000, cfg, 1);
  double prev_acc = -1.0, prev_loss = 1e9;
  for (int e = 0; e < 40; ++e) {
    d.advance(p.b_ref, 20000);
    EXPECT_GE(d.current_accuracy(), prev_acc) << p.name;
    EXPECT_LE(d.current_loss(), prev_loss + 1e-12) << p.name;
    prev_acc = d.current_accuracy();
    prev_loss = d.current_loss();
  }
  EXPECT_LE(prev_acc, p.accuracy_ceiling);
}

TEST_P(PerProfile, AbruptGrowthAlwaysCostsMoreThanGradual) {
  const auto& p = profile();
  ConvergenceConfig cfg;
  cfg.accuracy_noise = 0.0;
  const int hi = 16 * p.b_ref;

  TrainDynamics abrupt(p, 20000, cfg, 1);
  abrupt.on_batch_resize(p.b_ref, hi);
  TrainDynamics gradual(p, 20000, cfg, 1);
  int b = p.b_ref;
  while (b < hi) {
    gradual.on_batch_resize(b, 2 * b);
    b *= 2;
  }
  EXPECT_GT(abrupt.disturbance(), 0.0) << p.name;
  EXPECT_DOUBLE_EQ(gradual.disturbance(), 0.0) << p.name;
}

TEST_P(PerProfile, OracleRemainingIsMonotoneInBatch) {
  // More batch above the critical size => more raw samples needed.
  const auto& p = profile();
  ConvergenceConfig cfg;
  TrainDynamics d(p, 20000, cfg, 1);
  const double at_ref = d.oracle_remaining_samples(p.b_ref);
  const double at_4x = d.oracle_remaining_samples(4 * p.b_ref);
  EXPECT_GT(at_4x, at_ref) << p.name;
}

std::vector<std::string> all_profile_names() {
  std::vector<std::string> names;
  for (const auto& p : builtin_profiles()) names.push_back(p.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Catalog, PerProfile, testing::ValuesIn(all_profile_names()),
                         profile_name);

}  // namespace
}  // namespace ones::model
