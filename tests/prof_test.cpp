// Host-time profiler unit tests (DESIGN.md §14): span-path aggregation,
// rollup merge determinism, the null-Scope zero-cost contract, and the
// JSON / Chrome exporters.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "prof/export.hpp"
#include "prof/profiler.hpp"

using namespace ones;

// --- Counting global allocator -------------------------------------------
// The off-by-default contract says a null-profiler Scope must not allocate
// (nor read the clock): one branch in, one branch out. Replace the global
// allocator with a counting malloc shim so the test below can assert it.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

/// Two "decision" invocations, one holding two "apply" children — the span
/// program used by several tests below.
void run_span_program(prof::Profiler& p) {
  {
    const prof::Scope decision(&p, "decision");
    { const prof::Scope apply(&p, "apply"); }
    { const prof::Scope apply(&p, "apply"); }
  }
  { const prof::Scope decision(&p, "decision"); }
}

TEST(Profiler, AggregatesBySpanPath) {
  prof::Profiler p;
  run_span_program(p);
  const auto stats = p.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].path, "decision");
  EXPECT_EQ(stats[0].count, 2u);
  EXPECT_EQ(stats[1].path, "decision/apply");
  EXPECT_EQ(stats[1].count, 2u);
  // The parent's total covers its children; self is the saturating remainder.
  EXPECT_GE(stats[0].total_ns, stats[1].total_ns);
  EXPECT_EQ(stats[0].self_ns, stats[0].total_ns - stats[1].total_ns);
  EXPECT_EQ(stats[1].self_ns, stats[1].total_ns);
}

TEST(Profiler, SpanPathsAndCountsAreReproducible) {
  prof::Profiler a, b;
  run_span_program(a);
  run_span_program(b);
  const auto sa = a.stats();
  const auto sb = b.stats();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].path, sb[i].path);
    EXPECT_EQ(sa[i].count, sb[i].count);
    // total_ns is host noise — deliberately not compared.
  }
}

TEST(Profiler, RecursiveSpansNestUnderThemselves) {
  prof::Profiler p;
  {
    const prof::Scope outer(&p, "elastic.stage");
    const prof::Scope inner(&p, "elastic.stage");
  }
  const auto stats = p.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].path, "elastic.stage");
  EXPECT_EQ(stats[1].path, "elastic.stage/elastic.stage");
}

TEST(Profiler, PathOfReturnsJoinedChain) {
  prof::Profiler p;
  const std::size_t outer = p.enter("decision");
  const std::uint64_t outer_start = prof::Profiler::now_ns();
  const std::size_t inner = p.enter("apply");
  const std::uint64_t inner_start = prof::Profiler::now_ns();
  EXPECT_EQ(p.path_of(outer), "decision");
  EXPECT_EQ(p.path_of(inner), "decision/apply");
  p.exit(inner, inner_start);
  p.exit(outer, outer_start);
  EXPECT_THROW((void)p.path_of(999), std::logic_error);
}

TEST(Profiler, RejectsPathSeparatorInNames) {
  prof::Profiler p;
  EXPECT_THROW((void)p.enter("a/b"), std::logic_error);
  // The rejected enter must not corrupt the open-span chain.
  { const prof::Scope ok(&p, "decision"); }
  ASSERT_EQ(p.stats().size(), 1u);
  EXPECT_EQ(p.stats()[0].path, "decision");
}

TEST(ProfScope, NullProfilerAllocatesNothing) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    const prof::Scope scope(nullptr, "decision");
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

TEST(ProfileRollup, MergeIsOrderIndependent) {
  prof::Profiler a, b;
  run_span_program(a);
  {
    const prof::Scope evolve(&b, "evolve.step");
    const prof::Scope select(&b, "evolve.select");
  }
  run_span_program(b);

  prof::ProfileRollup ab, ba;
  ab.add(a);
  ab.add(b);
  ba.add(b);
  ba.add(a);
  const auto sab = ab.stats();
  const auto sba = ba.stats();
  ASSERT_EQ(sab.size(), sba.size());
  for (std::size_t i = 0; i < sab.size(); ++i) {
    EXPECT_EQ(sab[i].path, sba[i].path);
    EXPECT_EQ(sab[i].count, sba[i].count);
    EXPECT_EQ(sab[i].total_ns, sba[i].total_ns);
    EXPECT_EQ(sab[i].self_ns, sba[i].self_ns);
  }
  // decision count pooled across both profilers: 2 + 2.
  ASSERT_FALSE(sab.empty());
  EXPECT_EQ(sab[0].path, "decision");
  EXPECT_EQ(sab[0].count, 4u);
}

TEST(ProfExport, JsonIsParseableAndStable) {
  prof::Profiler p;
  run_span_program(p);
  std::ostringstream out;
  prof::write_profile_json(out, p.stats());
  const JsonValue doc = parse_json(out.str());
  const JsonValue* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->number, 1.0);
  const JsonValue* spans = doc.find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->array.size(), 2u);
  EXPECT_EQ(spans->array[0].find("path")->string, "decision");
  EXPECT_EQ(spans->array[0].find("count")->number, 2.0);
  EXPECT_EQ(spans->array[1].find("path")->string, "decision/apply");
}

TEST(ProfExport, WritesProfileFileAtomically) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(testing::TempDir()) / "prof_test_out";
  fs::remove_all(dir);
  prof::Profiler p;
  run_span_program(p);
  prof::write_profile_file(dir.string(), "unit", p.stats());
  std::ifstream in(dir / "unit.prof.json", std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_NO_THROW((void)parse_json(text.str()));
  // No stray temp files left behind.
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir)) ++entries;
  EXPECT_EQ(entries, 1u);
  fs::remove_all(dir);
}

TEST(ProfExport, ChromeEventsLandOnHostTrack) {
  prof::Profiler p;
  p.enable_timeline();
  run_span_program(p);
  const auto events = prof::chrome_span_events(p);
  // 2 metadata records + 4 span instances, no truncation marker.
  ASSERT_EQ(events.size(), 6u);
  EXPECT_NE(events[0].find("process_name"), std::string::npos);
  for (const std::string& ev : events) {
    const JsonValue doc = parse_json(ev);
    ASSERT_NE(doc.find("pid"), nullptr);
    EXPECT_EQ(doc.find("pid")->number, 1.0);
  }
  // Instances carry the full span path as the slice name.
  const JsonValue first_span = parse_json(events[2]);
  const std::string name = first_span.find("name")->string;
  EXPECT_TRUE(name == "decision" || name == "decision/apply") << name;
}

TEST(ProfExport, TimelineCapDropsAndMarksTruncation) {
  prof::Profiler p;
  p.enable_timeline(1);
  run_span_program(p);
  EXPECT_EQ(p.timeline().size(), 1u);
  EXPECT_EQ(p.timeline_dropped(), 3u);
  const auto events = prof::chrome_span_events(p);
  ASSERT_FALSE(events.empty());
  EXPECT_NE(events.back().find("truncated"), std::string::npos);
}

TEST(Profiler, TimelineOffRetainsNoInstances) {
  prof::Profiler p;
  run_span_program(p);
  EXPECT_FALSE(p.timeline_enabled());
  EXPECT_TRUE(p.timeline().empty());
  EXPECT_EQ(p.timeline_dropped(), 0u);
}

}  // namespace
