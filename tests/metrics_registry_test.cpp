// Unit tests for the sim-time metrics registry (DESIGN.md §9): instrument
// semantics (counter monotonicity, histogram bucket boundaries and
// quantiles), registry name/kind/scope aliasing rules, TimelineSampler
// change-point + tick determinism, and the three exporters' output formats.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/json.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/timeline.hpp"

namespace ones::telemetry {
namespace {

TEST(Counter, AccumulatesAndRejectsNegativeDeltas) {
  Counter c;
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.add();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  EXPECT_THROW(c.add(-1.0), std::logic_error);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(Histogram, RejectsMalformedBounds) {
  EXPECT_THROW(Histogram({}), std::logic_error);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::logic_error);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::logic_error);
}

TEST(Histogram, BucketBoundariesUseLeSemantics) {
  // Prometheus `le` semantics: an observation equal to a bound lands in that
  // bound's bucket, strictly greater spills into the next.
  Histogram h({1.0, 10.0});
  h.observe(0.5);   // <= 1.0
  h.observe(1.0);   // == bound -> first bucket
  h.observe(1.01);  // > 1.0 -> second bucket
  h.observe(10.0);  // == bound -> second bucket
  h.observe(11.0);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.01 + 10.0 + 11.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 11.0);
}

TEST(Histogram, QuantileInterpolatesWithinBuckets) {
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 10; ++i) h.observe(5.0);   // first bucket
  for (int i = 0; i < 10; ++i) h.observe(15.0);  // second bucket
  // Rank 10 of 20 sits at the top of the first bucket [min=5, 10].
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  // Rank 15 is 5/10 into the second bucket [10, 20].
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
  EXPECT_THROW(h.quantile(-0.1), std::logic_error);
  EXPECT_THROW(h.quantile(1.1), std::logic_error);
}

TEST(Histogram, QuantileHandlesEmptyAndOverflow) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  h.observe(100.0);                        // everything in the overflow bucket
  // Overflow bucket's upper edge is the observed max.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(MetricsRegistry, ReturnsSameInstrumentForSameName) {
  MetricsRegistry r;
  r.counter("a_total").add(1.0);
  r.counter("a_total").add(2.0);
  EXPECT_DOUBLE_EQ(r.counter_value("a_total"), 3.0);
  r.gauge("g").set(7.0);
  EXPECT_DOUBLE_EQ(r.gauge_value("g"), 7.0);
  Histogram& h = r.histogram("h_seconds", {1.0, 2.0});
  EXPECT_EQ(&h, &r.histogram("h_seconds", {1.0, 2.0}));
}

TEST(MetricsRegistry, RejectsNameAliasing) {
  MetricsRegistry r;
  r.counter("x");
  EXPECT_THROW(r.gauge("x"), std::logic_error);                   // kind mismatch
  EXPECT_THROW(r.histogram("x", {1.0}), std::logic_error);        // kind mismatch
  EXPECT_THROW(r.counter("x", MetricScope::Host), std::logic_error);  // scope mismatch
  r.histogram("h", {1.0, 2.0});
  EXPECT_THROW(r.histogram("h", {1.0, 3.0}), std::logic_error);  // bounds mismatch
}

TEST(MetricsRegistry, LookupWithoutCreation) {
  MetricsRegistry r;
  EXPECT_EQ(r.find_counter("missing"), nullptr);
  EXPECT_DOUBLE_EQ(r.counter_value("missing"), 0.0);
  EXPECT_DOUBLE_EQ(r.gauge_value("missing"), 0.0);
  r.counter("c");
  EXPECT_NE(r.find_counter("c"), nullptr);
  EXPECT_EQ(r.find_gauge("c"), nullptr);  // wrong kind -> null, not a throw
}

TEST(MetricsRegistry, EntriesAreNameSorted) {
  MetricsRegistry r;
  r.counter("zeta");
  r.gauge("alpha");
  r.counter("mid");
  std::vector<std::string> names;
  for (const auto& [name, entry] : r.entries()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(TimelineSampler, RecordsOnlyChangePoints) {
  TimelineSampler tl;
  const auto q = tl.series("queue_depth");
  tl.record(q, 0.0, 3.0);
  tl.record(q, 1.0, 3.0);  // unchanged -> dropped
  tl.record(q, 2.0, 5.0);
  tl.record(q, 2.0, 5.0);  // same time, same value -> dropped
  ASSERT_EQ(tl.points().size(), 2u);
  EXPECT_DOUBLE_EQ(tl.points()[0].t, 0.0);
  EXPECT_DOUBLE_EQ(tl.points()[0].value, 3.0);
  EXPECT_DOUBLE_EQ(tl.points()[1].t, 2.0);
  EXPECT_DOUBLE_EQ(tl.points()[1].value, 5.0);
  EXPECT_EQ(tl.name(tl.points()[0].series), "queue_depth");
}

TEST(TimelineSampler, RejectsTimeRegression) {
  TimelineSampler tl;
  const auto s = tl.series("s");
  tl.record(s, 5.0, 1.0);
  EXPECT_THROW(tl.record(s, 4.9, 2.0), std::logic_error);
}

TEST(TimelineSampler, TicksResampleAllSeriesAtBoundaries) {
  TimelineSampler tl;
  tl.set_tick_period(10.0);
  const auto a = tl.series("a");
  const auto b = tl.series("b");
  tl.record(a, 0.0, 1.0);
  tl.record(b, 0.0, 2.0);
  // Crossing t=10 and t=20: each boundary re-samples both series with their
  // pre-boundary values, then the change point lands.
  tl.record(a, 25.0, 9.0);
  tl.advance(30.0);  // flushes the t=30 boundary
  std::vector<std::tuple<double, std::string, double>> got;
  for (const auto& p : tl.points()) got.emplace_back(p.t, tl.name(p.series), p.value);
  const std::vector<std::tuple<double, std::string, double>> want = {
      {0.0, "a", 1.0},  {0.0, "b", 2.0},  {10.0, "a", 1.0}, {10.0, "b", 2.0},
      {20.0, "a", 1.0}, {20.0, "b", 2.0}, {25.0, "a", 9.0}, {30.0, "a", 9.0},
      {30.0, "b", 2.0},
  };
  EXPECT_EQ(got, want);
}

TEST(TimelineSampler, TickPeriodMustPrecedeFirstRecord) {
  TimelineSampler tl;
  const auto s = tl.series("s");
  tl.record(s, 0.0, 1.0);
  EXPECT_THROW(tl.set_tick_period(5.0), std::logic_error);
  EXPECT_THROW(tl.set_tick_period(-1.0), std::logic_error);
}

TEST(TimelineSampler, IdenticalInputsProduceIdenticalPoints) {
  // Determinism: the sampler is a pure function of its call sequence.
  const auto drive = [](TimelineSampler& tl) {
    tl.set_tick_period(7.0);
    const auto a = tl.series("a");
    const auto b = tl.series("b");
    tl.record(a, 0.0, 1.0);
    tl.record(b, 3.0, 4.0);
    tl.record(a, 16.0, 2.0);
    tl.advance(22.0);
  };
  TimelineSampler x, y;
  drive(x);
  drive(y);
  std::ostringstream xs, ys;
  write_timeline_csv(xs, x);
  write_timeline_csv(ys, y);
  EXPECT_EQ(xs.str(), ys.str());
}

TEST(Exporters, TimelineCsvHeaderAndRows) {
  TimelineSampler tl;
  const auto s = tl.series("busy_gpus");
  tl.record(s, 0.0, 4.0);
  tl.record(s, 1.5, 8.0);
  std::ostringstream os;
  write_timeline_csv(os, tl);
  EXPECT_EQ(os.str(), "t,series,value\n0,busy_gpus,4\n1.5,busy_gpus,8\n");
}

TEST(Exporters, PrometheusFormatsAllKindsAndSkipsHostScope) {
  MetricsRegistry r;
  r.counter("b_total").add(3.0);
  r.gauge("a_gauge").set(1.5);
  Histogram& h = r.histogram("c_seconds", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  r.histogram("host_seconds", {1.0}, MetricScope::Host).observe(0.2);
  std::ostringstream os;
  write_prometheus(os, r);
  EXPECT_EQ(os.str(),
            "# TYPE a_gauge gauge\n"
            "a_gauge 1.5\n"
            "# TYPE b_total counter\n"
            "b_total 3\n"
            "# TYPE c_seconds histogram\n"
            "c_seconds_bucket{le=\"1\"} 1\n"
            "c_seconds_bucket{le=\"2\"} 2\n"
            "c_seconds_bucket{le=\"+Inf\"} 3\n"
            "c_seconds_sum 11\n"
            "c_seconds_count 3\n");
}

TEST(Exporters, JsonSummaryParsesAndSkipsHostScope) {
  MetricsRegistry r;
  r.counter("jobs_total").add(2.0);
  r.gauge("depth").set(4.0);
  r.histogram("lat_seconds", {1.0}).observe(0.5);
  r.counter("host_only", MetricScope::Host).add(1.0);
  std::ostringstream os;
  write_json_summary(os, r);
  const JsonValue doc = parse_json(os.str());
  ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
  EXPECT_EQ(doc.object.size(), 3u);
  EXPECT_EQ(doc.find("host_only"), nullptr);
  const JsonValue* jobs = doc.find("jobs_total");
  ASSERT_NE(jobs, nullptr);
  EXPECT_EQ(jobs->find("type")->string, "counter");
  EXPECT_DOUBLE_EQ(jobs->find("value")->number, 2.0);
  const JsonValue* lat = doc.find("lat_seconds");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->find("count")->number, 1.0);
  ASSERT_NE(lat->find("buckets"), nullptr);
  EXPECT_EQ(lat->find("buckets")->array.size(), 2u);
  ASSERT_NE(lat->find("p50"), nullptr);
}

TEST(Exporters, EmptyRegistryJsonIsAnEmptyObject) {
  MetricsRegistry r;
  std::ostringstream os;
  write_json_summary(os, r);
  const JsonValue doc = parse_json(os.str());
  EXPECT_EQ(doc.kind, JsonValue::Kind::Object);
  EXPECT_TRUE(doc.object.empty());
}

TEST(Exporters, HostMetricsRenderOnlyHostScope) {
  MetricsRegistry r;
  EXPECT_EQ(format_host_metrics(r), "");
  r.counter("sim_total").add(5.0);
  EXPECT_EQ(format_host_metrics(r), "");  // sim scope stays off stderr
  Histogram& h = r.histogram("sched_decision_host_seconds",
                             {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0},
                             MetricScope::Host);
  h.observe(5e-4);
  const std::string out = format_host_metrics(r);
  EXPECT_NE(out.find("sched_decision_host_seconds"), std::string::npos);
  EXPECT_NE(out.find("count=1"), std::string::npos);
  EXPECT_EQ(out.find("sim_total"), std::string::npos);
}

}  // namespace
}  // namespace ones::telemetry
