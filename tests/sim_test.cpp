// Unit tests for the discrete-event engine: ordering, cancellation,
// run_until semantics, determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace ones::sim {
namespace {

TEST(SimEngine, StartsAtZero) {
  SimEngine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(SimEngine, FiresInTimeOrder) {
  SimEngine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(SimEngine, FifoTieBreakAtSameInstant) {
  SimEngine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimEngine, ScheduleAfterUsesCurrentTime) {
  SimEngine e;
  double fired_at = -1.0;
  e.schedule_at(5.0, [&] {
    e.schedule_after(2.0, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(SimEngine, CancelPreventsExecution) {
  SimEngine e;
  bool fired = false;
  const EventId id = e.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
}

TEST(SimEngine, CancelIsIdempotent) {
  SimEngine e;
  const EventId id = e.schedule_at(1.0, [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
}

TEST(SimEngine, CancelAfterFireReturnsFalse) {
  SimEngine e;
  const EventId id = e.schedule_at(1.0, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST(SimEngine, RunUntilStopsAtLimitButFiresEventsAtLimit) {
  SimEngine e;
  std::vector<double> fired;
  e.schedule_at(1.0, [&] { fired.push_back(1.0); });
  e.schedule_at(2.0, [&] { fired.push_back(2.0); });
  e.schedule_at(3.0, [&] { fired.push_back(3.0); });
  e.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(SimEngine, RunUntilAdvancesClockEvenWithoutEvents) {
  SimEngine e;
  e.run_until(10.0);
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
}

TEST(SimEngine, EventsCanScheduleMoreEvents) {
  SimEngine e;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) e.schedule_after(1.0, chain);
  };
  e.schedule_at(0.0, chain);
  e.run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(e.now(), 9.0);
}

TEST(SimEngine, RejectsPastEvents) {
  SimEngine e;
  e.schedule_at(5.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(1.0, [] {}), std::logic_error);
}

TEST(SimEngine, RejectsNegativeDelay) {
  SimEngine e;
  EXPECT_THROW(e.schedule_after(-1.0, [] {}), std::logic_error);
}

TEST(SimEngine, RejectsNonFiniteTime) {
  SimEngine e;
  EXPECT_THROW(e.schedule_at(std::numeric_limits<double>::infinity(), [] {}),
               std::logic_error);
  EXPECT_THROW(e.schedule_at(std::numeric_limits<double>::quiet_NaN(), [] {}),
               std::logic_error);
}

TEST(SimEngine, StepReturnsFalseWhenEmpty) {
  SimEngine e;
  EXPECT_FALSE(e.step());
}

TEST(SimEngine, FiredCounterCountsExecutedEvents) {
  SimEngine e;
  e.schedule_at(1.0, [] {});
  const EventId id = e.schedule_at(2.0, [] {});
  e.cancel(id);
  e.run();
  EXPECT_EQ(e.fired(), 1u);
}

TEST(SimEngine, PendingExcludesCancelled) {
  SimEngine e;
  e.schedule_at(1.0, [] {});
  const EventId id = e.schedule_at(2.0, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(id);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(SimEngine, ManyEventsStaySorted) {
  SimEngine e;
  std::vector<double> fired;
  // Insert times in a scrambled deterministic order.
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    e.schedule_at(t, [&fired, t] { fired.push_back(t); });
  }
  e.run();
  ASSERT_EQ(fired.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

}  // namespace
}  // namespace ones::sim
