// Reference discrete-event engine for the differential equivalence harness
// (tests/engine_equivalence_test.cpp).
//
// This is the pre-calendar-queue `sim::SimEngine` — a std::priority_queue
// min-heap on (when, seq) with tombstone cancellation — kept verbatim and
// compiled into tests only. It is the executable specification the
// production calendar queue must match event-for-event: same fire order,
// same now() trajectory, same cancel() return values, same pending() counts.
// Do not "improve" it; its value is that it stays simple and obviously
// correct.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/expect.hpp"
#include "sim/engine.hpp"

namespace ones::sim::testing {

class ReferenceEngine {
 public:
  ReferenceEngine() = default;
  ReferenceEngine(const ReferenceEngine&) = delete;
  ReferenceEngine& operator=(const ReferenceEngine&) = delete;

  SimTime now() const { return now_; }

  EventId schedule_at(SimTime when, std::function<void()> fn) {
    ONES_EXPECT_MSG(std::isfinite(when), "event time must be finite");
    ONES_EXPECT_MSG(when >= now_, "cannot schedule events in the past");
    ONES_EXPECT(fn != nullptr);
    const EventId id = next_id_++;
    queue_.push(Entry{when, next_seq_++, id});
    callbacks_.emplace(id, std::move(fn));
    return id;
  }

  EventId schedule_after(SimTime delay, std::function<void()> fn) {
    ONES_EXPECT_MSG(delay >= 0.0, "delay must be non-negative");
    return schedule_at(now_ + delay, std::move(fn));
  }

  bool cancel(EventId id) {
    auto it = callbacks_.find(id);
    if (it == callbacks_.end()) return false;
    callbacks_.erase(it);
    cancelled_.insert(id);
    return true;
  }

  bool step() {
    while (!queue_.empty()) {
      Entry top = queue_.top();
      queue_.pop();
      auto cit = cancelled_.find(top.id);
      if (cit != cancelled_.end()) {
        cancelled_.erase(cit);
        continue;
      }
      auto it = callbacks_.find(top.id);
      ONES_EXPECT(it != callbacks_.end());
      std::function<void()> fn = std::move(it->second);
      callbacks_.erase(it);
      now_ = top.when;
      ++fired_;
      fn();
      return true;
    }
    return false;
  }

  void run_until(SimTime limit) {
    while (!queue_.empty()) {
      Entry top = queue_.top();
      if (cancelled_.count(top.id)) {
        queue_.pop();
        cancelled_.erase(top.id);
        continue;
      }
      if (top.when > limit) break;
      step();
    }
    if (now_ < limit) now_ = limit;
  }

  void run() {
    while (step()) {
    }
  }

  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

  std::uint64_t fired() const { return fired_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    EventId id;
    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

}  // namespace ones::sim::testing
