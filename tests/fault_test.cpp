// Deterministic fault injection + recovery (DESIGN.md §13): the injector's
// schedule is a pure function of its seed; the driver keeps health in sync
// with the incremental indexes (I9) and every failure-impacted job recovers
// or aborts with its lost work accounted (I10).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "cluster/fault.hpp"
#include "core/ones_scheduler.hpp"
#include "sched/fifo.hpp"
#include "sched/gandiva.hpp"
#include "sched/optimus.hpp"
#include "sched/simulation.hpp"
#include "sched/srtf.hpp"
#include "sched/tiresias.hpp"
#include "sim/engine.hpp"
#include "telemetry/registry.hpp"
#include "trace/replay.hpp"
#include "trace/sink.hpp"
#include "workload/trace.hpp"

namespace ones {
namespace {

sched::SimulationConfig faulty_config(double gpu_mtbf = 4000.0,
                                      double node_mtbf = 0.0) {
  sched::SimulationConfig c;
  c.topology.num_nodes = 2;
  c.fault.gpu_mtbf_s = gpu_mtbf;
  c.fault.gpu_repair_s = 60.0;
  c.fault.node_mtbf_s = node_mtbf;
  c.fault.node_repair_s = 120.0;
  return c;
}

workload::TraceConfig small_trace_config(int jobs = 24, std::uint64_t seed = 7) {
  workload::TraceConfig t;
  t.num_jobs = jobs;
  t.mean_interarrival_s = 15.0;
  t.seed = seed;
  return t;
}

TEST(FaultConfig, DefaultsAreDisabledAndValid) {
  cluster::FaultConfig f;
  EXPECT_FALSE(f.enabled());
  EXPECT_NO_THROW(f.validate());
  f.gpu_mtbf_s = 1000.0;
  EXPECT_TRUE(f.enabled());
  f.gpu_mtbf_s = 0.0;
  f.spot_fraction = 0.5;  // spot nodes without a reclaim rate: still disabled
  EXPECT_FALSE(f.enabled());
  f.reclaim_mtbf_s = 1000.0;
  EXPECT_TRUE(f.enabled());
}

TEST(FaultConfig, ValidateRejectsNonsense) {
  cluster::FaultConfig f;
  f.gpu_mtbf_s = -1.0;
  EXPECT_THROW(f.validate(), std::logic_error);
  f = {};
  f.spot_fraction = 1.5;
  EXPECT_THROW(f.validate(), std::logic_error);
  f = {};
  f.gpu_mtbf_s = 1000.0;
  f.gpu_repair_s = 0.0;  // enabled process must be repairable
  EXPECT_THROW(f.validate(), std::logic_error);
  f = {};
  f.max_restarts = -1;
  EXPECT_THROW(f.validate(), std::logic_error);
}

TEST(FaultConfig, SpotNodeCountIsTheTailOfTheIdRange) {
  cluster::FaultConfig f;
  EXPECT_EQ(cluster::spot_node_count(f, 8), 0);
  f.spot_fraction = 0.25;
  EXPECT_EQ(cluster::spot_node_count(f, 8), 2);
  f.spot_fraction = 1.0;
  EXPECT_EQ(cluster::spot_node_count(f, 8), 8);
  f.spot_fraction = 0.3;  // rounds down
  EXPECT_EQ(cluster::spot_node_count(f, 8), 2);
}

/// Run an injector on a bare engine and record every health change.
using HealthLog = std::vector<std::tuple<double, GpuId, cluster::SlotHealth>>;

HealthLog injector_log(const cluster::FaultConfig& fault, bool extra_events) {
  cluster::TopologyConfig tc;
  tc.num_nodes = 2;
  const cluster::Topology topo(tc);
  sim::SimEngine engine;
  cluster::FaultInjector injector(fault, topo);
  HealthLog log;
  injector.start(engine, [&](const std::vector<cluster::HealthChange>& changes) {
    for (const auto& ch : changes) {
      log.emplace_back(engine.now(), ch.gpu, ch.health);
      // The hook's report and the injector's view must agree at hook time.
      EXPECT_EQ(injector.health(ch.gpu), ch.health);
    }
  });
  if (extra_events) {
    // Unrelated simulation activity must not perturb the fault schedule.
    for (int i = 0; i < 50; ++i) {
      engine.schedule_at(100.0 * i + 1.0, [] {});
    }
  }
  engine.run_until(20000.0);
  injector.halt();
  return log;
}

TEST(FaultInjector, ScheduleIsAPureFunctionOfTheSeed) {
  cluster::FaultConfig f;
  f.gpu_mtbf_s = 2000.0;
  f.gpu_repair_s = 100.0;
  f.node_mtbf_s = 6000.0;
  f.node_repair_s = 300.0;
  f.spot_fraction = 0.5;
  f.reclaim_mtbf_s = 8000.0;
  const auto a = injector_log(f, /*extra_events=*/false);
  const auto b = injector_log(f, /*extra_events=*/false);
  const auto c = injector_log(f, /*extra_events=*/true);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  // A different seed gives a different schedule.
  f.seed += 1;
  EXPECT_NE(a, injector_log(f, false));
}

TEST(FaultInjector, FailedTakesPrecedenceOverReclaimed) {
  // Every node is spot capacity and every process is fast, so overlaps of
  // node-down and reclaim-down windows are common. Whenever a GPU's node
  // process is down its effective health must read Failed, never Reclaimed.
  cluster::FaultConfig f;
  f.node_mtbf_s = 500.0;
  f.node_repair_s = 500.0;
  f.spot_fraction = 1.0;
  f.reclaim_mtbf_s = 500.0;
  f.reclaim_return_s = 500.0;
  const auto log = injector_log(f, false);
  bool saw_failed = false, saw_reclaimed = false;
  for (const auto& [t, gpu, health] : log) {
    saw_failed |= health == cluster::SlotHealth::Failed;
    saw_reclaimed |= health == cluster::SlotHealth::Reclaimed;
  }
  EXPECT_TRUE(saw_failed);
  EXPECT_TRUE(saw_reclaimed);
}

/// Drive one scheduler through a faulty run with the incremental-index audit
/// on and the full trace captured, then replay-check I1..I10.
void expect_clean_chaos_run(sched::Scheduler& scheduler, const char* name) {
  SCOPED_TRACE(name);
  auto config = faulty_config(/*gpu_mtbf=*/3000.0, /*node_mtbf=*/15000.0);
  config.audit_incremental = true;
  trace::RecordBufferSink buffer;
  config.trace_sink = &buffer;
  const auto trace = workload::generate_trace(small_trace_config());
  sched::ClusterSimulation sim(config, trace, scheduler);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  const auto report = trace::TraceReplayer().check(buffer.records());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(FaultSim, EverySchedulerSurvivesChaosWithInvariantsIntact) {
  {
    core::OnesScheduler s;
    expect_clean_chaos_run(s, "ONES");
  }
  {
    sched::FifoScheduler s;
    expect_clean_chaos_run(s, "FIFO");
  }
  {
    sched::TiresiasScheduler s;
    expect_clean_chaos_run(s, "Tiresias");
  }
  {
    sched::OptimusScheduler s;
    expect_clean_chaos_run(s, "Optimus");
  }
  {
    sched::SrtfOracleScheduler s;
    expect_clean_chaos_run(s, "SRTF*");
  }
  {
    sched::GandivaScheduler s;
    expect_clean_chaos_run(s, "Gandiva");
  }
}

TEST(FaultSim, ElasticSchedulersShrinkInsteadOfRestarting) {
  core::OnesScheduler s;
  auto config = faulty_config(/*gpu_mtbf=*/2500.0);
  telemetry::MetricsRegistry registry;
  config.metrics = &registry;
  const auto trace = workload::generate_trace(small_trace_config());
  sched::ClusterSimulation sim(config, trace, s);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  ASSERT_NE(registry.find_counter("fault_gpu_down_total"), nullptr);
  EXPECT_GT(registry.counter("fault_gpu_down_total").value(), 0.0);
  EXPECT_GT(registry.counter("fault_job_shrinks_total").value(), 0.0);
}

TEST(FaultSim, CheckpointSchedulersRestartAndAccountLostWork) {
  sched::FifoScheduler s;
  auto config = faulty_config(/*gpu_mtbf=*/1200.0);
  telemetry::MetricsRegistry registry;
  config.metrics = &registry;
  const auto trace = workload::generate_trace(small_trace_config());
  sched::ClusterSimulation sim(config, trace, s);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  EXPECT_GT(registry.counter("fault_job_restarts_total").value(), 0.0);
  EXPECT_GT(registry.counter("fault_lost_gpu_seconds_total").value(), 0.0);
}

TEST(FaultSim, ExhaustedRetriesAbortTheJob) {
  sched::FifoScheduler s;
  auto config = faulty_config(/*gpu_mtbf=*/800.0);
  config.fault.gpu_repair_s = 30.0;
  config.fault.max_restarts = 0;  // first restart already exhausts the budget
  telemetry::MetricsRegistry registry;
  config.metrics = &registry;
  trace::RecordBufferSink buffer;
  config.trace_sink = &buffer;
  const auto trace = workload::generate_trace(small_trace_config());
  sched::ClusterSimulation sim(config, trace, s);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  EXPECT_GT(sim.metrics().aborted(), 0u);
  EXPECT_GT(registry.counter("fault_jobs_aborted_total").value(), 0.0);
  bool saw_exhausted = false;
  for (const auto& r : buffer.records()) {
    if (r.kind == trace::RecordKind::JobCompleted && r.aborted &&
        r.detail == "retries_exhausted") {
      saw_exhausted = true;
    }
  }
  EXPECT_TRUE(saw_exhausted);
  // The replay invariants hold even with aborts in the mix.
  const auto report = trace::TraceReplayer().check(buffer.records());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(FaultSim, SameSeedRunsAreIdentical) {
  auto run = [] {
    core::OnesScheduler s;
    auto config = faulty_config(/*gpu_mtbf=*/2500.0, /*node_mtbf=*/15000.0);
    const auto trace = workload::generate_trace(small_trace_config());
    sched::ClusterSimulation sim(config, trace, s);
    sim.run();
    return std::make_tuple(sim.events_fired(), sim.deployments(),
                           sim.summary("ONES").avg_jct,
                           sim.metrics().aborted());
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultSim, DisabledFaultsLeaveTheRunUntouched) {
  auto run = [](const cluster::FaultConfig& fault) {
    sched::FifoScheduler s;
    sched::SimulationConfig config;
    config.topology.num_nodes = 2;
    config.fault = fault;
    const auto trace = workload::generate_trace(small_trace_config());
    sched::ClusterSimulation sim(config, trace, s);
    sim.run();
    return std::make_tuple(sim.events_fired(), sim.deployments(),
                           sim.summary("FIFO").avg_jct);
  };
  cluster::FaultConfig off;
  off.seed = 12345;  // a disabled injector's seed must not matter
  EXPECT_EQ(run({}), run(off));
}

}  // namespace
}  // namespace ones
