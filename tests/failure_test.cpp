// Failure-injection tests: abnormal job endings (killed / crashed jobs,
// paper §2.1) across the trace generator, the simulation driver, the
// metrics and the ONES predictor.
#include <gtest/gtest.h>

#include "core/ones_scheduler.hpp"
#include "sched/fifo.hpp"
#include "sched/simulation.hpp"
#include "sched/tiresias.hpp"
#include "workload/trace.hpp"

namespace ones {
namespace {

workload::TraceConfig failing_trace_config(double fraction, int jobs = 16,
                                           std::uint64_t seed = 3) {
  workload::TraceConfig t;
  t.num_jobs = jobs;
  t.mean_interarrival_s = 12.0;
  t.seed = seed;
  t.abnormal_fraction = fraction;
  t.abnormal_mean_lifetime_s = 120.0;
  return t;
}

sched::SimulationConfig small_config() {
  sched::SimulationConfig c;
  c.topology.num_nodes = 2;
  return c;
}

TEST(FailureTrace, FractionZeroMeansNoKills) {
  const auto trace = workload::generate_trace(failing_trace_config(0.0, 100));
  for (const auto& spec : trace) EXPECT_DOUBLE_EQ(spec.kill_after_s, 0.0);
}

TEST(FailureTrace, FractionProducesKillTimes) {
  const auto trace = workload::generate_trace(failing_trace_config(0.5, 400));
  int killed = 0;
  for (const auto& spec : trace) {
    if (spec.kill_after_s > 0.0) ++killed;
  }
  EXPECT_NEAR(static_cast<double>(killed) / 400.0, 0.5, 0.08);
}

TEST(FailureSim, AbortedJobsFreeResourcesAndFinishTheRun) {
  sched::FifoScheduler fifo;
  auto tc = failing_trace_config(0.4, 20);
  const auto trace = workload::generate_trace(tc);
  sched::ClusterSimulation sim(small_config(), trace, fifo);
  sim.run();
  EXPECT_TRUE(sim.all_completed());  // finished = converged or aborted
  EXPECT_GT(sim.metrics().aborted(), 0u);
  EXPECT_EQ(sim.metrics().aborted() + sim.metrics().completed(), trace.size());
  // Cluster fully drained.
  EXPECT_EQ(sim.current_assignment().idle_count(), sim.topology().total_gpus());
  // Every aborted job's view is consistent.
  for (const auto& spec : trace) {
    const auto& v = sim.job_view(spec.id);
    EXPECT_EQ(v.status, sched::JobStatus::Completed);
    if (v.aborted) {
      EXPECT_EQ(v.gpus, 0);
      const auto& m = sim.metrics().job(spec.id);
      EXPECT_TRUE(m.aborted);
      // The job died roughly at its scheduled kill time.
      EXPECT_NEAR(m.completion_s, spec.arrival_time_s + spec.kill_after_s, 1e-6);
    }
  }
}

TEST(FailureSim, AbortedJobsExcludedFromJctStatistics) {
  sched::FifoScheduler fifo;
  const auto trace = workload::generate_trace(failing_trace_config(0.4, 20));
  sched::ClusterSimulation sim(small_config(), trace, fifo);
  sim.run();
  EXPECT_EQ(sim.metrics().jcts().size(), sim.metrics().completed());
  EXPECT_LT(sim.metrics().jcts().size(), trace.size());
}

TEST(FailureSim, KillBeforeEverRunningIsHandled) {
  // A job killed while still queued must not corrupt driver state.
  workload::JobSpec spec;
  spec.id = 0;
  spec.variant = {"VGG16", "ImageNet-20k", 20000, 20};
  spec.requested_gpus = 8;  // never fits a 4-GPU strict-FIFO window... use 8 GPUs
  spec.requested_batch = 128 * 8;
  spec.arrival_time_s = 0.0;
  spec.dynamics_seed = 1;
  spec.kill_after_s = 5.0;
  workload::JobSpec blocker = spec;
  blocker.id = 1;
  blocker.kill_after_s = 0.0;
  blocker.requested_gpus = 4;
  blocker.requested_batch = 128 * 4;
  blocker.arrival_time_s = 0.0;

  // Strict FIFO on 8 GPUs: job 0 (8 GPUs) starts first; job 1 queues. Kill
  // job 0 at t=5 while job 1 waits.
  sched::FifoScheduler fifo;
  sched::ClusterSimulation sim(small_config(), {spec, blocker}, fifo);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  EXPECT_TRUE(sim.job_view(0).aborted);
  EXPECT_FALSE(sim.job_view(1).aborted);
}

TEST(FailureSim, OnesCompletesAndPredictorSkipsAbortedJobs) {
  core::OnesScheduler ones_sched;
  const auto trace = workload::generate_trace(failing_trace_config(0.3, 24, 9));
  sched::ClusterSimulation sim(small_config(), trace, ones_sched);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  EXPECT_GT(sim.metrics().aborted(), 0u);

  // Predictions for any surviving view stay proper Beta distributions.
  for (const auto& spec : trace) {
    const auto& v = sim.job_view(spec.id);
    if (v.aborted) continue;
    const auto dist = ones_sched.predictor().predict(v);
    EXPECT_GE(dist.alpha(), 1.0);
    EXPECT_GE(dist.beta(), 1.0);
  }
}

TEST(FailureSim, TiresiasSurvivesHighFailureRates) {
  sched::TiresiasScheduler tiresias;
  const auto trace = workload::generate_trace(failing_trace_config(0.6, 24, 5));
  sched::ClusterSimulation sim(small_config(), trace, tiresias);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
}

TEST(FailureSim, TraceKillsAndInjectedFaultsCompose) {
  // Abnormal endings from the trace (§2.1 kills) and injected GPU faults
  // (DESIGN.md §13) in the same run: every job still settles, the cluster
  // drains, and aborted jobs come from both sources without double counting.
  sched::FifoScheduler fifo;
  auto config = small_config();
  config.fault.gpu_mtbf_s = 1500.0;
  config.fault.gpu_repair_s = 60.0;
  config.audit_incremental = true;
  const auto trace = workload::generate_trace(failing_trace_config(0.4, 20));
  sched::ClusterSimulation sim(config, trace, fifo);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  EXPECT_GT(sim.metrics().aborted(), 0u);
  EXPECT_EQ(sim.metrics().aborted() + sim.metrics().completed(), trace.size());
  for (const auto& spec : trace) {
    EXPECT_EQ(sim.job_view(spec.id).status, sched::JobStatus::Completed);
  }
}

TEST(FailureSim, KillLandsWhileJobWaitsOutARecoveryBackoff) {
  // A job whose placement died is Recovering (waiting out the retry backoff)
  // when its trace kill fires: the kill must win, cancel the pending retry
  // and settle the job as aborted — not resurrect it later.
  sched::FifoScheduler fifo;
  auto config = small_config();
  config.fault.gpu_mtbf_s = 600.0;  // faults well within each job's lifetime
  config.fault.gpu_repair_s = 30.0;
  config.fault.retry_backoff_s = 120.0;  // long backoff: kills land inside it
  config.audit_incremental = true;
  auto tc = failing_trace_config(0.7, 24, 11);
  const auto trace = workload::generate_trace(tc);
  sched::ClusterSimulation sim(config, trace, fifo);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  // Cluster drained: every healthy GPU is back in the idle index.
  EXPECT_EQ(sim.current_assignment().idle_count(),
            sim.current_assignment().healthy_count());
}

TEST(FailureSim, ConvergedJobCancelsItsPendingKill) {
  // A kill scheduled far in the future must be cancelled when the job
  // converges first (no double-completion).
  workload::JobSpec spec;
  spec.id = 0;
  spec.variant = {"ResNet18", "CIFAR10-20k", 20000, 10};
  spec.requested_gpus = 1;
  spec.requested_batch = 256;
  spec.arrival_time_s = 0.0;
  spec.dynamics_seed = 4;
  spec.kill_after_s = 1e6;  // long after convergence
  sched::FifoScheduler fifo;
  sched::ClusterSimulation sim(small_config(), {spec}, fifo);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  EXPECT_FALSE(sim.job_view(0).aborted);
  EXPECT_EQ(sim.metrics().aborted(), 0u);
}

}  // namespace
}  // namespace ones
