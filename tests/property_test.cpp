// Property-based tests (parameterized sweeps) over invariants:
//   * Eq. 4 — exclusive GPU use and status/assignment consistency on every
//     scheduler event, for every scheduler, across trace seeds;
//   * evolution operator algebra (crossover gene sources, reorder
//     conservation, repair idempotence) across RNG seeds;
//   * conservation of training work: a completed job processed at least
//     (epochs-to-target + patience) x |D| samples' worth of epochs.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/evolution.hpp"
#include "core/annealing.hpp"
#include "core/ones_scheduler.hpp"
#include "drl/drl_scheduler.hpp"
#include "sched/fifo.hpp"
#include "sched/gandiva.hpp"
#include "sched/optimus.hpp"
#include "sched/simulation.hpp"
#include "sched/srtf.hpp"
#include "sched/tiresias.hpp"
#include "workload/trace.hpp"

namespace ones {
namespace {

std::unique_ptr<sched::Scheduler> make_scheduler(const std::string& name) {
  if (name == "ONES") return std::make_unique<core::OnesScheduler>();
  if (name == "FIFO") return std::make_unique<sched::FifoScheduler>();
  if (name == "Tiresias") return std::make_unique<sched::TiresiasScheduler>();
  if (name == "Optimus") return std::make_unique<sched::OptimusScheduler>();
  if (name == "SRTF*") return std::make_unique<sched::SrtfOracleScheduler>();
  if (name == "DRL") return std::make_unique<drl::DrlScheduler>();
  if (name == "Gandiva") return std::make_unique<sched::GandivaScheduler>();
  if (name == "ONES-SA") return std::make_unique<core::AnnealingScheduler>();
  throw std::logic_error("unknown scheduler " + name);
}

/// Decorator that asserts cluster-state invariants on every event before
/// delegating to the wrapped policy.
class InvariantChecker : public sched::Scheduler {
 public:
  explicit InvariantChecker(sched::Scheduler& inner) : inner_(inner) {}

  std::string name() const override { return inner_.name(); }
  sched::ScalingMechanism mechanism() const override { return inner_.mechanism(); }
  double period_s() const override { return inner_.period_s(); }

  std::optional<cluster::Assignment> on_event(const sched::ClusterState& state,
                                              const sched::SchedulerEvent& event) override {
    ++events_;
    check(state);
    auto out = inner_.on_event(state, event);
    if (out.has_value()) {
      out->check_invariants();  // Eq. 4 style, before the driver applies it
      for (JobId j : out->running_jobs()) {
        const auto* v = state.job(j);
        ASSERT_NE_OR_THROW(v != nullptr, "assignment names an unknown job");
        for (GpuId g : out->gpus_of(j)) {
          ASSERT_NE_OR_THROW(out->slot(g).local_batch <= v->profile->max_local_batch,
                             "local batch exceeds memory");
        }
      }
    }
    return out;
  }

  std::size_t events() const { return events_; }

 private:
  static void ASSERT_NE_OR_THROW(bool cond, const char* msg) {
    if (!cond) throw std::logic_error(msg);
  }

  void check(const sched::ClusterState& state) {
    state.current->check_invariants();
    // Status consistency: running <=> has workers in the live assignment.
    for (const sched::JobView* v : state.jobs) {
      const int gpus = state.current->gpu_count(v->spec.id);
      switch (v->status) {
        case sched::JobStatus::Running:
          ASSERT_NE_OR_THROW(gpus > 0, "running job without workers");
          ASSERT_NE_OR_THROW(v->gpus == gpus, "JobView gpu count out of sync");
          ASSERT_NE_OR_THROW(v->global_batch == state.current->global_batch(v->spec.id),
                             "JobView batch out of sync");
          break;
        case sched::JobStatus::Waiting:
        case sched::JobStatus::Completed:
          ASSERT_NE_OR_THROW(gpus == 0, "non-running job holds GPUs");
          break;
      }
    }
    // Exclusive use: a GPU hosts at most one job by construction; also the
    // busy + idle partition must cover the cluster.
    const int busy = state.topology->total_gpus() - state.current->idle_count();
    ASSERT_NE_OR_THROW(busy >= 0 && busy <= state.topology->total_gpus(),
                       "busy count out of range");
  }

  sched::Scheduler& inner_;
  std::size_t events_ = 0;
};

struct RunParam {
  std::string scheduler;
  std::uint64_t seed;
  double interarrival;
};

std::string param_name(const testing::TestParamInfo<RunParam>& info) {
  std::string s = info.param.scheduler + "_s" + std::to_string(info.param.seed) + "_i" +
                  std::to_string(static_cast<int>(info.param.interarrival));
  for (auto& ch : s) {
    if (ch == '*' || ch == '-') ch = 'O';
  }
  return s;
}

class SchedulerInvariants : public testing::TestWithParam<RunParam> {};

TEST_P(SchedulerInvariants, HoldOnEveryEventAndAtCompletion) {
  const auto& param = GetParam();
  workload::TraceConfig tc;
  tc.num_jobs = 14;
  tc.mean_interarrival_s = param.interarrival;
  tc.seed = param.seed;
  const auto trace = workload::generate_trace(tc);

  sched::SimulationConfig sc;
  sc.topology.num_nodes = 2;

  auto inner = make_scheduler(param.scheduler);
  InvariantChecker checked(*inner);
  sched::ClusterSimulation sim(sc, trace, checked);
  sim.run();

  EXPECT_TRUE(sim.all_completed()) << param.scheduler;
  EXPECT_GT(checked.events(), trace.size());

  // Conservation of training work: a converged job processed at least the
  // reference requirement's worth of samples (batch inefficiency can only
  // add samples, never remove them).
  for (const auto& spec : trace) {
    const auto& v = sim.job_view(spec.id);
    const double floor_samples =
        (1.0 + 10.0) * static_cast<double>(spec.variant.dataset_size);
    EXPECT_GE(v.samples_processed, floor_samples * 0.99)
        << param.scheduler << " job " << spec.id;
    // And the epoch log's sample counter matches the view.
    EXPECT_NEAR(v.epoch_log.back().samples_processed, v.samples_processed,
                1.0 + v.samples_processed * 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerInvariants,
    testing::Values(RunParam{"ONES", 1, 10.0}, RunParam{"ONES", 2, 25.0},
                    RunParam{"ONES", 3, 6.0}, RunParam{"FIFO", 1, 10.0},
                    RunParam{"FIFO", 4, 6.0}, RunParam{"Tiresias", 1, 10.0},
                    RunParam{"Tiresias", 5, 6.0}, RunParam{"Optimus", 1, 10.0},
                    RunParam{"SRTF*", 1, 10.0}, RunParam{"SRTF*", 6, 6.0},
                    RunParam{"DRL", 1, 10.0}, RunParam{"DRL", 7, 25.0},
                    RunParam{"Gandiva", 1, 10.0}, RunParam{"Gandiva", 8, 6.0},
                    RunParam{"ONES-SA", 1, 10.0}, RunParam{"ONES-SA", 9, 6.0}),
    param_name);

// ---------------- Evolution operator algebra ----------------

class OperatorAlgebra : public testing::TestWithParam<std::uint64_t> {
 protected:
  struct World {
    cluster::Topology topo;
    cluster::Assignment live;
    sched::ThroughputOracle oracle;
    sched::ClusterState state;
    core::BatchLimitManager limits;
    std::vector<std::unique_ptr<sched::JobView>> views;

    World()
        : topo([] {
            cluster::TopologyConfig c;
            c.num_nodes = 2;
            return c;
          }()),
          live(topo.total_gpus()),
          oracle(topo) {}
  };

  World make_world(std::uint64_t seed, int jobs) {
    World w;
    Rng rng(seed);
    const char* models[] = {"ResNet18", "GoogleNet", "VGG16-CIFAR", "BERT"};
    for (int j = 0; j < jobs; ++j) {
      auto v = std::make_unique<sched::JobView>();
      v->spec.id = j;
      const char* m = models[rng.uniform_int(0, 3)];
      v->spec.variant = {m, "t", 20000, 10};
      v->profile = &model::profile_by_name(m);
      v->spec.requested_gpus = 1;
      v->spec.requested_batch = std::min(v->profile->b_ref, v->profile->max_local_batch);
      v->status = sched::JobStatus::Waiting;
      v->epochs_completed = static_cast<int>(rng.uniform_int(0, 6));
      v->samples_processed = 20000.0 * v->epochs_completed;
      v->exec_time_s = rng.uniform(0, 300);
      v->init_loss = v->profile->init_loss;
      v->train_loss = v->profile->init_loss * 0.6;
      v->val_accuracy = 0.4;
      w.views.push_back(std::move(v));
      w.limits.on_job_arrival(*w.views.back(), 10.0 * j);
    }
    w.state.now = 500.0;
    w.state.topology = &w.topo;
    w.state.current = &w.live;
    w.state.oracle = &w.oracle;
    for (auto& v : w.views) w.state.jobs.push_back(v.get());
    return w;
  }
};

TEST_P(OperatorAlgebra, CrossoverChildrenTakeEachGeneFromAParent) {
  auto w = make_world(GetParam(), 6);
  auto ctx = core::make_context(w.state, nullptr, &w.limits);
  core::EvolutionConfig cfg;
  cfg.seed = GetParam();
  core::Evolution evo(cfg);
  cluster::Assignment a(w.topo.total_gpus()), b(w.topo.total_gpus());
  evo.refresh(a, ctx);
  evo.refresh(b, ctx);
  auto [c1, c2] = evo.crossover(a, b);
  for (int g = 0; g < w.topo.total_gpus(); ++g) {
    const auto sa = a.slot(g), sb = b.slot(g);
    const auto s1 = c1.slot(g), s2 = c2.slot(g);
    EXPECT_TRUE((s1 == sa && s2 == sb) || (s1 == sb && s2 == sa));
  }
}

TEST_P(OperatorAlgebra, ReorderConservesWorkPerJob) {
  auto w = make_world(GetParam(), 5);
  auto ctx = core::make_context(w.state, nullptr, &w.limits);
  core::EvolutionConfig cfg;
  cfg.seed = GetParam();
  core::Evolution evo(cfg);
  cluster::Assignment cand(w.topo.total_gpus());
  evo.refresh(cand, ctx);
  const auto packed = core::Evolution::reorder(cand);
  for (const sched::JobView* v : w.state.jobs) {
    EXPECT_EQ(packed.global_batch(v->spec.id), cand.global_batch(v->spec.id));
    EXPECT_EQ(packed.gpu_count(v->spec.id), cand.gpu_count(v->spec.id));
    // Packed workers are contiguous.
    const auto gpus = packed.gpus_of(v->spec.id);
    for (std::size_t i = 1; i < gpus.size(); ++i) {
      EXPECT_EQ(gpus[i], gpus[i - 1] + 1);
    }
  }
  EXPECT_EQ(packed.idle_count(), cand.idle_count());
}

TEST_P(OperatorAlgebra, RepairIsIdempotent) {
  auto w = make_world(GetParam(), 6);
  auto ctx = core::make_context(w.state, nullptr, &w.limits);
  core::EvolutionConfig cfg;
  cfg.seed = GetParam();
  core::Evolution evo(cfg);
  cluster::Assignment cand(w.topo.total_gpus());
  evo.refresh(cand, ctx);
  // Corrupt it like a crossover child would.
  cluster::Assignment other(w.topo.total_gpus());
  evo.refresh(other, ctx);
  auto [c1, c2] = evo.crossover(cand, other);
  evo.repair(c1, ctx);
  const auto once = c1;
  evo.repair(c1, ctx);
  EXPECT_EQ(c1, once);
}

TEST_P(OperatorAlgebra, RefreshedCandidatesSaturateOrExhaustJobs) {
  auto w = make_world(GetParam(), 8);
  auto ctx = core::make_context(w.state, nullptr, &w.limits);
  core::EvolutionConfig cfg;
  cfg.seed = GetParam();
  core::Evolution evo(cfg);
  for (int i = 0; i < 4; ++i) {
    cluster::Assignment cand(w.topo.total_gpus());
    evo.refresh(cand, ctx);
    cand.check_invariants();
    // Eq. 4: every GPU allocated (8 jobs are available for 8 GPUs).
    EXPECT_EQ(cand.idle_count(), 0);
    // Batch limits respected.
    for (JobId j : cand.running_jobs()) {
      const auto* v = w.state.job(j);
      EXPECT_LE(cand.global_batch(j), evo.effective_limit(*v, ctx));
      EXPECT_GE(cand.global_batch(j), cand.gpu_count(j));
    }
  }
}

TEST_P(OperatorAlgebra, MutationRateZeroIsIdentityBeforeFill) {
  auto w = make_world(GetParam(), 8);
  auto ctx = core::make_context(w.state, nullptr, &w.limits);
  core::EvolutionConfig cfg;
  cfg.seed = GetParam();
  cfg.mutation_rate = 0.0;
  core::Evolution evo(cfg);
  cluster::Assignment cand(w.topo.total_gpus());
  evo.refresh(cand, ctx);
  const auto before = cand;
  evo.mutate(cand, ctx);
  EXPECT_EQ(cand, before);  // no evictions, and fill finds no idle GPUs
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorAlgebra, testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace ones
