// Hyperscale smoke (time-boxed ~1k-GPU / 10k-job slice).
//
// Runs ONES end-to-end on the hyperscale trace generator (8-GPU job class +
// diurnal arrival modulation), replays the emitted trace through
// trace::TraceReplayer (invariants I1-I8, DESIGN.md §8) and pins summary()
// to golden values captured on the pre-calendar-queue engine. The goldens
// are bit-exact (EXPECT_DOUBLE_EQ): the calendar-queue engine and the
// incremental scheduler-state indices are required to be decision-identical,
// so any drift here is a semantics regression, not noise.
#include <gtest/gtest.h>

#include <memory>

#include "core/ones_scheduler.hpp"
#include "sched/fifo.hpp"
#include "sched/simulation.hpp"
#include "trace/replay.hpp"
#include "trace/sink.hpp"
#include "workload/trace.hpp"

namespace ones {
namespace {

sched::SimulationConfig hyperscale_slice_config() {
  sched::SimulationConfig c;
  c.topology.num_nodes = 250;  // 1000 GPUs
  // Time box: a correct run would take ~hours of sim time to drain 10k jobs;
  // the smoke slice stops here and scores whatever completed.
  c.max_sim_time_s = 120.0;
  return c;
}

workload::TraceConfig hyperscale_slice_trace() {
  workload::TraceConfig t;
  t.num_jobs = 10000;
  t.mean_interarrival_s = 3.0;
  t.seed = 17;
  t.max_requested_gpus = 8;
  t.diurnal_amplitude = 0.4;
  // Abnormal endings give the time-boxed slice real completions (aborts
  // count), so the JCT goldens are nonzero without draining whole jobs.
  t.abnormal_fraction = 0.3;
  t.abnormal_mean_lifetime_s = 80.0;
  return t;
}

core::OnesConfig small_population_ones() {
  core::OnesConfig c;
  // Default population (0 = cluster size) would be 1000 candidates per
  // round; the smoke slice wants ONES mechanics, not ONES at full depth.
  c.evolution.population_size = 2;
  return c;
}

TEST(Hyperscale, OnesSliceMatchesGoldenSummaryAndReplays) {
  trace::RecordBufferSink buffer;
  auto config = hyperscale_slice_config();
  config.trace_sink = &buffer;

  core::OnesScheduler scheduler(small_population_ones());
  sched::ClusterSimulation sim(config, workload::generate_trace(hyperscale_slice_trace()),
                               scheduler);
  sim.run();

  // The slice must do real work: dozens of arrivals, some completions.
  const auto summary = sim.summary("ONES");
  EXPECT_GT(summary.jobs, 4u);
  EXPECT_GT(sim.deployments(), 20u);

  // Structural legality of the full emitted stream (I1-I8).
  const auto report = trace::TraceReplayer{}.check(buffer.records());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.records, 1000u);

  // ---- Goldens captured on the pre-change engine (priority_queue + full
  // rescans). Do not re-pin to silence a failure you cannot explain.
  EXPECT_EQ(summary.jobs, 9u);
  EXPECT_EQ(sim.completed_jobs(), 14u);
  EXPECT_EQ(sim.deployments(), 48u);
  EXPECT_DOUBLE_EQ(summary.avg_jct, 75.411977956476463);
  EXPECT_DOUBLE_EQ(summary.avg_exec, 75.411977956476463);
  EXPECT_DOUBLE_EQ(summary.avg_queue, 0.0);
  EXPECT_DOUBLE_EQ(summary.makespan, 119.26981361585968);
  EXPECT_DOUBLE_EQ(summary.utilization, 0.19751458873993682);
  EXPECT_DOUBLE_EQ(summary.cluster_joules, 20789325.431679923);
}

// The FIFO slice exists to bound the cheap-scheduler hot path as well (the
// incremental indices, not the evolutionary search, dominate it).
TEST(Hyperscale, FifoSliceMatchesGoldenSummary) {
  auto config = hyperscale_slice_config();
  sched::FifoScheduler scheduler(/*backfill=*/true);
  sched::ClusterSimulation sim(config, workload::generate_trace(hyperscale_slice_trace()),
                               scheduler);
  sim.run();

  const auto summary = sim.summary("FIFO-BF");
  EXPECT_EQ(summary.jobs, 2u);
  EXPECT_EQ(sim.deployments(), 41u);
  EXPECT_DOUBLE_EQ(summary.avg_jct, 89.030744891826799);
  EXPECT_DOUBLE_EQ(summary.makespan, 115.20787516765083);
  EXPECT_DOUBLE_EQ(summary.cluster_joules, 18202236.073582184);
}

}  // namespace
}  // namespace ones
