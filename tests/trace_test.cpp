// Tests for src/trace: record serialization round-trips, sink behavior
// (JSONL, Chrome, seq-stamping, atomic file writer), the elastic-protocol
// phase adapter, and the golden-trace digest of the quickstart scenario.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"
#include "core/ones_scheduler.hpp"
#include "elastic/protocol.hpp"
#include "exp/run_spec.hpp"
#include "sched/simulation.hpp"
#include "trace/record.hpp"
#include "trace/replay.hpp"
#include "trace/sink.hpp"
#include "workload/trace.hpp"

namespace ones::trace {
namespace {

namespace fs = std::filesystem;

TraceRecord full_record() {
  TraceRecord r;
  r.kind = RecordKind::JobReconfigured;
  r.t = 1234.5678901234567;
  r.job = 42;
  r.gpus = 4;
  r.global_batch = 256;
  r.old_gpus = 2;
  r.old_batch = 128;
  r.cost_s = 1.0625;
  r.aborted = true;
  r.seq = 987654321;
  r.count = 17;
  r.detail = "0,1,8,9";
  return r;
}

TEST(TraceRecord, JsonlRoundTripsEveryField) {
  const TraceRecord r = full_record();
  const TraceRecord back = record_from_jsonl_line(to_jsonl_line(r));
  EXPECT_EQ(back, r);
}

TEST(TraceRecord, KindNamesRoundTrip) {
  for (RecordKind k : {RecordKind::RunBegin, RecordKind::RunEnd,
                       RecordKind::JobSubmitted, RecordKind::JobAdmitted,
                       RecordKind::JobPlaced, RecordKind::JobPreempted,
                       RecordKind::JobReconfigured, RecordKind::BatchResized,
                       RecordKind::JobCompleted, RecordKind::ElasticPaused,
                       RecordKind::ElasticResumed, RecordKind::ProtocolPhase,
                       RecordKind::EvolutionStep, RecordKind::SimEvent}) {
    EXPECT_EQ(kind_from_name(kind_name(k)), k);
  }
  EXPECT_THROW(kind_from_name("no_such_kind"), std::runtime_error);
}

TEST(TraceRecord, RejectsMalformedLines) {
  EXPECT_THROW(record_from_jsonl_line("[1,2,3]"), std::runtime_error);
  EXPECT_THROW(record_from_jsonl_line("{\"kind\":\"job_placed\"}"),
               std::runtime_error);
  EXPECT_THROW(record_from_jsonl_line("{\"t\":0}"), std::runtime_error);
  EXPECT_THROW(record_from_jsonl_line("not json at all"), std::runtime_error);
}

TEST(TraceRecord, GpuListRoundTrips) {
  const std::vector<GpuId> gpus = {0, 3, 15, 2};
  EXPECT_EQ(format_gpu_list(gpus), "0,3,15,2");
  EXPECT_EQ(parse_gpu_list("0,3,15,2"), gpus);
  EXPECT_EQ(format_gpu_list({}), "");
  EXPECT_TRUE(parse_gpu_list("").empty());
  EXPECT_THROW(parse_gpu_list("1,x,3"), std::runtime_error);
}

TEST(Sinks, SeqStampedSinkOverridesTheSequence) {
  RecordBufferSink buffer;
  SeqStampedSink stamped(buffer);
  TraceRecord r;
  r.kind = RecordKind::SimEvent;
  r.seq = 999;  // emitters never set seq; a stale value must not leak through
  stamped.set_seq(7);
  stamped.on_record(r);
  stamped.set_seq(8);
  stamped.on_record(r);
  ASSERT_EQ(buffer.records().size(), 2u);
  EXPECT_EQ(buffer.records()[0].seq, 7u);
  EXPECT_EQ(buffer.records()[1].seq, 8u);
}

TEST(Sinks, MultiSinkFansOut) {
  RecordBufferSink a;
  RecordBufferSink b;
  MultiSink multi({&a, &b});
  multi.on_record(full_record());
  ASSERT_EQ(a.records().size(), 1u);
  ASSERT_EQ(b.records().size(), 1u);
  EXPECT_EQ(a.records()[0], b.records()[0]);
}

/// Run the quickstart ONES scenario (examples/quickstart.cpp) through `sink`.
void run_quickstart_ones(TraceSink& sink) {
  sched::SimulationConfig config;
  config.topology.num_nodes = 4;
  config.trace_sink = &sink;
  workload::TraceConfig tc;
  tc.num_jobs = 24;
  tc.mean_interarrival_s = 45.0;
  tc.seed = 7;
  const auto trace = workload::generate_trace(tc);
  core::OnesScheduler scheduler;
  sched::ClusterSimulation sim(config, trace, scheduler);
  sim.run();
  ASSERT_TRUE(sim.all_completed());
}

/// Golden FNV-1a 64 digest of the quickstart ONES JSONL stream. This pins
/// the exact trace bytes: any change to the scheduler's decisions, the
/// simulator's event order, or the serialization format moves it. If your
/// change is INTENTIONAL, re-pin: the test failure message prints the new
/// value, and `./build/examples/quickstart --trace-dir=...` lets you diff
/// the streams to confirm the delta is the one you meant (see CLAUDE.md).
constexpr std::uint64_t kQuickstartOnesDigest = 0xe2a2a72f2831eb90ULL;

TEST(GoldenTrace, QuickstartOnesDigestIsPinned) {
  std::ostringstream out;
  JsonlSink jsonl(out);
  run_quickstart_ones(jsonl);
  const std::string bytes = out.str();
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(exp::fnv1a64(bytes), kQuickstartOnesDigest)
      << "quickstart ONES trace digest changed; new digest: 0x" << std::hex
      << exp::fnv1a64(bytes);
}

TEST(GoldenTrace, QuickstartStreamSurvivesJsonlRoundTripAndReplay) {
  RecordBufferSink buffer;
  std::ostringstream out;
  JsonlSink jsonl(out);
  MultiSink both({&buffer, &jsonl});
  run_quickstart_ones(both);
  // The serialized stream parses back to the identical record sequence...
  EXPECT_EQ(parse_jsonl(out.str()), buffer.records());
  // ...and passes the structural invariant checker in both forms.
  const TraceReplayer replayer;
  const ReplayReport from_records = replayer.check(buffer.records());
  EXPECT_TRUE(from_records.ok()) << from_records.to_string();
  const ReplayReport from_jsonl = replayer.check_jsonl(out.str());
  EXPECT_TRUE(from_jsonl.ok()) << from_jsonl.to_string();
  EXPECT_EQ(from_jsonl.records, buffer.records().size());
}

TEST(ChromeSink, ProducesParseableTraceEventJson) {
  std::ostringstream out;
  {
    ChromeTraceSink chrome(out);
    RecordBufferSink buffer;
    MultiSink both({&chrome, &buffer});
    run_quickstart_ones(both);
    chrome.close();
  }
  const JsonValue v = parse_json(out.str());
  ASSERT_EQ(v.kind, JsonValue::Kind::Object);
  const JsonValue* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::Array);
  EXPECT_GT(events->array.size(), 100u);
  // Every event carries the mandatory phase field.
  for (const auto& e : events->array) {
    ASSERT_EQ(e.kind, JsonValue::Kind::Object);
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->kind, JsonValue::Kind::String);
  }
}

TEST(ChromeSink, RejectsRecordsAfterClose) {
  std::ostringstream out;
  ChromeTraceSink chrome(out);
  chrome.close();
  EXPECT_THROW(chrome.on_record(full_record()), std::logic_error);
}

class TempTraceDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ones-trace-test-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

using RunTraceWriterTest = TempTraceDir;

TEST_F(RunTraceWriterTest, PublishesBothFilesOnlyOnClose) {
  const fs::path jsonl = dir_ / "run.jsonl";
  const fs::path chrome = dir_ / "run.trace.json";
  {
    RunTraceWriter writer(dir_.string(), "run");
    writer.on_record(full_record());
    // Still streaming: the final names must not exist yet (atomic publish).
    EXPECT_FALSE(fs::exists(jsonl));
    EXPECT_FALSE(fs::exists(chrome));
    writer.close();
    EXPECT_TRUE(fs::exists(jsonl));
    EXPECT_TRUE(fs::exists(chrome));
  }
  std::ifstream in(jsonl);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(record_from_jsonl_line(line), full_record());
  EXPECT_FALSE(std::getline(in, line));  // exactly one record
}

TEST_F(RunTraceWriterTest, DestructorPublishesToo) {
  {
    RunTraceWriter writer(dir_.string(), "run");
    writer.on_record(full_record());
  }
  EXPECT_TRUE(fs::exists(dir_ / "run.jsonl"));
  EXPECT_TRUE(fs::exists(dir_ / "run.trace.json"));
}

TEST(ProtocolPhaseHook, ScalingSessionMilestonesBecomeRecords) {
  sim::SimEngine engine;
  cluster::TopologyConfig tc;
  tc.num_nodes = 2;
  tc.gpus_per_node = 4;
  const cluster::Topology topo(tc);
  const auto& profile = model::profile_by_name("ResNet50");
  elastic::ScalingRequest request;
  request.job = 5;
  request.old_workers = {0, 1};
  request.new_workers = {0, 1, 2, 3};
  request.old_global_batch = 256;
  request.new_global_batch = 512;
  elastic::ScalingReport report;
  bool done = false;
  elastic::ScalingSession session(engine, profile, topo, elastic::CostConfig{},
                                  request, [&](const elastic::ScalingReport& r) {
                                    report = r;
                                    done = true;
                                  });
  RecordBufferSink buffer;
  session.set_phase_hook(protocol_phase_hook(buffer, request.job));
  session.start();
  engine.run();
  ASSERT_TRUE(done);
  // One ProtocolPhase record per timeline entry, same order, same job.
  ASSERT_EQ(buffer.records().size(), report.timeline.size());
  ASSERT_GE(buffer.records().size(), 4u);  // Fig 12 has >= 4 milestones
  double prev_t = 0.0;
  for (const auto& r : buffer.records()) {
    EXPECT_EQ(r.kind, RecordKind::ProtocolPhase);
    EXPECT_EQ(r.job, request.job);
    EXPECT_FALSE(r.detail.empty());
    EXPECT_GE(r.t, prev_t);
    prev_t = r.t;
  }
  EXPECT_EQ(buffer.records().back().t, report.resumed_at);
}

}  // namespace
}  // namespace ones::trace
