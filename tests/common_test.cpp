// Unit tests for src/common: RNG determinism and distribution sanity,
// math utilities, and the expectation macros.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/expect.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"

namespace ones {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(Rng, GammaMomentsMatch) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.gamma(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 6.0, 0.15);           // shape * scale
  EXPECT_NEAR(stats.variance(), 12.0, 0.8);       // shape * scale^2
}

TEST(Rng, GammaSmallShape) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    const double g = rng.gamma(0.5, 1.0);
    ASSERT_GT(g, 0.0);
    stats.add(g);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.05);
}

TEST(Rng, BetaMeanMatches) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    const double b = rng.beta(2.0, 6.0);
    ASSERT_GT(b, 0.0);
    ASSERT_LT(b, 1.0);
    stats.add(b);
  }
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, PoissonMeanMatchesSmallAndLarge) {
  Rng rng(29);
  RunningStats small, large;
  for (int i = 0; i < 20000; ++i) small.add(static_cast<double>(rng.poisson(3.0)));
  for (int i = 0; i < 20000; ++i) large.add(static_cast<double>(rng.poisson(100.0)));
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 100.0, 0.5);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(31);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) counts[rng.weighted_index({1.0, 2.0, 7.0})]++;
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.2, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(37);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.weighted_index({0.0, 0.0, 0.0}));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, WeightedIndexRejectsNegative) {
  Rng rng(41);
  EXPECT_THROW(rng.weighted_index({1.0, -0.5}), std::logic_error);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(47);
  Rng child = a.fork();
  EXPECT_NE(a.next(), child.next());
}

TEST(MathUtil, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(2), 2);
  EXPECT_EQ(next_pow2(3), 4);
  EXPECT_EQ(next_pow2(1000), 1024);
}

TEST(MathUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(-4));
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
}

TEST(MathUtil, RunningStatsBasics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(MathUtil, QuantileInterpolates) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
}

TEST(MathUtil, MeanOf) {
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0, 6.0}), 4.0);
}

TEST(Expect, ThrowsWithMessage) {
  try {
    ONES_EXPECT_MSG(false, "specific detail");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("specific detail"), std::string::npos);
  }
}

TEST(Expect, PassesOnTrue) {
  EXPECT_NO_THROW(ONES_EXPECT(1 + 1 == 2));
}

}  // namespace
}  // namespace ones
