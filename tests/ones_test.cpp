// End-to-end tests of the ONES scheduler on the simulation driver:
// completion, elastic mechanism semantics, update pacing, responsiveness,
// predictor learning, and ablation configurations.
#include <gtest/gtest.h>

#include "core/ones_scheduler.hpp"
#include "sched/fifo.hpp"
#include "sched/simulation.hpp"
#include "telemetry/metrics.hpp"
#include "workload/trace.hpp"

namespace ones::core {
namespace {

sched::SimulationConfig sim_config(int nodes = 2) {
  sched::SimulationConfig c;
  c.topology.num_nodes = nodes;
  return c;
}

workload::TraceConfig trace_config(int jobs, double interarrival, std::uint64_t seed = 21) {
  workload::TraceConfig t;
  t.num_jobs = jobs;
  t.mean_interarrival_s = interarrival;
  t.seed = seed;
  return t;
}

TEST(OnesScheduler, CompletesAllJobs) {
  OnesScheduler ones_sched;
  sched::ClusterSimulation sim(sim_config(), workload::generate_trace(trace_config(12, 20)),
                               ones_sched);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  EXPECT_GT(ones_sched.evolution_rounds(), 0u);
}

TEST(OnesScheduler, UsesElasticMechanism) {
  OnesScheduler s;
  EXPECT_EQ(s.mechanism(), sched::ScalingMechanism::Elastic);
  EXPECT_EQ(s.name(), "ONES");
  EXPECT_DOUBLE_EQ(s.period_s(), 0.0);  // event-driven, not interval-based
}

TEST(OnesScheduler, ElasticBatchesActuallyGrow) {
  // With a lightly loaded cluster ONES should scale at least some jobs past
  // their submitted batch size — the core claim of the paper.
  OnesScheduler ones_sched;
  auto tc = trace_config(8, 60);
  const auto trace = workload::generate_trace(tc);
  sched::ClusterSimulation sim(sim_config(4), trace, ones_sched);
  sim.run();
  ASSERT_TRUE(sim.all_completed());
  int grew = 0;
  for (const auto& spec : trace) {
    const auto& v = sim.job_view(spec.id);
    for (const auto& e : v.epoch_log) {
      if (e.global_batch > spec.requested_batch) {
        ++grew;
        break;
      }
    }
  }
  EXPECT_GT(grew, 0);
}

TEST(OnesScheduler, BatchNeverExceedsGpuMemoryPerWorker) {
  OnesScheduler ones_sched;
  const auto trace = workload::generate_trace(trace_config(10, 15));
  sched::ClusterSimulation sim(sim_config(), trace, ones_sched);
  sim.run();
  // The driver validates every assignment; reaching completion proves no
  // memory violation was ever deployed.
  EXPECT_TRUE(sim.all_completed());
}

TEST(OnesScheduler, BatchGrowthIsGradual) {
  // No deployed re-configuration may more than double a job's batch
  // (the Fig 13 safeguard).
  OnesScheduler ones_sched;
  const auto trace = workload::generate_trace(trace_config(8, 30));
  sched::ClusterSimulation sim(sim_config(), trace, ones_sched);
  sim.run();
  for (const auto& spec : trace) {
    const auto& v = sim.job_view(spec.id);
    for (std::size_t i = 1; i < v.epoch_log.size(); ++i) {
      const int prev = v.epoch_log[i - 1].global_batch;
      const int cur = v.epoch_log[i].global_batch;
      if (prev > 0) {
        // Each re-configuration doubles at most; arrivals/completions can
        // trigger two deployments within one epoch, so allow 4x between
        // consecutive epoch boundaries.
        EXPECT_LE(cur, 4 * prev)
            << "job " << spec.id << " jumped " << prev << " -> " << cur;
      }
    }
  }
}

TEST(OnesScheduler, PredictorLearnsFromCompletions) {
  OnesScheduler ones_sched;
  sched::ClusterSimulation sim(sim_config(), workload::generate_trace(trace_config(12, 15)),
                               ones_sched);
  sim.run();
  EXPECT_TRUE(ones_sched.predictor().trained());
  EXPECT_GT(ones_sched.predictor().training_points(), 20u);
}

TEST(OnesScheduler, RespondsImmediatelyToArrivalsOnIdleCluster) {
  // A single job arriving to an empty cluster must start right away (no
  // rescheduling-interval wait — the §2.1 critique of interval schedulers).
  OnesScheduler ones_sched;
  auto tc = trace_config(1, 1000);
  sched::ClusterSimulation sim(sim_config(), workload::generate_trace(tc), ones_sched);
  sim.run();
  const auto& job = sim.metrics().job(0);
  EXPECT_LT(job.first_start_s - job.arrival_s, 1.0);
}

TEST(OnesScheduler, DeploysLessOftenThanItEvolves) {
  // The update condition paces deployments: many evolution rounds per
  // deployed schedule.
  OnesScheduler ones_sched;
  sched::ClusterSimulation sim(sim_config(), workload::generate_trace(trace_config(10, 10)),
                               ones_sched);
  sim.run();
  EXPECT_GT(ones_sched.evolution_rounds(), sim.deployments());
}

TEST(OnesScheduler, AblationNoPredictorStillCompletes) {
  OnesConfig cfg;
  cfg.use_predictor = false;
  OnesScheduler s(cfg);
  sched::ClusterSimulation sim(sim_config(), workload::generate_trace(trace_config(10, 15)),
                               s);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
  EXPECT_FALSE(s.predictor().trained());  // never fed
}

TEST(OnesScheduler, AblationOperatorsOffStillCompletes) {
  OnesConfig cfg;
  cfg.evolution.use_crossover = false;
  cfg.evolution.use_mutation = false;
  cfg.evolution.use_reorder = false;
  OnesScheduler s(cfg);
  sched::ClusterSimulation sim(sim_config(), workload::generate_trace(trace_config(10, 15)),
                               s);
  sim.run();
  EXPECT_TRUE(sim.all_completed());
}

TEST(OnesScheduler, BeatsFifoUnderContention) {
  // The headline claim, at test scale: contended cluster, ONES's average
  // JCT should not lose to FIFO gang scheduling.
  auto tc = trace_config(40, 5, 33);
  const auto trace = workload::generate_trace(tc);
  double ones_jct, fifo_jct;
  {
    OnesScheduler s;
    sched::ClusterSimulation sim(sim_config(4), trace, s);
    sim.run();
    EXPECT_TRUE(sim.all_completed());
    ones_jct = telemetry::summarize("o", sim.metrics(), 16).avg_jct;
  }
  {
    sched::FifoScheduler s;
    sched::ClusterSimulation sim(sim_config(4), trace, s);
    sim.run();
    fifo_jct = telemetry::summarize("f", sim.metrics(), 16).avg_jct;
  }
  EXPECT_LT(ones_jct, fifo_jct * 1.1);
}

TEST(OnesScheduler, DeterministicGivenSeeds) {
  const auto trace = workload::generate_trace(trace_config(10, 15));
  double a, b;
  {
    OnesScheduler s;
    sched::ClusterSimulation sim(sim_config(), trace, s);
    sim.run();
    a = telemetry::summarize("o", sim.metrics(), 8).avg_jct;
  }
  {
    OnesScheduler s;
    sched::ClusterSimulation sim(sim_config(), trace, s);
    sim.run();
    b = telemetry::summarize("o", sim.metrics(), 8).avg_jct;
  }
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace ones::core
