// Cross-module integration tests: all five schedulers on shared traces,
// metric consistency, mechanism cost differences, and scalability trends.
#include <gtest/gtest.h>

#include <memory>

#include "core/ones_scheduler.hpp"
#include "drl/drl_scheduler.hpp"
#include "sched/fifo.hpp"
#include "sched/optimus.hpp"
#include "sched/simulation.hpp"
#include "sched/srtf.hpp"
#include "sched/tiresias.hpp"
#include "telemetry/metrics.hpp"
#include "workload/trace.hpp"

namespace ones {
namespace {

sched::SimulationConfig sim_config(int nodes) {
  sched::SimulationConfig c;
  c.topology.num_nodes = nodes;
  return c;
}

workload::TraceConfig trace_config(int jobs, double interarrival, std::uint64_t seed) {
  workload::TraceConfig t;
  t.num_jobs = jobs;
  t.mean_interarrival_s = interarrival;
  t.seed = seed;
  return t;
}

std::vector<std::unique_ptr<sched::Scheduler>> all_schedulers() {
  std::vector<std::unique_ptr<sched::Scheduler>> v;
  v.push_back(std::make_unique<core::OnesScheduler>());
  v.push_back(std::make_unique<sched::FifoScheduler>());
  v.push_back(std::make_unique<sched::TiresiasScheduler>());
  v.push_back(std::make_unique<sched::OptimusScheduler>());
  v.push_back(std::make_unique<sched::SrtfOracleScheduler>());
  v.push_back(std::make_unique<drl::DrlScheduler>());
  return v;
}

TEST(Integration, EverySchedulerFinishesTheSharedTrace) {
  const auto trace = workload::generate_trace(trace_config(16, 12, 5));
  for (auto& s : all_schedulers()) {
    sched::ClusterSimulation sim(sim_config(2), trace, *s);
    sim.run();
    EXPECT_TRUE(sim.all_completed()) << s->name();
    EXPECT_EQ(sim.metrics().completed(), 16u) << s->name();
  }
}

TEST(Integration, MetricsAreInternallyConsistent) {
  const auto trace = workload::generate_trace(trace_config(12, 15, 6));
  for (auto& s : all_schedulers()) {
    sched::ClusterSimulation sim(sim_config(2), trace, *s);
    sim.run();
    for (const auto& spec : trace) {
      const auto& j = sim.metrics().job(spec.id);
      EXPECT_TRUE(j.completed()) << s->name();
      EXPECT_GE(j.first_start_s, j.arrival_s) << s->name();
      EXPECT_GE(j.completion_s, j.first_start_s) << s->name();
      EXPECT_GE(j.exec_time_s, 0.0) << s->name();
      EXPECT_GE(j.queue_time(), -1e-6) << s->name();
      EXPECT_NEAR(j.jct(), j.exec_time_s + j.queue_time(), 1e-6) << s->name();
    }
    const double util = sim.metrics().avg_utilization(sim.topology().total_gpus(),
                                                      sim.metrics().makespan());
    EXPECT_GT(util, 0.0) << s->name();
    EXPECT_LE(util, 1.0) << s->name();
  }
}

TEST(Integration, EveryJobTrainsToItsConvergenceRule) {
  // Regardless of the scheduler, each job must log >= patience epochs and
  // end with validation accuracy at/above target.
  const auto trace = workload::generate_trace(trace_config(10, 15, 7));
  for (auto& s : all_schedulers()) {
    sched::ClusterSimulation sim(sim_config(2), trace, *s);
    sim.run();
    for (const auto& spec : trace) {
      const auto& v = sim.job_view(spec.id);
      EXPECT_GE(v.epoch_log.size(), 10u) << s->name();
      EXPECT_GE(v.epoch_log.back().val_accuracy,
                v.profile->target_accuracy - 0.02)
          << s->name() << " job " << spec.id;
    }
  }
}

TEST(Integration, ElasticMechanismBeatsCheckpointForSamePolicy) {
  // Run ONES's policy with both mechanisms: the elastic runtime must not be
  // slower overall (it re-configures at ~1 s instead of tens of seconds).
  class CheckpointOnes : public core::OnesScheduler {
   public:
    using core::OnesScheduler::OnesScheduler;
    std::string name() const override { return "ONES-ckpt"; }
    sched::ScalingMechanism mechanism() const override {
      return sched::ScalingMechanism::Checkpoint;
    }
  };
  const auto trace = workload::generate_trace(trace_config(20, 8, 8));
  double elastic_jct, ckpt_jct;
  {
    core::OnesScheduler s;
    sched::ClusterSimulation sim(sim_config(2), trace, s);
    sim.run();
    elastic_jct = telemetry::summarize("e", sim.metrics(), 8).avg_jct;
  }
  {
    CheckpointOnes s;
    sched::ClusterSimulation sim(sim_config(2), trace, s);
    sim.run();
    ckpt_jct = telemetry::summarize("c", sim.metrics(), 8).avg_jct;
  }
  EXPECT_LT(elastic_jct, ckpt_jct);
}

TEST(Integration, MoreGpusReduceAverageJct) {
  // The Fig 17 scalability trend, at test scale, for ONES and Tiresias.
  const auto trace = workload::generate_trace(trace_config(24, 6, 9));
  for (int pass = 0; pass < 2; ++pass) {
    double jct_small, jct_large;
    {
      std::unique_ptr<sched::Scheduler> s;
      if (pass == 0) {
        s = std::make_unique<core::OnesScheduler>();
      } else {
        s = std::make_unique<sched::TiresiasScheduler>();
      }
      sched::ClusterSimulation sim(sim_config(1), trace, *s);
      sim.run();
      jct_small = telemetry::summarize("s", sim.metrics(), 4).avg_jct;
    }
    {
      std::unique_ptr<sched::Scheduler> s;
      if (pass == 0) {
        s = std::make_unique<core::OnesScheduler>();
      } else {
        s = std::make_unique<sched::TiresiasScheduler>();
      }
      sched::ClusterSimulation sim(sim_config(4), trace, *s);
      sim.run();
      jct_large = telemetry::summarize("l", sim.metrics(), 16).avg_jct;
    }
    EXPECT_LT(jct_large, jct_small) << "pass " << pass;
  }
}

TEST(Integration, OptimusQueuingReflectsRoundBasedDesign) {
  // Round-based rescheduling: with arrivals spread uniformly, average
  // queuing should be on the order of half the 600 s interval or more.
  sched::OptimusScheduler optimus;
  const auto trace = workload::generate_trace(trace_config(16, 30, 10));
  sched::ClusterSimulation sim(sim_config(4), trace, optimus);
  sim.run();
  double total_queue = 0.0;
  for (double q : sim.metrics().queue_times()) total_queue += q;
  EXPECT_GT(total_queue / 16.0, 100.0);
}

TEST(Integration, SimulationRespectsMaxSimTime) {
  // A scheduler that never schedules strands the work; the driver must end
  // at the time limit without hanging or throwing.
  class NullScheduler : public sched::Scheduler {
   public:
    std::string name() const override { return "Null"; }
    std::optional<cluster::Assignment> on_event(const sched::ClusterState&,
                                                const sched::SchedulerEvent&) override {
      return std::nullopt;
    }
  };
  NullScheduler null_sched;
  auto cfg = sim_config(1);
  cfg.max_sim_time_s = 1000.0;
  sched::ClusterSimulation sim(cfg, workload::generate_trace(trace_config(4, 10, 11)),
                               null_sched);
  sim.run();
  EXPECT_FALSE(sim.all_completed());
  EXPECT_EQ(sim.completed_jobs(), 0u);
}

}  // namespace
}  // namespace ones
