// Unit tests for src/elastic: the scaling cost models (Fig 16 shape) and
// the discrete-event scaling protocol (Figs 11/12 flow).
#include <gtest/gtest.h>

#include "cluster/topology.hpp"
#include "elastic/cost_model.hpp"
#include "elastic/protocol.hpp"
#include "model/task.hpp"
#include "sim/engine.hpp"

namespace ones::elastic {
namespace {

cluster::Topology small_topology() {
  cluster::TopologyConfig c;
  c.num_nodes = 2;
  c.gpus_per_node = 4;
  return cluster::Topology(c);
}

cluster::LinkProfile nvlink() { return {130.0e9, 5e-6}; }

TEST(CostModel, ElasticCostIsAboutASecond) {
  ScalingCostModel m;
  for (const auto& p : model::builtin_profiles()) {
    const double cost = m.elastic_cost_s(p, 2, 4, nvlink());
    EXPECT_GT(cost, 0.1) << p.name;
    EXPECT_LT(cost, 3.0) << p.name;  // "basically around 1 second" (§4.3)
  }
}

TEST(CostModel, CheckpointCostIsTensOfSeconds) {
  ScalingCostModel m;
  for (const auto& p : model::builtin_profiles()) {
    const double cost = m.checkpoint_cost_s(p, 4);
    EXPECT_GT(cost, 15.0) << p.name;   // "greater than 20 seconds" for most
    EXPECT_LT(cost, 120.0) << p.name;
  }
}

TEST(CostModel, CheckpointDwarfsElastic) {
  // The headline of Fig 16: at least an order of magnitude apart.
  ScalingCostModel m;
  for (const auto& p : model::builtin_profiles()) {
    EXPECT_GT(m.checkpoint_cost_s(p, 4) / m.elastic_cost_s(p, 2, 4, nvlink()), 10.0)
        << p.name;
  }
}

TEST(CostModel, BiggerModelsCostMoreToCheckpoint) {
  ScalingCostModel m;
  const auto& vgg = model::profile_by_name("VGG16");       // 552 MB
  const auto& gnet = model::profile_by_name("GoogleNet");  // 26 MB
  EXPECT_GT(m.checkpoint_cost_s(vgg, 2), m.checkpoint_cost_s(gnet, 2));
}

TEST(CostModel, GrowingChargesBroadcastShrinkingDoesNot) {
  ScalingCostModel m;
  const auto& p = model::profile_by_name("VGG16");
  const double grow = m.elastic_cost_s(p, 2, 4, nvlink());
  const double shrink = m.elastic_cost_s(p, 4, 2, nvlink());
  EXPECT_GT(grow, shrink);
}

TEST(CostModel, ColdStartBetweenElasticAndCheckpoint) {
  ScalingCostModel m;
  const auto& p = model::profile_by_name("ResNet50");
  const double cold = m.cold_start_cost_s(p);
  EXPECT_GT(cold, m.elastic_cost_s(p, 1, 1, nvlink()));
  EXPECT_LT(cold, m.checkpoint_cost_s(p, 1));
}

ScalingRequest grow_request() {
  ScalingRequest r;
  r.job = 1;
  r.old_workers = {0, 1};
  r.new_workers = {0, 1, 2, 3};
  r.old_global_batch = 512;
  r.new_global_batch = 1024;
  return r;
}

TEST(Protocol, ElasticSessionPhasesAreOrdered) {
  sim::SimEngine engine;
  const auto topo = small_topology();
  const auto& p = model::profile_by_name("ResNet50");
  ScalingReport report;
  bool done = false;
  ScalingSession session(engine, p, topo, CostConfig{}, grow_request(),
                         [&](const ScalingReport& r) {
                           report = r;
                           done = true;
                         });
  session.start();
  engine.run();
  ASSERT_TRUE(done);
  EXPECT_LE(report.started_at, report.new_workers_ready_at);
  EXPECT_LE(report.new_workers_ready_at, report.paused_at);
  EXPECT_LT(report.paused_at, report.resumed_at);
  EXPECT_DOUBLE_EQ(report.blocked_s, report.resumed_at - report.paused_at);
  EXPECT_FALSE(report.timeline.empty());
}

TEST(Protocol, BackgroundInitOverlapsTraining) {
  // The job is only blocked from pause to resume; the (much longer) new
  // worker initialization overlaps with training (Fig 12).
  sim::SimEngine engine;
  const auto topo = small_topology();
  const auto& p = model::profile_by_name("BERT");  // heavyweight init
  ScalingReport report;
  ScalingSession session(engine, p, topo, CostConfig{}, grow_request(),
                         [&](const ScalingReport& r) { report = r; });
  session.start();
  engine.run();
  EXPECT_LT(report.blocked_s, 2.5);
  EXPECT_GT(report.total_s, report.blocked_s * 2.0);
}

TEST(Protocol, ShrinkSkipsInitAndBroadcast) {
  sim::SimEngine engine;
  const auto topo = small_topology();
  const auto& p = model::profile_by_name("ResNet50");
  ScalingRequest r;
  r.job = 1;
  r.old_workers = {0, 1, 2, 3};
  r.new_workers = {0, 1};
  r.old_global_batch = 1024;
  r.new_global_batch = 512;
  ScalingReport report;
  ScalingSession session(engine, p, topo, CostConfig{}, r,
                         [&](const ScalingReport& rep) { report = rep; });
  session.start();
  engine.run();
  // No background init: the session starts draining immediately.
  EXPECT_DOUBLE_EQ(report.new_workers_ready_at, report.started_at);
  EXPECT_LT(report.blocked_s, 1.5);
}

TEST(Protocol, CheckpointMigrationBlocksEndToEnd) {
  sim::SimEngine engine;
  const auto& p = model::profile_by_name("VGG16");
  const auto report = run_checkpoint_migration(engine, p, CostConfig{}, grow_request());
  EXPECT_DOUBLE_EQ(report.blocked_s, report.total_s);
  EXPECT_GT(report.blocked_s, 20.0);
  EXPECT_GE(report.timeline.size(), 5u);
}

TEST(Protocol, ElasticBlockedMatchesCostModelScale) {
  // The fast cost model and the event-by-event protocol must agree on the
  // order of magnitude of blocked time.
  sim::SimEngine engine;
  const auto topo = small_topology();
  const auto& p = model::profile_by_name("ResNet50");
  ScalingCostModel m;
  ScalingReport report;
  ScalingSession session(engine, p, topo, CostConfig{}, grow_request(),
                         [&](const ScalingReport& r) { report = r; });
  session.start();
  engine.run();
  const double model_cost = m.elastic_cost_s(p, 2, 4, topo.link_profile({0, 1, 2, 3}));
  EXPECT_LT(std::abs(report.blocked_s - model_cost), 1.0);
}

TEST(Protocol, PhaseNamesAreStable) {
  EXPECT_STREQ(phase_name(WorkerPhase::Idle), "idle");
  EXPECT_STREQ(phase_name(WorkerPhase::Training), "training");
  EXPECT_STREQ(phase_name(WorkerPhase::Running), "running");
}

}  // namespace
}  // namespace ones::elastic
