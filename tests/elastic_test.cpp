// Unit tests for src/elastic: the scaling cost models (Fig 16 shape) and
// the discrete-event scaling protocol (Figs 11/12 flow).
#include <gtest/gtest.h>

#include "cluster/topology.hpp"
#include "elastic/cost_model.hpp"
#include "elastic/protocol.hpp"
#include "model/task.hpp"
#include "sim/engine.hpp"

namespace ones::elastic {
namespace {

cluster::Topology small_topology() {
  cluster::TopologyConfig c;
  c.num_nodes = 2;
  c.gpus_per_node = 4;
  return cluster::Topology(c);
}

cluster::LinkProfile nvlink() { return {130.0e9, 5e-6}; }

TEST(CostModel, ElasticCostIsAboutASecond) {
  ScalingCostModel m;
  for (const auto& p : model::builtin_profiles()) {
    const double cost = m.elastic_cost_s(p, 2, 4, nvlink());
    EXPECT_GT(cost, 0.1) << p.name;
    EXPECT_LT(cost, 3.0) << p.name;  // "basically around 1 second" (§4.3)
  }
}

TEST(CostModel, CheckpointCostIsTensOfSeconds) {
  ScalingCostModel m;
  for (const auto& p : model::builtin_profiles()) {
    const double cost = m.checkpoint_cost_s(p, 4);
    EXPECT_GT(cost, 15.0) << p.name;   // "greater than 20 seconds" for most
    EXPECT_LT(cost, 120.0) << p.name;
  }
}

TEST(CostModel, CheckpointDwarfsElastic) {
  // The headline of Fig 16: at least an order of magnitude apart.
  ScalingCostModel m;
  for (const auto& p : model::builtin_profiles()) {
    EXPECT_GT(m.checkpoint_cost_s(p, 4) / m.elastic_cost_s(p, 2, 4, nvlink()), 10.0)
        << p.name;
  }
}

TEST(CostModel, BiggerModelsCostMoreToCheckpoint) {
  ScalingCostModel m;
  const auto& vgg = model::profile_by_name("VGG16");       // 552 MB
  const auto& gnet = model::profile_by_name("GoogleNet");  // 26 MB
  EXPECT_GT(m.checkpoint_cost_s(vgg, 2), m.checkpoint_cost_s(gnet, 2));
}

TEST(CostModel, GrowingChargesBroadcastShrinkingDoesNot) {
  ScalingCostModel m;
  const auto& p = model::profile_by_name("VGG16");
  const double grow = m.elastic_cost_s(p, 2, 4, nvlink());
  const double shrink = m.elastic_cost_s(p, 4, 2, nvlink());
  EXPECT_GT(grow, shrink);
}

TEST(CostModel, ColdStartBetweenElasticAndCheckpoint) {
  ScalingCostModel m;
  const auto& p = model::profile_by_name("ResNet50");
  const double cold = m.cold_start_cost_s(p);
  EXPECT_GT(cold, m.elastic_cost_s(p, 1, 1, nvlink()));
  EXPECT_LT(cold, m.checkpoint_cost_s(p, 1));
}

ScalingRequest grow_request() {
  ScalingRequest r;
  r.job = 1;
  r.old_workers = {0, 1};
  r.new_workers = {0, 1, 2, 3};
  r.old_global_batch = 512;
  r.new_global_batch = 1024;
  return r;
}

TEST(Protocol, ElasticSessionPhasesAreOrdered) {
  sim::SimEngine engine;
  const auto topo = small_topology();
  const auto& p = model::profile_by_name("ResNet50");
  ScalingReport report;
  bool done = false;
  ScalingSession session(engine, p, topo, CostConfig{}, grow_request(),
                         [&](const ScalingReport& r) {
                           report = r;
                           done = true;
                         });
  session.start();
  engine.run();
  ASSERT_TRUE(done);
  EXPECT_LE(report.started_at, report.new_workers_ready_at);
  EXPECT_LE(report.new_workers_ready_at, report.paused_at);
  EXPECT_LT(report.paused_at, report.resumed_at);
  EXPECT_DOUBLE_EQ(report.blocked_s, report.resumed_at - report.paused_at);
  EXPECT_FALSE(report.timeline.empty());
}

TEST(Protocol, BackgroundInitOverlapsTraining) {
  // The job is only blocked from pause to resume; the (much longer) new
  // worker initialization overlaps with training (Fig 12).
  sim::SimEngine engine;
  const auto topo = small_topology();
  const auto& p = model::profile_by_name("BERT");  // heavyweight init
  ScalingReport report;
  ScalingSession session(engine, p, topo, CostConfig{}, grow_request(),
                         [&](const ScalingReport& r) { report = r; });
  session.start();
  engine.run();
  EXPECT_LT(report.blocked_s, 2.5);
  EXPECT_GT(report.total_s, report.blocked_s * 2.0);
}

TEST(Protocol, ShrinkSkipsInitAndBroadcast) {
  sim::SimEngine engine;
  const auto topo = small_topology();
  const auto& p = model::profile_by_name("ResNet50");
  ScalingRequest r;
  r.job = 1;
  r.old_workers = {0, 1, 2, 3};
  r.new_workers = {0, 1};
  r.old_global_batch = 1024;
  r.new_global_batch = 512;
  ScalingReport report;
  ScalingSession session(engine, p, topo, CostConfig{}, r,
                         [&](const ScalingReport& rep) { report = rep; });
  session.start();
  engine.run();
  // No background init: the session starts draining immediately.
  EXPECT_DOUBLE_EQ(report.new_workers_ready_at, report.started_at);
  EXPECT_LT(report.blocked_s, 1.5);
}

TEST(Protocol, CheckpointMigrationBlocksEndToEnd) {
  sim::SimEngine engine;
  const auto& p = model::profile_by_name("VGG16");
  const auto report = run_checkpoint_migration(engine, p, CostConfig{}, grow_request());
  EXPECT_DOUBLE_EQ(report.blocked_s, report.total_s);
  EXPECT_GT(report.blocked_s, 20.0);
  EXPECT_GE(report.timeline.size(), 5u);
}

TEST(Protocol, ElasticBlockedMatchesCostModelScale) {
  // The fast cost model and the event-by-event protocol must agree on the
  // order of magnitude of blocked time.
  sim::SimEngine engine;
  const auto topo = small_topology();
  const auto& p = model::profile_by_name("ResNet50");
  ScalingCostModel m;
  ScalingReport report;
  ScalingSession session(engine, p, topo, CostConfig{}, grow_request(),
                         [&](const ScalingReport& r) { report = r; });
  session.start();
  engine.run();
  const double model_cost = m.elastic_cost_s(p, 2, 4, topo.link_profile({0, 1, 2, 3}));
  EXPECT_LT(std::abs(report.blocked_s - model_cost), 1.0);
}

TEST(Protocol, PhaseNamesAreStable) {
  EXPECT_STREQ(phase_name(WorkerPhase::Idle), "idle");
  EXPECT_STREQ(phase_name(WorkerPhase::Training), "training");
  EXPECT_STREQ(phase_name(WorkerPhase::Running), "running");
}

/// Run `request` to completion with no losses and return the report — the
/// reference timing the worker-loss tests schedule against.
ScalingReport clean_run(const ScalingRequest& request,
                        const model::TaskProfile& p = model::profile_by_name("ResNet50")) {
  sim::SimEngine engine;
  const auto topo = small_topology();
  ScalingReport report;
  ScalingSession session(engine, p, topo, CostConfig{}, request,
                         [&](const ScalingReport& r) { report = r; });
  session.start();
  engine.run();
  return report;
}

/// Run `request` with one worker lost at `when`, asserting the session is in
/// `expected_phase` at the loss.
ScalingReport lossy_run(const ScalingRequest& request, GpuId lost, double when,
                        ScalingSession::SessionPhase expected_phase) {
  sim::SimEngine engine;
  const auto topo = small_topology();
  const auto& p = model::profile_by_name("ResNet50");
  ScalingReport report;
  bool done = false;
  ScalingSession session(engine, p, topo, CostConfig{}, request,
                         [&](const ScalingReport& r) {
                           report = r;
                           done = true;
                         });
  session.start();
  engine.schedule_at(when, [&] {
    EXPECT_EQ(session.phase(), expected_phase);
    session.on_worker_lost(lost);
  });
  engine.run();
  EXPECT_TRUE(done);
  return report;
}

TEST(ProtocolWorkerLoss, LossDuringDrainDropsWorkerAndConverges) {
  const auto clean = clean_run(grow_request());
  // Mid-drain: after the new workers are ready, before the pause lands.
  const double when = 0.5 * (clean.new_workers_ready_at + clean.paused_at);
  const auto report = lossy_run(grow_request(), /*lost=*/3, when,
                                ScalingSession::SessionPhase::Draining);
  EXPECT_FALSE(report.rolled_back);
  EXPECT_EQ(report.workers_lost, 1);
  // The survivors' reconnect has one fewer worker, so the session can only
  // resume at or before the clean run.
  EXPECT_LE(report.resumed_at, clean.resumed_at);
  EXPECT_GT(report.resumed_at, report.paused_at);
}

TEST(ProtocolWorkerLoss, LossDuringReconnectReformsTopology) {
  const auto clean = clean_run(grow_request());
  // Just after the pause: the reconnect stage is in flight.
  const double when = clean.paused_at + 1e-3;
  const auto report = lossy_run(grow_request(), /*lost=*/2, when,
                                ScalingSession::SessionPhase::Reconnecting);
  EXPECT_FALSE(report.rolled_back);
  EXPECT_EQ(report.workers_lost, 1);
  bool reformed = false;
  for (const auto& line : report.timeline) {
    if (line.find("re-form") != std::string::npos) reformed = true;
  }
  EXPECT_TRUE(reformed);
  EXPECT_GT(report.resumed_at, report.paused_at);
}

TEST(ProtocolWorkerLoss, LossDuringBroadcastRestartsFromReconnect) {
  const auto clean = clean_run(grow_request());
  // The broadcast is the last stage before resume; land inside it.
  const auto topo = small_topology();
  const auto& p = model::profile_by_name("ResNet50");
  const double bcast =
      p.params_bytes / topo.link_profile({0, 1, 2, 3}).bandwidth_Bps;
  const double when = clean.resumed_at - 0.5 * bcast;
  const auto report = lossy_run(grow_request(), /*lost=*/3, when,
                                ScalingSession::SessionPhase::Receiving);
  EXPECT_FALSE(report.rolled_back);
  EXPECT_EQ(report.workers_lost, 1);
  // A near-complete session redoes reconnect + broadcast on the survivors.
  EXPECT_GT(report.resumed_at, clean.resumed_at);
}

TEST(ProtocolWorkerLoss, LosingEveryTargetWorkerRollsBack) {
  sim::SimEngine engine;
  const auto topo = small_topology();
  const auto& p = model::profile_by_name("ResNet50");
  ScalingRequest r;
  r.job = 1;
  r.old_workers = {0, 1, 2, 3};
  r.new_workers = {0, 1};  // pure shrink
  r.old_global_batch = 1024;
  r.new_global_batch = 512;
  ScalingReport report;
  bool done = false;
  ScalingSession session(engine, p, topo, CostConfig{}, r,
                         [&](const ScalingReport& rep) {
                           report = rep;
                           done = true;
                         });
  session.start();
  const double when = 0.05;  // mid-drain (shrink: no init stage)
  engine.schedule_at(when, [&] {
    session.on_worker_lost(0);
    session.on_worker_lost(1);
  });
  engine.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(report.rolled_back);
  EXPECT_EQ(report.workers_lost, 2);
  EXPECT_EQ(session.phase(), ScalingSession::SessionPhase::RolledBack);
  EXPECT_DOUBLE_EQ(report.resumed_at, when);
}

TEST(ProtocolWorkerLoss, UninvolvedGpuLossIsANoOp) {
  const auto clean = clean_run(grow_request());
  const double when = 0.5 * (clean.new_workers_ready_at + clean.paused_at);
  sim::SimEngine engine;
  const auto topo = small_topology();
  const auto& p = model::profile_by_name("ResNet50");
  ScalingReport report;
  ScalingSession session(engine, p, topo, CostConfig{}, grow_request(),
                         [&](const ScalingReport& r) { report = r; });
  session.start();
  engine.schedule_at(when, [&] { session.on_worker_lost(7); });  // not in session
  engine.run();
  EXPECT_EQ(report.workers_lost, 0);
  EXPECT_DOUBLE_EQ(report.resumed_at, clean.resumed_at);
  EXPECT_DOUBLE_EQ(report.blocked_s, clean.blocked_s);
}

TEST(ProtocolWorkerLoss, LossyRunsAreDeterministic) {
  const auto clean = clean_run(grow_request());
  const double when = clean.paused_at + 1e-3;
  const auto a = lossy_run(grow_request(), 2, when,
                           ScalingSession::SessionPhase::Reconnecting);
  const auto b = lossy_run(grow_request(), 2, when,
                           ScalingSession::SessionPhase::Reconnecting);
  EXPECT_DOUBLE_EQ(a.resumed_at, b.resumed_at);
  EXPECT_DOUBLE_EQ(a.blocked_s, b.blocked_s);
  EXPECT_EQ(a.timeline, b.timeline);
}

}  // namespace
}  // namespace ones::elastic
