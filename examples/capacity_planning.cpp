// Capacity planning what-if: given an expected workload (arrival rate and
// Table 2 job mix), how many GPUs does the cluster need so that the average
// JCT under ONES meets an SLO? Sweeps cluster sizes and reports the
// smallest one that qualifies — the kind of question the paper's
// scalability analysis (Fig 17) lets an operator answer.
//
// Usage: capacity_planning [jobs] [interarrival_s] [slo_avg_jct_s]
#include <cstdio>
#include <cstdlib>

#include "core/ones_scheduler.hpp"
#include "sched/simulation.hpp"
#include "telemetry/metrics.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace ones;
  workload::TraceConfig tc;
  tc.num_jobs = argc > 1 ? std::atoi(argv[1]) : 60;
  tc.mean_interarrival_s = argc > 2 ? std::atof(argv[2]) : 10.0;
  const double slo = argc > 3 ? std::atof(argv[3]) : 600.0;
  tc.seed = 2026;
  const auto trace = workload::generate_trace(tc);

  std::printf("Capacity planning: %d jobs, mean inter-arrival %.1fs, "
              "SLO avg JCT <= %.0fs (scheduler: ONES)\n\n",
              tc.num_jobs, tc.mean_interarrival_s, slo);
  std::printf("%6s %10s %10s %10s %8s %8s\n", "GPUs", "avgJCT", "avgExec", "avgQueue",
              "p90JCT", "util");

  int chosen = -1;
  for (int nodes : {2, 3, 4, 6, 8, 12, 16}) {
    sched::SimulationConfig config;
    config.topology.num_nodes = nodes;
    core::OnesScheduler scheduler;
    sched::ClusterSimulation sim(config, trace, scheduler);
    sim.run();
    const auto s = sim.summary("ONES");
    std::printf("%6d %10.1f %10.1f %10.1f %8.1f %7.1f%%\n", nodes * 4, s.avg_jct,
                s.avg_exec, s.avg_queue, s.p90_jct, 100.0 * s.utilization);
    if (chosen < 0 && sim.all_completed() && s.avg_jct <= slo) {
      chosen = nodes * 4;
      // Keep sweeping to show the diminishing returns beyond the knee.
    }
  }

  if (chosen > 0) {
    std::printf("\n=> smallest cluster meeting the SLO: %d GPUs\n", chosen);
  } else {
    std::printf("\n=> no swept capacity meets the SLO; consider relaxing it or "
                "lowering the arrival rate\n");
  }
  return 0;
}
