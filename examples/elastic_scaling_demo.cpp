// Elastic batch size scaling walkthrough (paper §3.3, Figures 11 & 12).
//
// Simulates one re-configuration of a running ResNet50 job from 2 workers /
// batch 384 to 4 workers / batch 768, twice:
//   1. with ONES's elastic mechanism — new workers initialize in the
//      background, previous workers drain one step, everyone reconnects and
//      the parameters are broadcast (job blocked ~1 s);
//   2. with checkpoint-based migration — stop, save to HDFS, restart,
//      reload (job blocked tens of seconds).
#include <cstdio>

#include "cluster/topology.hpp"
#include "elastic/cost_model.hpp"
#include "elastic/protocol.hpp"
#include "model/task.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace ones;
  const cluster::Topology topo(cluster::TopologyConfig{});
  const elastic::CostConfig costs;
  const auto& profile = model::profile_by_name("ResNet50");

  elastic::ScalingRequest request;
  request.job = 17;
  request.old_workers = {0, 1};
  request.new_workers = {0, 1, 2, 3};
  request.old_global_batch = 384;
  request.new_global_batch = 768;

  std::printf("Re-configuring %s: %zu -> %zu workers, batch %d -> %d\n\n",
              profile.name.c_str(), request.old_workers.size(),
              request.new_workers.size(), request.old_global_batch,
              request.new_global_batch);

  std::printf("=== Elastic batch size scaling (ONES mechanism) ===\n");
  {
    sim::SimEngine engine;
    elastic::ScalingReport report;
    elastic::ScalingSession session(engine, profile, topo, costs, request,
                                    [&](const elastic::ScalingReport& r) { report = r; });
    session.start();
    engine.run();
    for (const auto& line : report.timeline) std::printf("  %s\n", line.c_str());
    std::printf("\n  new workers initialized in the background for %.2f s "
                "(overlapped with training)\n",
                report.new_workers_ready_at - report.started_at);
    std::printf("  training blocked for only %.2f s\n\n", report.blocked_s);
  }

  std::printf("=== Checkpoint-based migration (common practice) ===\n");
  {
    sim::SimEngine engine;
    const auto report = elastic::run_checkpoint_migration(engine, profile, costs, request);
    for (const auto& line : report.timeline) std::printf("  %s\n", line.c_str());
    std::printf("\n  training blocked for %.2f s\n\n", report.blocked_s);
  }

  const elastic::ScalingCostModel model_costs(costs);
  std::printf("Fast cost model (used inside the trace simulations):\n");
  std::printf("  elastic   : %.2f s\n",
              model_costs.elastic_cost_s(profile, 2, 4,
                                         topo.link_profile(request.new_workers)));
  std::printf("  checkpoint: %.2f s\n", model_costs.checkpoint_cost_s(profile, 4));
  return 0;
}
