// Online progress prediction demo (paper §3.2.1, Figure 6).
//
// Runs a warm-up trace under ONES so the Beta-regression predictor learns
// from completed jobs, then shows — for one in-flight job replayed epoch by
// epoch — the predicted progress distribution's mean and 90% credible
// interval against the true progress known in hindsight.
#include <algorithm>
#include <cstdio>

#include "core/ones_scheduler.hpp"
#include "predict/progress_predictor.hpp"
#include "sched/simulation.hpp"
#include "workload/trace.hpp"

int main() {
  using namespace ones;

  // Phase 1: run a trace so the predictor accumulates completed-job history.
  workload::TraceConfig tc;
  tc.num_jobs = 40;
  tc.mean_interarrival_s = 12.0;
  tc.seed = 99;
  const auto trace = workload::generate_trace(tc);
  sched::SimulationConfig config;
  config.topology.num_nodes = 4;

  core::OnesScheduler scheduler;
  sched::ClusterSimulation sim(config, trace, scheduler);
  sim.run();
  const auto& predictor = scheduler.predictor();
  std::printf("Predictor trained on %zu data points from %zu completed jobs "
              "(bounded reservoir)\n\n",
              predictor.training_points(), sim.completed_jobs());

  // Phase 2: replay one job's history through the trained predictor.
  // Pick the completed job with the most epochs for an interesting curve.
  JobId subject = trace.front().id;
  std::size_t best_len = 0;
  for (const auto& spec : trace) {
    const auto& v = sim.job_view(spec.id);
    if (v.epoch_log.size() > best_len) {
      best_len = v.epoch_log.size();
      subject = spec.id;
    }
  }
  const auto& final_view = sim.job_view(subject);
  const double total_samples = final_view.epoch_log.back().samples_processed;
  std::printf("Online prediction for job %lld (%s on %s, %d epochs total):\n\n",
              static_cast<long long>(subject),
              final_view.spec.variant.model_name.c_str(),
              final_view.spec.variant.dataset.c_str(), final_view.epochs_completed);
  std::printf("%6s %12s %12s %22s %10s\n", "epoch", "true rho", "mean rho",
              "90% credible interval", "covered?");

  int covered = 0, total = 0;
  for (std::size_t e = 0; e < final_view.epoch_log.size(); e += 2) {
    sched::JobView past = final_view;
    past.status = sched::JobStatus::Running;
    past.epoch_log.resize(e + 1);
    past.epochs_completed = static_cast<int>(e + 1);
    past.samples_processed = past.epoch_log.back().samples_processed;
    past.train_loss = past.epoch_log.back().train_loss;
    past.val_accuracy = past.epoch_log.back().val_accuracy;

    const auto dist = predictor.predict(past);
    const auto [lo, hi] = dist.credible_interval(0.9);
    const double true_rho =
        std::clamp(past.samples_processed / total_samples, 0.0, 1.0);
    const bool in = true_rho >= lo && true_rho <= hi;
    covered += in ? 1 : 0;
    ++total;
    std::printf("%6zu %12.3f %12.3f        [%.3f, %.3f] %10s\n", e + 1, true_rho,
                dist.mean(), lo, hi, in ? "yes" : "no");
  }
  std::printf("\n90%% interval empirical coverage on this job: %.0f%% (%d/%d)\n",
              100.0 * covered / std::max(total, 1), covered, total);
  std::printf("Derived remaining workload at mid-training (Eq. 7): %.0f samples\n",
              predictor.expected_remaining_samples(final_view));
  return 0;
}
