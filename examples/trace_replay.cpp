// Trace replay: run a Table 2 workload trace on a simulated GPU cluster
// under any of the implemented schedulers and report per-job and aggregate
// scheduling metrics. This is the "cluster operator" view of the library.
//
// Usage:
//   trace_replay [scheduler] [jobs] [interarrival_s] [nodes] [seed]
//   scheduler in {ones, ones-sa, fifo, tiresias, optimus, srtf, drl, gandiva};
//   default ones.
//
// Example:
//   ./build/examples/trace_replay ones 80 8 8 42
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "core/annealing.hpp"
#include "core/ones_scheduler.hpp"
#include "drl/drl_scheduler.hpp"
#include "sched/fifo.hpp"
#include "sched/gandiva.hpp"
#include "sched/optimus.hpp"
#include "sched/simulation.hpp"
#include "sched/srtf.hpp"
#include "sched/tiresias.hpp"
#include "telemetry/metrics.hpp"
#include "workload/trace.hpp"

using namespace ones;

namespace {

std::unique_ptr<sched::Scheduler> make_scheduler(const char* name) {
  if (!std::strcmp(name, "ones")) return std::make_unique<core::OnesScheduler>();
  if (!std::strcmp(name, "ones-sa")) return std::make_unique<core::AnnealingScheduler>();
  if (!std::strcmp(name, "gandiva")) return std::make_unique<sched::GandivaScheduler>();
  if (!std::strcmp(name, "fifo")) return std::make_unique<sched::FifoScheduler>();
  if (!std::strcmp(name, "tiresias")) return std::make_unique<sched::TiresiasScheduler>();
  if (!std::strcmp(name, "optimus")) return std::make_unique<sched::OptimusScheduler>();
  if (!std::strcmp(name, "srtf")) return std::make_unique<sched::SrtfOracleScheduler>();
  if (!std::strcmp(name, "drl")) {
    auto drl = std::make_unique<drl::DrlScheduler>();
    std::printf("training the DRL policy offline...\n");
    drl->train();
    return drl;
  }
  std::fprintf(stderr, "unknown scheduler '%s'\n", name);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const char* which = argc > 1 ? argv[1] : "ones";
  workload::TraceConfig tc;
  tc.num_jobs = argc > 2 ? std::atoi(argv[2]) : 80;
  tc.mean_interarrival_s = argc > 3 ? std::atof(argv[3]) : 8.0;
  const int nodes = argc > 4 ? std::atoi(argv[4]) : 8;
  tc.seed = argc > 5 ? static_cast<std::uint64_t>(std::atoll(argv[5])) : 42;

  sched::SimulationConfig config;
  config.topology.num_nodes = nodes;

  const auto trace = workload::generate_trace(tc);
  auto scheduler = make_scheduler(which);

  std::printf("Replaying %d jobs (mean inter-arrival %.1fs, seed %llu) on %d GPUs "
              "under %s\n\n",
              tc.num_jobs, tc.mean_interarrival_s,
              static_cast<unsigned long long>(tc.seed), nodes * 4,
              scheduler->name().c_str());

  sched::ClusterSimulation sim(config, trace, *scheduler);
  sim.run();

  std::printf("%4s %-14s %-16s %8s %8s %8s %7s %6s %7s\n", "id", "model", "dataset",
              "arrive", "jct", "exec", "queue", "epochs", "preempt");
  for (const auto& spec : trace) {
    const auto& m = sim.metrics().job(spec.id);
    const auto& v = sim.job_view(spec.id);
    std::printf("%4lld %-14s %-16s %8.1f %8.1f %8.1f %7.1f %6d %7d\n",
                static_cast<long long>(spec.id), spec.variant.model_name.c_str(),
                spec.variant.dataset.c_str(), m.arrival_s, m.jct(), m.exec_time_s,
                m.queue_time(), v.epochs_completed, m.preemptions);
  }

  std::printf("\n%s\n", telemetry::format_summary_header().c_str());
  const auto summary = sim.summary(scheduler->name());
  std::printf("%s\n", telemetry::format_summary_row(summary).c_str());
  std::printf("completed %zu/%d jobs, %llu schedule deployments\n", sim.completed_jobs(),
              tc.num_jobs, static_cast<unsigned long long>(sim.deployments()));
  return sim.all_completed() ? 0 : 1;
}
