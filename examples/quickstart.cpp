// Quickstart: schedule a small trace on a 16-GPU cluster with ONES and with
// a FIFO baseline, and compare the outcomes.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/ones_scheduler.hpp"
#include "sched/fifo.hpp"
#include "sched/simulation.hpp"
#include "telemetry/metrics.hpp"
#include "workload/trace.hpp"

int main() {
  using namespace ones;

  // A 4-node x 4-GPU cluster (16 GPUs) and 24 jobs arriving as a Poisson
  // process, drawn from the paper's Table 2 workload catalog.
  sched::SimulationConfig config;
  config.topology.num_nodes = 4;

  workload::TraceConfig trace_config;
  trace_config.num_jobs = 24;
  trace_config.mean_interarrival_s = 45.0;
  trace_config.seed = 7;
  const auto trace = workload::generate_trace(trace_config);

  std::printf("Trace: %d jobs on %d GPUs\n", trace_config.num_jobs,
              config.topology.num_nodes * config.topology.gpus_per_node);
  std::printf("%s\n", telemetry::format_summary_header().c_str());

  {
    core::OnesScheduler ones_sched;
    sched::ClusterSimulation sim(config, trace, ones_sched);
    sim.run();
    const auto s = telemetry::summarize("ONES", sim.metrics(), sim.topology().total_gpus());
    std::printf("%s\n", telemetry::format_summary_row(s).c_str());
    std::printf("  completed %zu/%d jobs, %llu schedule deployments, %llu evolution rounds\n",
                sim.completed_jobs(), trace_config.num_jobs,
                static_cast<unsigned long long>(sim.deployments()),
                static_cast<unsigned long long>(ones_sched.evolution_rounds()));
  }
  {
    sched::FifoScheduler fifo;
    sched::ClusterSimulation sim(config, trace, fifo);
    sim.run();
    const auto s = telemetry::summarize("FIFO", sim.metrics(), sim.topology().total_gpus());
    std::printf("%s\n", telemetry::format_summary_row(s).c_str());
    std::printf("  completed %zu/%d jobs\n", sim.completed_jobs(), trace_config.num_jobs);
  }
  return 0;
}
