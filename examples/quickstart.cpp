// Quickstart: schedule a small trace on a 16-GPU cluster with ONES and with
// a FIFO baseline, and compare the outcomes.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Pass --trace-dir=PATH to also write a structured trace per run
// (quickstart_ones.jsonl / .trace.json and quickstart_fifo.jsonl /
// .trace.json; the .trace.json files load in Perfetto or chrome://tracing).
// tests/trace_test.cpp pins a golden digest of the ONES JSONL stream.
//
// Pass --metrics-dir=PATH to also export each run's metrics registry
// (quickstart_ones.timeline.csv / .prom / .metrics.json and the same for
// FIFO — DESIGN.md §9).
//
// Pass --prof-dir=PATH to also collect host-time profiler spans per run
// (quickstart_ones.prof.json / quickstart_fifo.prof.json and a stderr span
// table — DESIGN.md §14); with --trace-dir the spans additionally merge
// into the .trace.json as a wall-clock track. None of the flags changes the
// simulated results.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "core/ones_scheduler.hpp"
#include "prof/export.hpp"
#include "prof/profiler.hpp"
#include "sched/fifo.hpp"
#include "sched/simulation.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/registry.hpp"
#include "trace/sink.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace ones;

  std::string trace_dir;
  std::string metrics_dir;
  std::string prof_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-dir=", 12) == 0) {
      trace_dir = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--metrics-dir=", 14) == 0) {
      metrics_dir = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--prof-dir=", 11) == 0) {
      prof_dir = argv[i] + 11;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace-dir=PATH] [--metrics-dir=PATH] [--prof-dir=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  // A 4-node x 4-GPU cluster (16 GPUs) and 24 jobs arriving as a Poisson
  // process, drawn from the paper's Table 2 workload catalog.
  sched::SimulationConfig config;
  config.topology.num_nodes = 4;

  workload::TraceConfig trace_config;
  trace_config.num_jobs = 24;
  trace_config.mean_interarrival_s = 45.0;
  trace_config.seed = 7;
  const auto trace = workload::generate_trace(trace_config);

  std::printf("Trace: %d jobs on %d GPUs\n", trace_config.num_jobs,
              config.topology.num_nodes * config.topology.gpus_per_node);
  std::printf("%s\n", telemetry::format_summary_header().c_str());

  const auto make_writer = [&trace_dir](const char* stem) {
    return trace_dir.empty()
               ? nullptr
               : std::make_unique<trace::RunTraceWriter>(trace_dir, stem);
  };

  {
    const auto writer = make_writer("quickstart_ones");
    auto traced_config = config;
    traced_config.trace_sink = writer.get();
    telemetry::MetricsRegistry registry;
    if (!metrics_dir.empty()) traced_config.metrics = &registry;
    std::optional<prof::Profiler> profiler;
    if (!prof_dir.empty()) {
      profiler.emplace();
      if (writer) profiler->enable_timeline();
      traced_config.profiler = &*profiler;
    }
    core::OnesScheduler ones_sched;
    sched::ClusterSimulation sim(traced_config, trace, ones_sched);
    sim.run();
    if (!metrics_dir.empty()) {
      telemetry::write_metrics_files(registry, metrics_dir, "quickstart_ones");
      // Host-scope (wall-clock) instruments are stderr-only by contract.
      std::fprintf(stderr, "[host metrics] quickstart_ones\n%s",
                   telemetry::format_host_metrics(registry).c_str());
    }
    if (profiler) {
      // Merge the host-span track into the Chrome trace only; the golden
      // JSONL digest never sees profiler output.
      if (writer) {
        for (const auto& ev : prof::chrome_span_events(*profiler)) {
          writer->chrome_raw_event(ev);
        }
      }
      prof::write_profile_file(prof_dir, "quickstart_ones", profiler->stats());
      std::fprintf(stderr, "[prof] quickstart_ones\n%s",
                   prof::format_profile(profiler->stats()).c_str());
    }
    const auto s = sim.summary("ONES");
    std::printf("%s\n", telemetry::format_summary_row(s).c_str());
    std::printf("  completed %zu/%d jobs, %llu schedule deployments, %llu evolution rounds\n",
                sim.completed_jobs(), trace_config.num_jobs,
                static_cast<unsigned long long>(sim.deployments()),
                static_cast<unsigned long long>(ones_sched.evolution_rounds()));
  }
  {
    const auto writer = make_writer("quickstart_fifo");
    auto traced_config = config;
    traced_config.trace_sink = writer.get();
    telemetry::MetricsRegistry registry;
    if (!metrics_dir.empty()) traced_config.metrics = &registry;
    std::optional<prof::Profiler> profiler;
    if (!prof_dir.empty()) {
      profiler.emplace();
      if (writer) profiler->enable_timeline();
      traced_config.profiler = &*profiler;
    }
    sched::FifoScheduler fifo;
    sched::ClusterSimulation sim(traced_config, trace, fifo);
    sim.run();
    if (!metrics_dir.empty()) {
      telemetry::write_metrics_files(registry, metrics_dir, "quickstart_fifo");
      std::fprintf(stderr, "[host metrics] quickstart_fifo\n%s",
                   telemetry::format_host_metrics(registry).c_str());
    }
    if (profiler) {
      if (writer) {
        for (const auto& ev : prof::chrome_span_events(*profiler)) {
          writer->chrome_raw_event(ev);
        }
      }
      prof::write_profile_file(prof_dir, "quickstart_fifo", profiler->stats());
      std::fprintf(stderr, "[prof] quickstart_fifo\n%s",
                   prof::format_profile(profiler->stats()).c_str());
    }
    const auto s = sim.summary("FIFO");
    std::printf("%s\n", telemetry::format_summary_row(s).c_str());
    std::printf("  completed %zu/%d jobs\n", sim.completed_jobs(), trace_config.num_jobs);
  }
  if (!trace_dir.empty()) {
    std::printf("traces written to %s/\n", trace_dir.c_str());
  }
  if (!metrics_dir.empty()) {
    std::printf("metrics written to %s/\n", metrics_dir.c_str());
  }
  if (!prof_dir.empty()) {
    std::printf("profiles written to %s/\n", prof_dir.c_str());
  }
  return 0;
}
