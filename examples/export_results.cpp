// Results export: run a scheduler comparison and write machine-readable
// artifacts — per-job CSVs, JCT ECDF CSVs, a trace CSV and a JSON summary —
// ready for external plotting. Demonstrates telemetry/report.hpp and
// workload/trace_io.hpp end to end.
//
// Usage: export_results [output_dir]   (default: ./ones_results)
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/ones_scheduler.hpp"
#include "sched/simulation.hpp"
#include "sched/tiresias.hpp"
#include "telemetry/report.hpp"
#include "workload/trace.hpp"
#include "workload/trace_io.hpp"

using namespace ones;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "ones_results";
  std::filesystem::create_directories(out_dir);

  workload::TraceConfig tc;
  tc.num_jobs = 48;
  tc.mean_interarrival_s = 8.0;
  tc.seed = 2027;
  const auto trace = workload::generate_trace(tc);
  workload::save_trace(out_dir + "/trace.csv", trace);

  sched::SimulationConfig config;
  config.topology.num_nodes = 4;

  std::vector<telemetry::Summary> summaries;
  auto run_and_export = [&](sched::Scheduler& s, const std::string& tag) {
    sched::ClusterSimulation sim(config, trace, s);
    sim.run();
    summaries.push_back(sim.summary(s.name()));

    std::ostringstream jobs_csv;
    telemetry::write_jobs_csv(jobs_csv, sim.metrics());
    telemetry::write_file(out_dir + "/jobs_" + tag + ".csv", jobs_csv.str());

    std::ostringstream ecdf_csv;
    telemetry::write_ecdf_csv(ecdf_csv, sim.metrics().jcts(), "jct_s");
    telemetry::write_file(out_dir + "/jct_ecdf_" + tag + ".csv", ecdf_csv.str());

    std::printf("  %-10s avg JCT %8.1f s  ->  jobs_%s.csv, jct_ecdf_%s.csv\n",
                s.name().c_str(), summaries.back().avg_jct, tag.c_str(), tag.c_str());
  };

  std::printf("Exporting run artifacts to %s/\n", out_dir.c_str());
  {
    core::OnesScheduler s;
    run_and_export(s, "ones");
  }
  {
    sched::TiresiasScheduler s;
    run_and_export(s, "tiresias");
  }

  telemetry::write_file(out_dir + "/summary.json",
                        telemetry::summaries_to_json(summaries) + "\n");
  std::printf("  summary.json + trace.csv written\n");
  std::printf("\nReload the exact trace later with workload::load_trace(\"%s/trace.csv\")\n",
              out_dir.c_str());
  return 0;
}
