// Fragmentation monitoring: watch idle-GPU fragmentation and job locality
// evolve over a contended run, comparing a gang scheduler (FIFO) with ONES.
//
// §2.2's argument made visible: fixed-size gang scheduling strands idle
// GPUs that no pending gang fits, while elastic batch sizes let ONES
// saturate the cluster with whatever is available.
#include <cstdio>
#include <vector>

#include "cluster/fragmentation.hpp"
#include "core/ones_scheduler.hpp"
#include "sched/fifo.hpp"
#include "sched/simulation.hpp"
#include "workload/trace.hpp"

using namespace ones;

namespace {

/// Decorator that samples fragmentation / locality stats on every event.
class Monitor : public sched::Scheduler {
 public:
  explicit Monitor(sched::Scheduler& inner) : inner_(inner) {}

  std::string name() const override { return inner_.name(); }
  sched::ScalingMechanism mechanism() const override { return inner_.mechanism(); }
  double period_s() const override { return inner_.period_s(); }

  std::optional<cluster::Assignment> on_event(const sched::ClusterState& state,
                                              const sched::SchedulerEvent& event) override {
    const auto frag = cluster::fragmentation_stats(*state.current, *state.topology);
    const auto loc = cluster::locality_stats(*state.current, *state.topology);
    const bool contended = !state.waiting_jobs().empty();
    samples_ += 1;
    idle_sum_ += frag.idle_gpus;
    scatter_sum_ += frag.scatter_index;
    if (contended && frag.idle_gpus > 0) stranded_samples_ += 1;
    if (loc.jobs > 0) {
      locality_samples_ += 1;
      colocated_sum_ += static_cast<double>(loc.colocated_jobs) / loc.jobs;
    }
    return inner_.on_event(state, event);
  }

  void report() const {
    std::printf("  %-8s avg idle GPUs %.1f | avg scatter %.2f | events with idle GPUs "
                "while jobs wait: %.1f%% | multi-GPU jobs colocated: %.0f%%\n",
                name().c_str(), idle_sum_ / samples_, scatter_sum_ / samples_,
                100.0 * stranded_samples_ / samples_,
                locality_samples_ ? 100.0 * colocated_sum_ / locality_samples_ : 100.0);
  }

 private:
  sched::Scheduler& inner_;
  double samples_ = 0, idle_sum_ = 0, scatter_sum_ = 0, stranded_samples_ = 0;
  double locality_samples_ = 0, colocated_sum_ = 0;
};

}  // namespace

int main() {
  sched::SimulationConfig config;
  config.topology.num_nodes = 4;  // 16 GPUs
  workload::TraceConfig tc;
  tc.num_jobs = 40;
  tc.mean_interarrival_s = 10.0;
  tc.seed = 31;
  const auto trace = workload::generate_trace(tc);

  std::printf("Fragmentation & locality over a contended run (%d jobs, 16 GPUs):\n\n",
              tc.num_jobs);

  {
    sched::FifoScheduler fifo;
    Monitor mon(fifo);
    sched::ClusterSimulation sim(config, trace, mon);
    sim.run();
    mon.report();
  }
  {
    core::OnesScheduler ones_sched;
    Monitor mon(ones_sched);
    sched::ClusterSimulation sim(config, trace, mon);
    sim.run();
    mon.report();
  }

  std::printf("\nExpected: ONES strands idle GPUs far less often than gang-scheduled "
              "FIFO\nwhile keeping multi-GPU workers packed (the reorder operator).\n");
  return 0;
}
