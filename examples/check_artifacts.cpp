// CI artifact checker: validate a run's structured trace and exported
// metrics files against their documented schemas (DESIGN.md §8 and §9).
//
//   check_artifacts <trace.jsonl> <metrics_stem>
//
// The trace is replayed through trace::TraceReplayer, which re-derives the
// cluster state the stream implies and fails on any structural invariant
// violation. The three metrics files written for <metrics_stem>
// (<stem>.timeline.csv, <stem>.prom, <stem>.metrics.json) are checked for
// well-formedness: CSV header and non-decreasing timestamps, Prometheus
// text-format line grammar, and a parseable JSON object summary.
//
// Exits 0 when everything passes, 1 with a diagnostic on the first failure.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "trace/replay.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "check_artifacts: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void fail(const std::string& path, const std::string& why) {
  std::fprintf(stderr, "check_artifacts: %s: %s\n", path.c_str(), why.c_str());
  std::exit(1);
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(line);
  while (std::getline(in, part, sep)) parts.push_back(part);
  return parts;
}

void check_timeline_csv(const std::string& path) {
  const auto text = read_file(path);
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "t,series,value") {
    fail(path, "first line must be the header \"t,series,value\"");
  }
  double prev_t = 0.0;
  bool first = true;
  std::size_t rows = 0, watts_rows = 0;
  bool watts_starts_at_zero = false;
  while (std::getline(in, line)) {
    ++rows;
    const auto parts = split(line, ',');
    if (parts.size() != 3) fail(path, "row " + std::to_string(rows) + ": expected 3 columns");
    std::size_t used = 0;
    const double t = std::stod(parts[0], &used);
    if (used != parts[0].size()) fail(path, "row " + std::to_string(rows) + ": bad timestamp");
    if (!first && t < prev_t) {
      fail(path, "row " + std::to_string(rows) + ": timestamps must be non-decreasing");
    }
    if (parts[1].empty()) fail(path, "row " + std::to_string(rows) + ": empty series name");
    const double value = std::stod(parts[2], &used);
    if (used != parts[2].size()) fail(path, "row " + std::to_string(rows) + ": bad value");
    if (parts[1] == "cluster_watts") {
      // DESIGN.md §10: the power timeline starts at t=0 (the meter opens the
      // run on an all-idle cluster) and node base power keeps it positive.
      if (watts_rows == 0 && t == 0.0) watts_starts_at_zero = true;
      if (value <= 0.0) {
        fail(path, "row " + std::to_string(rows) + ": cluster_watts must be positive");
      }
      ++watts_rows;
    }
    prev_t = t;
    first = false;
  }
  if (watts_rows == 0) fail(path, "no cluster_watts series (energy meter not exported?)");
  if (!watts_starts_at_zero) fail(path, "cluster_watts series must start at t=0");
  std::printf("  %s: ok (%zu points, %zu cluster_watts)\n", path.c_str(), rows,
              watts_rows);
}

void check_prometheus(const std::string& path) {
  const auto text = read_file(path);
  std::istringstream in(text);
  std::string line;
  std::size_t samples = 0, types = 0, lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const auto parts = split(line, ' ');
      if (parts.size() != 4 ||
          (parts[3] != "counter" && parts[3] != "gauge" && parts[3] != "histogram")) {
        fail(path, "line " + std::to_string(lineno) + ": malformed # TYPE line");
      }
      ++types;
      continue;
    }
    if (line[0] == '#') continue;  // other comments are legal
    // Sample line: name[{labels}] value
    const auto space = line.rfind(' ');
    if (space == std::string::npos || space == 0 || space + 1 == line.size()) {
      fail(path, "line " + std::to_string(lineno) + ": expected \"name value\"");
    }
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    if (name.find('{') != std::string::npos && name.back() != '}') {
      fail(path, "line " + std::to_string(lineno) + ": unterminated label set");
    }
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      std::size_t used = 0;
      (void)std::stod(value, &used);
      if (used != value.size()) {
        fail(path, "line " + std::to_string(lineno) + ": bad sample value");
      }
    }
    ++samples;
  }
  if (types == 0) fail(path, "no # TYPE lines (empty export?)");
  std::printf("  %s: ok (%zu TYPE lines, %zu samples)\n", path.c_str(), types, samples);
}

/// Look up `name` in the metrics object; it must be an instrument object of
/// `kind` with a numeric, non-negative value. Returns that value.
double require_instrument(const std::string& path, const ones::JsonValue& doc,
                          const std::string& name, const std::string& kind) {
  const ones::JsonValue* entry = doc.find(name);
  if (entry == nullptr) fail(path, "missing required metric \"" + name + "\"");
  if (entry->kind != ones::JsonValue::Kind::Object) {
    fail(path, "metric \"" + name + "\" must be an object");
  }
  const ones::JsonValue* type = entry->find("type");
  if (type == nullptr || type->string != kind) {
    fail(path, "metric \"" + name + "\" must have type \"" + kind + "\"");
  }
  const ones::JsonValue* value = entry->find("value");
  if (value == nullptr || value->kind != ones::JsonValue::Kind::Number ||
      value->number < 0.0) {
    fail(path, "metric \"" + name + "\" must have a non-negative numeric value");
  }
  return value->number;
}

void check_json_summary(const std::string& path) {
  const auto text = read_file(path);
  ones::JsonValue doc;
  try {
    doc = ones::parse_json(text);
  } catch (const std::exception& e) {
    fail(path, std::string("does not parse: ") + e.what());
  }
  if (doc.kind != ones::JsonValue::Kind::Object) fail(path, "top-level value must be an object");

  // Energy fields (DESIGN.md §10): every instrumented run carries the meter's
  // counters/gauge, and attribution means overhead can never exceed total.
  const double cluster = require_instrument(path, doc, "energy_cluster_joules_total", "counter");
  const double overhead =
      require_instrument(path, doc, "energy_overhead_joules_total", "counter");
  require_instrument(path, doc, "energy_cluster_watts", "gauge");
  if (overhead > cluster) {
    fail(path, "energy_overhead_joules_total exceeds energy_cluster_joules_total");
  }
  // Fragmentation gauges ride the same export (DESIGN.md §10).
  require_instrument(path, doc, "cluster_frag_idle_gpus", "gauge");
  require_instrument(path, doc, "cluster_frag_scatter_index", "gauge");

  std::printf("  %s: ok (%zu metrics, %.0f J total / %.0f J overhead)\n", path.c_str(),
              doc.object.size(), cluster, overhead);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <trace.jsonl> <metrics_stem>\n", argv[0]);
    return 2;
  }
  const std::string trace_path = argv[1];
  const std::string stem = argv[2];

  const ones::trace::TraceReplayer replayer;
  const auto report = replayer.check_file(trace_path);
  if (!report.ok()) {
    std::fprintf(stderr, "check_artifacts: %s: replay found %zu issue(s):\n%s",
                 trace_path.c_str(), report.issues.size(), report.to_string().c_str());
    return 1;
  }
  std::printf("  %s: ok (%zu records, %zu jobs)\n", trace_path.c_str(), report.records,
              report.jobs);

  check_timeline_csv(stem + ".timeline.csv");
  check_prometheus(stem + ".prom");
  check_json_summary(stem + ".metrics.json");
  std::printf("check_artifacts: all artifacts pass\n");
  return 0;
}
