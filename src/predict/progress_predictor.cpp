#include "predict/progress_predictor.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"
#include "stats/solve.hpp"

namespace ones::predict {

ProgressPredictor::ProgressPredictor(const PredictorConfig& config)
    : config_(config), weights_(kFeatureDim, 0.0), rng_(config.seed) {}

std::vector<double> ProgressPredictor::features_of(const sched::JobView& job) {
  const double d = job.dataset_size();
  const double init_loss = std::max(job.init_loss, 1e-6);
  const double loss = job.epochs_completed > 0 ? job.train_loss : init_loss;
  const double r_loss = 1.0 - loss / init_loss;  // loss improvement ratio
  const double acc = job.epochs_completed > 0 ? job.val_accuracy : 0.0;
  return {
      d / 1e4,                        // ||D|| (10k-sample units)
      init_loss,                      // L_initial
      job.samples_processed / d,      // Y_processed (epoch units)
      r_loss,                         // r_L
      acc,                            // validation accuracy
      1.0,                            // bias
  };
}

void ProgressPredictor::add_point(TrainingPoint point) {
  ++points_seen_;
  if (points_.size() < config_.max_training_points) {
    points_.push_back(std::move(point));
    return;
  }
  // Reservoir sampling keeps the training set a uniform sample of all points
  // ever offered (the paper's bounded uniformly-sampled dataset).
  const std::size_t slot = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(points_seen_) - 1));
  if (slot < points_.size()) points_[slot] = std::move(point);
}

void ProgressPredictor::observe_completed_job(const sched::JobView& job) {
  ONES_EXPECT_MSG(job.status == sched::JobStatus::Completed,
                  "observe_completed_job requires a completed job");
  const auto& log = job.epoch_log;
  if (log.empty()) return;

  const double total_epochs = static_cast<double>(log.size());
  const double total_samples = log.back().samples_processed;
  if (total_samples <= 0.0) return;

  completed_jobs_ += 1;
  mean_total_epochs_ +=
      (total_epochs - mean_total_epochs_) / static_cast<double>(completed_jobs_);

  // Uniformly sample historical moments of this job.
  const std::size_t want = std::min(config_.points_per_job, log.size());
  std::vector<std::size_t> idx(log.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng_.shuffle(idx);
  for (std::size_t k = 0; k < want; ++k) {
    const std::size_t i = idx[k];
    const auto& e = log[i];
    // Reconstruct the live view at that moment.
    sched::JobView past = job;
    past.samples_processed = e.samples_processed;
    past.train_loss = e.train_loss;
    past.val_accuracy = e.val_accuracy;
    past.epochs_completed = static_cast<int>(i + 1);

    TrainingPoint p;
    p.features = features_of(past);
    p.epochs_processed = std::max(e.samples_processed / job.dataset_size(), 1.0);
    p.true_progress =
        std::clamp(e.samples_processed / total_samples, 1e-4, 1.0 - 1e-4);
    p.true_epochs_remaining =
        std::max(total_epochs - static_cast<double>(i + 1), 0.5);
    if (metrics_ != nullptr) {
      // Score the *current* model on this fresh ground truth before it is
      // ingested: the Beta's beta parameter is the predicted epochs remaining.
      const double predicted = predict(past).beta();
      auto& err_sum = metrics_->counter("predict_abs_error_epochs_total");
      auto& err_n = metrics_->counter("predict_error_samples_total");
      err_sum.add(std::abs(predicted - p.true_epochs_remaining));
      err_n.add();
      metrics_->gauge("predict_mae_epochs").set(err_sum.value() / err_n.value());
    }
    add_point(std::move(p));
  }

  fit();
}

void ProgressPredictor::fit() {
  const prof::Scope span(profiler_, "predict.fit");
  if (points_.size() < 8) return;  // not enough evidence yet
  const std::size_t n = points_.size();

  // Warm start: ridge least squares on the raw epochs-remaining targets.
  stats::Matrix x(n, kFeatureDim);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < kFeatureDim; ++f) x.at(i, f) = points_[i].features[f];
    y[i] = points_[i].true_epochs_remaining;
  }
  weights_ = stats::ridge_regression(x, y, config_.ridge_lambda);

  // Refinement: maximize the Beta log marginal likelihood
  //   sum_i log Be(rho_i; alpha_i, beta_i(w)),  beta_i = max(w . x_i, 1),
  // by gradient ascent. d logpdf / d beta = log(1-rho) - psi(beta) +
  // psi(alpha+beta); the clamp at 1 contributes zero gradient.
  for (int step = 0; step < config_.likelihood_steps; ++step) {
    std::vector<double> grad(kFeatureDim, 0.0);
    for (const auto& p : points_) {
      double z = 0.0;
      for (std::size_t f = 0; f < kFeatureDim; ++f) z += weights_[f] * p.features[f];
      if (z <= 1.0) continue;  // clamped: no gradient flows
      const double alpha = p.epochs_processed;
      const double dbeta = std::log(1.0 - p.true_progress) - stats::digamma(z) +
                           stats::digamma(alpha + z);
      for (std::size_t f = 0; f < kFeatureDim; ++f) grad[f] += dbeta * p.features[f];
    }
    const double scale = config_.learning_rate / static_cast<double>(n);
    for (std::size_t f = 0; f < kFeatureDim; ++f) weights_[f] += scale * grad[f];
  }
  trained_ = true;
  if (metrics_ != nullptr) metrics_->counter("predict_refits_total").add();
}

stats::BetaDistribution ProgressPredictor::predict(const sched::JobView& job) const {
  const double alpha = std::max(job.samples_processed / job.dataset_size(), 1.0);
  double beta;
  if (trained_) {
    const auto x = features_of(job);
    double z = 0.0;
    for (std::size_t f = 0; f < kFeatureDim; ++f) z += weights_[f] * x[f];
    beta = std::max(z, 1.0);
  } else {
    const double prior =
        completed_jobs_ > 0 ? mean_total_epochs_ : config_.prior_total_epochs;
    beta = std::max(prior - alpha, 1.0);
  }
  return stats::BetaDistribution(alpha, beta);
}

double ProgressPredictor::expected_remaining_samples(const sched::JobView& job) const {
  const auto dist = predict(job);
  const double rho = std::clamp(dist.mean(), 1e-4, 1.0 - 1e-4);
  const double processed = std::max(job.samples_processed, 1.0);
  return processed * (1.0 / rho - 1.0);
}

}  // namespace ones::predict
