// Online training-progress predictor (paper §3.2.1, Eq. 6).
//
// ONES never predicts absolute job lengths (a weakness the paper calls out
// in prior work); it models each job's *training progress* rho in (0, 1) as
// a Beta random variable:
//
//     rho ~ Be(alpha, beta),
//     alpha = Y_processed / ||D||           (epochs already processed)
//     beta  = max(A x + b, 1)               (predicted epochs to process)
//
// where x = {||D||, L_initial, Y_processed, r_L, accuracy} are features
// observable from the job's live status. The regression (A, b) is refit
// every time a job completes, by maximizing the Beta log-likelihood of data
// points uniformly sampled from completed jobs' epoch logs (the paper keeps
// the training set bounded to control fitting time and overfitting — we use
// reservoir sampling). Both alpha and beta are thresholded at 1 so the
// distribution stays unimodal.
//
// From the distribution, the remaining workload follows Eq. 7:
//     Y_remaining = Y_processed * (1/rho - 1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "prof/profiler.hpp"
#include "sched/scheduler.hpp"
#include "stats/beta.hpp"
#include "telemetry/registry.hpp"

namespace ones::predict {

struct PredictorConfig {
  std::size_t max_training_points = 512;  ///< reservoir capacity
  std::size_t points_per_job = 16;        ///< samples drawn from one job's log
  double ridge_lambda = 1.0;              ///< regularization of the LS warm start
  int likelihood_steps = 200;             ///< gradient-ascent refinement steps
  double learning_rate = 0.05;
  double prior_total_epochs = 30.0;       ///< fallback before any completion
  std::uint64_t seed = 1234;
};

/// One training datum: features at a historical moment of a completed job
/// plus the ground truth known in hindsight.
struct TrainingPoint {
  std::vector<double> features;   ///< normalized feature vector incl. bias
  double epochs_processed = 0.0;  ///< alpha at that moment
  double true_progress = 0.0;     ///< rho in (0, 1)
  double true_epochs_remaining = 0.0;
};

class ProgressPredictor {
 public:
  explicit ProgressPredictor(const PredictorConfig& config = {});

  /// Number of features (incl. bias term).
  static constexpr std::size_t kFeatureDim = 6;

  /// Extract the normalized feature vector from a job's live status.
  static std::vector<double> features_of(const sched::JobView& job);

  /// Ingest a completed job: uniformly sample points from its epoch log into
  /// the bounded training set and refit the regression.
  void observe_completed_job(const sched::JobView& job);

  /// Predict the progress distribution Be(alpha, beta) of an in-flight job.
  stats::BetaDistribution predict(const sched::JobView& job) const;

  /// Expected remaining workload E[Y_processed * (1/rho - 1)] approximated at
  /// the distribution mean (convenience for deterministic consumers).
  double expected_remaining_samples(const sched::JobView& job) const;

  bool trained() const { return trained_; }
  std::size_t training_points() const { return points_.size(); }
  const std::vector<double>& weights() const { return weights_; }

  /// Refit from the current training set (called by observe_completed_job;
  /// public for tests).
  void fit();

  /// Optional metrics registry (not owned; null — the default — disables
  /// instrumentation). Records `predict_refits_total` and the online
  /// `predict_mae_epochs` gauge: before each refit, the *current* model is
  /// scored against the fresh ground-truth points it is about to ingest,
  /// so the gauge tracks true out-of-sample error. Never affects predictions.
  void set_metrics(telemetry::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Optional host-time profiler (not owned; null disables the span site).
  /// Each refit runs under a `predict.fit` span (DESIGN.md §14); never
  /// affects predictions.
  void set_profiler(prof::Profiler* profiler) { profiler_ = profiler; }

 private:
  void add_point(TrainingPoint point);

  PredictorConfig config_;
  std::vector<TrainingPoint> points_;
  std::size_t points_seen_ = 0;  ///< total offered (for reservoir sampling)
  std::vector<double> weights_;
  bool trained_ = false;
  double mean_total_epochs_ = 0.0;
  std::size_t completed_jobs_ = 0;
  Rng rng_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  prof::Profiler* profiler_ = nullptr;
};

}  // namespace ones::predict
