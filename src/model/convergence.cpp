#include "model/convergence.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace ones::model {

TrainDynamics::TrainDynamics(const TaskProfile& profile, std::int64_t dataset_size,
                             const ConvergenceConfig& config, std::uint64_t seed)
    : profile_(profile),
      config_(config),
      dataset_size_(dataset_size),
      required_progress_(profile.epochs_to_target_ref * static_cast<double>(dataset_size)),
      rng_(seed) {
  ONES_EXPECT(dataset_size > 0);
  ONES_EXPECT(profile.epochs_to_target_ref > 0.0);
  ONES_EXPECT(profile.target_accuracy > 0.0 &&
              profile.target_accuracy < profile.accuracy_ceiling);
  // accuracy(p) = ceiling * (1 - exp(-rate * p/required)); choose rate so
  // accuracy hits the target exactly when progress == required.
  accuracy_rate_ = -std::log(1.0 - profile.target_accuracy / profile.accuracy_ceiling);
}

double TrainDynamics::efficiency(int batch) const {
  ONES_EXPECT(batch >= 1);
  const double b = static_cast<double>(batch);
  double eff = (1.0 + static_cast<double>(profile_.b_ref) / profile_.b_crit) /
               (1.0 + b / profile_.b_crit);
  if (!config_.lr_linear_scaling && b > static_cast<double>(profile_.b_ref)) {
    // Without LR rescaling, per-update progress does not grow with the batch:
    // large batches just take proportionally fewer, equally-sized updates.
    eff *= static_cast<double>(profile_.b_ref) / b;
  }
  return eff;
}

void TrainDynamics::on_batch_resize(int old_batch, int new_batch) {
  ONES_EXPECT(old_batch >= 1 && new_batch >= 1);
  if (new_batch <= old_batch) return;  // shrinking is benign
  const double doublings = std::log2(static_cast<double>(new_batch) /
                                     static_cast<double>(old_batch));
  const double excess = doublings - 1.0;  // one doubling per resize is safe
  if (excess > 0.0) {
    disturbance_ += config_.spike_per_extra_doubling * excess;
  }
}

double TrainDynamics::current_loss() const {
  const double p = progress_fraction();
  return profile_.final_loss +
         (profile_.init_loss - profile_.final_loss) * std::exp(-3.0 * p) + disturbance_;
}

double TrainDynamics::current_accuracy() const {
  const double p = progress_fraction();
  double acc = profile_.accuracy_ceiling * (1.0 - std::exp(-accuracy_rate_ * p));
  acc -= config_.disturbance_accuracy_drop * disturbance_;
  return std::clamp(acc, 0.0, 1.0);
}

TrainDynamics::EpochResult TrainDynamics::advance(int batch, double samples) {
  ONES_EXPECT(batch >= 1);
  ONES_EXPECT(samples >= 0.0);
  ONES_EXPECT_MSG(!converged_, "advancing a converged job");

  samples_processed_ += samples;
  progress_ += samples * efficiency(batch) /
               (1.0 + config_.progress_slowdown * disturbance_);

  // Disturbance decays with training, proportionally to how much of an epoch
  // was just processed.
  const double epoch_frac = samples / static_cast<double>(dataset_size_);
  disturbance_ *= std::pow(config_.disturbance_decay, epoch_frac);
  if (disturbance_ < 1e-4) disturbance_ = 0.0;

  EpochResult res;
  res.train_loss = current_loss();
  const double noisy_acc =
      std::clamp(current_accuracy() + rng_.normal(0.0, config_.accuracy_noise), 0.0, 1.0);
  res.val_accuracy = noisy_acc;

  if (noisy_acc >= profile_.target_accuracy) {
    above_target_samples_ += samples;
  } else {
    above_target_samples_ = 0.0;  // the paper requires *consecutive* epochs
  }
  if (above_target_samples_ >=
      static_cast<double>(config_.patience_epochs) * static_cast<double>(dataset_size_)) {
    converged_ = true;
  }
  res.converged = converged_;
  return res;
}

double TrainDynamics::oracle_remaining_samples(int batch) const {
  if (converged_) return 0.0;
  const double to_target =
      std::max(0.0, required_progress_ - progress_) / efficiency(batch);
  const double tail =
      std::max(0.0, static_cast<double>(config_.patience_epochs) *
                            static_cast<double>(dataset_size_) -
                        above_target_samples_);
  return to_target + tail;
}

}  // namespace ones::model
