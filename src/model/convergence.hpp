// Training convergence dynamics.
//
// Replaces real SGD with a state machine that reproduces the convergence
// facts the scheduler observes and depends on:
//
//  * Batch-size efficiency (gradient-noise-scale law): the raw samples needed
//    to converge grow as N(B) = N_min * (1 + B / B_crit). Equivalently, each
//    processed sample contributes progress eff(B) = (1 + B_ref/B_crit) /
//    (1 + B/B_crit), normalized to 1 at the reference batch. With a fixed
//    local batch of 256 and more GPUs, B grows and convergence slows —
//    strongly once B passes B_crit (Fig 3).
//
//  * Linear learning-rate scaling (Goyal et al.): ONES rescales the LR with
//    the batch, which is what keeps eff(B) ~ 1 below B_crit. The
//    `lr_linear_scaling=false` ablation removes that and charges an extra
//    B_ref/B penalty above the reference batch.
//
//  * Abrupt-rescaling disturbance: growing the batch by more than 2x in one
//    reconfiguration injects gradient/momentum noise — the training loss
//    spikes and takes several epochs to recover (Fig 13); growing gradually
//    (<= 2x per epoch) does not (Fig 14). Modelled as a `disturbance` level
//    that jumps on abrupt growth, adds to the observed loss, depresses
//    validation accuracy and divides progress, then decays geometrically.
//
//  * Termination rule (paper §4.1): a job ends once its validation accuracy
//    has stayed at/above target for `patience` consecutive epochs' worth of
//    samples (the paper uses 10 epochs).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "model/task.hpp"

namespace ones::model {

struct ConvergenceConfig {
  /// Consecutive epochs at/above target accuracy required to declare
  /// convergence (paper uses 10).
  int patience_epochs = 10;
  /// Disturbance added per *extra* doubling beyond the allowed 2x growth.
  double spike_per_extra_doubling = 0.6;
  /// Geometric decay of the disturbance per epoch.
  double disturbance_decay = 0.6;
  /// Progress divisor weight: progress /= (1 + slowdown * disturbance).
  double progress_slowdown = 2.0;
  /// How much one unit of disturbance depresses validation accuracy.
  double disturbance_accuracy_drop = 0.10;
  /// Std-dev of per-evaluation accuracy noise.
  double accuracy_noise = 0.003;
  /// Linear LR scaling with the batch (ONES always enables it; turning it
  /// off is an ablation).
  bool lr_linear_scaling = true;
};

class TrainDynamics {
 public:
  TrainDynamics(const TaskProfile& profile, std::int64_t dataset_size,
                const ConvergenceConfig& config, std::uint64_t seed);

  /// Per-sample progress efficiency at global batch B (1.0 at b_ref).
  double efficiency(int batch) const;

  /// Notify of a re-configuration of the global batch size. An increase by
  /// more than 2x in one jump raises the disturbance level.
  void on_batch_resize(int old_batch, int new_batch);

  struct EpochResult {
    double train_loss = 0.0;
    double val_accuracy = 0.0;
    bool converged = false;
  };

  /// Process `samples` raw samples at global batch `batch` (normally one
  /// epoch, but partial epochs — preemption mid-epoch — are fine).
  EpochResult advance(int batch, double samples);

  // ---- Observable state ----
  double samples_processed() const { return samples_processed_; }
  std::int64_t dataset_size() const { return dataset_size_; }
  double progress() const { return progress_; }
  /// progress / required; crosses 1.0 when target accuracy is reached.
  double progress_fraction() const { return progress_ / required_progress_; }
  double disturbance() const { return disturbance_; }
  double current_loss() const;
  double current_accuracy() const;  ///< noise-free accuracy at current state
  bool converged() const { return converged_; }

  // ---- Ground truth (oracle baselines, calibration, tests) ----
  /// Progress units needed to first hit the target accuracy.
  double required_progress() const { return required_progress_; }
  /// Estimated raw samples still to process if trained at a fixed batch B
  /// from now on (including the patience tail).
  double oracle_remaining_samples(int batch) const;

 private:
  const TaskProfile& profile_;
  ConvergenceConfig config_;
  std::int64_t dataset_size_;
  double required_progress_;
  double accuracy_rate_;  ///< exponent chosen so accuracy(required) == target

  double samples_processed_ = 0.0;
  double progress_ = 0.0;
  double disturbance_ = 0.0;
  double above_target_samples_ = 0.0;
  bool converged_ = false;
  Rng rng_;
};

}  // namespace ones::model
