// Deep-learning task profiles.
//
// The paper's trace (Table 2) trains real models — AlexNet, ResNet50, VGG16,
// InceptionV3 on ImageNet subsets; ResNet18, VGG16, GoogleNet on CIFAR10
// subsets; BERT on CoLA / MRPC / SST-2 subsets — on V100 GPUs. We replace
// real training with analytic profiles carrying exactly the quantities the
// cluster-level behaviour depends on:
//
//  * params_bytes           — all-reduce volume per step,
//  * t_sample_s             — per-sample fwd+bwd GPU time on a V100,
//  * t_step_fixed_s         — per-step fixed overhead (launch, optimizer),
//  * max_local_batch        — GPU memory limit,
//  * b_crit                 — critical batch size: beyond it, samples-to-
//                             convergence grow ~linearly (gradient-noise-
//                             scale law, McCandlish et al.),
//  * epochs_to_target_ref   — epochs to reach the target accuracy at the
//                             reference batch b_ref.
//
// The numbers are calibrated to public V100 throughput figures and to the
// paper's own observations (jobs finish within ~2 h; Fig 2/3 shapes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ones::model {

enum class TaskFamily { CvImageNet, CvCifar, NlpBert };

const char* family_name(TaskFamily family);

struct TaskProfile {
  std::string name;            ///< e.g. "ResNet50"
  TaskFamily family = TaskFamily::CvCifar;
  double params_bytes = 0.0;   ///< fp32 parameter volume (all-reduce payload)
  double t_sample_s = 0.0;     ///< per-sample compute time on one V100
  double t_step_fixed_s = 0.0; ///< fixed per-step overhead
  int max_local_batch = 0;     ///< memory-limited per-GPU batch
  /// Below this local batch the GPU is launch-bound: the step costs the same
  /// as if the batch were min_util_batch. This is what makes a *fixed* global
  /// batch stop scaling past a couple of workers (Fig 2).
  int min_util_batch = 1;
  int b_ref = 256;             ///< reference (user-submitted) batch size
  double b_crit = 512.0;       ///< critical batch size
  double epochs_to_target_ref = 25.0;  ///< epochs to target accuracy at b_ref
  double init_loss = 2.5;
  double final_loss = 0.1;
  double target_accuracy = 0.9;
  double accuracy_ceiling = 0.97;  ///< asymptotic accuracy of the model
};

/// All model profiles used by the Table 2 trace.
const std::vector<TaskProfile>& builtin_profiles();

/// Look up a profile by name; throws if unknown.
const TaskProfile& profile_by_name(const std::string& name);

}  // namespace ones::model
