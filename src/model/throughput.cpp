#include "model/throughput.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace ones::model {

double step_time_s(const TaskProfile& profile, const std::vector<int>& local_batches,
                   const cluster::LinkProfile& link) {
  ONES_EXPECT(!local_batches.empty());
  int max_b = 0;
  for (int b : local_batches) {
    ONES_EXPECT_MSG(b >= 1, "every worker needs at least one sample");
    max_b = std::max(max_b, b);
  }
  const double c = static_cast<double>(local_batches.size());
  // Launch-bound floor: shrinking the local batch below min_util_batch no
  // longer shortens the step (the GPU is underutilized).
  const int effective_b = std::max(max_b, profile.min_util_batch);
  const double compute =
      profile.t_step_fixed_s + static_cast<double>(effective_b) * profile.t_sample_s;
  double comm = 0.0;
  if (local_batches.size() > 1) {
    ONES_EXPECT(link.bandwidth_Bps > 0.0);
    comm = 2.0 * (c - 1.0) / c * profile.params_bytes / link.bandwidth_Bps +
           2.0 * (c - 1.0) * link.latency_s;
  }
  return compute + comm;
}

std::vector<int> even_split(int global_batch, int workers) {
  ONES_EXPECT(workers >= 1);
  ONES_EXPECT_MSG(global_batch >= workers, "cannot give every worker a sample");
  std::vector<int> out(static_cast<std::size_t>(workers), global_batch / workers);
  const int rem = global_batch % workers;
  for (int i = 0; i < rem; ++i) out[static_cast<std::size_t>(i)] += 1;
  return out;
}

double step_time_even_s(const TaskProfile& profile, int global_batch, int workers,
                        const cluster::LinkProfile& link) {
  return step_time_s(profile, even_split(global_batch, workers), link);
}

double throughput_sps(const TaskProfile& profile, const std::vector<int>& local_batches,
                      const cluster::LinkProfile& link) {
  int total = 0;
  for (int b : local_batches) total += b;
  return static_cast<double>(total) / step_time_s(profile, local_batches, link);
}

double throughput_even_sps(const TaskProfile& profile, int global_batch, int workers,
                           const cluster::LinkProfile& link) {
  return static_cast<double>(global_batch) /
         step_time_even_s(profile, global_batch, workers, link);
}

}  // namespace ones::model
