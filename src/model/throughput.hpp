// Data-parallel step-time / throughput model.
//
// A synchronous data-parallel step on c workers with local batches b_1..b_c:
//
//   compute  = t_fixed + max_i(b_i) * t_sample      (stragglers gate the step)
//   comm     = 2 (c-1)/c * params / BW + 2 (c-1) * latency     (ring
//              all-reduce over the slowest link in the worker set; 0 for c=1)
//   step     = compute + comm
//   X        = B / step                              (samples / second)
//
// This reproduces the published behaviour the scheduler exploits (Fig 2):
// with a *fixed* global batch, adding workers shrinks b_i, so compute falls
// but comm grows and throughput peaks at ~2 workers then drops; with an
// *elastic* global batch (B grows with c), per-worker utilization stays high
// and throughput keeps climbing.
#pragma once

#include <vector>

#include "cluster/topology.hpp"
#include "model/task.hpp"

namespace ones::model {

/// Step time for an explicit per-worker batch vector. `link` is the slowest
/// link among the worker set (see Topology::link_profile).
double step_time_s(const TaskProfile& profile, const std::vector<int>& local_batches,
                   const cluster::LinkProfile& link);

/// Step time when the global batch B is split as evenly as possible over c
/// workers.
double step_time_even_s(const TaskProfile& profile, int global_batch, int workers,
                        const cluster::LinkProfile& link);

/// Throughput (samples/s) for an explicit batch vector.
double throughput_sps(const TaskProfile& profile, const std::vector<int>& local_batches,
                      const cluster::LinkProfile& link);

/// Throughput (samples/s) with an even split.
double throughput_even_sps(const TaskProfile& profile, int global_batch, int workers,
                           const cluster::LinkProfile& link);

/// Split a global batch as evenly as possible over `workers` GPUs
/// (first B % c workers get one extra sample).
std::vector<int> even_split(int global_batch, int workers);

}  // namespace ones::model
