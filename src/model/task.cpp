#include "model/task.hpp"

#include "common/expect.hpp"

namespace ones::model {

const char* family_name(TaskFamily family) {
  switch (family) {
    case TaskFamily::CvImageNet: return "CV/ImageNet";
    case TaskFamily::CvCifar: return "CV/CIFAR10";
    case TaskFamily::NlpBert: return "NLP/BERT";
  }
  return "?";
}

namespace {

std::vector<TaskProfile> make_profiles() {
  std::vector<TaskProfile> p;

  // ---- CV on ImageNet subsets (224x224 inputs). Per-sample times follow
  // public V100 mixed-precision-free fp32 throughput figures.
  p.push_back({.name = "AlexNet",
               .family = TaskFamily::CvImageNet,
               .params_bytes = 244e6,  // 61 M fp32 params
               .t_sample_s = 0.5e-3,
               .t_step_fixed_s = 8e-3,
               .max_local_batch = 512,
               .min_util_batch = 64,
               .b_ref = 256,
               .b_crit = 1024.0,
               .epochs_to_target_ref = 15.0,
               .init_loss = 2.8,
               .final_loss = 0.25,
               .target_accuracy = 0.85,
               .accuracy_ceiling = 0.92});
  p.push_back({.name = "ResNet50",
               .family = TaskFamily::CvImageNet,
               .params_bytes = 102e6,  // 25.6 M
               .t_sample_s = 1.5e-3,
               .t_step_fixed_s = 10e-3,
               .max_local_batch = 192,
               .min_util_batch = 32,
               .b_ref = 256,
               .b_crit = 1024.0,
               .epochs_to_target_ref = 20.0,
               .init_loss = 2.9,
               .final_loss = 0.20,
               .target_accuracy = 0.88,
               .accuracy_ceiling = 0.95});
  p.push_back({.name = "VGG16",
               .family = TaskFamily::CvImageNet,
               .params_bytes = 552e6,  // 138 M
               .t_sample_s = 2.0e-3,
               .t_step_fixed_s = 12e-3,
               .max_local_batch = 128,
               .min_util_batch = 24,
               .b_ref = 256,
               .b_crit = 1024.0,
               .epochs_to_target_ref = 20.0,
               .init_loss = 2.9,
               .final_loss = 0.22,
               .target_accuracy = 0.87,
               .accuracy_ceiling = 0.94});
  p.push_back({.name = "InceptionV3",
               .family = TaskFamily::CvImageNet,
               .params_bytes = 95e6,  // 23.8 M
               .t_sample_s = 1.8e-3,
               .t_step_fixed_s = 12e-3,
               .max_local_batch = 128,
               .min_util_batch = 32,
               .b_ref = 256,
               .b_crit = 1024.0,
               .epochs_to_target_ref = 20.0,
               .init_loss = 2.9,
               .final_loss = 0.22,
               .target_accuracy = 0.87,
               .accuracy_ceiling = 0.94});

  // ---- CV on CIFAR10 subsets (32x32 inputs, much cheaper per sample).
  p.push_back({.name = "ResNet18",
               .family = TaskFamily::CvCifar,
               .params_bytes = 47e6,  // 11.7 M
               .t_sample_s = 0.12e-3,
               .t_step_fixed_s = 5e-3,
               .max_local_batch = 2048,
               .min_util_batch = 128,
               .b_ref = 256,
               .b_crit = 512.0,
               .epochs_to_target_ref = 15.0,
               .init_loss = 2.3,
               .final_loss = 0.15,
               .target_accuracy = 0.90,
               .accuracy_ceiling = 0.96});
  p.push_back({.name = "VGG16-CIFAR",
               .family = TaskFamily::CvCifar,
               .params_bytes = 60e6,  // VGG16 with small classifier head
               .t_sample_s = 0.25e-3,
               .t_step_fixed_s = 6e-3,
               .max_local_batch = 1024,
               .min_util_batch = 128,
               .b_ref = 256,
               .b_crit = 512.0,
               .epochs_to_target_ref = 16.0,
               .init_loss = 2.3,
               .final_loss = 0.18,
               .target_accuracy = 0.89,
               .accuracy_ceiling = 0.95});
  p.push_back({.name = "GoogleNet",
               .family = TaskFamily::CvCifar,
               .params_bytes = 26e6,  // 6.6 M
               .t_sample_s = 0.30e-3,
               .t_step_fixed_s = 7e-3,
               .max_local_batch = 1024,
               .min_util_batch = 128,
               .b_ref = 256,
               .b_crit = 512.0,
               .epochs_to_target_ref = 15.0,
               .init_loss = 2.3,
               .final_loss = 0.17,
               .target_accuracy = 0.90,
               .accuracy_ceiling = 0.96});

  // ResNet50 on CIFAR10 is not part of the Table 2 trace but is the subject
  // of the paper's motivating measurements (Fig 2 throughput, Fig 3
  // convergence, Fig 13/14 batch-size scaling).
  p.push_back({.name = "ResNet50-CIFAR",
               .family = TaskFamily::CvCifar,
               .params_bytes = 102e6,
               .t_sample_s = 0.35e-3,
               .t_step_fixed_s = 10e-3,
               .max_local_batch = 1024,
               .min_util_batch = 128,
               .b_ref = 256,
               .b_crit = 512.0,
               .epochs_to_target_ref = 18.0,
               .init_loss = 2.3,
               .final_loss = 0.15,
               .target_accuracy = 0.90,
               .accuracy_ceiling = 0.96});

  // ---- NLP: BERT-base fine-tuning on GLUE subsets (seq len 128).
  p.push_back({.name = "BERT",
               .family = TaskFamily::NlpBert,
               .params_bytes = 440e6,  // 110 M
               .t_sample_s = 2.5e-3,
               .t_step_fixed_s = 15e-3,
               .max_local_batch = 128,
               .min_util_batch = 8,
               .b_ref = 32,
               .b_crit = 128.0,
               .epochs_to_target_ref = 4.0,
               .init_loss = 0.9,
               .final_loss = 0.20,
               .target_accuracy = 0.83,
               .accuracy_ceiling = 0.89});

  return p;
}

}  // namespace

const std::vector<TaskProfile>& builtin_profiles() {
  static const std::vector<TaskProfile> profiles = make_profiles();
  return profiles;
}

const TaskProfile& profile_by_name(const std::string& name) {
  for (const auto& p : builtin_profiles()) {
    if (p.name == name) return p;
  }
  ONES_EXPECT_MSG(false, "unknown task profile: " + name);
  // unreachable
  return builtin_profiles().front();
}

}  // namespace ones::model
