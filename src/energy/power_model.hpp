// Deterministic GPU cluster power model (DESIGN.md §10).
//
// Watts are a pure function of the schedule: for a worker of a data-parallel
// job, the fraction of a synchronous step it spends computing (rather than
// waiting on stragglers / the all-reduce) is
//
//   u_i = (t_fixed + max(b_i, min_util_batch) * t_sample) / step_time
//
// with step_time from model::step_time_s — the same decomposition the
// throughput model uses, so power scales with the batch assignment exactly
// like throughput does. The electrical model is the usual affine one:
//
//   watts_i = gpu_idle_w + (gpu_busy_w - gpu_idle_w)
//                        * (u_i + comm_power_fraction * (1 - u_i))
//
// comm_power_fraction accounts for the copy engines / NIC keeping the board
// well above idle while it waits on the ring all-reduce. Unoccupied GPUs draw
// gpu_idle_w; every node additionally draws node_base_w (CPUs, fans, PSU
// losses) regardless of load. All outputs are watts (J/s); integrating them
// over sim-time (energy::EnergyMeter) yields joules.
//
// Determinism: no state, no RNG, no wall-clock — identical inputs give
// bit-identical watts on every platform the throughput model does.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/topology.hpp"
#include "model/task.hpp"

namespace ones::energy {

/// Electrical constants. Defaults approximate the paper's testbed V100
/// SXM2 boards (300 W TDP, ~50 W idle) and a 2-socket host per 4-GPU node.
struct PowerConfig {
  double gpu_idle_w = 52.0;          ///< powered but unoccupied GPU
  double gpu_busy_w = 300.0;         ///< fully-utilized GPU (TDP)
  double node_base_w = 350.0;        ///< per-node host draw (CPU, fans, PSU)
  /// Fraction of the busy-minus-idle range a worker still draws while
  /// stalled on communication (copy engines + NIC), in [0, 1].
  double comm_power_fraction = 0.25;
};

class PowerModel {
 public:
  explicit PowerModel(const PowerConfig& config);

  const PowerConfig& config() const { return config_; }
  double idle_gpu_watts() const { return config_.gpu_idle_w; }
  double node_base_watts() const { return config_.node_base_w; }

  /// Watts drawn by worker `index` of a job running `local_batches` over
  /// `link` (the slowest link of the worker set, as in model::step_time_s).
  double worker_watts(const model::TaskProfile& profile,
                      const std::vector<int>& local_batches, std::size_t index,
                      const cluster::LinkProfile& link) const;

  /// Sum of worker_watts over all workers.
  double job_watts(const model::TaskProfile& profile,
                   const std::vector<int>& local_batches,
                   const cluster::LinkProfile& link) const;

  /// job_watts with `global_batch` split evenly over `workers` GPUs — the
  /// candidate-evaluation form used by schedulers (mirrors
  /// model::throughput_even_sps).
  double job_watts_even(const model::TaskProfile& profile, int global_batch,
                        int workers, const cluster::LinkProfile& link) const;

 private:
  PowerConfig config_;
};

}  // namespace ones::energy
