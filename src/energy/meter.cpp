#include "energy/meter.hpp"

#include "common/expect.hpp"

namespace ones::energy {

EnergyMeter::EnergyMeter(const PowerModel& model, const cluster::Topology& topology,
                         ProfileLookup profile_of)
    : model_(&model),
      topology_(&topology),
      profile_of_(std::move(profile_of)),
      watts_by_node_(static_cast<std::size_t>(topology.num_nodes()), 0.0),
      joules_by_node_(static_cast<std::size_t>(topology.num_nodes()), 0.0) {
  ONES_EXPECT(profile_of_ != nullptr);
  rescan(cluster::Assignment(topology_->total_gpus()));
}

void EnergyMeter::set_metrics(telemetry::MetricsRegistry* registry) {
  registry_ = registry;
  if (registry_ != nullptr) {
    watts_series_ = registry_->timeline().series("cluster_watts");
    publish(last_t_);
  }
}

void EnergyMeter::accumulate(double now) {
  ONES_EXPECT_MSG(now >= last_t_, "sim clock moved backwards");
  const double dt = now - last_t_;
  if (dt > 0.0) {
    cluster_joules_ += cluster_watts_ * dt;
    overhead_joules_ += overhead_watts_ * dt;
    for (const auto& [job, watts] : watts_by_job_) {
      joules_by_job_[job] += watts * dt;
    }
    for (std::size_t n = 0; n < watts_by_node_.size(); ++n) {
      joules_by_node_[n] += watts_by_node_[n] * dt;
    }
    if (registry_ != nullptr) {
      registry_->counter("energy_cluster_joules_total").add(cluster_watts_ * dt);
      registry_->counter("energy_overhead_joules_total").add(overhead_watts_ * dt);
    }
  }
  last_t_ = now;
}

void EnergyMeter::rescan(const cluster::Assignment& next) {
  watts_by_job_.clear();
  watts_by_node_.assign(watts_by_node_.size(), 0.0);
  // Per-node base draw is unconditional: a node is powered whether or not
  // any of its GPUs host a worker.
  const double base = model_->node_base_watts();
  for (double& w : watts_by_node_) w += base;
  overhead_watts_ = base * static_cast<double>(topology_->num_nodes());

  for (JobId job : next.running_jobs()) {
    const model::TaskProfile* profile = profile_of_(job);
    ONES_EXPECT_MSG(profile != nullptr, "no task profile for a placed job");
    const std::vector<GpuId> gpus = next.gpus_of(job);
    std::vector<int> batches;
    batches.reserve(gpus.size());
    for (GpuId g : gpus) batches.push_back(next.slot(g).local_batch);
    const cluster::LinkProfile link = topology_->link_profile(gpus);
    double job_w = 0.0;
    for (std::size_t i = 0; i < gpus.size(); ++i) {
      const double w = model_->worker_watts(*profile, batches, i, link);
      watts_by_node_[static_cast<std::size_t>(topology_->node_of(gpus[i]))] += w;
      job_w += w;
    }
    watts_by_job_.emplace(job, job_w);
  }

  const double idle = model_->idle_gpu_watts();
  for (GpuId g : next.idle_gpus()) {
    watts_by_node_[static_cast<std::size_t>(topology_->node_of(g))] += idle;
    overhead_watts_ += idle;
  }

  cluster_watts_ = overhead_watts_;
  for (const auto& [job, watts] : watts_by_job_) cluster_watts_ += watts;
}

double EnergyMeter::job_joules(JobId job) const {
  const auto it = joules_by_job_.find(job);
  return it == joules_by_job_.end() ? 0.0 : it->second;
}

void EnergyMeter::publish(double now) {
  if (registry_ == nullptr) return;
  registry_->timeline().record(watts_series_, now, cluster_watts_);
  registry_->gauge("energy_cluster_watts").set(cluster_watts_);
}

void EnergyMeter::on_assignment(const cluster::Assignment& next, double now) {
  accumulate(now);
  rescan(next);
  publish(now);
}

void EnergyMeter::finalize(double now) {
  accumulate(now);
  publish(now);
}

}  // namespace ones::energy
