#include "energy/power_model.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "model/throughput.hpp"

namespace ones::energy {

PowerModel::PowerModel(const PowerConfig& config) : config_(config) {
  ONES_EXPECT_MSG(config_.gpu_idle_w >= 0.0, "idle watts must be non-negative");
  ONES_EXPECT_MSG(config_.gpu_busy_w >= config_.gpu_idle_w,
                  "busy watts below idle watts");
  ONES_EXPECT_MSG(config_.node_base_w >= 0.0, "node base watts must be non-negative");
  ONES_EXPECT_MSG(
      config_.comm_power_fraction >= 0.0 && config_.comm_power_fraction <= 1.0,
      "comm_power_fraction must be in [0, 1]");
}

double PowerModel::worker_watts(const model::TaskProfile& profile,
                                const std::vector<int>& local_batches,
                                std::size_t index,
                                const cluster::LinkProfile& link) const {
  ONES_EXPECT(index < local_batches.size());
  const double step = model::step_time_s(profile, local_batches, link);
  // This worker computes for its own (launch-bound-floored) batch; the rest
  // of the step it stalls on stragglers + the all-reduce.
  const int b = std::max(local_batches[index], profile.min_util_batch);
  const double compute =
      profile.t_step_fixed_s + static_cast<double>(b) * profile.t_sample_s;
  const double u = std::min(compute / step, 1.0);
  const double active = u + config_.comm_power_fraction * (1.0 - u);
  return config_.gpu_idle_w + (config_.gpu_busy_w - config_.gpu_idle_w) * active;
}

double PowerModel::job_watts(const model::TaskProfile& profile,
                             const std::vector<int>& local_batches,
                             const cluster::LinkProfile& link) const {
  double watts = 0.0;
  for (std::size_t i = 0; i < local_batches.size(); ++i) {
    watts += worker_watts(profile, local_batches, i, link);
  }
  return watts;
}

double PowerModel::job_watts_even(const model::TaskProfile& profile,
                                  int global_batch, int workers,
                                  const cluster::LinkProfile& link) const {
  return job_watts(profile, model::even_split(global_batch, workers), link);
}

}  // namespace ones::energy
