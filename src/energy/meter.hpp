// Sim-time energy accounting (DESIGN.md §10).
//
// The meter holds the cluster's current watts decomposition — per running
// job, per node, plus an overhead term (idle GPUs + per-node base power) —
// and integrates it into joules whenever the schedule changes:
//
//   joules += watts * (now - last_change)
//
// Attribution: a busy GPU's full draw is charged to the job occupying it;
// idle-GPU and node-base draw go to the `overhead` bucket. By construction
//
//   cluster_joules == sum_j job_joules(j) + overhead_joules
//   cluster_joules == sum_n node_joules(n)
//
// (node joules include each node's base power). The driver feeds every
// assignment change through `on_assignment` and closes the final interval
// with `finalize`, so the totals are exact integrals of the step-function
// power draw — the property tests/energy_test.cpp checks against the
// exported `cluster_watts` timeline.
//
// Determinism: watts derive from PowerModel (pure), intervals from the sim
// clock. The optional MetricsRegistry follows the §9 contract — null by
// default, one branch per emission site, attaching it never changes joules.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "cluster/assignment.hpp"
#include "cluster/topology.hpp"
#include "energy/power_model.hpp"
#include "model/task.hpp"
#include "telemetry/registry.hpp"

namespace ones::energy {

class EnergyMeter {
 public:
  /// Resolves a job id to its task profile; must stay valid for the meter's
  /// lifetime and cover every job that ever appears in an assignment.
  using ProfileLookup = std::function<const model::TaskProfile*(JobId)>;

  /// Starts metering at sim-time 0 with an empty (all-idle) cluster.
  /// `model` and `topology` are borrowed, not owned.
  EnergyMeter(const PowerModel& model, const cluster::Topology& topology,
              ProfileLookup profile_of);

  /// Attach a registry (may be null). Publishes the `cluster_watts` timeline
  /// series, the `energy_cluster_watts` gauge and the monotone
  /// `energy_*_joules_total` counters.
  void set_metrics(telemetry::MetricsRegistry* registry);

  /// Integrate the previous watts up to `now`, then recompute the draw from
  /// `next`. Call on every applied schedule change (idempotent for repeated
  /// calls at the same sim-time or an unchanged assignment).
  void on_assignment(const cluster::Assignment& next, double now);

  /// Close the final interval at the end of the run.
  void finalize(double now);

  /// Sim-time up to which joules have been integrated (the last
  /// on_assignment/finalize time).
  double metered_until() const { return last_t_; }

  // ---- Current draw (watts) ----
  double cluster_watts() const { return cluster_watts_; }
  double overhead_watts() const { return overhead_watts_; }

  // ---- Integrated energy (joules) ----
  double cluster_joules() const { return cluster_joules_; }
  double overhead_joules() const { return overhead_joules_; }
  /// Energy charged to a job so far (0.0 for jobs that never ran).
  double job_joules(JobId job) const;
  /// Deterministic (id-ordered) per-job totals for every job that ran.
  const std::map<JobId, double>& joules_by_job() const { return joules_by_job_; }
  /// Per-node totals (base power included), indexed by NodeId.
  const std::vector<double>& joules_by_node() const { return joules_by_node_; }

 private:
  void accumulate(double now);
  void rescan(const cluster::Assignment& next);
  void publish(double now);

  const PowerModel* model_;
  const cluster::Topology* topology_;
  ProfileLookup profile_of_;

  double last_t_ = 0.0;
  double cluster_watts_ = 0.0;
  double overhead_watts_ = 0.0;
  std::map<JobId, double> watts_by_job_;
  std::vector<double> watts_by_node_;

  double cluster_joules_ = 0.0;
  double overhead_joules_ = 0.0;
  std::map<JobId, double> joules_by_job_;
  std::vector<double> joules_by_node_;

  telemetry::MetricsRegistry* registry_ = nullptr;
  telemetry::TimelineSampler::SeriesId watts_series_ = 0;
};

}  // namespace ones::energy
