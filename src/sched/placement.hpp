// Locality-aware placement helper shared by the gang-scheduling baselines.
//
// Picks idle GPUs for a worker set, preferring to pack the whole set onto a
// single node (best-fit: the node whose free-GPU count is smallest but
// sufficient), falling back to spilling across the emptiest nodes. ONES
// achieves the same effect through its *reorder* evolution operator instead.
#pragma once

#include <vector>

#include "cluster/assignment.hpp"
#include "cluster/topology.hpp"

namespace ones::sched {

/// Choose `count` idle GPUs in `assignment`. Returns an empty vector if
/// fewer than `count` GPUs are idle.
std::vector<GpuId> pick_idle_gpus(const cluster::Assignment& assignment,
                                  const cluster::Topology& topology, int count);

/// Place `job` on `gpus` splitting `global_batch` as evenly as possible.
void place_job_even(cluster::Assignment& assignment, JobId job,
                    const std::vector<GpuId>& gpus, int global_batch);

}  // namespace ones::sched
