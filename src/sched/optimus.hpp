// Optimus baseline (Peng et al., EuroSys'18), adapted to all-reduce training
// as in the paper's evaluation (worker counts only, no parameter servers).
//
// Optimus reschedules the whole cluster every 10 minutes. Each round it
//  1. predicts every job's remaining epochs by fitting the convergence curve
//     observed so far (we fit 1/(1 - accuracy) = a*k + b, the reciprocal
//     form Optimus uses for loss curves, and extrapolate to the target
//     accuracy plus the convergence-confirmation tail),
//  2. gives every job its minimum feasible worker count (shortest predicted
//     remaining time first, so the fairness floor degrades gracefully when
//     over-subscribed), and
//  3. greedily adds one GPU at a time to the job with the largest marginal
//     reduction in predicted remaining time, until the cluster is full or no
//     job benefits.
//
// Job batch sizes stay fixed at submission values (Table 3: elastic job
// size, no elastic batch size); re-configurations use checkpoint migration.
#pragma once

#include "sched/scheduler.hpp"

namespace ones::sched {

struct OptimusConfig {
  double reschedule_period_s = 600.0;  ///< the paper uses Optimus's 10 min
  int max_workers_per_job = 16;
  /// Prior for jobs with too little history to fit a curve.
  double default_total_epochs = 30.0;
  int patience_epochs = 10;  ///< convergence-confirmation tail (paper §4.1)
};

class OptimusScheduler : public Scheduler {
 public:
  explicit OptimusScheduler(const OptimusConfig& config = {}) : config_(config) {}

  std::string name() const override { return "Optimus"; }
  ScalingMechanism mechanism() const override { return ScalingMechanism::Checkpoint; }
  double period_s() const override { return config_.reschedule_period_s; }

  std::optional<cluster::Assignment> on_event(const ClusterState& state,
                                              const SchedulerEvent& event) override;

  /// Predicted remaining epochs for a job (exposed for tests).
  double predict_remaining_epochs(const JobView& job) const;

 private:
  OptimusConfig config_;
};

}  // namespace ones::sched
