// Scheduler interface and the cluster state exposed to scheduling policies.
//
// Every scheduler — ONES, DRL, Tiresias, Optimus, FIFO, SRTF — implements
// the same callback interface and runs on the same simulation driver, so
// comparisons isolate policy differences exactly as the paper's shared
// testbed did.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cluster/assignment.hpp"
#include "cluster/topology.hpp"
#include "common/ids.hpp"
#include "model/task.hpp"
#include "trace/sink.hpp"
#include "workload/trace.hpp"

namespace ones::telemetry {
class MetricsRegistry;
}

namespace ones::prof {
class Profiler;
}

namespace ones::energy {
class PowerModel;
}

namespace ones::sched {

/// Recovering: the job lost its workers to a failure and sits out a backoff
/// window before rejoining the queue (DESIGN.md §13). Schedulers do not see
/// Recovering jobs in waiting_jobs(); placing one anyway is allowed and
/// simply ends the backoff early.
enum class JobStatus { Waiting, Running, Completed, Recovering };

const char* status_name(JobStatus status);

/// How a scheduler's re-configurations are executed, which determines the
/// cost charged per change (paper §4.3): ONES uses the elastic mechanism
/// (~1 s); the baselines use checkpoint-based migration (tens of seconds).
enum class ScalingMechanism { Elastic, Checkpoint };

/// One row of the per-epoch progress upload (paper §3.1: workers report
/// progress to the central scheduler at the end of each epoch).
struct EpochLogEntry {
  double time_s = 0.0;
  double samples_processed = 0.0;
  double train_loss = 0.0;
  double val_accuracy = 0.0;
  int global_batch = 0;
};

/// Everything a scheduler may observe about a job. No ground-truth
/// convergence state leaks through this struct; schedulers that want
/// predictions must build them from the epoch log (as ONES and Optimus do).
struct JobView {
  workload::JobSpec spec;
  const model::TaskProfile* profile = nullptr;  ///< public job metadata
  JobStatus status = JobStatus::Waiting;

  double samples_processed = 0.0;  ///< Y_processed
  double exec_time_s = 0.0;        ///< T_processed
  double throughput_sps = 0.0;     ///< last measured throughput
  double train_loss = 0.0;
  double val_accuracy = 0.0;
  double init_loss = 0.0;          ///< loss measured before training

  /// The job ended abnormally (killed / crashed) before converging. Such
  /// jobs still free their resources through a JobComplete event, but their
  /// history must not be mistaken for a converged training run.
  bool aborted = false;

  int gpus = 0;          ///< c_j under the current schedule
  int global_batch = 0;  ///< B_j under the current schedule
  int epochs_completed = 0;
  std::vector<EpochLogEntry> epoch_log;

  double dataset_size() const { return static_cast<double>(spec.variant.dataset_size); }
};

class ThroughputOracle;

/// CapacityChange: healthy capacity moved under the scheduler (a GPU went
/// down or came back, or a recovering job rejoined the queue). Delivered
/// with the victim job when the change is job-scoped, kInvalidJob otherwise.
enum class EventKind { JobArrival, EpochComplete, JobComplete, Timer, CapacityChange };

const char* event_name(EventKind kind);

struct SchedulerEvent {
  EventKind kind = EventKind::Timer;
  JobId job = kInvalidJob;  ///< subject job (invalid for Timer)
};

/// Snapshot handed to the scheduler on every event.
struct ClusterState {
  double now = 0.0;
  const cluster::Topology* topology = nullptr;
  const cluster::Assignment* current = nullptr;
  /// All submitted jobs (any status), indexed by JobId order of arrival.
  std::vector<const JobView*> jobs;
  /// Optional driver-maintained indexes (incremental scheduler state,
  /// DESIGN.md §12). `active_index` holds the non-Completed subset of `jobs`
  /// in the same arrival order; `id_index` holds all of `jobs` sorted by
  /// JobId. When null (hand-built states in tests), every helper falls back
  /// to scanning `jobs`, with identical results.
  const std::vector<const JobView*>* active_index = nullptr;
  const std::vector<const JobView*>* id_index = nullptr;
  const ThroughputOracle* oracle = nullptr;
  /// The driver's power model (DESIGN.md §10) — the same instance the
  /// EnergyMeter bills with, so energy-aware policies (ONES's lambda_energy
  /// blend, the PowerCap baseline) evaluate candidates against the meter
  /// they will be charged by.
  const energy::PowerModel* power = nullptr;
  /// Ground-truth remaining raw samples of a job at a given fixed batch.
  /// ONLY the SRTF-oracle upper-bound baseline may use this; production
  /// schedulers must predict from the epoch logs instead.
  std::function<double(JobId, int)> true_remaining_samples;

  const JobView* job(JobId id) const;
  std::vector<const JobView*> waiting_jobs() const;
  std::vector<const JobView*> running_jobs() const;
  std::vector<const JobView*> active_jobs() const;  ///< waiting + running
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;
  virtual ScalingMechanism mechanism() const { return ScalingMechanism::Checkpoint; }
  /// Non-zero: the driver additionally delivers Timer events at this period
  /// (Optimus reschedules every 10 minutes).
  virtual double period_s() const { return 0.0; }

  /// React to a cluster event. Return a full new Assignment to re-schedule
  /// the cluster, or nullopt to keep the current allocation.
  virtual std::optional<cluster::Assignment> on_event(const ClusterState& state,
                                                      const SchedulerEvent& event) = 0;

  /// Install (or clear, with nullptr) the trace sink for policy-internal
  /// records such as ONES's EvolutionStep. The simulation driver wires this
  /// from its own config on construction; the sink is not owned.
  void set_trace_sink(trace::TraceSink* sink) { trace_sink_ = sink; }

  /// Install (or clear) the metrics registry for policy-internal instruments
  /// (ONES's evolution counters, the predictor's error gauge). Virtual so
  /// composite schedulers can propagate the pointer to their sub-components;
  /// the registry is not owned. Same contract as the trace sink: null by
  /// default, every emission site null-guarded, never affects decisions.
  virtual void set_metrics(telemetry::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Install (or clear) the host-time profiler for policy-internal spans
  /// (ONES's evolution operator steps, the predictor's fits — DESIGN.md
  /// §14). Virtual for the same reason as set_metrics: composite schedulers
  /// propagate the pointer to their sub-components. Identical contract:
  /// not owned, null by default, every span site costs one branch when off,
  /// and profiling never affects decisions.
  virtual void set_profiler(prof::Profiler* profiler) { profiler_ = profiler; }

 protected:
  /// Null by default: emission sites must check before building a record.
  trace::TraceSink* trace_sink_ = nullptr;
  /// Null by default: emission sites must check before recording.
  telemetry::MetricsRegistry* metrics_ = nullptr;
  /// Null by default: span sites cost one branch until a profiler attaches.
  prof::Profiler* profiler_ = nullptr;
};

}  // namespace ones::sched
