#include "sched/srtf.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "sched/oracle.hpp"
#include "sched/placement.hpp"

namespace ones::sched {

std::optional<cluster::Assignment> SrtfOracleScheduler::on_event(
    const ClusterState& state, const SchedulerEvent& event) {
  (void)event;
  ONES_EXPECT_MSG(state.true_remaining_samples != nullptr,
                  "SRTF* requires the simulator oracle hook");

  struct Cand {
    const JobView* job;
    double remaining_s;
  };
  std::vector<Cand> cands;
  for (const JobView* job : state.active_jobs()) {
    const double rem = state.true_remaining_samples(job->spec.id, job->spec.requested_batch);
    const double x = state.oracle->estimate_sps(*job, job->spec.requested_gpus,
                                                job->spec.requested_batch,
                                                state.oracle->can_colocate(job->spec.requested_gpus));
    cands.push_back({job, rem / x});
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.remaining_s != b.remaining_s) return a.remaining_s < b.remaining_s;
    return a.job->spec.id < b.job->spec.id;
  });

  // Greedy selection with skip-over: shortest jobs first, fit what we can.
  int capacity = state.current->healthy_count();
  std::vector<const JobView*> selected;
  for (const Cand& c : cands) {
    if (c.job->spec.requested_gpus <= capacity) {
      selected.push_back(c.job);
      capacity -= c.job->spec.requested_gpus;
    }
  }

  // No change if the selected set matches what is already running.
  const auto running = state.current->running_jobs();
  if (selected.size() == running.size()) {
    bool same = true;
    for (const JobView* j : selected) {
      if (std::find(running.begin(), running.end(), j->spec.id) == running.end()) {
        same = false;
        break;
      }
    }
    if (same) return std::nullopt;
  }

  cluster::Assignment next = cluster::Assignment::empty_like(*state.current);
  // Keep the placement of jobs that stay scheduled (avoid pointless moves).
  for (const JobView* j : selected) {
    if (j->status == JobStatus::Running) {
      for (GpuId g : state.current->gpus_of(j->spec.id)) {
        next.place(g, j->spec.id, state.current->slot(g).local_batch);
      }
    }
  }
  for (const JobView* j : selected) {
    if (j->status != JobStatus::Running) {
      const auto gpus = pick_idle_gpus(next, *state.topology, j->spec.requested_gpus);
      ONES_EXPECT_MSG(!gpus.empty(), "capacity accounting broke in SRTF*");
      place_job_even(next, j->spec.id, gpus, j->spec.requested_batch);
    }
  }
  return next;
}

}  // namespace ones::sched
