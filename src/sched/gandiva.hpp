// Gandiva-style time-slicing baseline (Xiao et al., OSDI'18; paper §5).
//
// Gandiva over-subscribes the cluster by time-slicing GPUs across jobs with
// cheap suspend-resume, and introspectively migrates jobs to improve
// locality. This simplified reimplementation keeps the two defining
// behaviours:
//
//  * round-robin time slicing: every quantum, jobs that have consumed a
//    full slice rotate out in favour of the longest-waiting jobs (fixed
//    user-requested sizes, like Tiresias);
//  * introspective packing: when a rotation happens anyway, workers are
//    re-placed with the locality-aware placement helper.
//
// Suspend/resume in Gandiva is a fast GPU-memory swap rather than a full
// checkpoint, so this scheduler reports the Elastic mechanism cost class.
//
// Not part of the paper's evaluated baselines — an extra reference point
// for the library.
#pragma once

#include <unordered_map>

#include "sched/scheduler.hpp"

namespace ones::sched {

struct GandivaConfig {
  /// Time-slicing quantum; Gandiva's default round is of this order.
  double quantum_s = 60.0;
};

class GandivaScheduler : public Scheduler {
 public:
  explicit GandivaScheduler(const GandivaConfig& config = {}) : config_(config) {}

  std::string name() const override { return "Gandiva"; }
  /// Suspend-resume is a cheap device-memory swap, not a checkpoint.
  ScalingMechanism mechanism() const override { return ScalingMechanism::Elastic; }
  double period_s() const override { return config_.quantum_s; }

  std::optional<cluster::Assignment> on_event(const ClusterState& state,
                                              const SchedulerEvent& event) override;

 private:
  GandivaConfig config_;
  /// Executed time at the start of each job's current slice.
  // ones-lint: unordered-ok(per-job slice bookkeeping, keyed access only; candidate order comes from state.active_jobs())
  std::unordered_map<JobId, double> slice_start_exec_;
};

}  // namespace ones::sched
