// Shortest-Remaining-Processing-Time oracle baseline.
//
// Preemptive SRPT with ground-truth remaining work (via the simulator's
// oracle hook). No real scheduler can implement this — it serves as an
// upper bound on what job-length-aware prioritization alone can achieve
// with fixed, user-requested job sizes. The paper's SRUF objective (§3.2.1)
// extends SRPT; comparing ONES against this oracle separates the benefit of
// batch-size elasticity from the benefit of knowing job lengths.
#pragma once

#include "sched/scheduler.hpp"

namespace ones::sched {

class SrtfOracleScheduler : public Scheduler {
 public:
  std::string name() const override { return "SRTF*"; }
  ScalingMechanism mechanism() const override { return ScalingMechanism::Checkpoint; }

  std::optional<cluster::Assignment> on_event(const ClusterState& state,
                                              const SchedulerEvent& event) override;
};

}  // namespace ones::sched
