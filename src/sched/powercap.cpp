#include "sched/powercap.hpp"

#include <vector>

#include "common/expect.hpp"
#include "energy/power_model.hpp"
#include "sched/placement.hpp"

namespace ones::sched {

namespace {

/// Draw of `assignment` under the driver's power model: per-node base +
/// idle-GPU draw + every running job's worker draw (the same decomposition
/// energy::EnergyMeter bills with).
double assignment_watts(const cluster::Assignment& assignment,
                        const ClusterState& state) {
  const energy::PowerConfig& cfg = state.power->config();
  double watts =
      static_cast<double>(state.topology->num_nodes()) * cfg.node_base_w +
      static_cast<double>(assignment.idle_count()) * cfg.gpu_idle_w;
  for (JobId id : assignment.running_jobs()) {
    const JobView* job = state.job(id);
    ONES_EXPECT_MSG(job != nullptr && job->profile != nullptr,
                    "assignment references an unknown job");
    const std::vector<GpuId> gpus = assignment.gpus_of(id);
    std::vector<int> batches;
    batches.reserve(gpus.size());
    for (GpuId g : gpus) batches.push_back(assignment.slot(g).local_batch);
    watts += state.power->job_watts(*job->profile, batches,
                                    state.topology->link_profile(gpus));
  }
  return watts;
}

}  // namespace

PowerCapScheduler::PowerCapScheduler(const PowerCapConfig& config) : config_(config) {
  ONES_EXPECT_MSG(config_.cap_fraction > 0.0 && config_.cap_fraction <= 1.0,
                  "cap_fraction must be in (0, 1]");
  ONES_EXPECT_MSG(config_.cap_watts >= 0.0, "cap_watts must be non-negative");
}

double PowerCapScheduler::cap_watts(const ClusterState& state) const {
  if (config_.cap_watts > 0.0) return config_.cap_watts;
  const energy::PowerConfig& cfg = state.power->config();
  const double peak =
      static_cast<double>(state.topology->total_gpus()) * cfg.gpu_busy_w +
      static_cast<double>(state.topology->num_nodes()) * cfg.node_base_w;
  return config_.cap_fraction * peak;
}

std::optional<cluster::Assignment> PowerCapScheduler::on_event(
    const ClusterState& state, const SchedulerEvent& event) {
  if (event.kind == EventKind::EpochComplete) return std::nullopt;
  ONES_EXPECT_MSG(state.power != nullptr, "PowerCap requires the driver power model");

  cluster::Assignment next = *state.current;
  double watts = assignment_watts(next, state);
  const double cap = cap_watts(state);
  bool any_running = !next.running_jobs().empty();
  bool changed = false;
  for (const JobView* job : state.waiting_jobs()) {  // arrival order
    const auto gpus = pick_idle_gpus(next, *state.topology, job->spec.requested_gpus);
    if (gpus.empty()) continue;  // backfill past blocked heads
    // Projected draw: the chosen GPUs stop idling and start working.
    const double job_w = state.power->job_watts_even(
        *job->profile, job->spec.requested_batch, static_cast<int>(gpus.size()),
        state.topology->link_profile(gpus));
    const double projected =
        watts + job_w -
        static_cast<double>(gpus.size()) * state.power->idle_gpu_watts();
    if (projected > cap && any_running) continue;  // over budget: stay queued
    place_job_even(next, job->spec.id, gpus, job->spec.requested_batch);
    watts = projected;
    any_running = true;
    changed = true;
  }
  if (!changed) return std::nullopt;
  return next;
}

}  // namespace ones::sched
