#include "sched/gandiva.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "sched/placement.hpp"

namespace ones::sched {

std::optional<cluster::Assignment> GandivaScheduler::on_event(const ClusterState& state,
                                                              const SchedulerEvent& event) {
  // Between quanta: only fill freed capacity with the longest-waiting jobs
  // (no preemption outside rotation points).
  const bool rotation = event.kind == EventKind::Timer;

  // Order candidates: jobs that have not run this slice (waiting) first, by
  // how little total service they have attained (fair sharing), then
  // currently running jobs that still have quantum left.
  struct Cand {
    const JobView* job;
    bool expired = false;  ///< running and consumed a full quantum
  };
  std::vector<Cand> waiting, running_fresh, running_expired;
  for (const JobView* job : state.active_jobs()) {
    if (job->status == JobStatus::Waiting) {
      waiting.push_back({job, false});
      continue;
    }
    double start = 0.0;
    auto it = slice_start_exec_.find(job->spec.id);
    if (it != slice_start_exec_.end()) start = it->second;
    const bool expired = rotation && (job->exec_time_s - start >= config_.quantum_s);
    (expired ? running_expired : running_fresh).push_back({job, expired});
  }
  // Fair sharing: least attained service first among the waiting.
  std::sort(waiting.begin(), waiting.end(), [](const Cand& a, const Cand& b) {
    if (a.job->exec_time_s != b.job->exec_time_s) {
      return a.job->exec_time_s < b.job->exec_time_s;
    }
    return a.job->spec.id < b.job->spec.id;
  });

  // Selection order: fresh running jobs keep their slice; waiting jobs fill
  // the rest; expired jobs re-enter only if space remains (they rotate out
  // when others are starving).
  std::vector<const JobView*> selected;
  int capacity = state.current->healthy_count();
  auto take = [&](const std::vector<Cand>& pool) {
    for (const Cand& c : pool) {
      if (c.job->spec.requested_gpus <= capacity) {
        selected.push_back(c.job);
        capacity -= c.job->spec.requested_gpus;
      }
    }
  };
  take(running_fresh);
  take(waiting);
  take(running_expired);

  // Anything to change?
  const auto running_now = state.current->running_jobs();
  if (selected.size() == running_now.size()) {
    bool same = true;
    for (const JobView* j : selected) {
      if (std::find(running_now.begin(), running_now.end(), j->spec.id) ==
          running_now.end()) {
        same = false;
        break;
      }
    }
    if (same) return std::nullopt;
  }

  cluster::Assignment next = cluster::Assignment::empty_like(*state.current);
  for (const JobView* j : selected) {
    if (j->status == JobStatus::Running) {
      for (GpuId g : state.current->gpus_of(j->spec.id)) {
        next.place(g, j->spec.id, state.current->slot(g).local_batch);
      }
    }
  }
  for (const JobView* j : selected) {
    if (j->status != JobStatus::Running) {
      // Introspective packing: locality-aware placement on (re)entry.
      const auto gpus = pick_idle_gpus(next, *state.topology, j->spec.requested_gpus);
      ONES_EXPECT_MSG(!gpus.empty(), "capacity accounting broke in Gandiva");
      place_job_even(next, j->spec.id, gpus, j->spec.requested_batch);
      slice_start_exec_[j->spec.id] = j->exec_time_s;  // slice begins
    }
  }
  return next;
}

}  // namespace ones::sched
