#include "sched/tiresias.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "sched/placement.hpp"

namespace ones::sched {

int TiresiasScheduler::queue_of(const JobView& job) const {
  const double service = static_cast<double>(job.spec.requested_gpus) * job.exec_time_s;
  int q = 0;
  for (double threshold : config_.queue_thresholds) {
    if (service < threshold) return q;
    ++q;
  }
  return q;
}

std::optional<cluster::Assignment> TiresiasScheduler::on_event(const ClusterState& state,
                                                               const SchedulerEvent& event) {
  (void)event;

  struct Cand {
    const JobView* job;
    int queue;
    double waited;
  };
  std::vector<Cand> cands;
  for (const JobView* job : state.active_jobs()) {
    int q = queue_of(*job);
    if (config_.promote_knob > 0.0 && job->status == JobStatus::Waiting) {
      const double waited = state.now - job->spec.arrival_time_s - job->exec_time_s;
      if (job->exec_time_s > 0.0 && waited > config_.promote_knob * job->exec_time_s) {
        q = 0;  // STARVE-FREE promotion
      }
    }
    cands.push_back({job, q, 0.0});
  }
  // Priority: lower queue first; FIFO (arrival order) within a queue.
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.queue != b.queue) return a.queue < b.queue;
    return a.job->spec.id < b.job->spec.id;
  });

  int capacity = state.current->healthy_count();
  std::vector<const JobView*> selected;
  for (const Cand& c : cands) {
    if (c.job->spec.requested_gpus <= capacity) {
      selected.push_back(c.job);
      capacity -= c.job->spec.requested_gpus;
    }
  }

  const auto running = state.current->running_jobs();
  if (selected.size() == running.size()) {
    bool same = true;
    for (const JobView* j : selected) {
      if (std::find(running.begin(), running.end(), j->spec.id) == running.end()) {
        same = false;
        break;
      }
    }
    if (same) return std::nullopt;
  }

  cluster::Assignment next = cluster::Assignment::empty_like(*state.current);
  for (const JobView* j : selected) {
    if (j->status == JobStatus::Running) {
      for (GpuId g : state.current->gpus_of(j->spec.id)) {
        next.place(g, j->spec.id, state.current->slot(g).local_batch);
      }
    }
  }
  for (const JobView* j : selected) {
    if (j->status != JobStatus::Running) {
      const auto gpus = pick_idle_gpus(next, *state.topology, j->spec.requested_gpus);
      ONES_EXPECT_MSG(!gpus.empty(), "capacity accounting broke in Tiresias");
      place_job_even(next, j->spec.id, gpus, j->spec.requested_batch);
    }
  }
  return next;
}

}  // namespace ones::sched
