// Power-capped gang scheduler (energy baseline, after Gu et al.,
// "Energy-Efficient GPU Clusters Scheduling for Deep Learning": keep the
// cluster under a power budget and throttle admissions, trading queueing
// delay for peak draw and energy).
//
// FIFO-with-backfill admission under a cluster-wide watts budget: before
// starting a waiting job, project the cluster draw with the job placed
// (using the driver's PowerModel, DESIGN.md §10) and admit only while the
// projection stays at or under the cap. Jobs keep their user-requested GPU
// count and batch; like the other non-elastic baselines there is no
// preemption, so the cap binds at admission time only. To guarantee
// progress, the first job onto an otherwise-empty cluster is always
// admitted even if it alone exceeds the cap.
#pragma once

#include "sched/scheduler.hpp"

namespace ones::sched {

struct PowerCapConfig {
  /// Budget as a fraction of peak draw (every GPU at gpu_busy_w plus all
  /// node base power). Ignored when cap_watts > 0.
  double cap_fraction = 0.7;
  /// Absolute budget in watts; 0 (default) derives the budget from
  /// cap_fraction.
  double cap_watts = 0.0;
};

class PowerCapScheduler : public Scheduler {
 public:
  explicit PowerCapScheduler(const PowerCapConfig& config = {});

  std::string name() const override { return "PowerCap"; }
  ScalingMechanism mechanism() const override { return ScalingMechanism::Checkpoint; }

  std::optional<cluster::Assignment> on_event(const ClusterState& state,
                                              const SchedulerEvent& event) override;

  /// The effective budget in watts for the given cluster.
  double cap_watts(const ClusterState& state) const;

 private:
  PowerCapConfig config_;
};

}  // namespace ones::sched
