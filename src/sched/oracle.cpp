#include "sched/oracle.hpp"

#include <cmath>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "model/throughput.hpp"

namespace ones::sched {

ThroughputOracle::ThroughputOracle(const cluster::Topology& topology,
                                   const OracleConfig& config)
    : topology_(topology), config_(config) {}

double ThroughputOracle::noise_factor(JobId job, int workers, int batch) const {
  if (config_.noise_sigma <= 0.0) return 1.0;
  // Deterministic per-(job, config) bias: hash the tuple into a seed.
  std::uint64_t h = config_.noise_seed;
  h ^= static_cast<std::uint64_t>(job) * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<std::uint64_t>(workers) * 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<std::uint64_t>(batch) * 0x94d049bb133111ebULL;
  Rng rng(h);
  return std::exp(rng.normal(0.0, config_.noise_sigma));
}

bool ThroughputOracle::can_colocate(int workers) const {
  return workers <= topology_.gpus_per_node();
}

double ThroughputOracle::estimate_sps(const JobView& job, int workers, int batch,
                                      bool colocated) const {
  ONES_EXPECT(job.profile != nullptr);
  ONES_EXPECT(workers >= 1);
  ONES_EXPECT(batch >= workers);
  const auto& cfg = topology_.config();
  cluster::LinkProfile link =
      colocated ? cluster::LinkProfile{cfg.intra_node_bw_Bps, cfg.intra_node_latency_s}
                : cluster::LinkProfile{cfg.inter_node_bw_Bps, cfg.inter_node_latency_s};
  const double x = model::throughput_even_sps(*job.profile, batch, workers, link);
  return x * noise_factor(job.spec.id, workers, batch);
}

double ThroughputOracle::estimate_placed_sps(const JobView& job,
                                             const cluster::Assignment& assignment) const {
  ONES_EXPECT(job.profile != nullptr);
  const auto gpus = assignment.gpus_of(job.spec.id);
  ONES_EXPECT_MSG(!gpus.empty(), "job has no workers in this assignment");
  std::vector<int> batches;
  batches.reserve(gpus.size());
  for (GpuId g : gpus) batches.push_back(assignment.slot(g).local_batch);
  const cluster::LinkProfile link = topology_.link_profile(gpus);
  const double x = model::throughput_sps(*job.profile, batches, link);
  return x * noise_factor(job.spec.id, static_cast<int>(gpus.size()),
                          assignment.global_batch(job.spec.id));
}

}  // namespace ones::sched
