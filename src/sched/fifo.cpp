#include "sched/fifo.hpp"

#include "sched/placement.hpp"

namespace ones::sched {

std::optional<cluster::Assignment> FifoScheduler::on_event(const ClusterState& state,
                                                           const SchedulerEvent& event) {
  if (event.kind == EventKind::EpochComplete) return std::nullopt;  // nothing to do

  cluster::Assignment next = *state.current;
  bool changed = false;
  for (const JobView* job : state.waiting_jobs()) {  // arrival order
    // No free GPU means no placement can succeed for any queued job —
    // identical decisions to trying (and failing) each one in turn.
    if (next.idle_count() == 0) break;
    const auto gpus = pick_idle_gpus(next, *state.topology, job->spec.requested_gpus);
    if (gpus.empty()) {
      if (!backfill_) break;  // strict FIFO: head-of-line blocking
      continue;
    }
    place_job_even(next, job->spec.id, gpus, job->spec.requested_batch);
    changed = true;
  }
  if (!changed) return std::nullopt;
  return next;
}

}  // namespace ones::sched
