// Cluster simulation driver.
//
// Owns the discrete-event engine, the cluster topology, the arrival trace
// and one Scheduler. Delivers events (arrival / epoch-complete / completion /
// timer) to the scheduler, applies the Assignments it returns, charges the
// appropriate re-configuration costs (elastic vs checkpoint mechanism),
// advances each job's training dynamics and records telemetry.
//
// Job lifecycle per the paper: workers upload progress at the end of every
// epoch (§3.1); a job completes once its validation accuracy has held at or
// above target for 10 consecutive epochs (§4.1); preemption and elastic
// re-configuration are allowed at any time and charge the mechanism's cost
// while the job makes no progress.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/assignment.hpp"
#include "cluster/fault.hpp"
#include "cluster/topology.hpp"
#include "elastic/cost_model.hpp"
#include "energy/meter.hpp"
#include "energy/power_model.hpp"
#include "model/convergence.hpp"
#include "sched/oracle.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/registry.hpp"
#include "workload/trace.hpp"

namespace ones::sched {

struct SimulationConfig {
  cluster::TopologyConfig topology;
  model::ConvergenceConfig convergence;
  elastic::CostConfig costs;
  OracleConfig oracle;
  /// Electrical constants for the energy meter (DESIGN.md §10). Unlike the
  /// trace/metrics sinks this IS simulation input: joules are part of the
  /// result, so the orchestrator serializes it into the cache key.
  energy::PowerConfig power;
  /// Fault injection + recovery policy (DESIGN.md §13). Like `power` this IS
  /// simulation input — failures move every metric — so the orchestrator
  /// serializes it into the cache key (schema v4). All-default (disabled)
  /// keeps the run bit-identical to a build without the subsystem.
  cluster::FaultConfig fault;
  /// Hard stop; a correct run finishes long before (all jobs complete).
  double max_sim_time_s = 1e7;
  /// Audit mode (DESIGN.md §12): after every scheduler notification,
  /// recompute all incremental indexes (Assignment's idle/per-job stats, the
  /// driver's active/id job indexes) from first principles and throw on any
  /// divergence. Pure cross-check — it must never change results — so like
  /// the trace/metrics sinks it is deliberately NOT an orchestrator
  /// cache-key input. O(G + J) per event: tests only.
  bool audit_incremental = false;
  /// Keep per-epoch logs in the JobViews (needed by ONES and Optimus).
  bool record_epoch_logs = true;
  /// Structured run tracing (not owned; null — the default — disables it and
  /// costs one branch per emission site). Deliberately NOT part of the
  /// orchestrator cache key: tracing must never change results.
  trace::TraceSink* trace_sink = nullptr;
  /// Sim-time metrics registry (not owned; null — the default — disables all
  /// instrumentation and costs one branch per emission site). Same contract
  /// as the trace sink: deliberately NOT part of the orchestrator cache key,
  /// and attaching a registry must never change results (DESIGN.md §9).
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Host-time profiler (not owned; null — the default — disables all span
  /// sites at one branch each). The driver wires it into the engine and the
  /// scheduler. Same contract as the trace sink and metrics registry:
  /// deliberately NOT part of the orchestrator cache key, and attaching a
  /// profiler must never change results (DESIGN.md §14).
  prof::Profiler* profiler = nullptr;
};

class ClusterSimulation {
 public:
  ClusterSimulation(const SimulationConfig& config, std::vector<workload::JobSpec> trace,
                    Scheduler& scheduler);
  ClusterSimulation(const ClusterSimulation&) = delete;
  ClusterSimulation& operator=(const ClusterSimulation&) = delete;
  ~ClusterSimulation();

  /// Run the whole trace to completion (or to max_sim_time_s).
  void run();

  const telemetry::MetricsCollector& metrics() const { return metrics_; }
  /// Integrated per-job / per-node / cluster joules (final after run()).
  const energy::EnergyMeter& energy() const { return energy_; }
  /// telemetry::summarize over this run's metrics with the energy objective
  /// filled in (summarize() itself cannot: telemetry layers below energy).
  telemetry::Summary summary(const std::string& scheduler) const;
  const cluster::Topology& topology() const { return topology_; }
  const cluster::Assignment& current_assignment() const { return current_; }
  const JobView& job_view(JobId job) const;
  /// Jobs that finished (converged normally or aborted).
  std::size_t completed_jobs() const { return completed_count_; }
  bool all_completed() const { return completed_count_ == trace_.size(); }
  double now() const { return engine_.now(); }
  /// Number of Assignments the scheduler deployed (schedule churn).
  std::uint64_t deployments() const { return deployments_; }
  /// Total simulator events fired (the engine's counter): the deterministic
  /// work measure behind the hyperscale throughput curve (DESIGN.md §12).
  std::uint64_t events_fired() const { return engine_.fired(); }

 private:
  struct JobRuntime {
    JobView view;
    std::unique_ptr<model::TrainDynamics> dynamics;
    double tput_sps = 0.0;        ///< true throughput of the live placement
    double produce_start = 0.0;   ///< production resumes after scaling cost
    double last_accrue = 0.0;
    double epoch_samples_done = 0.0;
    sim::EventId epoch_event = 0;
    sim::EventId kill_event = 0;
    sim::EventId resume_event = 0;  ///< pending elastic_resumed trace record
    sim::EventId retry_event = 0;   ///< pending recovery backoff expiry
    bool ever_ran = false;
    int last_batch = 0;  ///< batch before the most recent stop/reconfigure
    model::TrainDynamics::EpochResult last_result;
    // ---- Fault recovery bookkeeping (DESIGN.md §13) ----
    int restarts = 0;           ///< checkpoint-restarts suffered (cumulative)
    double redo_s = 0.0;        ///< work since last checkpoint, redone on restart
    double failed_at = 0.0;     ///< sim time of the failure being recovered
    double lost_gpu_s = 0.0;    ///< accounted lost GPU-seconds (I10)
    bool pending_recovery = false;  ///< JobRecovered owed at next start
  };

  void on_arrival(JobId job);
  void on_epoch_event(JobId job);
  void on_kill_event(JobId job);
  void on_timer();
  /// Fault-injection entry point: apply a batch of health changes to the
  /// live assignment, route victim jobs into recovery and notify the
  /// scheduler with a CapacityChange event.
  void on_health_changes(const std::vector<cluster::HealthChange>& changes);
  /// Recover one job that lost >= 1 worker: elastic shrink onto the
  /// survivors when possible, checkpoint-restart (with backoff) otherwise.
  void recover_job(JobId job, double now);
  /// Backoff expiry: a Recovering job rejoins the queue.
  void on_retry_event(JobId job);
  /// Abort a job whose restart budget is exhausted.
  void abort_recovery(JobId job, double now);
  /// Stop fault injection once the whole trace has completed.
  void maybe_halt_faults();
  void notify(EventKind kind, JobId job);
  void apply(cluster::Assignment next);
  void validate(const cluster::Assignment& next) const;

  void accrue(JobId job, double now);
  void start_job(JobId job, const cluster::Assignment& next, double now);
  void stop_job(JobId job, double now);
  void complete_job(JobId job, double now);
  void schedule_epoch_event(JobId job);
  double actual_tput(JobId job, const cluster::Assignment& assignment) const;
  /// GPUs actually running a worker (down-but-idle GPUs are neither busy
  /// nor idle); equals total - idle with no faults in play.
  int busy_gpus() const;
  void update_busy();
  /// Metrics emission helpers; no-ops when no registry is attached.
  void sample_cluster_metrics();
  void record_batch_point(JobId job);

  JobRuntime& runtime(JobId job);
  const JobRuntime& runtime(JobId job) const;
  /// Refresh the persistent snapshot (clock only — the job lists and indexes
  /// are maintained incrementally at arrival/completion) and hand it out.
  const ClusterState& make_state();
  /// SimulationConfig::audit_incremental: recompute every incremental index
  /// from first principles and throw on divergence.
  void audit_state() const;
  /// Remove a job that just completed from the active-job index.
  void drop_active(const JobView& view);

  SimulationConfig config_;
  std::vector<workload::JobSpec> trace_;
  Scheduler& scheduler_;

  sim::SimEngine engine_;
  cluster::Topology topology_;
  cluster::Assignment current_;
  ThroughputOracle oracle_;
  elastic::ScalingCostModel cost_model_;
  telemetry::MetricsCollector metrics_;
  energy::PowerModel power_model_;
  energy::EnergyMeter energy_;
  /// Null unless SimulationConfig::fault.enabled().
  std::unique_ptr<cluster::FaultInjector> injector_;

  // ones-lint: unordered-ok(keyed lookup via runtime() only; every traversal goes through arrived_order_, which fixes iteration to arrival order)
  std::unordered_map<JobId, JobRuntime> runtimes_;
  std::vector<JobId> arrived_order_;
  /// Persistent scheduler snapshot (DESIGN.md §12). `state_.jobs` grows at
  /// arrival; `active_views_` (arrival order) also shrinks at completion and
  /// `id_views_` keeps all views sorted by JobId. JobView pointers are
  /// stable: runtimes_ is node-based and never erased from.
  ClusterState state_;
  std::vector<const JobView*> active_views_;
  std::vector<const JobView*> id_views_;
  std::size_t completed_count_ = 0;
  std::uint64_t deployments_ = 0;
  bool in_notify_ = false;

  /// Stamps the live engine seq onto every record; all emitters (this driver
  /// and the scheduler) write through `sink_`, which points at the stamper
  /// when tracing is on and stays null otherwise.
  std::optional<trace::SeqStampedSink> trace_stamper_;
  trace::TraceSink* sink_ = nullptr;

  /// Null unless a registry is attached via SimulationConfig::metrics; every
  /// emission below checks it, so disabled metrics cost one branch.
  telemetry::MetricsRegistry* registry_ = nullptr;
  /// Null unless a profiler is attached via SimulationConfig::profiler
  /// (DESIGN.md §14); every span site checks it, so profiling off costs one
  /// branch.
  prof::Profiler* profiler_ = nullptr;
  telemetry::TimelineSampler::SeriesId queue_series_ = 0;
  telemetry::TimelineSampler::SeriesId busy_series_ = 0;
  telemetry::TimelineSampler::SeriesId frag_idle_series_ = 0;
  telemetry::TimelineSampler::SeriesId frag_scatter_series_ = 0;
  // ones-lint: unordered-ok(per-job series-id memo, find/emplace by JobId only, never iterated)
  std::unordered_map<JobId, telemetry::TimelineSampler::SeriesId> batch_series_;
};

}  // namespace ones::sched
