// Tiresias baseline (Gu et al., NSDI'19): Discretized 2D Least-Attained-
// Service scheduling.
//
// Tiresias assumes job lengths cannot be known in advance and prioritizes by
// *attained service* (requested GPUs x executed time): jobs that have
// consumed little service sit in high-priority queues; service accumulation
// demotes a job through a fixed set of discretized queues (avoiding
// continuous-priority preemption churn). Within a queue, jobs run in FIFO
// order. Preemption is allowed; job size is fixed at submission (Table 3:
// no elastic job size, no elastic batch size).
#pragma once

#include <vector>

#include "sched/scheduler.hpp"

namespace ones::sched {

struct TiresiasConfig {
  /// Attained-service thresholds (GPU-seconds) between consecutive queues.
  /// A job in queue i has service < thresholds[i]; the last queue is
  /// unbounded. Calibrated to the trace's service scale.
  std::vector<double> queue_thresholds = {900.0, 7200.0};
  /// STARVE-FREE knob: a job waiting longer than this multiple of its
  /// executed time is promoted back to the top queue (0 disables).
  double promote_knob = 0.0;
};

class TiresiasScheduler : public Scheduler {
 public:
  explicit TiresiasScheduler(const TiresiasConfig& config = {}) : config_(config) {}

  std::string name() const override { return "Tiresias"; }
  ScalingMechanism mechanism() const override { return ScalingMechanism::Checkpoint; }

  std::optional<cluster::Assignment> on_event(const ClusterState& state,
                                              const SchedulerEvent& event) override;

  /// Queue index a job currently occupies (exposed for tests).
  int queue_of(const JobView& job) const;

 private:
  TiresiasConfig config_;
};

}  // namespace ones::sched
