#include "sched/simulation.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "cluster/fragmentation.hpp"
#include "common/expect.hpp"
#include "common/log.hpp"
#include "model/throughput.hpp"

namespace ones::sched {

namespace {

/// Bucket bounds (seconds) for the per-decision scheduler host-time
/// histogram. Host scope: wall-clock, surfaced on stderr only, never in a
/// file export — the ScopedTimer convention.
const std::vector<double> kDecisionHostBounds = {1e-6, 1e-5, 1e-4, 1e-3,
                                                 1e-2, 1e-1, 1.0};

/// Sim-time seconds from failure to the recovered job producing again.
const std::vector<double> kRecoveryLatencyBounds = {1.0,   10.0,  30.0,  60.0,
                                                    120.0, 300.0, 600.0, 1800.0};
/// Cumulative checkpoint-restarts a job has suffered when it restarts again.
const std::vector<double> kRetryDepthBounds = {1.0, 2.0, 3.0, 4.0, 6.0, 8.0};

}  // namespace

const char* status_name(JobStatus status) {
  switch (status) {
    case JobStatus::Waiting: return "waiting";
    case JobStatus::Running: return "running";
    case JobStatus::Completed: return "completed";
    case JobStatus::Recovering: return "recovering";
  }
  return "?";
}

const char* event_name(EventKind kind) {
  switch (kind) {
    case EventKind::JobArrival: return "arrival";
    case EventKind::EpochComplete: return "epoch";
    case EventKind::JobComplete: return "complete";
    case EventKind::Timer: return "timer";
    case EventKind::CapacityChange: return "capacity";
  }
  return "?";
}

const JobView* ClusterState::job(JobId id) const {
  if (id_index != nullptr) {
    const auto it = std::lower_bound(
        id_index->begin(), id_index->end(), id,
        [](const JobView* j, JobId want) { return j->spec.id < want; });
    return it != id_index->end() && (*it)->spec.id == id ? *it : nullptr;
  }
  for (const JobView* j : jobs) {
    if (j->spec.id == id) return j;
  }
  return nullptr;
}

// The status filters below may scan `active_index` instead of `jobs`:
// Completed jobs match none of them, and the index preserves arrival order,
// so the outputs are element-for-element identical — only the scan skips the
// (ever-growing) completed tail.

std::vector<const JobView*> ClusterState::waiting_jobs() const {
  std::vector<const JobView*> out;
  for (const JobView* j : active_index != nullptr ? *active_index : jobs) {
    if (j->status == JobStatus::Waiting) out.push_back(j);
  }
  return out;
}

std::vector<const JobView*> ClusterState::running_jobs() const {
  std::vector<const JobView*> out;
  for (const JobView* j : active_index != nullptr ? *active_index : jobs) {
    if (j->status == JobStatus::Running) out.push_back(j);
  }
  return out;
}

std::vector<const JobView*> ClusterState::active_jobs() const {
  if (active_index != nullptr) return *active_index;
  std::vector<const JobView*> out;
  for (const JobView* j : jobs) {
    if (j->status != JobStatus::Completed) out.push_back(j);
  }
  return out;
}

ClusterSimulation::ClusterSimulation(const SimulationConfig& config,
                                     std::vector<workload::JobSpec> trace,
                                     Scheduler& scheduler)
    : config_(config),
      trace_(std::move(trace)),
      scheduler_(scheduler),
      topology_(config.topology),
      current_(topology_.total_gpus()),
      oracle_(topology_, config.oracle),
      cost_model_(config.costs),
      power_model_(config.power),
      energy_(power_model_, topology_,
              [this](JobId job) { return runtime(job).view.profile; }) {
  ONES_EXPECT(!trace_.empty());
  // Schedule every arrival up front.
  for (const auto& spec : trace_) {
    ONES_EXPECT_MSG(!runtimes_.count(spec.id), "duplicate job id in trace");
    runtimes_.emplace(spec.id, JobRuntime{});
    engine_.schedule_at(spec.arrival_time_s, [this, id = spec.id] { on_arrival(id); });
  }
  // The runtimes get fully initialized on arrival; reserve specs now.
  for (const auto& spec : trace_) {
    auto& rt = runtimes_.at(spec.id);
    rt.view.spec = spec;
    rt.view.profile = &model::profile_by_name(spec.variant.model_name);
    rt.view.init_loss = rt.view.profile->init_loss;
    rt.view.train_loss = rt.view.profile->init_loss;
  }
  if (scheduler_.period_s() > 0.0) {
    engine_.schedule_after(scheduler_.period_s(), [this] { on_timer(); });
  }
  if (config_.fault.enabled()) {
    injector_ = std::make_unique<cluster::FaultInjector>(config_.fault, topology_);
    injector_->start(engine_, [this](const std::vector<cluster::HealthChange>& changes) {
      on_health_changes(changes);
    });
  } else {
    config_.fault.validate();  // reject nonsense knobs even when disabled
  }
  // The snapshot handed to the scheduler is persistent: pointers and indexes
  // are maintained at arrival/completion, so per-event refresh is O(1).
  state_.topology = &topology_;
  state_.current = &current_;
  state_.oracle = &oracle_;
  state_.power = &power_model_;
  state_.active_index = &active_views_;
  state_.id_index = &id_views_;
  state_.jobs.reserve(trace_.size());
  state_.true_remaining_samples = [this](JobId job, int batch) {
    const auto& rt = runtime(job);
    ONES_EXPECT(rt.dynamics != nullptr);
    return rt.dynamics->oracle_remaining_samples(batch);
  };
  if (config.trace_sink != nullptr) {
    trace_stamper_.emplace(*config.trace_sink);
    sink_ = &*trace_stamper_;
    scheduler_.set_trace_sink(sink_);
    engine_.set_fire_hook(
        [this](double /*now*/, std::uint64_t seq) { trace_stamper_->set_seq(seq); });
  }
  if (config.metrics != nullptr) {
    registry_ = config.metrics;
    scheduler_.set_metrics(registry_);
    queue_series_ = registry_->timeline().series("queue_depth");
    busy_series_ = registry_->timeline().series("busy_gpus");
    frag_idle_series_ = registry_->timeline().series("frag_idle_gpus");
    frag_scatter_series_ = registry_->timeline().series("frag_scatter_index");
    energy_.set_metrics(registry_);
  }
  if (config.profiler != nullptr) {
    profiler_ = config.profiler;
    engine_.set_profiler(profiler_);
    scheduler_.set_profiler(profiler_);
  }
}

ClusterSimulation::~ClusterSimulation() {
  // The stamper dies with this object; never leave the scheduler pointing at it.
  if (sink_ != nullptr) scheduler_.set_trace_sink(nullptr);
  if (registry_ != nullptr) scheduler_.set_metrics(nullptr);
  if (profiler_ != nullptr) scheduler_.set_profiler(nullptr);
}

ClusterSimulation::JobRuntime& ClusterSimulation::runtime(JobId job) {
  auto it = runtimes_.find(job);
  ONES_EXPECT_MSG(it != runtimes_.end(), "unknown job id");
  return it->second;
}

const ClusterSimulation::JobRuntime& ClusterSimulation::runtime(JobId job) const {
  auto it = runtimes_.find(job);
  ONES_EXPECT_MSG(it != runtimes_.end(), "unknown job id");
  return it->second;
}

const JobView& ClusterSimulation::job_view(JobId job) const { return runtime(job).view; }

void ClusterSimulation::drop_active(const JobView& view) {
  const auto it = std::find(active_views_.begin(), active_views_.end(), &view);
  ONES_EXPECT_MSG(it != active_views_.end(), "completed job missing from active index");
  active_views_.erase(it);
}

telemetry::Summary ClusterSimulation::summary(const std::string& scheduler) const {
  auto s = telemetry::summarize(scheduler, metrics_, topology_.total_gpus());
  s.cluster_joules = energy_.cluster_joules();
  s.overhead_joules = energy_.overhead_joules();
  return s;
}

const ClusterState& ClusterSimulation::make_state() {
  state_.now = engine_.now();
  return state_;
}

void ClusterSimulation::audit_state() const {
  current_.audit_indexes();
  if (injector_ != nullptr) {
    for (GpuId g = 0; g < topology_.total_gpus(); ++g) {
      ONES_EXPECT_MSG(current_.health(g) == injector_->health(g),
                      "live health map diverged from the fault injector");
    }
    for (const GpuId g : current_.unhealthy_gpus()) {
      ONES_EXPECT_MSG(!current_.slot(g).occupied(),
                      "down GPU still occupied after recovery (I9)");
    }
  }
  ONES_EXPECT_MSG(state_.jobs.size() == arrived_order_.size(),
                  "snapshot job list out of sync with arrivals");
  std::vector<const JobView*> active;
  for (std::size_t i = 0; i < arrived_order_.size(); ++i) {
    const JobView& v = runtimes_.at(arrived_order_[i]).view;
    ONES_EXPECT_MSG(state_.jobs[i] == &v, "snapshot job list out of arrival order");
    if (v.status != JobStatus::Completed) active.push_back(&v);
  }
  ONES_EXPECT_MSG(active == active_views_, "active-job index diverged from runtimes");
  ONES_EXPECT_MSG(id_views_.size() == arrived_order_.size(),
                  "id index out of sync with arrivals");
  for (std::size_t i = 1; i < id_views_.size(); ++i) {
    ONES_EXPECT_MSG(id_views_[i - 1]->spec.id < id_views_[i]->spec.id,
                    "id index not strictly sorted");
  }
}

void ClusterSimulation::run() {
  if (sink_ != nullptr) {
    sink_->on_record({.kind = trace::RecordKind::RunBegin,
                      .t = engine_.now(),
                      .gpus = topology_.total_gpus(),
                      .global_batch = static_cast<int>(trace_.size()),
                      .detail = scheduler_.name()});
  }
  engine_.run_until(config_.max_sim_time_s);
  // run_until pads now() to the horizon once the queue drains; billing the
  // all-idle cluster across that padding would swamp the run's real draw.
  // A finished trace ends at the last completion (straggler timer events may
  // have metered slightly past it); a truncated one really does hold its
  // residual jobs until the horizon.
  const double energy_end =
      all_completed() ? std::max(metrics_.makespan(), energy_.metered_until())
                      : engine_.now();
  energy_.finalize(energy_end);
  if (registry_ != nullptr) {
    sample_cluster_metrics();
    registry_->timeline().advance(engine_.now());
    registry_->gauge("sim_events_fired").set(static_cast<double>(engine_.fired()));
  }
  if (!all_completed()) {
    ONES_LOG(Warn) << "simulation ended with " << (trace_.size() - completed_count_)
                   << " unfinished job(s) — scheduler '" << scheduler_.name()
                   << "' left work stranded or hit the time limit";
  }
  if (sink_ != nullptr) {
    // "truncated" tells the replayer this run was cut off (time box / max
    // sim time) rather than drained, so end-of-stream invariants that only
    // hold for finished runs (I7 closed pause brackets) are not enforced.
    sink_->on_record({.kind = trace::RecordKind::RunEnd,
                      .t = engine_.now(),
                      .count = completed_count_,
                      .detail = all_completed() ? "" : "truncated"});
  }
}

double ClusterSimulation::actual_tput(JobId job, const cluster::Assignment& assignment) const {
  const auto& rt = runtime(job);
  const auto gpus = assignment.gpus_of(job);
  ONES_EXPECT(!gpus.empty());
  std::vector<int> batches;
  batches.reserve(gpus.size());
  for (GpuId g : gpus) batches.push_back(assignment.slot(g).local_batch);
  const cluster::LinkProfile link = topology_.link_profile(gpus);
  return model::throughput_sps(*rt.view.profile, batches, link);
}

int ClusterSimulation::busy_gpus() const {
  int busy = topology_.total_gpus() - current_.idle_count();
  for (const GpuId g : current_.unhealthy_gpus()) {
    if (!current_.slot(g).occupied()) --busy;
  }
  return busy;
}

void ClusterSimulation::update_busy() {
  metrics_.on_busy_gpus(busy_gpus(), engine_.now());
  energy_.on_assignment(current_, engine_.now());
  sample_cluster_metrics();
}

void ClusterSimulation::sample_cluster_metrics() {
  if (registry_ == nullptr) return;
  const double now = engine_.now();
  double waiting = 0.0;
  for (const JobView* v : active_views_) {  // Completed jobs are never Waiting
    if (v->status == JobStatus::Waiting) waiting += 1.0;
  }
  const double busy = static_cast<double>(busy_gpus());
  registry_->gauge("sim_queue_depth").set(waiting);
  registry_->gauge("sim_busy_gpus").set(busy);
  registry_->gauge("sim_pending_events").set(static_cast<double>(engine_.pending()));
  registry_->timeline().record(queue_series_, now, waiting);
  registry_->timeline().record(busy_series_, now, busy);
  const cluster::FragmentationStats frag =
      cluster::fragmentation_stats(current_, topology_);
  registry_->gauge("cluster_frag_idle_gpus").set(static_cast<double>(frag.idle_gpus));
  registry_->gauge("cluster_frag_largest_block")
      .set(static_cast<double>(frag.largest_colocated_block));
  registry_->gauge("cluster_frag_nodes_with_idle")
      .set(static_cast<double>(frag.nodes_with_idle));
  registry_->gauge("cluster_frag_scatter_index").set(frag.scatter_index);
  registry_->timeline().record(frag_idle_series_, now,
                               static_cast<double>(frag.idle_gpus));
  registry_->timeline().record(frag_scatter_series_, now, frag.scatter_index);
}

void ClusterSimulation::record_batch_point(JobId job) {
  if (registry_ == nullptr) return;
  auto it = batch_series_.find(job);
  if (it == batch_series_.end()) {
    const auto id =
        registry_->timeline().series("job" + std::to_string(job) + ".batch");
    it = batch_series_.emplace(job, id).first;
  }
  registry_->timeline().record(it->second, engine_.now(),
                               static_cast<double>(runtime(job).view.global_batch));
}

void ClusterSimulation::accrue(JobId job, double now) {
  auto& rt = runtime(job);
  if (rt.view.status != JobStatus::Running) return;
  const double from = std::max(rt.last_accrue, rt.produce_start);
  if (now <= from) return;
  rt.last_accrue = now;
  double samples = rt.tput_sps * (now - from);
  if (samples <= 0.0) return;
  const double dataset = rt.view.dataset_size();
  samples = std::min(samples, dataset - rt.epoch_samples_done);
  rt.epoch_samples_done += samples;
  if (!rt.dynamics->converged()) {
    rt.last_result = rt.dynamics->advance(rt.view.global_batch, samples);
  }
  rt.view.samples_processed = rt.dynamics->samples_processed();
  rt.view.exec_time_s += now - from;  // time on GPUs while producing
  if (registry_ != nullptr) {
    // Productive GPU-seconds; fault_lost_gpu_seconds_total is its complement.
    registry_->counter("sim_goodput_gpu_seconds_total")
        .add((now - from) * static_cast<double>(rt.view.gpus));
  }
}

void ClusterSimulation::on_arrival(JobId job) {
  auto& rt = runtime(job);
  rt.view.status = JobStatus::Waiting;
  rt.dynamics = std::make_unique<model::TrainDynamics>(
      *rt.view.profile, rt.view.spec.variant.dataset_size, config_.convergence,
      rt.view.spec.dynamics_seed);
  arrived_order_.push_back(job);
  state_.jobs.push_back(&rt.view);
  active_views_.push_back(&rt.view);
  id_views_.insert(std::lower_bound(id_views_.begin(), id_views_.end(), job,
                                    [](const JobView* v, JobId want) {
                                      return v->spec.id < want;
                                    }),
                   &rt.view);
  metrics_.on_submit(job, engine_.now());
  if (registry_ != nullptr) {
    registry_->counter("sim_jobs_submitted_total").add();
    sample_cluster_metrics();
  }
  if (sink_ != nullptr) {
    sink_->on_record({.kind = trace::RecordKind::JobSubmitted,
                      .t = engine_.now(),
                      .job = job,
                      .detail = rt.view.spec.variant.model_name});
  }
  if (rt.view.spec.kill_after_s > 0.0) {
    // Abnormal ending (user abort / crash / early stop — §2.1).
    rt.kill_event = engine_.schedule_after(rt.view.spec.kill_after_s,
                                           [this, job] { on_kill_event(job); });
  }
  notify(EventKind::JobArrival, job);
}

void ClusterSimulation::on_kill_event(JobId job) {
  auto& rt = runtime(job);
  rt.kill_event = 0;
  ONES_EXPECT(rt.view.status != JobStatus::Completed);
  const double now = engine_.now();
  if (rt.view.status == JobStatus::Running) {
    accrue(job, now);
    if (rt.epoch_event != 0) {
      engine_.cancel(rt.epoch_event);
      rt.epoch_event = 0;
    }
    metrics_.on_run_end(job, now, /*preempted=*/false);
    current_.evict(job);
    update_busy();
  }
  if (rt.resume_event != 0) {
    engine_.cancel(rt.resume_event);
    rt.resume_event = 0;
  }
  if (rt.retry_event != 0) {
    engine_.cancel(rt.retry_event);  // killed while waiting out a recovery backoff
    rt.retry_event = 0;
  }
  rt.view.status = JobStatus::Completed;
  drop_active(rt.view);
  rt.view.aborted = true;
  rt.view.gpus = 0;
  rt.view.global_batch = 0;
  rt.tput_sps = 0.0;
  metrics_.on_abort(job, now);
  ++completed_count_;
  maybe_halt_faults();
  if (registry_ != nullptr) {
    registry_->counter("sim_jobs_aborted_total").add();
    record_batch_point(job);
    sample_cluster_metrics();
  }
  if (sink_ != nullptr) {
    sink_->on_record({.kind = trace::RecordKind::JobCompleted,
                      .t = now,
                      .job = job,
                      .aborted = true,
                      .detail = ""});
  }
  notify(EventKind::JobComplete, job);
}

void ClusterSimulation::on_timer() {
  notify(EventKind::Timer, kInvalidJob);
  if (completed_count_ < trace_.size()) {
    engine_.schedule_after(scheduler_.period_s(), [this] { on_timer(); });
  }
}

void ClusterSimulation::maybe_halt_faults() {
  if (injector_ != nullptr && completed_count_ == trace_.size()) injector_->halt();
}

void ClusterSimulation::on_health_changes(
    const std::vector<cluster::HealthChange>& changes) {
  const double now = engine_.now();
  // Partition by new health (for the trace records) and find the victims —
  // jobs occupying a GPU that just went down — before mutating anything.
  std::vector<GpuId> failed, reclaimed, healed;
  std::vector<JobId> victims;
  for (const auto& ch : changes) {
    switch (ch.health) {
      case cluster::SlotHealth::Failed: failed.push_back(ch.gpu); break;
      case cluster::SlotHealth::Reclaimed: reclaimed.push_back(ch.gpu); break;
      case cluster::SlotHealth::Healthy: healed.push_back(ch.gpu); break;
    }
    if (ch.health != cluster::SlotHealth::Healthy) {
      const auto& s = current_.slot(ch.gpu);
      if (s.occupied()) victims.push_back(s.job);
    }
    current_.set_health(ch.gpu, ch.health);
  }
  std::sort(victims.begin(), victims.end());
  victims.erase(std::unique(victims.begin(), victims.end()), victims.end());

  if (registry_ != nullptr) {
    if (!failed.empty() || !reclaimed.empty()) {
      registry_->counter("fault_gpu_down_total")
          .add(static_cast<double>(failed.size() + reclaimed.size()));
    }
    if (!healed.empty()) {
      registry_->counter("fault_gpu_up_total").add(static_cast<double>(healed.size()));
    }
    registry_->gauge("cluster_healthy_gpus")
        .set(static_cast<double>(current_.healthy_count()));
  }
  if (sink_ != nullptr) {
    auto emit = [&](trace::RecordKind kind, const char* health,
                    const std::vector<GpuId>& gpus) {
      if (gpus.empty()) return;
      sink_->on_record({.kind = kind,
                        .t = now,
                        .gpus = static_cast<int>(gpus.size()),
                        .detail = std::string(health) + " " +
                                  trace::format_gpu_list(gpus)});
    };
    emit(trace::RecordKind::GpuFailed, "failed", failed);
    emit(trace::RecordKind::GpuFailed, "reclaimed", reclaimed);
    emit(trace::RecordKind::GpuRepaired, "healthy", healed);
  }

  std::vector<JobId> aborted;
  for (const JobId j : victims) {
    recover_job(j, now);
    if (runtime(j).view.status == JobStatus::Completed) aborted.push_back(j);
  }
  update_busy();
  // The cluster is consistent again: tell the scheduler — in a fresh
  // zero-delay engine event, not inline. A shrink above already claimed the
  // survivors' GPUs in this event; if the scheduler's reaction preempted and
  // re-placed them in the same event, the trace transaction would interleave
  // claim/release/claim on one GPU, which the replayer's release-then-claim
  // settlement (deliberately order-free within an event) cannot represent.
  // Aborts first (they carry scheduler bookkeeping: predictor skip-lists,
  // batch-limit purges), then one capacity-change nudge for the health map.
  engine_.schedule_after(0.0, [this, aborted = std::move(aborted)] {
    for (const JobId j : aborted) notify(EventKind::JobComplete, j);
    notify(EventKind::CapacityChange, kInvalidJob);
  });
}

void ClusterSimulation::recover_job(JobId job, double now) {
  auto& rt = runtime(job);
  ONES_EXPECT(rt.view.status == JobStatus::Running);
  accrue(job, now);  // progress up to the instant of the failure
  const auto gpus = current_.gpus_of(job);
  std::vector<GpuId> survivors, lost;
  for (const GpuId g : gpus) {
    (current_.slot(g).healthy() ? survivors : lost).push_back(g);
  }
  ONES_EXPECT_MSG(!lost.empty(), "recover_job on a job with no lost workers");
  rt.failed_at = now;

  if (scheduler_.mechanism() == ScalingMechanism::Elastic && !survivors.empty()) {
    // Elastic shrink-on-failure: drop the dead workers and keep training on
    // the survivors — capacity churn is a resize, not a restart. Mirrors the
    // reconfigure path of apply() exactly (same trace bracket, I7).
    const int old_workers = static_cast<int>(gpus.size());
    const int old_batch = rt.view.global_batch;
    for (const GpuId g : lost) current_.clear(g);
    const int new_batch = current_.global_batch(job);
    rt.view.gpus = static_cast<int>(survivors.size());
    rt.view.global_batch = new_batch;
    const cluster::LinkProfile link = topology_.link_profile(survivors);
    const double cost =
        cost_model_.elastic_cost_s(*rt.view.profile, old_workers, rt.view.gpus, link);
    if (new_batch != old_batch) rt.dynamics->on_batch_resize(old_batch, new_batch);
    rt.last_batch = new_batch;
    rt.tput_sps = actual_tput(job, current_);
    rt.view.throughput_sps = rt.tput_sps;
    rt.produce_start = now + cost;
    rt.last_accrue = rt.produce_start;
    if (rt.epoch_event != 0) {
      engine_.cancel(rt.epoch_event);
      rt.epoch_event = 0;
    }
    if (registry_ != nullptr) {
      registry_->counter("fault_job_shrinks_total").add();
      registry_->counter("sim_reconfigurations_total").add();
      registry_->counter("sim_reconfig_overhead_seconds_total").add(cost);
      registry_
          ->histogram("fault_recovery_latency_seconds", kRecoveryLatencyBounds)
          .observe(cost);
      record_batch_point(job);
    }
    if (sink_ != nullptr) {
      sink_->on_record({.kind = trace::RecordKind::ElasticPaused,
                        .t = now,
                        .job = job,
                        .cost_s = cost,
                        .detail = "elastic"});
      if (new_batch != old_batch) {
        sink_->on_record({.kind = trace::RecordKind::BatchResized,
                          .t = now,
                          .job = job,
                          .global_batch = new_batch,
                          .old_batch = old_batch,
                          .detail = ""});
      }
      sink_->on_record({.kind = trace::RecordKind::JobReconfigured,
                        .t = now,
                        .job = job,
                        .gpus = rt.view.gpus,
                        .global_batch = new_batch,
                        .old_gpus = old_workers,
                        .old_batch = old_batch,
                        .cost_s = cost,
                        .detail = trace::format_gpu_list(survivors)});
      sink_->on_record({.kind = trace::RecordKind::JobRecovered,
                        .t = now,
                        .job = job,
                        .gpus = rt.view.gpus,
                        .global_batch = new_batch,
                        .count = static_cast<std::uint64_t>(rt.restarts),
                        .detail = "shrink"});
      if (rt.resume_event != 0) engine_.cancel(rt.resume_event);
      rt.resume_event = engine_.schedule_at(rt.produce_start, [this, job] {
        runtime(job).resume_event = 0;
        sink_->on_record({.kind = trace::RecordKind::ElasticResumed,
                          .t = engine_.now(),
                          .job = job,
                          .detail = ""});
      });
    }
    schedule_epoch_event(job);
    return;
  }

  // Checkpoint-restart: no survivors (or a checkpoint-mechanism scheduler).
  // Work since the last checkpoint — checkpoints land every
  // checkpoint_interval_s of productive time — is redone as extra blocked
  // time when the job next starts; the dynamics are never rolled back.
  const double interval = config_.fault.checkpoint_interval_s;
  const double done = rt.view.exec_time_s;
  const double lost_s = done - std::floor(done / interval) * interval;
  rt.redo_s = lost_s;
  rt.lost_gpu_s += lost_s * static_cast<double>(gpus.size());
  stop_job(job, now);      // JobPreempted bracket; survivors release cleanly
  current_.evict(job);     // dead GPUs stay out of the idle index
  rt.pending_recovery = true;
  ++rt.restarts;
  if (registry_ != nullptr) {
    registry_->counter("fault_job_restarts_total").add();
    registry_->counter("fault_lost_gpu_seconds_total")
        .add(lost_s * static_cast<double>(gpus.size()));
    registry_->histogram("fault_retry_depth", kRetryDepthBounds)
        .observe(static_cast<double>(rt.restarts));
  }
  if (rt.restarts > config_.fault.max_restarts) {
    abort_recovery(job, now);
    return;
  }
  rt.view.status = JobStatus::Recovering;
  const double backoff =
      config_.fault.retry_backoff_s * std::ldexp(1.0, rt.restarts - 1);
  rt.retry_event = engine_.schedule_after(backoff, [this, job] { on_retry_event(job); });
}

void ClusterSimulation::on_retry_event(JobId job) {
  auto& rt = runtime(job);
  rt.retry_event = 0;
  if (rt.view.status != JobStatus::Recovering) return;  // placed early / killed
  rt.view.status = JobStatus::Waiting;
  if (registry_ != nullptr) sample_cluster_metrics();
  notify(EventKind::CapacityChange, job);
}

void ClusterSimulation::abort_recovery(JobId job, double now) {
  auto& rt = runtime(job);
  // Retry budget exhausted: the job leaves the system as an abnormal ending,
  // with its lost GPU-seconds on the record (I10). Mirrors on_kill_event's
  // bookkeeping; the job already released its GPUs in recover_job.
  if (rt.kill_event != 0) {
    engine_.cancel(rt.kill_event);
    rt.kill_event = 0;
  }
  rt.view.status = JobStatus::Completed;
  drop_active(rt.view);
  rt.view.aborted = true;
  rt.pending_recovery = false;
  metrics_.on_abort(job, now);
  ++completed_count_;
  maybe_halt_faults();
  if (registry_ != nullptr) {
    registry_->counter("sim_jobs_aborted_total").add();
    registry_->counter("fault_jobs_aborted_total").add();
    record_batch_point(job);
    sample_cluster_metrics();
  }
  if (sink_ != nullptr) {
    sink_->on_record({.kind = trace::RecordKind::JobCompleted,
                      .t = now,
                      .job = job,
                      .cost_s = rt.lost_gpu_s,
                      .aborted = true,
                      .detail = "retries_exhausted"});
  }
}

void ClusterSimulation::on_epoch_event(JobId job) {
  auto& rt = runtime(job);
  ONES_EXPECT(rt.view.status == JobStatus::Running);
  rt.epoch_event = 0;
  accrue(job, engine_.now());
  // Force the epoch boundary (accrue clamps to it; fp residue is < 1 sample).
  rt.epoch_samples_done = 0.0;
  rt.view.epochs_completed += 1;
  rt.view.train_loss = rt.last_result.train_loss;
  rt.view.val_accuracy = rt.last_result.val_accuracy;
  if (config_.record_epoch_logs) {
    rt.view.epoch_log.push_back({engine_.now(), rt.view.samples_processed,
                                 rt.view.train_loss, rt.view.val_accuracy,
                                 rt.view.global_batch});
  }

  if (rt.dynamics->converged()) {
    complete_job(job, engine_.now());
    notify(EventKind::JobComplete, job);
    return;
  }
  notify(EventKind::EpochComplete, job);
  // If the scheduler kept the allocation, continue this job's next epoch.
  if (rt.view.status == JobStatus::Running && rt.epoch_event == 0) {
    schedule_epoch_event(job);
  }
}

void ClusterSimulation::notify(EventKind kind, JobId job) {
  ONES_EXPECT_MSG(!in_notify_, "re-entrant scheduler notification");
  if (sink_ != nullptr) {
    sink_->on_record({.kind = trace::RecordKind::SimEvent,
                      .t = engine_.now(),
                      .job = job,
                      .detail = event_name(kind)});
  }
  in_notify_ = true;
  // Per-event-kind decision span ("decision/JobArrival", ... — DESIGN.md
  // §14); everything the policy does (evolution steps, predictor fits)
  // nests underneath.
  const prof::Scope decision_span(profiler_, "decision");
  const prof::Scope kind_span(profiler_, event_name(kind));
  const ClusterState& state = make_state();
  // Wall-clock is allowed here ONLY because the decision histogram is
  // Host-scope: stderr diagnostics, never exported to a file or fed back
  // into any simulated quantity.
  // ones-lint-begin: wall-clock-ok(Host-scope decision-time histogram; stderr diagnostics only, never a simulated quantity)
  std::chrono::steady_clock::time_point host_begin;
  if (registry_ != nullptr) host_begin = std::chrono::steady_clock::now();
  std::optional<cluster::Assignment> next = scheduler_.on_event(state, {kind, job});
  if (registry_ != nullptr) {
    const std::chrono::duration<double> host_s =
        std::chrono::steady_clock::now() - host_begin;
    // ones-lint-end: wall-clock-ok
    registry_
        ->histogram("sched_decision_host_seconds", kDecisionHostBounds,
                    telemetry::MetricScope::Host)
        .observe(host_s.count());
    registry_->counter("sched_events_total").add();
    if (next.has_value()) registry_->counter("sched_decisions_total").add();
  }
  in_notify_ = false;
  if (next.has_value()) {
    apply(std::move(*next));
  }
  if (config_.audit_incremental) audit_state();
}

void ClusterSimulation::validate(const cluster::Assignment& next) const {
  ONES_EXPECT_MSG(next.num_gpus() == topology_.total_gpus(),
                  "assignment sized for a different cluster");
  next.check_invariants();
  // I9: the scheduler must carry the live health map and never claim a down
  // GPU. Every scheduler starts from current_ (copy or empty_like), so a
  // mismatch means it built an assignment from scratch.
  ONES_EXPECT_MSG(next.unhealthy_gpus() == current_.unhealthy_gpus(),
                  "assignment disagrees with the live health map");
  for (const GpuId g : next.unhealthy_gpus()) {
    ONES_EXPECT_MSG(next.health(g) == current_.health(g),
                    "assignment disagrees with a GPU's health state");
    ONES_EXPECT_MSG(!next.slot(g).occupied(),
                    "assignment places a worker on a down GPU (I9)");
  }
  for (JobId j : next.running_jobs()) {
    auto it = runtimes_.find(j);
    ONES_EXPECT_MSG(it != runtimes_.end(), "assignment references unknown job");
    const auto& rt = it->second;
    ONES_EXPECT_MSG(rt.view.status != JobStatus::Completed,
                    "assignment references a completed job");
    ONES_EXPECT_MSG(rt.dynamics != nullptr, "assignment references a job not yet arrived");
    for (GpuId g : next.gpus_of(j)) {
      ONES_EXPECT_MSG(next.slot(g).local_batch <= rt.view.profile->max_local_batch,
                      "local batch exceeds the GPU memory limit");
    }
  }
}

void ClusterSimulation::apply(cluster::Assignment next) {
  const prof::Scope span(profiler_, "apply");
  validate(next);
  const double now = engine_.now();
  ++deployments_;
  if (registry_ != nullptr) registry_->counter("sim_deployments_total").add();

  // Account all in-flight progress before changing anything.
  for (JobId j : current_.running_jobs()) accrue(j, now);

  const cluster::AssignmentDelta delta = cluster::diff(current_, next);
  for (JobId j : delta.stopped) stop_job(j, now);
  // Install the new allocation before computing placement-dependent costs.
  const cluster::Assignment prev = current_;
  current_ = next;
  for (JobId j : delta.started) start_job(j, next, now);
  for (JobId j : delta.reconfigured) {
    // Need the previous worker count for the cost model.
    auto& rt = runtime(j);
    const int old_workers = prev.gpu_count(j);
    const int old_batch = prev.global_batch(j);
    rt.view.gpus = next.gpu_count(j);
    rt.view.global_batch = next.global_batch(j);
    const auto gpus = next.gpus_of(j);
    const cluster::LinkProfile link = topology_.link_profile(gpus);
    double cost = 0.0;
    if (scheduler_.mechanism() == ScalingMechanism::Elastic) {
      cost = cost_model_.elastic_cost_s(*rt.view.profile, old_workers, rt.view.gpus, link);
    } else {
      cost = cost_model_.checkpoint_cost_s(*rt.view.profile, rt.view.gpus);
    }
    if (rt.view.global_batch != old_batch) {
      rt.dynamics->on_batch_resize(old_batch, rt.view.global_batch);
    }
    rt.last_batch = rt.view.global_batch;
    rt.tput_sps = actual_tput(j, next);
    rt.view.throughput_sps = rt.tput_sps;
    rt.produce_start = now + cost;
    rt.last_accrue = rt.produce_start;
    if (rt.epoch_event != 0) {
      engine_.cancel(rt.epoch_event);
      rt.epoch_event = 0;
    }
    if (registry_ != nullptr) {
      registry_->counter("sim_reconfigurations_total").add();
      registry_->counter("sim_reconfig_overhead_seconds_total").add(cost);
      record_batch_point(j);
    }
    if (sink_ != nullptr) {
      sink_->on_record({.kind = trace::RecordKind::ElasticPaused,
                        .t = now,
                        .job = j,
                        .cost_s = cost,
                        .detail = scheduler_.mechanism() == ScalingMechanism::Elastic
                                      ? "elastic"
                                      : "checkpoint"});
      if (rt.view.global_batch != old_batch) {
        sink_->on_record({.kind = trace::RecordKind::BatchResized,
                          .t = now,
                          .job = j,
                          .global_batch = rt.view.global_batch,
                          .old_batch = old_batch,
                          .detail = ""});
      }
      sink_->on_record({.kind = trace::RecordKind::JobReconfigured,
                        .t = now,
                        .job = j,
                        .gpus = rt.view.gpus,
                        .global_batch = rt.view.global_batch,
                        .old_gpus = old_workers,
                        .old_batch = old_batch,
                        .cost_s = cost,
                        .detail = trace::format_gpu_list(gpus)});
      // The resume record must carry the resume timestamp, so it is emitted
      // by a side-effect-free engine event at produce_start (cancelled if the
      // job is stopped first). A re-reconfiguration during the pause replaces
      // the pending resume: one bracket, closed once.
      if (rt.resume_event != 0) engine_.cancel(rt.resume_event);
      rt.resume_event = engine_.schedule_at(rt.produce_start, [this, j] {
        runtime(j).resume_event = 0;
        sink_->on_record({.kind = trace::RecordKind::ElasticResumed,
                          .t = engine_.now(),
                          .job = j,
                          .detail = ""});
      });
    }
    schedule_epoch_event(j);
  }
  update_busy();
}

void ClusterSimulation::start_job(JobId job, const cluster::Assignment& next, double now) {
  auto& rt = runtime(job);
  // Placing a Recovering job is allowed: its backoff ends early.
  ONES_EXPECT(rt.view.status == JobStatus::Waiting ||
              rt.view.status == JobStatus::Recovering);
  if (rt.retry_event != 0) {
    engine_.cancel(rt.retry_event);
    rt.retry_event = 0;
  }
  rt.view.status = JobStatus::Running;
  metrics_.on_run_start(job, now);

  const bool first_run = !rt.ever_ran;
  const int prev_batch = rt.last_batch;
  const int new_batch = next.global_batch(job);
  double cost;
  if (!rt.ever_ran) {
    cost = cost_model_.cold_start_cost_s(*rt.view.profile);
    rt.ever_ran = true;
    rt.last_batch = new_batch;
  } else {
    // Resuming a preempted job: reload state. The elastic mechanism keeps the
    // runtime warm (agents reconnect + reload weights); checkpoint restarts
    // the whole stack.
    if (scheduler_.mechanism() == ScalingMechanism::Elastic) {
      const auto& cc = cost_model_.config();
      cost = cc.reconnect_base_s + cc.model_load_s +
             rt.view.profile->params_bytes / cc.hdfs_bw_Bps;
    } else {
      cost = cost_model_.checkpoint_cost_s(*rt.view.profile, next.gpu_count(job));
    }
    if (new_batch != rt.last_batch) {
      rt.dynamics->on_batch_resize(rt.last_batch, new_batch);
      rt.last_batch = new_batch;
    }
  }
  // A restart after a failure also redoes the work since the last checkpoint:
  // extra blocked time, the dynamics were never rolled back (DESIGN.md §13).
  const double redo = rt.redo_s;
  cost += redo;
  rt.redo_s = 0.0;

  rt.view.gpus = next.gpu_count(job);
  rt.view.global_batch = new_batch;
  rt.tput_sps = actual_tput(job, next);
  rt.view.throughput_sps = rt.tput_sps;
  rt.produce_start = now + cost;
  rt.last_accrue = rt.produce_start;
  if (registry_ != nullptr) {
    registry_->counter("sim_restart_overhead_seconds_total").add(cost);
    record_batch_point(job);
  }
  if (sink_ != nullptr) {
    if (first_run) {
      sink_->on_record({.kind = trace::RecordKind::JobAdmitted,
                        .t = now,
                        .job = job,
                        .detail = ""});
    } else if (new_batch != prev_batch) {
      // Resuming a preempted job in a new batch configuration.
      sink_->on_record({.kind = trace::RecordKind::BatchResized,
                        .t = now,
                        .job = job,
                        .global_batch = new_batch,
                        .old_batch = prev_batch,
                        .detail = ""});
    }
    sink_->on_record({.kind = trace::RecordKind::JobPlaced,
                      .t = now,
                      .job = job,
                      .gpus = rt.view.gpus,
                      .global_batch = new_batch,
                      .cost_s = cost,
                      .detail = trace::format_gpu_list(next.gpus_of(job))});
  }
  if (rt.pending_recovery) {
    // This placement closes a checkpoint-restart recovery (I10).
    rt.pending_recovery = false;
    if (registry_ != nullptr) {
      registry_
          ->histogram("fault_recovery_latency_seconds", kRecoveryLatencyBounds)
          .observe(now + cost - rt.failed_at);
    }
    if (sink_ != nullptr) {
      sink_->on_record({.kind = trace::RecordKind::JobRecovered,
                        .t = now,
                        .job = job,
                        .gpus = rt.view.gpus,
                        .global_batch = new_batch,
                        .cost_s = redo,
                        .count = static_cast<std::uint64_t>(rt.restarts),
                        .detail = "restart"});
    }
  }
  schedule_epoch_event(job);
}

void ClusterSimulation::stop_job(JobId job, double now) {
  auto& rt = runtime(job);
  ONES_EXPECT(rt.view.status == JobStatus::Running);
  if (rt.epoch_event != 0) {
    engine_.cancel(rt.epoch_event);
    rt.epoch_event = 0;
  }
  if (rt.resume_event != 0) {
    engine_.cancel(rt.resume_event);  // preempted mid-pause; bracket closes here
    rt.resume_event = 0;
  }
  if (sink_ != nullptr) {
    sink_->on_record({.kind = trace::RecordKind::JobPreempted,
                      .t = now,
                      .job = job,
                      .old_gpus = rt.view.gpus,
                      .old_batch = rt.view.global_batch,
                      .detail = ""});
  }
  rt.view.status = JobStatus::Waiting;
  rt.last_batch = rt.view.global_batch;
  rt.view.gpus = 0;
  rt.view.global_batch = 0;
  rt.tput_sps = 0.0;
  rt.view.throughput_sps = 0.0;
  metrics_.on_run_end(job, now, /*preempted=*/true);
  if (registry_ != nullptr) {
    registry_->counter("sim_preemptions_total").add();
    record_batch_point(job);
  }
}

void ClusterSimulation::complete_job(JobId job, double now) {
  auto& rt = runtime(job);
  ONES_EXPECT(rt.view.status == JobStatus::Running);
  if (rt.epoch_event != 0) {
    engine_.cancel(rt.epoch_event);
    rt.epoch_event = 0;
  }
  if (rt.kill_event != 0) {
    engine_.cancel(rt.kill_event);  // converged before the abnormal ending
    rt.kill_event = 0;
  }
  if (rt.resume_event != 0) {
    engine_.cancel(rt.resume_event);
    rt.resume_event = 0;
  }
  rt.view.status = JobStatus::Completed;
  drop_active(rt.view);
  rt.view.gpus = 0;
  rt.view.global_batch = 0;
  metrics_.on_run_end(job, now, /*preempted=*/false);
  metrics_.on_complete(job, now);
  current_.evict(job);
  update_busy();
  ++completed_count_;
  maybe_halt_faults();
  if (registry_ != nullptr) {
    registry_->counter("sim_jobs_completed_total").add();
    record_batch_point(job);
  }
  if (sink_ != nullptr) {
    sink_->on_record(
        {.kind = trace::RecordKind::JobCompleted, .t = now, .job = job, .detail = ""});
  }
}

void ClusterSimulation::schedule_epoch_event(JobId job) {
  auto& rt = runtime(job);
  ONES_EXPECT(rt.view.status == JobStatus::Running);
  ONES_EXPECT(rt.epoch_event == 0);
  ONES_EXPECT(rt.tput_sps > 0.0);
  const double remaining = rt.view.dataset_size() - rt.epoch_samples_done;
  const double when = std::max(rt.produce_start, engine_.now()) + remaining / rt.tput_sps;
  rt.epoch_event = engine_.schedule_at(when, [this, job] { on_epoch_event(job); });
}

}  // namespace ones::sched
