#include "sched/placement.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "model/throughput.hpp"

namespace ones::sched {

std::vector<GpuId> pick_idle_gpus(const cluster::Assignment& assignment,
                                  const cluster::Topology& topology, int count) {
  ONES_EXPECT(count >= 1);
  if (assignment.idle_count() < count) return {};

  // Free GPUs per node.
  std::vector<std::vector<GpuId>> free_by_node(static_cast<std::size_t>(topology.num_nodes()));
  for (GpuId g : assignment.idle_gpus()) {
    free_by_node[static_cast<std::size_t>(topology.node_of(g))].push_back(g);
  }

  // Best fit: the node with the *fewest* free GPUs that still fits the set,
  // to preserve large holes for large jobs.
  int best_node = -1;
  for (int n = 0; n < topology.num_nodes(); ++n) {
    const int free = static_cast<int>(free_by_node[static_cast<std::size_t>(n)].size());
    if (free >= count &&
        (best_node < 0 ||
         free < static_cast<int>(free_by_node[static_cast<std::size_t>(best_node)].size()))) {
      best_node = n;
    }
  }
  std::vector<GpuId> out;
  if (best_node >= 0) {
    const auto& pool = free_by_node[static_cast<std::size_t>(best_node)];
    out.assign(pool.begin(), pool.begin() + count);
    return out;
  }

  // Spill: take from the emptiest nodes first to minimize the span.
  std::vector<int> order(static_cast<std::size_t>(topology.num_nodes()));
  for (int n = 0; n < topology.num_nodes(); ++n) order[static_cast<std::size_t>(n)] = n;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return free_by_node[static_cast<std::size_t>(a)].size() >
           free_by_node[static_cast<std::size_t>(b)].size();
  });
  for (int n : order) {
    for (GpuId g : free_by_node[static_cast<std::size_t>(n)]) {
      if (static_cast<int>(out.size()) == count) return out;
      out.push_back(g);
    }
  }
  ONES_EXPECT(static_cast<int>(out.size()) == count);
  return out;
}

void place_job_even(cluster::Assignment& assignment, JobId job,
                    const std::vector<GpuId>& gpus, int global_batch) {
  ONES_EXPECT(!gpus.empty());
  const auto split = model::even_split(global_batch, static_cast<int>(gpus.size()));
  for (std::size_t i = 0; i < gpus.size(); ++i) {
    assignment.place(gpus[i], job, split[i]);
  }
}

}  // namespace ones::sched
