// First-In-First-Out gang scheduler (reference baseline).
//
// Jobs start in arrival order with exactly their requested GPU count and
// batch size; no preemption, no elasticity. Strict FIFO exhibits
// head-of-line blocking: a large waiting job blocks smaller jobs behind it
// even when the cluster has idle GPUs. This is the classic behaviour the
// paper's fragmentation discussion (§2.2) motivates against.
#pragma once

#include "sched/scheduler.hpp"

namespace ones::sched {

class FifoScheduler : public Scheduler {
 public:
  /// With `backfill` enabled, jobs behind a blocked head may start if they
  /// fit (conservative backfill), trading strict fairness for utilization.
  explicit FifoScheduler(bool backfill = false) : backfill_(backfill) {}

  std::string name() const override { return backfill_ ? "FIFO-BF" : "FIFO"; }
  ScalingMechanism mechanism() const override { return ScalingMechanism::Checkpoint; }

  std::optional<cluster::Assignment> on_event(const ClusterState& state,
                                              const SchedulerEvent& event) override;

 private:
  bool backfill_;
};

}  // namespace ones::sched
