// Throughput estimation service.
//
// On the real testbed every scheduler profiles job throughput online (ONES
// measures per-GPU throughput; Optimus fits a resource-speed model from
// observations). In the simulator both would just be re-learning the
// analytic cost model, so we expose a shared estimation service backed by
// that model. All schedulers query the same oracle, so none gains an unfair
// information advantage; optional multiplicative noise models profiling
// error.
#pragma once

#include <cstdint>

#include "cluster/topology.hpp"
#include "sched/scheduler.hpp"

namespace ones::sched {

struct OracleConfig {
  /// Log-normal multiplicative noise sigma applied to estimates
  /// (0 = exact). The noise is a deterministic function of
  /// (job, workers, batch), mimicking a stable profiling bias.
  double noise_sigma = 0.0;
  std::uint64_t noise_seed = 7;
};

class ThroughputOracle {
 public:
  ThroughputOracle(const cluster::Topology& topology, const OracleConfig& config = {});

  /// Estimated steady-state throughput (samples/s) of `job` on `workers`
  /// GPUs with global batch `batch`, assuming an even split. `colocated`
  /// selects the intra-node link profile; otherwise the inter-node fabric.
  double estimate_sps(const JobView& job, int workers, int batch, bool colocated) const;

  /// Estimate for a concrete placement (uses the true link profile of the
  /// GPU set and the exact per-slot batch split).
  double estimate_placed_sps(const JobView& job, const cluster::Assignment& assignment) const;

  /// Whether `workers` GPUs can fit on one node of this topology.
  bool can_colocate(int workers) const;

  const cluster::Topology& topology() const { return topology_; }

 private:
  double noise_factor(JobId job, int workers, int batch) const;

  const cluster::Topology& topology_;
  OracleConfig config_;
};

}  // namespace ones::sched
