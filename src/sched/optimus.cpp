#include "sched/optimus.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"
#include "common/math_util.hpp"
#include "sched/oracle.hpp"
#include "sched/placement.hpp"
#include "stats/solve.hpp"

namespace ones::sched {

double OptimusScheduler::predict_remaining_epochs(const JobView& job) const {
  const double done = static_cast<double>(job.epochs_completed);
  const double tail = static_cast<double>(config_.patience_epochs);

  if (job.epoch_log.size() >= 3) {
    // Fit 1/(1 - acc) = a*k + b on the observed epochs.
    const std::size_t n = job.epoch_log.size();
    stats::Matrix x(n, 2);
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
      x.at(i, 0) = static_cast<double>(i + 1);
      x.at(i, 1) = 1.0;
      const double acc = std::min(job.epoch_log[i].val_accuracy, 0.999);
      y[i] = 1.0 / (1.0 - acc);
    }
    const auto w = stats::ridge_regression(x, y, 1e-6);
    const double a = w[0], b = w[1];
    if (a > 1e-9) {
      const double target = std::min(job.profile->target_accuracy, 0.999);
      const double k_star = (1.0 / (1.0 - target) - b) / a;
      return std::max(k_star - done, 0.0) + tail;
    }
  }
  // Too little history (or a non-increasing fit): fall back to the prior.
  return std::max(config_.default_total_epochs - done, 1.0) + tail;
}

std::optional<cluster::Assignment> OptimusScheduler::on_event(const ClusterState& state,
                                                              const SchedulerEvent& event) {
  // Optimus is strictly round-based: it only acts on its periodic timer
  // (the paper highlights the queuing cost of this design).
  if (event.kind != EventKind::Timer) return std::nullopt;

  struct Cand {
    const JobView* job;
    double remaining_samples;
    int min_workers;
    int max_workers;
    int workers = 0;
  };
  std::vector<Cand> cands;
  for (const JobView* job : state.active_jobs()) {
    Cand c;
    c.job = job;
    c.remaining_samples = predict_remaining_epochs(*job) * job->dataset_size();
    c.min_workers = static_cast<int>(
        ceil_div(job->spec.requested_batch, job->profile->max_local_batch));
    c.max_workers = std::min(config_.max_workers_per_job, job->spec.requested_batch);
    cands.push_back(c);
  }

  auto speed = [&](const Cand& c, int workers) {
    return state.oracle->estimate_sps(*c.job, workers, c.job->spec.requested_batch,
                                      state.oracle->can_colocate(workers));
  };

  // Fairness floor: everyone gets their minimum worker count, shortest
  // predicted remaining time first when over-subscribed.
  std::sort(cands.begin(), cands.end(), [&](const Cand& a, const Cand& b) {
    const double ta = a.remaining_samples / speed(a, a.min_workers);
    const double tb = b.remaining_samples / speed(b, b.min_workers);
    if (ta != tb) return ta < tb;
    return a.job->spec.id < b.job->spec.id;
  });
  int capacity = state.current->healthy_count();
  for (Cand& c : cands) {
    if (c.min_workers <= capacity) {
      c.workers = c.min_workers;
      capacity -= c.min_workers;
    }
  }

  // Greedy marginal allocation of the remaining GPUs.
  while (capacity > 0) {
    Cand* best = nullptr;
    double best_gain = 1e-9;
    for (Cand& c : cands) {
      if (c.workers == 0 || c.workers >= c.max_workers) continue;
      const double gain = c.remaining_samples / speed(c, c.workers) -
                          c.remaining_samples / speed(c, c.workers + 1);
      if (gain > best_gain) {
        best_gain = gain;
        best = &c;
      }
    }
    if (best == nullptr) break;
    best->workers += 1;
    --capacity;
  }

  // Emit only if something changes (same job set with same worker counts and
  // batches means the cluster can keep running undisturbed).
  bool same = true;
  std::size_t scheduled = 0;
  for (const Cand& c : cands) {
    if (c.workers == 0) {
      if (c.job->status == JobStatus::Running) same = false;
      continue;
    }
    ++scheduled;
    if (c.job->status != JobStatus::Running || c.job->gpus != c.workers) same = false;
  }
  if (same && scheduled == state.current->running_jobs().size()) return std::nullopt;

  cluster::Assignment next = cluster::Assignment::empty_like(*state.current);
  for (const Cand& c : cands) {
    if (c.workers > 0 && c.job->status == JobStatus::Running && c.job->gpus == c.workers) {
      for (GpuId g : state.current->gpus_of(c.job->spec.id)) {
        next.place(g, c.job->spec.id, state.current->slot(g).local_batch);
      }
    }
  }
  for (const Cand& c : cands) {
    if (c.workers > 0 &&
        !(c.job->status == JobStatus::Running && c.job->gpus == c.workers)) {
      const auto gpus = pick_idle_gpus(next, *state.topology, c.workers);
      ONES_EXPECT_MSG(!gpus.empty(), "capacity accounting broke in Optimus");
      place_job_even(next, c.job->spec.id, gpus, c.job->spec.requested_batch);
    }
  }
  return next;
}

}  // namespace ones::sched
