// Trace replay and structural invariant checking.
//
// `TraceReplayer` re-reads an emitted trace and re-derives the cluster and
// job state it implies, validating on every record that the run it describes
// was structurally legal. A scheduler regression that reorders decisions
// without moving headline JCT is invisible to end-of-run telemetry; it is
// loud here. Checked invariants (DESIGN.md §8 lists them with rationale):
//
//   I1  framing: the stream starts with run_begin (positive cluster size)
//       and ends with at most one run_end, which must be last.
//   I2  time: timestamps are non-decreasing in emission order, and so is the
//       engine event sequence number stamped on each record.
//   I3  lifecycle: submitted exactly once before any other record; admitted
//       exactly once, at the first placement; placed only while waiting;
//       preempted / reconfigured / paused only while running; completed is
//       terminal (no further lifecycle records for the job).
//   I4  GPU exclusivity: placement GPU lists are well-formed (in range, no
//       duplicates, length == worker count) and no GPU hosts two jobs.
//   I5  capacity: occupied GPUs never exceed the cluster size, and every
//       placed job has global batch >= its worker count (local batch >= 1).
//   I6  batch continuity: batch_resized announces every batch change (its
//       old value must match the tracked batch) and placement/reconfigure
//       records must agree with the announced value.
//   I7  pause bracketing: every job_reconfigured is announced by an
//       elastic_paused; the bracket closes only via elastic_resumed,
//       job_preempted or job_completed; a paused job makes no training
//       progress (no epoch sim_event) until the bracket closes. At end of
//       stream, open brackets are defects only for drained runs — a run_end
//       tagged "truncated" (time-boxed run) may end mid-bracket.
//   I8  totals: run_end's finished count equals the job_completed records
//       seen, and a fully-finished run leaves every GPU free.
//   I9  health: gpu_failed / gpu_repaired records track a per-GPU down set,
//       and no placement or reconfiguration ever claims a down GPU.
//   I10 recovery: every job holding a GPU when it fails is impacted, and
//       each impacted job later emits job_recovered (elastic shrink or
//       checkpoint restart) or job_completed (converged, or aborted with its
//       lost GPU-seconds in cost_s). At end of stream no impacted job is
//       left dangling — truncated runs excepted, as with I7.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.hpp"

namespace ones::trace {

struct ReplayIssue {
  std::size_t record_index = 0;  ///< 0-based index into the record stream
  std::string message;
};

struct ReplayReport {
  std::size_t records = 0;  ///< records examined
  std::size_t jobs = 0;     ///< distinct jobs observed
  std::vector<ReplayIssue> issues;

  bool ok() const { return issues.empty(); }
  /// All issues, one per line, for assertion messages.
  std::string to_string() const;
};

class TraceReplayer {
 public:
  /// Validate an in-memory record stream.
  ReplayReport check(const std::vector<TraceRecord>& records) const;
  /// Parse a JSONL document and validate it. Malformed lines are reported as
  /// issues, not thrown (a trace that does not even parse must still produce
  /// an inspectable report).
  ReplayReport check_jsonl(std::string_view text) const;
  /// Read `path` and validate its contents as JSONL.
  ReplayReport check_file(const std::string& path) const;
};

}  // namespace ones::trace
