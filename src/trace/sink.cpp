#include "trace/sink.hpp"

#include <atomic>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"

namespace ones::trace {

namespace fs = std::filesystem;

void JsonlSink::on_record(const TraceRecord& record) {
  out_ << to_jsonl_line(record) << '\n';
}

namespace {

/// Perfetto tracks: tid 0 is the run-level track, job j renders on tid j+1.
long long job_tid(JobId job) { return static_cast<long long>(job) + 1; }

/// Chrome trace timestamps are microseconds.
std::string ts_us(double t) { return json_double(t * 1e6); }

std::string slice_name(const TraceRecord& r) {
  return "run c=" + std::to_string(r.gpus) + " B=" + std::to_string(r.global_batch);
}

}  // namespace

ChromeTraceSink::ChromeTraceSink(std::ostream& out) : out_(out) {
  out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

ChromeTraceSink::~ChromeTraceSink() { close(); }

void ChromeTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  out_ << "\n]}\n";
  out_.flush();
}

void ChromeTraceSink::emit(const std::string& event_json) {
  out_ << (first_ ? "\n" : ",\n") << event_json;
  first_ = false;
}

void ChromeTraceSink::raw_event(const std::string& event_json) {
  if (closed_) throw std::logic_error("ChromeTraceSink: raw_event after close()");
  emit(event_json);
}

void ChromeTraceSink::instant(const TraceRecord& r, const std::string& name) {
  std::ostringstream os;
  os << "{\"name\":" << json_quote(name) << ",\"cat\":\"job\",\"ph\":\"i\",\"s\":\"t\""
     << ",\"ts\":" << ts_us(r.t) << ",\"pid\":0,\"tid\":" << job_tid(r.job) << '}';
  emit(os.str());
}

void ChromeTraceSink::begin_slice(const TraceRecord& r) {
  std::ostringstream os;
  os << "{\"name\":" << json_quote(slice_name(r)) << ",\"cat\":\"job\",\"ph\":\"B\""
     << ",\"ts\":" << ts_us(r.t) << ",\"pid\":0,\"tid\":" << job_tid(r.job)
     << ",\"args\":{\"gpus\":" << json_quote(r.detail)
     << ",\"cost_s\":" << json_double(r.cost_s) << "}}";
  emit(os.str());
  open_slice_.insert(r.job);
}

void ChromeTraceSink::end_slice(const TraceRecord& r) {
  if (open_slice_.erase(r.job) == 0) return;
  std::ostringstream os;
  os << "{\"cat\":\"job\",\"ph\":\"E\",\"ts\":" << ts_us(r.t)
     << ",\"pid\":0,\"tid\":" << job_tid(r.job) << '}';
  emit(os.str());
}

void ChromeTraceSink::on_record(const TraceRecord& r) {
  if (closed_) throw std::logic_error("ChromeTraceSink: record after close()");
  switch (r.kind) {
    case RecordKind::RunBegin: {
      std::ostringstream os;
      os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":"
         << "{\"name\":" << json_quote("cluster: " + r.detail + ", " +
                                       std::to_string(r.gpus) + " GPUs, " +
                                       std::to_string(r.global_batch) + " jobs")
         << "}}";
      emit(os.str());
      break;
    }
    case RecordKind::RunEnd: {
      std::ostringstream os;
      os << "{\"name\":\"run_end\",\"cat\":\"run\",\"ph\":\"i\",\"s\":\"g\",\"ts\":"
         << ts_us(r.t) << ",\"pid\":0,\"tid\":0}";
      emit(os.str());
      break;
    }
    case RecordKind::JobSubmitted: {
      std::ostringstream os;
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << job_tid(r.job)
         << ",\"args\":{\"name\":"
         << json_quote("job " + std::to_string(r.job) + " (" + r.detail + ")") << "}}";
      emit(os.str());
      instant(r, "submitted");
      break;
    }
    case RecordKind::JobAdmitted: instant(r, "admitted"); break;
    case RecordKind::JobPlaced: begin_slice(r); break;
    case RecordKind::JobPreempted:
      end_slice(r);
      instant(r, "preempted");
      break;
    case RecordKind::JobReconfigured:
      end_slice(r);
      begin_slice(r);
      break;
    case RecordKind::BatchResized:
      instant(r, "batch " + std::to_string(r.old_batch) + "->" +
                     std::to_string(r.global_batch));
      break;
    case RecordKind::JobCompleted:
      end_slice(r);
      instant(r, r.aborted ? "aborted" : "completed");
      break;
    case RecordKind::ElasticPaused: {
      // The blocked time is known up front, so the pause renders as one
      // complete span whose length is the charged re-configuration cost.
      std::ostringstream os;
      os << "{\"name\":" << json_quote("pause (" + r.detail + ")")
         << ",\"cat\":\"elastic\",\"ph\":\"X\",\"ts\":" << ts_us(r.t)
         << ",\"dur\":" << json_double(r.cost_s * 1e6)
         << ",\"pid\":0,\"tid\":" << job_tid(r.job) << '}';
      emit(os.str());
      break;
    }
    case RecordKind::ElasticResumed: instant(r, "resumed"); break;
    case RecordKind::ProtocolPhase: instant(r, "phase: " + r.detail); break;
    case RecordKind::EvolutionStep: {
      std::ostringstream os;
      os << "{\"name\":\"evolution_rounds\",\"cat\":\"ones\",\"ph\":\"C\",\"ts\":"
         << ts_us(r.t) << ",\"pid\":0,\"tid\":0,\"args\":{\"rounds\":" << r.count << "}}";
      emit(os.str());
      break;
    }
    case RecordKind::SimEvent: break;  // engine-level noise; JSONL keeps it
    case RecordKind::GpuFailed: {
      std::ostringstream os;
      os << "{\"name\":" << json_quote("gpu down: " + r.detail)
         << ",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"ts\":" << ts_us(r.t)
         << ",\"pid\":0,\"tid\":0}";
      emit(os.str());
      break;
    }
    case RecordKind::GpuRepaired: {
      std::ostringstream os;
      os << "{\"name\":" << json_quote("gpu up: " + r.detail)
         << ",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"ts\":" << ts_us(r.t)
         << ",\"pid\":0,\"tid\":0}";
      emit(os.str());
      break;
    }
    case RecordKind::JobRecovered:
      instant(r, "recovered (" + r.detail + ")");
      break;
  }
}

namespace {

/// Distinguishes concurrent writers targeting the same final path (identical
/// duplicate specs in one grid); the value never reaches the trace bytes.
std::string unique_tmp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  return ".tmp" + std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

RunTraceWriter::RunTraceWriter(const std::string& dir, const std::string& stem) {
  fs::create_directories(dir);
  jsonl_path_ = (fs::path(dir) / (stem + ".jsonl")).string();
  chrome_path_ = (fs::path(dir) / (stem + ".trace.json")).string();
  const std::string suffix = unique_tmp_suffix();
  jsonl_tmp_ = jsonl_path_ + suffix;
  chrome_tmp_ = chrome_path_ + suffix;
  jsonl_out_.open(jsonl_tmp_, std::ios::binary | std::ios::trunc);
  chrome_out_.open(chrome_tmp_, std::ios::binary | std::ios::trunc);
  if (!jsonl_out_ || !chrome_out_) {
    throw std::runtime_error("cannot open trace files under '" + dir + "'");
  }
  jsonl_ = std::make_unique<JsonlSink>(jsonl_out_);
  chrome_ = std::make_unique<ChromeTraceSink>(chrome_out_);
}

RunTraceWriter::~RunTraceWriter() {
  try {
    close();
  } catch (...) {
    // Destructor cleanup must not throw; close() explicitly to see errors.
  }
}

void RunTraceWriter::on_record(const TraceRecord& record) {
  jsonl_->on_record(record);
  chrome_->on_record(record);
}

void RunTraceWriter::chrome_raw_event(const std::string& event_json) {
  if (closed_) throw std::logic_error("RunTraceWriter: chrome_raw_event after close()");
  chrome_->raw_event(event_json);
}

void RunTraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  chrome_->close();
  jsonl_out_.flush();
  jsonl_out_.close();
  chrome_out_.close();
  fs::rename(jsonl_tmp_, jsonl_path_);
  fs::rename(chrome_tmp_, chrome_path_);
}

}  // namespace ones::trace
