// Typed trace records for structured run tracing.
//
// Every simulated run can emit a decision-level event stream: job lifecycle
// transitions as the driver applies scheduler decisions, the elastic
// protocol's pause/resume brackets around each re-configuration, the ONES
// evolutionary search progress, and the raw scheduler-event deliveries. The
// stream is deterministic (it is a pure function of the run, which is itself
// deterministic), so tests can pin digests of it, diff it across revisions,
// and replay it through the invariant checker in trace/replay.hpp.
//
// Serialization is one JSON object per line (JSONL) with a fixed key order
// and %.17g doubles, so the bytes are stable across thread counts, runs and
// platforms. DESIGN.md §8 documents the schema and the invariants.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"

namespace ones::trace {

enum class RecordKind {
  RunBegin,         ///< header: scheduler name, cluster size, trace size
  RunEnd,           ///< footer: jobs finished (converged or aborted)
  JobSubmitted,     ///< job arrived in the queue
  JobAdmitted,      ///< first time the job ever received GPUs
  JobPlaced,        ///< job (re)started on a set of GPUs
  JobPreempted,     ///< job stopped, back to the queue
  JobReconfigured,  ///< worker set / batch changed in place (elastic resize)
  BatchResized,     ///< global batch changed (training dynamics perturbed)
  JobCompleted,     ///< job left the system (converged or aborted)
  ElasticPaused,    ///< protocol paused training for a re-configuration
  ElasticResumed,   ///< training resumed in the new configuration
  ProtocolPhase,    ///< fine-grained elastic protocol milestone (Fig 12)
  EvolutionStep,    ///< ONES advanced its evolutionary search
  SimEvent,         ///< scheduler event delivery (arrival/epoch/complete/timer)
  GpuFailed,        ///< a GPU went down (fault injection, DESIGN.md §13)
  GpuRepaired,      ///< a down GPU came back
  JobRecovered,     ///< a failure-impacted job resumed making progress
};

const char* kind_name(RecordKind kind);
/// Inverse of kind_name; throws std::runtime_error on an unknown name.
RecordKind kind_from_name(std::string_view name);

/// One trace record. Deliberately a flat struct: every kind uses a subset of
/// the fields (unused ones stay at their defaults), which keeps sinks,
/// serialization and the replayer free of a class hierarchy.
struct TraceRecord {
  RecordKind kind = RecordKind::SimEvent;
  double t = 0.0;           ///< simulated seconds
  JobId job = kInvalidJob;  ///< -1 when the record is not job-scoped
  int gpus = 0;             ///< worker count c_j; RunBegin: cluster GPU total
  int global_batch = 0;     ///< B_j; RunBegin: number of jobs in the trace
  int old_gpus = 0;         ///< previous c_j (preempt / reconfigure)
  int old_batch = 0;        ///< previous B_j (preempt / reconfigure / resize)
  double cost_s = 0.0;      ///< blocked time charged for the transition
  bool aborted = false;     ///< JobCompleted: abnormal ending (§2.1)
  std::uint64_t seq = 0;    ///< engine event sequence at emission (stamped
                            ///< centrally by SeqStampedSink; non-decreasing)
  std::uint64_t count = 0;  ///< EvolutionStep: cumulative round counter;
                            ///< RunEnd: jobs finished
  std::string detail;       ///< GPU list "0,1,5" (placement records),
                            ///< event / phase / mechanism name, model name;
                            ///< GpuFailed/GpuRepaired: "<health> <gpu list>"
                            ///< (new health name + affected GPUs);
                            ///< JobRecovered: "shrink" | "restart"

  bool operator==(const TraceRecord&) const = default;
};

/// One-line JSON rendering with fixed key order and exact doubles.
std::string to_jsonl_line(const TraceRecord& record);

/// Parse one JSONL line; throws std::runtime_error on malformed input.
TraceRecord record_from_jsonl_line(std::string_view line);

/// Parse a whole JSONL document (one record per non-empty line).
std::vector<TraceRecord> parse_jsonl(std::string_view text);

/// GPU list payload of placement records: "0,1,5" <-> {0, 1, 5}.
std::string format_gpu_list(const std::vector<GpuId>& gpus);
std::vector<GpuId> parse_gpu_list(const std::string& detail);

}  // namespace ones::trace
