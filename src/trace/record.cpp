#include "trace/record.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"

namespace ones::trace {

namespace {

struct KindName {
  RecordKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {RecordKind::RunBegin, "run_begin"},
    {RecordKind::RunEnd, "run_end"},
    {RecordKind::JobSubmitted, "job_submitted"},
    {RecordKind::JobAdmitted, "job_admitted"},
    {RecordKind::JobPlaced, "job_placed"},
    {RecordKind::JobPreempted, "job_preempted"},
    {RecordKind::JobReconfigured, "job_reconfigured"},
    {RecordKind::BatchResized, "batch_resized"},
    {RecordKind::JobCompleted, "job_completed"},
    {RecordKind::ElasticPaused, "elastic_paused"},
    {RecordKind::ElasticResumed, "elastic_resumed"},
    {RecordKind::ProtocolPhase, "protocol_phase"},
    {RecordKind::EvolutionStep, "evolution_step"},
    {RecordKind::SimEvent, "sim_event"},
    {RecordKind::GpuFailed, "gpu_failed"},
    {RecordKind::GpuRepaired, "gpu_repaired"},
    {RecordKind::JobRecovered, "job_recovered"},
};

double number_field(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::Number) {
    throw std::runtime_error(std::string("trace record missing number field '") + key +
                             "'");
  }
  return v->number;
}

int int_field(const JsonValue& obj, const char* key) {
  return static_cast<int>(std::llround(number_field(obj, key)));
}

}  // namespace

const char* kind_name(RecordKind kind) {
  for (const auto& [k, name] : kKindNames) {
    if (k == kind) return name;
  }
  return "?";
}

RecordKind kind_from_name(std::string_view name) {
  for (const auto& [kind, n] : kKindNames) {
    if (name == n) return kind;
  }
  throw std::runtime_error("unknown trace record kind '" + std::string(name) + "'");
}

std::string to_jsonl_line(const TraceRecord& r) {
  std::ostringstream os;
  os << "{\"kind\":\"" << kind_name(r.kind) << '"';
  os << ",\"t\":" << json_double(r.t);
  os << ",\"job\":" << r.job;
  os << ",\"gpus\":" << r.gpus;
  os << ",\"batch\":" << r.global_batch;
  os << ",\"old_gpus\":" << r.old_gpus;
  os << ",\"old_batch\":" << r.old_batch;
  os << ",\"cost_s\":" << json_double(r.cost_s);
  os << ",\"aborted\":" << (r.aborted ? "true" : "false");
  os << ",\"seq\":" << r.seq;
  os << ",\"count\":" << r.count;
  os << ",\"detail\":" << json_quote(r.detail);
  os << '}';
  return os.str();
}

TraceRecord record_from_jsonl_line(std::string_view line) {
  const JsonValue v = parse_json(line);
  if (v.kind != JsonValue::Kind::Object) {
    throw std::runtime_error("trace record line is not a JSON object");
  }
  const JsonValue* kind = v.find("kind");
  if (kind == nullptr || kind->kind != JsonValue::Kind::String) {
    throw std::runtime_error("trace record missing string field 'kind'");
  }
  TraceRecord r;
  r.kind = kind_from_name(kind->string);
  r.t = number_field(v, "t");
  r.job = static_cast<JobId>(std::llround(number_field(v, "job")));
  r.gpus = int_field(v, "gpus");
  r.global_batch = int_field(v, "batch");
  r.old_gpus = int_field(v, "old_gpus");
  r.old_batch = int_field(v, "old_batch");
  r.cost_s = number_field(v, "cost_s");
  const JsonValue* aborted = v.find("aborted");
  if (aborted == nullptr || aborted->kind != JsonValue::Kind::Bool) {
    throw std::runtime_error("trace record missing bool field 'aborted'");
  }
  r.aborted = aborted->boolean;
  r.seq = static_cast<std::uint64_t>(std::llround(number_field(v, "seq")));
  r.count = static_cast<std::uint64_t>(std::llround(number_field(v, "count")));
  const JsonValue* detail = v.find("detail");
  if (detail == nullptr || detail->kind != JsonValue::Kind::String) {
    throw std::runtime_error("trace record missing string field 'detail'");
  }
  r.detail = detail->string;
  return r;
}

std::vector<TraceRecord> parse_jsonl(std::string_view text) {
  std::vector<TraceRecord> records;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    if (!line.empty()) records.push_back(record_from_jsonl_line(line));
    start = end + 1;
  }
  return records;
}

std::string format_gpu_list(const std::vector<GpuId>& gpus) {
  std::string out;
  for (std::size_t i = 0; i < gpus.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(gpus[i]);
  }
  return out;
}

std::vector<GpuId> parse_gpu_list(const std::string& detail) {
  std::vector<GpuId> gpus;
  std::size_t start = 0;
  while (start < detail.size()) {
    std::size_t end = detail.find(',', start);
    if (end == std::string::npos) end = detail.size();
    const std::string token = detail.substr(start, end - start);
    std::size_t used = 0;
    int g = 0;
    try {
      g = std::stoi(token, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != token.size() || token.empty()) {
      throw std::runtime_error("malformed GPU list '" + detail + "'");
    }
    gpus.push_back(g);
    start = end + 1;
  }
  return gpus;
}

}  // namespace ones::trace
