// Trace sinks: where emitted records go.
//
// Emitters (the simulation driver, schedulers, the elastic protocol) hold a
// plain `TraceSink*` that defaults to null; every emission site is guarded by
// a null check BEFORE any record is constructed, so tracing disabled — the
// default — costs one predictable branch and nothing else. Two on-disk
// formats are provided: deterministic JSONL (the replay / golden-digest
// format) and the Chrome trace-event format, loadable in Perfetto or
// chrome://tracing for visual inspection.
#pragma once

#include <fstream>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/record.hpp"

namespace ones::trace {

/// Consumer of trace records. Implementations need not be thread-safe: each
/// run is simulated on one thread and owns its sink(s).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_record(const TraceRecord& record) = 0;
};

/// Collects records in memory (tests, in-process invariant checking).
class RecordBufferSink final : public TraceSink {
 public:
  void on_record(const TraceRecord& record) override { records_.push_back(record); }
  const std::vector<TraceRecord>& records() const { return records_; }

 private:
  std::vector<TraceRecord> records_;
};

/// Deterministic JSONL: one record per line, fixed key order, %.17g doubles.
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(out) {}
  void on_record(const TraceRecord& record) override;

 private:
  std::ostream& out_;
};

/// Chrome trace-event JSON (the "JSON Array Format" with a traceEvents
/// wrapper object). Job lifecycles render as duration slices on one track
/// per job (tid = job + 1), re-configuration pauses as `X` spans whose
/// duration is the blocked time, evolution progress as a counter track.
/// Engine-level SimEvent records are omitted (pure noise visually).
/// `close()` writes the footer; the owner must call it (or destroy the sink)
/// while the underlying stream is still alive.
class ChromeTraceSink final : public TraceSink {
 public:
  explicit ChromeTraceSink(std::ostream& out);
  ~ChromeTraceSink() override;
  void on_record(const TraceRecord& record) override;
  void close();

  /// Append a pre-serialized trace event verbatim (one JSON object, no
  /// trailing comma). The host-time profiler merges its wall-clock span
  /// track through this (DESIGN.md §14); the caller owns the JSON shape.
  void raw_event(const std::string& event_json);

 private:
  void emit(const std::string& event_json);
  void instant(const TraceRecord& r, const std::string& name);
  void end_slice(const TraceRecord& r);
  void begin_slice(const TraceRecord& r);

  std::ostream& out_;
  bool closed_ = false;
  bool first_ = true;
  std::unordered_set<JobId> open_slice_;
};

/// Stamps every forwarded record with the current engine event sequence
/// number. The simulation driver updates `set_seq` from the engine's fire
/// hook and hands THIS sink to every emitter (itself, the scheduler), so all
/// records of one run carry a consistent, non-decreasing seq without each
/// emitter knowing about the engine.
class SeqStampedSink final : public TraceSink {
 public:
  explicit SeqStampedSink(TraceSink& inner) : inner_(inner) {}
  void set_seq(std::uint64_t seq) { seq_ = seq; }
  void on_record(const TraceRecord& record) override {
    TraceRecord stamped = record;
    stamped.seq = seq_;
    inner_.on_record(stamped);
  }

 private:
  TraceSink& inner_;
  std::uint64_t seq_ = 0;
};

/// Fans each record out to several sinks (e.g. JSONL + Chrome for one run).
class MultiSink final : public TraceSink {
 public:
  explicit MultiSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks)) {}
  void on_record(const TraceRecord& record) override {
    for (TraceSink* s : sinks_) s->on_record(record);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

/// Adapter for elastic::ScalingSession::set_phase_hook: turns each protocol
/// milestone into a ProtocolPhase record for `job`. Declared here (not in
/// `elastic`) so the protocol keeps no trace dependency.
inline std::function<void(double, const std::string&)> protocol_phase_hook(
    TraceSink& sink, JobId job) {
  return [&sink, job](double t, const std::string& what) {
    TraceRecord r;
    r.kind = RecordKind::ProtocolPhase;
    r.t = t;
    r.job = job;
    r.detail = what;
    sink.on_record(r);
  };
}

/// Owns the two on-disk trace files of one run: `<dir>/<stem>.jsonl` and
/// `<dir>/<stem>.trace.json`. Records stream to uniquely-named temp files
/// that are renamed into place by `close()`, so an interrupted run never
/// leaves a file that looks complete and concurrent writers of an identical
/// spec never interleave.
class RunTraceWriter final : public TraceSink {
 public:
  RunTraceWriter(const std::string& dir, const std::string& stem);
  ~RunTraceWriter() override;
  void on_record(const TraceRecord& record) override;
  void close();

  /// Forward a pre-serialized event into the Chrome (.trace.json) file ONLY.
  /// The deterministic JSONL stream — the replay / golden-digest format —
  /// never sees it, so merged host-profiler tracks cannot move the digest.
  void chrome_raw_event(const std::string& event_json);

  const std::string& jsonl_path() const { return jsonl_path_; }
  const std::string& chrome_path() const { return chrome_path_; }

 private:
  std::string jsonl_path_;
  std::string chrome_path_;
  std::string jsonl_tmp_;
  std::string chrome_tmp_;
  std::ofstream jsonl_out_;
  std::ofstream chrome_out_;
  std::unique_ptr<JsonlSink> jsonl_;
  std::unique_ptr<ChromeTraceSink> chrome_;
  bool closed_ = false;
};

}  // namespace ones::trace
