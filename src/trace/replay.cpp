#include "trace/replay.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace ones::trace {

std::string ReplayReport::to_string() const {
  std::ostringstream os;
  for (const auto& issue : issues) {
    os << "record #" << issue.record_index << ": " << issue.message << '\n';
  }
  return os.str();
}

namespace {

struct JobState {
  enum class S { None, Waiting, Running, Done };
  S s = S::None;
  bool admitted = false;
  bool paused = false;           ///< inside a reconfiguration bracket (I7)
  int batch = 0;                 ///< last placed/reconfigured global batch
  bool pending_resize = false;   ///< batch_resized announced, not yet applied
  int pending_new = 0;
  std::vector<GpuId> gpus;
};

class Checker {
 public:
  explicit Checker(const std::vector<TraceRecord>& records) : records_(records) {}

  ReplayReport run() {
    for (index_ = 0; index_ < records_.size(); ++index_) {
      step(records_[index_]);
    }
    finish();
    report_.records = records_.size();
    report_.jobs = jobs_.size();
    return std::move(report_);
  }

 private:
  void issue(const std::string& message) {
    report_.issues.push_back({index_, message});
  }

  JobState* job_state(const TraceRecord& r) {
    if (r.job == kInvalidJob) {
      issue(std::string(kind_name(r.kind)) + " without a job id");
      return nullptr;
    }
    return &jobs_[r.job];
  }

  /// Validate a placement GPU list (I4/I5) and claim it within the current
  /// deployment transaction. A redeployment swaps the whole assignment in one
  /// engine event, so every record it emits carries the same engine seq; GPU
  /// exclusivity is only meaningful at transaction boundaries (all releases
  /// land before any claim is judged — see flush_txn()).
  void occupy(const TraceRecord& r, JobState& js) {
    std::vector<GpuId> gpus;
    try {
      gpus = parse_gpu_list(r.detail);
    } catch (const std::exception& e) {
      issue(e.what());
      return;
    }
    if (static_cast<int>(gpus.size()) != r.gpus) {
      issue("gpu list length " + std::to_string(gpus.size()) +
            " != worker count " + std::to_string(r.gpus));
    }
    if (r.global_batch < static_cast<int>(gpus.size()) || r.global_batch < 1) {
      issue("global batch " + std::to_string(r.global_batch) +
            " cannot cover " + std::to_string(gpus.size()) + " workers");
    }
    for (GpuId g : gpus) {
      if (g < 0 || g >= total_gpus_) {
        issue("gpu " + std::to_string(g) + " out of range [0, " +
              std::to_string(total_gpus_) + ")");
        continue;
      }
      // I9: down GPUs take no work. Judged at claim time — a repair in the
      // same engine event is emitted before the placement it enables.
      if (down_[static_cast<std::size_t>(g)]) {
        issue("gpu " + std::to_string(g) + " claimed by job " +
              std::to_string(r.job) + " while down (I9)");
      }
      txn_claims_.push_back({g, r.job, index_});
    }
    js.gpus = std::move(gpus);
  }

  void release(JobState& js) {
    txn_releases_.insert(txn_releases_.end(), js.gpus.begin(), js.gpus.end());
    js.gpus.clear();
  }

  /// Settle the pending deployment transaction: releases first, then claims.
  /// Issues are attributed to the record that made the offending claim.
  void flush_txn() {
    for (GpuId g : txn_releases_) {
      if (g >= 0 && g < total_gpus_ &&
          owner_[static_cast<std::size_t>(g)] != kInvalidJob) {
        owner_[static_cast<std::size_t>(g)] = kInvalidJob;
        --occupied_;
      }
    }
    txn_releases_.clear();
    for (const auto& claim : txn_claims_) {
      JobId& owner = owner_[static_cast<std::size_t>(claim.gpu)];
      if (owner != kInvalidJob) {
        report_.issues.push_back(
            {claim.index, "gpu " + std::to_string(claim.gpu) +
                              " double-allocated: held by job " + std::to_string(owner) +
                              ", claimed by job " + std::to_string(claim.job)});
        continue;
      }
      owner = claim.job;
      ++occupied_;
    }
    if (!txn_claims_.empty() && occupied_ > total_gpus_) {
      report_.issues.push_back(
          {txn_claims_.back().index, "occupied GPUs " + std::to_string(occupied_) +
                                         " exceed capacity " + std::to_string(total_gpus_)});
    }
    txn_claims_.clear();
  }

  /// I6: a placement/reconfigure batch must match the tracked batch, with
  /// changes announced by a preceding batch_resized record.
  void apply_batch(const TraceRecord& r, JobState& js, bool first_placement) {
    if (first_placement) {
      js.batch = r.global_batch;
      return;
    }
    const int expected = js.pending_resize ? js.pending_new : js.batch;
    if (r.global_batch != expected) {
      issue("batch " + std::to_string(r.global_batch) + " does not match " +
            (js.pending_resize ? "announced resize to " : "tracked batch ") +
            std::to_string(expected));
    }
    js.batch = r.global_batch;
    js.pending_resize = false;
  }

  /// I9/I10 bookkeeping for a gpu_failed / gpu_repaired record. Detail is
  /// "<health> <gpu list>"; the owner map identifies the impacted jobs (the
  /// failure opens a new engine event, so prior transactions are settled).
  void apply_health_change(const TraceRecord& r) {
    const std::size_t space = r.detail.find(' ');
    if (space == std::string::npos) {
      issue(std::string(kind_name(r.kind)) + " detail lacks a health word");
      return;
    }
    const std::string health = r.detail.substr(0, space);
    const bool repair = r.kind == RecordKind::GpuRepaired;
    if (repair ? health != "healthy"
               : (health != "failed" && health != "reclaimed")) {
      issue(std::string(kind_name(r.kind)) + " with health '" + health + "'");
    }
    std::vector<GpuId> gpus;
    try {
      gpus = parse_gpu_list(r.detail.substr(space + 1));
    } catch (const std::exception& e) {
      issue(e.what());
      return;
    }
    if (static_cast<int>(gpus.size()) != r.gpus) {
      issue("health change lists " + std::to_string(gpus.size()) +
            " gpus, reports " + std::to_string(r.gpus));
    }
    for (GpuId g : gpus) {
      if (g < 0 || g >= total_gpus_) {
        issue("gpu " + std::to_string(g) + " out of range [0, " +
              std::to_string(total_gpus_) + ")");
        continue;
      }
      if (repair && !down_[static_cast<std::size_t>(g)]) {
        issue("gpu " + std::to_string(g) + " repaired while already healthy");
      }
      // down -> down is legal: failed <-> reclaimed transitions re-announce.
      down_[static_cast<std::size_t>(g)] = !repair;
      if (!repair) {
        const JobId owner = owner_[static_cast<std::size_t>(g)];
        if (owner != kInvalidJob) impacted_.insert(owner);  // I10 opens here
      }
    }
  }

  void step(const TraceRecord& r) {
    // I2: monotonic time and engine sequence.
    if (index_ > 0) {
      if (r.t < prev_t_) {
        issue("timestamp " + std::to_string(r.t) + " precedes " +
              std::to_string(prev_t_));
      }
      if (r.seq < prev_seq_) {
        issue("engine seq " + std::to_string(r.seq) + " precedes " +
              std::to_string(prev_seq_));
      }
    }
    if (index_ > 0 && r.seq != prev_seq_) flush_txn();
    prev_t_ = r.t;
    prev_seq_ = r.seq;

    // I1: framing.
    if (index_ == 0 && r.kind != RecordKind::RunBegin) {
      issue("trace does not start with run_begin");
    }
    if (saw_run_end_ && r.kind != RecordKind::RunEnd) {
      issue("record after run_end");
    }

    switch (r.kind) {
      case RecordKind::RunBegin: {
        if (index_ != 0) {
          issue("run_begin not at the start of the trace");
          break;
        }
        if (r.gpus < 1) issue("run_begin with non-positive cluster size");
        total_gpus_ = r.gpus;
        owner_.assign(static_cast<std::size_t>(std::max(total_gpus_, 0)), kInvalidJob);
        down_.assign(static_cast<std::size_t>(std::max(total_gpus_, 0)), false);
        break;
      }
      case RecordKind::RunEnd: {
        // run_end shares the final event's seq; settle that event first so the
        // leftover-allocation check below sees post-transaction ownership.
        flush_txn();
        if (saw_run_end_) issue("duplicate run_end");
        saw_run_end_ = true;
        truncated_ = r.detail == "truncated";
        // I8: totals.
        if (r.count != completed_) {
          issue("run_end reports " + std::to_string(r.count) + " finished jobs, trace has " +
                std::to_string(completed_) + " job_completed records");
        }
        if (completed_ == jobs_.size() && occupied_ != 0) {
          issue("all jobs finished but " + std::to_string(occupied_) +
                " GPU(s) still allocated");
        }
        break;
      }
      case RecordKind::JobSubmitted: {
        JobState* js = job_state(r);
        if (js == nullptr) break;
        if (js->s != JobState::S::None) {
          issue("job " + std::to_string(r.job) + " submitted twice");
          break;
        }
        js->s = JobState::S::Waiting;
        break;
      }
      case RecordKind::JobAdmitted: {
        JobState* js = job_state(r);
        if (js == nullptr) break;
        if (js->s != JobState::S::Waiting) {
          issue("job " + std::to_string(r.job) + " admitted while not waiting");
        }
        if (js->admitted) issue("job " + std::to_string(r.job) + " admitted twice");
        js->admitted = true;
        break;
      }
      case RecordKind::JobPlaced: {
        JobState* js = job_state(r);
        if (js == nullptr) break;
        if (js->s != JobState::S::Waiting) {
          issue("job " + std::to_string(r.job) + " placed while not waiting");
          break;
        }
        if (!js->admitted) {
          issue("job " + std::to_string(r.job) + " placed before being admitted");
        }
        const bool first_placement = js->batch == 0;
        occupy(r, *js);
        apply_batch(r, *js, first_placement);
        js->s = JobState::S::Running;
        break;
      }
      case RecordKind::JobPreempted: {
        JobState* js = job_state(r);
        if (js == nullptr) break;
        if (js->s != JobState::S::Running) {
          issue("job " + std::to_string(r.job) + " preempted while not running");
          break;
        }
        if (r.old_gpus != static_cast<int>(js->gpus.size())) {
          issue("preemption reports " + std::to_string(r.old_gpus) +
                " workers, tracked " + std::to_string(js->gpus.size()));
        }
        if (r.old_batch != js->batch) {
          issue("preemption reports batch " + std::to_string(r.old_batch) +
                ", tracked " + std::to_string(js->batch));
        }
        if (js->pending_resize) {
          issue("job " + std::to_string(r.job) + " preempted with a dangling batch_resized");
          js->pending_resize = false;
        }
        release(*js);
        js->paused = false;  // the bracket closes with the preemption (I7)
        js->s = JobState::S::Waiting;
        break;
      }
      case RecordKind::JobReconfigured: {
        JobState* js = job_state(r);
        if (js == nullptr) break;
        if (js->s != JobState::S::Running) {
          issue("job " + std::to_string(r.job) + " reconfigured while not running");
          break;
        }
        if (!js->paused) {
          issue("job " + std::to_string(r.job) +
                " reconfigured without an elastic_paused announcement");
        }
        if (r.old_gpus != static_cast<int>(js->gpus.size())) {
          issue("reconfiguration reports " + std::to_string(r.old_gpus) +
                " previous workers, tracked " + std::to_string(js->gpus.size()));
        }
        release(*js);
        occupy(r, *js);
        apply_batch(r, *js, /*first_placement=*/false);
        break;
      }
      case RecordKind::BatchResized: {
        JobState* js = job_state(r);
        if (js == nullptr) break;
        if (js->s != JobState::S::Running &&
            !(js->s == JobState::S::Waiting && js->admitted)) {
          issue("batch_resized for job " + std::to_string(r.job) +
                " that has never run");
        }
        if (r.old_batch != js->batch) {
          issue("batch_resized from " + std::to_string(r.old_batch) +
                " but tracked batch is " + std::to_string(js->batch));
        }
        if (js->pending_resize) {
          issue("job " + std::to_string(r.job) + " resized twice without applying");
        }
        js->pending_resize = true;
        js->pending_new = r.global_batch;
        break;
      }
      case RecordKind::JobCompleted: {
        JobState* js = job_state(r);
        if (js == nullptr) break;
        if (js->s == JobState::S::None || js->s == JobState::S::Done) {
          issue("job " + std::to_string(r.job) + " completed " +
                (js->s == JobState::S::Done ? "twice" : "before submission"));
          break;
        }
        release(*js);
        js->paused = false;
        js->pending_resize = false;
        js->s = JobState::S::Done;
        impacted_.erase(r.job);  // I10: completion (or abort) settles the job
        ++completed_;
        break;
      }
      case RecordKind::GpuFailed:
      case RecordKind::GpuRepaired: {
        apply_health_change(r);
        break;
      }
      case RecordKind::JobRecovered: {
        JobState* js = job_state(r);
        if (js == nullptr) break;
        if (js->s != JobState::S::Running) {
          issue("job " + std::to_string(r.job) + " recovered while not running");
          break;
        }
        if (r.detail != "shrink" && r.detail != "restart") {
          issue("job_recovered with unknown mode '" + r.detail + "'");
        }
        if (impacted_.erase(r.job) == 0) {
          issue("job " + std::to_string(r.job) +
                " recovered without a preceding failure (I10)");
        }
        break;
      }
      case RecordKind::ElasticPaused: {
        JobState* js = job_state(r);
        if (js == nullptr) break;
        if (js->s != JobState::S::Running) {
          issue("elastic pause for job " + std::to_string(r.job) + " while not running");
          break;
        }
        js->paused = true;
        break;
      }
      case RecordKind::ElasticResumed: {
        JobState* js = job_state(r);
        if (js == nullptr) break;
        if (js->s != JobState::S::Running || !js->paused) {
          issue("elastic resume for job " + std::to_string(r.job) +
                " without an open pause");
          break;
        }
        js->paused = false;
        break;
      }
      case RecordKind::ProtocolPhase:
      case RecordKind::EvolutionStep:
        break;  // informational milestones; no state transition
      case RecordKind::SimEvent: {
        // I7: a paused job must make no training progress until resume.
        if (r.detail == "epoch" && r.job != kInvalidJob) {
          auto it = jobs_.find(r.job);
          if (it != jobs_.end() && it->second.paused) {
            issue("job " + std::to_string(r.job) +
                  " completed an epoch inside a reconfiguration pause");
          }
        }
        break;
      }
    }
  }

  void finish() {
    flush_txn();
    index_ = records_.empty() ? 0 : records_.size() - 1;
    if (records_.empty()) {
      report_.issues.push_back({0, "empty trace"});
      return;
    }
    if (!saw_run_end_) issue("trace has no run_end");
    // I7 end-of-stream: a run that was cut off mid-flight (run_end tagged
    // "truncated" by the driver) legitimately leaves jobs inside
    // reconfiguration pauses; a drained run must not.
    if (!truncated_) {
      for (const auto& [id, js] : jobs_) {
        if (js.paused) {
          issue("job " + std::to_string(id) + " left inside an unclosed pause bracket");
        }
      }
      // I10 end-of-stream: every failure-impacted job must have settled.
      std::vector<JobId> dangling(impacted_.begin(), impacted_.end());
      std::sort(dangling.begin(), dangling.end());
      for (const JobId id : dangling) {
        issue("job " + std::to_string(id) +
              " impacted by a failure but never recovered (I10)");
      }
    }
  }

  const std::vector<TraceRecord>& records_;
  ReplayReport report_;
  std::size_t index_ = 0;
  double prev_t_ = 0.0;
  std::uint64_t prev_seq_ = 0;
  int total_gpus_ = 0;
  int occupied_ = 0;
  bool saw_run_end_ = false;
  bool truncated_ = false;
  std::size_t completed_ = 0;
  struct PendingClaim {
    GpuId gpu;
    JobId job;
    std::size_t index;  ///< record that made the claim, for issue attribution
  };
  std::vector<GpuId> txn_releases_;
  std::vector<PendingClaim> txn_claims_;
  std::vector<JobId> owner_;
  std::vector<bool> down_;  ///< per-GPU down set (I9)
  std::unordered_set<JobId> impacted_;  ///< failure-hit, recovery owed (I10)
  std::unordered_map<JobId, JobState> jobs_;
};

}  // namespace

ReplayReport TraceReplayer::check(const std::vector<TraceRecord>& records) const {
  return Checker(records).run();
}

ReplayReport TraceReplayer::check_jsonl(std::string_view text) const {
  std::vector<TraceRecord> records;
  std::size_t start = 0;
  std::size_t line_no = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    if (!line.empty()) {
      try {
        records.push_back(record_from_jsonl_line(line));
      } catch (const std::exception& e) {
        // Validate the readable prefix; everything past the corruption is
        // untrustworthy either way.
        ReplayReport report = check(records);
        report.issues.push_back({line_no, std::string("unparseable line: ") + e.what()});
        return report;
      }
      ++line_no;
    }
    start = end + 1;
  }
  return check(records);
}

ReplayReport TraceReplayer::check_file(const std::string& path) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ReplayReport report;
    report.issues.push_back({0, "cannot open trace file '" + path + "'"});
    return report;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return check_jsonl(buf.str());
}

}  // namespace ones::trace
