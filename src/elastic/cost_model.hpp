// Re-configuration cost models (paper §3.3.1 and §4.3 / Figure 16).
//
// Two mechanisms are compared:
//
//  * Elastic batch-size scaling (ONES): the scaling agent pauses the worker
//    at the end of a training step, resizes the modules on the GPU,
//    reconnects the NCCL topology and (when workers were added) broadcasts
//    the parameters from one previous worker. New workers initialize in the
//    background, overlapped with ongoing training (Fig 12), so their startup
//    never blocks the job. Blocked time ~= 1 s.
//
//  * Checkpoint-based migration (the common practice, used by the Optimus /
//    Tiresias style baselines): stop training, serialize the model to HDFS
//    over 1 Gbps Ethernet, wait for the scheduler, restart the framework,
//    re-warm the input pipeline and reload the model onto the GPUs.
//    Blocked time ~= tens of seconds (Gu et al. report 20-40 s).
#pragma once

#include "cluster/topology.hpp"
#include "model/task.hpp"

namespace ones::elastic {

struct CostConfig {
  // ---- elastic scaling ----
  double pause_step_s = 0.05;      ///< drain the in-flight training step
  double resize_modules_s = 0.15;  ///< re-shape input tensors / buffers on GPU
  double resize_per_byte_s = 2.5e-10;  ///< buffer reallocation scales with model
  double reconnect_base_s = 0.25;  ///< NCCL communicator re-initialization
  double reconnect_per_worker_s = 0.02;
  // ---- checkpoint migration ----
  double hdfs_bw_Bps = 125e6;          ///< 1 Gbps Ethernet to HDFS
  double scheduler_delay_s = 5.0;      ///< queueing + container placement
  double framework_init_s = 8.0;       ///< process start, CUDA context, imports
  double data_pipeline_warmup_s = 8.0;  ///< input pipeline re-warm
  double model_load_s = 2.0;            ///< deserialize + H2D copy
};

class ScalingCostModel {
 public:
  explicit ScalingCostModel(const CostConfig& config = {}) : config_(config) {}

  const CostConfig& config() const { return config_; }

  /// Seconds the job is *blocked* by an elastic re-configuration from
  /// `old_workers` to `new_workers` GPUs. `link` is the slowest link of the
  /// new worker set (parameter broadcast path).
  double elastic_cost_s(const model::TaskProfile& profile, int old_workers,
                        int new_workers, const cluster::LinkProfile& link) const;

  /// Seconds the job is blocked by a checkpoint-based migration onto
  /// `new_workers` GPUs (save + reschedule + restart + reload).
  double checkpoint_cost_s(const model::TaskProfile& profile, int new_workers) const;

  /// Cold-start cost of launching a job for the first time. Identical for
  /// both mechanisms (the user script has to initialize either way).
  double cold_start_cost_s(const model::TaskProfile& profile) const;

 private:
  CostConfig config_;
};

}  // namespace ones::elastic
