// Discrete-event enactment of the elastic scaling mechanism (Figs 11 & 12).
//
// The paper's mechanism: a central scheduler informs each GPU's *worker
// manager* of the new configuration; the manager's *scaling agent* pauses the
// user script at the end of a training step, resizes the modules, reconnects
// the workers into the new topology and resumes. New workers start first and
// overlap their (slow) initialization with the still-running training; only
// once they are ready do the previous workers drain one step and join the
// new topology, after which the parameters are broadcast from one previous
// worker.
//
// This module simulates that message flow event-by-event on the SimEngine.
// The fast cost model in cost_model.hpp is what the big trace simulations
// use; this protocol simulation validates the cost model's "blocked time"
// decomposition and powers the Fig 16 overhead benchmark and the
// elastic_scaling_demo example.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cluster/topology.hpp"
#include "common/ids.hpp"
#include "elastic/cost_model.hpp"
#include "model/task.hpp"
#include "prof/profiler.hpp"
#include "sim/engine.hpp"
#include "telemetry/registry.hpp"

namespace ones::elastic {

/// Lifecycle of one worker during a scaling session.
enum class WorkerPhase {
  Idle,          ///< not part of the job
  Initializing,  ///< new worker: user script + module load in background
  Training,      ///< executing training steps in the old topology
  Draining,      ///< notified; finishing the in-flight step
  Reconnecting,  ///< joining the new topology
  Receiving,     ///< receiving the broadcast parameters
  Running,       ///< training in the new topology
};

const char* phase_name(WorkerPhase phase);

struct ScalingReport {
  double started_at = 0.0;
  double new_workers_ready_at = 0.0;  ///< background init finished
  double paused_at = 0.0;             ///< previous workers drained their step
  double resumed_at = 0.0;            ///< training continues in new topology
  /// Time the *job* made no training progress (pause -> resume). This is the
  /// number Figure 16 plots for "elastic batch size scaling".
  double blocked_s = 0.0;
  /// End-to-end session time including the overlapped background init.
  double total_s = 0.0;
  /// Workers reported dead mid-session via ScalingSession::on_worker_lost.
  int workers_lost = 0;
  /// True when every target worker died and the session gave up (the driver
  /// then falls back to checkpoint-restart, DESIGN.md §13).
  bool rolled_back = false;
  std::vector<std::string> timeline;  ///< human-readable event log
};

/// Configuration of one scaling session.
struct ScalingRequest {
  JobId job = kInvalidJob;
  std::vector<GpuId> old_workers;
  std::vector<GpuId> new_workers;
  int old_global_batch = 0;
  int new_global_batch = 0;
};

/// Simulates one elastic re-configuration of a job. Drives `engine` and
/// invokes `on_done` with the report when the session completes.
class ScalingSession {
 public:
  /// Where the session currently is; worker loss is handled per phase.
  enum class SessionPhase {
    Pending,       ///< constructed, start() not yet called
    Init,          ///< new workers initializing in the background
    Draining,      ///< previous workers finishing their in-flight step
    Reconnecting,  ///< workers joining the new topology
    Receiving,     ///< parameter broadcast in flight
    Done,          ///< on_done fired with a successful report
    RolledBack,    ///< every target worker died; on_done fired, rolled_back
  };

  ScalingSession(sim::SimEngine& engine, const model::TaskProfile& profile,
                 const cluster::Topology& topology, const CostConfig& costs,
                 ScalingRequest request, std::function<void(const ScalingReport&)> on_done);

  /// Kick off the protocol (schedules the first events).
  void start();

  /// A worker died mid-session (GPU fault / node crash / reclaim). The
  /// session converges deterministically on the survivors:
  ///   * Pending/Init/Draining — the dead worker is dropped from the target;
  ///     later stages are costed from the surviving set at stage entry.
  ///   * Reconnecting/Receiving — the in-flight stage is cancelled and the
  ///     survivors re-form the topology (a fresh reconnect, then broadcast).
  ///   * If no target worker survives, the session rolls back: on_done fires
  ///     immediately with rolled_back = true (blocked time accounted).
  /// Losing a worker that is in neither worker set (or after the session
  /// finished) is a no-op.
  void on_worker_lost(GpuId gpu);

  SessionPhase phase() const { return phase_; }

  /// Optional milestone hook, invoked at every timeline entry with the
  /// simulated time and message. The `trace` module adapts this into
  /// ProtocolPhase records (trace::protocol_phase_hook) — a plain callback
  /// keeps `elastic` below `trace` in the module layering. Set before
  /// start(); null (the default) costs one branch per milestone.
  void set_phase_hook(std::function<void(double t, const std::string& what)> hook) {
    phase_hook_ = std::move(hook);
  }

  /// Optional metrics registry (not owned; null — the default — disables
  /// instrumentation). On completion the session records
  /// `elastic_scalings_total`, `elastic_blocked_seconds_total` and the
  /// `elastic_last_blocked_seconds` gauge. Set before start().
  void set_metrics(telemetry::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Optional host-time profiler (not owned; null — the default — costs one
  /// branch per stage). Each protocol stage handler runs under an
  /// `elastic.stage` span (DESIGN.md §14); never affects the session.
  void set_profiler(prof::Profiler* profiler) { profiler_ = profiler; }

 private:
  void log_event(const std::string& what);
  void on_new_workers_ready();
  void on_previous_drained();
  void begin_reconnect();
  void on_reconnected();
  void on_broadcast_done();
  void roll_back();

  sim::SimEngine& engine_;
  const model::TaskProfile& profile_;
  const cluster::Topology& topology_;
  CostConfig costs_;
  ScalingRequest request_;
  std::function<void(const ScalingReport&)> on_done_;
  std::function<void(double, const std::string&)> phase_hook_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  prof::Profiler* profiler_ = nullptr;
  ScalingReport report_;
  std::vector<GpuId> added_;
  std::vector<GpuId> kept_;
  SessionPhase phase_ = SessionPhase::Pending;
  sim::EventId pending_ = 0;  ///< the in-flight stage's engine event
};

/// Simulates a checkpoint-based migration of the same request: stop, save to
/// HDFS, reschedule, restart, reload. The whole session blocks training.
/// A non-null `metrics` records `checkpoint_migrations_total`,
/// `checkpoint_blocked_seconds_total` and `checkpoint_last_blocked_seconds`.
/// A non-null `profiler` runs the migration under an `elastic.checkpoint`
/// host-time span (DESIGN.md §14); neither ever affects the report.
ScalingReport run_checkpoint_migration(sim::SimEngine& engine,
                                       const model::TaskProfile& profile,
                                       const CostConfig& costs,
                                       const ScalingRequest& request,
                                       telemetry::MetricsRegistry* metrics = nullptr,
                                       prof::Profiler* profiler = nullptr);

}  // namespace ones::elastic
