#include "elastic/protocol.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/expect.hpp"
#include "model/throughput.hpp"

namespace ones::elastic {

const char* phase_name(WorkerPhase phase) {
  switch (phase) {
    case WorkerPhase::Idle: return "idle";
    case WorkerPhase::Initializing: return "initializing";
    case WorkerPhase::Training: return "training";
    case WorkerPhase::Draining: return "draining";
    case WorkerPhase::Reconnecting: return "reconnecting";
    case WorkerPhase::Receiving: return "receiving";
    case WorkerPhase::Running: return "running";
  }
  return "?";
}

ScalingSession::ScalingSession(sim::SimEngine& engine, const model::TaskProfile& profile,
                               const cluster::Topology& topology, const CostConfig& costs,
                               ScalingRequest request,
                               std::function<void(const ScalingReport&)> on_done)
    : engine_(engine),
      profile_(profile),
      topology_(topology),
      costs_(costs),
      request_(std::move(request)),
      on_done_(std::move(on_done)) {
  ONES_EXPECT(!request_.old_workers.empty());
  ONES_EXPECT(!request_.new_workers.empty());
  ONES_EXPECT(on_done_ != nullptr);
  // ones-lint: unordered-ok(membership probe while iterating new_workers in request order; the set itself is never iterated)
  std::unordered_set<GpuId> old_set(request_.old_workers.begin(), request_.old_workers.end());
  for (GpuId g : request_.new_workers) {
    if (old_set.count(g)) {
      kept_.push_back(g);
    } else {
      added_.push_back(g);
    }
  }
}

void ScalingSession::log_event(const std::string& what) {
  std::ostringstream os;
  os << "t=" << engine_.now() << "s  " << what;
  report_.timeline.push_back(os.str());
  if (phase_hook_) phase_hook_(engine_.now(), what);
}

void ScalingSession::start() {
  const prof::Scope span(profiler_, "elastic.stage");
  ONES_EXPECT_MSG(phase_ == SessionPhase::Pending, "ScalingSession::start called twice");
  report_.started_at = engine_.now();
  log_event("scheduler sends new configuration to worker managers");

  if (!added_.empty()) {
    // Step 1 (Fig 12): new workers initialize in the background while the
    // previous workers keep training. Init runs in parallel across workers;
    // the session advances when the slowest one is ready.
    phase_ = SessionPhase::Init;
    const double init_s = costs_.framework_init_s +
                          profile_.params_bytes / costs_.hdfs_bw_Bps * 0.25;
    log_event("new workers start background initialization (" +
              std::to_string(added_.size()) + " worker(s))");
    pending_ = engine_.schedule_after(init_s, [this] { on_new_workers_ready(); });
  } else {
    // Pure shrink / re-batch: nothing to initialize.
    phase_ = SessionPhase::Init;
    on_new_workers_ready();
  }
}

void ScalingSession::on_worker_lost(GpuId gpu) {
  if (phase_ == SessionPhase::Done || phase_ == SessionPhase::RolledBack) return;
  const prof::Scope span(profiler_, "elastic.stage");
  auto drop = [gpu](std::vector<GpuId>& v) {
    const auto it = std::find(v.begin(), v.end(), gpu);
    if (it == v.end()) return false;
    v.erase(it);
    return true;
  };
  const bool was_target = drop(request_.new_workers);
  const bool was_old = drop(request_.old_workers);
  drop(kept_);
  drop(added_);
  if (!was_target && !was_old) return;  // not part of this session
  ++report_.workers_lost;
  log_event("worker " + std::to_string(gpu) + " lost during " +
            (phase_ == SessionPhase::Pending
                 ? "pending"
                 : phase_ == SessionPhase::Init
                       ? "init"
                       : phase_ == SessionPhase::Draining
                             ? "drain"
                             : phase_ == SessionPhase::Reconnecting ? "reconnect"
                                                                    : "broadcast"));
  if (metrics_ != nullptr) metrics_->counter("elastic_workers_lost_total").add();
  if (request_.new_workers.empty()) {
    roll_back();
    return;
  }
  switch (phase_) {
    case SessionPhase::Pending:
    case SessionPhase::Init:
    case SessionPhase::Draining:
      // Later stages are costed from the surviving set when they begin;
      // nothing in flight depends on the dead worker.
      break;
    case SessionPhase::Reconnecting:
    case SessionPhase::Receiving:
      // The forming topology included the dead worker: the survivors must
      // re-form it (fresh reconnect, then broadcast).
      if (pending_ != 0) {
        engine_.cancel(pending_);
        pending_ = 0;
      }
      log_event("survivors re-form the topology (" +
                std::to_string(request_.new_workers.size()) + " worker(s))");
      begin_reconnect();
      break;
    case SessionPhase::Done:
    case SessionPhase::RolledBack:
      break;  // unreachable: handled above
  }
}

void ScalingSession::roll_back() {
  if (pending_ != 0) {
    engine_.cancel(pending_);
    pending_ = 0;
  }
  phase_ = SessionPhase::RolledBack;
  report_.rolled_back = true;
  report_.resumed_at = engine_.now();
  // If the previous workers never drained, training was live the whole time.
  report_.blocked_s =
      report_.paused_at > 0.0 ? engine_.now() - report_.paused_at : 0.0;
  report_.total_s = engine_.now() - report_.started_at;
  log_event("no surviving target worker; scaling session rolled back");
  if (metrics_ != nullptr) {
    metrics_->counter("elastic_rollbacks_total").add();
    metrics_->counter("elastic_blocked_seconds_total").add(report_.blocked_s);
    metrics_->gauge("elastic_last_blocked_seconds").set(report_.blocked_s);
  }
  on_done_(report_);
}

void ScalingSession::on_new_workers_ready() {
  const prof::Scope span(profiler_, "elastic.stage");
  pending_ = 0;
  report_.new_workers_ready_at = engine_.now();
  log_event("new workers ready; controller notifies previous workers");
  phase_ = SessionPhase::Draining;

  // Previous workers drain their in-flight training step. We charge the
  // average case: half a step plus the configured pause overhead. A session
  // whose old workers all died mid-drain still pays the drain window (the
  // controller waits out the step deadline before declaring them gone).
  const int old_n = std::max<int>(1, static_cast<int>(request_.old_workers.size()));
  const cluster::LinkProfile old_link =
      request_.old_workers.empty() ? topology_.link_profile(request_.new_workers)
                                   : topology_.link_profile(request_.old_workers);
  const double step = model::step_time_even_s(
      profile_, std::max(request_.old_global_batch, old_n), old_n, old_link);
  pending_ = engine_.schedule_after(0.5 * step + costs_.pause_step_s,
                                    [this] { on_previous_drained(); });
}

void ScalingSession::on_previous_drained() {
  const prof::Scope span(profiler_, "elastic.stage");
  pending_ = 0;
  report_.paused_at = engine_.now();
  log_event("previous workers drained their step and quit the old topology");
  begin_reconnect();
}

void ScalingSession::begin_reconnect() {
  phase_ = SessionPhase::Reconnecting;
  const double reconnect =
      costs_.resize_modules_s + costs_.resize_per_byte_s * profile_.params_bytes +
      costs_.reconnect_base_s +
      costs_.reconnect_per_worker_s * static_cast<double>(request_.new_workers.size());
  pending_ = engine_.schedule_after(reconnect, [this] { on_reconnected(); });
}

void ScalingSession::on_reconnected() {
  const prof::Scope span(profiler_, "elastic.stage");
  pending_ = 0;
  log_event("all workers connected to the new topology; modules resized");
  if (!added_.empty()) {
    phase_ = SessionPhase::Receiving;
    const cluster::LinkProfile link = topology_.link_profile(request_.new_workers);
    const double bcast = profile_.params_bytes / link.bandwidth_Bps;
    log_event("broadcasting parameters from one previous worker");
    pending_ = engine_.schedule_after(bcast, [this] { on_broadcast_done(); });
  } else {
    on_broadcast_done();
  }
}

void ScalingSession::on_broadcast_done() {
  const prof::Scope span(profiler_, "elastic.stage");
  pending_ = 0;
  phase_ = SessionPhase::Done;
  report_.resumed_at = engine_.now();
  report_.blocked_s = report_.resumed_at - report_.paused_at +
                      0.0;  // training was live until paused_at
  report_.total_s = report_.resumed_at - report_.started_at;
  log_event("scaling agents resume the user scripts");
  if (metrics_ != nullptr) {
    metrics_->counter("elastic_scalings_total").add();
    metrics_->counter("elastic_blocked_seconds_total").add(report_.blocked_s);
    metrics_->gauge("elastic_last_blocked_seconds").set(report_.blocked_s);
  }
  on_done_(report_);
}

ScalingReport run_checkpoint_migration(sim::SimEngine& engine,
                                       const model::TaskProfile& profile,
                                       const CostConfig& costs,
                                       const ScalingRequest& request,
                                       telemetry::MetricsRegistry* metrics,
                                       prof::Profiler* profiler) {
  const prof::Scope span(profiler, "elastic.checkpoint");
  ONES_EXPECT(!request.new_workers.empty());
  ScalingReport report;
  report.started_at = engine.now();
  report.paused_at = engine.now();  // training stops immediately

  auto log = [&](double t, const std::string& what) {
    std::ostringstream os;
    os << "t=" << t << "s  " << what;
    report.timeline.push_back(os.str());
  };

  double t = engine.now();
  log(t, "training stopped; saving checkpoint to HDFS");
  t += profile.params_bytes / costs.hdfs_bw_Bps;
  log(t, "checkpoint saved; waiting for the scheduler");
  t += costs.scheduler_delay_s;
  log(t, "restarting framework on the new workers");
  t += costs.framework_init_s;
  log(t, "re-warming the input pipeline");
  t += costs.data_pipeline_warmup_s;
  log(t, "loading checkpoint onto the GPUs");
  t += profile.params_bytes / costs.hdfs_bw_Bps + costs.model_load_s;
  log(t, "training resumes");

  report.new_workers_ready_at = t;
  report.resumed_at = t;
  report.blocked_s = t - report.started_at;
  report.total_s = report.blocked_s;
  if (metrics != nullptr) {
    metrics->counter("checkpoint_migrations_total").add();
    metrics->counter("checkpoint_blocked_seconds_total").add(report.blocked_s);
    metrics->gauge("checkpoint_last_blocked_seconds").set(report.blocked_s);
  }
  return report;
}

}  // namespace ones::elastic
