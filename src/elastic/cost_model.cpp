#include "elastic/cost_model.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace ones::elastic {

double ScalingCostModel::elastic_cost_s(const model::TaskProfile& profile, int old_workers,
                                        int new_workers,
                                        const cluster::LinkProfile& link) const {
  ONES_EXPECT(old_workers >= 1 && new_workers >= 1);
  ONES_EXPECT(link.bandwidth_Bps > 0.0);
  double cost = config_.pause_step_s + config_.resize_modules_s +
                config_.resize_per_byte_s * profile.params_bytes +
                config_.reconnect_base_s +
                config_.reconnect_per_worker_s * static_cast<double>(new_workers);
  if (new_workers > old_workers) {
    // One broadcast of the parameters to the (already-initialized, Fig 12)
    // new workers.
    cost += profile.params_bytes / link.bandwidth_Bps;
  }
  return cost;
}

double ScalingCostModel::checkpoint_cost_s(const model::TaskProfile& profile,
                                           int new_workers) const {
  ONES_EXPECT(new_workers >= 1);
  const double save = profile.params_bytes / config_.hdfs_bw_Bps;
  const double load = profile.params_bytes / config_.hdfs_bw_Bps + config_.model_load_s;
  return save + config_.scheduler_delay_s + config_.framework_init_s +
         config_.data_pipeline_warmup_s + load;
}

double ScalingCostModel::cold_start_cost_s(const model::TaskProfile& profile) const {
  return config_.framework_init_s + config_.data_pipeline_warmup_s * 0.5 +
         profile.params_bytes / config_.hdfs_bw_Bps * 0.25;  // weights often cached
}

}  // namespace ones::elastic
