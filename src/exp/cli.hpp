// Shared command-line parsing for orchestrated benches:
//   --threads=N     worker threads (default: hardware concurrency)
//   --seeds=K       trace seeds per configuration (default: 1)
//   --no-cache      bypass the on-disk result cache
//   --cache-dir=P   cache directory (default: .ones-cache)
//   --trace-dir=P   write a structured trace per executed run (off by default)
//   --metrics-dir=P write metrics exports per executed run (off by default)
//   --prof-dir=P    write host-time profiles per executed run (off by default)
//   --bench-json=P  machine-readable bench results file (default: BENCH_<name>.json)
//   --no-bench-json skip the bench results file
//   --no-progress   silence the stderr progress reporter
//   --help          print usage and exit
//
// Unknown flags print usage to stderr and exit(2) so a typo never silently
// runs a 45-minute sweep with default settings.
#pragma once

#include <functional>

#include "exp/orchestrator.hpp"

namespace ones::exp {

struct BenchOptions {
  GridOptions grid;
  /// Seeds swept per grid configuration: base_seed .. base_seed + seeds - 1.
  int seeds = 1;
  /// Canonical machine-readable results file (bench::BenchReport). Empty —
  /// the default — means `BENCH_<bench name>.json` in the working directory.
  std::string bench_json;
  /// `--no-bench-json` turns the results file off entirely.
  bool write_bench_json = true;
};

/// Number of worker threads to default to (hardware concurrency, >= 1).
int default_threads();

/// Parse bench flags; exits the process on --help (0) or bad usage (2).
/// `--trace-dir`/`--metrics-dir`/`--prof-dir` are validated up front via
/// `validate_output_dir`, so an unwritable path fails in milliseconds
/// instead of after the first executed run.
BenchOptions parse_bench_cli(int argc, char** argv);

/// Like the two-argument overload, but a bench can claim extra flags of its
/// own: `extra` is tried on every argument the shared parser does not
/// recognize (return true = consumed), and `extra_usage` (nullable) is
/// appended verbatim to the usage text. Used by fig17_scalability for
/// `--scale=...`; other benches keep the strict unknown-flag exit(2).
BenchOptions parse_bench_cli(int argc, char** argv,
                             const std::function<bool(const char*)>& extra,
                             const char* extra_usage);

/// Ensure `dir` exists (creating it if needed) and is writable by creating
/// and removing a probe file. On failure prints "<prog>: <flag> ..." to
/// stderr and exits(2). No-op for an empty `dir`.
void validate_output_dir(const std::string& dir, const char* flag, const char* prog);

}  // namespace ones::exp
