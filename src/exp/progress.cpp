#include "exp/progress.hpp"

#include <cstdio>

namespace ones::exp {

ProgressReporter::ProgressReporter(std::size_t total, bool enabled)
    : total_(total), enabled_(enabled), start_(std::chrono::steady_clock::now()) {}

void ProgressReporter::on_cached(const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  ++completed_;
  report_locked(label, "cached", 0.0);
}

void ProgressReporter::on_done(const std::string& label, double wall_s) {
  std::lock_guard<std::mutex> lock(mu_);
  ++completed_;
  ++executed_;
  exec_wall_s_ += wall_s;
  report_locked(label, "done", wall_s);
}

void ProgressReporter::report_locked(const std::string& label, const char* how,
                                     double wall_s) {
  if (!enabled_) return;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  // ETA from the throughput of completed work so far: remaining runs at the
  // observed overall rate. Coarse but stable, and it converges as the grid
  // drains; cached runs are nearly free so they barely perturb the rate.
  const std::size_t remaining = total_ - completed_;
  double eta = -1.0;
  if (completed_ > 0 && elapsed > 0.0) {
    eta = elapsed / static_cast<double>(completed_) * static_cast<double>(remaining);
  }
  if (wall_s > 0.0) {
    std::fprintf(stderr, "[exp] %3zu/%zu %-6s %-28s %6.1fs  elapsed %6.1fs",
                 completed_, total_, how, label.c_str(), wall_s, elapsed);
  } else {
    std::fprintf(stderr, "[exp] %3zu/%zu %-6s %-28s %6s  elapsed %6.1fs", completed_,
                 total_, how, label.c_str(), "-", elapsed);
  }
  if (remaining > 0 && eta >= 0.0) {
    std::fprintf(stderr, "  eta %6.1fs", eta);
  }
  std::fputc('\n', stderr);
  std::fflush(stderr);
}

void ProgressReporter::finish(std::size_t cache_hits) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  std::fprintf(stderr,
               "[exp] grid complete: %zu runs (%zu executed, %zu cached) in %.1fs\n",
               total_, executed_, cache_hits, elapsed);
  std::fflush(stderr);
}

}  // namespace ones::exp
