#include "exp/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <thread>

namespace ones::exp {

namespace {

void print_usage(std::FILE* out, const char* prog, const char* extra_usage) {
  std::fprintf(out,
               "usage: %s [--threads=N] [--seeds=K] [--no-cache] [--cache-dir=PATH]\n"
               "          [--trace-dir=PATH] [--metrics-dir=PATH] [--prof-dir=PATH]\n"
               "          [--bench-json=PATH] [--no-bench-json] [--no-progress] [--help]\n"
               "  --threads=N     worker threads (default: hardware concurrency, %d)\n"
               "  --seeds=K       trace seeds per configuration (default: 1)\n"
               "  --no-cache      bypass the on-disk result cache\n"
               "  --cache-dir=P   cache directory (default: .ones-cache)\n"
               "  --trace-dir=P   write JSONL + Chrome traces per executed run\n"
               "  --metrics-dir=P write timeline CSV + Prometheus + JSON metrics per executed run\n"
               "  --prof-dir=P    write host-time span profiles per executed run\n"
               "  --bench-json=P  machine-readable results file (default: BENCH_<name>.json)\n"
               "  --no-bench-json skip the machine-readable results file\n"
               "  --no-progress   silence the stderr progress/ETA reporter\n",
               prog, default_threads());
  if (extra_usage != nullptr) std::fputs(extra_usage, out);
}

/// Parse the integer value of "--flag=V"; exits on malformed or < min.
int parse_int_value(const char* arg, const char* value, int min, const char* prog) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (*value == '\0' || *end != '\0' || v < min) {
    std::fprintf(stderr, "%s: bad value in '%s' (need an integer >= %d)\n", prog, arg,
                 min);
    std::exit(2);
  }
  return static_cast<int>(v);
}

}  // namespace

int default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

BenchOptions parse_bench_cli(int argc, char** argv) {
  return parse_bench_cli(argc, argv, nullptr, nullptr);
}

BenchOptions parse_bench_cli(int argc, char** argv,
                             const std::function<bool(const char*)>& extra,
                             const char* extra_usage) {
  BenchOptions opt;
  opt.grid.threads = default_threads();
  const char* prog = argc > 0 ? argv[0] : "bench";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_usage(stdout, prog, extra_usage);
      std::exit(0);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      opt.grid.threads = parse_int_value(arg, arg + 10, 1, prog);
    } else if (std::strncmp(arg, "--seeds=", 8) == 0) {
      opt.seeds = parse_int_value(arg, arg + 8, 1, prog);
    } else if (std::strcmp(arg, "--no-cache") == 0) {
      opt.grid.use_cache = false;
    } else if (std::strncmp(arg, "--cache-dir=", 12) == 0) {
      opt.grid.cache_dir = arg + 12;
    } else if (std::strncmp(arg, "--trace-dir=", 12) == 0) {
      opt.grid.trace_dir = arg + 12;
    } else if (std::strncmp(arg, "--metrics-dir=", 14) == 0) {
      opt.grid.metrics_dir = arg + 14;
    } else if (std::strncmp(arg, "--prof-dir=", 11) == 0) {
      opt.grid.prof_dir = arg + 11;
    } else if (std::strncmp(arg, "--bench-json=", 13) == 0) {
      opt.bench_json = arg + 13;
    } else if (std::strcmp(arg, "--no-bench-json") == 0) {
      opt.write_bench_json = false;
    } else if (std::strcmp(arg, "--no-progress") == 0) {
      opt.grid.progress = false;
    } else if (extra && extra(arg)) {
      // consumed by the bench's own flag handler
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", prog, arg);
      print_usage(stderr, prog, extra_usage);
      std::exit(2);
    }
  }
  validate_output_dir(opt.grid.trace_dir, "--trace-dir", prog);
  validate_output_dir(opt.grid.metrics_dir, "--metrics-dir", prog);
  validate_output_dir(opt.grid.prof_dir, "--prof-dir", prog);
  return opt;
}

void validate_output_dir(const std::string& dir, const char* flag, const char* prog) {
  if (dir.empty()) return;
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "%s: %s: cannot create directory '%s': %s\n", prog, flag,
                 dir.c_str(), ec.message().c_str());
    std::exit(2);
  }
  if (!fs::is_directory(dir, ec) || ec) {
    std::fprintf(stderr, "%s: %s: '%s' is not a directory\n", prog, flag, dir.c_str());
    std::exit(2);
  }
  const fs::path probe = fs::path(dir) / ".write-probe";
  {
    std::ofstream f(probe, std::ios::binary | std::ios::trunc);
    f << "probe";
    if (!f.good()) {
      std::fprintf(stderr, "%s: %s: directory '%s' is not writable\n", prog, flag,
                   dir.c_str());
      std::exit(2);
    }
  }
  fs::remove(probe, ec);  // best-effort cleanup; a stale probe is harmless
}

}  // namespace ones::exp
