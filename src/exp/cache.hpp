// Content-addressed on-disk result cache.
//
// One JSON file per run under the cache directory (default `.ones-cache/`),
// named by `cache_key(spec)` — a human-readable prefix plus the FNV-1a hash
// of the spec's canonical serialization. A warm cache makes re-running an
// unchanged bench near-instant; any change to the spec (seed, topology,
// trace, variant tag, schema version) changes the key and misses.
//
// Thread safety: load/store may be called concurrently from worker threads.
// Stores write to a unique temp file and rename into place, so readers never
// observe a partial file; hit/miss/store counters are atomic.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "exp/result.hpp"
#include "exp/run_spec.hpp"

namespace ones::exp {

class ResultCache {
 public:
  explicit ResultCache(std::string dir = ".ones-cache", bool enabled = true);

  /// Look up the result of `spec`. Returns nullopt when disabled, absent,
  /// unreadable, or written by a different schema version (all treated as
  /// misses — a corrupt entry is overwritten by the next store).
  std::optional<RunResult> load(const RunSpec& spec) const;

  /// Persist the result of `spec` (no-op when disabled). Creates the cache
  /// directory on first use; I/O failures are swallowed after a warning —
  /// caching is an optimization, never a correctness requirement.
  void store(const RunSpec& spec, const RunResult& result) const;

  const std::string& dir() const { return dir_; }
  bool enabled() const { return enabled_; }

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  std::uint64_t stores() const { return stores_.load(); }
  /// Entries that existed on disk but failed to parse (corrupt or written by
  /// another schema version) and were demoted to misses.
  std::uint64_t demotions() const { return demotions_.load(); }

 private:
  std::string path_for(const RunSpec& spec) const;

  std::string dir_;
  bool enabled_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> stores_{0};
  mutable std::atomic<std::uint64_t> demotions_{0};
};

}  // namespace ones::exp
