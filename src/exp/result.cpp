#include "exp/result.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"
#include "exp/run_spec.hpp"

namespace ones::exp {

namespace {

void append_series(std::ostringstream& os, const char* key,
                   const std::vector<double>& values) {
  os << json_quote(key) << ":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ',';
    os << json_double(values[i]);
  }
  os << ']';
}

std::vector<double> read_series(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.find(key);
  if (!v || v->kind != JsonValue::Kind::Array) {
    throw std::runtime_error(std::string("missing array field: ") + key);
  }
  std::vector<double> out;
  out.reserve(v->array.size());
  for (const auto& e : v->array) {
    if (e.kind != JsonValue::Kind::Number) {
      throw std::runtime_error(std::string("non-numeric element in ") + key);
    }
    out.push_back(e.number);
  }
  return out;
}

double read_number(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::Number) {
    throw std::runtime_error(std::string("missing numeric field: ") + key);
  }
  return v->number;
}

std::string read_string(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::String) {
    throw std::runtime_error(std::string("missing string field: ") + key);
  }
  return v->string;
}

}  // namespace

std::string result_to_json(const RunResult& r) {
  std::ostringstream os;
  os << "{\"schema\":" << kCacheSchemaVersion << ",\"summary\":{";
  os << "\"scheduler\":" << json_quote(r.summary.scheduler);
  os << ",\"jobs\":" << r.summary.jobs;
  os << ",\"avg_jct\":" << json_double(r.summary.avg_jct);
  os << ",\"avg_exec\":" << json_double(r.summary.avg_exec);
  os << ",\"avg_queue\":" << json_double(r.summary.avg_queue);
  os << ",\"p50_jct\":" << json_double(r.summary.p50_jct);
  os << ",\"p90_jct\":" << json_double(r.summary.p90_jct);
  os << ",\"max_jct\":" << json_double(r.summary.max_jct);
  os << ",\"makespan\":" << json_double(r.summary.makespan);
  os << ",\"utilization\":" << json_double(r.summary.utilization);
  os << ",\"cluster_joules\":" << json_double(r.summary.cluster_joules);
  os << ",\"overhead_joules\":" << json_double(r.summary.overhead_joules);
  os << "},";
  append_series(os, "jcts", r.jcts);
  os << ',';
  append_series(os, "exec_times", r.exec_times);
  os << ',';
  append_series(os, "queue_times", r.queue_times);
  os << ",\"jct_by_job\":[";
  bool first = true;
  for (const auto& [id, jct] : r.jct_by_job) {
    if (!first) os << ',';
    first = false;
    os << '[' << id << ',' << json_double(jct) << ']';
  }
  os << "],\"completed\":" << r.completed;
  os << ",\"events_fired\":" << r.events_fired;
  os << ",\"deployments\":" << r.deployments << '}';
  return os.str();
}

RunResult result_from_json(const std::string& json) {
  const JsonValue doc = parse_json(json);
  if (doc.kind != JsonValue::Kind::Object) throw std::runtime_error("not a JSON object");
  const double schema = read_number(doc, "schema");
  if (static_cast<int>(schema) != kCacheSchemaVersion) {
    throw std::runtime_error("cache schema version mismatch");
  }

  RunResult r;
  const JsonValue* summary = doc.find("summary");
  if (!summary || summary->kind != JsonValue::Kind::Object) {
    throw std::runtime_error("missing summary object");
  }
  r.summary.scheduler = read_string(*summary, "scheduler");
  r.summary.jobs = static_cast<std::size_t>(read_number(*summary, "jobs"));
  r.summary.avg_jct = read_number(*summary, "avg_jct");
  r.summary.avg_exec = read_number(*summary, "avg_exec");
  r.summary.avg_queue = read_number(*summary, "avg_queue");
  r.summary.p50_jct = read_number(*summary, "p50_jct");
  r.summary.p90_jct = read_number(*summary, "p90_jct");
  r.summary.max_jct = read_number(*summary, "max_jct");
  r.summary.makespan = read_number(*summary, "makespan");
  r.summary.utilization = read_number(*summary, "utilization");
  r.summary.cluster_joules = read_number(*summary, "cluster_joules");
  r.summary.overhead_joules = read_number(*summary, "overhead_joules");

  r.jcts = read_series(doc, "jcts");
  r.exec_times = read_series(doc, "exec_times");
  r.queue_times = read_series(doc, "queue_times");

  const JsonValue* pairs = doc.find("jct_by_job");
  if (!pairs || pairs->kind != JsonValue::Kind::Array) {
    throw std::runtime_error("missing jct_by_job array");
  }
  for (const auto& pair : pairs->array) {
    if (pair.kind != JsonValue::Kind::Array || pair.array.size() != 2 ||
        pair.array[0].kind != JsonValue::Kind::Number ||
        pair.array[1].kind != JsonValue::Kind::Number) {
      throw std::runtime_error("malformed jct_by_job entry");
    }
    r.jct_by_job[static_cast<JobId>(std::llround(pair.array[0].number))] =
        pair.array[1].number;
  }
  r.completed = static_cast<std::size_t>(read_number(doc, "completed"));
  r.events_fired = static_cast<std::uint64_t>(read_number(doc, "events_fired"));
  r.deployments = static_cast<std::uint64_t>(read_number(doc, "deployments"));
  return r;
}

}  // namespace ones::exp
