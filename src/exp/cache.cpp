#include "exp/cache.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/log.hpp"

namespace ones::exp {

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string dir, bool enabled)
    : dir_(std::move(dir)), enabled_(enabled) {}

std::string ResultCache::path_for(const RunSpec& spec) const {
  return (fs::path(dir_) / (cache_key(spec) + ".json")).string();
}

std::optional<RunResult> ResultCache::load(const RunSpec& spec) const {
  if (!enabled_) return std::nullopt;
  std::ifstream in(path_for(spec), std::ios::binary);
  if (!in) {
    misses_.fetch_add(1);
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    RunResult r = result_from_json(buf.str());
    r.from_cache = true;
    hits_.fetch_add(1);
    return r;
  } catch (const std::runtime_error& e) {
    ONES_LOG(Warn) << "discarding unreadable cache entry " << path_for(spec) << ": "
                   << e.what();
    demotions_.fetch_add(1);
    misses_.fetch_add(1);
    return std::nullopt;
  }
}

void ResultCache::store(const RunSpec& spec, const RunResult& result) const {
  if (!enabled_) return;
  const std::string final_path = path_for(spec);
  try {
    fs::create_directories(dir_);
    // Unique temp name per store (hash of key + a counter via the atomic) so
    // concurrent stores never clobber each other's partial writes; rename is
    // atomic within a filesystem, so readers only ever see complete files.
    const std::string tmp_path =
        final_path + ".tmp" + std::to_string(stores_.fetch_add(1)) + "." +
        std::to_string(static_cast<unsigned long>(::getpid()));
    {
      std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
      if (!out) throw std::runtime_error("cannot open " + tmp_path);
      out << result_to_json(result) << '\n';
      if (!out) throw std::runtime_error("short write to " + tmp_path);
    }
    fs::rename(tmp_path, final_path);
  } catch (const std::exception& e) {
    ONES_LOG(Warn) << "failed to store cache entry " << final_path << ": " << e.what();
  }
}

}  // namespace ones::exp
