#include "exp/orchestrator.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <typeinfo>
#include <unordered_map>

#include "common/expect.hpp"
#include "common/math_util.hpp"
#include "exp/progress.hpp"
#include "prof/export.hpp"
#include "sched/simulation.hpp"
#include "telemetry/exporters.hpp"
#include "workload/trace.hpp"

namespace ones::exp {

namespace {

std::string run_label(const RunSpec& spec) {
  std::string label = spec.scheduler;
  if (!spec.variant.empty()) label += "/" + spec.variant;
  label += " seed=" + std::to_string(spec.trace.seed);
  return label;
}

}  // namespace

RunResult run_simulation(const sched::SimulationConfig& config,
                         const std::vector<workload::JobSpec>& trace,
                         sched::Scheduler& scheduler) {
  sched::ClusterSimulation sim(config, trace, scheduler);
  sim.run();
  RunResult r;
  r.summary = sim.summary(scheduler.name());
  r.jcts = sim.metrics().jcts();
  r.exec_times = sim.metrics().exec_times();
  r.queue_times = sim.metrics().queue_times();
  for (const auto& [id, jct] : sim.metrics().jct_by_job()) r.jct_by_job[id] = jct;
  r.completed = sim.completed_jobs();
  r.events_fired = sim.events_fired();
  r.deployments = sim.deployments();
  return r;
}

RunResult execute_run(const RunSpec& spec, trace::TraceSink* trace_sink,
                      telemetry::MetricsRegistry* metrics, prof::Profiler* profiler) {
  ONES_EXPECT_MSG(static_cast<bool>(spec.factory), "RunSpec has no scheduler factory");
  const auto trace = workload::generate_trace(spec.trace);
  const auto scheduler = spec.factory();
  ONES_EXPECT_MSG(scheduler != nullptr, "scheduler factory returned null");
  sched::SimulationConfig config = spec.sim;
  config.trace_sink = trace_sink;
  config.metrics = metrics;
  config.profiler = profiler;
  return run_simulation(config, trace, *scheduler);
}

std::vector<RunResult> run_grid(const std::vector<RunSpec>& specs,
                                const GridOptions& options) {
  ONES_EXPECT_MSG(!specs.empty(), "run_grid requires a non-empty grid");
  ONES_EXPECT_MSG(options.threads >= 1, "run_grid requires threads >= 1");
  // Best-effort variant-aliasing guard: two specs that hash to the same
  // cache key must build the same kind of scheduler, otherwise one config's
  // cached results would silently be served for the other. Comparing the
  // factories' target types catches the common bug (distinct factory functor
  // types, e.g. different lambdas, with no RunSpec::variant); identical
  // lambda types with different captured configs remain the caller's duty
  // (DESIGN.md §6).
  std::unordered_map<std::string, const std::type_info*> key_factory_type;
  for (const auto& spec : specs) {
    ONES_EXPECT_MSG(static_cast<bool>(spec.factory),
                    "every RunSpec needs a scheduler factory");
    ONES_EXPECT_MSG(!spec.scheduler.empty(), "every RunSpec needs a scheduler name");
    const std::type_info& type = spec.factory.target_type();
    const auto [it, inserted] = key_factory_type.emplace(cache_key(spec), &type);
    ONES_EXPECT_MSG(inserted || *it->second == type,
                    "two RunSpecs alias cache key '" + it->first +
                        "' with different scheduler factories — set "
                        "RunSpec::variant to distinguish their configurations");
  }

  const ResultCache cache(options.cache_dir, options.use_cache);
  ProgressReporter progress(specs.size(), options.progress);
  std::vector<RunResult> results(specs.size());

  // Host-time profiling (DESIGN.md §14) is on when either sink is attached;
  // like tracing/metrics it never reaches the cache key or the results.
  const bool profiling = !options.prof_dir.empty() || options.prof != nullptr;
  // Orchestrator-level spans (cache probes) collect on this serial-phase
  // profiler; per-run spans collect on per-worker profilers below.
  std::optional<prof::Profiler> grid_prof;
  if (profiling) grid_prof.emplace();

  // Resolve cache hits up front (cheap I/O, serial) and queue the misses.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    std::optional<RunResult> hit;
    {
      const prof::Scope span(grid_prof ? &*grid_prof : nullptr, "cache.read");
      hit = cache.load(specs[i]);
    }
    if (hit) {
      results[i] = std::move(*hit);
      progress.on_cached(run_label(specs[i]));
    } else {
      pending.push_back(i);
    }
  }

  if (!pending.empty()) {
    // Work-stealing by atomic cursor: threads race only for WHICH pending
    // spec to run next; each result lands in its spec-order slot, so the
    // returned vector is independent of scheduling order.
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> abort{false};
    std::exception_ptr first_error;
    std::mutex error_mu;
    std::mutex prof_mu;  // guards the shared ProfileRollup merge

    auto worker = [&]() {
      while (!abort.load(std::memory_order_relaxed)) {
        const std::size_t slot = cursor.fetch_add(1, std::memory_order_relaxed);
        if (slot >= pending.size()) return;
        const std::size_t i = pending[slot];
        try {
          // ones-lint: wall-clock-ok(per-run wall time feeds the stderr progress/ETA line only, never a result)
          const auto t0 = std::chrono::steady_clock::now();
          std::optional<trace::RunTraceWriter> writer;
          if (!options.trace_dir.empty()) {
            writer.emplace(options.trace_dir, cache_key(specs[i]));
          }
          // One profiler per executed run: spans aggregate by path, never by
          // thread, so the merged rollup is independent of the thread count.
          std::optional<prof::Profiler> profiler;
          if (profiling) {
            profiler.emplace();
            if (writer) profiler->enable_timeline();  // feeds the Chrome merge
          }
          prof::Profiler* prof_ptr = profiler ? &*profiler : nullptr;
          if (options.metrics_dir.empty()) {
            results[i] = execute_run(specs[i], writer ? &*writer : nullptr, nullptr,
                                     prof_ptr);
          } else {
            telemetry::MetricsRegistry registry;
            results[i] =
                execute_run(specs[i], writer ? &*writer : nullptr, &registry, prof_ptr);
            const prof::Scope span(prof_ptr, "export.metrics");
            telemetry::write_metrics_files(registry, options.metrics_dir,
                                           cache_key(specs[i]));
          }
          if (writer) {
            if (profiler) {
              // Merge the host-span track into the Chrome trace only — the
              // deterministic JSONL stream (the golden-digest format) never
              // sees profiler output. The export.trace span itself lands in
              // the .prof.json rollup, not in the already-snapshot timeline.
              const prof::Scope span(&*profiler, "export.trace");
              for (const std::string& ev : prof::chrome_span_events(*profiler)) {
                writer->chrome_raw_event(ev);
              }
            }
            writer->close();
          }
          const double wall_s =
              // ones-lint: wall-clock-ok(cosmetic: progress/ETA reporting on stderr)
              std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                  .count();
          {
            const prof::Scope span(prof_ptr, "cache.write");
            cache.store(specs[i], results[i]);
          }
          if (profiler) {
            if (!options.prof_dir.empty()) {
              prof::write_profile_file(options.prof_dir, cache_key(specs[i]),
                                       profiler->stats());
            }
            if (options.prof != nullptr) {
              const std::lock_guard<std::mutex> lock(prof_mu);
              options.prof->add(*profiler);
            }
          }
          progress.on_done(run_label(specs[i]), wall_s);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
          abort.store(true, std::memory_order_relaxed);
          return;
        }
      }
    };

    const std::size_t n_workers =
        std::min(static_cast<std::size_t>(options.threads), pending.size());
    if (n_workers <= 1) {
      worker();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(n_workers);
      for (std::size_t w = 0; w < n_workers; ++w) threads.emplace_back(worker);
      for (auto& t : threads) t.join();
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  if (options.prof != nullptr && grid_prof) options.prof->add(*grid_prof);

  if (options.registry != nullptr) {
    auto& reg = *options.registry;
    reg.counter("exp_cache_hits_total").add(static_cast<double>(cache.hits()));
    reg.counter("exp_cache_misses_total").add(static_cast<double>(cache.misses()));
    reg.counter("exp_cache_demotions_total").add(static_cast<double>(cache.demotions()));
    reg.counter("exp_cache_stores_total").add(static_cast<double>(cache.stores()));
    reg.counter("exp_runs_executed_total").add(static_cast<double>(pending.size()));
  }

  progress.finish(static_cast<std::size_t>(cache.hits()));
  return results;
}

RunResult pool_runs(const std::vector<RunResult>& runs) {
  ONES_EXPECT_MSG(!runs.empty(), "pool_runs requires at least one run");
  if (runs.size() == 1) return runs.front();

  RunResult pooled;
  pooled.summary.scheduler = runs.front().summary.scheduler;
  double makespan_sum = 0.0;
  double util_sum = 0.0;
  double joules_sum = 0.0;
  double overhead_sum = 0.0;
  for (const auto& r : runs) {
    pooled.jcts.insert(pooled.jcts.end(), r.jcts.begin(), r.jcts.end());
    pooled.exec_times.insert(pooled.exec_times.end(), r.exec_times.begin(),
                             r.exec_times.end());
    pooled.queue_times.insert(pooled.queue_times.end(), r.queue_times.begin(),
                              r.queue_times.end());
    pooled.completed += r.completed;
    makespan_sum += r.summary.makespan;
    util_sum += r.summary.utilization;
    joules_sum += r.summary.cluster_joules;
    overhead_sum += r.summary.overhead_joules;
    pooled.from_cache = pooled.from_cache || r.from_cache;
  }
  pooled.summary.jobs = pooled.jcts.size();
  if (!pooled.jcts.empty()) {
    pooled.summary.avg_jct = mean_of(pooled.jcts);
    pooled.summary.avg_exec = mean_of(pooled.exec_times);
    pooled.summary.avg_queue = mean_of(pooled.queue_times);
    pooled.summary.p50_jct = quantile(pooled.jcts, 0.5);
    pooled.summary.p90_jct = quantile(pooled.jcts, 0.9);
    pooled.summary.max_jct = quantile(pooled.jcts, 1.0);
  }
  pooled.summary.makespan = makespan_sum / static_cast<double>(runs.size());
  pooled.summary.utilization = util_sum / static_cast<double>(runs.size());
  pooled.summary.cluster_joules = joules_sum / static_cast<double>(runs.size());
  pooled.summary.overhead_joules = overhead_sum / static_cast<double>(runs.size());
  return pooled;
}

}  // namespace ones::exp
