// The metrics collected from one experiment run, and their JSON round-trip
// for the on-disk result cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "telemetry/metrics.hpp"

namespace ones::exp {

struct RunResult {
  telemetry::Summary summary;
  std::vector<double> jcts;
  std::vector<double> exec_times;
  std::vector<double> queue_times;
  /// Per-job JCT, ordered by JobId (for paired significance tests).
  std::map<JobId, double> jct_by_job;
  std::size_t completed = 0;
  /// Simulator events fired during the run — deterministic (part of the
  /// result, serialized), so a cached replay reports the same count the
  /// live run produced. Feeds the hyperscale events/sec curve.
  std::uint64_t events_fired = 0;
  /// Assignments the scheduler deployed (schedule churn / decisions).
  std::uint64_t deployments = 0;
  /// True when the result was served from the cache (diagnostics only;
  /// not serialized).
  bool from_cache = false;
};

/// Serialize with stable key order and exact (%.17g) doubles, so a cached
/// result formats byte-identically to the live run that produced it.
std::string result_to_json(const RunResult& result);

/// Parse a cache payload. Throws std::runtime_error on malformed input or a
/// schema-version mismatch (callers treat that as a cache miss).
RunResult result_from_json(const std::string& json);

}  // namespace ones::exp
