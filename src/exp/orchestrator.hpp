// Parallel experiment orchestration.
//
// `run_grid` fans a declarative grid of RunSpecs out over a pool of
// std::thread workers and returns one RunResult per spec, IN SPEC ORDER.
//
// Determinism argument (see DESIGN.md §7): each run constructs a fresh
// scheduler from its factory, generates its own trace from the spec's seed,
// and owns its ClusterSimulation — all randomness flows from per-run
// `ones::Rng` seeds, and the simulator has no mutable global state. Threads
// only race for *which* run to execute next; results land in a pre-sized
// vector slot indexed by spec position, so aggregation order — and therefore
// every downstream number — is independent of the thread count and of
// completion order. `run_grid(specs, threads=N)` is bit-identical to
// `threads=1` for every N.
#pragma once

#include <string>
#include <vector>

#include "exp/cache.hpp"
#include "exp/result.hpp"
#include "exp/run_spec.hpp"
#include "prof/profiler.hpp"
#include "telemetry/registry.hpp"
#include "trace/sink.hpp"

namespace ones::exp {

struct GridOptions {
  /// Worker threads; must be >= 1. More threads than (uncached) specs is
  /// fine — the extras exit immediately.
  int threads = 1;
  bool use_cache = true;
  std::string cache_dir = ".ones-cache";
  /// Progress / ETA lines on stderr.
  bool progress = true;
  /// When non-empty, every EXECUTED run writes a structured trace pair
  /// (`<cache_key>.jsonl` + `<cache_key>.trace.json`) into this directory.
  /// Cache-served runs are not re-simulated, so they emit nothing. Tracing
  /// never affects results, and is therefore not part of the cache key.
  std::string trace_dir;
  /// When non-empty, every EXECUTED run owns a MetricsRegistry and exports
  /// `<cache_key>.timeline.csv` + `.prom` + `.metrics.json` into this
  /// directory (DESIGN.md §9). Exactly the tracing contract: cache-served
  /// runs emit nothing, metrics never affect results, and the directory is
  /// not part of the cache key.
  std::string metrics_dir;
  /// Optional bench-level registry (not owned). After the grid completes,
  /// run_grid records the orchestrator cache statistics into it:
  /// `exp_cache_{hits,misses,demotions,stores}_total` and
  /// `exp_runs_executed_total`.
  telemetry::MetricsRegistry* registry = nullptr;
  /// When non-empty, every EXECUTED run owns a host-time prof::Profiler and
  /// exports `<cache_key>.prof.json` into this directory (DESIGN.md §14).
  /// Same contract as trace_dir/metrics_dir: cache-served runs emit nothing,
  /// profiling never affects results, and the directory is NOT a cache-key
  /// input. When trace_dir is also set, each run's span timeline is merged
  /// into its `.trace.json` as a separate wall-clock process track (the
  /// deterministic `.jsonl` stream is untouched).
  std::string prof_dir;
  /// Optional grid-level rollup (not owned). When non-null, profiling is on
  /// even without prof_dir and every run's spans (plus the orchestrator's
  /// own `cache.read`/`cache.write` spans) are aggregated into it by span
  /// path — a deterministic merge independent of thread count.
  prof::ProfileRollup* prof = nullptr;
};

/// Execute one simulation: build the scheduler from the spec's factory,
/// generate the trace, run, and collect metrics. (Also the body of each
/// orchestrator worker; exposed for benches that run a single config.)
/// `trace_sink`, when non-null, receives the run's structured trace;
/// `metrics`, when non-null, receives the run's instrument emissions;
/// `profiler`, when non-null, collects the run's host-time spans. None of
/// the three may change results (asserted in tests/exp_test.cpp).
RunResult execute_run(const RunSpec& spec, trace::TraceSink* trace_sink = nullptr,
                      telemetry::MetricsRegistry* metrics = nullptr,
                      prof::Profiler* profiler = nullptr);

/// Collect metrics from an already-constructed simulation setup (the legacy
/// single-run path used by light benches and examples).
RunResult run_simulation(const sched::SimulationConfig& config,
                         const std::vector<workload::JobSpec>& trace,
                         sched::Scheduler& scheduler);

/// Fan the grid out over `options.threads` workers. Preconditions
/// (ONES_EXPECT): non-empty grid, threads >= 1, every spec has a factory and
/// a scheduler name, and no two specs may map to the same cache key with
/// different scheduler-factory types — that is the variant-aliasing bug
/// DESIGN.md §6 warns about (a non-default scheduler config not reflected in
/// RunSpec::variant), and it would silently serve one config's results for
/// the other. The first exception thrown by a worker aborts the remaining
/// queue and is rethrown on the calling thread.
std::vector<RunResult> run_grid(const std::vector<RunSpec>& specs,
                                const GridOptions& options = {});

/// Pool per-seed replicas of the same configuration into one RunResult:
/// distribution vectors are concatenated (grid order preserved), averages
/// and quantiles are recomputed over the pooled sample, and makespan /
/// utilization are averaged across seeds. `jct_by_job` is only kept for a
/// single run — job ids collide across seeds, so multi-seed paired tests
/// must pair per seed before pooling. Requires non-empty input.
RunResult pool_runs(const std::vector<RunResult>& runs);

}  // namespace ones::exp
