// Progress / ETA reporting for grid runs.
//
// Writes to stderr only: stdout is reserved for metric output, which must be
// byte-identical across thread counts and cache states. Wall-clock time is
// used here purely for cosmetics (elapsed / ETA); it never influences any
// simulation result, so the repo's determinism invariant is preserved.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

namespace ones::exp {

class ProgressReporter {
 public:
  /// `total` runs in the grid; `enabled` = false silences all output.
  ProgressReporter(std::size_t total, bool enabled);

  /// A run was served from the cache.
  void on_cached(const std::string& label);
  /// A run was executed live, taking `wall_s` seconds.
  void on_done(const std::string& label, double wall_s);
  /// Print the closing line (cache hit counts, total wall time).
  void finish(std::size_t cache_hits);

 private:
  void report_locked(const std::string& label, const char* how, double wall_s);

  std::size_t total_;
  bool enabled_;
  std::size_t completed_ = 0;  ///< guarded by mu_
  std::size_t executed_ = 0;   ///< live (non-cached) runs, guarded by mu_
  double exec_wall_s_ = 0.0;   ///< sum of live run durations, guarded by mu_
  std::chrono::steady_clock::time_point start_;
  std::mutex mu_;
};

}  // namespace ones::exp
