#include "exp/run_spec.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace ones::exp {

namespace {

void put(std::ostringstream& os, const char* key, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << key << '=' << buf << '\n';
}

void put(std::ostringstream& os, const char* key, int v) { os << key << '=' << v << '\n'; }

void put(std::ostringstream& os, const char* key, std::uint64_t v) {
  os << key << '=' << v << '\n';
}

void put(std::ostringstream& os, const char* key, bool v) {
  os << key << '=' << (v ? 1 : 0) << '\n';
}

void put(std::ostringstream& os, const char* key, const std::string& v) {
  os << key << '=' << v << '\n';
}

}  // namespace

std::uint64_t fnv1a64(const std::string& data) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : data) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string canonical_serialize(const RunSpec& spec) {
  std::ostringstream os;
  put(os, "schema", kCacheSchemaVersion);
  put(os, "scheduler", spec.scheduler);
  put(os, "variant", spec.variant);

  const auto& t = spec.sim.topology;
  put(os, "topology.num_nodes", t.num_nodes);
  put(os, "topology.gpus_per_node", t.gpus_per_node);
  put(os, "topology.intra_node_bw_Bps", t.intra_node_bw_Bps);
  put(os, "topology.inter_node_bw_Bps", t.inter_node_bw_Bps);
  put(os, "topology.intra_node_latency_s", t.intra_node_latency_s);
  put(os, "topology.inter_node_latency_s", t.inter_node_latency_s);

  const auto& c = spec.sim.convergence;
  put(os, "convergence.patience_epochs", c.patience_epochs);
  put(os, "convergence.spike_per_extra_doubling", c.spike_per_extra_doubling);
  put(os, "convergence.disturbance_decay", c.disturbance_decay);
  put(os, "convergence.progress_slowdown", c.progress_slowdown);
  put(os, "convergence.disturbance_accuracy_drop", c.disturbance_accuracy_drop);
  put(os, "convergence.accuracy_noise", c.accuracy_noise);
  put(os, "convergence.lr_linear_scaling", c.lr_linear_scaling);

  const auto& k = spec.sim.costs;
  put(os, "costs.pause_step_s", k.pause_step_s);
  put(os, "costs.resize_modules_s", k.resize_modules_s);
  put(os, "costs.resize_per_byte_s", k.resize_per_byte_s);
  put(os, "costs.reconnect_base_s", k.reconnect_base_s);
  put(os, "costs.reconnect_per_worker_s", k.reconnect_per_worker_s);
  put(os, "costs.hdfs_bw_Bps", k.hdfs_bw_Bps);
  put(os, "costs.scheduler_delay_s", k.scheduler_delay_s);
  put(os, "costs.framework_init_s", k.framework_init_s);
  put(os, "costs.data_pipeline_warmup_s", k.data_pipeline_warmup_s);
  put(os, "costs.model_load_s", k.model_load_s);

  const auto& o = spec.sim.oracle;
  put(os, "oracle.noise_sigma", o.noise_sigma);
  put(os, "oracle.noise_seed", o.noise_seed);

  // Electrical constants feed the joules in the result, so — unlike the
  // trace/metrics sinks — they are cache-key inputs (DESIGN.md §10).
  const auto& p = spec.sim.power;
  put(os, "power.gpu_idle_w", p.gpu_idle_w);
  put(os, "power.gpu_busy_w", p.gpu_busy_w);
  put(os, "power.node_base_w", p.node_base_w);
  put(os, "power.comm_power_fraction", p.comm_power_fraction);

  // Fault injection moves every metric, so the whole config is key material
  // (DESIGN.md §13). Schema v4.
  const auto& f = spec.sim.fault;
  put(os, "fault.seed", f.seed);
  put(os, "fault.gpu_mtbf_s", f.gpu_mtbf_s);
  put(os, "fault.gpu_repair_s", f.gpu_repair_s);
  put(os, "fault.node_mtbf_s", f.node_mtbf_s);
  put(os, "fault.node_repair_s", f.node_repair_s);
  put(os, "fault.spot_fraction", f.spot_fraction);
  put(os, "fault.reclaim_mtbf_s", f.reclaim_mtbf_s);
  put(os, "fault.reclaim_return_s", f.reclaim_return_s);
  put(os, "fault.checkpoint_interval_s", f.checkpoint_interval_s);
  put(os, "fault.retry_backoff_s", f.retry_backoff_s);
  put(os, "fault.max_restarts", f.max_restarts);

  put(os, "sim.max_sim_time_s", spec.sim.max_sim_time_s);
  put(os, "sim.record_epoch_logs", spec.sim.record_epoch_logs);

  const auto& w = spec.trace;
  put(os, "trace.num_jobs", w.num_jobs);
  put(os, "trace.mean_interarrival_s", w.mean_interarrival_s);
  put(os, "trace.seed", w.seed);
  put(os, "trace.poisson_arrivals", w.poisson_arrivals);
  put(os, "trace.abnormal_fraction", w.abnormal_fraction);
  put(os, "trace.abnormal_mean_lifetime_s", w.abnormal_mean_lifetime_s);
  put(os, "trace.max_requested_gpus", w.max_requested_gpus);
  put(os, "trace.diurnal_amplitude", w.diurnal_amplitude);
  return os.str();
}

std::string cache_key(const RunSpec& spec) {
  std::string prefix = spec.scheduler;
  if (!spec.variant.empty()) prefix += "-" + spec.variant;
  for (char& ch : prefix) {
    const unsigned char u = static_cast<unsigned char>(ch);
    ch = std::isalnum(u) ? static_cast<char>(std::tolower(u)) : '_';
  }
  if (prefix.empty()) prefix = "run";
  char hex[24];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fnv1a64(canonical_serialize(spec))));
  return prefix + "-" + hex;
}

}  // namespace ones::exp
