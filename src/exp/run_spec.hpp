// Declarative description of one experiment run.
//
// A RunSpec is the unit the orchestrator fans out: a scheduler (by factory,
// so every run gets a FRESH instance and parallel runs share no mutable
// state), a simulation configuration, and a trace configuration. The
// declarative part — everything except the factory — has a canonical text
// serialization whose FNV-1a hash keys the on-disk result cache, so two
// specs collide iff they describe the same simulation.
//
// The factory is deliberately excluded from the key: it is opaque code. Any
// scheduler knob that is NOT captured by `sim`/`trace` (e.g. an ablation's
// OnesConfig tweaks) MUST be reflected in `variant` or the cache will serve
// stale results across configurations.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sched/scheduler.hpp"
#include "sched/simulation.hpp"
#include "workload/trace.hpp"

namespace ones::exp {

/// Builds a fresh scheduler for one run. Must be safe to invoke from any
/// worker thread (factories that share setup state — e.g. a lazily-trained
/// DRL prototype — must synchronize internally, e.g. via std::call_once).
using SchedulerFactory = std::function<std::unique_ptr<sched::Scheduler>()>;

/// Bump when the canonical serialization or the RunResult JSON layout
/// changes; old cache entries then miss instead of deserializing garbage.
/// v4: fault-injection config (SimulationConfig::fault) joined the key.
inline constexpr int kCacheSchemaVersion = 4;

struct RunSpec {
  /// Scheduler display name; part of the cache key.
  std::string scheduler;
  /// Extra key material for configuration not captured by sim/trace
  /// (ablation flags, non-default scheduler configs). Empty = defaults.
  std::string variant;
  sched::SimulationConfig sim;
  workload::TraceConfig trace;
  SchedulerFactory factory;
};

/// FNV-1a 64-bit hash (offset basis 14695981039346656037, prime 1099511628211).
std::uint64_t fnv1a64(const std::string& data);

/// Stable key=value rendering of every result-affecting field of the spec
/// (plus the schema version). Doubles use %.17g so distinct values never
/// alias.
std::string canonical_serialize(const RunSpec& spec);

/// Cache key: sanitized scheduler/variant prefix (human-debuggable) plus the
/// 16-hex-digit FNV-1a hash of the canonical serialization.
std::string cache_key(const RunSpec& spec);

}  // namespace ones::exp
