// Deterministic discrete-event simulation engine.
//
// The engine is a calendar queue (bucketed timer wheel, DESIGN.md §12):
// events live in a slab arena and are indexed by time buckets, giving O(1)
// amortized schedule / pop / cancel against the O(log n) of a binary heap —
// the difference between minutes and hours on 10k-GPU, ~1M-job traces.
// Events scheduled for the same instant fire in scheduling order (FIFO
// tie-break on a sequence counter), which makes runs bit-reproducible. All
// simulated components — job arrivals, epoch completions, scaling protocol
// steps, periodic reschedulers — are expressed as events.
//
// EventIds are generation-tagged arena handles: cancelling an event that
// already fired (or firing right now) is a deterministic no-op returning
// false, even after its arena slot has been reused by a newer event.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/expect.hpp"
#include "prof/profiler.hpp"

namespace ones::sim {

/// Simulated time in seconds since the start of the run.
using SimTime = double;

/// Handle for a scheduled event; usable to cancel it before it fires.
/// Packs (generation << 32 | arena index); never 0 for a live event, so 0
/// works as a "no event" sentinel. Stale handles (fired / cancelled events,
/// even ones whose slot was since reused) fail generation validation and
/// cancel() returns false.
using EventId = std::uint64_t;

class SimEngine {
 public:
  SimEngine() : buckets_(kMinBuckets) {}
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  /// Current simulated time. Starts at 0.
  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when` (>= now). Returns a handle.
  EventId schedule_at(SimTime when, std::function<void()> fn);

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_after(SimTime delay, std::function<void()> fn);

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled (both are benign — cancellation is idempotent).
  bool cancel(EventId id);

  /// Fire the next pending event, advancing the clock. Returns false when the
  /// queue is empty.
  bool step();

  /// Run until the queue drains or the clock passes `limit`.
  /// Events scheduled exactly at `limit` still fire.
  void run_until(SimTime limit);

  /// Run until the queue drains.
  void run();

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return live_; }

  /// Total number of events fired so far.
  std::uint64_t fired() const { return fired_; }

  /// Invoked after the clock advances for every fired event, before its
  /// callback runs. `seq` is the fire-order counter (`fired()`), which is
  /// strictly increasing — unlike the scheduling sequence, which can fire
  /// out of order. Tracing hook: the trace recorder stamps emitted records
  /// with it so a replay can cross-check emission order against event order.
  /// Kept as a plain std::function so `sim` stays below `trace` in the
  /// module layering; an empty hook costs one branch.
  void set_fire_hook(std::function<void(SimTime now, std::uint64_t seq)> hook) {
    fire_hook_ = std::move(hook);
  }

  /// Install (or clear, with nullptr) the host-time profiler (DESIGN.md
  /// §14): schedule / cancel / pop then run under `engine.schedule` /
  /// `engine.cancel` / `engine.pop` spans. Same contract as the fire hook:
  /// not owned, null by default, one branch per site when off, and
  /// attaching it never changes event order or results.
  void set_profiler(prof::Profiler* profiler) { profiler_ = profiler; }

 private:
  /// Arena entry. `gen` survives the slot's whole lifetime: it is bumped on
  /// every free (fire or cancel), so a handle minted at generation g stops
  /// validating the moment the slot is released, and keeps failing after the
  /// slot is reused at generation g+1. Starts at 1 so no live handle is 0.
  struct Event {
    SimTime when = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t gen = 1;
    std::function<void()> fn;
  };

  /// Arena indices, sorted descending by (when, seq) so back() is the bucket
  /// minimum and the hot-path removal is pop_back().
  using Bucket = std::vector<std::uint32_t>;

  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 21;

  /// Absolute (non-wrapped) slot number of a timestamp. Monotone in `when`
  /// (clamped at the top end, which preserves monotonicity), so the cursor
  /// walk visits slots in time order.
  std::uint64_t slot_of(SimTime when) const;

  /// Locate the global minimum (when, seq) entry: cursor ring walk with
  /// exact-slot year check, falling back to a scan of all bucket minima when
  /// a whole ring lap is empty (far-future jumps). Leaves cursor_slot_ at
  /// the returned entry's slot. Requires live_ > 0.
  struct MinRef {
    std::uint32_t idx;
    std::size_t bucket;
  };
  MinRef find_min();

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t idx);
  void insert_into_bucket(std::uint32_t idx);
  void remove_from_bucket(std::uint32_t idx);
  /// Rebuild the calendar when the live count has outgrown (or far
  /// undershot) the bucket ring: re-derive bucket count and width from the
  /// live population and redistribute. Deterministic — depends only on the
  /// live set, never on iteration order of anything unordered.
  void maybe_resize();
  void rebuild(std::size_t nbuckets);

  SimTime now_ = 0.0;
  std::function<void(SimTime, std::uint64_t)> fire_hook_;
  prof::Profiler* profiler_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;

  std::vector<Event> arena_;
  std::vector<std::uint32_t> free_;
  std::vector<Bucket> buckets_;
  double width_ = 1.0;
  std::uint64_t cursor_slot_ = 0;
  std::size_t live_ = 0;
};

}  // namespace ones::sim
