// Deterministic discrete-event simulation engine.
//
// The engine owns a priority queue of timestamped callbacks. Events scheduled
// for the same instant fire in scheduling order (FIFO tie-break on a sequence
// counter), which makes runs bit-reproducible. All simulated components —
// job arrivals, epoch completions, scaling protocol steps, periodic
// reschedulers — are expressed as events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/expect.hpp"

namespace ones::sim {

/// Simulated time in seconds since the start of the run.
using SimTime = double;

/// Handle for a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;

class SimEngine {
 public:
  SimEngine() = default;
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  /// Current simulated time. Starts at 0.
  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when` (>= now). Returns a handle.
  EventId schedule_at(SimTime when, std::function<void()> fn);

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_after(SimTime delay, std::function<void()> fn);

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled (both are benign — cancellation is idempotent).
  bool cancel(EventId id);

  /// Fire the next pending event, advancing the clock. Returns false when the
  /// queue is empty.
  bool step();

  /// Run until the queue drains or the clock passes `limit`.
  /// Events scheduled exactly at `limit` still fire.
  void run_until(SimTime limit);

  /// Run until the queue drains.
  void run();

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

  /// Total number of events fired so far.
  std::uint64_t fired() const { return fired_; }

  /// Invoked after the clock advances for every fired event, before its
  /// callback runs. `seq` is the fire-order counter (`fired()`), which is
  /// strictly increasing — unlike the scheduling sequence, which the heap can
  /// fire out of order. Tracing hook: the trace recorder stamps emitted
  /// records with it so a replay can cross-check emission order against
  /// event order. Kept as a plain std::function so `sim` stays below `trace`
  /// in the module layering; an empty hook costs one branch.
  void set_fire_hook(std::function<void(SimTime now, std::uint64_t seq)> hook) {
    fire_hook_ = std::move(hook);
  }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    EventId id;
    // min-heap on (when, seq)
    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  SimTime now_ = 0.0;
  std::function<void(SimTime, std::uint64_t)> fire_hook_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  // ones-lint: unordered-ok(tombstone membership test + erase by EventId only; fire order comes from the heap, never from hash order)
  std::unordered_set<EventId> cancelled_;
  // Callbacks are kept out of the heap entries so cancellation can free them.
  // ones-lint: unordered-ok(keyed lookup/erase by EventId only, never iterated)
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

}  // namespace ones::sim
