#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <utility>

namespace ones::sim {

namespace {

/// Descending (when, seq) order for bucket vectors: back() is the minimum.
/// seq is unique, so there are never equal keys.
struct EntryKey {
  SimTime when;
  std::uint64_t seq;
};

bool key_greater(const EntryKey& a, const EntryKey& b) {
  if (a.when != b.when) return a.when > b.when;
  return a.seq > b.seq;
}

}  // namespace

std::uint64_t SimEngine::slot_of(SimTime when) const {
  // width_ is floored at rebuild so when / width_ stays well inside the
  // exactly-representable integer range; the clamp covers inserts that
  // arrive after a rebuild with a much smaller max timestamp. Clamping keeps
  // the map monotone, which is all the cursor walk needs.
  const double q = when / width_;
  constexpr double kMaxSlot = 9.0e18;  // < 2^63, comfortably inside uint64
  return static_cast<std::uint64_t>(q < kMaxSlot ? q : kMaxSlot);
}

std::uint32_t SimEngine::alloc_slot() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  ONES_EXPECT_MSG(arena_.size() < std::numeric_limits<std::uint32_t>::max(),
                  "event arena exhausted");
  arena_.emplace_back();
  return static_cast<std::uint32_t>(arena_.size() - 1);
}

void SimEngine::free_slot(std::uint32_t idx) {
  Event& ev = arena_[idx];
  ev.fn = nullptr;
  // Invalidate every outstanding handle to this slot. (A slot would need
  // 2^32 reuses for the generation to wrap and a stale handle to validate
  // again; no simulated workload gets anywhere near that on one slot.)
  ++ev.gen;
  free_.push_back(idx);
  --live_;
}

void SimEngine::insert_into_bucket(std::uint32_t idx) {
  const Event& ev = arena_[idx];
  const std::uint64_t slot = slot_of(ev.when);
  Bucket& b = buckets_[slot % buckets_.size()];
  const EntryKey key{ev.when, ev.seq};
  const auto pos = std::lower_bound(
      b.begin(), b.end(), key, [this](std::uint32_t lhs, const EntryKey& k) {
        const Event& e = arena_[lhs];
        return key_greater(EntryKey{e.when, e.seq}, k);
      });
  b.insert(pos, idx);
  if (slot < cursor_slot_) cursor_slot_ = slot;
}

void SimEngine::remove_from_bucket(std::uint32_t idx) {
  const Event& ev = arena_[idx];
  Bucket& b = buckets_[slot_of(ev.when) % buckets_.size()];
  const EntryKey key{ev.when, ev.seq};
  const auto pos = std::lower_bound(
      b.begin(), b.end(), key, [this](std::uint32_t lhs, const EntryKey& k) {
        const Event& e = arena_[lhs];
        return key_greater(EntryKey{e.when, e.seq}, k);
      });
  ONES_EXPECT_MSG(pos != b.end() && *pos == idx, "calendar bucket lost an entry");
  b.erase(pos);
}

void SimEngine::maybe_resize() {
  const std::size_t nb = buckets_.size();
  if (live_ > 2 * nb && nb < kMaxBuckets) {
    rebuild(std::min(kMaxBuckets, std::bit_ceil(live_)));
  } else if (nb > kMinBuckets && live_ < nb / 8) {
    rebuild(std::max(kMinBuckets, std::bit_ceil(live_ | 1)));
  }
}

void SimEngine::rebuild(std::size_t nbuckets) {
  // Collect the live set from the old ring (buckets hold exactly the live
  // entries), re-derive the slot width from its population and span, then
  // redistribute. Purely a function of the live set — deterministic.
  std::vector<std::uint32_t> entries;
  entries.reserve(live_);
  for (Bucket& b : buckets_) {
    entries.insert(entries.end(), b.begin(), b.end());
    b.clear();
  }
  buckets_.resize(nbuckets);

  if (entries.empty()) {
    width_ = 1.0;
    cursor_slot_ = slot_of(now_);
    return;
  }

  SimTime min_when = arena_[entries.front()].when;
  SimTime max_when = min_when;
  for (const std::uint32_t idx : entries) {
    min_when = std::min(min_when, arena_[idx].when);
    max_when = std::max(max_when, arena_[idx].when);
  }
  const double span = max_when - min_when;
  double width = span > 0.0 ? span / static_cast<double>(entries.size()) : 1.0;
  // Floor: keep when / width_ inside the exact-integer double range even for
  // the largest live timestamp (2^-50 leaves slack for later, larger
  // inserts), and away from subnormal silliness.
  width = std::max({width, max_when * 0x1p-50, 1e-12});
  width_ = width;

  std::sort(entries.begin(), entries.end(), [this](std::uint32_t a, std::uint32_t b) {
    const Event& ea = arena_[a];
    const Event& eb = arena_[b];
    return key_greater(EntryKey{ea.when, ea.seq}, EntryKey{eb.when, eb.seq});
  });
  for (const std::uint32_t idx : entries) {
    buckets_[slot_of(arena_[idx].when) % nbuckets].push_back(idx);
  }
  cursor_slot_ = slot_of(min_when);
}

SimEngine::MinRef SimEngine::find_min() {
  ONES_EXPECT(live_ > 0);
  const std::size_t nb = buckets_.size();
  // Ring walk from the cursor. The year check is exact slot equality: a
  // bucket's minimum with a *later* slot proves the bucket holds nothing for
  // the current slot, so one back() probe per bucket suffices.
  for (std::size_t scanned = 0; scanned < nb; ++scanned, ++cursor_slot_) {
    const Bucket& b = buckets_[cursor_slot_ % nb];
    if (b.empty()) continue;
    const std::uint32_t idx = b.back();
    if (slot_of(arena_[idx].when) == cursor_slot_) {
      return {idx, cursor_slot_ % nb};
    }
  }
  // A whole lap with nothing due: the next event is at least a ring year
  // away (far-future outlier). Jump straight to the global minimum over all
  // bucket minima.
  std::uint32_t best = 0;
  std::size_t best_bucket = 0;
  bool found = false;
  for (std::size_t bi = 0; bi < nb; ++bi) {
    const Bucket& b = buckets_[bi];
    if (b.empty()) continue;
    const std::uint32_t idx = b.back();
    if (!found || key_greater(EntryKey{arena_[best].when, arena_[best].seq},
                              EntryKey{arena_[idx].when, arena_[idx].seq})) {
      best = idx;
      best_bucket = bi;
      found = true;
    }
  }
  ONES_EXPECT(found);
  cursor_slot_ = slot_of(arena_[best].when);
  return {best, best_bucket};
}

EventId SimEngine::schedule_at(SimTime when, std::function<void()> fn) {
  const prof::Scope span(profiler_, "engine.schedule");
  ONES_EXPECT_MSG(std::isfinite(when), "event time must be finite");
  ONES_EXPECT_MSG(when >= now_, "cannot schedule events in the past");
  ONES_EXPECT(fn != nullptr);
  const std::uint32_t idx = alloc_slot();
  Event& ev = arena_[idx];
  ev.when = when;
  ev.seq = next_seq_++;
  ev.fn = std::move(fn);
  const EventId id = (static_cast<EventId>(ev.gen) << 32) | idx;
  ++live_;
  insert_into_bucket(idx);
  maybe_resize();
  return id;
}

EventId SimEngine::schedule_after(SimTime delay, std::function<void()> fn) {
  ONES_EXPECT_MSG(delay >= 0.0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

bool SimEngine::cancel(EventId id) {
  const prof::Scope span(profiler_, "engine.cancel");
  const std::uint32_t idx = static_cast<std::uint32_t>(id & 0xffffffffULL);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= arena_.size() || arena_[idx].gen != gen) return false;
  // Generation match implies the slot is live: free_slot bumps gen before
  // the slot can ever be reused or observed stale.
  ONES_EXPECT(arena_[idx].fn != nullptr);
  remove_from_bucket(idx);
  free_slot(idx);
  maybe_resize();
  return true;
}

bool SimEngine::step() {
  if (live_ == 0) return false;
  std::function<void()> fn;
  {
    // Extraction only — the callback runs outside this span, so spans it
    // opens (scheduler decisions, nested schedules) are not charged to the
    // engine's pop path.
    const prof::Scope span(profiler_, "engine.pop");
    const MinRef min = find_min();
    Bucket& b = buckets_[min.bucket];
    ONES_EXPECT(!b.empty() && b.back() == min.idx);
    b.pop_back();
    // Release the slot *before* running the callback: a self-cancel from
    // inside the callback must see a stale handle (deterministic no-op), and
    // the callback may schedule new events, which can reallocate the arena —
    // so the callback is moved out first and no Event reference is held.
    fn = std::move(arena_[min.idx].fn);
    const SimTime when = arena_[min.idx].when;
    free_slot(min.idx);
    now_ = when;
    ++fired_;
  }
  if (fire_hook_) fire_hook_(now_, fired_);
  fn();
  maybe_resize();
  return true;
}

void SimEngine::run_until(SimTime limit) {
  while (live_ > 0) {
    const MinRef min = find_min();
    if (arena_[min.idx].when > limit) break;
    step();
  }
  if (now_ < limit) now_ = limit;
}

void SimEngine::run() {
  while (step()) {
  }
}

}  // namespace ones::sim
