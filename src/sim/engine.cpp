#include "sim/engine.hpp"

#include <cmath>
#include <utility>

namespace ones::sim {

EventId SimEngine::schedule_at(SimTime when, std::function<void()> fn) {
  ONES_EXPECT_MSG(std::isfinite(when), "event time must be finite");
  ONES_EXPECT_MSG(when >= now_, "cannot schedule events in the past");
  ONES_EXPECT(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId SimEngine::schedule_after(SimTime delay, std::function<void()> fn) {
  ONES_EXPECT_MSG(delay >= 0.0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

bool SimEngine::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool SimEngine::step() {
  while (!queue_.empty()) {
    Entry top = queue_.top();
    queue_.pop();
    auto cit = cancelled_.find(top.id);
    if (cit != cancelled_.end()) {
      cancelled_.erase(cit);
      continue;
    }
    auto it = callbacks_.find(top.id);
    ONES_EXPECT(it != callbacks_.end());
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = top.when;
    ++fired_;
    if (fire_hook_) fire_hook_(now_, fired_);
    fn();
    return true;
  }
  return false;
}

void SimEngine::run_until(SimTime limit) {
  while (!queue_.empty()) {
    // Peek past cancelled entries without firing.
    Entry top = queue_.top();
    if (cancelled_.count(top.id)) {
      queue_.pop();
      cancelled_.erase(top.id);
      continue;
    }
    if (top.when > limit) break;
    step();
  }
  if (now_ < limit) now_ = limit;
}

void SimEngine::run() {
  while (step()) {
  }
}

}  // namespace ones::sim
