// Small numeric helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/expect.hpp"

namespace ones {

/// Round x up to the next power of two (x >= 1).
inline std::int64_t next_pow2(std::int64_t x) {
  ONES_EXPECT(x >= 1);
  std::int64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// True iff x is a power of two.
inline bool is_pow2(std::int64_t x) { return x >= 1 && (x & (x - 1)) == 0; }

/// Integer ceiling division for non-negative operands.
inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  ONES_EXPECT(a >= 0 && b > 0);
  return (a + b - 1) / b;
}

/// Streaming mean/variance (Welford).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  std::int64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Linear interpolation quantile of an unsorted sample (copies + sorts).
/// q in [0, 1].
inline double quantile(std::vector<double> v, double q) {
  ONES_EXPECT(!v.empty());
  ONES_EXPECT(q >= 0.0 && q <= 1.0);
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

inline double mean_of(const std::vector<double>& v) {
  ONES_EXPECT(!v.empty());
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace ones
