#include "common/log.hpp"

#include <atomic>

namespace ones {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  os_ << "[" << log_level_name(level_) << "] " << base << ":" << line << " ";
}

LogLine::~LogLine() {
  os_ << "\n";
  std::cerr << os_.str();
}

}  // namespace detail
}  // namespace ones
