// Minimal leveled logger for the simulator.
//
// Components log through ONES_LOG(level) << ...; the global level defaults to
// Warn so that tests and benchmarks stay quiet, and examples can turn on Info
// to narrate a run.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace ones {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log level. Messages below this level are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

const char* log_level_name(LogLevel level);

namespace detail {

/// Accumulates one log line and flushes it to stderr on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace ones

#define ONES_LOG(level)                                            \
  if (::ones::LogLevel::level < ::ones::log_level()) {             \
  } else                                                           \
    ::ones::detail::LogLine(::ones::LogLevel::level, __FILE__, __LINE__)
