// Minimal JSON reading/writing shared by the exp result cache and the trace
// module's JSONL / Chrome trace-event emitters.
//
// Hand-rolled on purpose: the repo takes no external dependencies, and the
// callers only need the subset of JSON their serializations emit (objects,
// arrays, numbers, strings, booleans, null). Numbers are written with %.17g
// so IEEE doubles round-trip exactly — a cached result or an emitted trace
// must reproduce the original run byte-for-byte once formatted.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ones {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< insertion order

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
};

/// Parse a complete JSON document; throws std::runtime_error on malformed
/// input or trailing garbage.
JsonValue parse_json(std::string_view text);

/// Exact round-trip rendering of a double (%.17g).
std::string json_double(double v);

/// Quote + escape a string for JSON output.
std::string json_quote(const std::string& s);

}  // namespace ones
