// Lightweight precondition / invariant checking.
//
// ONES_EXPECT throws std::logic_error on violation; it is always enabled
// (scheduling decisions are cheap relative to the simulated work, and a
// silently-corrupt schedule is much worse than an exception).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ones {

[[noreturn]] inline void expect_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "ONES_EXPECT failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace ones

#define ONES_EXPECT(cond)                                              \
  do {                                                                 \
    if (!(cond)) ::ones::expect_fail(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define ONES_EXPECT_MSG(cond, msg)                                       \
  do {                                                                   \
    if (!(cond)) ::ones::expect_fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
