#include "common/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ones {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string json_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    throw std::runtime_error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                             what);
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    v.boolean = b;
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' ||
          c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = value;
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // Cache payloads are ASCII; encode anything else as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
    return out;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace ones
