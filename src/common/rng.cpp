#include "common/rng.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace ones {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ONES_EXPECT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ONES_EXPECT(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~static_cast<std::uint64_t>(0)) - (~static_cast<std::uint64_t>(0)) % span;
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit);
  return lo + static_cast<std::int64_t>(x % span);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double lambda) {
  ONES_EXPECT(lambda > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::gamma(double shape, double scale) {
  ONES_EXPECT(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Ahrens–Dieter boost: Gamma(a) = Gamma(a+1) * U^(1/a).
    const double u = std::max(uniform(), 1e-300);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v * scale;
  }
}

double Rng::beta(double alpha, double beta_param) {
  const double x = gamma(alpha, 1.0);
  const double y = gamma(beta_param, 1.0);
  return x / (x + y);
}

std::int64_t Rng::poisson(double mean) {
  ONES_EXPECT(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    const double l = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  const double x = normal(mean, std::sqrt(mean));
  return x < 0.0 ? 0 : static_cast<std::int64_t>(x + 0.5);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  ONES_EXPECT(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    ONES_EXPECT_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  if (total <= 0.0) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(weights.size()) - 1));
  }
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace ones
