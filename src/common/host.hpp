// Host-process introspection helpers. Diagnostics only: everything here
// reads OS state, so callers may print the values to stderr or put them in
// the machine-readable BENCH_*.json host section — never on the byte-stable
// metric stdout and never into a simulated quantity.
#pragma once

namespace ones::common {

/// Peak resident set size (VmHWM) in MiB from /proc/self/status. Portable
/// fallback: returns 0.0 where /proc is absent (non-Linux) or unreadable.
double peak_rss_mib();

}  // namespace ones::common
