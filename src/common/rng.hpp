// Deterministic random number generation for reproducible simulation runs.
//
// Every stochastic component of the simulator (arrival process, evolutionary
// operators, probability sampling, DRL exploration, ...) draws from an Rng
// seeded from the experiment configuration, so that a run is a pure function
// of its seed. The generator is xoshiro256**, seeded via splitmix64, which is
// fast, has 256-bit state and passes BigCrush.
#pragma once

#include <cstdint>
#include <vector>

namespace ones {

/// splitmix64 step; used for seeding and cheap hash mixing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic PRNG (xoshiro256**) with distribution helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// UniformRandomBitGenerator interface (usable with <random> adaptors).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);
  /// Standard normal via Box–Muller (cached second value).
  double normal();
  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);
  /// Exponential with rate lambda (mean 1/lambda).
  double exponential(double lambda);
  /// Gamma(shape, scale) via Marsaglia–Tsang (with Ahrens–Dieter boost for
  /// shape < 1).
  double gamma(double shape, double scale);
  /// Beta(alpha, beta) via two gamma draws.
  double beta(double alpha, double beta);
  /// Poisson(mean) — Knuth for small mean, normal approximation for large.
  std::int64_t poisson(double mean);

  /// Pick an index in [0, weights.size()) proportionally to non-negative
  /// weights. If all weights are zero, picks uniformly. Requires non-empty.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-component streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ones
