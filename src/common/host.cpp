#include "common/host.hpp"

#include <cstdio>

namespace ones::common {

double peak_rss_mib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double kib = 0.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long v = 0;
    if (std::sscanf(line, "VmHWM: %ld kB", &v) == 1) {
      kib = static_cast<double>(v);
      break;
    }
  }
  std::fclose(f);
  return kib / 1024.0;
}

}  // namespace ones::common
