// Shared identifier types.
#pragma once

#include <cstdint>

namespace ones {

/// Identifies a submitted job; assigned sequentially by the workload trace.
using JobId = std::int64_t;
inline constexpr JobId kInvalidJob = -1;

/// Identifies a GPU device; dense in [0, total_gpus).
using GpuId = int;

/// Identifies a server node; dense in [0, num_nodes).
using NodeId = int;

}  // namespace ones
