// Sim-time timeline sampler: step-function series recorded on change or on
// deterministic sim-time ticks (DESIGN.md §9).
//
// Each named series is a right-continuous step function of simulated time:
// `record(id, t, v)` appends a point only when the value differs from the
// series' last value (or on its first observation), so an unchanged gauge
// costs one comparison, not one row. With a tick period set, every elapsed
// tick boundary additionally re-samples ALL series at the boundary time
// (with their pre-boundary values), which yields a uniformly-spaced export
// without ever touching the simulation engine — ticks are materialized
// lazily inside `record`/`advance`, never via engine events, so enabling
// them cannot perturb event ordering, sequence numbers or results.
//
// No wall-clock anywhere: `t` is simulated seconds and must be
// non-decreasing across ALL calls (the sim clock only moves forward).
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace ones::telemetry {

class TimelineSampler {
 public:
  using SeriesId = std::size_t;

  /// Intern `name`, creating the series on first use. Ids are dense and
  /// assigned in interning order.
  SeriesId series(const std::string& name);

  /// Record that `id`'s value is `value` from sim-time `t` on. Appends a
  /// point when the value changed (or first call for the series); elapsed
  /// tick boundaries are flushed first. `t` must be >= the largest t seen.
  void record(SeriesId id, double t, double value);

  /// Flush tick samples up to and including sim-time `t` without recording a
  /// change point (call once at run end so the export covers the full run).
  void advance(double t);

  /// Enable uniform re-sampling every `period_s` > 0 of sim-time (0 — the
  /// default — disables ticks). Must be set before the first record.
  void set_tick_period(double period_s);
  double tick_period() const { return tick_period_; }

  struct Point {
    double t = 0.0;
    SeriesId series = 0;
    double value = 0.0;
  };

  /// All points in emission order (t is non-decreasing).
  const std::vector<Point>& points() const { return points_; }
  const std::string& name(SeriesId id) const;
  std::size_t num_series() const { return names_.size(); }

 private:
  void flush_ticks(double t);

  double tick_period_ = 0.0;
  double next_tick_ = 0.0;
  double last_t_ = 0.0;
  bool any_point_ = false;
  std::vector<std::string> names_;
  std::unordered_map<std::string, SeriesId> by_name_;
  std::vector<double> last_value_;
  std::vector<char> has_value_;
  std::vector<Point> points_;
};

}  // namespace ones::telemetry
