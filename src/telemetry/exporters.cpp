#include "telemetry/exporters.hpp"

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"

namespace fs = std::filesystem;

namespace ones::telemetry {

void write_timeline_csv(std::ostream& os, const TimelineSampler& timeline) {
  os << "t,series,value\n";
  for (const TimelineSampler::Point& p : timeline.points()) {
    os << json_double(p.t) << ',' << timeline.name(p.series) << ','
       << json_double(p.value) << '\n';
  }
}

namespace {

const char* kind_name(MetricsRegistry::Kind kind) {
  switch (kind) {
    case MetricsRegistry::Kind::Counter: return "counter";
    case MetricsRegistry::Kind::Gauge: return "gauge";
    case MetricsRegistry::Kind::Histogram: return "histogram";
  }
  return "unknown";
}

}  // namespace

void write_prometheus(std::ostream& os, const MetricsRegistry& registry) {
  for (const auto& [name, e] : registry.entries()) {
    if (e.scope != MetricScope::Sim) continue;  // host wall-clock: stderr only
    os << "# TYPE " << name << ' ' << kind_name(e.kind) << '\n';
    switch (e.kind) {
      case MetricsRegistry::Kind::Counter:
        os << name << ' ' << json_double(e.counter->value()) << '\n';
        break;
      case MetricsRegistry::Kind::Gauge:
        os << name << ' ' << json_double(e.gauge->value()) << '\n';
        break;
      case MetricsRegistry::Kind::Histogram: {
        const Histogram& h = *e.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < h.bounds().size(); ++b) {
          cumulative += h.bucket_counts()[b];
          os << name << "_bucket{le=\"" << json_double(h.bounds()[b]) << "\"} "
             << cumulative << '\n';
        }
        cumulative += h.bucket_counts().back();
        os << name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
        os << name << "_sum " << json_double(h.sum()) << '\n';
        os << name << "_count " << h.count() << '\n';
        break;
      }
    }
  }
}

void write_json_summary(std::ostream& os, const MetricsRegistry& registry) {
  os << "{";
  bool first = true;
  for (const auto& [name, e] : registry.entries()) {
    if (e.scope != MetricScope::Sim) continue;
    os << (first ? "\n" : ",\n") << "  " << json_quote(name) << ": {\"type\": \""
       << kind_name(e.kind) << "\", ";
    first = false;
    switch (e.kind) {
      case MetricsRegistry::Kind::Counter:
        os << "\"value\": " << json_double(e.counter->value()) << '}';
        break;
      case MetricsRegistry::Kind::Gauge:
        os << "\"value\": " << json_double(e.gauge->value()) << '}';
        break;
      case MetricsRegistry::Kind::Histogram: {
        const Histogram& h = *e.histogram;
        os << "\"count\": " << h.count() << ", \"sum\": " << json_double(h.sum())
           << ", \"min\": " << json_double(h.min())
           << ", \"max\": " << json_double(h.max()) << ", \"bounds\": [";
        for (std::size_t b = 0; b < h.bounds().size(); ++b) {
          os << (b ? ", " : "") << json_double(h.bounds()[b]);
        }
        os << "], \"buckets\": [";
        for (std::size_t b = 0; b < h.bucket_counts().size(); ++b) {
          os << (b ? ", " : "") << h.bucket_counts()[b];
        }
        os << "], \"p50\": " << json_double(h.quantile(0.50))
           << ", \"p90\": " << json_double(h.quantile(0.90))
           << ", \"p99\": " << json_double(h.quantile(0.99)) << '}';
        break;
      }
    }
  }
  os << (first ? "}" : "\n}") << '\n';
}

std::string format_host_metrics(const MetricsRegistry& registry) {
  std::ostringstream os;
  for (const auto& [name, e] : registry.entries()) {
    if (e.scope != MetricScope::Host) continue;
    os << "  " << name << ": ";
    switch (e.kind) {
      case MetricsRegistry::Kind::Counter:
        os << json_double(e.counter->value()) << '\n';
        break;
      case MetricsRegistry::Kind::Gauge:
        os << json_double(e.gauge->value()) << '\n';
        break;
      case MetricsRegistry::Kind::Histogram: {
        const Histogram& h = *e.histogram;
        os << "count=" << h.count() << " p50=" << json_double(h.quantile(0.50))
           << " p90=" << json_double(h.quantile(0.90))
           << " max=" << json_double(h.max()) << '\n';
        break;
      }
    }
  }
  return os.str();
}

namespace {

/// Distinguishes concurrent writers targeting the same final path; the value
/// never reaches the exported bytes (same idiom as `trace::RunTraceWriter`).
std::string unique_tmp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  return ".tmp" + std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

template <typename WriteFn>
void write_atomically(const fs::path& final_path, WriteFn&& write) {
  const fs::path tmp = final_path.string() + unique_tmp_suffix();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot open metrics file '" + tmp.string() + "'");
    }
    write(out);
    out.flush();
    if (!out) {
      throw std::runtime_error("failed writing metrics file '" + tmp.string() + "'");
    }
  }
  fs::rename(tmp, final_path);
}

}  // namespace

void write_metrics_files(const MetricsRegistry& registry, const std::string& dir,
                         const std::string& stem) {
  fs::create_directories(dir);
  const fs::path base = fs::path(dir) / stem;
  write_atomically(base.string() + ".timeline.csv", [&](std::ostream& os) {
    write_timeline_csv(os, registry.timeline());
  });
  write_atomically(base.string() + ".prom",
                   [&](std::ostream& os) { write_prometheus(os, registry); });
  write_atomically(base.string() + ".metrics.json",
                   [&](std::ostream& os) { write_json_summary(os, registry); });
}

}  // namespace ones::telemetry
