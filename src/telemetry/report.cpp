#include "telemetry/report.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/expect.hpp"

namespace ones::telemetry {

void write_jobs_csv(std::ostream& os, const MetricsCollector& metrics) {
  os << "job_id,arrival_s,completion_s,jct_s,exec_s,queue_s,preemptions,aborted\n";
  for (JobId id : metrics.job_ids()) {
    const auto& m = metrics.job(id);
    if (!m.completed()) continue;
    os << m.id << ',' << m.arrival_s << ',' << m.completion_s << ',' << m.jct() << ','
       << m.exec_time_s << ',' << m.queue_time() << ',' << m.preemptions << ','
       << (m.aborted ? 1 : 0) << '\n';
  }
}

void write_ecdf_csv(std::ostream& os, const std::vector<double>& values,
                    const std::string& value_header) {
  os << value_header << ",cum_fraction\n";
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    os << sorted[i] << ',' << static_cast<double>(i + 1) / n << '\n';
  }
}

std::string summary_to_json(const Summary& s) {
  std::ostringstream os;
  os << "{\"scheduler\":\"" << s.scheduler << "\",\"jobs\":" << s.jobs
     << ",\"avg_jct_s\":" << s.avg_jct << ",\"avg_exec_s\":" << s.avg_exec
     << ",\"avg_queue_s\":" << s.avg_queue << ",\"p50_jct_s\":" << s.p50_jct
     << ",\"p90_jct_s\":" << s.p90_jct << ",\"max_jct_s\":" << s.max_jct
     << ",\"makespan_s\":" << s.makespan << ",\"utilization\":" << s.utilization
     << ",\"cluster_joules\":" << s.cluster_joules
     << ",\"overhead_joules\":" << s.overhead_joules << "}";
  return os.str();
}

std::string summaries_to_json(const std::vector<Summary>& summaries) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    if (i > 0) os << ",";
    os << summary_to_json(summaries[i]);
  }
  os << "]";
  return os.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream f(path, std::ios::binary);
  ONES_EXPECT_MSG(f.good(), "cannot open " + path + " for writing");
  f << contents;
  ONES_EXPECT_MSG(f.good(), "write to " + path + " failed");
}

}  // namespace ones::telemetry
