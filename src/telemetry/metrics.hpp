// Scheduling metrics (paper §4.1 "Metrics").
//
// The foremost metric is the job completion time (JCT): submission to
// completion. The paper decomposes it into *execution time* (the job is
// actually running on GPUs) and *queuing time* (JCT minus execution time:
// waiting for service, including preempted periods). We also integrate a
// cluster-utilization timeline (busy GPU-seconds / capacity GPU-seconds).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"

namespace ones::telemetry {

struct JobMetrics {
  JobId id = kInvalidJob;
  double arrival_s = 0.0;
  double completion_s = -1.0;  ///< -1 while unfinished
  double first_start_s = -1.0; ///< -1 until first scheduled
  double exec_time_s = 0.0;    ///< accumulated running time
  int preemptions = 0;         ///< times the job lost its GPUs while unfinished
  bool aborted = false;        ///< ended abnormally (killed / crashed)

  bool completed() const { return completion_s >= 0.0; }
  double jct() const { return completion_s - arrival_s; }
  double queue_time() const { return jct() - exec_time_s; }
};

class MetricsCollector {
 public:
  void on_submit(JobId job, double now);
  /// Job transitions waiting -> running.
  void on_run_start(JobId job, double now);
  /// Job transitions running -> waiting (preemption) or -> completed.
  void on_run_end(JobId job, double now, bool preempted);
  void on_complete(JobId job, double now);
  /// Record an abnormal ending (killed / crashed). The job is finished for
  /// resource accounting but excluded from the JCT statistics.
  void on_abort(JobId job, double now);

  /// Record a change in the number of busy GPUs (for the utilization
  /// integral). Call with the *new* busy count at time `now`.
  void on_busy_gpus(int busy, double now);

  const JobMetrics& job(JobId job) const;
  bool has_job(JobId job) const { return jobs_.count(job) > 0; }
  /// All submitted job ids, ascending.
  std::vector<JobId> job_ids() const;
  std::size_t submitted() const { return jobs_.size(); }
  std::size_t completed() const;  ///< converged normally
  std::size_t aborted() const;

  std::vector<double> jcts() const;
  std::vector<double> exec_times() const;
  std::vector<double> queue_times() const;
  /// JCTs keyed by job id (for paired significance tests across schedulers).
  std::unordered_map<JobId, double> jct_by_job() const;

  /// Mean busy-GPU fraction over [0, horizon] given `capacity` GPUs.
  double avg_utilization(int capacity, double horizon) const;

  /// Completion time of the last finished job.
  double makespan() const { return makespan_; }

 private:
  std::unordered_map<JobId, JobMetrics> jobs_;
  std::unordered_map<JobId, double> run_start_;
  double makespan_ = 0.0;
  // utilization integral
  double busy_integral_ = 0.0;
  double last_busy_change_ = 0.0;
  int busy_now_ = 0;
};

struct Summary {
  std::string scheduler;
  std::size_t jobs = 0;
  double avg_jct = 0.0;
  double avg_exec = 0.0;
  double avg_queue = 0.0;
  double p50_jct = 0.0;
  double p90_jct = 0.0;
  double max_jct = 0.0;
  double makespan = 0.0;
  double utilization = 0.0;  ///< mean busy-GPU fraction over the makespan
  /// Energy objective (DESIGN.md §10): total cluster joules integrated over
  /// the run, and the share not attributable to any job (idle GPUs + node
  /// base power). Filled by the driver/orchestrator, not by summarize().
  double cluster_joules = 0.0;
  double overhead_joules = 0.0;
};

Summary summarize(const std::string& scheduler, const MetricsCollector& metrics,
                  int capacity);

std::string format_summary_header();
std::string format_summary_row(const Summary& summary);

}  // namespace ones::telemetry
