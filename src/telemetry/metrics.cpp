#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "common/expect.hpp"
#include "common/math_util.hpp"

namespace ones::telemetry {

void MetricsCollector::on_submit(JobId job, double now) {
  ONES_EXPECT_MSG(!jobs_.count(job), "job submitted twice");
  JobMetrics m;
  m.id = job;
  m.arrival_s = now;
  jobs_.emplace(job, m);
}

void MetricsCollector::on_run_start(JobId job, double now) {
  auto it = jobs_.find(job);
  ONES_EXPECT_MSG(it != jobs_.end(), "run_start for unknown job");
  ONES_EXPECT_MSG(!run_start_.count(job), "job already running");
  run_start_.emplace(job, now);
  if (it->second.first_start_s < 0.0) it->second.first_start_s = now;
}

void MetricsCollector::on_run_end(JobId job, double now, bool preempted) {
  auto it = jobs_.find(job);
  ONES_EXPECT_MSG(it != jobs_.end(), "run_end for unknown job");
  auto rs = run_start_.find(job);
  ONES_EXPECT_MSG(rs != run_start_.end(), "run_end for a job that is not running");
  ONES_EXPECT(now >= rs->second);
  it->second.exec_time_s += now - rs->second;
  if (preempted) it->second.preemptions += 1;
  run_start_.erase(rs);
}

void MetricsCollector::on_complete(JobId job, double now) {
  auto it = jobs_.find(job);
  ONES_EXPECT_MSG(it != jobs_.end(), "complete for unknown job");
  ONES_EXPECT_MSG(!run_start_.count(job), "end the run interval before completing");
  ONES_EXPECT_MSG(!it->second.completed(), "job completed twice");
  it->second.completion_s = now;
  makespan_ = std::max(makespan_, now);
}

void MetricsCollector::on_busy_gpus(int busy, double now) {
  ONES_EXPECT(busy >= 0);
  ONES_EXPECT(now >= last_busy_change_);
  busy_integral_ += static_cast<double>(busy_now_) * (now - last_busy_change_);
  busy_now_ = busy;
  last_busy_change_ = now;
}

const JobMetrics& MetricsCollector::job(JobId job) const {
  auto it = jobs_.find(job);
  ONES_EXPECT_MSG(it != jobs_.end(), "unknown job");
  return it->second;
}

std::vector<JobId> MetricsCollector::job_ids() const {
  std::vector<JobId> ids;
  ids.reserve(jobs_.size());
  for (const auto& [id, m] : jobs_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t MetricsCollector::completed() const {
  std::size_t n = 0;
  for (const auto& [id, m] : jobs_) {
    if (m.completed() && !m.aborted) ++n;
  }
  return n;
}

std::size_t MetricsCollector::aborted() const {
  std::size_t n = 0;
  for (const auto& [id, m] : jobs_) {
    if (m.aborted) ++n;
  }
  return n;
}

void MetricsCollector::on_abort(JobId job, double now) {
  auto it = jobs_.find(job);
  ONES_EXPECT_MSG(it != jobs_.end(), "abort for unknown job");
  ONES_EXPECT_MSG(!run_start_.count(job), "end the run interval before aborting");
  ONES_EXPECT_MSG(!it->second.completed(), "job already finished");
  it->second.completion_s = now;
  it->second.aborted = true;
  makespan_ = std::max(makespan_, now);
}

std::vector<double> MetricsCollector::jcts() const {
  std::vector<double> out;
  for (const auto& [id, m] : jobs_) {
    if (m.completed() && !m.aborted) out.push_back(m.jct());
  }
  return out;
}

std::vector<double> MetricsCollector::exec_times() const {
  std::vector<double> out;
  for (const auto& [id, m] : jobs_) {
    if (m.completed() && !m.aborted) out.push_back(m.exec_time_s);
  }
  return out;
}

std::vector<double> MetricsCollector::queue_times() const {
  std::vector<double> out;
  for (const auto& [id, m] : jobs_) {
    if (m.completed() && !m.aborted) out.push_back(m.queue_time());
  }
  return out;
}

std::unordered_map<JobId, double> MetricsCollector::jct_by_job() const {
  std::unordered_map<JobId, double> out;
  for (const auto& [id, m] : jobs_) {
    if (m.completed() && !m.aborted) out.emplace(id, m.jct());
  }
  return out;
}

double MetricsCollector::avg_utilization(int capacity, double horizon) const {
  ONES_EXPECT(capacity > 0);
  if (horizon <= 0.0) return 0.0;
  // Include the tail segment after the last change.
  double integral = busy_integral_;
  if (horizon > last_busy_change_) {
    integral += static_cast<double>(busy_now_) * (horizon - last_busy_change_);
  }
  return integral / (static_cast<double>(capacity) * horizon);
}

Summary summarize(const std::string& scheduler, const MetricsCollector& metrics,
                  int capacity) {
  Summary s;
  s.scheduler = scheduler;
  const auto jct = metrics.jcts();
  s.jobs = jct.size();
  if (jct.empty()) return s;
  s.avg_jct = mean_of(jct);
  s.avg_exec = mean_of(metrics.exec_times());
  s.avg_queue = mean_of(metrics.queue_times());
  s.p50_jct = quantile(jct, 0.5);
  s.p90_jct = quantile(jct, 0.9);
  s.max_jct = quantile(jct, 1.0);
  s.makespan = metrics.makespan();
  s.utilization = metrics.avg_utilization(capacity, s.makespan);
  return s;
}

std::string format_summary_header() {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%-10s %6s %10s %10s %10s %9s %9s %9s %9s %6s %9s",
                "scheduler", "jobs", "avgJCT", "avgExec", "avgQueue", "p50JCT",
                "p90JCT", "maxJCT", "makespan", "util", "energyMJ");
  return buf;
}

std::string format_summary_row(const Summary& s) {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "%-10s %6zu %10.1f %10.1f %10.1f %9.1f %9.1f %9.1f %9.1f %5.1f%% %9.2f",
                s.scheduler.c_str(), s.jobs, s.avg_jct, s.avg_exec, s.avg_queue,
                s.p50_jct, s.p90_jct, s.max_jct, s.makespan, 100.0 * s.utilization,
                s.cluster_joules / 1e6);
  return buf;
}

}  // namespace ones::telemetry
