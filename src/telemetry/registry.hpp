// Sim-time metrics registry: named counters, gauges and fixed-bucket
// histograms (DESIGN.md §9).
//
// The registry is the run-scoped observability substrate that sits between
// the end-of-run aggregates in `MetricsCollector` and the full event stream
// in `src/trace`. Instrumented modules (the sim driver, schedulers, the
// elastic protocol, the predictor, the evolutionary search) hold a plain
// `MetricsRegistry*` that defaults to null; every emission site is guarded
// by a null check, so metrics disabled — the default — costs one predictable
// branch and nothing else, exactly like the `trace::TraceSink` contract.
//
// Determinism rules:
//  * `MetricScope::Sim` instruments are pure functions of the (deterministic)
//    simulation — they are what the file exporters emit, byte-identically
//    for any `--threads` value.
//  * `MetricScope::Host` instruments hold wall-clock measurements (e.g. the
//    per-decision scheduler host-time histogram). They follow the
//    `bench::ScopedTimer` convention: stderr-only, excluded from every file
//    exporter, and never fed back into any result.
//  * The registry pointer is NOT part of the orchestrator cache key:
//    attaching one must never change a simulation result.
//
// Naming convention: `<module>_<metric>[_<unit>][_total]` — e.g.
// `sim_queue_depth`, `elastic_overhead_seconds_total`. `_total` marks
// counters, following the Prometheus style the text exporter emits.
//
// Thread safety: none needed or provided. Each simulated run owns its
// registry on one thread (the same ownership model as `TraceSink`).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/timeline.hpp"

namespace ones::telemetry {

/// Whether an instrument's value derives from deterministic simulation state
/// (exported to files) or from host wall-clock (stderr-only diagnostics).
enum class MetricScope { Sim, Host };

/// Monotonically increasing sum. `value()` is a double so counters can
/// accumulate fractional quantities (overhead seconds) as well as counts.
class Counter {
 public:
  /// Add `delta` >= 0 (ONES_EXPECT).
  void add(double delta = 1.0);
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. Buckets are defined by strictly increasing upper
/// bounds (Prometheus `le` semantics: an observation lands in the first
/// bucket whose bound is >= the value); an implicit +Inf bucket catches the
/// overflow. Bounds are fixed at creation, so two runs of the same spec
/// produce bucket-identical histograms.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing (ONES_EXPECT).
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }  ///< 0 when empty
  double max() const { return max_; }  ///< 0 when empty
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds_.size() = overflow.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// Quantile estimate for q in [0, 1]: linear interpolation inside the
  /// bucket containing the target rank (lower edge 0 for the first bucket,
  /// `max()` caps the overflow bucket). Returns 0 on an empty histogram.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 entries
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Owns every instrument of one run plus the sim-time timeline sampler.
/// Instruments are created on first request and live as long as the
/// registry; re-requesting a name returns the same instrument (and throws
/// via ONES_EXPECT if the kind or histogram bounds differ — a name may not
/// alias two meanings).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, MetricScope scope = MetricScope::Sim);
  Gauge& gauge(const std::string& name, MetricScope scope = MetricScope::Sim);
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       MetricScope scope = MetricScope::Sim);

  /// Lookup without creation; nullptr when absent or a different kind.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Convenience: a named counter's value, 0.0 when absent.
  double counter_value(const std::string& name) const;
  /// Convenience: a named gauge's value, 0.0 when absent.
  double gauge_value(const std::string& name) const;

  TimelineSampler& timeline() { return timeline_; }
  const TimelineSampler& timeline() const { return timeline_; }

  enum class Kind { Counter, Gauge, Histogram };

  struct Entry {
    Kind kind = Kind::Counter;
    MetricScope scope = MetricScope::Sim;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Name-sorted instrument map (std::map), for deterministic export order
  /// regardless of creation order.
  const std::map<std::string, Entry>& entries() const { return entries_; }

 private:
  Entry& entry_for(const std::string& name, Kind kind, MetricScope scope);

  std::map<std::string, Entry> entries_;
  TimelineSampler timeline_;
};

}  // namespace ones::telemetry
