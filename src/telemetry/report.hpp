// Machine-readable exporters for run results: CSV (per-job rows, ECDF
// series) and a compact JSON summary. Benches and examples use these to
// hand results to plotting scripts without re-parsing console tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace ones::telemetry {

/// Write one row per finished job:
/// job_id,arrival_s,completion_s,jct_s,exec_s,queue_s,preemptions,aborted
///
/// "Finished" means the job reached a terminal state, normal or not:
///  * Aborted jobs (on_abort) DO get a row — aborted=1, completion_s is the
///    abort time, and jct/exec/queue are measured up to that point. They are
///    deliberately excluded from the Summary's jct/exec/queue aggregates
///    (an abort is not a completion), so the CSV is the only place their
///    numbers surface; plotting scripts must filter on the aborted column.
///  * Jobs submitted but never finished (still waiting or running when the
///    simulation horizon ends) have completion_s < 0 and emit NO row: their
///    partial times would be horizon artifacts, not job outcomes. The gap
///    between submitted ids and CSV rows is the signal that a run truncated.
void write_jobs_csv(std::ostream& os, const MetricsCollector& metrics);

/// Write an empirical CDF of `values` as "value,cum_fraction" rows.
void write_ecdf_csv(std::ostream& os, const std::vector<double>& values,
                    const std::string& value_header = "value");

/// Serialize a Summary as a single JSON object (flat, stable key order).
std::string summary_to_json(const Summary& summary);

/// Serialize several summaries as a JSON array.
std::string summaries_to_json(const std::vector<Summary>& summaries);

/// Convenience: write a string to a file; throws on I/O failure.
void write_file(const std::string& path, const std::string& contents);

}  // namespace ones::telemetry
