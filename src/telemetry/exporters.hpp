// Multi-format exporters for the sim-time metrics registry (DESIGN.md §9).
//
// Three on-disk formats, all derived exclusively from `MetricScope::Sim`
// instruments so the bytes are deterministic for any thread count:
//   * timeline CSV   — `t,series,value` rows in emission order,
//   * Prometheus text-format snapshot (`# HELP`/`# TYPE` + samples),
//   * JSON summary   — one object per instrument, reusing `common/json`
//                      quoting and exact `%.17g` doubles.
// Host-scope instruments (wall-clock measurements) never reach a file; they
// are rendered by `format_host_metrics` for stderr, next to the
// `bench::ScopedTimer` output, per the repo's wall-clock convention.
#pragma once

#include <iosfwd>
#include <string>

#include "telemetry/registry.hpp"

namespace ones::telemetry {

/// `t,series,value` CSV of the timeline (header always present; doubles
/// rendered %.17g so re-runs compare byte-for-byte).
void write_timeline_csv(std::ostream& os, const TimelineSampler& timeline);

/// Prometheus text exposition format of every Sim-scope instrument, sorted
/// by name. Histograms emit cumulative `_bucket{le=...}` samples plus
/// `_sum` / `_count`.
void write_prometheus(std::ostream& os, const MetricsRegistry& registry);

/// Flat JSON object keyed by instrument name (sorted), each value an object
/// with `type` plus the instrument's data; histograms include bucket counts
/// and p50/p90/p99 estimates.
void write_json_summary(std::ostream& os, const MetricsRegistry& registry);

/// Human-readable rendering of the Host-scope instruments (one line each),
/// for stderr diagnostics. Empty string when there are none.
std::string format_host_metrics(const MetricsRegistry& registry);

/// Write the three export files `<dir>/<stem>.timeline.csv`, `<stem>.prom`
/// and `<stem>.metrics.json`, creating `dir` as needed. Each file streams to
/// a uniquely-named temp file renamed into place, so concurrent writers of
/// an identical spec never interleave and an interrupted run never leaves a
/// file that looks complete. Throws std::runtime_error on I/O failure.
void write_metrics_files(const MetricsRegistry& registry, const std::string& dir,
                         const std::string& stem);

}  // namespace ones::telemetry
