#include "telemetry/timeline.hpp"

#include "common/expect.hpp"

namespace ones::telemetry {

TimelineSampler::SeriesId TimelineSampler::series(const std::string& name) {
  ONES_EXPECT_MSG(!name.empty(), "timeline series needs a name");
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const SeriesId id = names_.size();
  names_.push_back(name);
  by_name_.emplace(name, id);
  last_value_.push_back(0.0);
  has_value_.push_back(0);
  return id;
}

const std::string& TimelineSampler::name(SeriesId id) const {
  ONES_EXPECT_MSG(id < names_.size(), "unknown timeline series id");
  return names_[id];
}

void TimelineSampler::set_tick_period(double period_s) {
  ONES_EXPECT_MSG(period_s >= 0.0, "tick period must be >= 0");
  ONES_EXPECT_MSG(points_.empty(), "set the tick period before recording");
  tick_period_ = period_s;
  next_tick_ = period_s;
}

void TimelineSampler::flush_ticks(double t) {
  ONES_EXPECT_MSG(t >= last_t_ || !any_point_, "sim-time regressed in timeline");
  if (tick_period_ <= 0.0) return;
  while (next_tick_ <= t) {
    for (SeriesId s = 0; s < names_.size(); ++s) {
      if (has_value_[s]) points_.push_back({next_tick_, s, last_value_[s]});
    }
    next_tick_ += tick_period_;
  }
}

void TimelineSampler::record(SeriesId id, double t, double value) {
  ONES_EXPECT_MSG(id < names_.size(), "unknown timeline series id");
  flush_ticks(t);
  last_t_ = t;
  any_point_ = true;
  if (has_value_[id] && last_value_[id] == value) return;  // step unchanged
  has_value_[id] = 1;
  last_value_[id] = value;
  points_.push_back({t, id, value});
}

void TimelineSampler::advance(double t) {
  flush_ticks(t);
  if (any_point_) last_t_ = t > last_t_ ? t : last_t_;
}

}  // namespace ones::telemetry
