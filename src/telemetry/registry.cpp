#include "telemetry/registry.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace ones::telemetry {

void Counter::add(double delta) {
  ONES_EXPECT_MSG(delta >= 0.0, "counters only go up");
  value_ += delta;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  ONES_EXPECT_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    ONES_EXPECT_MSG(bounds_[i - 1] < bounds_[i],
                    "histogram bounds must be strictly increasing");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  count_ += 1;
}

double Histogram::quantile(double q) const {
  ONES_EXPECT_MSG(q >= 0.0 && q <= 1.0, "quantile requires q in [0, 1]");
  if (count_ == 0) return 0.0;
  const double rank = q * static_cast<double>(count_);
  double seen = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double in_bucket = static_cast<double>(counts_[b]);
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= rank) {
      // Interpolate linearly inside [lo, hi); the open-ended overflow bucket
      // and the first bucket use the observed extrema as their missing edge.
      const double lo = b == 0 ? std::min(min_, bounds_[0]) : bounds_[b - 1];
      const double hi = b < bounds_.size() ? bounds_[b] : max_;
      if (hi <= lo) return hi;
      const double frac = in_bucket > 0.0 ? (rank - seen) / in_bucket : 0.0;
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += in_bucket;
  }
  return max_;
}

MetricsRegistry::Entry& MetricsRegistry::entry_for(const std::string& name, Kind kind,
                                                   MetricScope scope) {
  ONES_EXPECT_MSG(!name.empty(), "instrument needs a name");
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    ONES_EXPECT_MSG(it->second.kind == kind,
                    "instrument '" + name + "' already registered with another kind");
    ONES_EXPECT_MSG(it->second.scope == scope,
                    "instrument '" + name + "' already registered with another scope");
    return it->second;
  }
  Entry e;
  e.kind = kind;
  e.scope = scope;
  return entries_.emplace(name, std::move(e)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name, MetricScope scope) {
  Entry& e = entry_for(name, Kind::Counter, scope);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, MetricScope scope) {
  Entry& e = entry_for(name, Kind::Gauge, scope);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds, MetricScope scope) {
  Entry& e = entry_for(name, Kind::Histogram, scope);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
  } else {
    ONES_EXPECT_MSG(e.histogram->bounds() == bounds,
                    "histogram '" + name + "' re-registered with different buckets");
  }
  return *e.histogram;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::Counter
             ? it->second.counter.get()
             : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::Gauge ? it->second.gauge.get()
                                                                : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::Histogram
             ? it->second.histogram.get()
             : nullptr;
}

double MetricsRegistry::counter_value(const std::string& name) const {
  const Counter* c = find_counter(name);
  return c != nullptr ? c->value() : 0.0;
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  const Gauge* g = find_gauge(name);
  return g != nullptr ? g->value() : 0.0;
}

}  // namespace ones::telemetry
