#include "stats/beta.hpp"

#include <cmath>
#include <limits>

#include "common/expect.hpp"

namespace ones::stats {

double log_beta_fn(double a, double b) {
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

double digamma(double x) {
  ONES_EXPECT(x > 0.0);
  double result = 0.0;
  // Recurrence psi(x) = psi(x+1) - 1/x until x is large enough for the
  // asymptotic series.
  while (x < 12.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic expansion: ln x - 1/(2x) - 1/(12x^2) + 1/(120x^4) - 1/(252x^6).
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
  return result;
}

namespace {

// Lentz continued fraction for the incomplete beta function
// (Numerical Recipes style).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-14;
  constexpr double kTiny = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = static_cast<double>(m) * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  ONES_EXPECT(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = a * std::log(x) + b * std::log(1.0 - x) - log_beta_fn(a, b);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

BetaDistribution::BetaDistribution(double alpha, double beta) : alpha_(alpha), beta_(beta) {
  ONES_EXPECT_MSG(alpha > 0.0 && beta > 0.0, "Beta parameters must be positive");
}

double BetaDistribution::variance() const {
  const double s = alpha_ + beta_;
  return alpha_ * beta_ / (s * s * (s + 1.0));
}

double BetaDistribution::mode() const {
  if (alpha_ > 1.0 && beta_ > 1.0) {
    return (alpha_ - 1.0) / (alpha_ + beta_ - 2.0);
  }
  return mean();
}

double BetaDistribution::pdf(double x) const {
  if (x <= 0.0 || x >= 1.0) return 0.0;
  return std::exp(log_pdf(x));
}

double BetaDistribution::log_pdf(double x) const {
  if (x <= 0.0 || x >= 1.0) return -std::numeric_limits<double>::infinity();
  return (alpha_ - 1.0) * std::log(x) + (beta_ - 1.0) * std::log(1.0 - x) -
         log_beta_fn(alpha_, beta_);
}

double BetaDistribution::cdf(double x) const { return incomplete_beta(alpha_, beta_, x); }

double BetaDistribution::quantile(double p) const {
  ONES_EXPECT(p >= 0.0 && p <= 1.0);
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12) break;
  }
  return 0.5 * (lo + hi);
}

std::pair<double, double> BetaDistribution::credible_interval(double coverage) const {
  ONES_EXPECT(coverage > 0.0 && coverage < 1.0);
  const double tail = 0.5 * (1.0 - coverage);
  return {quantile(tail), quantile(1.0 - tail)};
}

}  // namespace ones::stats
