#include "stats/solve.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace ones::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& Matrix::at(std::size_t r, std::size_t c) {
  ONES_EXPECT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  ONES_EXPECT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  ONES_EXPECT(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = at(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out.at(r, c) += v * rhs.at(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  ONES_EXPECT(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out.at(r, c) = at(r, c) + rhs.at(r, c);
  return out;
}

std::vector<double> solve_linear(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  ONES_EXPECT(a.cols() == n && b.size() == n);

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a.at(r, col)) > std::fabs(a.at(pivot, col))) pivot = r;
    }
    ONES_EXPECT_MSG(std::fabs(a.at(pivot, col)) > 1e-12, "singular matrix in solve_linear");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(pivot, c), a.at(col, c));
      std::swap(b[pivot], b[col]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) / a.at(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a.at(r, c) -= factor * a.at(col, c);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a.at(ri, c) * x[c];
    x[ri] = sum / a.at(ri, ri);
  }
  return x;
}

std::vector<double> ridge_regression(const Matrix& x, const std::vector<double>& y,
                                     double lambda) {
  ONES_EXPECT(x.rows() == y.size());
  ONES_EXPECT(lambda >= 0.0);
  const Matrix xt = x.transpose();
  Matrix gram = xt * x;
  for (std::size_t i = 0; i < gram.rows(); ++i) gram.at(i, i) += lambda;
  // xt * y
  std::vector<double> rhs(x.cols(), 0.0);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    double s = 0.0;
    for (std::size_t r = 0; r < x.rows(); ++r) s += x.at(r, c) * y[r];
    rhs[c] = s;
  }
  return solve_linear(gram, rhs);
}

}  // namespace ones::stats
