// Bootstrap confidence intervals for the evaluation harness.
//
// The Wilcoxon tests (Table 4) answer "is the JCT difference real?"; the
// bootstrap answers "how big is it?" with an interval. Used by the Fig 15
// bench to attach 95% CIs to the headline reduction percentages.
#pragma once

#include <cstdint>
#include <vector>

namespace ones::stats {

struct BootstrapCi {
  double point = 0.0;  ///< statistic on the original sample
  double lo = 0.0;     ///< lower bound of the interval
  double hi = 0.0;     ///< upper bound
  double coverage = 0.95;
};

/// Percentile-bootstrap CI for the mean of one sample.
BootstrapCi bootstrap_mean_ci(const std::vector<double>& sample, int resamples = 2000,
                              double coverage = 0.95, std::uint64_t seed = 1);

/// Percentile-bootstrap CI for the *paired* mean difference mean(x - y).
/// x and y must be aligned samples of equal length (same jobs under two
/// schedulers).
BootstrapCi bootstrap_paired_mean_diff_ci(const std::vector<double>& x,
                                          const std::vector<double>& y,
                                          int resamples = 2000, double coverage = 0.95,
                                          std::uint64_t seed = 1);

/// Percentile-bootstrap CI for the relative reduction
/// (mean(y) - mean(x)) / mean(y), with (x, y) paired — "x is this many
/// percent below y".
BootstrapCi bootstrap_relative_reduction_ci(const std::vector<double>& x,
                                            const std::vector<double>& y,
                                            int resamples = 2000,
                                            double coverage = 0.95,
                                            std::uint64_t seed = 1);

}  // namespace ones::stats
