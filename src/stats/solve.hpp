// Small dense linear algebra: Gaussian elimination and (ridge-regularized)
// ordinary least squares. Dimensions in this project are tiny (the progress
// predictor has 5 features), so an O(n^3) solver is exactly right.
#pragma once

#include <cstddef>
#include <vector>

namespace ones::stats {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  static Matrix identity(std::size_t n);
  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b by Gaussian elimination with partial pivoting.
/// Throws std::logic_error if A is (numerically) singular.
std::vector<double> solve_linear(Matrix a, std::vector<double> b);

/// Ridge-regularized least squares: minimize ||X w - y||^2 + lambda ||w||^2.
/// X is n x d (rows = samples), y has n entries; returns d weights.
/// lambda = 0 gives OLS; a small lambda keeps the normal equations
/// well-conditioned when features are collinear.
std::vector<double> ridge_regression(const Matrix& x, const std::vector<double>& y,
                                     double lambda);

}  // namespace ones::stats
