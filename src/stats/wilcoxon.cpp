#include "stats/wilcoxon.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace ones::stats {

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

namespace {

/// Assign midranks to sorted values; returns ranks aligned with `order` and
/// the tie-correction term sum(t^3 - t) over tie groups.
struct RankOutcome {
  std::vector<double> ranks;
  double tie_term = 0.0;
};

RankOutcome midranks(const std::vector<double>& values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });

  RankOutcome out;
  out.ranks.assign(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg_rank = 0.5 * static_cast<double>(i + j) + 1.0;  // ranks are 1-based
    for (std::size_t k = i; k <= j; ++k) out.ranks[order[k]] = avg_rank;
    const double t = static_cast<double>(j - i + 1);
    if (t > 1.0) out.tie_term += t * t * t - t;
    i = j + 1;
  }
  return out;
}

}  // namespace

WilcoxonResult wilcoxon_signed_rank(const std::vector<double>& x,
                                    const std::vector<double>& y) {
  ONES_EXPECT_MSG(x.size() == y.size(), "signed-rank test requires paired samples");
  std::vector<double> abs_diff;
  std::vector<int> sign;
  abs_diff.reserve(x.size());
  sign.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    if (d == 0.0) continue;  // drop zeros
    abs_diff.push_back(std::fabs(d));
    sign.push_back(d > 0.0 ? 1 : -1);
  }

  WilcoxonResult res;
  res.n_effective = abs_diff.size();
  const double n = static_cast<double>(abs_diff.size());
  if (abs_diff.empty()) return res;  // all pairs tied: no evidence either way

  const RankOutcome ro = midranks(abs_diff);
  double w_plus = 0.0;
  for (std::size_t i = 0; i < abs_diff.size(); ++i) {
    if (sign[i] > 0) w_plus += ro.ranks[i];
  }
  res.statistic = w_plus;

  const double mean = n * (n + 1.0) / 4.0;
  double var = n * (n + 1.0) * (2.0 * n + 1.0) / 24.0;
  var -= ro.tie_term / 48.0;  // tie correction
  if (var <= 0.0) return res;

  // Continuity correction toward the mean.
  const double cc = (w_plus > mean) ? -0.5 : (w_plus < mean ? 0.5 : 0.0);
  res.z = (w_plus - mean + cc) / std::sqrt(var);

  // Large W+ means x tends to exceed y.
  res.p_greater = 1.0 - normal_cdf(res.z);
  res.p_less = normal_cdf(res.z);
  res.p_two_sided = std::min(1.0, 2.0 * std::min(res.p_greater, res.p_less));
  return res;
}

WilcoxonResult wilcoxon_rank_sum(const std::vector<double>& x,
                                 const std::vector<double>& y) {
  ONES_EXPECT(!x.empty() && !y.empty());
  std::vector<double> pooled;
  pooled.reserve(x.size() + y.size());
  pooled.insert(pooled.end(), x.begin(), x.end());
  pooled.insert(pooled.end(), y.begin(), y.end());

  const RankOutcome ro = midranks(pooled);
  double rank_sum_x = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) rank_sum_x += ro.ranks[i];

  const double n1 = static_cast<double>(x.size());
  const double n2 = static_cast<double>(y.size());
  const double u = rank_sum_x - n1 * (n1 + 1.0) / 2.0;

  WilcoxonResult res;
  res.statistic = u;
  res.n_effective = pooled.size();

  const double mean = n1 * n2 / 2.0;
  const double n = n1 + n2;
  double var = n1 * n2 / 12.0 * ((n + 1.0) - ro.tie_term / (n * (n - 1.0)));
  if (var <= 0.0) return res;

  const double cc = (u > mean) ? -0.5 : (u < mean ? 0.5 : 0.0);
  res.z = (u - mean + cc) / std::sqrt(var);
  res.p_greater = 1.0 - normal_cdf(res.z);
  res.p_less = normal_cdf(res.z);
  res.p_two_sided = std::min(1.0, 2.0 * std::min(res.p_greater, res.p_less));
  return res;
}

}  // namespace ones::stats
