#include "stats/descriptive.hpp"

#include <algorithm>
#include <cstdio>

#include "common/expect.hpp"
#include "common/math_util.hpp"

namespace ones::stats {

BoxStats box_stats(std::vector<double> sample) {
  ONES_EXPECT(!sample.empty());
  std::sort(sample.begin(), sample.end());
  BoxStats b;
  b.n = sample.size();
  b.min = sample.front();
  b.max = sample.back();
  b.q1 = quantile(sample, 0.25);
  b.median = quantile(sample, 0.5);
  b.q3 = quantile(sample, 0.75);
  b.mean = mean_of(sample);

  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;
  b.whisker_lo = b.max;
  b.whisker_hi = b.min;
  for (double v : sample) {
    if (v >= lo_fence && v < b.whisker_lo) b.whisker_lo = v;
    if (v <= hi_fence && v > b.whisker_hi) b.whisker_hi = v;
    if (v < lo_fence || v > hi_fence) b.outliers.push_back(v);
  }
  return b;
}

double Ecdf::at(double value) const {
  if (x.empty()) return 0.0;
  const auto it = std::upper_bound(x.begin(), x.end(), value);
  if (it == x.begin()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(it - x.begin()) - 1;
  return f[idx];
}

Ecdf ecdf(std::vector<double> sample) {
  ONES_EXPECT(!sample.empty());
  std::sort(sample.begin(), sample.end());
  Ecdf e;
  e.x = std::move(sample);
  e.f.resize(e.x.size());
  const double n = static_cast<double>(e.x.size());
  for (std::size_t i = 0; i < e.x.size(); ++i) {
    e.f[i] = static_cast<double>(i + 1) / n;
  }
  return e;
}

std::string format_box(const BoxStats& b) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.1f min=%.1f q1=%.1f med=%.1f q3=%.1f max=%.1f outliers=%zu",
                b.n, b.mean, b.min, b.q1, b.median, b.q3, b.max, b.outliers.size());
  return buf;
}

}  // namespace ones::stats
