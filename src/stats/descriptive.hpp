// Descriptive statistics used by the evaluation harness: box-plot summaries
// (Figure 15 b/e style) and empirical CDFs (Figure 15 g/h/i style).
#pragma once

#include <string>
#include <vector>

namespace ones::stats {

/// Five-number box-plot summary with Tukey whiskers (1.5 IQR) and outliers.
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double whisker_lo = 0.0;  ///< smallest sample >= q1 - 1.5*IQR
  double whisker_hi = 0.0;  ///< largest  sample <= q3 + 1.5*IQR
  double mean = 0.0;
  std::size_t n = 0;
  std::vector<double> outliers;
};

BoxStats box_stats(std::vector<double> sample);

/// Empirical CDF: for each requested x, the fraction of samples <= x.
struct Ecdf {
  std::vector<double> x;  ///< sorted sample values
  std::vector<double> f;  ///< cumulative fraction at each x

  /// Fraction of samples <= value.
  double at(double value) const;
};

Ecdf ecdf(std::vector<double> sample);

/// Render a one-line textual summary (for bench/report output).
std::string format_box(const BoxStats& b);

}  // namespace ones::stats
