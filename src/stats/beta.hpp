// Beta distribution Be(alpha, beta) on (0, 1).
//
// ONES models the *training progress* rho of each job as a Beta random
// variable (paper §3.2.1, Eq. 6): alpha approximates the number of processed
// epochs and beta the predicted number of epochs still to process. This file
// provides the density, CDF (regularized incomplete beta), moments, quantiles
// and sampling needed by the predictor and by Algorithm 1.
#pragma once

#include <utility>

#include "common/rng.hpp"

namespace ones::stats {

/// Natural log of the Beta function B(a, b).
double log_beta_fn(double a, double b);

/// Digamma function psi(x) = d/dx ln Gamma(x), x > 0 (recurrence +
/// asymptotic series). Needed for Beta log-likelihood gradients.
double digamma(double x);

/// Regularized incomplete beta function I_x(a, b) for x in [0, 1].
double incomplete_beta(double a, double b, double x);

class BetaDistribution {
 public:
  /// Requires alpha > 0 and beta > 0.
  BetaDistribution(double alpha, double beta);

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

  double mean() const { return alpha_ / (alpha_ + beta_); }
  double variance() const;
  /// Mode; defined for alpha, beta > 1 (the unimodal regime the paper
  /// enforces via its >= 1 thresholds). Falls back to the mean otherwise.
  double mode() const;

  double pdf(double x) const;
  double log_pdf(double x) const;
  double cdf(double x) const;
  /// Inverse CDF by bisection (accurate to ~1e-10).
  double quantile(double p) const;

  /// Central credible interval [lo, hi] covering `coverage` mass
  /// (e.g. 0.9 for the paper's Figure 6 bands).
  std::pair<double, double> credible_interval(double coverage) const;

  double sample(Rng& rng) const { return rng.beta(alpha_, beta_); }

 private:
  double alpha_;
  double beta_;
};

}  // namespace ones::stats
