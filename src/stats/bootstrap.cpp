#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"

namespace ones::stats {

namespace {

BootstrapCi percentile_interval(double point, std::vector<double> stats_sample,
                                double coverage) {
  std::sort(stats_sample.begin(), stats_sample.end());
  BootstrapCi ci;
  ci.point = point;
  ci.coverage = coverage;
  ci.lo = quantile(stats_sample, 0.5 * (1.0 - coverage));
  ci.hi = quantile(stats_sample, 1.0 - 0.5 * (1.0 - coverage));
  return ci;
}

}  // namespace

BootstrapCi bootstrap_mean_ci(const std::vector<double>& sample, int resamples,
                              double coverage, std::uint64_t seed) {
  ONES_EXPECT(!sample.empty());
  ONES_EXPECT(resamples > 0);
  ONES_EXPECT(coverage > 0.0 && coverage < 1.0);
  Rng rng(seed);
  const std::int64_t n = static_cast<std::int64_t>(sample.size());
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double s = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      s += sample[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    }
    means.push_back(s / static_cast<double>(n));
  }
  return percentile_interval(mean_of(sample), std::move(means), coverage);
}

BootstrapCi bootstrap_paired_mean_diff_ci(const std::vector<double>& x,
                                          const std::vector<double>& y, int resamples,
                                          double coverage, std::uint64_t seed) {
  ONES_EXPECT_MSG(x.size() == y.size() && !x.empty(), "paired samples required");
  std::vector<double> diff(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) diff[i] = x[i] - y[i];
  return bootstrap_mean_ci(diff, resamples, coverage, seed);
}

BootstrapCi bootstrap_relative_reduction_ci(const std::vector<double>& x,
                                            const std::vector<double>& y, int resamples,
                                            double coverage, std::uint64_t seed) {
  ONES_EXPECT_MSG(x.size() == y.size() && !x.empty(), "paired samples required");
  ONES_EXPECT(resamples > 0);
  Rng rng(seed);
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  std::vector<double> stats_sample;
  stats_sample.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double sx = 0.0, sy = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const auto k = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      sx += x[k];
      sy += y[k];
    }
    if (sy > 0.0) stats_sample.push_back((sy - sx) / sy);
  }
  ONES_EXPECT_MSG(!stats_sample.empty(), "degenerate bootstrap (all-zero baseline)");
  const double point = (mean_of(y) - mean_of(x)) / mean_of(y);
  return percentile_interval(point, std::move(stats_sample), coverage);
}

}  // namespace ones::stats
