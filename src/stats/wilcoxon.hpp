// Non-parametric Wilcoxon tests (paper Table 4).
//
// The paper compares per-job JCT of ONES against each baseline with a
// Wilcoxon test: a two-sided test (hypothesis: distributions equivalent,
// rejected with p << 0.05) and a "one-sided negative test" (hypothesis:
// ONES results are smaller; accepted because p is close to 1 under the
// paper's reporting convention). We provide both the paired signed-rank
// test (same jobs under two schedulers) and the unpaired rank-sum
// (Mann–Whitney) test, each with normal approximation + tie correction.
#pragma once

#include <vector>

namespace ones::stats {

struct WilcoxonResult {
  double statistic = 0.0;    ///< W (signed-rank) or U (rank-sum)
  double z = 0.0;            ///< normal-approximation z score
  double p_two_sided = 1.0;  ///< H1: distributions differ
  double p_less = 1.0;       ///< H1: first sample stochastically smaller
  double p_greater = 1.0;    ///< H1: first sample stochastically greater
  std::size_t n_effective = 0;  ///< pairs used (zeros dropped) / total ranks
};

/// Paired Wilcoxon signed-rank test on samples x, y of equal length.
/// Zero differences are dropped (Wilcoxon's original treatment).
WilcoxonResult wilcoxon_signed_rank(const std::vector<double>& x,
                                    const std::vector<double>& y);

/// Unpaired Wilcoxon rank-sum (Mann–Whitney U) test.
WilcoxonResult wilcoxon_rank_sum(const std::vector<double>& x,
                                 const std::vector<double>& y);

/// Standard normal CDF.
double normal_cdf(double z);

}  // namespace ones::stats
