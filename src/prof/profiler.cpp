#include "prof/profiler.hpp"

#include <chrono>

#include "common/expect.hpp"

namespace ones::prof {

// ones-lint-begin: wall-clock-ok(host-time profiler, DESIGN.md §14: observability only — off unless --prof-dir, never a cache-key input, never a simulated quantity)
std::uint64_t Profiler::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
// ones-lint-end: wall-clock-ok

Profiler::Profiler() : epoch_ns_(now_ns()) {
  nodes_.emplace_back();  // root pseudo-span
}

void Profiler::enable_timeline(std::size_t max_events) {
  ONES_EXPECT_MSG(max_events > 0, "timeline capacity must be positive");
  timeline_cap_ = max_events;
  events_.reserve(std::min(max_events, std::size_t{4096}));
}

std::size_t Profiler::enter(std::string_view name) {
  ONES_EXPECT_MSG(name.find('/') == std::string_view::npos,
                  "span names must not contain '/', the path separator");
  Node& cur = nodes_[current_];
  const auto it = cur.children.find(name);
  std::size_t node;
  if (it != cur.children.end()) {
    node = it->second;
  } else {
    node = nodes_.size();
    nodes_.emplace_back();
    nodes_.back().name = std::string(name);
    nodes_.back().parent = current_;
    // cur may dangle after emplace_back — re-index.
    nodes_[current_].children.emplace(std::string(name), node);
  }
  current_ = node;
  return node;
}

void Profiler::exit(std::size_t node, std::uint64_t start_ns) {
  const std::uint64_t now = now_ns();
  const std::uint64_t dur = now >= start_ns ? now - start_ns : 0;
  Node& n = nodes_[node];
  ++n.count;
  n.total_ns += dur;
  nodes_[n.parent].child_ns += dur;
  current_ = n.parent;
  if (timeline_cap_ > 0) {
    if (events_.size() < timeline_cap_) {
      const std::uint64_t rel =
          start_ns >= epoch_ns_ ? start_ns - epoch_ns_ : 0;
      events_.push_back({node, rel, dur});
    } else {
      ++dropped_;
    }
  }
}

void Profiler::append_stats(std::size_t node, const std::string& prefix,
                            std::vector<SpanStats>& out) const {
  const Node& n = nodes_[node];
  std::string path = prefix;
  if (node != 0) {
    if (!path.empty()) path += '/';
    path += n.name;
    SpanStats s;
    s.path = path;
    s.count = n.count;
    s.total_ns = n.total_ns;
    s.self_ns = n.total_ns >= n.child_ns ? n.total_ns - n.child_ns : 0;
    out.push_back(std::move(s));
  }
  // std::map children: lexicographic order, so the flattened list is sorted
  // by path without a separate sort pass.
  for (const auto& [name, child] : n.children) append_stats(child, path, out);
}

std::vector<SpanStats> Profiler::stats() const {
  std::vector<SpanStats> out;
  out.reserve(nodes_.size());
  append_stats(0, "", out);
  return out;
}

std::string Profiler::path_of(std::size_t node) const {
  ONES_EXPECT_MSG(node < nodes_.size(), "unknown profiler node");
  std::string path;
  for (std::size_t i = node; i != 0; i = nodes_[i].parent) {
    path = path.empty() ? nodes_[i].name : nodes_[i].name + "/" + path;
  }
  return path;
}

void ProfileRollup::add(const std::vector<SpanStats>& stats) {
  for (const SpanStats& s : stats) {
    Agg& agg = by_path_[s.path];
    agg.count += s.count;
    agg.total_ns += s.total_ns;
    agg.self_ns += s.self_ns;
  }
}

std::vector<SpanStats> ProfileRollup::stats() const {
  std::vector<SpanStats> out;
  out.reserve(by_path_.size());
  for (const auto& [path, agg] : by_path_) {
    out.push_back({path, agg.count, agg.total_ns, agg.self_ns});
  }
  return out;
}

}  // namespace ones::prof
