#include "prof/export.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"

namespace ones::prof {

namespace fs = std::filesystem;

std::string format_profile(const std::vector<SpanStats>& stats) {
  std::string out = "[prof] span                                     count     total(ms)      self(ms)\n";
  char line[256];
  for (const SpanStats& s : stats) {
    std::snprintf(line, sizeof(line), "[prof] %-40s %9llu %13.3f %13.3f\n",
                  s.path.c_str(), static_cast<unsigned long long>(s.count),
                  static_cast<double>(s.total_ns) / 1e6,
                  static_cast<double>(s.self_ns) / 1e6);
    out += line;
  }
  return out;
}

void write_profile_json(std::ostream& out, const std::vector<SpanStats>& stats) {
  out << "{\"schema\":1,\"spans\":[";
  bool first = true;
  for (const SpanStats& s : stats) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "{\"path\":" << json_quote(s.path) << ",\"count\":" << s.count
        << ",\"total_ns\":" << s.total_ns << ",\"self_ns\":" << s.self_ns << '}';
  }
  out << "\n]}\n";
}

namespace {

/// Distinguishes concurrent writers targeting the same final path (identical
/// duplicate specs in one grid); the value never reaches the profile bytes.
std::string unique_tmp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  return ".tmp" + std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

void write_profile_file(const std::string& dir, const std::string& stem,
                        const std::vector<SpanStats>& stats) {
  fs::create_directories(dir);
  const std::string path = (fs::path(dir) / (stem + ".prof.json")).string();
  const std::string tmp = path + unique_tmp_suffix();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open profile file under '" + dir + "'");
    write_profile_json(out, stats);
    if (!out.good()) throw std::runtime_error("failed writing '" + tmp + "'");
  }
  fs::rename(tmp, path);
}

std::vector<std::string> chrome_span_events(const Profiler& profiler) {
  std::vector<std::string> events;
  events.reserve(profiler.timeline().size() + 2);
  // Dedicated host-time process track: pid 0 carries the sim-time job
  // slices, pid 1 the wall-clock profiler spans.
  events.push_back(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":"
      "{\"name\":\"host profiler (wall-clock)\"}}");
  events.push_back(
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":"
      "{\"name\":\"spans\"}}");
  for (const Profiler::TimelineEvent& ev : profiler.timeline()) {
    std::ostringstream os;
    os << "{\"name\":" << json_quote(profiler.path_of(ev.node))
       << ",\"cat\":\"host\",\"ph\":\"X\",\"ts\":"
       << json_double(static_cast<double>(ev.start_ns) / 1e3)
       << ",\"dur\":" << json_double(static_cast<double>(ev.dur_ns) / 1e3)
       << ",\"pid\":1,\"tid\":0}";
    events.push_back(os.str());
  }
  if (profiler.timeline_dropped() > 0) {
    std::ostringstream os;
    os << "{\"name\":\"profiler timeline truncated: "
       << profiler.timeline_dropped()
       << " spans dropped\",\"cat\":\"host\",\"ph\":\"i\",\"s\":\"p\",\"ts\":0,"
       << "\"pid\":1,\"tid\":0}";
    events.push_back(os.str());
  }
  return events;
}

}  // namespace ones::prof
