// Profile exporters (DESIGN.md §14): the stderr summary table, the
// `<stem>.prof.json` side file, and Chrome trace-event JSON strings that
// merge a run's host spans into its `--trace-dir` Perfetto trace.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "prof/profiler.hpp"

namespace ones::prof {

/// Human-readable span table (counts, total/self milliseconds), one line per
/// span path, each prefixed "[prof] ". For stderr: host times are wall-clock
/// noise and must never reach the byte-stable metric stdout.
std::string format_profile(const std::vector<SpanStats>& stats);

/// Deterministic-layout profile JSON:
///   {"schema":1,"spans":[{"path":...,"count":N,"total_ns":N,"self_ns":N},...]}
/// Span paths and counts are reproducible; the nanosecond fields are host
/// measurements.
void write_profile_json(std::ostream& out, const std::vector<SpanStats>& stats);

/// Write `<dir>/<stem>.prof.json` (creating `dir` if needed) via a unique
/// temp file renamed into place, the trace/metrics exporter convention: an
/// interrupted run never leaves a file that looks complete.
void write_profile_file(const std::string& dir, const std::string& stem,
                        const std::vector<SpanStats>& stats);

/// Serialize the profiler's captured timeline as Chrome trace-event objects
/// (one JSON object string per span, plus pid/thread metadata), suitable for
/// ChromeTraceSink::raw_event. Host spans render on their own process track
/// (pid 1) so they sit next to — but never interleave with — the sim-time
/// job tracks on pid 0. Timestamps are microseconds since the profiler's
/// epoch; requires `enable_timeline`.
std::vector<std::string> chrome_span_events(const Profiler& profiler);

}  // namespace ones::prof
