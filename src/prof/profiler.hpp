// Host-time profiler (DESIGN.md §14).
//
// Hierarchical wall-clock spans over the HOST cost of a run: engine
// pop/schedule/cancel, scheduler decision phases, evolution operator steps,
// predictor fits, orchestrator cache and export I/O. Strictly observability:
// the profiler follows the trace-sink contract (§8) — emitters hold a plain
// `prof::Profiler*` defaulting to null, every span costs one predictable
// branch when profiling is off, attaching a profiler must never change
// simulated results, and the profiler is deliberately NOT an orchestrator
// cache-key input.
//
// Aggregation is BY SPAN PATH — the '/'-joined chain of enclosing span
// names — never by thread or timestamp. Counts and durations are exact
// uint64 nanosecond sums, so merging per-thread (or per-run) profiles is
// associative and commutative: the merged span paths and counts are
// bit-identical for any `--threads` value; only the nanosecond magnitudes
// are host noise.
//
// A Profiler instance is single-threaded (one per run / per pool worker,
// the MetricsRegistry ownership model); ProfileRollup merges many.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ones::prof {

/// Aggregated statistics of one span path. `self_ns` is total time minus
/// the time spent in enclosed (child) spans, saturated at zero.
struct SpanStats {
  std::string path;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
};

class Profiler {
 public:
  /// Timeline events kept when `enable_timeline` is on with no explicit cap.
  static constexpr std::size_t kDefaultTimelineCap = std::size_t{1} << 17;

  Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Additionally record up to `max_events` individual (start, duration)
  /// span instances for the Perfetto export; further spans still aggregate
  /// but bump `timeline_dropped()`. Off by default: aggregation alone never
  /// retains per-instance data, so memory stays O(distinct span paths).
  void enable_timeline(std::size_t max_events = kDefaultTimelineCap);
  bool timeline_enabled() const { return timeline_cap_ > 0; }
  std::uint64_t timeline_dropped() const { return dropped_; }

  /// Open a span named `name` under the currently-open span (Scope does
  /// this; call pairs must nest LIFO). Returns the span's node handle.
  /// `name` must not contain '/', the path separator.
  std::size_t enter(std::string_view name);
  /// Close the span opened by the matching `enter`; `start_ns` is the
  /// `now_ns()` reading taken right after that `enter`.
  void exit(std::size_t node, std::uint64_t start_ns);

  /// Monotonic host clock in nanoseconds. Wall-clock is allowed here ONLY
  /// because profiles are cosmetic observability output (stderr / side
  /// files), never a simulated quantity.
  static std::uint64_t now_ns();

  /// Aggregated spans sorted by path (deterministic order). The root
  /// pseudo-span is excluded.
  std::vector<SpanStats> stats() const;

  /// '/'-joined path of a node handle returned by `enter`.
  std::string path_of(std::size_t node) const;

  /// One retained span instance; times are relative to the profiler's
  /// construction (its epoch).
  struct TimelineEvent {
    std::size_t node = 0;
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
  };
  const std::vector<TimelineEvent>& timeline() const { return events_; }

 private:
  struct Node {
    std::string name;
    std::size_t parent = 0;
    /// Transparent comparator: hot-path lookup by string_view allocates
    /// nothing on a hit (every visit after a path's first).
    std::map<std::string, std::size_t, std::less<>> children;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t child_ns = 0;
  };

  void append_stats(std::size_t node, const std::string& prefix,
                    std::vector<SpanStats>& out) const;

  std::vector<Node> nodes_;   ///< node 0 is the root pseudo-span
  std::size_t current_ = 0;   ///< innermost open span
  std::uint64_t epoch_ns_ = 0;
  std::size_t timeline_cap_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<TimelineEvent> events_;
};

/// RAII span. A null profiler — the off-by-default state — makes both the
/// constructor and destructor a branch and nothing else: no clock read, no
/// allocation (asserted in tests/prof_test.cpp).
class Scope {
 public:
  Scope(Profiler* profiler, std::string_view name) : profiler_(profiler) {
    if (profiler_ != nullptr) {
      node_ = profiler_->enter(name);
      start_ns_ = Profiler::now_ns();
    }
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
  ~Scope() {
    if (profiler_ != nullptr) profiler_->exit(node_, start_ns_);
  }

 private:
  Profiler* profiler_;
  std::size_t node_ = 0;
  std::uint64_t start_ns_ = 0;
};

/// Order-independent merge of per-thread / per-run profiles, keyed by span
/// path. Integer sums make `add` associative and commutative, which is the
/// whole determinism argument for profiling under the exp thread pool.
class ProfileRollup {
 public:
  void add(const Profiler& profiler) { add(profiler.stats()); }
  void add(const std::vector<SpanStats>& stats);

  /// Merged spans sorted by path.
  std::vector<SpanStats> stats() const;
  bool empty() const { return by_path_.empty(); }

 private:
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
  };
  std::map<std::string, Agg> by_path_;
};

}  // namespace ones::prof
