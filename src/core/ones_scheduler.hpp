// ONES — the ONline Evolutionary Scheduler (the paper's contribution).
//
// Event-driven (no fixed rescheduling interval): every job arrival, epoch
// completion and job completion advances the evolutionary search a few
// iterations against live cluster state, and the best candidate schedule is
// deployed when the update condition holds. Per the paper (§3.2.2 "Update"),
// the schedule is not replaced more often than once per epoch of every
// running job — except that ONES responds immediately when GPUs free up
// (job completions) or new jobs arrive to an under-full cluster, which is
// exactly the responsiveness advantage §2.1 claims over interval-based
// schedulers.
//
// Re-configurations deploy through the elastic batch-size scaling mechanism
// (§3.3), so the cost charged per change is ~1 s instead of tens of seconds.
#pragma once

#include <unordered_map>

#include "core/batch_policy.hpp"
#include "core/evolution.hpp"
#include "predict/progress_predictor.hpp"
#include "sched/scheduler.hpp"

namespace ones::core {

struct OnesConfig {
  EvolutionConfig evolution;
  BatchPolicyConfig policy;
  predict::PredictorConfig predictor;
  /// Ablation: disable the Beta-progress predictor (rho fixed at 1/2).
  bool use_predictor = true;
};

class OnesScheduler : public sched::Scheduler {
 public:
  explicit OnesScheduler(const OnesConfig& config = {});

  std::string name() const override { return "ONES"; }
  sched::ScalingMechanism mechanism() const override {
    return sched::ScalingMechanism::Elastic;
  }

  std::optional<cluster::Assignment> on_event(const sched::ClusterState& state,
                                              const sched::SchedulerEvent& event) override;

  /// Propagates the registry into the evolutionary search and the predictor
  /// so their internal instruments share the run's registry.
  void set_metrics(telemetry::MetricsRegistry* metrics) override {
    sched::Scheduler::set_metrics(metrics);
    evolution_.set_metrics(metrics);
    predictor_.set_metrics(metrics);
  }

  /// Propagates the profiler the same way (DESIGN.md §14): evolution
  /// operator spans and predictor fit spans land in the run's profile.
  void set_profiler(prof::Profiler* profiler) override {
    sched::Scheduler::set_profiler(profiler);
    evolution_.set_profiler(profiler);
    predictor_.set_profiler(profiler);
  }

  // ---- introspection (tests, examples, benches) ----
  const predict::ProgressPredictor& predictor() const { return predictor_; }
  const BatchLimitManager& limits() const { return limits_; }
  Evolution& evolution() { return evolution_; }
  std::uint64_t evolution_rounds() const { return rounds_; }

 private:
  bool update_condition(const sched::ClusterState& state,
                        const sched::SchedulerEvent& event) const;
  void note_deployed(const sched::ClusterState& state, const cluster::Assignment& next);

  OnesConfig config_;
  predict::ProgressPredictor predictor_;
  BatchLimitManager limits_;
  Evolution evolution_;
  /// epochs_completed of each running job at the moment of the last deploy.
  // ones-lint: unordered-ok(find-by-JobId only (progress gate); rebuilt from running_jobs() order on each deploy)
  std::unordered_map<JobId, int> epochs_at_deploy_;
  std::uint64_t rounds_ = 0;
};

}  // namespace ones::core
