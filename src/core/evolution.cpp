#include "core/evolution.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "common/expect.hpp"
#include "energy/power_model.hpp"

namespace ones::core {

const sched::JobView& EvolutionContext::view(JobId job) const {
  const sched::JobView* v = state->job(job);
  ONES_EXPECT_MSG(v != nullptr, "candidate references a job outside the state");
  return *v;
}

double EvolutionContext::expected_remaining(const sched::JobView& job) const {
  auto it = yrem_cache.find(job.spec.id);
  if (it != yrem_cache.end()) return it->second;
  const double y = predictor != nullptr ? predictor->expected_remaining_samples(job)
                                        : job.dataset_size();
  yrem_cache.emplace(job.spec.id, y);
  return y;
}

EvolutionContext make_context(const sched::ClusterState& state,
                              const predict::ProgressPredictor* predictor,
                              const BatchLimitManager* limits) {
  EvolutionContext ctx;
  ctx.state = &state;
  ctx.predictor = predictor;
  ctx.limits = limits;
  return ctx;
}

Evolution::Evolution(const EvolutionConfig& config) : config_(config), rng_(config.seed) {}

std::size_t Evolution::population_size(const EvolutionContext& ctx) const {
  if (config_.population_size > 0) return config_.population_size;
  return static_cast<std::size_t>(ctx.state->topology->total_gpus());
}

int Evolution::start_batch(const sched::JobView& job, const EvolutionContext& ctx) const {
  const int r = effective_limit(job, ctx);
  return std::max(1, std::min(r, job.profile->max_local_batch));
}

double Evolution::remaining_samples(const sched::JobView& job, const EvolutionContext& ctx,
                                    double rho) const {
  (void)ctx;
  // One-epoch floor: a job that has processed nothing would otherwise have
  // Y_processed * (1/rho - 1) == 0 and be invisible to the objective.
  const double y_proc = std::max(job.samples_processed, job.dataset_size());
  rho = std::clamp(rho, 1e-3, 1.0 - 1e-3);
  return y_proc * (1.0 / rho - 1.0);
}

int Evolution::effective_limit(const sched::JobView& job,
                               const EvolutionContext& ctx) const {
  int r = ctx.limits->limit(job);
  if (job.status == sched::JobStatus::Running && job.global_batch > 0) {
    // Gradual-scaling rule: at most one doubling per re-configuration.
    r = std::min(r, 2 * job.global_batch);
  }
  return std::max(r, 1);
}

RhoMap Evolution::sample_rho(const EvolutionContext& ctx) {
  RhoMap rho;
  for (const sched::JobView* j : ctx.state->active_jobs()) {
    if (ctx.predictor != nullptr) {
      const auto dist = ctx.predictor->predict(*j);
      rho[j->spec.id] = std::clamp(dist.sample(rng_), 1e-3, 1.0 - 1e-3);
    } else {
      rho[j->spec.id] = 0.5;  // predictor ablation: uninformed midpoint
    }
  }
  return rho;
}

RhoMap Evolution::mean_rho(const EvolutionContext& ctx) const {
  RhoMap rho;
  for (const sched::JobView* j : ctx.state->active_jobs()) {
    if (ctx.predictor != nullptr) {
      rho[j->spec.id] = std::clamp(ctx.predictor->predict(*j).mean(), 1e-3, 1.0 - 1e-3);
    } else {
      rho[j->spec.id] = 0.5;
    }
  }
  return rho;
}

double Evolution::score(const cluster::Assignment& candidate, const EvolutionContext& ctx,
                        const RhoMap& rho) const {
  // Eq. 8: sum_j  Y_processed_j * c_j / X_j * (1/rho_j - 1)
  //       = sum_j  Y_remaining_j * c_j / X_j  =  sum_j  T_j * c_j  (SRUF).
  double total = 0.0;
  const bool energy_aware =
      config_.lambda_energy != 0.0 && ctx.state->power != nullptr;
  for (JobId j : candidate.running_jobs()) {
    const auto& v = ctx.view(j);
    const double x = ctx.state->oracle->estimate_placed_sps(v, candidate);
    auto it = rho.find(j);
    const double r = it != rho.end() ? it->second : 0.5;
    const double rem = remaining_samples(v, ctx, r);
    total += rem * static_cast<double>(candidate.gpu_count(j)) / x;
    if (energy_aware) {
      // Predicted joules to finish under this placement, in TDP-GPU-second
      // units so lambda trades them against the SRUF GPU-seconds above.
      const auto gpus = candidate.gpus_of(j);
      std::vector<int> batches;
      batches.reserve(gpus.size());
      for (GpuId g : gpus) batches.push_back(candidate.slot(g).local_batch);
      const double watts = ctx.state->power->job_watts(
          *v.profile, batches, ctx.state->topology->link_profile(gpus));
      total += config_.lambda_energy * (rem / x) * watts /
               ctx.state->power->config().gpu_busy_w;
    }
  }
  // Switching surcharge relative to the live schedule: re-configuring or
  // preempting running jobs is not free, so a challenger must beat the
  // incumbent by at least the cost of deploying it.
  const cluster::Assignment& live = *ctx.state->current;
  for (JobId j : candidate.running_jobs()) {
    const auto& v = ctx.view(j);
    if (v.status != sched::JobStatus::Running) continue;  // resume charged below
    if (!live.same_placement(candidate, j)) {
      total += config_.switch_penalty_s * static_cast<double>(candidate.gpu_count(j));
    }
  }
  for (JobId j : live.running_jobs()) {
    if (candidate.gpu_count(j) == 0) {
      total += config_.preempt_penalty_s * static_cast<double>(live.gpu_count(j));
    }
  }
  return total;
}

void Evolution::clamp_job(cluster::Assignment& candidate, JobId job,
                          const EvolutionContext& ctx) {
  auto gpus = candidate.gpus_of(job);
  if (gpus.empty()) return;
  const auto& v = ctx.view(job);
  const int r_limit = effective_limit(v, ctx);
  const bool warm = ctx.limits->warmed_up(v);

  int target_c = static_cast<int>(gpus.size());
  if (!warm) target_c = 1;                       // Start policy: one GPU
  target_c = std::min(target_c, r_limit);        // every worker needs a sample
  target_c = std::max(target_c, 1);
  while (static_cast<int>(gpus.size()) > target_c) {
    candidate.clear(gpus.back());
    gpus.pop_back();
  }

  const int max_b = std::min(r_limit, target_c * v.profile->max_local_batch);
  int b = std::clamp(candidate.global_batch(job), target_c, max_b);
  // Even re-split (repairs crossover children with lopsided inherited genes).
  const int base = b / target_c;
  const int rem = b % target_c;
  for (int i = 0; i < target_c; ++i) {
    candidate.place(gpus[static_cast<std::size_t>(i)], job, base + (i < rem ? 1 : 0));
  }
}

void Evolution::repair(cluster::Assignment& candidate, const EvolutionContext& ctx) {
  for (JobId j : candidate.running_jobs()) {
    const sched::JobView* v = ctx.state->job(j);
    if (v == nullptr || v->status == sched::JobStatus::Completed) {
      candidate.evict(j);
    }
  }
  for (JobId j : candidate.running_jobs()) {
    clamp_job(candidate, j, ctx);
  }
}

void Evolution::fill_idle(cluster::Assignment& candidate, const EvolutionContext& ctx) {
  struct Action {
    bool resume = false;
    JobId job = kInvalidJob;
  };

  for (;;) {
    const auto idle = candidate.idle_gpus();
    if (idle.empty()) return;

    std::vector<Action> actions;
    std::vector<double> weights;

    // Resume options: active jobs absent from this candidate start on one GPU.
    for (const sched::JobView* v : ctx.state->active_jobs()) {
      if (candidate.gpu_count(v->spec.id) > 0) continue;
      const double y = ctx.expected_remaining(*v);
      actions.push_back({true, v->spec.id});
      weights.push_back(std::max(y, 1.0));
    }

    // Scale-up options: running jobs whose limit R still allows more batch,
    // gaining floor(R*c/B) - c more GPUs (Figure 7's utilization-gain
    // sampling).
    for (JobId j : candidate.running_jobs()) {
      const auto& v = ctx.view(j);
      if (!ctx.limits->warmed_up(v)) continue;
      const int r_limit = effective_limit(v, ctx);
      const int b = candidate.global_batch(j);
      const int c = candidate.gpu_count(j);
      if (b >= r_limit) continue;
      const int local = std::max(1, b / c);
      const int target_c =
          std::min(static_cast<int>(r_limit / local), c + static_cast<int>(idle.size()));
      if (target_c <= c) continue;
      const int b2 = std::min(r_limit, local * target_c);

      const double y = ctx.expected_remaining(v);
      const double x1 = ctx.state->oracle->estimate_placed_sps(v, candidate);
      const double x2 = ctx.state->oracle->estimate_sps(
          v, target_c, b2, ctx.state->oracle->can_colocate(target_c));
      const double gain = std::max(y, 1.0) * (static_cast<double>(c) / x1 -
                                              static_cast<double>(target_c) / x2);
      actions.push_back({false, j});
      weights.push_back(std::max(gain, 1e-6));
    }

    // Spread options: when batch limits bind, idle GPUs can still speed a
    // job up by spreading its (fixed) batch over more workers — idle GPUs
    // have no opportunity cost, and Eq. 4 wants the cluster saturated.
    for (JobId j : candidate.running_jobs()) {
      const auto& v = ctx.view(j);
      if (!ctx.limits->warmed_up(v)) continue;
      const int b = candidate.global_batch(j);
      const int c = candidate.gpu_count(j);
      const int target_c = std::min({2 * c, b, c + static_cast<int>(idle.size())});
      if (target_c <= c) continue;
      const double x1 = ctx.state->oracle->estimate_placed_sps(v, candidate);
      const double x2 = ctx.state->oracle->estimate_sps(
          v, target_c, b, ctx.state->oracle->can_colocate(target_c));
      if (x2 <= x1 * 1.02) continue;  // not worth the extra workers
      const double y = ctx.expected_remaining(v);
      const double gain = std::max(y, 1.0) * (1.0 / x1 - 1.0 / x2);
      actions.push_back({false, j});
      weights.push_back(std::max(gain, 1e-6));
    }

    if (actions.empty()) return;  // nothing can use the idle GPUs
    const Action act = actions[rng_.weighted_index(weights)];

    if (act.resume) {
      const auto& v = ctx.view(act.job);
      candidate.place(idle.front(), act.job, start_batch(v, ctx));
    } else {
      const auto& v = ctx.view(act.job);
      const int r_limit = effective_limit(v, ctx);
      const int b = candidate.global_batch(act.job);
      const int c = candidate.gpu_count(act.job);
      const int local = std::max(1, b / c);
      // Grow the worker set: up to the batch-limit headroom (grow-batch
      // action) or up to 2x workers at the same batch (spread action) —
      // whichever the idle pool allows.
      const int grow_c = std::max(static_cast<int>(r_limit / local), std::min(2 * c, b));
      const int target_c = std::min(grow_c, c + static_cast<int>(idle.size()));
      if (target_c <= c) continue;
      for (int k = 0; k < target_c - c; ++k) {
        candidate.place(idle[static_cast<std::size_t>(k)], act.job, 1);
      }
      // Raise the batch toward the limit with the new worker count, then
      // re-split evenly (clamp_job also enforces memory limits).
      auto gpus = candidate.gpus_of(act.job);
      const int b2 = std::clamp(
          std::min(r_limit, local * static_cast<int>(gpus.size())),
          static_cast<int>(gpus.size()),
          static_cast<int>(gpus.size()) * v.profile->max_local_batch);
      const int base = b2 / static_cast<int>(gpus.size());
      const int rem = b2 % static_cast<int>(gpus.size());
      for (std::size_t i = 0; i < gpus.size(); ++i) {
        candidate.place(gpus[i], act.job, base + (static_cast<int>(i) < rem ? 1 : 0));
      }
      clamp_job(candidate, act.job, ctx);
    }
  }
}

void Evolution::refresh(cluster::Assignment& candidate, const EvolutionContext& ctx) {
  // (1) Clean up GPUs of completed (or unknown) jobs.
  for (JobId j : candidate.running_jobs()) {
    const sched::JobView* v = ctx.state->job(j);
    if (v == nullptr || v->status == sched::JobStatus::Completed) {
      candidate.evict(j);
    }
  }

  // (2) Scale down any job whose batch exceeds its current limit R:
  //     drop to floor(R*c/B) GPUs and batch R (paper's rule), then clamp.
  for (JobId j : candidate.running_jobs()) {
    const auto& v = ctx.view(j);
    const int r_limit = effective_limit(v, ctx);
    const int b = candidate.global_batch(j);
    if (r_limit < b) {
      const int c = candidate.gpu_count(j);
      const int target_c =
          std::max(1, static_cast<int>(static_cast<std::int64_t>(r_limit) * c / b));
      auto gpus = candidate.gpus_of(j);
      while (static_cast<int>(gpus.size()) > target_c) {
        candidate.clear(gpus.back());
        gpus.pop_back();
      }
      const int base = std::max(r_limit, target_c) / target_c;
      for (std::size_t i = 0; i < gpus.size(); ++i) candidate.place(gpus[i], j, base);
    }
    clamp_job(candidate, j, ctx);
  }

  // (3) Preferential allocation of newly arrived jobs (never ran, absent
  //     from this candidate): one GPU each; if the candidate lacks idle
  //     GPUs, take them from the jobs with the largest executed time.
  std::vector<const sched::JobView*> fresh;
  for (const sched::JobView* v : ctx.state->active_jobs()) {
    if (v->samples_processed > 0.0) continue;
    if (v->epochs_completed > 0) continue;
    if (candidate.gpu_count(v->spec.id) > 0) continue;
    fresh.push_back(v);
  }
  const int want =
      std::min<int>(static_cast<int>(fresh.size()), candidate.healthy_count());
  while (candidate.idle_count() < want) {
    // Victim: the candidate job with the largest T_processed.
    JobId victim = kInvalidJob;
    double max_exec = -1.0;
    for (JobId j : candidate.running_jobs()) {
      const auto& v = ctx.view(j);
      if (v.exec_time_s > max_exec) {
        max_exec = v.exec_time_s;
        victim = j;
      }
    }
    if (victim == kInvalidJob) break;
    auto gpus = candidate.gpus_of(victim);
    candidate.clear(gpus.back());
    if (gpus.size() > 1) clamp_job(candidate, victim, ctx);
  }
  {
    auto idle = candidate.idle_gpus();
    std::size_t next = 0;
    for (const sched::JobView* v : fresh) {
      if (next >= idle.size()) break;
      candidate.place(idle[next++], v->spec.id, start_batch(*v, ctx));
    }
  }

  // (4) Fill any remaining idle GPUs (Figure 7).
  fill_idle(candidate, ctx);
}

std::pair<cluster::Assignment, cluster::Assignment> Evolution::crossover(
    const cluster::Assignment& a, const cluster::Assignment& b) {
  ONES_EXPECT(a.num_gpus() == b.num_gpus());
  // Children inherit the parents' health map; the parents never occupy a
  // down GPU, so neither inherited gene can land on one.
  cluster::Assignment c1 = cluster::Assignment::empty_like(a);
  cluster::Assignment c2 = cluster::Assignment::empty_like(a);
  for (int g = 0; g < a.num_gpus(); ++g) {
    const auto& sa = a.slot(g);
    const auto& sb = b.slot(g);
    const bool flip = rng_.bernoulli(0.5);
    const auto& first = flip ? sb : sa;
    const auto& second = flip ? sa : sb;
    if (first.occupied()) c1.place(g, first.job, first.local_batch);
    if (second.occupied()) c2.place(g, second.job, second.local_batch);
  }
  return {std::move(c1), std::move(c2)};
}

void Evolution::mutate(cluster::Assignment& candidate, const EvolutionContext& ctx) {
  for (JobId j : candidate.running_jobs()) {
    if (rng_.bernoulli(config_.mutation_rate)) {
      candidate.evict(j);
    }
  }
  fill_idle(candidate, ctx);
}

cluster::Assignment Evolution::reorder(const cluster::Assignment& candidate) {
  cluster::Assignment packed = cluster::Assignment::empty_like(candidate);
  int next = 0;
  for (JobId j : candidate.running_jobs()) {  // first-occurrence order
    for (GpuId g : candidate.gpus_of(j)) {
      // Pack onto the healthy GPUs in ascending order.
      while (!packed.slot(next).healthy()) ++next;
      packed.place(next++, j, candidate.slot(g).local_batch);
    }
  }
  return packed;
}

void Evolution::ensure_population(const EvolutionContext& ctx) {
  const std::size_t k = population_size(ctx);
  const int n = ctx.state->topology->total_gpus();
  if (!population_.empty() && population_.front().num_gpus() == n &&
      population_.size() == k) {
    return;
  }
  population_.clear();
  population_.reserve(k);
  const std::vector<const sched::JobView*> active = ctx.state->active_jobs();
  for (std::size_t i = 0; i < k; ++i) {
    cluster::Assignment cand = cluster::Assignment::empty_like(*ctx.state->current);
    if (!active.empty()) {
      // The paper's simple initialization: a random job on each healthy GPU.
      for (int g = 0; g < n; ++g) {
        if (!cand.slot(g).healthy()) continue;
        const auto* v = active[static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(active.size()) - 1))];
        cand.place(g, v->spec.id, 1);
      }
      repair(cand, ctx);
    }
    refresh(cand, ctx);
    population_.push_back(std::move(cand));
  }
}

void Evolution::step(const EvolutionContext& ctx) {
  // One evolution generation (DESIGN.md §14): phase spans cover refresh,
  // offspring production (crossover + mutation + repair/reorder) and
  // selection, nested under `evolve.step`.
  const prof::Scope step_span(profiler_, "evolve.step");
  ensure_population(ctx);
  const std::size_t k = population_size(ctx);
  std::uint64_t crossovers = 0, mutations = 0, reorders = 0;

  // Refresh the whole population against real-time status (elitism: the
  // refreshed originals compete with their offspring). Health first: cached
  // genomes may predate a failure/repair (DESIGN.md §13).
  {
    const prof::Scope refresh_span(profiler_, "evolve.refresh");
    for (auto& cand : population_) {
      cand.sync_health(*ctx.state->current);
      refresh(cand, ctx);
      if (config_.use_reorder) {
        cand = reorder(cand);
        ++reorders;
      }
    }
  }

  std::vector<cluster::Assignment> cands = population_;
  cands.reserve(4 * k + 1);

  std::optional<prof::Scope> offspring_span;
  if (profiler_ != nullptr) offspring_span.emplace(profiler_, "evolve.offspring");
  // The incumbent (live schedule) always competes: unless a challenger beats
  // it including switching costs, ONES keeps the cluster undisturbed.
  {
    cluster::Assignment incumbent = *ctx.state->current;
    repair(incumbent, ctx);
    fill_idle(incumbent, ctx);
    cands.push_back(std::move(incumbent));
  }

  if (config_.use_crossover && population_.size() >= 2) {
    const auto pick = [&] {
      return static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(population_.size()) - 1));
    };
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t a = pick(), b = pick();
      if (a == b) b = (b + 1) % population_.size();
      auto [c1, c2] = crossover(population_[a], population_[b]);
      ++crossovers;
      repair(c1, ctx);
      fill_idle(c1, ctx);
      repair(c2, ctx);
      fill_idle(c2, ctx);
      if (config_.use_reorder) {
        c1 = reorder(c1);
        c2 = reorder(c2);
        reorders += 2;
      }
      cands.push_back(std::move(c1));
      cands.push_back(std::move(c2));
    }
  }

  if (config_.use_mutation && !population_.empty()) {
    for (std::size_t i = 0; i < k; ++i) {
      cluster::Assignment m = population_[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(population_.size()) - 1))];
      mutate(m, ctx);
      ++mutations;
      repair(m, ctx);
      fill_idle(m, ctx);
      if (config_.use_reorder) {
        m = reorder(m);
        ++reorders;
      }
      cands.push_back(std::move(m));
    }
  }

  offspring_span.reset();

  // Selection: score every candidate under one rho draw (Algorithm 1) and
  // keep the best K.
  const prof::Scope select_span(profiler_, "evolve.select");
  const RhoMap rho = sample_rho(ctx);
  std::vector<double> scores(cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i) scores[i] = score(cands[i], ctx, rho);
  std::vector<std::size_t> order(cands.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  std::vector<cluster::Assignment> next;
  next.reserve(k);
  for (std::size_t i = 0; i < order.size() && next.size() < k; ++i) {
    next.push_back(std::move(cands[order[i]]));
  }
  population_ = std::move(next);

  if (metrics_ != nullptr) {
    metrics_->counter("ones_evolution_steps_total").add();
    metrics_->counter("ones_crossovers_total").add(static_cast<double>(crossovers));
    metrics_->counter("ones_mutations_total").add(static_cast<double>(mutations));
    metrics_->counter("ones_reorders_total").add(static_cast<double>(reorders));
    metrics_->gauge("ones_best_score").set(scores[order[0]]);
    metrics_->gauge("ones_population_size").set(static_cast<double>(population_.size()));
  }
}

cluster::Assignment Evolution::best(const EvolutionContext& ctx) {
  ensure_population(ctx);
  for (auto& cand : population_) {
    cand.sync_health(*ctx.state->current);
    refresh(cand, ctx);
  }
  const RhoMap rho = mean_rho(ctx);
  std::size_t best_i = 0;
  double best_s = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < population_.size(); ++i) {
    const double s = score(population_[i], ctx, rho);
    if (s < best_s) {
      best_s = s;
      best_i = i;
    }
  }
  return population_[best_i];
}

}  // namespace ones::core
