// Online evolutionary search over cluster schedules (paper §3.2, Figure 5).
//
// The search maintains a population of candidate Assignments (genomes,
// Figure 1). Each iteration:
//   1. *refresh* synchronizes every candidate with real-time job status
//      (clears completed jobs, enforces the batch limits R, gives newly
//      arrived jobs preferential 1-GPU allocations, and fills idle GPUs by
//      probability sampling — Figure 7),
//   2. *uniform crossover* recombines K random parent pairs GPU-by-GPU
//      (Figure 8),
//   3. *uniform mutation* preempts each job of K random candidates with
//      probability theta and refills the freed GPUs (Figure 9),
//   4. *reorder* packs each job's workers contiguously to repair the poor
//      placement the random operators produce (Figure 10),
//   5. candidates are scored by the SRUF objective (Eq. 3/8) under one draw
//      of the predicted progress distributions (Algorithm 1), and the best
//      K survive.
#pragma once

#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/assignment.hpp"
#include "common/rng.hpp"
#include "core/batch_policy.hpp"
#include "predict/progress_predictor.hpp"
#include "prof/profiler.hpp"
#include "sched/oracle.hpp"
#include "sched/scheduler.hpp"
#include "telemetry/registry.hpp"

namespace ones::core {

struct EvolutionConfig {
  /// Population size K; 0 = cluster size (the paper's suggestion).
  std::size_t population_size = 0;
  /// Mutation rate theta: per-job preemption probability.
  double mutation_rate = 0.2;
  /// Evolution iterations executed per scheduler event.
  int rounds_per_event = 1;
  // Operator ablation switches (all on = the paper's algorithm).
  bool use_crossover = true;
  bool use_mutation = true;
  bool use_reorder = true;
  /// Score surcharge (GPU-seconds) for re-configuring a running job relative
  /// to the live schedule — reconfiguration is not free (§3.2.2 "Update"),
  /// so candidates must beat the incumbent by at least the switching cost.
  double switch_penalty_s = 15.0;
  /// Score surcharge for preempting a running job (losing its warm state).
  double preempt_penalty_s = 600.0;
  /// JCT-vs-energy blend (DESIGN.md §10): per job, adds
  ///   lambda_energy * T_j * watts_j / gpu_busy_w
  /// (predicted joules in TDP-GPU-second units) to the SRUF score, steering
  /// the search toward fewer, better-utilized workers. 0 — the default —
  /// skips the term entirely, leaving scores bit-identical to the paper's
  /// objective. Not part of the serialized RunSpec: every non-zero setting
  /// MUST be tagged via RunSpec::variant (DESIGN.md §6) or the run cache
  /// will alias it with default ONES.
  double lambda_energy = 0.0;
  std::uint64_t seed = 99;
};

/// Per-event context: live cluster state plus ONES's predictor and limits.
struct EvolutionContext {
  const sched::ClusterState* state = nullptr;
  /// nullptr = predictor ablation (constant rho = 1/2).
  const predict::ProgressPredictor* predictor = nullptr;
  const BatchLimitManager* limits = nullptr;
  /// Lazily-filled cache of expected remaining workloads (the predictor's
  /// Beta math is too costly to repeat per fill-loop iteration).
  // ones-lint: unordered-ok(memo keyed by JobId; values are order-independent pure functions of the job)
  mutable std::unordered_map<JobId, double> yrem_cache;

  const sched::JobView& view(JobId job) const;
  /// Expected remaining samples of a job (predictor mean, or one dataset
  /// pass when the predictor is ablated), cached per event.
  double expected_remaining(const sched::JobView& job) const;
};

/// Build the lookup map for a state snapshot.
EvolutionContext make_context(const sched::ClusterState& state,
                              const predict::ProgressPredictor* predictor,
                              const BatchLimitManager* limits);

// ones-lint: unordered-ok(rho draws are read back per-JobId in score(); every consumer iterates jobs via state->jobs, never this map)
using RhoMap = std::unordered_map<JobId, double>;

class Evolution {
 public:
  explicit Evolution(const EvolutionConfig& config);

  /// Drop the population (used when the cluster size changes).
  void reset() { population_.clear(); }

  /// Optional metrics registry (not owned; null — the default — disables
  /// instrumentation). `step` records the operator counters
  /// (`ones_crossovers_total`, `ones_mutations_total`, `ones_reorders_total`,
  /// `ones_evolution_steps_total`) and the population fitness gauges
  /// (`ones_best_score`, `ones_population_size`). Never affects the search.
  void set_metrics(telemetry::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Optional host-time profiler (not owned; null — the default — disables
  /// the span sites at one branch each). `step` runs under an `evolve.step`
  /// span with nested `evolve.refresh` / `evolve.offspring` /
  /// `evolve.select` operator-phase spans (DESIGN.md §14). Never affects
  /// the search.
  void set_profiler(prof::Profiler* profiler) { profiler_ = profiler; }

  /// One full evolution iteration: refresh -> operators -> select.
  void step(const EvolutionContext& ctx);

  /// Best candidate of the current population under a fresh rho draw
  /// (runs ensure_population first, so it is always callable).
  cluster::Assignment best(const EvolutionContext& ctx);

  const std::vector<cluster::Assignment>& population() const { return population_; }

  // ---- individual pieces (public for unit tests and benchmarks) ----
  void ensure_population(const EvolutionContext& ctx);
  void refresh(cluster::Assignment& candidate, const EvolutionContext& ctx);
  std::pair<cluster::Assignment, cluster::Assignment> crossover(
      const cluster::Assignment& a, const cluster::Assignment& b);
  void mutate(cluster::Assignment& candidate, const EvolutionContext& ctx);
  static cluster::Assignment reorder(const cluster::Assignment& candidate);
  /// Enforce feasibility: known jobs only, warm-up single-GPU rule, B <= R,
  /// per-GPU memory limits, even batch splits.
  void repair(cluster::Assignment& candidate, const EvolutionContext& ctx);
  /// SRUF score (Eq. 8); lower is better.
  double score(const cluster::Assignment& candidate, const EvolutionContext& ctx,
               const RhoMap& rho) const;
  /// Algorithm 1, lines 1-3: one progress draw per active job.
  RhoMap sample_rho(const EvolutionContext& ctx);

  /// Deterministic rho at the distribution mean. Deployment decisions use
  /// this (stable incumbent-vs-challenger comparison); the stochastic draws
  /// drive exploration inside the evolution loop.
  RhoMap mean_rho(const EvolutionContext& ctx) const;

  /// Predicted remaining workload Y_j (Eq. 7) with a one-epoch floor for
  /// cold jobs (Y_processed = 0 would otherwise make them weightless).
  double remaining_samples(const sched::JobView& job, const EvolutionContext& ctx,
                           double rho) const;

  /// Effective batch limit: the policy limit R further capped at twice the
  /// job's *live* batch — §3.3.2's "scaled within a limited range at each
  /// time" rule that prevents the Fig 13 loss spike.
  int effective_limit(const sched::JobView& job, const EvolutionContext& ctx) const;

 private:
  std::size_t population_size(const EvolutionContext& ctx) const;
  /// Fill idle GPUs by probability sampling over resume / scale-up actions
  /// (Figure 7).
  void fill_idle(cluster::Assignment& candidate, const EvolutionContext& ctx);
  /// Scale a job in-place so that B <= limit, keeping local batches even.
  void clamp_job(cluster::Assignment& candidate, JobId job,
                 const EvolutionContext& ctx);
  int start_batch(const sched::JobView& job, const EvolutionContext& ctx) const;

  EvolutionConfig config_;
  Rng rng_;
  std::vector<cluster::Assignment> population_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  prof::Profiler* profiler_ = nullptr;
};

}  // namespace ones::core
