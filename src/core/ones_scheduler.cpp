#include "core/ones_scheduler.hpp"

#include "common/expect.hpp"

namespace ones::core {

OnesScheduler::OnesScheduler(const OnesConfig& config)
    : config_(config),
      predictor_(config.predictor),
      limits_(config.policy),
      evolution_(config.evolution) {}

bool OnesScheduler::update_condition(const sched::ClusterState& state,
                                     const sched::SchedulerEvent& event) const {
  // Immediate response to workload changes: freed GPUs (completion) and new
  // jobs must not wait for the per-epoch pacing (§2.1's critique of
  // interval-based schedulers).
  if (event.kind == sched::EventKind::JobComplete ||
      event.kind == sched::EventKind::JobArrival ||
      event.kind == sched::EventKind::CapacityChange) {
    return true;
  }
  if (state.current->idle_count() > 0 && !state.waiting_jobs().empty()) {
    return true;
  }
  // Pacing rule (§3.2.2 "Update"): every running job must have completed at
  // least one epoch since the last deployed schedule.
  for (const sched::JobView* v : state.running_jobs()) {
    auto it = epochs_at_deploy_.find(v->spec.id);
    if (it != epochs_at_deploy_.end() && v->epochs_completed <= it->second) {
      return false;
    }
  }
  return true;
}

void OnesScheduler::note_deployed(const sched::ClusterState& state,
                                  const cluster::Assignment& next) {
  epochs_at_deploy_.clear();
  for (JobId j : next.running_jobs()) {
    const sched::JobView* v = state.job(j);
    ONES_EXPECT(v != nullptr);
    epochs_at_deploy_.emplace(j, v->epochs_completed);
  }
}

std::optional<cluster::Assignment> OnesScheduler::on_event(
    const sched::ClusterState& state, const sched::SchedulerEvent& event) {
  // Bookkeeping for the policy state machines (§3.3.2) and the predictor.
  switch (event.kind) {
    case sched::EventKind::JobArrival: {
      const sched::JobView* v = state.job(event.job);
      ONES_EXPECT(v != nullptr);
      limits_.on_job_arrival(*v, state.now);
      break;
    }
    case sched::EventKind::EpochComplete: {
      const sched::JobView* v = state.job(event.job);
      ONES_EXPECT(v != nullptr);
      limits_.on_epoch_complete(*v);
      break;
    }
    case sched::EventKind::JobComplete: {
      const sched::JobView* v = state.job(event.job);
      ONES_EXPECT(v != nullptr);
      // Aborted jobs never converged; their truncated histories would teach
      // the predictor wrong totals (§2.1's abnormal-ending pitfall).
      if (config_.use_predictor && !v->aborted) predictor_.observe_completed_job(*v);
      limits_.on_completed(event.job);
      break;
    }
    case sched::EventKind::Timer:
      break;
    case sched::EventKind::CapacityChange:
      break;  // no per-job bookkeeping; the search sees the new health map
  }

  const EvolutionContext ctx = make_context(
      state, config_.use_predictor ? &predictor_ : nullptr, &limits_);
  for (int r = 0; r < config_.evolution.rounds_per_event; ++r) {
    evolution_.step(ctx);
    ++rounds_;
  }
  if (metrics_ != nullptr) {
    metrics_->counter("ones_evolution_rounds_total")
        .add(static_cast<double>(config_.evolution.rounds_per_event));
  }
  if (trace_sink_ != nullptr && config_.evolution.rounds_per_event > 0) {
    trace_sink_->on_record({.kind = trace::RecordKind::EvolutionStep,
                            .t = state.now,
                            .count = rounds_,
                            .detail = "+" +
                                      std::to_string(config_.evolution.rounds_per_event) +
                                      " rounds"});
  }

  if (!update_condition(state, event)) return std::nullopt;

  cluster::Assignment best = evolution_.best(ctx);
  if (best == *state.current) return std::nullopt;

  // Resume / preemption policy bookkeeping against the schedule we are about
  // to deploy.
  for (JobId j : state.current->running_jobs()) {
    if (best.gpu_count(j) == 0) {
      const sched::JobView* v = state.job(j);
      ONES_EXPECT(v != nullptr);
      if (v->status != sched::JobStatus::Completed) {
        limits_.on_preempted(*v, state.current->global_batch(j));
      }
    }
  }
  for (const sched::JobView* v : state.waiting_jobs()) {
    if (best.gpu_count(v->spec.id) == 0) {
      limits_.on_left_waiting(*v);  // asked for service, still waiting
    }
  }

  note_deployed(state, best);
  return best;
}

}  // namespace ones::core
