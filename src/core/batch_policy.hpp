// Dynamic batch-size limits R_j (paper §3.3.2, "Training Performance
// Control").
//
// ONES never lets the evolutionary search push a job's batch beyond a
// per-job limit R that moves with the job's lifecycle:
//
//  * Start:      on arrival the batch must fit a single GPU until the job
//                completes its warm-up.
//  * Resume:     a waiting job may ask for at most its pre-preemption batch;
//                each time a deployed schedule leaves it waiting, R halves
//                (reduces queuing time, prevents starvation).
//  * Scale-up:   a running job may double its limit after every epoch
//                (gradual growth avoids the Fig 13 loss spike).
//  * Scale-down: long-running jobs are penalized to prevent the Convoy
//                Effect:  R' = ceil(2R / ceil(sigma * T_processed + 1)),
//                with sigma = lambda, the average job arrival rate.
#pragma once

#include <unordered_map>

#include "cluster/assignment.hpp"
#include "common/ids.hpp"
#include "sched/scheduler.hpp"

namespace ones::core {

struct BatchPolicyConfig {
  /// Convoy-effect factor sigma; 0 = auto (sigma_scale times the estimated
  /// arrival rate lambda; the paper suggests sigma = lambda).
  double sigma = 0.0;
  /// Scale applied to the estimated lambda when sigma = 0. Note a deviation
  /// from the paper here: its formula R' = ceil(2R / ceil(sigma*T + 1)) can
  /// never double (the inner ceil is >= 2 whenever T > 0), contradicting the
  /// stated Scale-up rule, so we read the denominator as floor(sigma*T) + 1;
  /// and with sigma = lambda at a contended load every job outlives 1/lambda
  /// almost immediately, so the default softens sigma.
  double sigma_scale = 0.0625;
  /// Epochs a job must complete before it may span multiple GPUs.
  int warmup_epochs = 1;
  /// Cap on R as a multiple of the model's critical batch size (beyond it
  /// the batch only hurts convergence, so exploring there is wasted work).
  double r_cap_multiple = 2.0;
  /// Floor on R as a fraction of the single-GPU reference configuration
  /// min(b_ref, max_local_batch). 1 (default) means Resume halving and the
  /// convoy penalty never push a job below its requested batch — shrinking
  /// further has no placement benefit and only slows training.
  int min_limit_divisor = 1;
};

class BatchLimitManager {
 public:
  explicit BatchLimitManager(const BatchPolicyConfig& config = {}) : config_(config) {}

  /// Start policy: R = reference batch clamped to one GPU.
  void on_job_arrival(const sched::JobView& job, double now);

  /// Scale-up + scale-down: called at the end of each epoch of a running
  /// job. Applies R' = ceil(2R / ceil(sigma*T_processed + 1)).
  void on_epoch_complete(const sched::JobView& job);

  /// Resume policy: invoked right after a schedule is deployed, with the set
  /// of jobs that asked for service but remained waiting — their R halves.
  void on_left_waiting(const sched::JobView& job);

  /// Remember the batch a job held when it lost its GPUs (Resume cap).
  void on_preempted(const sched::JobView& job, int batch_before);

  void on_completed(JobId job);

  /// Current limit R_j.
  int limit(const sched::JobView& job) const;

  /// Whether the job may span more than one GPU yet (Start policy).
  bool warmed_up(const sched::JobView& job) const;

  /// Estimated arrival rate lambda (jobs/s) from observed arrivals.
  double arrival_rate() const;

  double sigma() const {
    return config_.sigma > 0.0 ? config_.sigma : arrival_rate() * config_.sigma_scale;
  }

 private:
  int floor_limit(const sched::JobView& job) const;
  int cap_limit(const sched::JobView& job) const;

  BatchPolicyConfig config_;
  // ones-lint: unordered-ok(per-job batch limit, find/erase by JobId only, never iterated)
  std::unordered_map<JobId, int> limits_;
  double first_arrival_ = -1.0;
  double last_arrival_ = -1.0;
  std::size_t arrivals_ = 0;
};

}  // namespace ones::core
