#include "core/annealing.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace ones::core {

AnnealingScheduler::AnnealingScheduler(const AnnealingConfig& config)
    : config_(config),
      predictor_(config.predictor),
      limits_(config.policy),
      toolbox_([&] {
        EvolutionConfig c = config.operators;
        c.population_size = 1;  // unused; the toolbox only runs operators
        return c;
      }()),
      rng_(config.operators.seed ^ 0x5AD0C0DEULL),
      temperature_(config.initial_temperature) {}

bool AnnealingScheduler::update_condition(const sched::ClusterState& state,
                                          const sched::SchedulerEvent& event) const {
  if (event.kind == sched::EventKind::JobComplete ||
      event.kind == sched::EventKind::JobArrival ||
      event.kind == sched::EventKind::CapacityChange) {
    return true;
  }
  if (state.current->idle_count() > 0 && !state.waiting_jobs().empty()) return true;
  for (const sched::JobView* v : state.running_jobs()) {
    auto it = epochs_at_deploy_.find(v->spec.id);
    if (it != epochs_at_deploy_.end() && v->epochs_completed <= it->second) return false;
  }
  return true;
}

std::optional<cluster::Assignment> AnnealingScheduler::on_event(
    const sched::ClusterState& state, const sched::SchedulerEvent& event) {
  // Same policy bookkeeping as ONES (§3.3.2).
  switch (event.kind) {
    case sched::EventKind::JobArrival:
      limits_.on_job_arrival(*state.job(event.job), state.now);
      break;
    case sched::EventKind::EpochComplete:
      limits_.on_epoch_complete(*state.job(event.job));
      break;
    case sched::EventKind::JobComplete: {
      const auto* v = state.job(event.job);
      if (config_.use_predictor && !v->aborted) predictor_.observe_completed_job(*v);
      limits_.on_completed(event.job);
      break;
    }
    case sched::EventKind::Timer:
      break;
    case sched::EventKind::CapacityChange:
      break;  // the incumbent is re-copied from the live (masked) schedule
  }

  const EvolutionContext ctx =
      make_context(state, config_.use_predictor ? &predictor_ : nullptr, &limits_);

  // (Re)seed the walk from the live schedule, synchronized with reality.
  if (!has_incumbent_ || incumbent_.num_gpus() != state.topology->total_gpus()) {
    incumbent_ = *state.current;
    has_incumbent_ = true;
  } else {
    incumbent_ = *state.current;
  }
  toolbox_.repair(incumbent_, ctx);
  toolbox_.refresh(incumbent_, ctx);

  const RhoMap rho = toolbox_.mean_rho(ctx);
  double best_score = toolbox_.score(incumbent_, ctx, rho);
  cluster::Assignment best = incumbent_;
  cluster::Assignment walker = incumbent_;
  double walker_score = best_score;

  for (int i = 0; i < config_.proposals_per_event; ++i) {
    cluster::Assignment proposal = walker;
    toolbox_.mutate(proposal, ctx);
    toolbox_.repair(proposal, ctx);
    if (config_.operators.use_reorder) proposal = Evolution::reorder(proposal);
    const double score = toolbox_.score(proposal, ctx, rho);
    ++proposals_;

    const double delta = score - walker_score;
    if (delta <= 0.0 || rng_.uniform() < std::exp(-delta / temperature_)) {
      walker = std::move(proposal);
      walker_score = score;
      ++accepted_;
      if (walker_score < best_score) {
        best_score = walker_score;
        best = walker;
      }
    }
    temperature_ = std::max(config_.min_temperature, temperature_ * config_.cooling);
  }

  if (!update_condition(state, event)) return std::nullopt;
  if (best == *state.current) return std::nullopt;

  for (JobId j : state.current->running_jobs()) {
    if (best.gpu_count(j) == 0) {
      const auto* v = state.job(j);
      if (v != nullptr && v->status != sched::JobStatus::Completed) {
        limits_.on_preempted(*v, state.current->global_batch(j));
      }
    }
  }
  for (const sched::JobView* v : state.waiting_jobs()) {
    if (best.gpu_count(v->spec.id) == 0) limits_.on_left_waiting(*v);
  }
  epochs_at_deploy_.clear();
  for (JobId j : best.running_jobs()) {
    const auto* v = state.job(j);
    ONES_EXPECT(v != nullptr);
    epochs_at_deploy_.emplace(j, v->epochs_completed);
  }
  return best;
}

}  // namespace ones::core
