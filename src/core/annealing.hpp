// Simulated-annealing scheduler over the same schedule-genome space.
//
// §3.2 argues evolutionary search suits the scheduling problem better than
// other approximate searches (simulated annealing, tabu, nearest-neighbor,
// ant colony). This scheduler makes that claim testable: it shares ONES's
// entire machinery — batch-limit policies, progress predictor, SRUF score,
// the refresh/repair/fill operators — but replaces the population-based
// evolution with single-solution Metropolis annealing whose neighborhood is
// the *uniform mutation* operator. Compare with bench/search_strategies.
#pragma once

#include <unordered_map>

#include "core/batch_policy.hpp"
#include "core/evolution.hpp"
#include "predict/progress_predictor.hpp"
#include "sched/scheduler.hpp"

namespace ones::core {

struct AnnealingConfig {
  /// Metropolis proposals evaluated per scheduler event.
  int proposals_per_event = 64;
  double initial_temperature = 400.0;  ///< in SRUF score units (GPU-seconds)
  double cooling = 0.995;              ///< multiplicative, per proposal
  double min_temperature = 5.0;
  EvolutionConfig operators;  ///< operator toolbox config (mutation rate etc.)
  BatchPolicyConfig policy;
  predict::PredictorConfig predictor;
  bool use_predictor = true;
};

class AnnealingScheduler : public sched::Scheduler {
 public:
  explicit AnnealingScheduler(const AnnealingConfig& config = {});

  std::string name() const override { return "ONES-SA"; }
  sched::ScalingMechanism mechanism() const override {
    return sched::ScalingMechanism::Elastic;
  }

  std::optional<cluster::Assignment> on_event(const sched::ClusterState& state,
                                              const sched::SchedulerEvent& event) override;

  double temperature() const { return temperature_; }
  std::uint64_t proposals() const { return proposals_; }
  std::uint64_t accepted() const { return accepted_; }

 private:
  bool update_condition(const sched::ClusterState& state,
                        const sched::SchedulerEvent& event) const;

  AnnealingConfig config_;
  predict::ProgressPredictor predictor_;
  BatchLimitManager limits_;
  Evolution toolbox_;  ///< operator implementations (population unused)
  Rng rng_;
  cluster::Assignment incumbent_;
  bool has_incumbent_ = false;
  double temperature_;
  std::uint64_t proposals_ = 0;
  std::uint64_t accepted_ = 0;
  // ones-lint: unordered-ok(find-by-JobId only (progress gate); rebuilt from running_jobs() order on each deploy)
  std::unordered_map<JobId, int> epochs_at_deploy_;
};

}  // namespace ones::core
