#include "core/batch_policy.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"
#include "common/math_util.hpp"

namespace ones::core {

int BatchLimitManager::floor_limit(const sched::JobView& job) const {
  // R never drops below the single-GPU reference configuration: shrinking
  // the batch further would not make the job any easier to place (one GPU is
  // the minimum either way) — it would only slow its training down.
  const int base = std::min(job.profile->b_ref, job.profile->max_local_batch);
  return std::max(1, base / config_.min_limit_divisor);
}

int BatchLimitManager::cap_limit(const sched::JobView& job) const {
  return std::max(job.profile->b_ref,
                  static_cast<int>(config_.r_cap_multiple * job.profile->b_crit));
}

void BatchLimitManager::on_job_arrival(const sched::JobView& job, double now) {
  // Start: must fit on one GPU.
  const int r = std::min(job.profile->b_ref, job.profile->max_local_batch);
  limits_[job.spec.id] = std::max(r, 1);

  if (first_arrival_ < 0.0) first_arrival_ = now;
  last_arrival_ = now;
  ++arrivals_;
}

double BatchLimitManager::arrival_rate() const {
  if (arrivals_ < 2 || last_arrival_ <= first_arrival_) {
    return 1.0 / 60.0;  // prior: about one job a minute
  }
  return static_cast<double>(arrivals_ - 1) / (last_arrival_ - first_arrival_);
}

void BatchLimitManager::on_epoch_complete(const sched::JobView& job) {
  auto it = limits_.find(job.spec.id);
  ONES_EXPECT_MSG(it != limits_.end(), "epoch for a job with no batch limit");
  // Combined scale-up / scale-down rule: R' = ceil(2R / (floor(sigma*T)+1)).
  // Young jobs (sigma*T < 1) double; jobs older than 1/sigma grow slower and
  // eventually shrink (Convoy Effect control). See BatchPolicyConfig for why
  // the denominator uses floor rather than the paper's ceil.
  const double denom = std::floor(sigma() * job.exec_time_s) + 1.0;
  const double r_new = std::ceil(2.0 * static_cast<double>(it->second) / denom);
  it->second = std::clamp(static_cast<int>(r_new), floor_limit(job), cap_limit(job));
}

void BatchLimitManager::on_left_waiting(const sched::JobView& job) {
  auto it = limits_.find(job.spec.id);
  ONES_EXPECT_MSG(it != limits_.end(), "waiting job with no batch limit");
  it->second = std::max(it->second / 2, floor_limit(job));
}

void BatchLimitManager::on_preempted(const sched::JobView& job, int batch_before) {
  auto it = limits_.find(job.spec.id);
  ONES_EXPECT_MSG(it != limits_.end(), "preempted job with no batch limit");
  // Resume: the job may request at most what it had before preemption.
  if (batch_before >= 1) it->second = std::min(it->second, batch_before);
  it->second = std::max(it->second, floor_limit(job));
}

void BatchLimitManager::on_completed(JobId job) { limits_.erase(job); }

int BatchLimitManager::limit(const sched::JobView& job) const {
  auto it = limits_.find(job.spec.id);
  ONES_EXPECT_MSG(it != limits_.end(), "job with no batch limit");
  if (!warmed_up(job)) {
    return std::min(it->second, job.profile->max_local_batch);
  }
  return it->second;
}

bool BatchLimitManager::warmed_up(const sched::JobView& job) const {
  return job.epochs_completed >= config_.warmup_epochs;
}

}  // namespace ones::core
