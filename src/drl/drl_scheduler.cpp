#include "drl/drl_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"
#include "common/math_util.hpp"
#include "sched/oracle.hpp"
#include "sched/placement.hpp"
#include "sched/simulation.hpp"
#include "workload/trace.hpp"

namespace ones::drl {

DrlScheduler::DrlScheduler(const DrlConfig& config)
    : config_(config),
      policy_([&] {
        std::vector<int> sizes;
        sizes.push_back(static_cast<int>(kFeatureDim));
        for (int h : config.hidden) sizes.push_back(h);
        sizes.push_back(1);
        return sizes;
      }(),
              config.seed),
      rng_(config.seed ^ 0xD1CEB00CULL) {}

std::vector<double> DrlScheduler::action_features(const sched::ClusterState& state,
                                                  const sched::JobView& job, int workers) {
  const int total = state.topology->total_gpus();
  const int free = state.current->idle_count();
  const double x_w = state.oracle->estimate_sps(job, workers, job.spec.requested_batch,
                                                state.oracle->can_colocate(workers));
  const double x_1 = state.oracle->estimate_sps(
      job, 1, job.spec.requested_batch,
      true);
  return {
      static_cast<double>(workers) / 8.0,
      x_w / std::max(x_1, 1e-9) / 8.0,               // speedup of this size
      job.dataset_size() / 2e4,                      // workload scale
      job.profile->params_bytes / 5e8,               // model scale (comm cost)
      (state.now - job.spec.arrival_time_s) / 600.0, // waiting time
      static_cast<double>(job.epochs_completed) / 30.0,
      job.samples_processed / std::max(job.dataset_size(), 1.0) / 30.0,
      static_cast<double>(free) / std::max(total, 1),
  };
}

std::vector<DrlScheduler::Action> DrlScheduler::enumerate_actions(
    const sched::ClusterState& state, const cluster::Assignment& assignment) const {
  std::vector<Action> actions;
  const int free = assignment.idle_count();
  if (free == 0) return actions;
  for (const sched::JobView* job : state.jobs) {
    if (job->status != sched::JobStatus::Waiting) continue;
    if (assignment.gpu_count(job->spec.id) > 0) continue;  // placed this round
    const int min_w = static_cast<int>(
        ceil_div(job->spec.requested_batch, job->profile->max_local_batch));
    const int max_w = std::min({config_.max_workers_per_job, free,
                                job->spec.requested_batch});
    bool any = false;
    for (int w = 1; w <= max_w; w *= 2) {
      if (w < min_w) continue;
      Action a;
      a.job = job->spec.id;
      a.workers = w;
      a.features = action_features(state, *job, w);
      actions.push_back(std::move(a));
      any = true;
    }
    if (!any && min_w <= max_w) {
      Action a;
      a.job = job->spec.id;
      a.workers = min_w;
      a.features = action_features(state, *job, min_w);
      actions.push_back(std::move(a));
    }
  }
  return actions;
}

std::optional<cluster::Assignment> DrlScheduler::on_event(
    const sched::ClusterState& state, const sched::SchedulerEvent& /*event*/) {
  // The agent is invoked on every cluster event (arrivals, completions and
  // epoch boundaries) but never preempts running jobs.

  cluster::Assignment next = *state.current;
  bool changed = false;
  // The DRL agent produces ONE action at a time, each launching one job
  // (the paper's §2.1/§5 critique of DRL schedulers' action-space limits —
  // only one job can be rescheduled at each decision point).
  {
    const auto actions = enumerate_actions(state, next);
    if (actions.empty()) return std::nullopt;

    // Softmax over policy scores.
    std::vector<double> scores(actions.size());
    double max_s = -1e300;
    for (std::size_t i = 0; i < actions.size(); ++i) {
      scores[i] = policy_.forward(actions[i].features)[0];
      max_s = std::max(max_s, scores[i]);
    }
    std::vector<double> probs(actions.size());
    double z = 0.0;
    for (std::size_t i = 0; i < actions.size(); ++i) {
      probs[i] = std::exp(scores[i] - max_s);
      z += probs[i];
    }
    for (auto& p : probs) p /= z;

    std::size_t chosen;
    if (exploration_) {
      chosen = rng_.weighted_index(probs);
    } else {
      chosen = static_cast<std::size_t>(
          std::max_element(probs.begin(), probs.end()) - probs.begin());
    }
    const Action& act = actions[chosen];
    const auto gpus = sched::pick_idle_gpus(next, *state.topology, act.workers);
    ONES_EXPECT_MSG(!gpus.empty(), "enumerated an infeasible DRL action");
    const auto* job = state.job(act.job);
    ONES_EXPECT(job != nullptr);
    sched::place_job_even(next, act.job, gpus, job->spec.requested_batch);
    changed = true;

    if (exploration_) {
      Decision d;
      d.actions = actions;
      d.probs = probs;
      d.chosen = chosen;
      episode_.push_back(std::move(d));
    }
  }
  if (!changed) return std::nullopt;
  return next;
}

void DrlScheduler::train() {
  if (trained_) return;
  exploration_ = true;

  double baseline = 0.0;
  bool has_baseline = false;
  for (int ep = 0; ep < config_.train_episodes; ++ep) {
    workload::TraceConfig tc;
    tc.num_jobs = config_.train_jobs;
    tc.mean_interarrival_s = config_.train_interarrival_s;
    tc.seed = config_.seed + static_cast<std::uint64_t>(ep) * 7919;
    auto trace = workload::generate_trace(tc);

    sched::SimulationConfig sc;
    sc.topology.num_nodes = config_.train_nodes;
    sc.record_epoch_logs = false;

    episode_.clear();
    sched::ClusterSimulation sim(sc, std::move(trace), *this);
    sim.run();

    double avg_jct = mean_of(sim.metrics().jcts());
    if (!sim.all_completed()) avg_jct *= 3.0;  // stranded work: strong penalty
    training_curve_.push_back(avg_jct);

    if (!has_baseline) {
      baseline = avg_jct;
      has_baseline = true;
    }
    const double advantage = (baseline - avg_jct) / std::max(baseline, 1.0);
    baseline = 0.9 * baseline + 0.1 * avg_jct;

    // REINFORCE: grad log pi(chosen) = (1[a=chosen] - pi(a)) * grad score(a).
    const std::vector<double> unit = {1.0};
    for (const Decision& d : episode_) {
      for (std::size_t a = 0; a < d.actions.size(); ++a) {
        const double coeff = ((a == d.chosen) ? 1.0 : 0.0) - d.probs[a];
        policy_.accumulate_gradient(d.actions[a].features, unit, advantage * coeff);
      }
    }
    policy_.apply_gradient(config_.learning_rate);
  }

  episode_.clear();
  exploration_ = false;
  trained_ = true;
}

}  // namespace ones::drl
