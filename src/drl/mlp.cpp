#include "drl/mlp.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace ones::drl {

Mlp::Mlp(const std::vector<int>& layer_sizes, std::uint64_t seed)
    : layer_sizes_(layer_sizes) {
  ONES_EXPECT_MSG(layer_sizes.size() >= 2, "need at least input and output layers");
  Rng rng(seed);
  for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    Layer layer;
    layer.in = layer_sizes[i];
    layer.out = layer_sizes[i + 1];
    ONES_EXPECT(layer.in > 0 && layer.out > 0);
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.in + layer.out));
    layer.w.resize(static_cast<std::size_t>(layer.in) * layer.out);
    for (auto& v : layer.w) v = rng.normal(0.0, scale);
    layer.b.assign(static_cast<std::size_t>(layer.out), 0.0);
    layer.gw.assign(layer.w.size(), 0.0);
    layer.gb.assign(layer.b.size(), 0.0);
    layers_.push_back(std::move(layer));
  }
}

std::vector<double> Mlp::forward(const std::vector<double>& input) const {
  ONES_EXPECT(static_cast<int>(input.size()) == input_dim());
  std::vector<double> act = input;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    std::vector<double> next(static_cast<std::size_t>(layer.out));
    for (int o = 0; o < layer.out; ++o) {
      double z = layer.b[static_cast<std::size_t>(o)];
      for (int i = 0; i < layer.in; ++i) {
        z += layer.w[static_cast<std::size_t>(o) * layer.in + i] * act[static_cast<std::size_t>(i)];
      }
      // tanh on hidden layers, identity on the output layer.
      next[static_cast<std::size_t>(o)] = (li + 1 < layers_.size()) ? std::tanh(z) : z;
    }
    act = std::move(next);
  }
  return act;
}

void Mlp::accumulate_gradient(const std::vector<double>& input,
                              const std::vector<double>& out_grad, double scale) {
  ONES_EXPECT(static_cast<int>(input.size()) == input_dim());
  ONES_EXPECT(static_cast<int>(out_grad.size()) == output_dim());

  // Forward pass, caching activations.
  std::vector<std::vector<double>> acts;  // acts[0] = input, acts[L] = output
  acts.push_back(input);
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    std::vector<double> next(static_cast<std::size_t>(layer.out));
    for (int o = 0; o < layer.out; ++o) {
      double z = layer.b[static_cast<std::size_t>(o)];
      for (int i = 0; i < layer.in; ++i) {
        z += layer.w[static_cast<std::size_t>(o) * layer.in + i] *
             acts.back()[static_cast<std::size_t>(i)];
      }
      next[static_cast<std::size_t>(o)] = (li + 1 < layers_.size()) ? std::tanh(z) : z;
    }
    acts.push_back(std::move(next));
  }

  // Backward pass.
  std::vector<double> delta(out_grad.size());
  for (std::size_t o = 0; o < out_grad.size(); ++o) delta[o] = out_grad[o] * scale;
  for (std::size_t li = layers_.size(); li-- > 0;) {
    Layer& layer = layers_[li];
    const std::vector<double>& in_act = acts[li];
    const std::vector<double>& out_act = acts[li + 1];
    // For hidden layers out_act = tanh(z); d tanh = 1 - tanh^2.
    std::vector<double> dz(delta.size());
    for (std::size_t o = 0; o < delta.size(); ++o) {
      const double d_act = (li + 1 < layers_.size())
                               ? 1.0 - out_act[o] * out_act[o]
                               : 1.0;
      dz[o] = delta[o] * d_act;
    }
    for (int o = 0; o < layer.out; ++o) {
      layer.gb[static_cast<std::size_t>(o)] += dz[static_cast<std::size_t>(o)];
      for (int i = 0; i < layer.in; ++i) {
        layer.gw[static_cast<std::size_t>(o) * layer.in + i] +=
            dz[static_cast<std::size_t>(o)] * in_act[static_cast<std::size_t>(i)];
      }
    }
    if (li == 0) break;
    std::vector<double> prev(static_cast<std::size_t>(layer.in), 0.0);
    for (int i = 0; i < layer.in; ++i) {
      double s = 0.0;
      for (int o = 0; o < layer.out; ++o) {
        s += layer.w[static_cast<std::size_t>(o) * layer.in + i] * dz[static_cast<std::size_t>(o)];
      }
      prev[static_cast<std::size_t>(i)] = s;
    }
    delta = std::move(prev);
  }
}

void Mlp::apply_gradient(double lr) {
  for (Layer& layer : layers_) {
    for (std::size_t i = 0; i < layer.w.size(); ++i) layer.w[i] += lr * layer.gw[i];
    for (std::size_t i = 0; i < layer.b.size(); ++i) layer.b[i] += lr * layer.gb[i];
  }
  zero_gradient();
}

void Mlp::zero_gradient() {
  for (Layer& layer : layers_) {
    std::fill(layer.gw.begin(), layer.gw.end(), 0.0);
    std::fill(layer.gb.begin(), layer.gb.end(), 0.0);
  }
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (const Layer& layer : layers_) n += layer.w.size() + layer.b.size();
  return n;
}

double Mlp::gradient_norm() const {
  double s = 0.0;
  for (const Layer& layer : layers_) {
    for (double g : layer.gw) s += g * g;
    for (double g : layer.gb) s += g * g;
  }
  return std::sqrt(s);
}

}  // namespace ones::drl
