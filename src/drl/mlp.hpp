// Minimal multi-layer perceptron with manual backpropagation.
//
// The DRL baseline's policy network scores candidate scheduling actions; we
// implement the network from scratch (tanh hidden layers, scalar linear
// output) with explicit gradient accumulation so REINFORCE can combine
// per-action gradients into a log-softmax policy gradient.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace ones::drl {

class Mlp {
 public:
  /// layer_sizes = {input, hidden..., output}; e.g. {8, 16, 16, 1}.
  Mlp(const std::vector<int>& layer_sizes, std::uint64_t seed);

  int input_dim() const { return layer_sizes_.front(); }
  int output_dim() const { return layer_sizes_.back(); }

  /// Forward pass; returns the outputs (no activation on the last layer).
  std::vector<double> forward(const std::vector<double>& input) const;

  /// Forward + backward: accumulate d(output . out_grad)/d(params) into the
  /// internal gradient buffer, scaled by `scale`.
  void accumulate_gradient(const std::vector<double>& input,
                           const std::vector<double>& out_grad, double scale);

  /// SGD step: params += lr * accumulated_gradient (gradient *ascent*; pass
  /// a negative lr for descent), then clear the buffer.
  void apply_gradient(double lr);

  void zero_gradient();

  /// Flat parameter count (for tests).
  std::size_t parameter_count() const;

  /// L2 norm of the accumulated gradient (for tests / diagnostics).
  double gradient_norm() const;

 private:
  struct Layer {
    int in = 0, out = 0;
    std::vector<double> w;       ///< out x in, row-major
    std::vector<double> b;       ///< out
    std::vector<double> gw, gb;  ///< gradient accumulators
  };

  std::vector<int> layer_sizes_;
  std::vector<Layer> layers_;
};

}  // namespace ones::drl
