// DRL scheduler baseline (paper §4.1), in the style of Chic (Gong et al.):
// an experience-driven policy trained offline with REINFORCE and used
// greedily online. Adapted — as in the paper — to all-reduce data-parallel
// training: each action launches ONE waiting job with a chosen worker count
// (elastic job size, Table 3), jobs are never preempted, and the batch size
// stays fixed at submission.
//
// The policy network scores (job, worker-count) candidate actions from
// observable features; a softmax over scores gives the stochastic training
// policy, and argmax gives the deterministic evaluation policy. Training
// runs whole simulated episodes on small random traces and applies the
// log-softmax policy gradient weighted by the episode's negative-average-JCT
// advantage against a moving baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "drl/mlp.hpp"
#include "sched/scheduler.hpp"

namespace ones::drl {

struct DrlConfig {
  std::vector<int> hidden = {16, 16};
  double learning_rate = 0.02;
  int train_episodes = 80;
  int train_jobs = 32;
  double train_interarrival_s = 30.0;
  int train_nodes = 4;  ///< 4 nodes x 4 GPUs = 16-GPU training cluster
  int max_workers_per_job = 16;
  std::uint64_t seed = 2024;
};

class DrlScheduler : public sched::Scheduler {
 public:
  explicit DrlScheduler(const DrlConfig& config = {});

  std::string name() const override { return "DRL"; }
  sched::ScalingMechanism mechanism() const override {
    return sched::ScalingMechanism::Checkpoint;
  }

  std::optional<cluster::Assignment> on_event(const sched::ClusterState& state,
                                              const sched::SchedulerEvent& event) override;

  /// Offline training phase (idempotent). Runs simulated episodes on small
  /// random traces; must be called before evaluation runs for a meaningful
  /// policy (an untrained policy is random).
  void train();

  bool trained() const { return trained_; }
  /// Episode returns observed during training (diagnostics / tests).
  const std::vector<double>& training_curve() const { return training_curve_; }

  static constexpr std::size_t kFeatureDim = 8;
  /// Feature vector for scheduling `job` on `workers` GPUs (exposed for tests).
  static std::vector<double> action_features(const sched::ClusterState& state,
                                             const sched::JobView& job, int workers);

 private:
  struct Action {
    JobId job = kInvalidJob;
    int workers = 0;
    std::vector<double> features;
  };
  struct Decision {
    std::vector<Action> actions;
    std::vector<double> probs;
    std::size_t chosen = 0;
  };

  std::vector<Action> enumerate_actions(const sched::ClusterState& state,
                                        const cluster::Assignment& assignment) const;

  DrlConfig config_;
  Mlp policy_;
  Rng rng_;
  bool exploration_ = false;
  bool trained_ = false;
  std::vector<Decision> episode_;
  std::vector<double> training_curve_;
};

}  // namespace ones::drl
