// Trace-driven workload generation (paper §4.1, Table 2).
//
// The paper evaluates on custom traces over 50 distinct workload variants:
//   CV / ImageNet subsets : AlexNet, ResNet50, VGG16, InceptionV3
//                           x dataset sizes 10k..20k (step 2k)    -> 24
//   CV / CIFAR10 subsets  : ResNet18, VGG16, GoogleNet
//                           x dataset sizes 20k..40k (step 5k)    -> 15
//   NLP / BERT            : CoLA 5k..8k (4), MRPC 3.6k (1),
//                           SST-2 10k..20k step 2k (6)            -> 11
// Total 4*6 + 3*5 + 4 + 1 + 6 = 50 (paper's arithmetic).
//
// A trace is a sequence of JobSpecs with Poisson arrivals; each job carries
// the user-submitted configuration (requested GPUs + batch size) that
// non-elastic baselines must honor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "model/task.hpp"

namespace ones::workload {

/// One of the 50 (model, dataset) combinations of Table 2.
struct WorkloadVariant {
  std::string model_name;      ///< task profile name (see model::builtin_profiles)
  std::string dataset;         ///< e.g. "ImageNet-12k", "CoLA-6k"
  std::int64_t dataset_size;   ///< ||D||, samples per epoch
  int num_classes;
};

/// The full Table 2 catalog (exactly 50 variants).
const std::vector<WorkloadVariant>& table2_variants();

/// A submitted job.
struct JobSpec {
  JobId id = kInvalidJob;
  WorkloadVariant variant;
  double arrival_time_s = 0.0;
  /// User-requested worker count (gang size for non-elastic schedulers).
  int requested_gpus = 1;
  /// User-requested global batch size.
  int requested_batch = 256;
  /// Seed for this job's training dynamics (accuracy noise).
  std::uint64_t dynamics_seed = 0;
  /// If > 0, the job is killed this many seconds after submission (user
  /// abort / crash / early stop — §2.1's "not all DL jobs end normally").
  double kill_after_s = 0.0;
};

struct TraceConfig {
  int num_jobs = 120;
  /// Mean inter-arrival time (Poisson process). The paper's scale-down
  /// policy uses sigma = lambda = 1 / mean_interarrival_s.
  double mean_interarrival_s = 30.0;
  std::uint64_t seed = 42;
  /// If false, arrivals are evenly spaced instead of exponential.
  bool poisson_arrivals = true;
  /// Fraction of jobs that end abnormally (killed / crashed / early-stopped)
  /// instead of training to convergence.
  double abnormal_fraction = 0.0;
  /// Mean time-to-kill (exponential) for abnormal jobs, from submission.
  double abnormal_mean_lifetime_s = 300.0;

  // ---- Hyperscale generator extensions ----
  // Defaults reproduce the paper-scale trace byte-for-byte AND consume the
  // identical RNG stream (every non-default path is gated, never a no-op
  // multiply), so existing seeds keep their traces.

  /// Largest requested gang size. 4 = the paper's {1,2,4} GPUs weighted
  /// {0.5,0.3,0.2}; 8 adds a large-job class: {1,2,4,8} weighted
  /// {0.4,0.3,0.2,0.1} (production clusters see a heavier big-job tail).
  int max_requested_gpus = 4;
  /// Day/night arrival-rate modulation amplitude in [0, 1): the drawn
  /// inter-arrival gap is divided by 1 + A*sin(2*pi*t/86400), so the
  /// instantaneous rate swings between (1-A)x and (1+A)x the base rate over
  /// a 24 h period (rate-modulated renewal process). 0 = homogeneous.
  double diurnal_amplitude = 0.0;
};

/// Draw a trace: variants sampled uniformly from Table 2, arrivals from a
/// Poisson process, requested GPU counts from {1, 2, 4} (weighted toward
/// small, as in production DL traces), batch = the profile's reference batch
/// scaled by the requested worker count (the common fixed-local-batch
/// submission habit the paper describes).
std::vector<JobSpec> generate_trace(const TraceConfig& config);

/// Render the Table 2 catalog as text (used by bench/table2_workloads).
std::string format_table2();

}  // namespace ones::workload
