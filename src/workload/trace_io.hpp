// Trace (de)serialization: CSV round-tripping of JobSpecs, so traces can be
// generated once, archived, edited by hand, and replayed across schedulers
// or tools outside this process.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/trace.hpp"

namespace ones::workload {

/// Columns: id,model,dataset,dataset_size,num_classes,arrival_s,
///          requested_gpus,requested_batch,dynamics_seed,kill_after_s
void write_trace_csv(std::ostream& os, const std::vector<JobSpec>& trace);

/// Parse a trace written by write_trace_csv. Throws std::logic_error on
/// malformed input (wrong column count, non-numeric fields, unknown model).
std::vector<JobSpec> read_trace_csv(std::istream& is);

/// File-path conveniences.
void save_trace(const std::string& path, const std::vector<JobSpec>& trace);
std::vector<JobSpec> load_trace(const std::string& path);

}  // namespace ones::workload
