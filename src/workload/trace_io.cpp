#include "workload/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "common/expect.hpp"
#include "model/task.hpp"

namespace ones::workload {

namespace {
constexpr const char* kHeader =
    "id,model,dataset,dataset_size,num_classes,arrival_s,requested_gpus,"
    "requested_batch,dynamics_seed,kill_after_s";

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) fields.push_back(field);
  // A trailing empty field is dropped by getline; our schema has none.
  return fields;
}
}  // namespace

void write_trace_csv(std::ostream& os, const std::vector<JobSpec>& trace) {
  os << kHeader << '\n';
  os.precision(17);  // exact double round-trip
  for (const auto& spec : trace) {
    ONES_EXPECT_MSG(spec.variant.model_name.find(',') == std::string::npos &&
                        spec.variant.dataset.find(',') == std::string::npos,
                    "names must not contain commas");
    os << spec.id << ',' << spec.variant.model_name << ',' << spec.variant.dataset
       << ',' << spec.variant.dataset_size << ',' << spec.variant.num_classes << ','
       << spec.arrival_time_s << ',' << spec.requested_gpus << ','
       << spec.requested_batch << ',' << spec.dynamics_seed << ',' << spec.kill_after_s
       << '\n';
  }
}

std::vector<JobSpec> read_trace_csv(std::istream& is) {
  std::string line;
  ONES_EXPECT_MSG(static_cast<bool>(std::getline(is, line)), "empty trace file");
  ONES_EXPECT_MSG(line == kHeader, "unexpected trace CSV header: " + line);

  std::vector<JobSpec> trace;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto f = split_csv_line(line);
    ONES_EXPECT_MSG(f.size() == 10,
                    "line " + std::to_string(line_no) + ": expected 10 fields");
    try {
      JobSpec spec;
      spec.id = std::stoll(f[0]);
      spec.variant.model_name = f[1];
      spec.variant.dataset = f[2];
      spec.variant.dataset_size = std::stoll(f[3]);
      spec.variant.num_classes = std::stoi(f[4]);
      spec.arrival_time_s = std::stod(f[5]);
      spec.requested_gpus = std::stoi(f[6]);
      spec.requested_batch = std::stoi(f[7]);
      spec.dynamics_seed = std::stoull(f[8]);
      spec.kill_after_s = std::stod(f[9]);
      // Validate against the catalog and basic feasibility.
      (void)model::profile_by_name(spec.variant.model_name);
      ONES_EXPECT(spec.variant.dataset_size > 0);
      ONES_EXPECT(spec.requested_gpus >= 1);
      ONES_EXPECT(spec.requested_batch >= spec.requested_gpus);
      ONES_EXPECT(spec.arrival_time_s >= 0.0);
      trace.push_back(std::move(spec));
    } catch (const std::invalid_argument&) {
      ONES_EXPECT_MSG(false, "line " + std::to_string(line_no) + ": non-numeric field");
    } catch (const std::out_of_range&) {
      ONES_EXPECT_MSG(false, "line " + std::to_string(line_no) + ": value out of range");
    }
  }
  return trace;
}

void save_trace(const std::string& path, const std::vector<JobSpec>& trace) {
  std::ofstream f(path, std::ios::binary);
  ONES_EXPECT_MSG(f.good(), "cannot open " + path + " for writing");
  write_trace_csv(f, trace);
  ONES_EXPECT_MSG(f.good(), "write to " + path + " failed");
}

std::vector<JobSpec> load_trace(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  ONES_EXPECT_MSG(f.good(), "cannot open " + path);
  return read_trace_csv(f);
}

}  // namespace ones::workload
