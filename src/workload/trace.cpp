#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace ones::workload {

namespace {

std::vector<WorkloadVariant> make_variants() {
  std::vector<WorkloadVariant> v;

  // CV on ImageNet subsets: sizes 10k..20k step 2k, classes 10..20 step 2.
  const char* imagenet_models[] = {"AlexNet", "ResNet50", "VGG16", "InceptionV3"};
  for (const char* m : imagenet_models) {
    for (int i = 0; i < 6; ++i) {
      const int size_k = 10 + 2 * i;
      v.push_back({m, "ImageNet-" + std::to_string(size_k) + "k",
                   static_cast<std::int64_t>(size_k) * 1000, 10 + 2 * i});
    }
  }

  // CV on CIFAR10 subsets: sizes 20k..40k step 5k, 10 classes.
  const char* cifar_models[] = {"ResNet18", "VGG16-CIFAR", "GoogleNet"};
  for (const char* m : cifar_models) {
    for (int i = 0; i < 5; ++i) {
      const int size_k = 20 + 5 * i;
      v.push_back({m, "CIFAR10-" + std::to_string(size_k) + "k",
                   static_cast<std::int64_t>(size_k) * 1000, 10});
    }
  }

  // NLP: BERT fine-tuning on GLUE subsets.
  for (int size_k = 5; size_k <= 8; ++size_k) {  // CoLA 5k..8k
    v.push_back({"BERT", "CoLA-" + std::to_string(size_k) + "k",
                 static_cast<std::int64_t>(size_k) * 1000, 2});
  }
  v.push_back({"BERT", "MRPC-3.6k", 3600, 2});
  for (int i = 0; i < 6; ++i) {  // SST-2 10k..20k step 2k
    const int size_k = 10 + 2 * i;
    v.push_back({"BERT", "SST2-" + std::to_string(size_k) + "k",
                 static_cast<std::int64_t>(size_k) * 1000, 2});
  }

  ONES_EXPECT_MSG(v.size() == 50, "Table 2 must contain exactly 50 variants");
  return v;
}

}  // namespace

const std::vector<WorkloadVariant>& table2_variants() {
  static const std::vector<WorkloadVariant> variants = make_variants();
  return variants;
}

std::vector<JobSpec> generate_trace(const TraceConfig& config) {
  ONES_EXPECT(config.num_jobs > 0);
  ONES_EXPECT(config.mean_interarrival_s > 0.0);
  ONES_EXPECT_MSG(config.max_requested_gpus == 4 || config.max_requested_gpus == 8,
                  "max_requested_gpus must be 4 (paper mix) or 8 (hyperscale mix)");
  ONES_EXPECT(config.diurnal_amplitude >= 0.0 && config.diurnal_amplitude < 1.0);

  Rng rng(config.seed);
  const auto& variants = table2_variants();

  std::vector<JobSpec> trace;
  trace.reserve(static_cast<std::size_t>(config.num_jobs));
  double t = 0.0;
  for (int i = 0; i < config.num_jobs; ++i) {
    if (i > 0) {
      double gap = config.poisson_arrivals ? rng.exponential(1.0 / config.mean_interarrival_s)
                                           : config.mean_interarrival_s;
      if (config.diurnal_amplitude > 0.0) {
        constexpr double kDayS = 86400.0;
        constexpr double kTwoPi = 6.283185307179586;
        gap /= 1.0 + config.diurnal_amplitude * std::sin(kTwoPi * t / kDayS);
      }
      t += gap;
    }
    JobSpec spec;
    spec.id = i;
    spec.variant = variants[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(variants.size()) - 1))];
    spec.arrival_time_s = t;

    // Production DL traces are dominated by small jobs; weight {1,2,4} GPUs.
    // The hyperscale mix adds an 8-GPU class with a heavier big-job tail.
    const std::size_t pick = config.max_requested_gpus == 8
                                 ? rng.weighted_index({0.4, 0.3, 0.2, 0.1})
                                 : rng.weighted_index({0.5, 0.3, 0.2});
    spec.requested_gpus = 1 << pick;

    // Users commonly submit a fixed *local* batch, so the requested global
    // batch grows with the requested worker count (§2.2). The local batch is
    // capped by what fits in GPU memory.
    const auto& profile = model::profile_by_name(spec.variant.model_name);
    const int local = std::min(profile.b_ref, profile.max_local_batch);
    spec.requested_batch = local * spec.requested_gpus;

    std::uint64_t mix = config.seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1);
    spec.dynamics_seed = splitmix64(mix);

    if (config.abnormal_fraction > 0.0 && rng.bernoulli(config.abnormal_fraction)) {
      spec.kill_after_s = rng.exponential(1.0 / config.abnormal_mean_lifetime_s);
    }
    trace.push_back(spec);
  }
  return trace;
}

std::string format_table2() {
  std::ostringstream os;
  os << "Table 2: workloads in the evaluation trace (50 variants)\n";
  os << "---------------------------------------------------------------\n";
  std::string last_model;
  for (const auto& v : table2_variants()) {
    const auto& p = model::profile_by_name(v.model_name);
    os << "  " << family_name(p.family) << "  " << v.model_name;
    for (std::size_t pad = v.model_name.size(); pad < 14; ++pad) os << ' ';
    os << v.dataset;
    for (std::size_t pad = v.dataset.size(); pad < 16; ++pad) os << ' ';
    os << "||D||=" << v.dataset_size << "  classes=" << v.num_classes << "\n";
    last_model = v.model_name;
  }
  os << "---------------------------------------------------------------\n";
  os << "  total variants: " << table2_variants().size() << "\n";
  return os.str();
}

}  // namespace ones::workload
