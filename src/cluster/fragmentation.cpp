#include "cluster/fragmentation.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "common/math_util.hpp"

namespace ones::cluster {

FragmentationStats fragmentation_stats(const Assignment& assignment,
                                       const Topology& topology) {
  ONES_EXPECT(assignment.num_gpus() == topology.total_gpus());
  FragmentationStats stats;
  std::vector<int> idle_per_node(static_cast<std::size_t>(topology.num_nodes()), 0);
  for (GpuId g : assignment.idle_gpus()) {
    idle_per_node[static_cast<std::size_t>(topology.node_of(g))] += 1;
    stats.idle_gpus += 1;
  }
  for (int n : idle_per_node) {
    stats.largest_colocated_block = std::max(stats.largest_colocated_block, n);
    if (n > 0) stats.nodes_with_idle += 1;
  }
  if (stats.idle_gpus > 0) {
    // Minimum nodes needed to hold the idle pool vs how many actually do.
    const int per_node = topology.gpus_per_node();
    const int min_nodes = static_cast<int>(ceil_div(stats.idle_gpus, per_node));
    const int max_nodes = std::min(stats.idle_gpus, topology.num_nodes());
    if (max_nodes > min_nodes) {
      stats.scatter_index = static_cast<double>(stats.nodes_with_idle - min_nodes) /
                            static_cast<double>(max_nodes - min_nodes);
    }
  }
  return stats;
}

LocalityStats locality_stats(const Assignment& assignment, const Topology& topology) {
  ONES_EXPECT(assignment.num_gpus() == topology.total_gpus());
  LocalityStats stats;
  double total_spanned = 0.0;
  for (JobId j : assignment.running_jobs()) {
    const auto gpus = assignment.gpus_of(j);
    if (gpus.size() < 2) continue;
    stats.jobs += 1;
    const int spanned = topology.nodes_spanned(gpus);
    total_spanned += spanned;
    if (spanned == 1) stats.colocated_jobs += 1;
  }
  if (stats.jobs > 0) {
    stats.avg_nodes_spanned = total_spanned / static_cast<double>(stats.jobs);
  }
  return stats;
}

bool can_place_colocated(const Assignment& assignment, const Topology& topology,
                         int size) {
  ONES_EXPECT(size >= 1);
  return fragmentation_stats(assignment, topology).largest_colocated_block >= size;
}

}  // namespace ones::cluster
