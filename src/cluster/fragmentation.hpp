// Fragmentation and locality analytics over a cluster Assignment.
//
// §2.2 motivates elasticity with the fragmentation problem: idle GPUs that
// are too scattered to satisfy any pending gang request are wasted. These
// metrics quantify that — how large a gang the current free pool could
// still place with full locality, how scattered running jobs are — and feed
// examples / benches that visualize scheduler behaviour.
#pragma once

#include "cluster/assignment.hpp"
#include "cluster/topology.hpp"

namespace ones::cluster {

struct FragmentationStats {
  int idle_gpus = 0;
  /// Largest idle block within a single node (the biggest gang that can be
  /// placed with full locality).
  int largest_colocated_block = 0;
  /// Number of nodes with at least one idle GPU.
  int nodes_with_idle = 0;
  /// 0 = all idle GPUs sit on as few nodes as possible (no fragmentation);
  /// 1 = idle GPUs are maximally scattered. Undefined (0) when nothing idle.
  double scatter_index = 0.0;
};

FragmentationStats fragmentation_stats(const Assignment& assignment,
                                       const Topology& topology);

struct LocalityStats {
  int jobs = 0;              ///< running multi-GPU jobs considered
  int colocated_jobs = 0;    ///< jobs whose workers share one node
  double avg_nodes_spanned = 0.0;  ///< mean nodes spanned per multi-GPU job
};

LocalityStats locality_stats(const Assignment& assignment, const Topology& topology);

/// True iff a gang of `size` GPUs can be placed on a single node.
bool can_place_colocated(const Assignment& assignment, const Topology& topology,
                         int size);

}  // namespace ones::cluster
