// GPU cluster topology model.
//
// Mirrors the paper's testbed: N server nodes, G GPUs per node (Longhorn:
// 16 x 4 V100), fast intra-node links (NVLink) and a slower inter-node
// fabric (EDR InfiniBand). The only topology facts the scheduler's cost model
// needs are (a) which node a GPU lives on and (b) the bandwidth/latency of
// the slowest link a worker set communicates over — all-reduce runs at the
// pace of its weakest ring segment.
#pragma once

#include <vector>

#include "common/ids.hpp"

namespace ones::cluster {

struct TopologyConfig {
  int num_nodes = 16;
  int gpus_per_node = 4;
  /// Effective per-GPU NVLink bandwidth within a node (bytes/second).
  double intra_node_bw_Bps = 130.0e9;
  /// Effective per-node EDR InfiniBand bandwidth (bytes/second, ~100 Gb/s).
  double inter_node_bw_Bps = 12.0e9;
  double intra_node_latency_s = 5e-6;
  double inter_node_latency_s = 2.5e-5;
};

/// Bandwidth/latency of the slowest link inside a worker set.
struct LinkProfile {
  double bandwidth_Bps = 0.0;
  double latency_s = 0.0;
};

class Topology {
 public:
  explicit Topology(const TopologyConfig& config);

  const TopologyConfig& config() const { return config_; }
  int total_gpus() const { return config_.num_nodes * config_.gpus_per_node; }
  int num_nodes() const { return config_.num_nodes; }
  int gpus_per_node() const { return config_.gpus_per_node; }

  NodeId node_of(GpuId gpu) const;
  std::vector<GpuId> gpus_of(NodeId node) const;

  /// Number of distinct nodes touched by a worker set.
  int nodes_spanned(const std::vector<GpuId>& gpus) const;

  /// Link profile of the slowest segment among the worker set: intra-node if
  /// all workers share a node, otherwise the inter-node fabric.
  LinkProfile link_profile(const std::vector<GpuId>& gpus) const;

 private:
  TopologyConfig config_;
};

}  // namespace ones::cluster
