#include "cluster/topology.hpp"

#include <unordered_set>

#include "common/expect.hpp"

namespace ones::cluster {

Topology::Topology(const TopologyConfig& config) : config_(config) {
  ONES_EXPECT(config.num_nodes > 0);
  ONES_EXPECT(config.gpus_per_node > 0);
  ONES_EXPECT(config.intra_node_bw_Bps > 0.0 && config.inter_node_bw_Bps > 0.0);
}

NodeId Topology::node_of(GpuId gpu) const {
  ONES_EXPECT(gpu >= 0 && gpu < total_gpus());
  return gpu / config_.gpus_per_node;
}

std::vector<GpuId> Topology::gpus_of(NodeId node) const {
  ONES_EXPECT(node >= 0 && node < config_.num_nodes);
  std::vector<GpuId> out;
  out.reserve(config_.gpus_per_node);
  for (int i = 0; i < config_.gpus_per_node; ++i) {
    out.push_back(node * config_.gpus_per_node + i);
  }
  return out;
}

int Topology::nodes_spanned(const std::vector<GpuId>& gpus) const {
  std::unordered_set<NodeId> nodes;
  for (GpuId g : gpus) nodes.insert(node_of(g));
  return static_cast<int>(nodes.size());
}

LinkProfile Topology::link_profile(const std::vector<GpuId>& gpus) const {
  ONES_EXPECT(!gpus.empty());
  if (nodes_spanned(gpus) <= 1) {
    return {config_.intra_node_bw_Bps, config_.intra_node_latency_s};
  }
  return {config_.inter_node_bw_Bps, config_.inter_node_latency_s};
}

}  // namespace ones::cluster
