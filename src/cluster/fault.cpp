#include "cluster/fault.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace ones::cluster {

namespace {

constexpr int kGpuKind = 0;
constexpr int kNodeKind = 1;
constexpr int kReclaimKind = 2;

/// Seed for the (kind, entity) process stream: mixed through splitmix64 by
/// the Rng constructor, so consecutive entities get decorrelated streams.
std::uint64_t stream_seed(std::uint64_t root, int kind, int entity) {
  return root + 0x100000001b3ULL * static_cast<std::uint64_t>(kind) +
         0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(entity + 1);
}

}  // namespace

void FaultConfig::validate() const {
  ONES_EXPECT_MSG(gpu_mtbf_s >= 0.0 && node_mtbf_s >= 0.0 && reclaim_mtbf_s >= 0.0,
                  "fault MTBFs must be non-negative");
  ONES_EXPECT_MSG(spot_fraction >= 0.0 && spot_fraction <= 1.0,
                  "spot_fraction must lie in [0, 1]");
  if (gpu_mtbf_s > 0.0) ONES_EXPECT_MSG(gpu_repair_s > 0.0, "gpu_repair_s must be > 0");
  if (node_mtbf_s > 0.0) ONES_EXPECT_MSG(node_repair_s > 0.0, "node_repair_s must be > 0");
  if (reclaim_mtbf_s > 0.0) {
    ONES_EXPECT_MSG(reclaim_return_s > 0.0, "reclaim_return_s must be > 0");
  }
  ONES_EXPECT_MSG(checkpoint_interval_s > 0.0, "checkpoint_interval_s must be > 0");
  ONES_EXPECT_MSG(retry_backoff_s >= 0.0, "retry_backoff_s must be non-negative");
  ONES_EXPECT_MSG(max_restarts >= 0, "max_restarts must be non-negative");
}

int spot_node_count(const FaultConfig& config, int num_nodes) {
  return static_cast<int>(std::floor(config.spot_fraction * num_nodes + 1e-9));
}

FaultInjector::FaultInjector(const FaultConfig& config, const Topology& topology)
    : config_(config), topology_(topology) {
  config_.validate();
  const int gpus = topology_.total_gpus();
  const int nodes = topology_.num_nodes();
  spot_nodes_ = spot_node_count(config_, nodes);
  effective_.assign(static_cast<std::size_t>(gpus), SlotHealth::Healthy);

  auto make = [&](int kind, int entity, double mtbf, double repair) {
    Process p{Rng(stream_seed(config_.seed, kind, entity)), 0.0, 0.0, false, 0};
    if (mtbf > 0.0) {
      p.up_rate = 1.0 / mtbf;
      p.down_rate = 1.0 / repair;
    }
    return p;
  };
  gpu_.reserve(static_cast<std::size_t>(gpus));
  for (int g = 0; g < gpus; ++g) {
    gpu_.push_back(make(kGpuKind, g, config_.gpu_mtbf_s, config_.gpu_repair_s));
  }
  node_.reserve(static_cast<std::size_t>(nodes));
  reclaim_.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    node_.push_back(make(kNodeKind, n, config_.node_mtbf_s, config_.node_repair_s));
    const bool spot = n >= nodes - spot_nodes_;
    reclaim_.push_back(make(kReclaimKind, n,
                            spot ? config_.reclaim_mtbf_s : 0.0,
                            config_.reclaim_return_s));
  }
}

void FaultInjector::start(sim::SimEngine& engine, HealthHook hook) {
  ONES_EXPECT_MSG(engine_ == nullptr, "FaultInjector::start called twice");
  engine_ = &engine;
  hook_ = std::move(hook);
  for (int g = 0; g < static_cast<int>(gpu_.size()); ++g) {
    arm(gpu_[static_cast<std::size_t>(g)], kGpuKind, g);
  }
  for (int n = 0; n < static_cast<int>(node_.size()); ++n) {
    arm(node_[static_cast<std::size_t>(n)], kNodeKind, n);
    arm(reclaim_[static_cast<std::size_t>(n)], kReclaimKind, n);
  }
}

void FaultInjector::halt() {
  if (engine_ == nullptr) return;
  auto disarm = [&](Process& p) {
    if (p.pending != 0) {
      engine_->cancel(p.pending);
      p.pending = 0;
    }
  };
  for (auto& p : gpu_) disarm(p);
  for (auto& p : node_) disarm(p);
  for (auto& p : reclaim_) disarm(p);
}

SlotHealth FaultInjector::health(GpuId gpu) const {
  const auto n = static_cast<std::size_t>(topology_.node_of(gpu));
  if (gpu_[static_cast<std::size_t>(gpu)].down || node_[n].down) {
    return SlotHealth::Failed;
  }
  if (reclaim_[n].down) return SlotHealth::Reclaimed;
  return SlotHealth::Healthy;
}

void FaultInjector::arm(Process& p, int kind, int entity) {
  if (p.up_rate <= 0.0) return;  // process disabled
  const double rate = p.down ? p.down_rate : p.up_rate;
  const double delay = p.rng.exponential(rate);
  p.pending = engine_->schedule_after(delay, [this, kind, entity] {
    toggle(kind, entity);
  });
}

void FaultInjector::toggle(int kind, int entity) {
  auto& family = kind == kGpuKind ? gpu_ : kind == kNodeKind ? node_ : reclaim_;
  Process& p = family[static_cast<std::size_t>(entity)];
  p.pending = 0;
  p.down = !p.down;
  if (p.down) {
    if (kind == kGpuKind) ++gpu_faults_;
    if (kind == kNodeKind) ++node_crashes_;
    if (kind == kReclaimKind) ++reclaims_;
  } else {
    ++repairs_;
  }
  std::vector<HealthChange> changes;
  if (kind == kGpuKind) {
    refresh_gpu(entity, changes);
  } else {
    for (const GpuId g : topology_.gpus_of(entity)) refresh_gpu(g, changes);
  }
  arm(p, kind, entity);
  if (!changes.empty() && hook_) hook_(changes);
}

void FaultInjector::refresh_gpu(GpuId gpu, std::vector<HealthChange>& changes) {
  const SlotHealth now = health(gpu);
  SlotHealth& last = effective_[static_cast<std::size_t>(gpu)];
  if (now == last) return;
  last = now;
  changes.push_back({gpu, now});
}

}  // namespace ones::cluster
