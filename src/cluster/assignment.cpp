#include "cluster/assignment.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/expect.hpp"

namespace ones::cluster {

namespace {

/// Sorted-insert into an ascending vector (no duplicates expected).
template <typename T>
void insert_sorted(std::vector<T>& v, T value) {
  v.insert(std::lower_bound(v.begin(), v.end(), value), value);
}

/// Remove `value` from an ascending vector; it must be present.
template <typename T>
void erase_sorted(std::vector<T>& v, T value) {
  const auto it = std::lower_bound(v.begin(), v.end(), value);
  ONES_EXPECT_MSG(it != v.end() && *it == value, "index entry missing");
  v.erase(it);
}

}  // namespace

const char* to_string(SlotHealth h) {
  switch (h) {
    case SlotHealth::Healthy: return "healthy";
    case SlotHealth::Failed: return "failed";
    case SlotHealth::Reclaimed: return "reclaimed";
  }
  return "?";
}

Assignment::Assignment(int num_gpus) : slots_(static_cast<std::size_t>(num_gpus)) {
  ONES_EXPECT(num_gpus >= 0);
  idle_.resize(static_cast<std::size_t>(num_gpus));
  for (int g = 0; g < num_gpus; ++g) idle_[static_cast<std::size_t>(g)] = g;
}

const Slot& Assignment::slot(GpuId gpu) const {
  ONES_EXPECT(gpu >= 0 && gpu < num_gpus());
  return slots_[static_cast<std::size_t>(gpu)];
}

const Assignment::JobStat* Assignment::find_stat(JobId job) const {
  const auto it = std::lower_bound(
      jobs_.begin(), jobs_.end(), job,
      [](const JobStat& s, JobId j) { return s.job < j; });
  if (it == jobs_.end() || it->job != job) return nullptr;
  return &*it;
}

Assignment::JobStat* Assignment::find_stat(JobId job) {
  return const_cast<JobStat*>(std::as_const(*this).find_stat(job));
}

void Assignment::attach(JobId job, GpuId gpu, int local_batch) {
  JobStat* stat = find_stat(job);
  if (stat == nullptr) {
    const auto it = std::lower_bound(
        jobs_.begin(), jobs_.end(), job,
        [](const JobStat& s, JobId j) { return s.job < j; });
    stat = &*jobs_.insert(it, JobStat{job, 0, {}});
  }
  stat->global_batch += local_batch;
  insert_sorted(stat->gpus, gpu);
}

void Assignment::detach(JobId job, GpuId gpu, int local_batch) {
  JobStat* stat = find_stat(job);
  ONES_EXPECT_MSG(stat != nullptr, "job index entry missing");
  stat->global_batch -= local_batch;
  erase_sorted(stat->gpus, gpu);
  if (stat->gpus.empty()) {
    jobs_.erase(jobs_.begin() + (stat - jobs_.data()));
  }
}

void Assignment::place(GpuId gpu, JobId job, int local_batch) {
  ONES_EXPECT(gpu >= 0 && gpu < num_gpus());
  ONES_EXPECT_MSG(job != kInvalidJob, "cannot place the invalid job");
  ONES_EXPECT_MSG(local_batch >= 1, "a worker needs at least one sample per step");
  Slot& s = slots_[static_cast<std::size_t>(gpu)];
  ONES_EXPECT_MSG(s.healthy(), "cannot place a worker on a down GPU");
  if (s.occupied()) {
    if (s.job == job) {
      // Same job, possibly a new batch: only the batch sum moves.
      find_stat(job)->global_batch += local_batch - s.local_batch;
      s.local_batch = local_batch;
      return;
    }
    detach(s.job, gpu, s.local_batch);
  } else {
    erase_sorted(idle_, gpu);
  }
  s = Slot{job, local_batch, s.health};
  attach(job, gpu, local_batch);
}

void Assignment::clear(GpuId gpu) {
  ONES_EXPECT(gpu >= 0 && gpu < num_gpus());
  Slot& s = slots_[static_cast<std::size_t>(gpu)];
  if (!s.occupied()) return;
  detach(s.job, gpu, s.local_batch);
  if (s.healthy()) insert_sorted(idle_, gpu);
  s = Slot{kInvalidJob, 0, s.health};
}

int Assignment::evict(JobId job) {
  const JobStat* stat = find_stat(job);
  if (stat == nullptr) return 0;
  const int freed = static_cast<int>(stat->gpus.size());
  const std::size_t old_idle = idle_.size();
  for (const GpuId g : stat->gpus) {
    Slot& s = slots_[static_cast<std::size_t>(g)];
    if (s.healthy()) idle_.push_back(g);
    s = Slot{kInvalidJob, 0, s.health};
  }
  // Both halves are ascending: one merge instead of c_j binary inserts.
  std::inplace_merge(idle_.begin(),
                     idle_.begin() + static_cast<std::ptrdiff_t>(old_idle),
                     idle_.end());
  jobs_.erase(jobs_.begin() + (stat - jobs_.data()));
  return freed;
}

void Assignment::set_health(GpuId gpu, SlotHealth health) {
  ONES_EXPECT(gpu >= 0 && gpu < num_gpus());
  Slot& s = slots_[static_cast<std::size_t>(gpu)];
  if (s.health == health) return;
  const bool was_healthy = s.healthy();
  s.health = health;
  if (was_healthy && !s.healthy()) {
    insert_sorted(down_, gpu);
    if (!s.occupied()) erase_sorted(idle_, gpu);
  } else if (!was_healthy && s.healthy()) {
    erase_sorted(down_, gpu);
    if (!s.occupied()) insert_sorted(idle_, gpu);
  }
  // Failed <-> Reclaimed: membership in both indexes is unchanged.
}

SlotHealth Assignment::health(GpuId gpu) const {
  ONES_EXPECT(gpu >= 0 && gpu < num_gpus());
  return slots_[static_cast<std::size_t>(gpu)].health;
}

int Assignment::healthy_count() const {
  return num_gpus() - static_cast<int>(down_.size());
}

void Assignment::sync_health(const Assignment& from) {
  ONES_EXPECT(num_gpus() == from.num_gpus());
  // Only GPUs down on either side can differ; walk the union of both down
  // lists instead of all G slots.
  std::vector<GpuId> touched;
  touched.reserve(down_.size() + from.down_.size());
  std::set_union(down_.begin(), down_.end(), from.down_.begin(),
                 from.down_.end(), std::back_inserter(touched));
  for (const GpuId g : touched) {
    const SlotHealth target = from.slots_[static_cast<std::size_t>(g)].health;
    const Slot& s = slots_[static_cast<std::size_t>(g)];
    if (s.health == target) continue;
    if (target != SlotHealth::Healthy && s.occupied()) clear(g);
    set_health(g, target);
  }
}

Assignment Assignment::empty_like(const Assignment& a) {
  Assignment out(a.num_gpus());
  for (const GpuId g : a.down_) out.set_health(g, a.health(g));
  return out;
}

void Assignment::set_local_batch(GpuId gpu, int local_batch) {
  ONES_EXPECT(gpu >= 0 && gpu < num_gpus());
  ONES_EXPECT(local_batch >= 1);
  auto& s = slots_[static_cast<std::size_t>(gpu)];
  ONES_EXPECT_MSG(s.occupied(), "cannot set a batch size on an idle GPU");
  find_stat(s.job)->global_batch += local_batch - s.local_batch;
  s.local_batch = local_batch;
}

int Assignment::global_batch(JobId job) const {
  const JobStat* stat = find_stat(job);
  return stat != nullptr ? stat->global_batch : 0;
}

int Assignment::gpu_count(JobId job) const {
  const JobStat* stat = find_stat(job);
  return stat != nullptr ? static_cast<int>(stat->gpus.size()) : 0;
}

std::vector<GpuId> Assignment::gpus_of(JobId job) const {
  const JobStat* stat = find_stat(job);
  return stat != nullptr ? stat->gpus : std::vector<GpuId>{};
}

std::vector<JobId> Assignment::running_jobs() const {
  // First-occurrence order over the slot array == ascending order of each
  // job's lowest-numbered GPU (two jobs cannot share a GPU).
  std::vector<const JobStat*> by_front;
  by_front.reserve(jobs_.size());
  for (const JobStat& s : jobs_) by_front.push_back(&s);
  std::sort(by_front.begin(), by_front.end(),
            [](const JobStat* a, const JobStat* b) {
              return a->gpus.front() < b->gpus.front();
            });
  std::vector<JobId> out;
  out.reserve(by_front.size());
  for (const JobStat* s : by_front) out.push_back(s->job);
  return out;
}

std::vector<GpuId> Assignment::idle_gpus() const { return idle_; }

int Assignment::idle_count() const { return static_cast<int>(idle_.size()); }

bool Assignment::same_placement(const Assignment& other, JobId job) const {
  const JobStat* a = find_stat(job);
  const JobStat* b = other.find_stat(job);
  if ((a == nullptr) != (b == nullptr)) return false;
  if (a == nullptr) return true;
  if (a->gpus != b->gpus) return false;
  for (const GpuId g : a->gpus) {
    if (slots_[static_cast<std::size_t>(g)].local_batch !=
        other.slots_[static_cast<std::size_t>(g)].local_batch) {
      return false;
    }
  }
  return true;
}

std::string Assignment::to_string() const {
  std::ostringstream os;
  os << "[";
  for (int g = 0; g < num_gpus(); ++g) {
    if (g > 0) os << " ";
    const auto& s = slots_[static_cast<std::size_t>(g)];
    if (s.occupied()) {
      os << s.job << ":" << s.local_batch;
    } else {
      os << "-";
    }
    if (s.health == SlotHealth::Failed) os << "!";
    if (s.health == SlotHealth::Reclaimed) os << "~";
  }
  os << "]";
  return os.str();
}

void Assignment::check_invariants() const {
  for (const auto& s : slots_) {
    if (s.occupied()) {
      ONES_EXPECT_MSG(s.local_batch >= 1, "occupied slot with local batch < 1");
    } else {
      ONES_EXPECT_MSG(s.local_batch == 0, "idle slot carries a batch size");
    }
  }
}

void Assignment::audit_indexes() const {
  std::vector<GpuId> idle;
  std::vector<GpuId> down;
  std::vector<JobStat> jobs;
  for (int g = 0; g < num_gpus(); ++g) {
    const Slot& s = slots_[static_cast<std::size_t>(g)];
    if (!s.healthy()) down.push_back(g);
    if (!s.occupied()) {
      if (s.healthy()) idle.push_back(g);
      continue;
    }
    const auto it = std::lower_bound(
        jobs.begin(), jobs.end(), s.job,
        [](const JobStat& a, JobId j) { return a.job < j; });
    if (it == jobs.end() || it->job != s.job) {
      jobs.insert(it, JobStat{s.job, s.local_batch, {g}});
    } else {
      it->global_batch += s.local_batch;
      it->gpus.push_back(g);  // g ascending: stays sorted
    }
  }
  ONES_EXPECT_MSG(idle == idle_, "idle-GPU index diverged from the slot array");
  ONES_EXPECT_MSG(down == down_, "down-GPU index diverged from the slot array");
  ONES_EXPECT_MSG(jobs.size() == jobs_.size(),
                  "job index has the wrong number of entries");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ONES_EXPECT_MSG(jobs[i].job == jobs_[i].job, "job index diverged: wrong job");
    ONES_EXPECT_MSG(jobs[i].global_batch == jobs_[i].global_batch,
                    "job index diverged: stale global batch");
    ONES_EXPECT_MSG(jobs[i].gpus == jobs_[i].gpus,
                    "job index diverged: stale GPU list");
  }
}

AssignmentDelta diff(const Assignment& prev, const Assignment& next) {
  ONES_EXPECT(prev.num_gpus() == next.num_gpus());
  AssignmentDelta d;
  // Membership tests against id-sorted copies; output order still comes from
  // running_jobs() (first-occurrence), exactly as before.
  std::vector<JobId> prev_ids = prev.running_jobs();
  std::vector<JobId> next_ids = next.running_jobs();
  std::vector<JobId> prev_sorted = prev_ids;
  std::vector<JobId> next_sorted = next_ids;
  std::sort(prev_sorted.begin(), prev_sorted.end());
  std::sort(next_sorted.begin(), next_sorted.end());

  for (const JobId j : next_ids) {
    if (!std::binary_search(prev_sorted.begin(), prev_sorted.end(), j)) {
      d.started.push_back(j);
      continue;
    }
    // Same job on both sides: did its placement or batches change?
    (prev.same_placement(next, j) ? d.unchanged : d.reconfigured).push_back(j);
  }
  for (const JobId j : prev_ids) {
    if (!std::binary_search(next_sorted.begin(), next_sorted.end(), j)) {
      d.stopped.push_back(j);
    }
  }
  return d;
}

}  // namespace ones::cluster
