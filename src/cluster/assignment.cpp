#include "cluster/assignment.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/expect.hpp"

namespace ones::cluster {

Assignment::Assignment(int num_gpus) : slots_(static_cast<std::size_t>(num_gpus)) {
  ONES_EXPECT(num_gpus >= 0);
}

const Slot& Assignment::slot(GpuId gpu) const {
  ONES_EXPECT(gpu >= 0 && gpu < num_gpus());
  return slots_[static_cast<std::size_t>(gpu)];
}

void Assignment::place(GpuId gpu, JobId job, int local_batch) {
  ONES_EXPECT(gpu >= 0 && gpu < num_gpus());
  ONES_EXPECT_MSG(job != kInvalidJob, "cannot place the invalid job");
  ONES_EXPECT_MSG(local_batch >= 1, "a worker needs at least one sample per step");
  slots_[static_cast<std::size_t>(gpu)] = Slot{job, local_batch};
}

void Assignment::clear(GpuId gpu) {
  ONES_EXPECT(gpu >= 0 && gpu < num_gpus());
  slots_[static_cast<std::size_t>(gpu)] = Slot{};
}

int Assignment::evict(JobId job) {
  int freed = 0;
  for (auto& s : slots_) {
    if (s.job == job) {
      s = Slot{};
      ++freed;
    }
  }
  return freed;
}

void Assignment::set_local_batch(GpuId gpu, int local_batch) {
  ONES_EXPECT(gpu >= 0 && gpu < num_gpus());
  ONES_EXPECT(local_batch >= 1);
  auto& s = slots_[static_cast<std::size_t>(gpu)];
  ONES_EXPECT_MSG(s.occupied(), "cannot set a batch size on an idle GPU");
  s.local_batch = local_batch;
}

int Assignment::global_batch(JobId job) const {
  int b = 0;
  for (const auto& s : slots_) {
    if (s.job == job) b += s.local_batch;
  }
  return b;
}

int Assignment::gpu_count(JobId job) const {
  int c = 0;
  for (const auto& s : slots_) {
    if (s.job == job) ++c;
  }
  return c;
}

std::vector<GpuId> Assignment::gpus_of(JobId job) const {
  std::vector<GpuId> out;
  for (int g = 0; g < num_gpus(); ++g) {
    if (slots_[static_cast<std::size_t>(g)].job == job) out.push_back(g);
  }
  return out;
}

std::vector<JobId> Assignment::running_jobs() const {
  std::vector<JobId> out;
  std::unordered_set<JobId> seen;
  for (const auto& s : slots_) {
    if (s.occupied() && seen.insert(s.job).second) out.push_back(s.job);
  }
  return out;
}

std::vector<GpuId> Assignment::idle_gpus() const {
  std::vector<GpuId> out;
  for (int g = 0; g < num_gpus(); ++g) {
    if (!slots_[static_cast<std::size_t>(g)].occupied()) out.push_back(g);
  }
  return out;
}

int Assignment::idle_count() const {
  int n = 0;
  for (const auto& s : slots_) {
    if (!s.occupied()) ++n;
  }
  return n;
}

std::string Assignment::to_string() const {
  std::ostringstream os;
  os << "[";
  for (int g = 0; g < num_gpus(); ++g) {
    if (g > 0) os << " ";
    const auto& s = slots_[static_cast<std::size_t>(g)];
    if (s.occupied()) {
      os << s.job << ":" << s.local_batch;
    } else {
      os << "-";
    }
  }
  os << "]";
  return os.str();
}

void Assignment::check_invariants() const {
  for (const auto& s : slots_) {
    if (s.occupied()) {
      ONES_EXPECT_MSG(s.local_batch >= 1, "occupied slot with local batch < 1");
    } else {
      ONES_EXPECT_MSG(s.local_batch == 0, "idle slot carries a batch size");
    }
  }
}

AssignmentDelta diff(const Assignment& prev, const Assignment& next) {
  ONES_EXPECT(prev.num_gpus() == next.num_gpus());
  AssignmentDelta d;
  std::unordered_set<JobId> prev_jobs, next_jobs;
  for (JobId j : prev.running_jobs()) prev_jobs.insert(j);
  for (JobId j : next.running_jobs()) next_jobs.insert(j);

  for (JobId j : next.running_jobs()) {
    if (!prev_jobs.count(j)) {
      d.started.push_back(j);
      continue;
    }
    // Same job on both sides: did its placement or batches change?
    bool changed = false;
    for (int g = 0; g < prev.num_gpus(); ++g) {
      const auto& a = prev.slot(g);
      const auto& b = next.slot(g);
      const bool a_mine = a.job == j;
      const bool b_mine = b.job == j;
      if (a_mine != b_mine || (a_mine && a.local_batch != b.local_batch)) {
        changed = true;
        break;
      }
    }
    (changed ? d.reconfigured : d.unchanged).push_back(j);
  }
  for (JobId j : prev.running_jobs()) {
    if (!next_jobs.count(j)) d.stopped.push_back(j);
  }
  return d;
}

}  // namespace ones::cluster
