// Deterministic GPU fault injection (DESIGN.md §13).
//
// Three independent families of on/off Markov processes perturb the
// cluster's capacity:
//   * per-GPU transient faults   (ECC storms, XID errors)   -> Failed
//   * per-node crashes           (host reboot, fabric loss) -> Failed
//   * per-spot-node reclaims     (preemptible capacity)     -> Reclaimed
// Each process alternates exponentially distributed up and down intervals
// drawn from its OWN `ones::Rng` stream (seeded from FaultConfig::seed and
// the process identity), so the fault schedule for a given config is a pure
// function of the seed — independent of thread count, scheduler choice and
// everything else happening in the simulation. A GPU's effective health is
// the AND of the three processes covering it: Failed if its GPU or node
// process is down, else Reclaimed if its node's reclaim process is down,
// else Healthy.
//
// The injector only decides WHEN capacity changes; the driver
// (`sched::ClusterSimulation`) owns what happens next: masking the GPU out
// of the idle index, shrinking or checkpoint-restarting the victim jobs,
// and emitting GpuFailed/GpuRepaired trace records.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/assignment.hpp"
#include "cluster/topology.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace ones::cluster {

/// Fault model + recovery policy knobs. A cache-key input (schema v4): every
/// field participates in `exp::canonical_serialize`. All-defaults means
/// `enabled() == false` and the simulation is bit-identical to a build
/// without the subsystem.
struct FaultConfig {
  /// Root seed for every fault process stream.
  std::uint64_t seed = 9021;

  /// Mean time between transient faults per GPU (seconds); 0 disables.
  double gpu_mtbf_s = 0.0;
  /// Mean repair time of a transient GPU fault.
  double gpu_repair_s = 120.0;

  /// Mean time between crashes per node; 0 disables.
  double node_mtbf_s = 0.0;
  /// Mean node repair (reboot) time.
  double node_repair_s = 600.0;

  /// Fraction of nodes that are spot/preemptible capacity (the tail of the
  /// node id range, so the set is a pure function of the topology).
  double spot_fraction = 0.0;
  /// Mean time until a spot node is reclaimed; 0 disables reclaims.
  double reclaim_mtbf_s = 0.0;
  /// Mean time until reclaimed capacity returns.
  double reclaim_return_s = 900.0;

  // ---- Recovery policy (consumed by the driver) ----

  /// Jobs checkpoint every this many seconds of progress; work since the
  /// last checkpoint is lost on a full restart.
  double checkpoint_interval_s = 600.0;
  /// Base of the exponential redeployment backoff: retry k (1-based) waits
  /// retry_backoff_s * 2^(k-1) before asking for capacity again.
  double retry_backoff_s = 30.0;
  /// Restart attempts per job before it aborts (lost work accounted).
  int max_restarts = 4;

  bool enabled() const {
    return gpu_mtbf_s > 0.0 || node_mtbf_s > 0.0 ||
           (reclaim_mtbf_s > 0.0 && spot_fraction > 0.0);
  }

  /// Throws std::logic_error on non-sensical values (negative rates,
  /// spot_fraction outside [0,1], enabled process with repair time <= 0).
  void validate() const;
};

/// Number of spot nodes implied by `spot_fraction` (rounded down); spot
/// nodes are the tail [num_nodes - spot, num_nodes) of the id range.
int spot_node_count(const FaultConfig& config, int num_nodes);

/// One GPU's effective health changing (batched per fault event).
struct HealthChange {
  GpuId gpu = -1;
  SlotHealth health = SlotHealth::Healthy;
};

class FaultInjector {
 public:
  /// Callback invoked once per fault event with every GPU whose effective
  /// health changed (ascending GPU order), so a node crash that takes four
  /// GPUs from one job surfaces as ONE capacity change, not four.
  using HealthHook = std::function<void(const std::vector<HealthChange>&)>;

  FaultInjector(const FaultConfig& config, const Topology& topology);

  /// Schedule the first transition of every enabled process on `engine` and
  /// route health changes into `hook`. Call at most once.
  void start(sim::SimEngine& engine, HealthHook hook);

  /// Cancel all pending transitions (used when the workload completes, so
  /// an otherwise-idle simulation does not keep firing fault events until
  /// the time horizon).
  void halt();

  /// Effective health of a GPU right now.
  SlotHealth health(GpuId gpu) const;

  // Lifetime counters (telemetry / bench output).
  std::uint64_t gpu_faults() const { return gpu_faults_; }
  std::uint64_t node_crashes() const { return node_crashes_; }
  std::uint64_t reclaims() const { return reclaims_; }
  std::uint64_t repairs() const { return repairs_; }

 private:
  /// One on/off process: its own rng stream, current phase and pending
  /// engine event.
  struct Process {
    Rng rng;
    double up_rate = 0.0;    ///< 1 / MTBF
    double down_rate = 0.0;  ///< 1 / mean repair
    bool down = false;
    sim::EventId pending = 0;
  };

  void arm(Process& p, int kind, int entity);
  void toggle(int kind, int entity);
  /// Re-derive the effective health of `gpu` from the three process states
  /// and append to `changes` if it moved.
  void refresh_gpu(GpuId gpu, std::vector<HealthChange>& changes);

  const FaultConfig config_;
  const Topology& topology_;
  sim::SimEngine* engine_ = nullptr;
  HealthHook hook_;

  std::vector<Process> gpu_;      ///< one per GPU (transient faults)
  std::vector<Process> node_;     ///< one per node (crashes)
  std::vector<Process> reclaim_;  ///< one per node (spot nodes only armed)
  int spot_nodes_ = 0;
  std::vector<SlotHealth> effective_;  ///< last health reported per GPU

  std::uint64_t gpu_faults_ = 0;
  std::uint64_t node_crashes_ = 0;
  std::uint64_t reclaims_ = 0;
  std::uint64_t repairs_ = 0;
};

}  // namespace ones::cluster
