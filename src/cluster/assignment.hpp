// Cluster-wide schedule: the mapping S : J x C -> {b_j^i} from the paper
// (Eq. 1). One slot per GPU holds the job running there and its local batch
// size; a job's global batch size B_j and GPU count c_j follow from Eq. 2.
//
// This type doubles as the *genome* of the evolutionary search (Figure 1):
// the refresh / crossover / mutation / reorder operators all manipulate
// Assignments directly.
//
// The per-GPU slot array stays the source of truth, but every derived view
// (idle GPUs, per-job GPU lists, global batches) is answered from indexes
// maintained incrementally by the mutators (DESIGN.md §12). The evolutionary
// search calls idle_gpus / gpus_of / global_batch inside its per-candidate
// loops, so O(G) rescans there are what made 10k-GPU clusters infeasible.
// The indexes are flat sorted vectors — no unordered containers, so
// iteration order is deterministic by construction (tools/ones_lint R2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace ones::cluster {

/// Health of a GPU slot (DESIGN.md §13). Only Healthy GPUs are placeable;
/// Failed covers hardware faults and node crashes, Reclaimed covers spot
/// capacity taken back by the provider. The distinction is cosmetic to the
/// schedulers (both mask the GPU) but kept for telemetry and traces.
enum class SlotHealth : std::uint8_t { Healthy = 0, Failed = 1, Reclaimed = 2 };

const char* to_string(SlotHealth h);

/// Per-GPU gene: which job runs on this device and with what local batch.
struct Slot {
  JobId job = kInvalidJob;
  int local_batch = 0;
  SlotHealth health = SlotHealth::Healthy;

  bool occupied() const { return job != kInvalidJob; }
  bool healthy() const { return health == SlotHealth::Healthy; }
  bool operator==(const Slot&) const = default;
};

class Assignment {
 public:
  Assignment() = default;
  explicit Assignment(int num_gpus);

  int num_gpus() const { return static_cast<int>(slots_.size()); }
  const Slot& slot(GpuId gpu) const;

  /// Place a worker of `job` on `gpu` with `local_batch` >= 1 samples.
  /// Overwrites whatever was there (preemption is the caller's policy call).
  void place(GpuId gpu, JobId job, int local_batch);

  /// Free a GPU.
  void clear(GpuId gpu);

  /// Remove all workers of a job; returns the number of GPUs freed.
  int evict(JobId job);

  /// Change the local batch on a GPU already running `job`.
  void set_local_batch(GpuId gpu, int local_batch);

  // ---- Health (DESIGN.md §13) ----

  /// Change a GPU's health. An unoccupied GPU leaves/rejoins the idle index
  /// as it sickens/heals; an occupied GPU keeps its worker — routing that
  /// worker into recovery is the driver's job (`place` refuses unhealthy
  /// GPUs, so the transient occupied-but-down state can only arise here).
  void set_health(GpuId gpu, SlotHealth health);

  SlotHealth health(GpuId gpu) const;
  /// Number of Healthy GPUs (occupied or not).
  int healthy_count() const;
  /// GPUs whose health is not Healthy, in ascending GPU order.
  const std::vector<GpuId>& unhealthy_gpus() const { return down_; }

  /// Copy `from`'s per-GPU health states onto this assignment (same size).
  /// A slot here that is occupied but newly unhealthy is cleared first, so
  /// the result never places a worker on a down GPU. Used to refresh cached
  /// genomes (the evolutionary population) against the live cluster.
  void sync_health(const Assignment& from);

  /// An empty (all-idle) assignment with the same size and health map as
  /// `a` — the health-aware replacement for `Assignment(a.num_gpus())` when
  /// building candidate schedules from scratch.
  static Assignment empty_like(const Assignment& a);

  // ---- Derived views (Eq. 2) ----

  /// Global batch size B_j (0 if the job is not placed).
  int global_batch(JobId job) const;
  /// Number of GPUs c_j.
  int gpu_count(JobId job) const;
  /// GPUs hosting workers of the job, in ascending GPU order.
  std::vector<GpuId> gpus_of(JobId job) const;
  /// Jobs with at least one worker, in first-occurrence order.
  std::vector<JobId> running_jobs() const;
  /// Healthy GPUs with no worker (down GPUs are never idle: schedulers read
  /// capacity exclusively through this index, which is what masks them).
  std::vector<GpuId> idle_gpus() const;
  int idle_count() const;

  /// True iff `job` occupies the same GPUs with the same local batches in
  /// both schedules (also true when it is absent from both). This is the
  /// per-job "did its configuration change" predicate the diff and the
  /// evolutionary switching surcharge are built on; O(c_j), not O(G).
  bool same_placement(const Assignment& other, JobId job) const;

  /// Two schedules are equal iff their slot arrays are equal; the indexes
  /// are a pure function of the slots, so they never need comparing.
  bool operator==(const Assignment& other) const { return slots_ == other.slots_; }

  /// Compact human-readable rendering (for logs and examples):
  /// "[1:256 1:256 - 7:512]".
  std::string to_string() const;

  /// Validate Eq. 4 style invariants: every occupied slot has local_batch>=1,
  /// every idle slot has local_batch==0. Throws on violation.
  void check_invariants() const;

  /// Audit mode (DESIGN.md §12): recompute every incremental index from the
  /// slot array and throw (std::logic_error via ONES_EXPECT) on any
  /// divergence. O(G log G); meant for tests and the driver's
  /// `audit_incremental` flag, not for hot paths.
  void audit_indexes() const;

 private:
  /// Per-job index entry. `gpus` is ascending; `global_batch` is the sum of
  /// the member slots' local batches.
  struct JobStat {
    JobId job = kInvalidJob;
    int global_batch = 0;
    std::vector<GpuId> gpus;
  };

  /// jobs_ position of `job`, or nullptr if it holds no GPU (binary search:
  /// jobs_ is sorted by JobId).
  const JobStat* find_stat(JobId job) const;
  JobStat* find_stat(JobId job);
  /// Add `gpu` (running `local_batch`) to the job's stat, creating it if the
  /// job was not placed anywhere.
  void attach(JobId job, GpuId gpu, int local_batch);
  /// Remove `gpu` from the job's stat, dropping the stat when it empties.
  void detach(JobId job, GpuId gpu, int local_batch);

  std::vector<Slot> slots_;
  std::vector<GpuId> idle_;     ///< ascending; healthy AND unoccupied only
  std::vector<GpuId> down_;     ///< ascending; health != Healthy
  std::vector<JobStat> jobs_;   ///< ascending by JobId
};

/// Difference between two schedules, used to charge scaling costs only to
/// jobs whose configuration actually changed.
struct AssignmentDelta {
  std::vector<JobId> started;      ///< jobs with workers only in `next`
  std::vector<JobId> stopped;      ///< jobs with workers only in `prev`
  std::vector<JobId> reconfigured; ///< jobs whose worker set or batches changed
  std::vector<JobId> unchanged;
};

AssignmentDelta diff(const Assignment& prev, const Assignment& next);

}  // namespace ones::cluster
