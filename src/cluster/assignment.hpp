// Cluster-wide schedule: the mapping S : J x C -> {b_j^i} from the paper
// (Eq. 1). One slot per GPU holds the job running there and its local batch
// size; a job's global batch size B_j and GPU count c_j follow from Eq. 2.
//
// This type doubles as the *genome* of the evolutionary search (Figure 1):
// the refresh / crossover / mutation / reorder operators all manipulate
// Assignments directly.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"

namespace ones::cluster {

/// Per-GPU gene: which job runs on this device and with what local batch.
struct Slot {
  JobId job = kInvalidJob;
  int local_batch = 0;

  bool occupied() const { return job != kInvalidJob; }
  bool operator==(const Slot&) const = default;
};

class Assignment {
 public:
  Assignment() = default;
  explicit Assignment(int num_gpus);

  int num_gpus() const { return static_cast<int>(slots_.size()); }
  const Slot& slot(GpuId gpu) const;

  /// Place a worker of `job` on `gpu` with `local_batch` >= 1 samples.
  /// Overwrites whatever was there (preemption is the caller's policy call).
  void place(GpuId gpu, JobId job, int local_batch);

  /// Free a GPU.
  void clear(GpuId gpu);

  /// Remove all workers of a job; returns the number of GPUs freed.
  int evict(JobId job);

  /// Change the local batch on a GPU already running `job`.
  void set_local_batch(GpuId gpu, int local_batch);

  // ---- Derived views (Eq. 2) ----

  /// Global batch size B_j (0 if the job is not placed).
  int global_batch(JobId job) const;
  /// Number of GPUs c_j.
  int gpu_count(JobId job) const;
  /// GPUs hosting workers of the job, in ascending GPU order.
  std::vector<GpuId> gpus_of(JobId job) const;
  /// Jobs with at least one worker, in first-occurrence order.
  std::vector<JobId> running_jobs() const;
  /// GPUs with no worker.
  std::vector<GpuId> idle_gpus() const;
  int idle_count() const;

  bool operator==(const Assignment&) const = default;

  /// Compact human-readable rendering (for logs and examples):
  /// "[1:256 1:256 - 7:512]".
  std::string to_string() const;

  /// Validate Eq. 4 style invariants: every occupied slot has local_batch>=1,
  /// every idle slot has local_batch==0. Throws on violation.
  void check_invariants() const;

 private:
  std::vector<Slot> slots_;
};

/// Difference between two schedules, used to charge scaling costs only to
/// jobs whose configuration actually changed.
struct AssignmentDelta {
  std::vector<JobId> started;      ///< jobs with workers only in `next`
  std::vector<JobId> stopped;      ///< jobs with workers only in `prev`
  std::vector<JobId> reconfigured; ///< jobs whose worker set or batches changed
  std::vector<JobId> unchanged;
};

AssignmentDelta diff(const Assignment& prev, const Assignment& next);

}  // namespace ones::cluster
