// JCT-vs-joules Pareto sweep (ROADMAP item 3; DESIGN.md §10).
//
// Sweeps the ONES lambda_energy fitness blend against the PowerCap baseline
// (after Gu et al., "Energy-Efficient GPU Clusters Scheduling for Deep
// Learning") and the paper's Optimus / Tiresias / FIFO schedulers on a
// lightly-loaded 32-GPU trace, through the src/exp orchestrator (--threads /
// --seeds / --no-cache / --trace-dir / --metrics-dir). Prints one summary
// row per configuration plus the non-dominated (avg JCT, cluster joules)
// Pareto frontier. lambda_energy is not part of the serialized spec, so each
// λ's label doubles as the RunSpec `variant` cache-key tag (DESIGN.md §6);
// stdout is byte-identical for any --threads value.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness.hpp"
#include "sched/powercap.hpp"

using namespace ones;

int main(int argc, char** argv) {
  const auto opt = exp::parse_bench_cli(argc, argv);
  bench::BenchReport report("pareto_energy", opt);
  const auto config = bench::paper_sim_config(8);  // 32 GPUs
  // Lightly contended on purpose: with a saturated cluster every scheduler
  // burns ~peak watts for the whole makespan and the JCT/energy axes
  // collapse into one. Slack is where the tradeoff lives — energy-aware
  // configs can leave GPUs idling at gpu_idle_w instead of scaling jobs into
  // their comm-bound (watt-wasting) region.
  const auto trace_config = bench::paper_trace_config(80, 45.0);
  std::printf("JCT-vs-energy Pareto sweep: %d jobs on 32 GPUs\n", trace_config.num_jobs);
  std::printf(
      "power model: gpu %.0f-%.0f W, node base %.0f W, comm fraction %.2f "
      "(DESIGN.md #10)\n\n",
      config.power.gpu_idle_w, config.power.gpu_busy_w, config.power.node_base_w,
      config.power.comm_power_fraction);

  struct Config {
    std::string label;     ///< row label; doubles as the variant tag
    std::string scheduler; ///< RunSpec::scheduler (display name)
    std::string variant;   ///< RunSpec::variant (cache-key tag)
    exp::SchedulerFactory make;
  };
  std::vector<Config> grid_configs;
  // ONES λ sweep. λ=0 is the paper's pure-SRUF objective; every λ gets a
  // variant tag (including 0) so the sweep's cache entries never alias.
  for (const double lam : {0.0, 0.25, 1.0, 4.0}) {
    core::OnesConfig cfg;
    cfg.evolution.lambda_energy = lam;
    char label[32];
    std::snprintf(label, sizeof(label), "ONES-lam%g", lam);
    grid_configs.push_back({label, "ONES", label + 5,
                            [cfg]() -> std::unique_ptr<sched::Scheduler> {
                              return std::make_unique<core::OnesScheduler>(cfg);
                            }});
  }
  grid_configs.push_back({"PowerCap-70", "PowerCap", "cap0.7",
                          []() -> std::unique_ptr<sched::Scheduler> {
                            return std::make_unique<sched::PowerCapScheduler>();
                          }});
  grid_configs.push_back({"Optimus", "Optimus", "",
                          []() -> std::unique_ptr<sched::Scheduler> {
                            return std::make_unique<sched::OptimusScheduler>();
                          }});
  grid_configs.push_back({"Tiresias", "Tiresias", "",
                          []() -> std::unique_ptr<sched::Scheduler> {
                            return std::make_unique<sched::TiresiasScheduler>();
                          }});
  grid_configs.push_back({"FIFO", "FIFO", "",
                          []() -> std::unique_ptr<sched::Scheduler> {
                            return std::make_unique<sched::FifoScheduler>();
                          }});

  std::vector<exp::RunSpec> specs;
  for (const auto& c : grid_configs) {
    for (int k = 0; k < opt.seeds; ++k) {
      exp::RunSpec spec;
      spec.scheduler = c.scheduler;
      spec.variant = c.variant;
      spec.sim = config;
      spec.trace = trace_config;
      spec.trace.seed = trace_config.seed + static_cast<std::uint64_t>(k);
      spec.factory = c.make;
      specs.push_back(std::move(spec));
    }
  }

  telemetry::MetricsRegistry bench_registry;
  exp::GridOptions grid = opt.grid;
  grid.registry = &bench_registry;
  if (!grid.prof_dir.empty()) grid.prof = &report.profile();

  const auto runs = exp::run_grid(specs, grid);
  const auto pooled = bench::pool_by_factory(runs, grid_configs.size(), opt.seeds);

  std::printf("%-14s %s\n", "config", telemetry::format_summary_header().c_str());
  for (std::size_t i = 0; i < pooled.size(); ++i) {
    std::printf("%-14s %s\n", grid_configs[i].label.c_str(),
                telemetry::format_summary_row(pooled[i].summary).c_str());
    report.metric("avg_jct." + grid_configs[i].label, pooled[i].summary.avg_jct);
    report.metric("cluster_joules." + grid_configs[i].label,
                  pooled[i].summary.cluster_joules);
  }

  // Non-dominated configurations under (avg JCT, cluster joules), both
  // minimized: a config is dominated when another is <= on both axes and
  // strictly better on at least one.
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < pooled.size(); ++i) {
    const auto& si = pooled[i].summary;
    bool dominated = false;
    for (std::size_t j = 0; j < pooled.size() && !dominated; ++j) {
      if (j == i) continue;
      const auto& sj = pooled[j].summary;
      dominated = sj.avg_jct <= si.avg_jct && sj.cluster_joules <= si.cluster_joules &&
                  (sj.avg_jct < si.avg_jct || sj.cluster_joules < si.cluster_joules);
    }
    if (!dominated) frontier.push_back(i);
  }
  // Print in ascending-JCT order (indices are stable for ties).
  for (std::size_t a = 0; a < frontier.size(); ++a) {
    for (std::size_t b = a + 1; b < frontier.size(); ++b) {
      const auto& sa = pooled[frontier[a]].summary;
      const auto& sb = pooled[frontier[b]].summary;
      if (sb.avg_jct < sa.avg_jct) std::swap(frontier[a], frontier[b]);
    }
  }
  std::printf("\nPareto frontier (avg JCT vs cluster energy, lower-left is better):\n");
  for (const std::size_t i : frontier) {
    const auto& s = pooled[i].summary;
    std::printf("  * %-14s avgJCT %8.1f s   energy %7.2f MJ   (%5.1f kJ/job)\n",
                grid_configs[i].label.c_str(), s.avg_jct, s.cluster_joules / 1e6,
                s.cluster_joules / 1e3 / static_cast<double>(trace_config.num_jobs));
  }
  report.metric("pareto_frontier_size", static_cast<double>(frontier.size()));
  report.cache_stats_from(bench_registry);
  bench::print_cache_footer(bench_registry);
  return 0;
}
