// Table 4 reproduction: Wilcoxon significance tests of per-job JCT,
// ONES vs each baseline, on the shared Figure 15 trace.
//
// Following the paper: a two-sided test (H0: the two schedulers' JCTs are
// equivalent — rejected when p << 0.05) and a one-sided "negative" test
// reported such that a p value near 1 supports "ONES's JCTs are smaller".
//
// Runs through the src/exp orchestrator (--threads / --seeds / --no-cache);
// with --seeds=K the (ONES, baseline) pairs are matched by job id within
// each seed and pooled across seeds, which is the many-seed sweep a paired
// significance test actually wants.
#include <cstdio>
#include <vector>

#include "harness.hpp"
#include "stats/wilcoxon.hpp"

using namespace ones;

int main(int argc, char** argv) {
  const auto opt = exp::parse_bench_cli(argc, argv);
  bench::BenchReport report("table4_wilcoxon", opt);
  const auto config = bench::paper_sim_config();
  const auto trace_config = bench::paper_trace_config();
  std::printf("Table 4: Wilcoxon significance tests on per-job JCT (%d paired jobs"
              " x %d seed%s)\n",
              trace_config.num_jobs, opt.seeds, opt.seeds == 1 ? "" : "s");

  telemetry::MetricsRegistry bench_registry;
  exp::GridOptions grid = opt.grid;
  grid.registry = &bench_registry;
  if (!grid.prof_dir.empty()) grid.prof = &report.profile();

  const auto factories = bench::paper_factories();
  const auto specs = bench::seed_grid(factories, config, trace_config, opt.seeds);
  const auto runs = exp::run_grid(specs, grid);
  const auto results = bench::pool_by_factory(runs, factories.size(), opt.seeds);

  std::printf("\n%-14s %24s %30s\n", "", "p value (two-sided)", "p value (one-sided negative)");
  bool all_significant = true;
  for (std::size_t i = 1; i < results.size(); ++i) {
    std::vector<double> x, y;
    bench::paired_jcts(runs, 0, i, opt.seeds, x, y);
    const auto res = stats::wilcoxon_signed_rank(x, y);
    std::printf("vs. %-10s %24.3e %30.5f\n", results[i].summary.scheduler.c_str(),
                res.p_two_sided, res.p_greater);
    const std::string& s = results[i].summary.scheduler;
    report.metric("p_two_sided." + s, res.p_two_sided);
    report.metric("p_greater." + s, res.p_greater);
    if (res.p_two_sided >= 0.05 || res.p_greater <= 0.95) all_significant = false;
  }
  report.metric("all_significant", all_significant ? 1.0 : 0.0);

  std::printf("\nShape check vs the paper (two-sided p << 0.05 and one-sided\n"
              "negative p near 1 for every baseline): %s\n",
              all_significant ? "OK" : "MISMATCH");
  report.cache_stats_from(bench_registry);
  bench::print_cache_footer(bench_registry);
  return 0;
}
