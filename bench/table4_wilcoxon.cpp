// Table 4 reproduction: Wilcoxon significance tests of per-job JCT,
// ONES vs each baseline, on the shared Figure 15 trace.
//
// Following the paper: a two-sided test (H0: the two schedulers' JCTs are
// equivalent — rejected when p << 0.05) and a one-sided "negative" test
// reported such that a p value near 1 supports "ONES's JCTs are smaller".
#include <cstdio>
#include <vector>

#include "harness.hpp"
#include "stats/wilcoxon.hpp"

using namespace ones;

int main() {
  const auto config = bench::paper_sim_config();
  const auto trace = workload::generate_trace(bench::paper_trace_config());
  std::printf("Table 4: Wilcoxon significance tests on per-job JCT (%zu paired jobs)\n",
              trace.size());

  auto schedulers = bench::make_schedulers();
  std::vector<bench::RunResult> results;
  for (sched::Scheduler* s : schedulers.paper_four()) {
    std::printf("[run] %s...\n", s->name().c_str());
    std::fflush(stdout);
    results.push_back(bench::run_one(config, trace, *s));
  }

  // Pair by job id (the same jobs under each scheduler).
  auto paired = [&](const bench::RunResult& a, const bench::RunResult& b) {
    std::vector<double> x, y;
    for (const auto& [id, jct] : a.jct_by_job) {
      auto it = b.jct_by_job.find(id);
      if (it != b.jct_by_job.end()) {
        x.push_back(jct);
        y.push_back(it->second);
      }
    }
    return stats::wilcoxon_signed_rank(x, y);
  };

  std::printf("\n%-14s %24s %30s\n", "", "p value (two-sided)", "p value (one-sided negative)");
  bool all_significant = true;
  for (std::size_t i = 1; i < results.size(); ++i) {
    const auto res = paired(results[0], results[i]);
    std::printf("vs. %-10s %24.3e %30.5f\n", results[i].summary.scheduler.c_str(),
                res.p_two_sided, res.p_greater);
    if (res.p_two_sided >= 0.05 || res.p_greater <= 0.95) all_significant = false;
  }

  std::printf("\nShape check vs the paper (two-sided p << 0.05 and one-sided\n"
              "negative p near 1 for every baseline): %s\n",
              all_significant ? "OK" : "MISMATCH");
  return 0;
}
