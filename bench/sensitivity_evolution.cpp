// Sensitivity of ONES to its evolutionary-search hyper-parameters:
// population size K (the paper suggests K = cluster size), mutation rate
// theta, and evolution rounds per event. Run on a 16-GPU contended trace
// to keep the sweep quick.
#include <cstdio>

#include "harness.hpp"

using namespace ones;

namespace {

double run_with(const core::OnesConfig& cfg, const sched::SimulationConfig& config,
                const std::vector<workload::JobSpec>& trace, const char* label) {
  core::OnesScheduler s(cfg);
  const auto r = bench::run_one(config, trace, s);
  std::printf("  %-22s avgJCT %8.1f  avgExec %8.1f  avgQueue %8.1f\n", label,
              r.summary.avg_jct, r.summary.avg_exec, r.summary.avg_queue);
  std::fflush(stdout);
  return r.summary.avg_jct;
}

}  // namespace

int main() {
  ::ones::bench::ScopedTimer bench_timer("sensitivity_evolution");
  const auto config = bench::paper_sim_config(4);  // 16 GPUs
  const auto trace = workload::generate_trace(bench::paper_trace_config(120, 14.0));
  std::printf("Evolution hyper-parameter sensitivity: %zu jobs on 16 GPUs\n",
              trace.size());

  std::printf("\nPopulation size K (paper suggests K = cluster size = 16):\n");
  double default_jct = 0.0;
  for (std::size_t k : {4u, 8u, 16u, 32u}) {
    core::OnesConfig cfg;
    cfg.evolution.population_size = k;
    char label[32];
    std::snprintf(label, sizeof(label), "K = %zu%s", k, k == 16 ? " (= cluster)" : "");
    const double jct = run_with(cfg, config, trace, label);
    if (k == 16) default_jct = jct;
  }

  std::printf("\nMutation rate theta:\n");
  for (double theta : {0.05, 0.2, 0.5}) {
    core::OnesConfig cfg;
    cfg.evolution.mutation_rate = theta;
    char label[32];
    std::snprintf(label, sizeof(label), "theta = %.2f", theta);
    run_with(cfg, config, trace, label);
  }

  std::printf("\nEvolution rounds per event:\n");
  for (int rounds : {1, 2, 4}) {
    core::OnesConfig cfg;
    cfg.evolution.rounds_per_event = rounds;
    char label[32];
    std::snprintf(label, sizeof(label), "rounds = %d", rounds);
    run_with(cfg, config, trace, label);
  }

  std::printf("\n(The paper's K = cluster-size default scored %.1f s; the sweep shows\n"
              "how sensitive that choice is on this trace.)\n",
              default_jct);
  return 0;
}
