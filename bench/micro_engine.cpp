// Microbenchmarks (google-benchmark) for the calendar-queue event core
// (DESIGN.md §12). The hold model is the classic priority-queue stress:
// keep H events pending and, on every fire, schedule one replacement a
// pseudo-random delay ahead — steady state exercises insert, extract-min
// and the bucket cursor at a fixed queue depth. The cancel benches measure
// the generation-tagged handle path (schedule + cancel round trip), which
// the legacy std::priority_queue engine could only do via tombstones.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "micro_report.hpp"
#include "sim/engine.hpp"

namespace {

using namespace ones;

/// Deterministic exponential-ish delay spread over two decades, so events
/// land across many calendar buckets instead of a single hot slot.
double delay_of(Rng& rng, int i) { return 0.01 + rng.uniform() * (i % 2 ? 1.0 : 99.99); }

/// Hold model at a queue depth of `state.range(0)` pending events.
void BM_EngineHold(benchmark::State& state) {
  const int hold = static_cast<int>(state.range(0));
  sim::SimEngine engine;
  Rng rng(42);
  std::uint64_t scheduled = 0;
  // Self-perpetuating events: each fire schedules its replacement.
  std::function<void()> tick = [&] {
    engine.schedule_after(delay_of(rng, static_cast<int>(scheduled++)), tick);
  };
  for (int i = 0; i < hold; ++i) {
    engine.schedule_after(delay_of(rng, i), tick);
  }
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/// Schedule + cancel round trip at a background queue depth of
/// `state.range(0)` (every handle is cancelled while still pending).
void BM_EngineScheduleCancel(benchmark::State& state) {
  const int hold = static_cast<int>(state.range(0));
  sim::SimEngine engine;
  Rng rng(43);
  for (int i = 0; i < hold; ++i) {
    engine.schedule_after(1e6 + delay_of(rng, i), [] {});
  }
  std::uint64_t n = 0;
  for (auto _ : state) {
    const sim::EventId id =
        engine.schedule_after(delay_of(rng, static_cast<int>(n++)), [] {});
    benchmark::DoNotOptimize(engine.cancel(id));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/// Burst drain: schedule `state.range(0)` events up front, drain them all —
/// the arrival-heavy phase of a trace replay (insertions into future
/// buckets, then a monotone sweep).
void BM_EngineBurstDrain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::SimEngine engine;
    Rng rng(44);
    state.ResumeTiming();
    for (int i = 0; i < n; ++i) {
      engine.schedule_after(delay_of(rng, i), [] {});
    }
    engine.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}

BENCHMARK(BM_EngineHold)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 20);
BENCHMARK(BM_EngineScheduleCancel)->Arg(1 << 10)->Arg(1 << 18);
BENCHMARK(BM_EngineBurstDrain)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace

int main(int argc, char** argv) {
  return ones::bench::run_micro_bench("micro_engine", argc, argv);
}
