// Microbenchmarks (google-benchmark) for the hot paths of ONES: the
// evolution operators, SRUF scoring, predictor fitting and the simulation
// event loop. The paper argues evolutionary search has "relatively fast
// iterative speed" (§3.2) — these benches quantify it for this
// implementation.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/evolution.hpp"
#include "core/ones_scheduler.hpp"
#include "harness.hpp"
#include "micro_report.hpp"
#include "predict/progress_predictor.hpp"
#include "sched/fifo.hpp"
#include "sched/simulation.hpp"
#include "sim/engine.hpp"
#include "workload/trace.hpp"

namespace {

using namespace ones;

/// Synthetic cluster state with `jobs` active jobs on a cluster of
/// `nodes` x 4 GPUs.
struct World {
  cluster::Topology topo;
  cluster::Assignment live;
  sched::ThroughputOracle oracle;
  sched::ClusterState state;
  core::BatchLimitManager limits;
  std::vector<std::unique_ptr<sched::JobView>> views;

  World(int nodes, int jobs)
      : topo([&] {
          cluster::TopologyConfig c;
          c.num_nodes = nodes;
          return c;
        }()),
        live(topo.total_gpus()),
        oracle(topo) {
    const char* models[] = {"ResNet18", "GoogleNet", "VGG16-CIFAR", "AlexNet"};
    for (int j = 0; j < jobs; ++j) {
      auto v = std::make_unique<sched::JobView>();
      v->spec.id = j;
      v->spec.variant = {models[j % 4], "bench", 20000, 10};
      v->profile = &model::profile_by_name(models[j % 4]);
      v->spec.requested_gpus = 1 + j % 2;
      v->spec.requested_batch = v->profile->b_ref;
      v->status = sched::JobStatus::Waiting;
      v->epochs_completed = 1 + j % 5;
      v->samples_processed = 20000.0 * v->epochs_completed;
      v->exec_time_s = 20.0 * v->epochs_completed;
      v->init_loss = v->profile->init_loss;
      v->train_loss = 1.0;
      v->val_accuracy = 0.5;
      views.push_back(std::move(v));
      limits.on_job_arrival(*views.back(), 5.0 * j);
    }
    state.now = 1000.0;
    state.topology = &topo;
    state.current = &live;
    state.oracle = &oracle;
    for (auto& v : views) state.jobs.push_back(v.get());
  }
};

void BM_EvolutionStep(benchmark::State& bench_state) {
  const int nodes = static_cast<int>(bench_state.range(0));
  World w(nodes, nodes * 6);
  auto ctx = core::make_context(w.state, nullptr, &w.limits);
  core::Evolution evo(core::EvolutionConfig{});
  evo.ensure_population(ctx);
  for (auto _ : bench_state) {
    evo.step(ctx);
  }
  bench_state.SetLabel(std::to_string(nodes * 4) + " GPUs");
}
BENCHMARK(BM_EvolutionStep)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_Refresh(benchmark::State& bench_state) {
  World w(8, 48);
  auto ctx = core::make_context(w.state, nullptr, &w.limits);
  core::Evolution evo(core::EvolutionConfig{});
  cluster::Assignment cand(w.topo.total_gpus());
  for (auto _ : bench_state) {
    evo.refresh(cand, ctx);
    benchmark::DoNotOptimize(cand);
  }
}
BENCHMARK(BM_Refresh)->Unit(benchmark::kMicrosecond);

void BM_CrossoverAndRepair(benchmark::State& bench_state) {
  World w(8, 48);
  auto ctx = core::make_context(w.state, nullptr, &w.limits);
  core::Evolution evo(core::EvolutionConfig{});
  cluster::Assignment a(w.topo.total_gpus()), b(w.topo.total_gpus());
  evo.refresh(a, ctx);
  evo.refresh(b, ctx);
  for (auto _ : bench_state) {
    auto [c1, c2] = evo.crossover(a, b);
    evo.repair(c1, ctx);
    evo.repair(c2, ctx);
    benchmark::DoNotOptimize(c1);
    benchmark::DoNotOptimize(c2);
  }
}
BENCHMARK(BM_CrossoverAndRepair)->Unit(benchmark::kMicrosecond);

void BM_Reorder(benchmark::State& bench_state) {
  World w(8, 48);
  auto ctx = core::make_context(w.state, nullptr, &w.limits);
  core::Evolution evo(core::EvolutionConfig{});
  cluster::Assignment cand(w.topo.total_gpus());
  evo.refresh(cand, ctx);
  for (auto _ : bench_state) {
    benchmark::DoNotOptimize(core::Evolution::reorder(cand));
  }
}
BENCHMARK(BM_Reorder)->Unit(benchmark::kMicrosecond);

void BM_SrufScore(benchmark::State& bench_state) {
  World w(8, 48);
  auto ctx = core::make_context(w.state, nullptr, &w.limits);
  core::Evolution evo(core::EvolutionConfig{});
  cluster::Assignment cand(w.topo.total_gpus());
  evo.refresh(cand, ctx);
  const core::RhoMap rho = evo.mean_rho(ctx);
  for (auto _ : bench_state) {
    benchmark::DoNotOptimize(evo.score(cand, ctx, rho));
  }
}
BENCHMARK(BM_SrufScore)->Unit(benchmark::kMicrosecond);

void BM_PredictorFit(benchmark::State& bench_state) {
  predict::ProgressPredictor predictor;
  // Feed synthetic completed jobs once.
  for (JobId j = 0; j < 12; ++j) {
    sched::JobView v;
    v.spec.id = j;
    v.spec.variant = {"ResNet18", "bench", 20000, 10};
    v.profile = &model::profile_by_name("ResNet18");
    v.status = sched::JobStatus::Completed;
    v.init_loss = v.profile->init_loss;
    for (int e = 1; e <= 25; ++e) {
      v.epoch_log.push_back({10.0 * e, 20000.0 * e, 1.0, 0.9 * e / 25.0, 256});
    }
    v.epochs_completed = 25;
    v.samples_processed = 25 * 20000.0;
    predictor.observe_completed_job(v);
  }
  for (auto _ : bench_state) {
    predictor.fit();
  }
}
BENCHMARK(BM_PredictorFit)->Unit(benchmark::kMillisecond);

void BM_PredictorPredict(benchmark::State& bench_state) {
  World w(4, 8);
  predict::ProgressPredictor predictor;
  for (auto _ : bench_state) {
    benchmark::DoNotOptimize(predictor.predict(*w.views[0]));
  }
}
BENCHMARK(BM_PredictorPredict)->Unit(benchmark::kNanosecond);

void BM_SimEngineEventChurn(benchmark::State& bench_state) {
  for (auto _ : bench_state) {
    sim::SimEngine engine;
    int count = 0;
    std::function<void()> chain = [&] {
      if (++count < 10000) engine.schedule_after(1.0, chain);
    };
    engine.schedule_at(0.0, chain);
    engine.run();
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SimEngineEventChurn)->Unit(benchmark::kMillisecond);

void BM_FullFifoSimulation(benchmark::State& bench_state) {
  workload::TraceConfig tc;
  tc.num_jobs = 40;
  tc.mean_interarrival_s = 10.0;
  const auto trace = workload::generate_trace(tc);
  sched::SimulationConfig sc;
  sc.topology.num_nodes = 4;
  for (auto _ : bench_state) {
    sched::FifoScheduler fifo;
    sched::ClusterSimulation sim(sc, trace, fifo);
    sim.run();
    benchmark::DoNotOptimize(sim.completed_jobs());
  }
}
BENCHMARK(BM_FullFifoSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return ones::bench::run_micro_bench("micro_evolution", argc, argv);
}
