// Figure 15 reproduction (all nine panels): scheduling performance of ONES
// vs DRL / Tiresias / Optimus on the 64-GPU cluster with the Table 2 trace.
//
//   (a,b,c) average JCT / execution time / queuing time,
//   (d,e,f) box-plot distributions,
//   (g,h,i) cumulative frequency curves.
//
// FIFO and the SRTF oracle are included as extra reference points (they are
// not in the paper's figure).
//
// Runs through the src/exp orchestrator: --threads=N fans the
// (scheduler x seed) grid over N workers with byte-identical stdout,
// --seeds=K pools K trace seeds per scheduler, and a warm .ones-cache/
// makes re-runs near-instant (--no-cache bypasses it).
#include <cstdio>
#include <vector>

#include "harness.hpp"
#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"

using namespace ones;

namespace {

void print_panel(const char* title, const std::vector<bench::RunResult>& results,
                 std::vector<double> bench::RunResult::* series) {
  std::printf("\n%s\n", title);
  bench::print_rule();
  std::printf("  %-10s %10s | box: %s\n", "scheduler", "mean", "min/q1/median/q3/max");
  for (const auto& r : results) {
    const auto b = stats::box_stats(r.*series);
    std::printf("  %-10s %10.1f | %.0f / %.0f / %.0f / %.0f / %.0f  (outliers: %zu)\n",
                r.summary.scheduler.c_str(), b.mean, b.min, b.q1, b.median, b.q3, b.max,
                b.outliers.size());
  }

  std::printf("\n  cumulative frequency (fraction of jobs <= t seconds):\n");
  std::printf("  %-10s", "t(s)");
  for (const auto& r : results) std::printf(" %9s", r.summary.scheduler.c_str());
  std::printf("\n");
  for (double t : {50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0}) {
    std::printf("  %-10.0f", t);
    for (const auto& r : results) {
      const auto e = stats::ecdf(r.*series);
      std::printf(" %8.1f%%", 100.0 * e.at(t));
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = exp::parse_bench_cli(argc, argv);
  bench::BenchReport report("fig15_jct", opt);
  const auto config = bench::paper_sim_config();
  const auto trace_config = bench::paper_trace_config();
  std::printf("Figure 15: scheduling performance, %d jobs on %d GPUs\n",
              trace_config.num_jobs,
              config.topology.num_nodes * config.topology.gpus_per_node);

  telemetry::MetricsRegistry bench_registry;
  exp::GridOptions grid = opt.grid;
  grid.registry = &bench_registry;
  if (!grid.prof_dir.empty()) grid.prof = &report.profile();

  const auto factories = bench::all_factories();
  const auto specs = bench::seed_grid(factories, config, trace_config, opt.seeds);
  const auto runs = exp::run_grid(specs, grid);
  const auto results = bench::pool_by_factory(runs, factories.size(), opt.seeds);

  std::printf("\nPanel (a/b/c): averages\n");
  bench::print_rule();
  std::printf("%s\n", telemetry::format_summary_header().c_str());
  for (const auto& r : results) {
    std::printf("%s\n", telemetry::format_summary_row(r.summary).c_str());
  }

  const double ones_jct = results[0].summary.avg_jct;
  std::printf("\nONES average-JCT reduction vs each baseline, with 95%% bootstrap CIs\n"
              "(paper: DRL 26.9%%, Tiresias 45.6%%, Optimus 41.7%%):\n");
  for (std::size_t i = 1; i < 4; ++i) {
    // Pair per-job JCTs by job id, per seed, for the bootstrap.
    std::vector<double> ones_paired, base_paired;
    bench::paired_jcts(runs, 0, i, opt.seeds, ones_paired, base_paired);
    const auto ci = stats::bootstrap_relative_reduction_ci(ones_paired, base_paired);
    const double base = results[i].summary.avg_jct;
    std::printf("  vs %-9s %6.1f%%   [%.1f%%, %.1f%%]\n",
                results[i].summary.scheduler.c_str(),
                100.0 * (base - ones_jct) / base, 100.0 * ci.lo, 100.0 * ci.hi);
  }

  print_panel("Panel (d/g): job completion time distribution", results,
              &bench::RunResult::jcts);
  print_panel("Panel (e/h): execution time distribution", results,
              &bench::RunResult::exec_times);
  print_panel("Panel (f/i): queuing time distribution", results,
              &bench::RunResult::queue_times);

  // The paper's headline distribution observation.
  const auto ones_ecdf = stats::ecdf(results[0].jcts);
  std::printf("\nShape checks vs the paper:\n");
  bool ordering = true;
  for (std::size_t i = 1; i < 4; ++i) {
    if (results[i].summary.avg_jct <= ones_jct) ordering = false;
  }
  std::printf("  ONES has the smallest average JCT of the paper's four: %s\n",
              ordering ? "OK" : "MISMATCH");
  std::printf("  ONES completes a larger fraction of jobs early than every baseline\n");
  for (std::size_t i = 1; i < 4; ++i) {
    const auto base_ecdf = stats::ecdf(results[i].jcts);
    const double t = 200.0;
    std::printf("    <=200s: ONES %.0f%% vs %s %.0f%%: %s\n", 100.0 * ones_ecdf.at(t),
                results[i].summary.scheduler.c_str(), 100.0 * base_ecdf.at(t),
                ones_ecdf.at(t) >= base_ecdf.at(t) ? "OK" : "MISMATCH");
  }
  for (const auto& r : results) {
    const std::string& s = r.summary.scheduler;
    report.metric("avg_jct." + s, r.summary.avg_jct);
    report.metric("avg_exec." + s, r.summary.avg_exec);
    report.metric("avg_queue." + s, r.summary.avg_queue);
    report.metric("p90_jct." + s, r.summary.p90_jct);
    report.metric("makespan." + s, r.summary.makespan);
    report.metric("utilization." + s, r.summary.utilization);
  }
  report.cache_stats_from(bench_registry);
  bench::print_cache_footer(bench_registry);
  return 0;
}
