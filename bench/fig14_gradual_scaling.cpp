// Figure 14 reproduction: growing the batch gradually — 256 for 30 epochs,
// 1024 for the next 30, 4096 for the last 30 — keeps the training loss
// smooth (no Figure 13 spike), because each step stays within the allowed
// scaling range when applied as successive doublings.
#include <cmath>
#include <cstdio>

#include "harness.hpp"
#include "model/convergence.hpp"
#include "model/task.hpp"

int main() {
  ::ones::bench::ScopedTimer bench_timer("fig14_gradual_scaling");
  using namespace ones;
  const auto& profile = model::profile_by_name("ResNet50-CIFAR");
  const std::int64_t dataset = 20000;
  model::ConvergenceConfig config;
  config.accuracy_noise = 0.0;
  config.patience_epochs = 1000;  // keep training across all 90 epochs

  model::TrainDynamics run(profile, dataset, config, 1);

  std::printf("Figure 14: training loss with gradual batch growth\n");
  std::printf("(B=256 epochs 1-30; B=1024 epochs 31-60; B=4096 epochs 61-90;\n");
  std::printf(" each transition applied as successive doublings, one per step)\n\n");
  std::printf("%6s %8s %10s %13s\n", "epoch", "batch", "loss", "disturbance");

  int batch = 256;
  double max_loss_jump = 0.0;
  double prev_loss = run.current_loss();
  for (int epoch = 1; epoch <= 90; ++epoch) {
    if (epoch == 31 || epoch == 61) {
      // ONES's gradual policy: reach the next level by doublings.
      while (batch < ((epoch == 31) ? 1024 : 4096)) {
        run.on_batch_resize(batch, batch * 2);
        batch *= 2;
      }
    }
    run.advance(batch, dataset);
    const double loss = run.current_loss();
    if (epoch % 3 == 0 || epoch == 31 || epoch == 61) {
      std::printf("%6d %8d %10.3f %13.3f\n", epoch, batch, loss, run.disturbance());
    }
    max_loss_jump = std::max(max_loss_jump, loss - prev_loss);
    prev_loss = loss;
  }

  std::printf("\nShape check vs the paper:\n");
  std::printf("  largest epoch-over-epoch loss increase: %.4f (no spike => < 0.1): %s\n",
              max_loss_jump, max_loss_jump < 0.1 ? "OK" : "MISMATCH");
  return 0;
}
