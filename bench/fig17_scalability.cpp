// Figures 17 & 18 reproduction: scheduling scalability across cluster
// capacities (16 -> 64 GPUs) on a fixed trace.
//
//   Fig 17: average JCT / execution time / queuing time per scheduler and
//           cluster size — all fall as capacity grows, queuing near-linearly.
//   Fig 18: ONES's average-JCT improvement over each baseline — which grows
//           with the cluster size (ONES exploits free GPUs best).
#include <cstdio>
#include <map>
#include <vector>

#include "harness.hpp"

using namespace ones;

int main() {
  const auto trace = workload::generate_trace(bench::paper_trace_config(240, 4.5));
  const std::vector<int> node_counts = {4, 8, 12, 16};  // 16..64 GPUs

  std::printf("Figures 17/18: scalability, %zu jobs, cluster capacity 16..64 GPUs\n",
              trace.size());

  auto schedulers = bench::make_schedulers();
  // scheduler -> per-capacity summaries
  std::map<std::string, std::vector<telemetry::Summary>> table;
  std::vector<std::string> order;
  for (sched::Scheduler* s : schedulers.paper_four()) order.push_back(s->name());

  for (int nodes : node_counts) {
    const auto config = bench::paper_sim_config(nodes);
    for (sched::Scheduler* s : schedulers.paper_four()) {
      std::printf("[run] %s @ %d GPUs...\n", s->name().c_str(), nodes * 4);
      std::fflush(stdout);
      table[s->name()].push_back(bench::run_one(config, trace, *s).summary);
    }
  }

  auto print_metric = [&](const char* title, double telemetry::Summary::* field) {
    std::printf("\nFigure 17 — %s\n", title);
    std::printf("  %-10s", "scheduler");
    for (int nodes : node_counts) std::printf(" %9d", nodes * 4);
    std::printf("   (GPUs)\n");
    for (const auto& name : order) {
      std::printf("  %-10s", name.c_str());
      for (const auto& s : table[name]) std::printf(" %9.1f", s.*field);
      std::printf("\n");
    }
  };
  print_metric("average JCT (s)", &telemetry::Summary::avg_jct);
  print_metric("average execution time (s)", &telemetry::Summary::avg_exec);
  print_metric("average queuing time (s)", &telemetry::Summary::avg_queue);

  std::printf("\nFigure 18 — ONES average-JCT improvement vs baselines (%%)\n");
  std::printf("  %-10s", "baseline");
  for (int nodes : node_counts) std::printf(" %9d", nodes * 4);
  std::printf("   (GPUs)\n");
  std::vector<std::vector<double>> improvements;
  for (std::size_t b = 1; b < order.size(); ++b) {
    std::printf("  %-10s", order[b].c_str());
    std::vector<double> row;
    for (std::size_t c = 0; c < node_counts.size(); ++c) {
      const double ones_jct = table[order[0]][c].avg_jct;
      const double base_jct = table[order[b]][c].avg_jct;
      row.push_back(100.0 * (base_jct - ones_jct) / base_jct);
      std::printf(" %8.1f%%", row.back());
    }
    improvements.push_back(row);
    std::printf("\n");
  }

  std::printf("\nShape checks vs the paper:\n");
  bool jct_falls = true;
  for (const auto& name : order) {
    for (std::size_t c = 1; c < node_counts.size(); ++c) {
      if (table[name][c].avg_jct > table[name][c - 1].avg_jct * 1.05) jct_falls = false;
    }
  }
  std::printf("  average JCT falls as capacity grows (all schedulers): %s\n",
              jct_falls ? "OK" : "MISMATCH");
  bool positive_at_full = true;
  for (const auto& row : improvements) {
    if (row.back() <= 0.0) positive_at_full = false;
  }
  std::printf("  ONES improves on every baseline at 64 GPUs: %s\n",
              positive_at_full ? "OK" : "MISMATCH");
  bool queue_linear = true;
  for (const auto& name : order) {
    if (name == "Optimus") continue;  // round-based floor dominates its queue
    const double q16 = table[name].front().avg_queue;
    const double q64 = table[name].back().avg_queue;
    if (q64 > 0.33 * q16) queue_linear = false;
  }
  std::printf("  queuing time decreases near-linearly with capacity: %s\n",
              queue_linear ? "OK" : "MISMATCH");
  std::printf("\nNote on Fig 18's trend: the paper reports improvements *growing* from\n"
              "16 to 64 GPUs. On a fixed trace that holds while the largest cluster is\n"
              "still contended; once capacity outgrows the offered load, all schedulers\n"
              "converge and margins compress (see EXPERIMENTS.md).\n");
  return 0;
}
