// Figures 17 & 18 reproduction: scheduling scalability across cluster
// capacities (16 -> 64 GPUs) on a fixed trace.
//
//   Fig 17: average JCT / execution time / queuing time per scheduler and
//           cluster size — all fall as capacity grows, queuing near-linearly.
//   Fig 18: ONES's average-JCT improvement over each baseline — which grows
//           with the cluster size (ONES exploits free GPUs best).
//
// Runs through the src/exp orchestrator (--threads / --seeds / --no-cache).
// Every (scheduler, capacity, seed) cell is an independent simulation with a
// fresh scheduler instance — the pre-orchestrator version reused one
// scheduler object across capacities, leaking predictor state between runs.
//
// `--scale=hyperscale` switches to the calendar-queue stress grid
// (DESIGN.md §12): 1,000 -> 10,000 GPUs and 10k -> 100k jobs under the FIFO
// policies, reporting deterministic event/deployment counts on stdout and
// the wall-clock throughput curve (events/sec, decisions/sec, peak RSS) on
// stderr. stdout stays byte-identical for any --threads value in both modes.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "harness.hpp"

using namespace ones;

namespace {

int run_paper(const exp::BenchOptions& opt, bench::BenchReport& report) {
  const auto trace_config = bench::paper_trace_config(240, 4.5);
  const std::vector<int> node_counts = {4, 8, 12, 16};  // 16..64 GPUs

  std::printf("Figures 17/18: scalability, %d jobs, cluster capacity 16..64 GPUs\n",
              trace_config.num_jobs);

  const auto factories = bench::paper_factories();
  std::vector<std::string> order;
  for (const auto& f : factories) order.push_back(f.name);

  telemetry::MetricsRegistry bench_registry;
  exp::GridOptions grid = opt.grid;
  grid.registry = &bench_registry;
  if (!grid.prof_dir.empty()) grid.prof = &report.profile();

  // Grid layout: capacity-major, then (factory-major, seed-minor) per
  // capacity — the seed_grid slices concatenate in node_counts order.
  std::vector<exp::RunSpec> specs;
  for (int nodes : node_counts) {
    const auto capacity_specs = bench::seed_grid(factories, bench::paper_sim_config(nodes),
                                                 trace_config, opt.seeds);
    specs.insert(specs.end(), capacity_specs.begin(), capacity_specs.end());
  }
  const auto runs = exp::run_grid(specs, grid);

  // scheduler -> per-capacity summaries, pooled over seeds
  std::map<std::string, std::vector<telemetry::Summary>> table;
  const std::size_t per_capacity = factories.size() * static_cast<std::size_t>(opt.seeds);
  for (std::size_t c = 0; c < node_counts.size(); ++c) {
    const auto first = runs.begin() + static_cast<std::ptrdiff_t>(c * per_capacity);
    const auto pooled = bench::pool_by_factory(
        std::vector<bench::RunResult>(first, first + static_cast<std::ptrdiff_t>(per_capacity)),
        factories.size(), opt.seeds);
    for (std::size_t f = 0; f < factories.size(); ++f) {
      table[order[f]].push_back(pooled[f].summary);
    }
  }

  auto print_metric = [&](const char* title, double telemetry::Summary::* field) {
    std::printf("\nFigure 17 — %s\n", title);
    std::printf("  %-10s", "scheduler");
    for (int nodes : node_counts) std::printf(" %9d", nodes * 4);
    std::printf("   (GPUs)\n");
    for (const auto& name : order) {
      std::printf("  %-10s", name.c_str());
      for (const auto& s : table[name]) std::printf(" %9.1f", s.*field);
      std::printf("\n");
    }
  };
  print_metric("average JCT (s)", &telemetry::Summary::avg_jct);
  print_metric("average execution time (s)", &telemetry::Summary::avg_exec);
  print_metric("average queuing time (s)", &telemetry::Summary::avg_queue);

  std::printf("\nFigure 18 — ONES average-JCT improvement vs baselines (%%)\n");
  std::printf("  %-10s", "baseline");
  for (int nodes : node_counts) std::printf(" %9d", nodes * 4);
  std::printf("   (GPUs)\n");
  std::vector<std::vector<double>> improvements;
  for (std::size_t b = 1; b < order.size(); ++b) {
    std::printf("  %-10s", order[b].c_str());
    std::vector<double> row;
    for (std::size_t c = 0; c < node_counts.size(); ++c) {
      const double ones_jct = table[order[0]][c].avg_jct;
      const double base_jct = table[order[b]][c].avg_jct;
      row.push_back(100.0 * (base_jct - ones_jct) / base_jct);
      std::printf(" %8.1f%%", row.back());
    }
    improvements.push_back(row);
    std::printf("\n");
  }

  std::printf("\nShape checks vs the paper:\n");
  bool jct_falls = true;
  for (const auto& name : order) {
    for (std::size_t c = 1; c < node_counts.size(); ++c) {
      if (table[name][c].avg_jct > table[name][c - 1].avg_jct * 1.05) jct_falls = false;
    }
  }
  std::printf("  average JCT falls as capacity grows (all schedulers): %s\n",
              jct_falls ? "OK" : "MISMATCH");
  bool positive_at_full = true;
  for (const auto& row : improvements) {
    if (row.back() <= 0.0) positive_at_full = false;
  }
  std::printf("  ONES improves on every baseline at 64 GPUs: %s\n",
              positive_at_full ? "OK" : "MISMATCH");
  bool queue_linear = true;
  for (const auto& name : order) {
    if (name == "Optimus") continue;  // round-based floor dominates its queue
    const double q16 = table[name].front().avg_queue;
    const double q64 = table[name].back().avg_queue;
    if (q64 > 0.33 * q16) queue_linear = false;
  }
  std::printf("  queuing time decreases near-linearly with capacity: %s\n",
              queue_linear ? "OK" : "MISMATCH");
  std::printf("\nNote on Fig 18's trend: the paper reports improvements *growing* from\n"
              "16 to 64 GPUs. On a fixed trace that holds while the largest cluster is\n"
              "still contended; once capacity outgrows the offered load, all schedulers\n"
              "converge and margins compress (see EXPERIMENTS.md).\n");
  for (const auto& name : order) {
    for (std::size_t c = 0; c < node_counts.size(); ++c) {
      const std::string suffix = name + "." + std::to_string(node_counts[c] * 4) + "gpu";
      report.metric("avg_jct." + suffix, table[name][c].avg_jct);
      report.metric("avg_queue." + suffix, table[name][c].avg_queue);
    }
  }
  report.cache_stats_from(bench_registry);
  bench::print_cache_footer(bench_registry);
  return 0;
}

// Calendar-queue stress grid: the offered load per GPU is held constant
// (10 jobs/GPU, arrival rate proportional to capacity) while the cluster
// grows 10x, so the event engine — not scheduler contention — is what the
// tiers sweep. FIFO policies only: their decisions are O(waiting + G), so
// end-to-end wall time tracks engine throughput instead of the evolutionary
// search, and 100k-job runs stay in CI-able territory.
int run_hyperscale(const exp::BenchOptions& opt, bench::BenchReport& report) {
  struct Tier {
    int nodes;
    int jobs;
    double interarrival_s;
  };
  const std::vector<Tier> tiers = {
      {250, 10000, 18.0}, {1000, 40000, 4.5}, {2500, 100000, 1.8}};

  std::vector<bench::NamedFactory> factories;
  factories.push_back(
      {"FIFO", [] { return std::make_unique<sched::FifoScheduler>(false); }});
  factories.push_back(
      {"FIFO-BF", [] { return std::make_unique<sched::FifoScheduler>(true); }});

  std::printf(
      "Hyperscale scalability: calendar-queue engine stress, 1,000..10,000 GPUs\n");

  telemetry::MetricsRegistry bench_registry;
  exp::GridOptions grid = opt.grid;
  grid.registry = &bench_registry;
  if (!grid.prof_dir.empty()) grid.prof = &report.profile();

  const std::size_t per_tier = factories.size() * static_cast<std::size_t>(opt.seeds);
  double prev_executed = 0.0;
  std::vector<std::uint64_t> tier_events;
  bool all_complete = true;
  for (const auto& tier : tiers) {
    sched::SimulationConfig sim = bench::paper_sim_config(tier.nodes);
    // FIFO never reads epoch logs; at 100k jobs they are pure memory ballast.
    sim.record_epoch_logs = false;
    workload::TraceConfig trace = bench::paper_trace_config(tier.jobs, tier.interarrival_s);
    trace.max_requested_gpus = 8;
    trace.diurnal_amplitude = 0.3;

    const auto specs = bench::seed_grid(factories, sim, trace, opt.seeds);
    bench::WallClock clock;
    const auto runs = exp::run_grid(specs, grid);
    const double wall_s = clock.seconds();
    const double executed = bench_registry.counter_value("exp_runs_executed_total");
    const double executed_here = executed - prev_executed;
    prev_executed = executed;

    std::printf("\n-- %d nodes (%d GPUs), %d jobs, mean interarrival %.1f s --\n",
                tier.nodes, tier.nodes * 4, tier.jobs, tier.interarrival_s);
    std::printf("  %-10s %10s %12s %14s %8s %14s %12s\n", "scheduler", "completed",
                "avg JCT (s)", "makespan (s)", "util", "events", "deployments");
    std::uint64_t events_total = 0;
    std::uint64_t decisions_total = 0;
    for (std::size_t f = 0; f < factories.size(); ++f) {
      const auto first = runs.begin() + static_cast<std::ptrdiff_t>(
                                            f * static_cast<std::size_t>(opt.seeds));
      const std::vector<bench::RunResult> slice(first, first + opt.seeds);
      const auto pooled = exp::pool_runs(slice);
      std::uint64_t events = 0;
      std::uint64_t deployments = 0;
      std::size_t completed = 0;
      for (const auto& r : slice) {
        events += r.events_fired;
        deployments += r.deployments;
        completed += r.completed;
        if (r.completed != static_cast<std::size_t>(tier.jobs)) all_complete = false;
      }
      events_total += events;
      decisions_total += deployments;
      std::printf("  %-10s %10zu %12.1f %14.1f %8.4f %14llu %12llu\n",
                  factories[f].name.c_str(), completed, pooled.summary.avg_jct,
                  pooled.summary.makespan, pooled.summary.utilization,
                  static_cast<unsigned long long>(events),
                  static_cast<unsigned long long>(deployments));
    }
    tier_events.push_back(events_total);

    // Throughput is wall-clock and so stderr-only; a cache-served tier has
    // no execution to time, so say that instead of printing a bogus rate.
    if (executed_here >= static_cast<double>(per_tier) && wall_s > 0.0) {
      std::fprintf(stderr,
                   "[hyperscale] %5d GPUs: %.1f s wall, %.3g events/s, "
                   "%.3g decisions/s, peak RSS %.0f MiB\n",
                   tier.nodes * 4, wall_s,
                   static_cast<double>(events_total) / wall_s,
                   static_cast<double>(decisions_total) / wall_s,
                   bench::peak_rss_mib());
    } else {
      std::fprintf(stderr,
                   "[hyperscale] %5d GPUs: %.0f/%zu runs executed (rest cached); "
                   "no throughput sample\n",
                   tier.nodes * 4, executed_here, per_tier);
    }
  }

  std::printf("\nShape checks:\n");
  std::printf("  every job completes at every tier: %s\n",
              all_complete ? "OK" : "MISMATCH");
  bool events_grow = true;
  for (std::size_t t = 1; t < tier_events.size(); ++t) {
    if (tier_events[t] <= tier_events[t - 1]) events_grow = false;
  }
  std::printf("  event volume grows with cluster scale: %s\n",
              events_grow ? "OK" : "MISMATCH");
  for (std::size_t t = 0; t < tiers.size(); ++t) {
    report.metric("events." + std::to_string(tiers[t].nodes * 4) + "gpu",
                  static_cast<double>(tier_events[t]));
  }
  report.metric("all_jobs_complete", all_complete ? 1.0 : 0.0);
  report.cache_stats_from(bench_registry);
  bench::print_cache_footer(bench_registry);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scale = "paper";
  const auto opt = exp::parse_bench_cli(
      argc, argv,
      [&scale](const char* arg) {
        if (std::strncmp(arg, "--scale=", 8) == 0) {
          scale = arg + 8;
          return true;
        }
        return false;
      },
      "  --scale=S       paper (default: Figs 17/18, 16..64 GPUs) or hyperscale\n"
      "                  (calendar-queue stress: 1k..10k GPUs, 10k..100k jobs)\n");
  if (scale != "paper" && scale != "hyperscale") {
    std::fprintf(stderr,
                 "fig17_scalability: bad --scale value '%s' (expected paper|hyperscale)\n",
                 scale.c_str());
    return 2;
  }
  bench::BenchReport report(
      scale == "paper" ? "fig17_scalability" : "fig17_scalability_hyperscale", opt);
  return scale == "paper" ? run_paper(opt, report) : run_hyperscale(opt, report);
}
