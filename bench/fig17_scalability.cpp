// Figures 17 & 18 reproduction: scheduling scalability across cluster
// capacities (16 -> 64 GPUs) on a fixed trace.
//
//   Fig 17: average JCT / execution time / queuing time per scheduler and
//           cluster size — all fall as capacity grows, queuing near-linearly.
//   Fig 18: ONES's average-JCT improvement over each baseline — which grows
//           with the cluster size (ONES exploits free GPUs best).
//
// Runs through the src/exp orchestrator (--threads / --seeds / --no-cache).
// Every (scheduler, capacity, seed) cell is an independent simulation with a
// fresh scheduler instance — the pre-orchestrator version reused one
// scheduler object across capacities, leaking predictor state between runs.
#include <cstdio>
#include <map>
#include <vector>

#include "harness.hpp"

using namespace ones;

int main(int argc, char** argv) {
  bench::ScopedTimer timer("fig17_scalability");
  const auto opt = exp::parse_bench_cli(argc, argv);
  const auto trace_config = bench::paper_trace_config(240, 4.5);
  const std::vector<int> node_counts = {4, 8, 12, 16};  // 16..64 GPUs

  std::printf("Figures 17/18: scalability, %d jobs, cluster capacity 16..64 GPUs\n",
              trace_config.num_jobs);

  const auto factories = bench::paper_factories();
  std::vector<std::string> order;
  for (const auto& f : factories) order.push_back(f.name);

  telemetry::MetricsRegistry bench_registry;
  exp::GridOptions grid = opt.grid;
  grid.registry = &bench_registry;

  // Grid layout: capacity-major, then (factory-major, seed-minor) per
  // capacity — the seed_grid slices concatenate in node_counts order.
  std::vector<exp::RunSpec> specs;
  for (int nodes : node_counts) {
    const auto capacity_specs = bench::seed_grid(factories, bench::paper_sim_config(nodes),
                                                 trace_config, opt.seeds);
    specs.insert(specs.end(), capacity_specs.begin(), capacity_specs.end());
  }
  const auto runs = exp::run_grid(specs, grid);

  // scheduler -> per-capacity summaries, pooled over seeds
  std::map<std::string, std::vector<telemetry::Summary>> table;
  const std::size_t per_capacity = factories.size() * static_cast<std::size_t>(opt.seeds);
  for (std::size_t c = 0; c < node_counts.size(); ++c) {
    const auto first = runs.begin() + static_cast<std::ptrdiff_t>(c * per_capacity);
    const auto pooled = bench::pool_by_factory(
        std::vector<bench::RunResult>(first, first + static_cast<std::ptrdiff_t>(per_capacity)),
        factories.size(), opt.seeds);
    for (std::size_t f = 0; f < factories.size(); ++f) {
      table[order[f]].push_back(pooled[f].summary);
    }
  }

  auto print_metric = [&](const char* title, double telemetry::Summary::* field) {
    std::printf("\nFigure 17 — %s\n", title);
    std::printf("  %-10s", "scheduler");
    for (int nodes : node_counts) std::printf(" %9d", nodes * 4);
    std::printf("   (GPUs)\n");
    for (const auto& name : order) {
      std::printf("  %-10s", name.c_str());
      for (const auto& s : table[name]) std::printf(" %9.1f", s.*field);
      std::printf("\n");
    }
  };
  print_metric("average JCT (s)", &telemetry::Summary::avg_jct);
  print_metric("average execution time (s)", &telemetry::Summary::avg_exec);
  print_metric("average queuing time (s)", &telemetry::Summary::avg_queue);

  std::printf("\nFigure 18 — ONES average-JCT improvement vs baselines (%%)\n");
  std::printf("  %-10s", "baseline");
  for (int nodes : node_counts) std::printf(" %9d", nodes * 4);
  std::printf("   (GPUs)\n");
  std::vector<std::vector<double>> improvements;
  for (std::size_t b = 1; b < order.size(); ++b) {
    std::printf("  %-10s", order[b].c_str());
    std::vector<double> row;
    for (std::size_t c = 0; c < node_counts.size(); ++c) {
      const double ones_jct = table[order[0]][c].avg_jct;
      const double base_jct = table[order[b]][c].avg_jct;
      row.push_back(100.0 * (base_jct - ones_jct) / base_jct);
      std::printf(" %8.1f%%", row.back());
    }
    improvements.push_back(row);
    std::printf("\n");
  }

  std::printf("\nShape checks vs the paper:\n");
  bool jct_falls = true;
  for (const auto& name : order) {
    for (std::size_t c = 1; c < node_counts.size(); ++c) {
      if (table[name][c].avg_jct > table[name][c - 1].avg_jct * 1.05) jct_falls = false;
    }
  }
  std::printf("  average JCT falls as capacity grows (all schedulers): %s\n",
              jct_falls ? "OK" : "MISMATCH");
  bool positive_at_full = true;
  for (const auto& row : improvements) {
    if (row.back() <= 0.0) positive_at_full = false;
  }
  std::printf("  ONES improves on every baseline at 64 GPUs: %s\n",
              positive_at_full ? "OK" : "MISMATCH");
  bool queue_linear = true;
  for (const auto& name : order) {
    if (name == "Optimus") continue;  // round-based floor dominates its queue
    const double q16 = table[name].front().avg_queue;
    const double q64 = table[name].back().avg_queue;
    if (q64 > 0.33 * q16) queue_linear = false;
  }
  std::printf("  queuing time decreases near-linearly with capacity: %s\n",
              queue_linear ? "OK" : "MISMATCH");
  std::printf("\nNote on Fig 18's trend: the paper reports improvements *growing* from\n"
              "16 to 64 GPUs. On a fixed trace that holds while the largest cluster is\n"
              "still contended; once capacity outgrows the offered load, all schedulers\n"
              "converge and margins compress (see EXPERIMENTS.md).\n");
  bench::print_cache_footer(bench_registry);
  return 0;
}
