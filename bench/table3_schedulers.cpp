// Table 3 reproduction: capability matrix of ONES and the baselines, read
// off the actual implementations (mechanism, periodicity) rather than
// hard-coded.
#include <cstdio>

#include "core/ones_scheduler.hpp"
#include "drl/drl_scheduler.hpp"
#include "harness.hpp"
#include "sched/optimus.hpp"
#include "sched/tiresias.hpp"

int main() {
  ::ones::bench::ScopedTimer bench_timer("table3_schedulers");
  using namespace ones;
  core::OnesScheduler ones_s;
  drl::DrlScheduler drl_s;
  sched::TiresiasScheduler tiresias_s;
  sched::OptimusScheduler optimus_s;

  std::printf("Table 3: comparison of ONES and the state-of-the-art DL schedulers\n\n");
  std::printf("%-10s %-18s %-12s %-14s %-14s %-22s\n", "Scheduler", "Strategy",
              "Preemption", "Elastic size", "Elastic batch", "Re-config mechanism");

  auto mech = [](const sched::Scheduler& s) {
    return s.mechanism() == sched::ScalingMechanism::Elastic
               ? "elastic (~1 s)"
               : "checkpoint (tens of s)";
  };

  std::printf("%-10s %-18s %-12s %-14s %-14s %-22s\n", ones_s.name().c_str(),
              "dynamic (evo.)", "Y", "Y", "Y", mech(ones_s));
  std::printf("%-10s %-18s %-12s %-14s %-14s %-22s\n", drl_s.name().c_str(),
              "dynamic (DRL)", "N", "Y", "N", mech(drl_s));
  std::printf("%-10s %-18s %-12s %-14s %-14s %-22s\n", tiresias_s.name().c_str(),
              "greedy (2D-LAS)", "Y", "N", "N", mech(tiresias_s));
  std::printf("%-10s %-18s %-12s %-14s %-14s %-22s\n", optimus_s.name().c_str(),
              "greedy (marginal)", "Y", "Y", "N", mech(optimus_s));

  std::printf("\nScheduling cadence:\n");
  std::printf("  ONES     : event-driven (period = %.0f s)\n", ones_s.period_s());
  std::printf("  DRL      : event-driven, one job per decision (period = %.0f s)\n",
              drl_s.period_s());
  std::printf("  Tiresias : event-driven queue maintenance (period = %.0f s)\n",
              tiresias_s.period_s());
  std::printf("  Optimus  : round-based, every %.0f s\n", optimus_s.period_s());
  return 0;
}
