// Shared helpers for the reproduction benches: the paper's evaluation
// configuration (64-GPU Longhorn-like cluster, Table 2 trace) and a runner
// that executes one scheduler over a trace and collects its metrics.
#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/ones_scheduler.hpp"
#include "drl/drl_scheduler.hpp"
#include "sched/fifo.hpp"
#include "sched/optimus.hpp"
#include "sched/simulation.hpp"
#include "sched/srtf.hpp"
#include "sched/tiresias.hpp"
#include "telemetry/metrics.hpp"
#include "workload/trace.hpp"

namespace ones::bench {

/// The paper's testbed: 16 nodes x 4 V100 = 64 GPUs (§4.1).
inline sched::SimulationConfig paper_sim_config(int nodes = 16) {
  sched::SimulationConfig c;
  c.topology.num_nodes = nodes;
  c.topology.gpus_per_node = 4;
  return c;
}

/// The evaluation trace: Table 2 variants, Poisson arrivals. The arrival
/// rate is calibrated so the cluster is contended (the regime the paper's
/// queuing/fragmentation arguments address).
inline workload::TraceConfig paper_trace_config(int jobs = 240,
                                                double interarrival_s = 4.5,
                                                std::uint64_t seed = 7) {
  workload::TraceConfig t;
  t.num_jobs = jobs;
  t.mean_interarrival_s = interarrival_s;
  t.seed = seed;
  return t;
}

struct RunResult {
  telemetry::Summary summary;
  std::vector<double> jcts;
  std::vector<double> exec_times;
  std::vector<double> queue_times;
  std::map<JobId, double> jct_by_job;  ///< ordered, for paired tests
  std::size_t completed = 0;
};

inline RunResult run_one(const sched::SimulationConfig& config,
                         const std::vector<workload::JobSpec>& trace,
                         sched::Scheduler& scheduler) {
  sched::ClusterSimulation sim(config, trace, scheduler);
  sim.run();
  RunResult r;
  r.summary = telemetry::summarize(scheduler.name(), sim.metrics(),
                                   sim.topology().total_gpus());
  r.jcts = sim.metrics().jcts();
  r.exec_times = sim.metrics().exec_times();
  r.queue_times = sim.metrics().queue_times();
  for (const auto& [id, jct] : sim.metrics().jct_by_job()) r.jct_by_job[id] = jct;
  r.completed = sim.completed_jobs();
  return r;
}

/// The four schedulers of the paper's evaluation (Table 3), plus optionally
/// the FIFO / SRTF* references. The DRL baseline is trained offline first.
struct SchedulerSet {
  std::unique_ptr<core::OnesScheduler> ones;
  std::unique_ptr<drl::DrlScheduler> drl;
  std::unique_ptr<sched::TiresiasScheduler> tiresias;
  std::unique_ptr<sched::OptimusScheduler> optimus;
  std::unique_ptr<sched::FifoScheduler> fifo;
  std::unique_ptr<sched::SrtfOracleScheduler> srtf;

  std::vector<sched::Scheduler*> paper_four() {
    return {ones.get(), drl.get(), tiresias.get(), optimus.get()};
  }
  std::vector<sched::Scheduler*> all() {
    return {ones.get(), drl.get(), tiresias.get(), optimus.get(), fifo.get(), srtf.get()};
  }
};

inline SchedulerSet make_schedulers(bool train_drl = true) {
  SchedulerSet s;
  s.ones = std::make_unique<core::OnesScheduler>();
  s.drl = std::make_unique<drl::DrlScheduler>();
  if (train_drl) {
    std::printf("[setup] training the DRL baseline policy offline...\n");
    std::fflush(stdout);
    s.drl->train();
  }
  s.tiresias = std::make_unique<sched::TiresiasScheduler>();
  s.optimus = std::make_unique<sched::OptimusScheduler>();
  s.fifo = std::make_unique<sched::FifoScheduler>();
  s.srtf = std::make_unique<sched::SrtfOracleScheduler>();
  return s;
}

inline void print_rule(char ch = '-', int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar(ch);
  std::putchar('\n');
}

}  // namespace ones::bench
