// Shared helpers for the reproduction benches: the paper's evaluation
// configuration (64-GPU Longhorn-like cluster, Table 2 trace), scheduler
// factories for the orchestrated grid runner (src/exp), and a wall-clock
// timer every bench prints on exit.
#pragma once

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/host.hpp"
#include "common/json.hpp"
#include "core/ones_scheduler.hpp"
#include "drl/drl_scheduler.hpp"
#include "exp/cli.hpp"
#include "exp/orchestrator.hpp"
#include "prof/export.hpp"
#include "sched/fifo.hpp"
#include "sched/optimus.hpp"
#include "sched/simulation.hpp"
#include "sched/srtf.hpp"
#include "sched/tiresias.hpp"
#include "telemetry/metrics.hpp"
#include "workload/trace.hpp"

namespace ones::bench {

/// The paper's testbed: 16 nodes x 4 V100 = 64 GPUs (§4.1).
inline sched::SimulationConfig paper_sim_config(int nodes = 16) {
  sched::SimulationConfig c;
  c.topology.num_nodes = nodes;
  c.topology.gpus_per_node = 4;
  return c;
}

/// The evaluation trace: Table 2 variants, Poisson arrivals. The arrival
/// rate is calibrated so the cluster is contended (the regime the paper's
/// queuing/fragmentation arguments address).
inline workload::TraceConfig paper_trace_config(int jobs = 240,
                                                double interarrival_s = 4.5,
                                                std::uint64_t seed = 7) {
  workload::TraceConfig t;
  t.num_jobs = jobs;
  t.mean_interarrival_s = interarrival_s;
  t.seed = seed;
  return t;
}

/// Prints the bench's wall-clock duration when it goes out of scope, so the
/// BENCH_*.json trajectories can track runner speedups. Written to stderr:
/// stdout carries metric output that must stay byte-identical across runs.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* label = "bench")
      : label_(label), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    std::fprintf(stderr, "[%s] wall-clock: %.1f s\n", label_, s);
    std::fflush(stderr);
  }

 private:
  const char* label_;
  std::chrono::steady_clock::time_point start_;
};

/// Wall-clock stopwatch readable mid-flight — for the stderr-only
/// throughput lines (events/sec) of the hyperscale tiers. Like ScopedTimer,
/// it must never feed stdout or results (determinism, CLAUDE.md).
class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Peak resident set size (VmHWM) in MiB; 0.0 when unavailable (non-Linux).
/// Diagnostics only — callers print it to stderr or BENCH_*.json. The
/// reader itself lives in src/common (common::peak_rss_mib).
inline double peak_rss_mib() { return common::peak_rss_mib(); }

using RunResult = exp::RunResult;

inline RunResult run_one(const sched::SimulationConfig& config,
                         const std::vector<workload::JobSpec>& trace,
                         sched::Scheduler& scheduler) {
  return exp::run_simulation(config, trace, scheduler);
}

/// A named scheduler factory for grid specs. Every run gets a FRESH
/// scheduler instance (parallel runs must not share mutable policy state).
struct NamedFactory {
  std::string name;
  exp::SchedulerFactory make;
};

/// The DRL baseline trains lazily on first instantiation (thread-safe), so a
/// fully-cached grid never pays the offline training phase. Evaluation runs
/// copy the trained prototype.
inline exp::SchedulerFactory drl_factory() {
  auto proto = std::make_shared<drl::DrlScheduler>();
  auto once = std::make_shared<std::once_flag>();
  return [proto, once]() -> std::unique_ptr<sched::Scheduler> {
    std::call_once(*once, [&proto] {
      std::fprintf(stderr, "[setup] training the DRL baseline policy offline...\n");
      std::fflush(stderr);
      proto->train();
    });
    return std::make_unique<drl::DrlScheduler>(*proto);
  };
}

/// The four schedulers of the paper's evaluation (Table 3), in figure order.
inline std::vector<NamedFactory> paper_factories() {
  std::vector<NamedFactory> f;
  f.push_back({core::OnesScheduler().name(),
               [] { return std::make_unique<core::OnesScheduler>(); }});
  f.push_back({drl::DrlScheduler().name(), drl_factory()});
  f.push_back({sched::TiresiasScheduler().name(),
               [] { return std::make_unique<sched::TiresiasScheduler>(); }});
  f.push_back({sched::OptimusScheduler().name(),
               [] { return std::make_unique<sched::OptimusScheduler>(); }});
  return f;
}

/// Paper four plus the FIFO / SRTF-oracle reference points.
inline std::vector<NamedFactory> all_factories() {
  auto f = paper_factories();
  f.push_back({sched::FifoScheduler().name(),
               [] { return std::make_unique<sched::FifoScheduler>(); }});
  f.push_back({sched::SrtfOracleScheduler().name(),
               [] { return std::make_unique<sched::SrtfOracleScheduler>(); }});
  return f;
}

/// Build the (factory-major, seed-minor) grid over seeds base..base+K-1 of
/// `trace`: the canonical layout the heavy benches share. Run i*K+k holds
/// factory i at seed k, so slices of K runs pool into one per-scheduler row.
inline std::vector<exp::RunSpec> seed_grid(const std::vector<NamedFactory>& factories,
                                           const sched::SimulationConfig& sim,
                                           const workload::TraceConfig& trace,
                                           int seeds) {
  std::vector<exp::RunSpec> specs;
  specs.reserve(factories.size() * static_cast<std::size_t>(seeds));
  for (const auto& f : factories) {
    for (int k = 0; k < seeds; ++k) {
      exp::RunSpec spec;
      spec.scheduler = f.name;
      spec.sim = sim;
      spec.trace = trace;
      spec.trace.seed = trace.seed + static_cast<std::uint64_t>(k);
      spec.factory = f.make;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

/// Pool each factory's seed-replicas out of a seed_grid result: returns one
/// RunResult per factory, in factory order.
inline std::vector<RunResult> pool_by_factory(const std::vector<RunResult>& runs,
                                              std::size_t n_factories, int seeds) {
  std::vector<RunResult> pooled;
  pooled.reserve(n_factories);
  for (std::size_t i = 0; i < n_factories; ++i) {
    const auto first = runs.begin() + static_cast<std::ptrdiff_t>(i * seeds);
    pooled.push_back(exp::pool_runs(std::vector<RunResult>(first, first + seeds)));
  }
  return pooled;
}

/// Concatenation over seeds of the per-seed (ONES, baseline) JCT pairs,
/// matched by job id within each seed (ids restart per trace, so pairing
/// must happen before pooling). `ones_runs` / `base_runs` are the K
/// seed-replicas of the two schedulers in seed order.
inline void paired_jcts(const std::vector<RunResult>& runs, std::size_t ones_index,
                        std::size_t base_index, int seeds, std::vector<double>& x,
                        std::vector<double>& y) {
  x.clear();
  y.clear();
  for (int k = 0; k < seeds; ++k) {
    const auto& ones_run = runs[ones_index * seeds + static_cast<std::size_t>(k)];
    const auto& base_run = runs[base_index * seeds + static_cast<std::size_t>(k)];
    for (const auto& [id, jct] : ones_run.jct_by_job) {
      auto it = base_run.jct_by_job.find(id);
      if (it != base_run.jct_by_job.end()) {
        x.push_back(jct);
        y.push_back(it->second);
      }
    }
  }
}

/// The legacy serial scheduler set (light benches that probe scheduler
/// internals or reuse instances deliberately). The DRL baseline is trained
/// offline first.
struct SchedulerSet {
  std::unique_ptr<core::OnesScheduler> ones;
  std::unique_ptr<drl::DrlScheduler> drl;
  std::unique_ptr<sched::TiresiasScheduler> tiresias;
  std::unique_ptr<sched::OptimusScheduler> optimus;
  std::unique_ptr<sched::FifoScheduler> fifo;
  std::unique_ptr<sched::SrtfOracleScheduler> srtf;

  std::vector<sched::Scheduler*> paper_four() {
    return {ones.get(), drl.get(), tiresias.get(), optimus.get()};
  }
  std::vector<sched::Scheduler*> all() {
    return {ones.get(), drl.get(), tiresias.get(), optimus.get(), fifo.get(), srtf.get()};
  }
};

inline SchedulerSet make_schedulers(bool train_drl = true) {
  SchedulerSet s;
  s.ones = std::make_unique<core::OnesScheduler>();
  s.drl = std::make_unique<drl::DrlScheduler>();
  if (train_drl) {
    std::printf("[setup] training the DRL baseline policy offline...\n");
    std::fflush(stdout);
    s.drl->train();
  }
  s.tiresias = std::make_unique<sched::TiresiasScheduler>();
  s.optimus = std::make_unique<sched::OptimusScheduler>();
  s.fifo = std::make_unique<sched::FifoScheduler>();
  s.srtf = std::make_unique<sched::SrtfOracleScheduler>();
  return s;
}

inline void print_rule(char ch = '-', int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar(ch);
  std::putchar('\n');
}

/// stderr footer with the orchestrator cache statistics run_grid recorded
/// into the bench's registry (GridOptions::registry). Printed next to the
/// ScopedTimer line — stdout carries metric output that must stay
/// byte-identical, so diagnostics never go there.
inline void print_cache_footer(const telemetry::MetricsRegistry& registry) {
  std::fprintf(stderr,
               "[cache] hits=%.0f misses=%.0f stores=%.0f demotions=%.0f executed=%.0f\n",
               registry.counter_value("exp_cache_hits_total"),
               registry.counter_value("exp_cache_misses_total"),
               registry.counter_value("exp_cache_stores_total"),
               registry.counter_value("exp_cache_demotions_total"),
               registry.counter_value("exp_runs_executed_total"));
  std::fflush(stderr);
}

/// Canonical machine-readable bench results (DESIGN.md §14). Construct one
/// per bench from the parsed CLI options; feed it the deterministic headline
/// metrics (`metric`), host-side measurements (`host_metric`), the cache
/// statistics registry and — via `profile()` wired into
/// `GridOptions::prof` — the merged host-span rollup. On destruction it
/// prints the stderr footer (wall-clock, peak RSS, span table) and writes
/// `BENCH_<name>.json` (or `--bench-json=PATH`) via temp-file + rename.
/// Deterministic metric values are strictly separated from host noise: the
/// `metrics` object must be byte-stable across runs and thread counts, while
/// everything under `host` (and the profile nanoseconds) is wall-clock.
/// `--no-bench-json` keeps the stderr footer but skips the file.
class BenchReport {
 public:
  BenchReport(const std::string& name, const exp::BenchOptions& opt)
      : name_(name),
        threads_(opt.grid.threads),
        seeds_(opt.seeds),
        enabled_(opt.write_bench_json),
        path_(opt.bench_json.empty() ? "BENCH_" + name + ".json" : opt.bench_json),
        start_(std::chrono::steady_clock::now()) {}
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  /// A deterministic headline result (same value for any --threads).
  void metric(const std::string& key, double value) { metrics_[key] = value; }
  /// A host-side measurement (wall-clock, throughput, ...): machine noise,
  /// compared warn-only by tools/bench_diff.
  void host_metric(const std::string& key, double value) { host_metrics_[key] = value; }

  /// Copy the orchestrator cache statistics out of the bench registry
  /// (GridOptions::registry after run_grid).
  void cache_stats_from(const telemetry::MetricsRegistry& registry) {
    cache_["hits"] = registry.counter_value("exp_cache_hits_total");
    cache_["misses"] = registry.counter_value("exp_cache_misses_total");
    cache_["stores"] = registry.counter_value("exp_cache_stores_total");
    cache_["demotions"] = registry.counter_value("exp_cache_demotions_total");
    cache_["executed"] = registry.counter_value("exp_runs_executed_total");
    have_cache_ = true;
  }

  /// The bench-level span rollup; point GridOptions::prof at it (only when
  /// the user asked for profiling — the off-by-default contract is the
  /// bench's to keep) or `add` profilers manually.
  prof::ProfileRollup& profile() { return profile_; }

  ~BenchReport() {
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    const double rss_mib = common::peak_rss_mib();
    std::fprintf(stderr, "[%s] wall-clock: %.1f s  peak-rss: %.1f MiB\n", name_.c_str(),
                 wall_s, rss_mib);
    if (!profile_.empty()) std::fputs(prof::format_profile(profile_.stats()).c_str(), stderr);
    std::fflush(stderr);
    if (!enabled_) return;
    try {
      write_json(wall_s, rss_mib);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[%s] failed writing '%s': %s\n", name_.c_str(), path_.c_str(),
                   e.what());
    }
  }

 private:
  void write_json(double wall_s, double rss_mib) const {
    namespace fs = std::filesystem;
    const std::string tmp = path_ + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) throw std::runtime_error("cannot open temp file");
      out << "{\"schema\":1,\"bench\":" << json_quote(name_)
          << ",\"threads\":" << threads_ << ",\"seeds\":" << seeds_;
      out << ",\n\"metrics\":{";
      write_map(out, metrics_);
      out << "},\n\"host\":{\"wall_seconds\":" << json_double(wall_s)
          << ",\"peak_rss_mib\":" << json_double(rss_mib) << ",\"metrics\":{";
      write_map(out, host_metrics_);
      out << "}}";
      if (have_cache_) {
        out << ",\n\"cache\":{";
        write_map(out, cache_);
        out << "}";
      }
      out << ",\n\"profile\":[";
      bool first = true;
      for (const prof::SpanStats& s : profile_.stats()) {
        out << (first ? "\n" : ",\n") << "{\"path\":" << json_quote(s.path)
            << ",\"count\":" << s.count << ",\"total_ns\":" << s.total_ns
            << ",\"self_ns\":" << s.self_ns << '}';
        first = false;
      }
      out << "\n]}\n";
      if (!out.good()) throw std::runtime_error("write failed");
    }
    fs::rename(tmp, path_);
  }

  static void write_map(std::ostream& out, const std::map<std::string, double>& m) {
    bool first = true;
    for (const auto& [k, v] : m) {
      out << (first ? "" : ",") << json_quote(k) << ':' << json_double(v);
      first = false;
    }
  }

  std::string name_;
  int threads_;
  int seeds_;
  bool enabled_;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
  std::map<std::string, double> metrics_;
  std::map<std::string, double> host_metrics_;
  std::map<std::string, double> cache_;
  bool have_cache_ = false;
  prof::ProfileRollup profile_;
};

}  // namespace ones::bench
