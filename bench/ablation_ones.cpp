// Ablation study of the design choices DESIGN.md calls out (not a paper
// figure — §3's design rationale, quantified):
//
//   * evolution operators: crossover / mutation / reorder off,
//   * the Beta-progress predictor off (rho fixed at 1/2),
//   * the elastic scaling mechanism replaced by checkpoint migration,
//   * LR linear scaling off in the substrate (the §3.3.2 motivation).
//
// Run on a 32-GPU cluster with a contended trace (smaller than Fig 15 to
// keep the 7-variant sweep quick).
#include <cstdio>
#include <memory>

#include "harness.hpp"

using namespace ones;

namespace {

/// ONES with the checkpoint mechanism instead of elastic scaling.
class CheckpointOnes : public core::OnesScheduler {
 public:
  explicit CheckpointOnes(const core::OnesConfig& cfg) : core::OnesScheduler(cfg) {}
  std::string name() const override { return "ONES-ckpt"; }
  sched::ScalingMechanism mechanism() const override {
    return sched::ScalingMechanism::Checkpoint;
  }
};

}  // namespace

int main() {
  const auto config = bench::paper_sim_config(8);  // 32 GPUs
  const auto trace = workload::generate_trace(bench::paper_trace_config(160, 9.0));
  std::printf("ONES ablations: %zu jobs on 32 GPUs\n\n", trace.size());
  std::printf("%-16s %s\n", "variant", telemetry::format_summary_header().c_str());

  struct Variant {
    const char* label;
    core::OnesConfig cfg;
    bool checkpoint = false;
  };
  std::vector<Variant> variants;
  variants.push_back({"full", {}, false});
  {
    Variant v{"no-crossover", {}, false};
    v.cfg.evolution.use_crossover = false;
    variants.push_back(v);
  }
  {
    Variant v{"no-mutation", {}, false};
    v.cfg.evolution.use_mutation = false;
    variants.push_back(v);
  }
  {
    Variant v{"no-reorder", {}, false};
    v.cfg.evolution.use_reorder = false;
    variants.push_back(v);
  }
  {
    Variant v{"no-predictor", {}, false};
    v.cfg.use_predictor = false;
    variants.push_back(v);
  }
  variants.push_back({"ckpt-mechanism", {}, true});

  double full_jct = 0.0;
  std::vector<std::pair<std::string, double>> rows;
  for (const auto& variant : variants) {
    std::unique_ptr<core::OnesScheduler> s;
    if (variant.checkpoint) {
      s = std::make_unique<CheckpointOnes>(variant.cfg);
    } else {
      s = std::make_unique<core::OnesScheduler>(variant.cfg);
    }
    const auto r = bench::run_one(config, trace, *s);
    std::printf("%-16s %s\n", variant.label,
                telemetry::format_summary_row(r.summary).c_str());
    std::fflush(stdout);
    if (std::string(variant.label) == "full") full_jct = r.summary.avg_jct;
    rows.emplace_back(variant.label, r.summary.avg_jct);
  }

  // Substrate-side ablation: LR linear scaling off — large batches stop
  // paying off, so the full ONES should degrade noticeably.
  {
    auto no_lr_config = config;
    no_lr_config.convergence.lr_linear_scaling = false;
    core::OnesScheduler s;
    const auto r = bench::run_one(no_lr_config, trace, s);
    std::printf("%-16s %s\n", "no-lr-scaling", telemetry::format_summary_row(r.summary).c_str());
    rows.emplace_back("no-lr-scaling", r.summary.avg_jct);
  }

  std::printf("\nAverage-JCT change vs the full configuration:\n");
  for (const auto& [label, jct] : rows) {
    if (label == "full") continue;
    std::printf("  %-16s %+7.1f%%\n", label.c_str(), 100.0 * (jct - full_jct) / full_jct);
  }
  return 0;
}
