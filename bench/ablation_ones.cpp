// Ablation study of the design choices DESIGN.md calls out (not a paper
// figure — §3's design rationale, quantified):
//
//   * evolution operators: crossover / mutation / reorder off,
//   * the Beta-progress predictor off (rho fixed at 1/2),
//   * the elastic scaling mechanism replaced by checkpoint migration,
//   * LR linear scaling off in the substrate (the §3.3.2 motivation).
//
// Run on a 32-GPU cluster with a contended trace (smaller than Fig 15 to
// keep the 7-variant sweep quick), through the src/exp orchestrator
// (--threads / --seeds / --no-cache). Each variant's OnesConfig tweak is
// not part of the serialized spec, so its label doubles as the RunSpec
// `variant` cache-key tag.
#include <cstdio>
#include <memory>
#include <vector>

#include "harness.hpp"

using namespace ones;

namespace {

/// ONES with the checkpoint mechanism instead of elastic scaling.
class CheckpointOnes : public core::OnesScheduler {
 public:
  explicit CheckpointOnes(const core::OnesConfig& cfg) : core::OnesScheduler(cfg) {}
  std::string name() const override { return "ONES-ckpt"; }
  sched::ScalingMechanism mechanism() const override {
    return sched::ScalingMechanism::Checkpoint;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = exp::parse_bench_cli(argc, argv);
  bench::BenchReport report("ablation_ones", opt);
  const auto config = bench::paper_sim_config(8);  // 32 GPUs
  const auto trace_config = bench::paper_trace_config(160, 9.0);
  std::printf("ONES ablations: %d jobs on 32 GPUs\n\n", trace_config.num_jobs);
  std::printf("%-16s %s\n", "variant", telemetry::format_summary_header().c_str());

  struct Variant {
    const char* label;
    core::OnesConfig cfg;
    bool checkpoint = false;
  };
  std::vector<Variant> variants;
  variants.push_back({"full", {}, false});
  {
    Variant v{"no-crossover", {}, false};
    v.cfg.evolution.use_crossover = false;
    variants.push_back(v);
  }
  {
    Variant v{"no-mutation", {}, false};
    v.cfg.evolution.use_mutation = false;
    variants.push_back(v);
  }
  {
    Variant v{"no-reorder", {}, false};
    v.cfg.evolution.use_reorder = false;
    variants.push_back(v);
  }
  {
    Variant v{"no-predictor", {}, false};
    v.cfg.use_predictor = false;
    variants.push_back(v);
  }
  variants.push_back({"ckpt-mechanism", {}, true});

  // One grid row per (variant, seed); the substrate-side no-lr-scaling
  // ablation rides along as an extra row with a modified sim config.
  std::vector<bench::NamedFactory> factories;
  std::vector<exp::RunSpec> specs;
  for (const auto& variant : variants) {
    const auto cfg = variant.cfg;
    exp::SchedulerFactory make;
    if (variant.checkpoint) {
      make = [cfg]() -> std::unique_ptr<sched::Scheduler> {
        return std::make_unique<CheckpointOnes>(cfg);
      };
    } else {
      make = [cfg]() -> std::unique_ptr<sched::Scheduler> {
        return std::make_unique<core::OnesScheduler>(cfg);
      };
    }
    for (int k = 0; k < opt.seeds; ++k) {
      exp::RunSpec spec;
      spec.scheduler = variant.checkpoint ? "ONES-ckpt" : "ONES";
      spec.variant = variant.label;
      spec.sim = config;
      spec.trace = trace_config;
      spec.trace.seed = trace_config.seed + static_cast<std::uint64_t>(k);
      spec.factory = make;
      specs.push_back(std::move(spec));
    }
  }
  {
    auto no_lr_config = config;
    no_lr_config.convergence.lr_linear_scaling = false;
    for (int k = 0; k < opt.seeds; ++k) {
      exp::RunSpec spec;
      spec.scheduler = "ONES";
      spec.variant = "no-lr-scaling";
      spec.sim = no_lr_config;
      spec.trace = trace_config;
      spec.trace.seed = trace_config.seed + static_cast<std::uint64_t>(k);
      spec.factory = [] { return std::make_unique<core::OnesScheduler>(); };
      specs.push_back(std::move(spec));
    }
  }

  telemetry::MetricsRegistry bench_registry;
  exp::GridOptions grid = opt.grid;
  grid.registry = &bench_registry;
  if (!grid.prof_dir.empty()) grid.prof = &report.profile();

  const auto runs = exp::run_grid(specs, grid);
  const std::size_t n_rows = variants.size() + 1;
  const auto pooled = bench::pool_by_factory(runs, n_rows, opt.seeds);

  std::vector<const char*> labels;
  for (const auto& variant : variants) labels.push_back(variant.label);
  labels.push_back("no-lr-scaling");

  double full_jct = 0.0;
  std::vector<std::pair<std::string, double>> rows;
  for (std::size_t i = 0; i < n_rows; ++i) {
    std::printf("%-16s %s\n", labels[i],
                telemetry::format_summary_row(pooled[i].summary).c_str());
    if (std::string(labels[i]) == "full") full_jct = pooled[i].summary.avg_jct;
    rows.emplace_back(labels[i], pooled[i].summary.avg_jct);
    report.metric(std::string("avg_jct.") + labels[i], pooled[i].summary.avg_jct);
  }

  std::printf("\nAverage-JCT change vs the full configuration:\n");
  for (const auto& [label, jct] : rows) {
    if (label == "full") continue;
    std::printf("  %-16s %+7.1f%%\n", label.c_str(), 100.0 * (jct - full_jct) / full_jct);
  }
  report.cache_stats_from(bench_registry);
  bench::print_cache_footer(bench_registry);
  return 0;
}
