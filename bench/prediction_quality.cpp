// Prediction quality study (the paper's §2.1/§3.2.1 argument: absolute
// job-length prediction is hard; ONES instead models progress
// distributions).
//
// Replays every completed job's history and compares three estimators of
// the job's REMAINING WORKLOAD (raw samples still to process) at each epoch
// against the ground truth known in hindsight:
//
//   * ONES       — Eq. 7 at the Beta-distribution mean,
//   * Optimus    — reciprocal accuracy-curve fit, remaining epochs x |D|,
//   * naive mean — mean total samples of previously completed jobs minus
//                  samples processed so far.
//
// Reported per estimator: median / p90 absolute percentage error. Expected
// shape: ONES's progress-based estimator beats both the curve fit and the
// naive mean; every estimator's RELATIVE error explodes near completion
// (the denominator goes to zero faster than predictions can track it); and
// no estimator is anywhere near exact — motivating ONES's distributional
// treatment over point predictions.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/math_util.hpp"
#include "harness.hpp"
#include "predict/progress_predictor.hpp"
#include "sched/optimus.hpp"

using namespace ones;

namespace {

struct ErrorStats {
  std::vector<double> ape;  ///< absolute percentage errors
  void add(double predicted, double truth) {
    if (truth <= 0.0) return;
    ape.push_back(std::fabs(predicted - truth) / truth);
  }
  double median() const { return ones::quantile(ape, 0.5); }
  double p90() const { return ones::quantile(ape, 0.9); }
};

}  // namespace

int main() {
  ::ones::bench::ScopedTimer bench_timer("prediction_quality");
  const auto config = bench::paper_sim_config(8);  // 32 GPUs
  const auto trace = workload::generate_trace(bench::paper_trace_config(120, 9.0));
  std::printf("Prediction quality: remaining-workload estimates over %zu jobs\n\n",
              trace.size());

  core::OnesScheduler scheduler;
  sched::ClusterSimulation sim(config, trace, scheduler);
  sim.run();
  const auto& predictor = scheduler.predictor();
  sched::OptimusScheduler optimus;  // only its fitting routine is used

  // Mean total samples across all completed jobs (the naive estimator's
  // population; using the final value slightly flatters it).
  double mean_total = 0.0;
  int completed = 0;
  for (const auto& spec : trace) {
    const auto& v = sim.job_view(spec.id);
    if (v.aborted || v.epoch_log.empty()) continue;
    mean_total += v.epoch_log.back().samples_processed;
    ++completed;
  }
  mean_total /= std::max(completed, 1);

  ErrorStats ones_err, optimus_err, naive_err;
  ErrorStats ones_late, optimus_late, naive_late;  // last third of training

  for (const auto& spec : trace) {
    const auto& v = sim.job_view(spec.id);
    if (v.aborted || v.epoch_log.size() < 3) continue;
    const double total = v.epoch_log.back().samples_processed;
    for (std::size_t e = 1; e + 1 < v.epoch_log.size(); ++e) {
      sched::JobView past = v;
      past.status = sched::JobStatus::Running;
      past.epoch_log.resize(e + 1);
      past.epochs_completed = static_cast<int>(e + 1);
      past.samples_processed = past.epoch_log.back().samples_processed;
      past.train_loss = past.epoch_log.back().train_loss;
      past.val_accuracy = past.epoch_log.back().val_accuracy;

      const double truth = total - past.samples_processed;
      const double ones_pred = predictor.expected_remaining_samples(past);
      const double optimus_pred =
          optimus.predict_remaining_epochs(past) * past.dataset_size();
      const double naive_pred = std::max(mean_total - past.samples_processed, 0.0);

      ones_err.add(ones_pred, truth);
      optimus_err.add(optimus_pred, truth);
      naive_err.add(naive_pred, truth);
      if (past.samples_processed > (2.0 / 3.0) * total) {
        ones_late.add(ones_pred, truth);
        optimus_late.add(optimus_pred, truth);
        naive_late.add(naive_pred, truth);
      }
    }
  }

  std::printf("absolute percentage error of remaining-workload estimates "
              "(%zu evaluation points):\n\n",
              ones_err.ape.size());
  std::printf("%-22s %12s %12s\n", "estimator", "median APE", "p90 APE");
  std::printf("%-22s %11.1f%% %11.1f%%\n", "ONES (Eq.7, Beta mean)",
              100.0 * ones_err.median(), 100.0 * ones_err.p90());
  std::printf("%-22s %11.1f%% %11.1f%%\n", "Optimus (curve fit)",
              100.0 * optimus_err.median(), 100.0 * optimus_err.p90());
  std::printf("%-22s %11.1f%% %11.1f%%\n", "naive mean",
              100.0 * naive_err.median(), 100.0 * naive_err.p90());

  std::printf("\nlate training only (last third of each job):\n");
  std::printf("%-22s %11.1f%% %11.1f%%\n", "ONES (Eq.7, Beta mean)",
              100.0 * ones_late.median(), 100.0 * ones_late.p90());
  std::printf("%-22s %11.1f%% %11.1f%%\n", "Optimus (curve fit)",
              100.0 * optimus_late.median(), 100.0 * optimus_late.p90());
  std::printf("%-22s %11.1f%% %11.1f%%\n", "naive mean",
              100.0 * naive_late.median(), 100.0 * naive_late.p90());

  std::printf("\nShape checks:\n");
  std::printf("  ONES beats the naive mean overall: %s\n",
              ones_err.median() < naive_err.median() ? "OK" : "MISMATCH");
  std::printf("  ONES beats the Optimus-style curve fit overall: %s\n",
              ones_err.median() < optimus_err.median() ? "OK" : "MISMATCH");
  std::printf("  relative error explodes near completion for every estimator\n"
              "  (why absolute length prediction is brittle): %s\n",
              (ones_late.p90() > ones_err.p90() && naive_late.p90() > naive_err.p90())
                  ? "OK"
                  : "MISMATCH");
  std::printf("  no estimator is near-exact (median APE > 5%%) — the premise of\n"
              "  modelling progress distributions instead of point lengths: %s\n",
              ones_err.median() > 0.05 ? "OK" : "MISMATCH");
  return 0;
}
