// Figure 3 reproduction: training accuracy with a FIXED LOCAL batch of 256
// and 1 / 2 / 4 / 8 GPUs (so the global batch is 256 * gpus).
//
// Expected shape: more GPUs converge visibly slower — especially beyond 2
// GPUs, where the global batch passes the critical batch size.
#include <cstdio>
#include <vector>

#include "harness.hpp"
#include "model/convergence.hpp"
#include "model/task.hpp"

int main() {
  ::ones::bench::ScopedTimer bench_timer("fig03_convergence");
  using namespace ones;
  const auto& profile = model::profile_by_name("ResNet50-CIFAR");
  const std::int64_t dataset = 20000;
  model::ConvergenceConfig config;
  config.accuracy_noise = 0.0;

  std::printf("Figure 3: validation accuracy per epoch, fixed local batch 256\n");
  std::printf("(ResNet50 on a CIFAR10 subset, target accuracy %.2f)\n\n",
              profile.target_accuracy);

  const std::vector<int> gpu_counts = {1, 2, 4, 8};
  std::vector<model::TrainDynamics> runs;
  runs.reserve(gpu_counts.size());
  for (std::size_t i = 0; i < gpu_counts.size(); ++i) {
    runs.emplace_back(profile, dataset, config, 1);
  }

  std::printf("%6s", "epoch");
  for (int g : gpu_counts) std::printf("   %3d GPU (B=%4d)", g, 256 * g);
  std::printf("\n");
  for (int epoch = 1; epoch <= 60; ++epoch) {
    std::printf("%6d", epoch);
    for (std::size_t i = 0; i < gpu_counts.size(); ++i) {
      if (!runs[i].converged()) {
        runs[i].advance(256 * gpu_counts[i], dataset);
      }
      std::printf("   %17.4f", runs[i].current_accuracy());
    }
    std::printf("\n");
    if (epoch % 10 == 0) std::printf("\n");
  }

  std::printf("Epochs to reach the %.2f target:\n", profile.target_accuracy);
  std::vector<int> epochs_needed;
  for (std::size_t i = 0; i < gpu_counts.size(); ++i) {
    model::TrainDynamics d(profile, dataset, config, 1);
    int epochs = 0;
    while (!d.converged() && epochs < 500) {
      d.advance(256 * gpu_counts[i], dataset);
      ++epochs;
    }
    epochs_needed.push_back(epochs);
    std::printf("  %d GPU(s): %d epochs\n", gpu_counts[i], epochs);
  }
  const bool slower_past_two = epochs_needed[2] > epochs_needed[1] &&
                               epochs_needed[3] > epochs_needed[2];
  std::printf("\nShape check vs the paper: convergence slows past 2 GPUs: %s\n",
              slower_past_two ? "OK" : "MISMATCH");
  return 0;
}
