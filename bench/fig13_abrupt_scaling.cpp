// Figure 13 reproduction: scaling the batch size from 256 to 4096 in one
// jump at epoch 30 (ResNet50 on CIFAR10) spikes the training loss, and the
// run needs several epochs to recover.
#include <cstdio>

#include "harness.hpp"
#include "model/convergence.hpp"
#include "model/task.hpp"

int main() {
  ::ones::bench::ScopedTimer bench_timer("fig13_abrupt_scaling");
  using namespace ones;
  const auto& profile = model::profile_by_name("ResNet50-CIFAR");
  const std::int64_t dataset = 20000;
  model::ConvergenceConfig config;
  config.accuracy_noise = 0.0;
  // Long horizon: keep training past normal convergence to expose the spike.
  config.patience_epochs = 1000;

  model::TrainDynamics abrupt(profile, dataset, config, 1);
  model::TrainDynamics control(profile, dataset, config, 1);

  std::printf("Figure 13: training loss, scaling batch 256 -> 4096 at epoch 30\n\n");
  std::printf("%6s %16s %18s %13s\n", "epoch", "loss (abrupt)", "loss (B=256 ctrl)",
              "disturbance");

  double loss_before_jump = 0.0, loss_after_jump = 0.0;
  int recovery_epochs = -1;
  for (int epoch = 1; epoch <= 60; ++epoch) {
    int batch = 256;
    if (epoch == 31) {
      loss_before_jump = abrupt.current_loss();
      abrupt.on_batch_resize(256, 4096);  // the abrupt jump
      loss_after_jump = abrupt.current_loss();
    }
    if (epoch >= 31) batch = 4096;
    abrupt.advance(batch, dataset);
    control.advance(256, dataset);
    std::printf("%6d %16.3f %18.3f %13.3f\n", epoch, abrupt.current_loss(),
                control.current_loss(), abrupt.disturbance());
    if (recovery_epochs < 0 && epoch > 31 && abrupt.disturbance() < 0.05) {
      recovery_epochs = epoch - 30;
    }
  }

  std::printf("\nShape check vs the paper:\n");
  std::printf("  loss before the jump: %.3f; right after: %.3f (spike of +%.3f): %s\n",
              loss_before_jump, loss_after_jump, loss_after_jump - loss_before_jump,
              loss_after_jump > loss_before_jump + 0.5 ? "OK" : "MISMATCH");
  std::printf("  recovery takes multiple epochs (%d): %s\n", recovery_epochs,
              recovery_epochs >= 2 ? "OK" : "MISMATCH");
  return 0;
}
