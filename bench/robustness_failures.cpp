// Chaos-grade robustness study (DESIGN.md §13; motivated by §2.1: "not all
// DL jobs can end normally, as some jobs are manually killed, some are
// early-stopped, some crashed due to errors").
//
// Sweeps deterministic fault regimes — transient GPU faults, node crashes,
// spot reclaims and the checkpoint-interval knob — against every scheduler
// through the src/exp orchestrator (--threads / --seeds / --no-cache /
// --trace-dir / --metrics-dir). Each fault point tags RunSpec::variant, and
// the FaultConfig itself is cache-key material (schema v4), so swept points
// never alias in the cache; stdout is byte-identical for any --threads.
//
// A final serial ONES run under the heavy-fault regime checks that the
// progress predictor — which skips aborted jobs' truncated histories — still
// produces proper Beta distributions for EVERY surviving job (not just the
// first one), counting degenerates.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness.hpp"

using namespace ones;

int main(int argc, char** argv) {
  const auto opt = exp::parse_bench_cli(argc, argv);
  bench::BenchReport report("robustness_failures", opt);
  const auto config = bench::paper_sim_config(8);  // 32 GPUs
  const auto trace_config = bench::paper_trace_config(160, 9.0);

  // Fault regimes. MTBFs are per entity: gpu_mtbf_s = 15000 over 32 GPUs is
  // one transient fault somewhere every ~470 s of sim time.
  struct FaultPoint {
    std::string label;
    cluster::FaultConfig fault;
  };
  std::vector<FaultPoint> points;
  points.push_back({"none", {}});
  {
    cluster::FaultConfig f;
    f.gpu_mtbf_s = 60000.0;
    points.push_back({"gpu-light", f});
    f.gpu_mtbf_s = 15000.0;
    points.push_back({"gpu-heavy", f});
  }
  {
    cluster::FaultConfig f;
    f.node_mtbf_s = 10000.0;  // 8 nodes: a crash every ~1250 s, 4 GPUs each
    points.push_back({"node", f});
  }
  {
    cluster::FaultConfig f;
    f.spot_fraction = 0.25;  // nodes 6..7 are preemptible
    f.reclaim_mtbf_s = 20000.0;
    points.push_back({"spot", f});
  }
  {
    // Checkpoint-interval sweep under the heavy-GPU regime: how much redone
    // work the restart path charges (elastic schedulers mostly shrink
    // instead, so the knob should separate the checkpoint-mechanism rows).
    // "ckpt-never" is the no-checkpoint endpoint: every restart redoes the
    // job's whole history.
    cluster::FaultConfig f;
    f.gpu_mtbf_s = 15000.0;
    f.checkpoint_interval_s = 60.0;
    points.push_back({"ckpt-tight", f});
    f.checkpoint_interval_s = 1e6;
    points.push_back({"ckpt-never", f});
  }

  const auto factories = bench::all_factories();
  std::vector<exp::RunSpec> specs;
  specs.reserve(points.size() * factories.size() * static_cast<std::size_t>(opt.seeds));
  for (const auto& p : points) {
    for (const auto& f : factories) {
      for (int k = 0; k < opt.seeds; ++k) {
        exp::RunSpec spec;
        spec.scheduler = f.name;
        spec.variant = "fault-" + p.label;
        spec.sim = config;
        spec.sim.fault = p.fault;
        spec.trace = trace_config;
        spec.trace.seed = trace_config.seed + static_cast<std::uint64_t>(k);
        spec.factory = f.make;
        specs.push_back(std::move(spec));
      }
    }
  }

  std::printf("Chaos sweep: %d jobs on 32 GPUs, %zu fault regimes x %zu schedulers\n",
              trace_config.num_jobs, points.size(), factories.size());
  std::printf("recovery policy: checkpoint every %.0f s (default), backoff %.0f s, "
              "max %d restarts\n\n",
              cluster::FaultConfig{}.checkpoint_interval_s,
              cluster::FaultConfig{}.retry_backoff_s, cluster::FaultConfig{}.max_restarts);

  telemetry::MetricsRegistry bench_registry;
  exp::GridOptions grid = opt.grid;
  grid.registry = &bench_registry;
  if (!grid.prof_dir.empty()) grid.prof = &report.profile();
  const auto runs = exp::run_grid(specs, grid);

  std::printf("%-10s %-10s %6s %6s %10s %10s %6s\n", "regime", "scheduler", "done",
              "lost", "avgJCT", "p90JCT", "util");
  bool ones_still_ahead = true;
  bool tight_no_worse = true;
  const std::size_t per_point = factories.size() * static_cast<std::size_t>(opt.seeds);
  std::vector<std::vector<exp::RunResult>> pooled_by_point;
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    const auto first = runs.begin() + static_cast<std::ptrdiff_t>(pi * per_point);
    const std::vector<exp::RunResult> slice(
        first, first + static_cast<std::ptrdiff_t>(per_point));
    auto pooled = bench::pool_by_factory(slice, factories.size(), opt.seeds);
    double ones_jct = 0.0, tiresias_jct = 0.0;
    for (std::size_t fi = 0; fi < factories.size(); ++fi) {
      const auto& s = pooled[fi].summary;
      const std::size_t jobs_total =
          static_cast<std::size_t>(trace_config.num_jobs) *
          static_cast<std::size_t>(opt.seeds);
      std::printf("%-10s %-10s %6zu %6zu %10.1f %10.1f %5.1f%%\n",
                  points[pi].label.c_str(), factories[fi].name.c_str(),
                  pooled[fi].completed, jobs_total - pooled[fi].completed, s.avg_jct,
                  s.p90_jct, 100.0 * s.utilization);
      if (factories[fi].name == "ONES") ones_jct = s.avg_jct;
      if (factories[fi].name == "Tiresias") tiresias_jct = s.avg_jct;
      report.metric("avg_jct." + factories[fi].name + "." + points[pi].label,
                    s.avg_jct);
      report.metric("completed." + factories[fi].name + "." + points[pi].label,
                    static_cast<double>(pooled[fi].completed));
    }
    if (ones_jct > tiresias_jct) ones_still_ahead = false;
    pooled_by_point.push_back(std::move(pooled));
    std::fflush(stdout);
  }
  // Tight checkpoints lose less work than loose ones under the same fault
  // schedule for the checkpoint-mechanism baseline (the model charges no
  // per-checkpoint overhead, so shorter intervals are strictly no worse).
  for (std::size_t fi = 0; fi < factories.size(); ++fi) {
    if (factories[fi].name != "Tiresias") continue;
    const double tight = pooled_by_point[5][fi].summary.avg_jct;
    const double loose = pooled_by_point[6][fi].summary.avg_jct;
    if (tight > loose) tight_no_worse = false;
  }

  std::printf("\nShape check: ONES stays ahead of Tiresias at every fault regime: %s\n",
              ones_still_ahead ? "OK" : "MISMATCH");
  std::printf("Shape check: tight checkpoints beat no checkpoints for Tiresias: %s\n",
              tight_no_worse ? "OK" : "MISMATCH");

  // Predictor sanity under chaos: abnormal endings from BOTH sources (trace
  // kills and retries-exhausted aborts), then every surviving job must still
  // predict a proper Beta distribution (alpha, beta >= 1).
  {
    auto chaos_config = config;
    chaos_config.fault.gpu_mtbf_s = 15000.0;
    auto tc = trace_config;
    tc.abnormal_fraction = 0.1;
    tc.abnormal_mean_lifetime_s = 240.0;
    const auto trace = workload::generate_trace(tc);
    core::OnesScheduler s;
    sched::ClusterSimulation sim(chaos_config, trace, s);
    sim.run();
    std::size_t survivors = 0, degenerate = 0;
    if (s.predictor().trained()) {
      for (const auto& spec : trace) {
        const auto& v = sim.job_view(spec.id);
        if (v.aborted) continue;
        ++survivors;
        const auto dist = s.predictor().predict(v);
        if (!(dist.alpha() >= 1.0 && dist.beta() >= 1.0)) ++degenerate;
      }
    }
    std::printf("\nPredictor sanity under faults: %zu survivors checked, "
                "%zu degenerate distributions: %s\n",
                survivors, degenerate,
                s.predictor().trained() && degenerate == 0 ? "OK" : "MISMATCH");
  }

  report.metric("ones_still_ahead", ones_still_ahead ? 1.0 : 0.0);
  report.cache_stats_from(bench_registry);
  bench::print_cache_footer(bench_registry);
  return 0;
}
