// Failure-injection robustness study (extension; motivated by §2.1: "not
// all DL jobs can end normally, as some jobs are manually killed, some are
// early-stopped, some crashed due to errors").
//
// Injects a fraction of abnormally-ending jobs into the trace and checks
// that (a) every scheduler still completes the surviving work, (b) ONES's
// advantage persists, and (c) the progress predictor — which skips aborted
// jobs' truncated histories — keeps producing sane predictions.
#include <cstdio>

#include "harness.hpp"

using namespace ones;

int main() {
  ::ones::bench::ScopedTimer bench_timer("robustness_failures");
  const auto config = bench::paper_sim_config(8);  // 32 GPUs

  std::printf("Failure injection: 160 jobs on 32 GPUs, sweeping the abnormal-job "
              "fraction\n\n");
  std::printf("%8s %-10s %8s %8s %10s %10s %10s\n", "abnorm.", "scheduler", "normal",
              "aborted", "avgJCT", "avgExec", "avgQueue");

  bool ones_still_ahead = true;
  for (double fraction : {0.0, 0.1, 0.25}) {
    auto tc = bench::paper_trace_config(160, 9.0);
    tc.abnormal_fraction = fraction;
    tc.abnormal_mean_lifetime_s = 240.0;
    const auto trace = workload::generate_trace(tc);

    double ones_jct = 0.0, tiresias_jct = 0.0;
    {
      core::OnesScheduler s;
      sched::ClusterSimulation sim(config, trace, s);
      sim.run();
      const auto sum = telemetry::summarize(s.name(), sim.metrics(), 32);
      std::printf("%7.0f%% %-10s %8zu %8zu %10.1f %10.1f %10.1f\n", 100 * fraction,
                  s.name().c_str(), sim.metrics().completed(), sim.metrics().aborted(),
                  sum.avg_jct, sum.avg_exec, sum.avg_queue);
      std::fflush(stdout);
      ones_jct = sum.avg_jct;
      if (fraction > 0.0 && s.predictor().trained()) {
        // Sanity: predictions remain proper distributions after failures.
        for (const auto& spec : trace) {
          const auto& v = sim.job_view(spec.id);
          if (v.aborted) continue;
          const auto dist = s.predictor().predict(v);
          if (!(dist.alpha() >= 1.0 && dist.beta() >= 1.0)) {
            std::printf("  !! predictor produced a degenerate distribution\n");
          }
          break;
        }
      }
    }
    {
      sched::TiresiasScheduler s;
      sched::ClusterSimulation sim(config, trace, s);
      sim.run();
      const auto sum = telemetry::summarize(s.name(), sim.metrics(), 32);
      std::printf("%7.0f%% %-10s %8zu %8zu %10.1f %10.1f %10.1f\n", 100 * fraction,
                  s.name().c_str(), sim.metrics().completed(), sim.metrics().aborted(),
                  sum.avg_jct, sum.avg_exec, sum.avg_queue);
      std::fflush(stdout);
      tiresias_jct = sum.avg_jct;
    }
    if (ones_jct > tiresias_jct) ones_still_ahead = false;
  }

  std::printf("\nShape check: ONES stays ahead of Tiresias at every failure rate: %s\n",
              ones_still_ahead ? "OK" : "MISMATCH");
  return 0;
}
