// Shared main() body for the google-benchmark micro benches. Normalizes
// them onto the orchestrated benches' CLI (exp::parse_bench_cli — so
// `--threads` / `--no-progress` / `--bench-json` are accepted everywhere,
// even where only google-benchmark consumes timing knobs) and emits the
// canonical BENCH_<name>.json via bench::BenchReport. `--benchmark_*` flags
// pass through to google-benchmark verbatim.
//
// Per-benchmark real times land in the report's HOST metrics section: they
// are wall-clock measurements, which tools/bench_diff compares warn-only.
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "harness.hpp"

namespace ones::bench {

/// Prints the usual google-benchmark console table and mirrors every
/// per-iteration real time (nanoseconds) into the BenchReport.
class ReportingConsoleReporter : public benchmark::ConsoleReporter {
 public:
  explicit ReportingConsoleReporter(BenchReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const double iters = run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      report_.host_metric("real_ns." + run.benchmark_name(),
                          run.real_accumulated_time / iters * 1e9);
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReport& report_;
};

/// The shared micro-bench main: parse the normalized CLI, forward the
/// `--benchmark_*` remainder to google-benchmark, run under the reporting
/// reporter, write BENCH_<name>.json on exit.
inline int run_micro_bench(const std::string& name, int argc, char** argv) {
  std::vector<char*> gb_args;
  if (argc > 0) gb_args.push_back(argv[0]);
  const auto opt = exp::parse_bench_cli(
      argc, argv,
      [&gb_args](const char* arg) {
        if (std::strncmp(arg, "--benchmark_", 12) == 0) {
          gb_args.push_back(const_cast<char*>(arg));
          return true;
        }
        return false;
      },
      "  --benchmark_*   forwarded to google-benchmark (e.g. --benchmark_filter=RE)\n");
  BenchReport report(name, opt);
  int gb_argc = static_cast<int>(gb_args.size());
  benchmark::Initialize(&gb_argc, gb_args.data());
  if (benchmark::ReportUnrecognizedArguments(gb_argc, gb_args.data())) return 1;
  ReportingConsoleReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace ones::bench
