// Figure 16 reproduction: re-configuration overhead of elastic batch size
// scaling vs checkpoint-based migration, per model.
//
// Expected shape: elastic scaling blocks the job for about 1 second; the
// checkpoint path takes tens of seconds (Gu et al. report 20-40 s), growing
// with model size.
//
// Both numbers come from the discrete-event protocol simulation (Figs 11/12
// flows), and the fast cost model used inside the trace simulations is
// cross-checked against it. The per-model blocked times are read back from
// the telemetry registry the protocol reports into (DESIGN.md §9) — the
// same instruments any instrumented run exports — rather than from the raw
// ScalingReport structs. Host-side overhead comes from prof::Profiler spans
// (engine.*, elastic.stage, elastic.checkpoint — DESIGN.md §14) instead of
// ad-hoc timers: `--prof-dir=P` writes `fig16_overhead.prof.json` and the
// span table lands in the BENCH_fig16_overhead.json profile section.
#include <cstdio>
#include <optional>

#include "cluster/topology.hpp"
#include "elastic/cost_model.hpp"
#include "elastic/protocol.hpp"
#include "harness.hpp"
#include "model/task.hpp"
#include "sim/engine.hpp"
#include "telemetry/registry.hpp"

using namespace ones;

int main(int argc, char** argv) {
  const auto opt = exp::parse_bench_cli(argc, argv);
  bench::BenchReport report("fig16_overhead", opt);
  // Off by default, exactly the orchestrated benches' contract: host-time
  // spans only collect under --prof-dir, and never change any number on
  // stdout.
  std::optional<prof::Profiler> profiler;
  if (!opt.grid.prof_dir.empty()) profiler.emplace();
  prof::Profiler* prof_ptr = profiler ? &*profiler : nullptr;
  const cluster::Topology topo(cluster::TopologyConfig{});
  const elastic::CostConfig costs;
  const elastic::ScalingCostModel cost_model(costs);

  std::printf("Figure 16: re-configuration overhead per model (2 -> 4 workers)\n\n");
  std::printf("%-14s %12s %16s %18s %12s\n", "model", "params(MB)", "elastic blocked(s)",
              "checkpoint blocked(s)", "ratio");

  bool shape_ok = true;
  telemetry::MetricsRegistry registry;
  for (const auto& profile : model::builtin_profiles()) {
    elastic::ScalingRequest req;
    req.job = 1;
    req.old_workers = {0, 1};
    req.new_workers = {0, 1, 2, 3};
    req.old_global_batch = 2 * std::min(profile.b_ref, profile.max_local_batch);
    req.new_global_batch = 2 * req.old_global_batch;

    // Elastic: event-by-event protocol simulation (background init overlap).
    sim::SimEngine engine;
    engine.set_profiler(prof_ptr);
    elastic::ScalingSession session(engine, profile, topo, costs, req,
                                    [](const elastic::ScalingReport&) {});
    session.set_metrics(&registry);
    session.set_profiler(prof_ptr);
    session.start();
    engine.run();

    // Checkpoint: stop-save-restart-reload.
    sim::SimEngine engine2;
    elastic::run_checkpoint_migration(engine2, profile, costs, req, &registry,
                                      prof_ptr);

    // Report from the registry: the protocol's last-blocked gauges hold the
    // numbers this figure plots.
    const double elastic_s = registry.gauge_value("elastic_last_blocked_seconds");
    const double ckpt_s = registry.gauge_value("checkpoint_last_blocked_seconds");
    std::printf("%-14s %12.0f %16.2f %18.2f %11.1fx\n", profile.name.c_str(),
                profile.params_bytes / 1e6, elastic_s, ckpt_s, ckpt_s / elastic_s);
    report.metric("elastic_blocked_s." + profile.name, elastic_s);
    report.metric("checkpoint_blocked_s." + profile.name, ckpt_s);
    if (elastic_s > 3.0 || ckpt_s < 15.0) shape_ok = false;
  }

  std::printf("\nRegistry totals over the sweep: %.0f elastic scalings blocking %.2f s,"
              " %.0f migrations blocking %.2f s\n",
              registry.counter_value("elastic_scalings_total"),
              registry.counter_value("elastic_blocked_seconds_total"),
              registry.counter_value("checkpoint_migrations_total"),
              registry.counter_value("checkpoint_blocked_seconds_total"));

  std::printf("\nExample elastic-scaling timeline (ResNet50, Figs 11/12 flow):\n");
  {
    const auto& profile = model::profile_by_name("ResNet50");
    elastic::ScalingRequest req;
    req.job = 1;
    req.old_workers = {0, 1};
    req.new_workers = {0, 1, 2, 3};
    req.old_global_batch = 384;
    req.new_global_batch = 768;
    sim::SimEngine engine;
    elastic::ScalingReport report;
    elastic::ScalingSession session(engine, profile, topo, costs, req,
                                    [&](const elastic::ScalingReport& r) { report = r; });
    session.start();
    engine.run();
    for (const auto& line : report.timeline) std::printf("  %s\n", line.c_str());
    std::printf("  => job blocked for %.2f s of a %.2f s session\n", report.blocked_s,
                report.total_s);
  }

  std::printf("\nShape check vs the paper (elastic ~1 s, checkpoint tens of s): %s\n",
              shape_ok ? "OK" : "MISMATCH");
  report.metric("shape_ok", shape_ok ? 1.0 : 0.0);
  if (profiler) {
    report.profile().add(*profiler);
    prof::write_profile_file(opt.grid.prof_dir, "fig16_overhead", profiler->stats());
  }
  return 0;
}
