// Table 2 reproduction: the 50-variant workload catalog used by the
// evaluation trace, plus the composition of a sampled trace.
#include <cstdio>
#include <map>

#include "harness.hpp"
#include "workload/trace.hpp"

int main() {
  ::ones::bench::ScopedTimer bench_timer("table2_workloads");
  using namespace ones;
  std::printf("%s\n", workload::format_table2().c_str());

  workload::TraceConfig tc;
  tc.num_jobs = 240;
  tc.mean_interarrival_s = 4.5;
  tc.seed = 7;
  const auto trace = workload::generate_trace(tc);

  std::map<std::string, int> per_model;
  std::map<int, int> per_size;
  for (const auto& spec : trace) {
    per_model[spec.variant.model_name]++;
    per_size[spec.requested_gpus]++;
  }
  std::printf("Sampled evaluation trace (%d jobs, Poisson mean inter-arrival %.1fs):\n",
              tc.num_jobs, tc.mean_interarrival_s);
  for (const auto& [model, count] : per_model) {
    std::printf("  %-14s %4d jobs\n", model.c_str(), count);
  }
  std::printf("Requested worker counts:\n");
  for (const auto& [gpus, count] : per_size) {
    std::printf("  %d GPU(s): %d jobs\n", gpus, count);
  }
  return 0;
}
