// Figure 2 reproduction: training speed of ResNet50 on CIFAR10 with an
// elastic global batch (256 scaled up to 2048 with the workers) versus a
// fixed global batch of 256, for 1..8 workers.
//
// Expected shape (paper §2.2): the fixed batch stops scaling past 2 workers
// and drops once the job spans nodes; the elastic batch keeps scaling.
#include <algorithm>
#include <cstdio>

#include "cluster/topology.hpp"
#include "harness.hpp"
#include "model/task.hpp"
#include "model/throughput.hpp"

int main() {
  ::ones::bench::ScopedTimer bench_timer("fig02_throughput");
  using namespace ones;
  const auto& profile = model::profile_by_name("ResNet50-CIFAR");
  const cluster::Topology topo(cluster::TopologyConfig{});

  std::printf("Figure 2: ResNet50/CIFAR10 training speed vs number of workers\n");
  std::printf("(4 GPUs per node: worker sets of more than 4 span nodes)\n\n");
  std::printf("%8s %14s %20s %22s\n", "workers", "global batch",
              "fixed B=256 (img/s)", "elastic B=256*c (img/s)");

  double peak_fixed = 0.0;
  int peak_fixed_at = 0;
  double prev_elastic = 0.0;
  bool elastic_monotone = true;
  for (int workers = 1; workers <= 8; workers *= 2) {
    // Link profile of a packed placement on this topology.
    std::vector<GpuId> gpus;
    for (int g = 0; g < workers; ++g) gpus.push_back(g);
    const auto link = topo.link_profile(gpus);

    const double x_fixed = model::throughput_even_sps(profile, 256, workers, link);
    const int elastic_b = std::min(256 * workers, 2048);
    const double x_elastic = model::throughput_even_sps(profile, elastic_b, workers, link);
    std::printf("%8d %14d %20.0f %22.0f\n", workers, elastic_b, x_fixed, x_elastic);

    if (x_fixed > peak_fixed) {
      peak_fixed = x_fixed;
      peak_fixed_at = workers;
    }
    if (x_elastic < prev_elastic) elastic_monotone = false;
    prev_elastic = x_elastic;
  }

  std::printf("\nShape check vs the paper:\n");
  std::printf("  fixed-batch throughput peaks at %d worker(s) (paper: ~2, then drops): %s\n",
              peak_fixed_at, peak_fixed_at <= 2 ? "OK" : "MISMATCH");
  std::printf("  elastic-batch throughput is monotonically increasing: %s\n",
              elastic_monotone ? "OK" : "MISMATCH");
  return 0;
}
