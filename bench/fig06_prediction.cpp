// Figure 6 reproduction: an example of the online prediction progress with
// uncertainty — the predicted mean training progress and the 90% confidence
// band of the Beta distributions, versus the true progress known in
// hindsight, for a job replayed epoch by epoch through a predictor trained
// on completed jobs from a warm-up run.
#include <algorithm>
#include <cstdio>

#include "core/ones_scheduler.hpp"
#include "harness.hpp"
#include "sched/simulation.hpp"
#include "workload/trace.hpp"

using namespace ones;

int main() {
  ::ones::bench::ScopedTimer bench_timer("fig06_prediction");
  // Warm-up run: the predictor learns from completed jobs.
  workload::TraceConfig tc;
  tc.num_jobs = 48;
  tc.mean_interarrival_s = 10.0;
  tc.seed = 6;
  const auto trace = workload::generate_trace(tc);
  sched::SimulationConfig config;
  config.topology.num_nodes = 4;

  core::OnesScheduler scheduler;
  sched::ClusterSimulation sim(config, trace, scheduler);
  sim.run();
  const auto& predictor = scheduler.predictor();
  std::printf("Figure 6: online prediction with uncertainty "
              "(predictor trained on %zu points)\n\n",
              predictor.training_points());

  // Subject: the longest-history job.
  JobId subject = trace.front().id;
  std::size_t best = 0;
  for (const auto& spec : trace) {
    const auto& v = sim.job_view(spec.id);
    if (v.epoch_log.size() > best) {
      best = v.epoch_log.size();
      subject = spec.id;
    }
  }
  const auto& final_view = sim.job_view(subject);
  const double total = final_view.epoch_log.back().samples_processed;
  std::printf("job %lld: %s on %s, %d epochs\n\n", static_cast<long long>(subject),
              final_view.spec.variant.model_name.c_str(),
              final_view.spec.variant.dataset.c_str(), final_view.epochs_completed);
  std::printf("%6s %10s %10s %10s %10s   %s\n", "epoch", "true", "mean", "lo90", "hi90",
              "band (ascii)");

  int monotone_violations = 0;
  double prev_mean = 0.0;
  for (std::size_t e = 0; e < final_view.epoch_log.size(); ++e) {
    sched::JobView past = final_view;
    past.status = sched::JobStatus::Running;
    past.epoch_log.resize(e + 1);
    past.epochs_completed = static_cast<int>(e + 1);
    past.samples_processed = past.epoch_log.back().samples_processed;
    past.train_loss = past.epoch_log.back().train_loss;
    past.val_accuracy = past.epoch_log.back().val_accuracy;

    const auto dist = predictor.predict(past);
    const auto [lo, hi] = dist.credible_interval(0.9);
    const double truth = std::clamp(past.samples_processed / total, 0.0, 1.0);

    // ASCII band: 50 columns over [0, 1].
    char band[52];
    for (int c = 0; c < 50; ++c) band[c] = ' ';
    band[50] = 0;
    const auto col = [](double x) {
      return std::clamp(static_cast<int>(x * 49.0), 0, 49);
    };
    for (int c = col(lo); c <= col(hi); ++c) band[c] = '-';
    band[col(dist.mean())] = 'o';
    band[col(truth)] = band[col(truth)] == 'o' ? '#' : '*';

    std::printf("%6zu %10.3f %10.3f %10.3f %10.3f   |%s|\n", e + 1, truth, dist.mean(),
                lo, hi, band);
    if (dist.mean() < prev_mean - 1e-9) ++monotone_violations;
    prev_mean = dist.mean();
  }

  std::printf("\n(o = predicted mean, * = true progress, --- = 90%% band)\n");
  std::printf("Shape check vs the paper (mean progress rises monotonically as the\n"
              "job trains, like Fig 6's curve): %s (%d violations)\n",
              monotone_violations == 0 ? "OK" : "MOSTLY",
              monotone_violations);
  return 0;
}
