// Search-strategy comparison (paper §3.2's argument, quantified):
// population-based evolutionary search vs single-solution simulated
// annealing vs refresh-only (random) search — all over the SAME genome
// space, SRUF score, batch-limit policies, predictor and elastic mechanism,
// so the only difference is the search strategy.
#include <cstdio>

#include "core/annealing.hpp"
#include "harness.hpp"

using namespace ones;

int main() {
  ::ones::bench::ScopedTimer bench_timer("search_strategies");
  const auto config = bench::paper_sim_config(8);  // 32 GPUs
  const auto trace = workload::generate_trace(bench::paper_trace_config(160, 9.0));
  std::printf("Search strategies over the ONES genome space: %zu jobs on 32 GPUs\n\n",
              trace.size());
  std::printf("%-14s %s\n", "strategy", telemetry::format_summary_header().c_str());

  double evolution_jct = 0.0, annealing_jct = 0.0, random_jct = 0.0;
  {
    core::OnesScheduler s;  // population-based evolution (the paper)
    const auto r = bench::run_one(config, trace, s);
    std::printf("%-14s %s\n", "evolution", telemetry::format_summary_row(r.summary).c_str());
    std::fflush(stdout);
    evolution_jct = r.summary.avg_jct;
  }
  {
    core::AnnealingScheduler s;  // Metropolis walk, mutation neighborhood
    const auto r = bench::run_one(config, trace, s);
    std::printf("%-14s %s\n", "annealing", telemetry::format_summary_row(r.summary).c_str());
    std::printf("               (proposals %llu, accepted %.0f%%, final T %.1f)\n",
                static_cast<unsigned long long>(s.proposals()),
                100.0 * static_cast<double>(s.accepted()) /
                    static_cast<double>(std::max<std::uint64_t>(s.proposals(), 1)),
                s.temperature());
    std::fflush(stdout);
    annealing_jct = r.summary.avg_jct;
  }
  {
    // Refresh-only search: no crossover, no mutation — candidates differ
    // only through the randomized refresh/fill, i.e. (guided) random search.
    core::OnesConfig cfg;
    cfg.evolution.use_crossover = false;
    cfg.evolution.use_mutation = false;
    core::OnesScheduler s(cfg);
    const auto r = bench::run_one(config, trace, s);
    std::printf("%-14s %s\n", "random", telemetry::format_summary_row(r.summary).c_str());
    random_jct = r.summary.avg_jct;
  }

  std::printf("\nAverage-JCT penalty vs evolutionary search:\n");
  std::printf("  annealing %+6.1f%%\n", 100.0 * (annealing_jct - evolution_jct) / evolution_jct);
  std::printf("  random    %+6.1f%%\n", 100.0 * (random_jct - evolution_jct) / evolution_jct);
  std::printf("\nShape check vs the paper (evolution is the strongest search): %s\n",
              (evolution_jct <= annealing_jct * 1.02 && evolution_jct <= random_jct * 1.02)
                  ? "OK"
                  : "MISMATCH");
  return 0;
}
