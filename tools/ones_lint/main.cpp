// ones_lint CLI — `ones_lint [options] <file-or-dir>...`
//
//   --allow=<suffix>   add a file (path suffix) to the R1 wall-clock allowlist
//   --no-default-allow start from an empty allowlist (fixture tests)
//   --rules=R1,R3      run only the listed rules (default: all)
//
// Exit code 0 when clean, 1 when any finding, 2 on usage/IO error. Findings
// go to stdout in compiler format (file:line: [Rn] message); the summary goes
// to stderr.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

void usage() {
  std::cerr << "usage: ones_lint [--allow=<path-suffix>]... [--no-default-allow]\n"
               "                 [--rules=R1,R2,R3,R4] <file-or-dir>...\n";
}

}  // namespace

int main(int argc, char** argv) {
  ones::lint::Options options = ones::lint::default_options();
  std::vector<std::string> roots;
  std::vector<std::string> extra_allow;
  bool default_allow = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--allow=", 0) == 0) {
      extra_allow.push_back(arg.substr(std::strlen("--allow=")));
    } else if (arg == "--no-default-allow") {
      default_allow = false;
    } else if (arg.rfind("--rules=", 0) == 0) {
      options.r1 = options.r2 = options.r3 = options.r4 = false;
      std::string list = arg.substr(std::strlen("--rules="));
      std::string tok;
      auto apply = [&](const std::string& rule) {
        if (rule == "R1") {
          options.r1 = true;
        } else if (rule == "R2") {
          options.r2 = true;
        } else if (rule == "R3") {
          options.r3 = true;
        } else if (rule == "R4") {
          options.r4 = true;
        } else {
          throw std::runtime_error("unknown rule: " + rule);
        }
      };
      for (char c : list) {
        if (c == ',') {
          apply(tok);
          tok.clear();
        } else {
          tok += c;
        }
      }
      if (!tok.empty()) apply(tok);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "ones_lint: unknown option " << arg << "\n";
      usage();
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (!default_allow) options.wall_clock_allowlist.clear();
  options.wall_clock_allowlist.insert(options.wall_clock_allowlist.end(),
                                      extra_allow.begin(), extra_allow.end());
  if (roots.empty()) {
    usage();
    return 2;
  }

  try {
    const auto findings = ones::lint::lint_tree(roots, options);
    for (const auto& f : findings) std::cout << ones::lint::format(f) << "\n";
    if (findings.empty()) {
      std::cerr << "ones_lint: clean\n";
      return 0;
    }
    std::cerr << "ones_lint: " << findings.size() << " finding(s)\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
